package barneshut

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// HistoryEntry is one recorded time-step of a simulation.
type HistoryEntry struct {
	Step       int
	Time       float64
	SimTime    float64
	Efficiency float64
	Imbalance  float64
	CommWords  int64
	MACTests   int64
	PC         int64
	PP         int64
	Kinetic    float64
}

// History accumulates per-step summaries; attach one to a simulation loop
// to produce the per-iteration records the paper's tables are built from.
type History struct {
	Entries []HistoryEntry
}

// Record appends a snapshot of the simulation and its last step result.
func (h *History) Record(s *Simulation, res *StepResult) {
	if res == nil {
		return
	}
	h.Entries = append(h.Entries, HistoryEntry{
		Step:       s.Steps(),
		Time:       s.Time(),
		SimTime:    res.SimTime,
		Efficiency: res.Efficiency,
		Imbalance:  res.Imbalance,
		CommWords:  res.CommWords,
		MACTests:   res.Stats.MACTests,
		PC:         res.Stats.PC,
		PP:         res.Stats.PP,
		Kinetic:    s.KineticEnergy(),
	})
}

// WriteCSV emits the history as CSV with a header row.
func (h *History) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"step", "time", "sim_time", "efficiency", "imbalance",
		"comm_words", "mac_tests", "pc", "pp", "kinetic",
	}); err != nil {
		return err
	}
	// Floats are written with strconv's shortest-uniquely-parsing form
	// ('g', precision -1): unlike %g, which rounds to 6 significant
	// digits, every value round-trips through ParseFloat bit-exactly.
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, e := range h.Entries {
		rec := []string{
			fmt.Sprint(e.Step),
			g(e.Time),
			g(e.SimTime),
			g(e.Efficiency),
			g(e.Imbalance),
			fmt.Sprint(e.CommWords),
			fmt.Sprint(e.MACTests),
			fmt.Sprint(e.PC),
			fmt.Sprint(e.PP),
			g(e.Kinetic),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Summary returns mean simulated step time, mean efficiency and the worst
// imbalance across recorded steps.
func (h *History) Summary() (meanSimTime, meanEff, worstImbalance float64) {
	if len(h.Entries) == 0 {
		return 0, 0, 1
	}
	worstImbalance = 1
	for _, e := range h.Entries {
		meanSimTime += e.SimTime
		meanEff += e.Efficiency
		if e.Imbalance > worstImbalance {
			worstImbalance = e.Imbalance
		}
	}
	n := float64(len(h.Entries))
	return meanSimTime / n, meanEff / n, worstImbalance
}
