package barneshut

// Benchmarks. Two layers:
//
//   - Microbenchmarks of the computational kernels (tree construction,
//     traversals, multipole operators, Morton/Hilbert keys, collectives).
//
//   - One benchmark per table and figure of the paper's evaluation
//     (BenchmarkTable1 … BenchmarkTable7, BenchmarkFig9) plus the
//     Section 4 analytical experiments and the ablations. Each iteration
//     regenerates the experiment at a reduced scale; run cmd/bhbench for
//     the full-scale tables with the paper's reference numbers printed
//     alongside. The benchmark reports the wall time of regenerating the
//     experiment; the experiment itself reports simulated machine times.

import (
	"fmt"
	"testing"

	"repro/internal/bem"
	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/fmm"
	"repro/internal/keys"
	"repro/internal/msg"
	"repro/internal/parbh"
	"repro/internal/phys"
	"repro/internal/tree"
	"repro/internal/vec"
)

// benchOpts keeps experiment benchmarks laptop-sized.
func benchOpts() experiments.Options {
	return experiments.Options{Scale: 1.0 / 64, MaxProcs: 64, Seed: 1994}
}

func benchSet(b *testing.B, n int) *dist.Set {
	b.Helper()
	return dist.MustNamed("plummer", n, 1)
}

func BenchmarkTreeBuild(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		s := benchSet(b, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tree.Build(s.Particles, tree.Options{LeafCap: 8, Domain: s.Domain})
			}
		})
	}
}

// BenchmarkIncrementalStep measures one warm incremental step (persistent
// builder + flat SoA kernels) against the cold path (BuildKeyed + pointer
// traversal) at a small per-step displacement — the temporal-coherence
// hot path CI tracks for regressions.
func BenchmarkIncrementalStep(b *testing.B) {
	for _, n := range []int{10000, 100000} {
		s := dist.MustNamed("g", n, 1994)
		b.Run(fmt.Sprintf("cold/n=%d", n), func(b *testing.B) {
			bodies := append([]dist.Particle(nil), s.Particles...)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr := tree.BuildKeyed(bodies, s.Domain, 8)
				tr.AccelAll(bodies, 0.67, 0.01)
			}
		})
		b.Run(fmt.Sprintf("incr/n=%d", n), func(b *testing.B) {
			bodies := append([]dist.Particle(nil), s.Particles...)
			bld := tree.NewBuilder(s.Domain, 8)
			var flat *tree.FlatTree
			step := func() {
				tr := bld.Step(bodies)
				flat = tree.Flatten(tr, flat)
				flat.AccelAll(bodies, 0.67, 0.01)
			}
			step() // cold first build
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				step()
			}
		})
	}
}

func BenchmarkSerialForce(b *testing.B) {
	s := benchSet(b, 10000)
	tr := tree.Build(s.Particles, tree.Options{LeafCap: 8, Domain: s.Domain})
	for _, alpha := range []float64{0.5, 0.67, 1.0} {
		// Full sweep over all particles (AccelAll runs multi-core; the
		// per-particle AccelAt kernel is covered by the sweep).
		b.Run(fmt.Sprintf("alpha=%.2f", alpha), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tr.AccelAll(s.Particles, alpha, 0.01)
			}
		})
	}
}

func BenchmarkSerialPotential(b *testing.B) {
	s := benchSet(b, 10000)
	for _, deg := range []int{2, 4, 6} {
		tr := tree.Build(s.Particles, tree.Options{LeafCap: 8, Domain: s.Domain})
		tr.BuildExpansions(deg)
		b.Run(fmt.Sprintf("degree=%d", deg), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tr.PotentialAt(s.Particles[i%s.N()].Pos, i%s.N(), 0.67, nil)
			}
		})
	}
}

func BenchmarkExpansionOps(b *testing.B) {
	pos := vec.V3{X: 0.1, Y: -0.2, Z: 0.05}
	for _, deg := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("P2M/degree=%d", deg), func(b *testing.B) {
			e := phys.NewExpansion(deg, vec.V3{})
			for i := 0; i < b.N; i++ {
				e.AddParticle(1.0, pos)
			}
		})
		b.Run(fmt.Sprintf("M2M/degree=%d", deg), func(b *testing.B) {
			e := phys.NewExpansion(deg, vec.V3{})
			e.AddParticle(1.0, pos)
			t := vec.V3{X: 0.5, Y: 0.25, Z: -0.25}
			for i := 0; i < b.N; i++ {
				e.TranslateTo(t)
			}
		})
		b.Run(fmt.Sprintf("Eval/degree=%d", deg), func(b *testing.B) {
			e := phys.NewExpansion(deg, vec.V3{})
			e.AddParticle(1.0, pos)
			at := vec.V3{X: 2, Y: 1, Z: -1}
			for i := 0; i < b.N; i++ {
				e.EvalPotential(at)
			}
		})
	}
}

func BenchmarkFMM(b *testing.B) {
	s := benchSet(b, 20000)
	for _, deg := range []int{2, 4} {
		b.Run(fmt.Sprintf("degree=%d", deg), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fmm.Potentials(s.Particles, s.Domain, fmm.Config{Degree: deg, Theta: 0.6})
			}
		})
	}
}

func BenchmarkBEMMatVec(b *testing.B) {
	src := bem.SpherePanels(2000, 1, 1.0)
	strengths := make([]complex128, len(src))
	for _, s := range src {
		strengths[s.ID] = s.Strength
	}
	ev := bem.NewEvaluator(src, 1.0, bem.Config{})
	b.Run("treecode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ev.MatVec(strengths)
		}
	})
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bem.Direct(src, 1.0)
		}
	})
}

func BenchmarkMortonEncode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		keys.Encode3(uint32(i), uint32(i>>3), uint32(i>>7))
	}
}

func BenchmarkHilbertEncode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		keys.HilbertEncode3(uint32(i)&0x1fffff, uint32(i>>3)&0x1fffff, uint32(i>>7)&0x1fffff, 21)
	}
}

func BenchmarkCollectives(b *testing.B) {
	for _, p := range []int{8, 64} {
		b.Run(fmt.Sprintf("AllGather/p=%d", p), func(b *testing.B) {
			m := msg.NewMachine(p, msg.Ideal())
			for i := 0; i < b.N; i++ {
				m.Run(func(pr *msg.Proc) { pr.AllGather(pr.ID(), 8) })
			}
		})
		b.Run(fmt.Sprintf("AllToAll/p=%d", p), func(b *testing.B) {
			m := msg.NewMachine(p, msg.Ideal())
			payloads := make([]any, p)
			words := make([]int, p)
			for i := range words {
				words[i] = 4
			}
			for i := 0; i < b.N; i++ {
				m.Run(func(pr *msg.Proc) { pr.AllToAll(payloads, words) })
			}
		})
	}
}

// BenchmarkEngineStep measures the real wall time of one parallel step
// per scheme (goroutine-parallel on the host).
func BenchmarkEngineStep(b *testing.B) {
	s := dist.MustNamed("g", 20000, 2)
	for _, scheme := range []parbh.Scheme{parbh.SPSA, parbh.SPDA, parbh.DPDA} {
		b.Run(scheme.String(), func(b *testing.B) {
			m := msg.NewMachine(8, msg.Ideal())
			e, err := parbh.New(m, s, parbh.Config{
				Scheme: scheme, Mode: parbh.ForceMode, Alpha: 0.67, Eps: 0.01, GridLog2: 4,
			})
			if err != nil {
				b.Fatal(err)
			}
			e.Step()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Step()
			}
		})
	}
}

// benchTable runs one experiment per iteration and fails the benchmark on
// error; the experiment's own numbers are the interesting output (see
// cmd/bhbench).
func benchTable(b *testing.B, fn func(experiments.Options) (experiments.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tab, err := fn(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// One benchmark per table/figure of the paper.

func BenchmarkTable1(b *testing.B) { benchTable(b, experiments.Table1) }
func BenchmarkTable2(b *testing.B) { benchTable(b, experiments.Table2) }
func BenchmarkTable3(b *testing.B) { benchTable(b, experiments.Table3) }
func BenchmarkTable4(b *testing.B) { benchTable(b, experiments.Table4) }
func BenchmarkTable5(b *testing.B) { benchTable(b, experiments.Table5) }
func BenchmarkTable6(b *testing.B) { benchTable(b, experiments.Table6) }
func BenchmarkTable7(b *testing.B) { benchTable(b, experiments.Table7) }
func BenchmarkFig9(b *testing.B)   { benchTable(b, experiments.Fig9) }

// Section 4 analytical experiments and the design-choice ablations.

func BenchmarkScaling(b *testing.B)           { benchTable(b, experiments.ScalingTable) }
func BenchmarkKruskalWeiss(b *testing.B)      { benchTable(b, experiments.KruskalWeissTable) }
func BenchmarkShippingAblation(b *testing.B)  { benchTable(b, experiments.ShippingTable) }
func BenchmarkBinSizeAblation(b *testing.B)   { benchTable(b, experiments.BinSizeTable) }
func BenchmarkLookupAblation(b *testing.B)    { benchTable(b, experiments.LookupTable) }
func BenchmarkOrderingAblation(b *testing.B)  { benchTable(b, experiments.OrderingTable) }
func BenchmarkTreeBuildAblation(b *testing.B) { benchTable(b, experiments.TreeBuildTable) }
func BenchmarkParallelFMMTable(b *testing.B)  { benchTable(b, experiments.FMMTable) }
