package barneshut

import (
	"repro/internal/direct"
	"repro/internal/fmm"
	"repro/internal/msg"
	"repro/internal/parfmm"
	"repro/internal/tree"
)

// InteractionStats summarizes the work of a force computation in the
// paper's units: multipole acceptance tests, particle–cluster and
// particle–particle interactions.
type InteractionStats = tree.Stats

// SerialForces computes Barnes–Hut monopole forces for every particle
// with the serial algorithm and returns them indexed by particle ID,
// together with the interaction statistics.
func SerialForces(set *ParticleSet, alpha, eps float64, leafCap int) ([]V3, InteractionStats) {
	tr := tree.Build(set.Particles, tree.Options{LeafCap: leafCap, Domain: set.Domain})
	// The flat SoA kernels are bit-identical to the pointer traversal and
	// faster; one-shot evaluations use them too.
	accls, stats := tree.Flatten(tr, nil).AccelAll(set.Particles, alpha, eps)
	out := make([]V3, set.N())
	for i, q := range set.Particles {
		out[q.ID] = accls[i]
	}
	return out, stats
}

// SerialPotentials computes Barnes–Hut degree-k multipole potentials for
// every particle with the serial algorithm, indexed by particle ID.
func SerialPotentials(set *ParticleSet, alpha float64, degree, leafCap int) ([]float64, InteractionStats) {
	tr := tree.Build(set.Particles, tree.Options{LeafCap: leafCap, Domain: set.Domain})
	tr.BuildExpansions(degree)
	pots, stats := tree.Flatten(tr, nil).PotentialAll(set.Particles, alpha)
	out := make([]float64, set.N())
	for i, q := range set.Particles {
		out[q.ID] = pots[i]
	}
	return out, stats
}

// FMMConfig parameterizes a fast-multipole potential evaluation.
type FMMConfig = fmm.Config

// FMMStats counts the FMM's kernel invocations (P2M/M2M/M2L/L2L/L2P/P2P).
type FMMStats = fmm.Stats

// FMMPotentials evaluates gravitational potentials with the fast
// multipole method — the O(n) cluster–cluster extension of the treecode
// that the paper's Sections 2 and 6 point to. Results are indexed by
// particle ID.
func FMMPotentials(set *ParticleSet, cfg FMMConfig) ([]float64, FMMStats) {
	return fmm.Potentials(set.Particles, set.Domain, cfg)
}

// FMMAccels evaluates gravitational accelerations with the fast
// multipole method, from the analytic gradients of the local expansions
// (the paper's Section 2: "force is equal to the gradient of potential").
// Results are indexed by particle ID.
func FMMAccels(set *ParticleSet, cfg FMMConfig) ([]V3, FMMStats) {
	return fmm.Accels(set.Particles, set.Domain, cfg)
}

// ParallelFMMConfig parameterizes a parallel FMM evaluation.
type ParallelFMMConfig = parfmm.Config

// ParallelFMMResult reports a parallel FMM evaluation (potentials,
// simulated time, efficiency, communication volume, op counts).
type ParallelFMMResult = parfmm.Result

// ParallelFMMPotentials evaluates gravitational potentials with the
// parallel fast multipole method on a simulated machine of p processors —
// the extension of the paper's function-shipping techniques to the FMM
// its Sections 2 and 6 describe. Far-field cell–cell interactions are
// computed from replicated branch expansions; near-field work ships
// target leaves to the data.
func ParallelFMMPotentials(set *ParticleSet, processors int, profile MachineProfile, cfg ParallelFMMConfig) (*ParallelFMMResult, error) {
	if profile == (MachineProfile{}) {
		profile = NCube2()
	}
	m := msg.NewMachine(processors, profile)
	return parfmm.Run(m, set, cfg)
}

// DirectForces computes exact softened forces by O(n²) summation,
// indexed by particle ID.
func DirectForces(set *ParticleSet, eps float64) []V3 {
	accls := direct.AccelsParallel(set.Particles, eps)
	out := make([]V3, set.N())
	for i, q := range set.Particles {
		out[q.ID] = accls[i]
	}
	return out
}

// DirectPotentials computes exact potentials by O(n²) summation, indexed
// by particle ID.
func DirectPotentials(set *ParticleSet, eps float64) []float64 {
	pots := direct.PotentialsParallel(set.Particles, eps)
	out := make([]float64, set.N())
	for i, q := range set.Particles {
		out[q.ID] = pots[i]
	}
	return out
}
