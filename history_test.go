package barneshut

import (
	"bytes"
	"encoding/csv"
	"math"
	"strconv"
	"strings"
	"testing"
)

func TestHistoryRecordsAndCSV(t *testing.T) {
	set := NewPlummer(200, 1, V3{}, 61)
	sim, err := NewSimulation(set, Config{Processors: 2, Scheme: DPDA, Eps: 0.05, Profile: IdealMachine()})
	if err != nil {
		t.Fatal(err)
	}
	var h History
	for i := 0; i < 3; i++ {
		res := sim.Step()
		h.Record(sim, res)
	}
	if len(h.Entries) != 3 {
		t.Fatalf("entries = %d", len(h.Entries))
	}
	for i, e := range h.Entries {
		if e.Step != i+1 {
			t.Fatalf("entry %d has step %d", i, e.Step)
		}
		if e.SimTime <= 0 || e.Kinetic <= 0 {
			t.Fatalf("entry %d not populated: %+v", i, e)
		}
	}
	var buf bytes.Buffer
	if err := h.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("CSV lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "step,time,sim_time") {
		t.Fatalf("header = %q", lines[0])
	}
	mean, eff, imb := h.Summary()
	if mean <= 0 || eff <= 0 || imb < 1 {
		t.Fatalf("summary = %v %v %v", mean, eff, imb)
	}
}

func TestHistoryCSVFullPrecision(t *testing.T) {
	// Every float column must round-trip through the CSV bit-exactly:
	// the old %g formatting rounded to 6 significant digits, which
	// silently corrupted goldens rebuilt from written histories.
	h := History{Entries: []HistoryEntry{{
		Step:       1,
		Time:       0.30000000000000004, // 0.1+0.2: needs 17 digits
		SimTime:    1.0 / 3.0,
		Efficiency: 0.12345678901234567,
		Imbalance:  1.0000000000000002, // one ulp above 1: %g prints "1"
		Kinetic:    6.02214076e23,
	}}}
	var buf bytes.Buffer
	if err := h.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(bytes.NewReader(buf.Bytes())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	e := h.Entries[0]
	want := map[int]float64{1: e.Time, 2: e.SimTime, 3: e.Efficiency, 4: e.Imbalance, 9: e.Kinetic}
	for col, w := range want {
		got, err := strconv.ParseFloat(rows[1][col], 64)
		if err != nil {
			t.Fatalf("col %d %q: %v", col, rows[1][col], err)
		}
		if math.Float64bits(got) != math.Float64bits(w) {
			t.Fatalf("col %d: %q parses to %x, want %x", col, rows[1][col],
				math.Float64bits(got), math.Float64bits(w))
		}
	}
}

func TestHistoryNilResultIgnored(t *testing.T) {
	var h History
	h.Record(nil, nil)
	if len(h.Entries) != 0 {
		t.Fatal("nil result recorded")
	}
	if m, e, i := h.Summary(); m != 0 || e != 0 || i != 1 {
		t.Fatal("empty summary wrong")
	}
}

func TestParallelFMMPublicAPI(t *testing.T) {
	set := NewPlummer(1200, 1, V3{}, 62)
	res, err := ParallelFMMPotentials(set, 4, IdealMachine(), ParallelFMMConfig{Degree: 5, Theta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	exact := DirectPotentials(set, 0)
	var num, den float64
	for i := range exact {
		d := exact[i] - res.Potentials[i]
		num += d * d
		den += exact[i] * exact[i]
	}
	if num/den > 1e-6 {
		t.Fatalf("parallel FMM error %v", num/den)
	}
	if res.Stats.M2L == 0 {
		t.Fatal("no far-field work")
	}
	// Default profile path.
	res2, err := ParallelFMMPotentials(set, 2, MachineProfile{}, ParallelFMMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Potentials) != set.N() {
		t.Fatal("default-profile run failed")
	}
}
