package barneshut

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	set := NewPlummer(300, 1, V3{}, 21)
	sim, err := NewSimulation(set, Config{
		Processors: 4, Scheme: DPDA, Alpha: 0.6, Eps: 0.05, DT: 0.01,
		Profile: IdealMachine(),
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(3)

	var buf bytes.Buffer
	if err := sim.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Steps() != sim.Steps() || restored.Time() != sim.Time() {
		t.Fatalf("clock mismatch: %d/%v vs %d/%v",
			restored.Steps(), restored.Time(), sim.Steps(), sim.Time())
	}
	a, b := sim.Bodies(), restored.Bodies()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("body %d differs after restore", i)
		}
	}
	// The restored simulation must keep producing physically consistent
	// steps anchored to the same domain.
	r1 := sim.Step()
	r2 := restored.Step()
	var num, den float64
	for i := range r1.Accels {
		num += r1.Accels[i].Sub(r2.Accels[i]).Norm2()
		den += r1.Accels[i].Norm2()
	}
	// The restored engine rebuilds its decomposition from scratch, so
	// forces agree to decomposition tolerance, not bitwise.
	if num/den > 1e-4 {
		t.Fatalf("restored forces diverge: %v", num/den)
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	if _, err := ReadCheckpoint(bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestCheckpointVersionCheck(t *testing.T) {
	set := NewPlummer(50, 1, V3{}, 22)
	sim, err := NewSimulation(set, Config{Profile: IdealMachine()})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sim.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointRejectsFutureVersion(t *testing.T) {
	// Hand-encode a structurally valid checkpoint stamped by a "newer
	// release" and assert the version gate fires with a clear message.
	cp := checkpoint{
		Version: checkpointVersion + 7,
		Config:  Config{Processors: 1, Profile: IdealMachine()},
		Bodies:  NewPlummer(10, 1, V3{}, 5).Particles,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(cp); err != nil {
		t.Fatal(err)
	}
	_, err := ReadCheckpoint(&buf)
	if err == nil {
		t.Fatal("future-version checkpoint accepted")
	}
	if !strings.Contains(err.Error(), "newer") {
		t.Fatalf("future-version error not descriptive: %v", err)
	}
}

func TestCheckpointRejectsAncientVersion(t *testing.T) {
	// A structurally valid stream stamped with a version below
	// checkpointMinVersion must hit the explicit old-version error path,
	// not decode as if it were current.
	cp := checkpoint{
		Version: checkpointMinVersion - 1,
		Config:  Config{Processors: 1, Profile: IdealMachine()},
		Bodies:  NewPlummer(10, 1, V3{}, 5).Particles,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(cp); err != nil {
		t.Fatal(err)
	}
	_, err := ReadCheckpoint(&buf)
	if err == nil {
		t.Fatal("ancient-version checkpoint accepted")
	}
	if !strings.Contains(err.Error(), "predates") {
		t.Fatalf("old-version error not descriptive: %v", err)
	}
}

func TestCheckpointAcceptsV1(t *testing.T) {
	// v1 streams (no FrameStep field) must keep decoding: gob leaves the
	// absent field zero, which is v1's meaning.
	cp := checkpoint{
		Version: 1,
		Config:  Config{Processors: 2, Profile: IdealMachine(), DT: 0.01},
		Time:    0.05,
		Steps:   5,
		Bodies:  NewPlummer(40, 1, V3{}, 6).Particles,
	}
	cp.Domain = NewPlummer(40, 1, V3{}, 6).Domain
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(cp); err != nil {
		t.Fatal(err)
	}
	sim, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatalf("v1 checkpoint rejected: %v", err)
	}
	if sim.Steps() != 5 || sim.FrameMark() != 0 {
		t.Fatalf("v1 restore: steps=%d frameMark=%d", sim.Steps(), sim.FrameMark())
	}
}

func TestCheckpointFrameMarkRoundTrip(t *testing.T) {
	set := NewPlummer(60, 1, V3{}, 25)
	sim, err := NewSimulation(set, Config{Profile: IdealMachine()})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(2)
	sim.SetFrameMark(17)
	var buf bytes.Buffer
	if err := sim.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.FrameMark() != 17 {
		t.Fatalf("FrameMark = %d after round trip, want 17", restored.FrameMark())
	}
}

func TestRestoreSimulation(t *testing.T) {
	set := NewPlummer(80, 1, V3{}, 26)
	src, err := NewSimulation(set, Config{Processors: 2, Profile: IdealMachine(), DT: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	src.Run(4)
	state := &ParticleSet{Particles: src.Bodies(), Domain: src.Domain()}
	restored, err := RestoreSimulation(state, src.Config(), src.Time(), src.Steps())
	if err != nil {
		t.Fatal(err)
	}
	if restored.Steps() != src.Steps() || restored.Time() != src.Time() {
		t.Fatalf("clock mismatch after restore: %d/%v vs %d/%v",
			restored.Steps(), restored.Time(), src.Steps(), src.Time())
	}
	a, b := src.Bodies(), restored.Bodies()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("body %d differs after restore", i)
		}
	}
	if _, err := RestoreSimulation(&ParticleSet{}, src.Config(), 0, 0); err == nil {
		t.Fatal("empty restore accepted")
	}
}

func TestCheckpointRejectsTruncated(t *testing.T) {
	set := NewPlummer(100, 1, V3{}, 23)
	sim, err := NewSimulation(set, Config{Profile: IdealMachine()})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sim.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Cutting the stream anywhere must yield a decode error mentioning
	// the checkpoint, never a partial Simulation.
	for _, cut := range []int{1, len(full) / 4, len(full) / 2, len(full) - 1} {
		_, err := ReadCheckpoint(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d bytes accepted", cut)
		}
		if !strings.Contains(err.Error(), "checkpoint") {
			t.Fatalf("truncation error not descriptive: %v", err)
		}
	}
}

func TestCheckpointRejectsCorrupt(t *testing.T) {
	set := NewPlummer(100, 1, V3{}, 24)
	sim, err := NewSimulation(set, Config{Profile: IdealMachine()})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sim.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip bytes in the middle of the gob stream.
	for i := len(data) / 2; i < len(data)/2+16 && i < len(data); i++ {
		data[i] ^= 0xA5
	}
	if _, err := ReadCheckpoint(bytes.NewReader(data)); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
}

func TestCheckpointRejectsEmptyBodies(t *testing.T) {
	cp := checkpoint{Version: checkpointVersion, Config: Config{Processors: 1, Profile: IdealMachine()}}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(cp); err != nil {
		t.Fatal(err)
	}
	_, err := ReadCheckpoint(&buf)
	if err == nil || !strings.Contains(err.Error(), "no particles") {
		t.Fatalf("empty checkpoint: %v", err)
	}
}

func TestFMMPublicAPI(t *testing.T) {
	set := NewPlummer(1000, 1, V3{}, 23)
	pots, stats := FMMPotentials(set, FMMConfig{Degree: 5, Theta: 0.5})
	exact := DirectPotentials(set, 0)
	var num, den float64
	for i := range exact {
		d := exact[i] - pots[i]
		num += d * d
		den += exact[i] * exact[i]
	}
	if num/den > 1e-8 {
		t.Fatalf("FMM error %v", num/den)
	}
	if stats.M2L == 0 {
		t.Fatal("no M2L work recorded")
	}
}

func TestFMMAccelsPublicAPI(t *testing.T) {
	set := NewPlummer(800, 1, V3{}, 24)
	acc, _ := FMMAccels(set, FMMConfig{Degree: 6, Theta: 0.5})
	want := DirectForces(set, 0)
	var num, den float64
	for i := range want {
		num += acc[i].Sub(want[i]).Norm2()
		den += want[i].Norm2()
	}
	if num/den > 1e-6 {
		t.Fatalf("FMM force error %v", num/den)
	}
}
