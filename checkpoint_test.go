package barneshut

import (
	"bytes"
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	set := NewPlummer(300, 1, V3{}, 21)
	sim, err := NewSimulation(set, Config{
		Processors: 4, Scheme: DPDA, Alpha: 0.6, Eps: 0.05, DT: 0.01,
		Profile: IdealMachine(),
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(3)

	var buf bytes.Buffer
	if err := sim.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Steps() != sim.Steps() || restored.Time() != sim.Time() {
		t.Fatalf("clock mismatch: %d/%v vs %d/%v",
			restored.Steps(), restored.Time(), sim.Steps(), sim.Time())
	}
	a, b := sim.Bodies(), restored.Bodies()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("body %d differs after restore", i)
		}
	}
	// The restored simulation must keep producing physically consistent
	// steps anchored to the same domain.
	r1 := sim.Step()
	r2 := restored.Step()
	var num, den float64
	for i := range r1.Accels {
		num += r1.Accels[i].Sub(r2.Accels[i]).Norm2()
		den += r1.Accels[i].Norm2()
	}
	// The restored engine rebuilds its decomposition from scratch, so
	// forces agree to decomposition tolerance, not bitwise.
	if num/den > 1e-4 {
		t.Fatalf("restored forces diverge: %v", num/den)
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	if _, err := ReadCheckpoint(bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestCheckpointVersionCheck(t *testing.T) {
	set := NewPlummer(50, 1, V3{}, 22)
	sim, err := NewSimulation(set, Config{Profile: IdealMachine()})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sim.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt the version by re-encoding with a bumped value is awkward
	// through gob; instead assert the happy path keeps the version field
	// honest by restoring successfully.
	if _, err := ReadCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFMMPublicAPI(t *testing.T) {
	set := NewPlummer(1000, 1, V3{}, 23)
	pots, stats := FMMPotentials(set, FMMConfig{Degree: 5, Theta: 0.5})
	exact := DirectPotentials(set, 0)
	var num, den float64
	for i := range exact {
		d := exact[i] - pots[i]
		num += d * d
		den += exact[i] * exact[i]
	}
	if num/den > 1e-8 {
		t.Fatalf("FMM error %v", num/den)
	}
	if stats.M2L == 0 {
		t.Fatal("no M2L work recorded")
	}
}

func TestFMMAccelsPublicAPI(t *testing.T) {
	set := NewPlummer(800, 1, V3{}, 24)
	acc, _ := FMMAccels(set, FMMConfig{Degree: 6, Theta: 0.5})
	want := DirectForces(set, 0)
	var num, den float64
	for i := range want {
		num += acc[i].Sub(want[i]).Norm2()
		den += want[i].Norm2()
	}
	if num/den > 1e-6 {
		t.Fatalf("FMM force error %v", num/den)
	}
}
