// Accuracy study: how the multipole degree and the α acceptance
// criterion trade accuracy against work — the serial counterpart of the
// paper's Tables 6 and 7 and Fig. 9. Potentials from degree-k expansions
// are compared against exact direct summation.
package main

import (
	"fmt"
	"math"

	barneshut "repro"
)

func main() {
	set := barneshut.NewPlummer(4000, 1.0, barneshut.V3{}, 11)
	exact := barneshut.DirectPotentials(set, 0)

	pctErr := func(approx []float64) float64 {
		var num, den float64
		for i := range exact {
			d := exact[i] - approx[i]
			num += d * d
			den += exact[i] * exact[i]
		}
		return 100 * math.Sqrt(num/den)
	}

	fmt.Printf("accuracy study on a %d-particle Plummer model\n\n", set.N())

	// Degree sweep at fixed α (Fig. 9).
	fmt.Println("degree sweep at α = 0.67 (cf. Table 6 / Fig. 9):")
	fmt.Printf("%7s  %12s  %14s  %12s\n", "degree", "error %", "interactions", "flops/int")
	for _, deg := range []int{1, 2, 3, 4, 5, 6} {
		pots, stats := barneshut.SerialPotentials(set, 0.67, deg, 8)
		fmt.Printf("%7d  %12.5f  %14d  %12.0f\n",
			deg, pctErr(pots), stats.Interactions(), 13+16*float64(deg*deg))
	}

	// α sweep at fixed degree (Table 7).
	fmt.Println("\nα sweep at degree 4 (cf. Table 7):")
	fmt.Printf("%7s  %12s  %14s\n", "alpha", "error %", "interactions")
	for _, a := range []float64{0.5, 0.67, 0.8, 1.0, 1.3} {
		pots, stats := barneshut.SerialPotentials(set, a, 4, 8)
		fmt.Printf("%7.2f  %12.5f  %14d\n", a, pctErr(pots), stats.Interactions())
	}

	fmt.Println("\nthe paper's conclusion: raising the degree reduces error faster per flop")
	fmt.Println("than tightening α, and (Section 4.2.2) it also improves parallel efficiency")
	fmt.Println("under function shipping because communication stays constant.")
}
