// Galaxy collision: two Gaussian star clusters fall toward each other
// while the DPDA (costzones) formulation keeps the shifting mass balanced
// across a simulated 16-processor machine. The example prints per-step
// energy, load balance, and how many particles the load balancer moved —
// the live view of the machinery behind the paper's Table 3 and Table 4.
package main

import (
	"fmt"
	"log"

	barneshut "repro"
)

func main() {
	// Two compact clusters, offset and approaching.
	domain := barneshut.Box{Max: barneshut.V3{X: 100, Y: 100, Z: 100}}
	set := barneshut.NewGaussians([]barneshut.GaussianSpec{
		{Center: barneshut.V3{X: 35, Y: 50, Z: 50}, Sigma: 4, N: 4000},
		{Center: barneshut.V3{X: 65, Y: 50, Z: 50}, Sigma: 4, N: 4000},
	}, domain, 7)
	// Give the clusters approach velocities.
	for i := range set.Particles {
		if set.Particles[i].Pos.X < 50 {
			set.Particles[i].Vel.X = 0.4
		} else {
			set.Particles[i].Vel.X = -0.4
		}
	}

	sim, err := barneshut.NewSimulation(set, barneshut.Config{
		Processors: 16,
		Scheme:     barneshut.DPDA,
		Alpha:      0.7,
		Eps:        0.5,
		DT:         0.5,
		Profile:    barneshut.CM5(),
	})
	if err != nil {
		log.Fatal(err)
	}

	e0 := sim.TotalEnergyDirect()
	fmt.Printf("galaxy collision: n=%d, p=16, DPDA on simulated CM5\n", set.N())
	fmt.Printf("initial energy %.4f\n\n", e0)
	fmt.Printf("%4s  %9s  %7s  %7s  %9s  %10s  %8s\n",
		"step", "sim time", "eff", "imbal", "Mwords", "separation", "energy")

	for step := 1; step <= 12; step++ {
		res := sim.Step()
		// Distance between the two halves' centres of mass.
		var c1, c2 barneshut.V3
		var m1, m2 float64
		for _, b := range sim.Bodies() {
			if b.ID < 4000 {
				c1 = c1.Add(b.Pos.Scale(b.Mass))
				m1 += b.Mass
			} else {
				c2 = c2.Add(b.Pos.Scale(b.Mass))
				m2 += b.Mass
			}
		}
		sep := c1.Scale(1 / m1).Dist(c2.Scale(1 / m2))
		fmt.Printf("%4d  %8.3fs  %7.2f  %7.2f  %9.3f  %10.2f  %8.4f\n",
			step, res.SimTime, res.Efficiency, res.Imbalance,
			float64(res.CommWords)/1e6, sep, sim.TotalEnergyDirect())
	}
	e1 := sim.TotalEnergyDirect()
	fmt.Printf("\nenergy drift over %d steps: %.2f%%\n", sim.Steps(), 100*(e1-e0)/(-e0))
	fmt.Println("the costzones balancer keeps the imbalance near 1 even as the clusters merge")
}
