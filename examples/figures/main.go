// Figures: ASCII renditions of the paper's 2-D illustration figures,
// generated from the actual machinery rather than drawn by hand —
// Fig. 5 (partitioning into r = 16 parts and the gray-code mapping of
// subdomains to processors), Fig. 6a (Morton ordering of a 4×4 cluster
// grid) and its Peano–Hilbert counterpart, and Fig. 6b (cluster loads
// and their assignment to processors in Morton order).
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/keys"
	"repro/internal/partition"
	"repro/internal/vec"
)

func main() {
	fig5()
	fig6a()
	fig6b()
}

// fig5 renders the SPSA scatter mapping: a 4×4 grid of subdomains mapped
// to 4 processors with gray codes, so neighbouring subdomains live on
// neighbouring (hypercube) processors.
func fig5() {
	fmt.Println("Fig. 5 — static partitioning into r = 16 subdomains (4×4),")
	fmt.Println("gray-code scatter mapping onto p = 4 processors:")
	m, err := keys.NewScatterMap(4, 4, 1, 4)
	if err != nil {
		panic(err)
	}
	fmt.Println()
	for j := 3; j >= 0; j-- {
		fmt.Print("   ")
		for i := 0; i < 4; i++ {
			fmt.Printf(" P%d", m.Proc(i, j, 0))
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("each processor owns r/p = 4 subdomains scattered across the domain;")
	fmt.Println("rows and columns cycle through processors in gray-code order, so any")
	fmt.Println("two adjacent subdomains differ in one processor-address bit.")
	fmt.Println()
}

// fig6a renders the Morton (Z) ordering of a 4×4 cluster grid — the
// paper's Fig. 6a — alongside the Peano–Hilbert alternative.
func fig6a() {
	fmt.Println("Fig. 6a — Morton ordering of a domain decomposed into 16 clusters")
	fmt.Println("(left: Morton/Z as in the paper; right: Peano–Hilbert used by costzones):")
	fmt.Println()
	for j := 3; j >= 0; j-- {
		fmt.Print("   ")
		for i := 0; i < 4; i++ {
			fmt.Printf(" %2d", keys.Encode2(uint32(i), uint32(j)))
		}
		fmt.Print("        ")
		for i := 0; i < 4; i++ {
			fmt.Printf(" %2d", keys.HilbertEncode2(uint32(i), uint32(j), 2))
		}
		fmt.Println()
	}
	fmt.Println()
}

// fig6b renders cluster loads and the Morton-run assignment to 4
// processors — the paper's Fig. 6b ("each processor is assigned
// approximately equal load in accordance with its Morton ordering").
func fig6b() {
	fmt.Println("Fig. 6b — cluster loads and the SPDA Morton-run assignment (p = 4):")
	fmt.Println()
	g, err := partition.NewGrid(vec.NewBox(vec.V3{}, vec.V3{X: 4, Y: 4, Z: 1}), 4, 4, 1)
	if err != nil {
		panic(err)
	}
	// Synthetic loads: a hot spot in one corner, as in an irregular
	// distribution.
	rng := rand.New(rand.NewSource(4))
	loads := make([]float64, g.NumClusters())
	for idx := range loads {
		i, j, _ := g.Coords(idx)
		hot := 1.0
		if i < 2 && j < 2 {
			hot = 6
		}
		loads[idx] = hot * (1 + rng.Float64())
	}
	order := g.MortonOrder()
	starts := partition.RunsByLoad(order, loads, 4)
	owner := partition.OwnerFromRuns(order, starts, g.NumClusters())

	fmt.Println("   loads:                assignment:")
	for j := 3; j >= 0; j-- {
		fmt.Print("   ")
		for i := 0; i < 4; i++ {
			fmt.Printf(" %4.1f", loads[g.Index(i, j, 0)])
		}
		fmt.Print("      ")
		for i := 0; i < 4; i++ {
			fmt.Printf("  P%d", owner[g.Index(i, j, 0)])
		}
		fmt.Println()
	}
	per := make([]float64, 4)
	var total float64
	for c, o := range owner {
		per[o] += loads[c]
		total += loads[c]
	}
	fmt.Println()
	fmt.Printf("   per-processor load:")
	for p, l := range per {
		fmt.Printf("  P%d=%.1f", p, l)
	}
	fmt.Printf("   (ideal %.1f)\n", total/4)
	fmt.Printf("   imbalance (max/mean): %.3f\n", partition.Imbalance(owner, loads, 4))
	fmt.Println()
	fmt.Println("the hot 2×2 corner is a contiguous Morton run, so it splits across")
	fmt.Println("processors while each run stays spatially compact.")
}
