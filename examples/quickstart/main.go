// Quickstart: build a Plummer sphere (the paper's Fig. 8 shows a 5000
// particle Plummer model), compute Barnes–Hut forces serially, check them
// against direct summation, then run the same computation with the DPDA
// parallel formulation on a simulated 8-processor machine.
package main

import (
	"fmt"
	"log"

	barneshut "repro"
)

func main() {
	// 1. A 5000-particle Plummer sphere in virial equilibrium (Fig. 8).
	set := barneshut.NewPlummer(5000, 1.0, barneshut.V3{}, 42)
	fmt.Printf("Plummer model: %d particles, total mass %.3f, centre of mass %v\n",
		set.N(), set.TotalMass(), set.CenterOfMass())

	// 2. Serial Barnes–Hut forces at α = 0.67 with mild softening.
	const alpha, eps = 0.67, 0.01
	bhForces, stats := barneshut.SerialForces(set, alpha, eps, 8)
	fmt.Printf("serial Barnes–Hut: %d MAC tests, %d particle–cluster + %d particle–particle interactions\n",
		stats.MACTests, stats.PC, stats.PP)
	direct := barneshut.DirectForces(set, eps)
	fmt.Printf("direct summation would need %d interactions; the treecode used %d (%.1f%%)\n",
		set.N()*(set.N()-1), stats.Interactions(),
		100*float64(stats.Interactions())/float64(set.N()*(set.N()-1)))

	// 3. Accuracy of the approximation.
	var num, den float64
	for i := range bhForces {
		num += bhForces[i].Sub(direct[i]).Norm2()
		den += direct[i].Norm2()
	}
	fmt.Printf("force error vs direct: %.2e (relative L2)\n", num/den)

	// 4. The same computation with the DPDA parallel formulation on a
	// simulated 8-processor nCUBE2.
	sim, err := barneshut.NewSimulation(set, barneshut.Config{
		Processors: 8,
		Scheme:     barneshut.DPDA,
		Alpha:      alpha,
		Eps:        eps,
	})
	if err != nil {
		log.Fatal(err)
	}
	res := sim.ComputeForces()
	fmt.Printf("\nparallel run (DPDA, p=8, simulated nCUBE2):\n")
	fmt.Printf("  simulated time %.3fs, efficiency %.2f, load imbalance %.2f\n",
		res.SimTime, res.Efficiency, res.Imbalance)
	fmt.Printf("  communication: %.3f Mwords in %d messages, %d branch nodes\n",
		float64(res.CommWords)/1e6, res.CommMessages, res.BranchNodes)
	for _, name := range res.PhaseOrder {
		fmt.Printf("  %-36s %.4fs\n", name, res.Phases[name])
	}

	// 5. Parallel forces agree with the serial treecode.
	var pnum, pden float64
	for i := range bhForces {
		pnum += res.Accels[i].Sub(bhForces[i]).Norm2()
		pden += bhForces[i].Norm2()
	}
	fmt.Printf("parallel vs serial force difference: %.2e (relative L2)\n", pnum/pden)
}
