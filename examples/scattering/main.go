// Scattering: the paper's Sections 2 and 6 note that the hierarchical
// techniques apply to boundary element methods, where the "force" is the
// Green's function e^{ikr}/r of the field integral equation and each
// solver iteration is one dense matrix–vector product. This example
// evaluates that product over collocation points on a sphere with the
// Barnes–Hut-style treecode and compares cost and accuracy against the
// exact O(n²) product across frequencies.
package main

import (
	"fmt"
	"time"

	"repro/internal/bem"
)

func main() {
	const n = 3000
	fmt.Printf("Helmholtz single-layer matvec on a sphere, n=%d collocation points\n\n", n)
	fmt.Printf("%6s  %12s  %12s  %14s  %12s  %10s\n",
		"ka", "direct ms", "tree ms", "interactions", "rel error", "saving")

	for _, k := range []float64{0.5, 1.0, 2.0, 4.0} {
		src := bem.SpherePanels(n, 1.0, k)
		strengths := make([]complex128, n)
		for _, s := range src {
			strengths[s.ID] = s.Strength
		}

		t0 := time.Now()
		exact := bem.Direct(src, k)
		directMS := time.Since(t0).Seconds() * 1000

		ev := bem.NewEvaluator(src, k, bem.Config{Alpha: 0.5, Kappa: 0.4})
		t1 := time.Now()
		got, stats := ev.MatVec(strengths)
		treeMS := time.Since(t1).Seconds() * 1000

		total := stats.Direct + stats.Accepted
		dense := int64(n) * int64(n-1)
		fmt.Printf("%6.1f  %12.1f  %12.1f  %14d  %12.2e  %9.1f%%\n",
			k, directMS, treeMS, total, bem.RelError(got, exact),
			100*(1-float64(total)/float64(dense)))
	}

	fmt.Println("\nhigher frequencies force the treecode to open clusters whose extent spans")
	fmt.Println("a substantial phase (the κ criterion), shrinking the saving — the regime")
	fmt.Println("where the full FMM with oscillatory expansions takes over.")
}
