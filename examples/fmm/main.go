// FMM vs Barnes–Hut: the paper observes that "parallel formulations of
// FMM and the Barnes–Hut method are similar" and that its techniques
// extend to the FMM. This example compares the two hierarchical methods
// head to head on the same particle sets: accuracy against direct
// summation, and the interaction counts that make the FMM O(n) where the
// treecode is O(n log n).
package main

import (
	"fmt"
	"math"
	"time"

	barneshut "repro"
)

func main() {
	fmt.Println("Barnes–Hut (particle–cluster) vs FMM (cluster–cluster), potentials, degree 4")
	fmt.Printf("\n%7s  %10s  %12s  %12s  %12s  %12s\n",
		"n", "method", "error", "interactions", "per particle", "wall ms")

	for _, n := range []int{4000, 16000, 64000} {
		set := barneshut.NewPlummer(n, 1.0, barneshut.V3{}, 5)
		var exact []float64
		if n <= 16000 {
			exact = barneshut.DirectPotentials(set, 0)
		}

		t0 := time.Now()
		bhPots, bhStats := barneshut.SerialPotentials(set, 0.6, 4, 8)
		bhMS := time.Since(t0).Seconds() * 1000

		t1 := time.Now()
		fmmPots, fmmStats := barneshut.FMMPotentials(set, barneshut.FMMConfig{Degree: 4, Theta: 0.55})
		fmmMS := time.Since(t1).Seconds() * 1000

		report := func(name string, pots []float64, inter int64, ms float64) {
			errStr := "-"
			if exact != nil {
				var num, den float64
				for i := range exact {
					d := exact[i] - pots[i]
					num += d * d
					den += exact[i] * exact[i]
				}
				errStr = fmt.Sprintf("%.2e", math.Sqrt(num/den))
			}
			fmt.Printf("%7d  %10s  %12s  %12d  %12.1f  %12.1f\n",
				n, name, errStr, inter, float64(inter)/float64(n), ms)
		}
		report("BH", bhPots, bhStats.Interactions(), bhMS)
		report("FMM", fmmPots, fmmStats.P2P+fmmStats.M2L, fmmMS)
	}

	fmt.Println("\nBH's per-particle interaction count grows with log n; the FMM's stays flat —")
	fmt.Println("the cluster–cluster M2L operator amortizes the far field over whole cells.")
}
