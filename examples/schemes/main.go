// Scheme comparison: the three parallel formulations (SPSA, SPDA, DPDA)
// side by side on particle distributions of increasing irregularity — the
// experiment behind the paper's Tables 1 and 4. Each scheme runs a few
// steps on the same simulated 16-processor nCUBE2 so its load balancer
// can settle; the table reports the settled step.
package main

import (
	"fmt"
	"log"

	barneshut "repro"
)

func main() {
	distributions := []string{"uniform", "g", "g2", "s_10g_b", "s_10g_a", "s_1g_a"}
	schemes := []barneshut.Scheme{barneshut.SPSA, barneshut.SPDA, barneshut.DPDA}

	fmt.Println("SPSA vs SPDA vs DPDA on a simulated 16-processor nCUBE2 (n=12000, α=0.67)")
	fmt.Printf("%-9s  %-6s  %9s  %7s  %7s  %9s\n",
		"dataset", "scheme", "sim time", "eff", "imbal", "Mwords")

	for _, name := range distributions {
		set, err := barneshut.NewNamed(name, 12000, 3)
		if err != nil {
			log.Fatal(err)
		}
		for _, scheme := range schemes {
			sim, err := barneshut.NewSimulation(set, barneshut.Config{
				Processors: 16,
				Scheme:     scheme,
				Alpha:      0.67,
				Eps:        0.05,
				GridLog2:   4,
			})
			if err != nil {
				log.Fatal(err)
			}
			// Two settling steps, then the reported one.
			sim.ComputeForces()
			sim.ComputeForces()
			res := sim.ComputeForces()
			fmt.Printf("%-9s  %-6v  %8.3fs  %7.2f  %7.2f  %9.3f\n",
				name, scheme, res.SimTime, res.Efficiency, res.Imbalance,
				float64(res.CommWords)/1e6)
		}
		fmt.Println()
	}
	fmt.Println("expected shape (paper): all three agree on regular inputs; as irregularity")
	fmt.Println("grows the static scatter (SPSA) loses balance, the Morton-run reassignment")
	fmt.Println("(SPDA) recovers it while clusters remain splittable, and costzones (DPDA)")
	fmt.Println("adapts its partition shape and stays balanced even on the worst case.")
}
