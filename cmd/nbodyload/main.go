// Command nbodyload drives a gateway fleet the way the paper's
// experiment harness drives one simulated machine: a reproducible load
// of simulation jobs across several tenants, submitted concurrently,
// retried on 429 admission pushback, and polled to terminal state.
//
// At the end it prints a GOLDEN line the CI fleet drill pins:
//
//	GOLDEN fabric shards=3 accepted=60 lost=0 match=true cached=true
//
// match compares the byte-exact result of a gateway-routed job against
// the same spec computed directly in this process — the two-clock rule
// says fleet plumbing must never perturb simulated results. cached does
// the same for a second submission served from the gateway's result
// cache. lost counts accepted jobs that never reached a terminal state,
// which must stay zero even when a shard is killed mid-run.
//
// With -out, a BENCH_fabric.json report (internal/experiments
// FabricReport) is written for the benchmark artifact trail.
//
// With -mode gwha the driver runs the gateway crash drill instead: it
// submits jobs of graduated lengths, keeps polling straight through a
// gateway SIGKILL + journal restart that an outside harness (the CI
// gwha job, or a human following the README walkthrough) performs, and
// pins the recovery invariants:
//
//	GOLDEN gwha shards=3 accepted=12 lost=0 adopted=2 parked=1 match=true
//
// lost must be zero even though the gateway died; adopted counts
// journaled leases the restarted gateway re-bound in place (their step
// counters must never move backwards — the driver checks every poll);
// parked counts results that completed during the outage and drained
// from a shard's park spool. The drill exits nonzero when any invariant
// fails, including adopted==0 or parked==0 (a kill that interrupted
// nothing proves nothing).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/experiments"
	"repro/internal/service"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		gateway = flag.String("gateway", "http://127.0.0.1:8090", "gateway base URL")
		jobs    = flag.Int("jobs", 60, "jobs to submit")
		conc    = flag.Int("concurrency", 8, "concurrent submitters")
		tenants = flag.Int("tenants", 3, "tenant names to spread load over")
		unique  = flag.Int("unique", 12, "distinct specs; the rest repeat and should hit the cache or coalesce")
		steps   = flag.Int("steps", 3, "steps per job")
		n       = flag.Int("n", 96, "particles per job")
		timeout = flag.Duration("timeout", 3*time.Minute, "deadline for the whole drill")
		out     = flag.String("out", "", "write a BENCH_fabric.json report here")
		mode    = flag.String("mode", "fabric", "drill to run: fabric (load + cache + golden) or gwha (gateway crash drill)")
		gMin    = flag.Int("gwha-min-steps", 200, "gwha: shortest job's step count")
		gStride = flag.Int("gwha-step-stride", 400, "gwha: step-count increment between successive jobs")
	)
	flag.Parse()

	base := strings.TrimRight(*gateway, "/")
	deadline := time.Now().Add(*timeout)
	client := &http.Client{Timeout: 15 * time.Second}
	d := &driver{base: base, client: client, deadline: deadline}

	if *mode == "gwha" {
		return runGwha(d, *jobs, *n, *gMin, *gStride, *out)
	}

	if *unique < 1 {
		*unique = 1
	}
	start := time.Now()
	report := experiments.FabricReport{
		Gateway:     base,
		Tenants:     *tenants,
		Concurrency: *conc,
		UniqueSpecs: *unique,
		Submitted:   *jobs,
	}

	// Fan the load out: job i belongs to tenant i%tenants and reuses
	// spec i%unique, so repeats exercise the result cache and in-flight
	// coalescing while distinct seeds spread across the hash ring.
	type accepted struct {
		id     string
		tenant string
	}
	var (
		mu       sync.Mutex
		acc      []accepted
		rejected atomic.Int64
		retried  atomic.Int64
	)
	sem := make(chan struct{}, maxInt(1, *conc))
	var wg sync.WaitGroup
	for i := 0; i < *jobs; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			spec := loadSpec(*n, *steps, i%*unique)
			tenant := fmt.Sprintf("t%d", i%maxInt(1, *tenants))
			id, nRetries, err := d.submit(tenant, spec)
			retried.Add(int64(nRetries))
			if err != nil {
				rejected.Add(1)
				fmt.Fprintf(os.Stderr, "nbodyload: job %d rejected: %v\n", i, err)
				return
			}
			mu.Lock()
			acc = append(acc, accepted{id: id, tenant: tenant})
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	report.Accepted = len(acc)
	report.Rejected429 = int(rejected.Load())
	report.Retried429 = int(retried.Load())
	fmt.Printf("nbodyload: %d/%d jobs accepted (%d retries on 429)\n",
		report.Accepted, *jobs, report.Retried429)

	// Poll every accepted job to a terminal state. "done" and
	// "canceled" are accounted for; anything else — failed, vanished,
	// or still limping at the deadline — counts as lost.
	for _, a := range acc {
		state, err := d.await(a.id)
		switch {
		case err != nil:
			report.Lost++
			fmt.Fprintf(os.Stderr, "nbodyload: job %s lost: %v\n", a.id, err)
		case state == "done":
			report.Done++
		case state == "failed":
			report.Failed++
			report.Lost++
		default: // canceled jobs were asked to stop; not lost
		}
	}
	report.ElapsedSecs = time.Since(start).Seconds()

	// Golden determinism check: one fixed spec through the fleet versus
	// the same computation performed directly in this process. Compared
	// field-wise (see physicsEqual) so the documented host-scheduling
	// jitter in the simulated waiting clock cannot fail the drill.
	goldenSpec := loadSpec(*n, *steps, 0)
	local, err := computeLocal(goldenSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nbodyload: local golden computation failed: %v\n", err)
		return 1
	}
	remote, err := d.submitAndFetch("golden", goldenSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nbodyload: golden gateway run failed: %v\n", err)
	} else {
		report.GoldenMatch = physicsEqual(local, remote)
	}
	// A second submission of the same canonical spec must be served from
	// the result cache — same physics, no new simulation.
	cachedBytes, err := d.submitAndFetch("golden", goldenSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nbodyload: golden cache run failed: %v\n", err)
	} else {
		report.GoldenCached = physicsEqual(local, cachedBytes)
	}

	// Scrape gateway counters for the report.
	if metrics, err := d.fetchMetrics(); err == nil {
		report.CacheHits = metricValue(metrics, "nbodygw_cache_hits_total")
		report.Coalesced = metricValue(metrics, "nbodygw_jobs_coalesced_total")
		report.Rerouted = sumLabeled(metrics, "nbodygw_jobs_rerouted_total")
		report.Shards = int(metricValue(metrics, "nbodygw_shards_connected"))
	}

	fmt.Println(experiments.FabricTable(report).Format())
	fmt.Printf("GOLDEN fabric shards=%d accepted=%d lost=%d match=%v cached=%v\n",
		report.Shards, report.Accepted, report.Lost, report.GoldenMatch, report.GoldenCached)

	if *out != "" {
		doc, err := json.MarshalIndent(report, "", "  ")
		if err == nil {
			err = os.WriteFile(*out, append(doc, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "nbodyload: writing %s: %v\n", *out, err)
			return 1
		}
		fmt.Printf("nbodyload: wrote %s\n", *out)
	}

	if report.Lost > 0 || !report.GoldenMatch || !report.GoldenCached {
		return 1
	}
	return 0
}

// runGwha is the gateway crash drill (-mode gwha). It submits jobs of
// graduated lengths, then polls every one of them to a terminal state
// while an outside harness SIGKILLs the gateway mid-run and restarts it
// on its journal — connection errors during the outage are the expected
// case, not a failure. Besides completion it pins the adoption
// invariant on every poll: a job's step counter may never move
// backwards, because the restarted gateway re-binds journaled leases in
// place instead of re-executing them.
func runGwha(d *driver, jobs, n, minSteps, stride int, out string) int {
	start := time.Now()
	report := experiments.GwhaReport{Gateway: d.base, Submitted: jobs}

	type sub struct {
		id   string
		spec service.JobSpec
	}
	var accepted []sub
	for i := 0; i < jobs; i++ {
		spec := gwhaSpec(n, minSteps+i*stride, i)
		id, _, err := d.submit(fmt.Sprintf("t%d", i%3), spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nbodyload: gwha job %d rejected: %v\n", i, err)
			continue
		}
		accepted = append(accepted, sub{id: id, spec: spec})
	}
	report.Accepted = len(accepted)
	fmt.Printf("nbodyload: gwha %d/%d jobs accepted; polling through the crash\n",
		report.Accepted, jobs)

	// Poll all jobs concurrently so the monotonicity check actually
	// observes each one across the outage, not just the first in line.
	var violations atomic.Int64
	states := make([]string, len(accepted))
	var wg sync.WaitGroup
	for i, a := range accepted {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			states[i] = d.awaitThroughOutage(id, &violations)
		}(i, a.id)
	}
	wg.Wait()
	for i, state := range states {
		switch state {
		case "done":
			report.Done++
		case "canceled": // asked to stop; not lost
		case "failed":
			report.Failed++
			report.Lost++
		default: // vanished or still limping at the deadline
			report.Lost++
			fmt.Fprintf(os.Stderr, "nbodyload: gwha job %s lost (last state %q)\n",
				accepted[i].id, state)
		}
	}
	report.StepViolations = int(violations.Load())
	report.ElapsedSecs = time.Since(start).Seconds()

	// Golden determinism check on the longest job — the one that lived
	// through the crash: its physics must match a direct in-process run.
	if len(accepted) > 0 {
		last := accepted[len(accepted)-1]
		local, err := computeLocal(last.spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nbodyload: local golden computation failed: %v\n", err)
			return 1
		}
		remote, err := d.fetchResult(last.id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nbodyload: golden fetch failed: %v\n", err)
		} else {
			report.GoldenMatch = physicsEqual(local, remote)
		}
	}

	// The restarted gateway's counters carry the recovery evidence.
	if metrics, err := d.fetchMetrics(); err == nil {
		report.Adopted = metricValue(metrics, "nbodygw_jobs_adopted_total")
		report.Parked = metricValue(metrics, "nbodygw_parked_results_total")
		report.Rerouted = sumLabeled(metrics, "nbodygw_jobs_rerouted_total")
		report.JournalBytes = metricValue(metrics, "nbodygw_journal_bytes")
		report.ReconcileSecs = metricFloat(metrics, "nbodygw_reconcile_seconds")
		report.Shards = int(metricValue(metrics, "nbodygw_shards_connected"))
	}

	fmt.Println(experiments.GwhaTable(report).Format())
	fmt.Printf("GOLDEN gwha shards=%d accepted=%d lost=%d adopted=%d parked=%d match=%v\n",
		report.Shards, report.Accepted, report.Lost, report.Adopted, report.Parked,
		report.GoldenMatch)

	if out != "" {
		doc, err := json.MarshalIndent(report, "", "  ")
		if err == nil {
			err = os.WriteFile(out, append(doc, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "nbodyload: writing %s: %v\n", out, err)
			return 1
		}
		fmt.Printf("nbodyload: wrote %s\n", out)
	}

	if report.Lost > 0 || !report.GoldenMatch || report.StepViolations > 0 {
		return 1
	}
	if report.Adopted == 0 || report.Parked == 0 {
		fmt.Fprintln(os.Stderr,
			"nbodyload: gwha drill interrupted nothing (adopted or parked is zero); the kill landed outside the run")
		return 1
	}
	return 0
}

// gwhaSpec builds the i-th crash-drill job: same physics shape,
// distinct seed, graduated length so that whenever the kill lands some
// jobs are mid-run (adoption fodder) and some finish during the outage
// (park fodder).
func gwhaSpec(n, steps, variant int) service.JobSpec {
	return service.JobSpec{
		Name:       fmt.Sprintf("gwha-%d", variant),
		Dist:       "plummer",
		N:          n,
		Seed:       int64(500 + variant),
		Processors: 2,
		Scheme:     "spsa",
		Machine:    "ideal",
		Steps:      steps,
		Eps:        0.05,
		DT:         0.01,
	}
}

// loadSpec builds the i-th distinct job spec: identical physics shape,
// distinct seed, so results differ per variant but repeat per i.
func loadSpec(n, steps, variant int) service.JobSpec {
	return service.JobSpec{
		Name:       fmt.Sprintf("load-%d", variant),
		Dist:       "uniform",
		N:          n,
		Seed:       int64(1000 + variant),
		Processors: 2,
		Scheme:     "spsa",
		Machine:    "ideal",
		Steps:      steps,
		Eps:        0.05,
	}
}

// computeLocal runs the spec in-process exactly the way a shard worker
// does and returns the marshaled service.Result.
func computeLocal(spec service.JobSpec) ([]byte, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	sim, err := spec.NewSimulation()
	if err != nil {
		return nil, err
	}
	var machineTime float64
	for step := 0; step < spec.Steps; step++ {
		res := sim.Step()
		machineTime += res.SimTime
	}
	out := &service.Result{
		Steps:         spec.Steps,
		SimTime:       sim.Time(),
		MachineTime:   machineTime,
		KineticEnergy: sim.KineticEnergy(),
		Bodies:        sim.Bodies(),
	}
	return json.Marshal(out)
}

// physicsEqual compares two marshaled service.Results on the
// deterministic fields: steps, integrator time, kinetic energy, and
// every particle, byte-for-byte after canonical re-marshaling.
// MachineTime is excluded — per the determinism notes in internal/parbh,
// per-processor *waiting* time depends on host scheduling of the
// function-shipping polling loop, so the simulated completion clock
// carries bounded run-to-run jitter while the flop-charged physics
// underneath is exact.
func physicsEqual(a, b []byte) bool {
	var ra, rb service.Result
	if json.Unmarshal(a, &ra) != nil || json.Unmarshal(b, &rb) != nil {
		return false
	}
	ra.MachineTime, rb.MachineTime = 0, 0
	ca, errA := json.Marshal(&ra)
	cb, errB := json.Marshal(&rb)
	return errA == nil && errB == nil && bytes.Equal(ca, cb)
}

// driver is the HTTP client side of the drill.
type driver struct {
	base     string
	client   *http.Client
	deadline time.Time
}

// submit POSTs one job, retrying on 429 pushback per the Retry-After
// hint. It returns the gateway job ID and how many retries 429s cost.
func (d *driver) submit(tenant string, spec service.JobSpec) (string, int, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return "", 0, err
	}
	retries := 0
	for {
		if time.Now().After(d.deadline) {
			return "", retries, fmt.Errorf("deadline exceeded while submitting")
		}
		req, err := http.NewRequest(http.MethodPost, d.base+"/api/v1/jobs", bytes.NewReader(body))
		if err != nil {
			return "", retries, err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Tenant", tenant)
		resp, err := d.client.Do(req)
		if err != nil {
			return "", retries, err
		}
		payload, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			var st struct {
				ID string `json:"id"`
			}
			if err := json.Unmarshal(payload, &st); err != nil {
				return "", retries, fmt.Errorf("decoding submit response: %w", err)
			}
			return st.ID, retries, nil
		case http.StatusTooManyRequests:
			retries++
			wait := time.Second
			if ra := resp.Header.Get("Retry-After"); ra != "" {
				if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
					wait = time.Duration(secs) * time.Second
				}
			}
			if wait > 3*time.Second {
				wait = 3 * time.Second
			}
			time.Sleep(wait)
		default:
			return "", retries, fmt.Errorf("submit: %s: %s", resp.Status, strings.TrimSpace(string(payload)))
		}
	}
}

// await polls one job until it reaches a terminal state.
func (d *driver) await(id string) (string, error) {
	for {
		if time.Now().After(d.deadline) {
			return "", fmt.Errorf("deadline exceeded awaiting job %s", id)
		}
		resp, err := d.client.Get(d.base + "/api/v1/jobs/" + id)
		if err != nil {
			return "", err
		}
		payload, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("status %s: %s", resp.Status, strings.TrimSpace(string(payload)))
		}
		var st struct {
			State string `json:"state"`
		}
		if err := json.Unmarshal(payload, &st); err != nil {
			return "", err
		}
		switch st.State {
		case "done", "failed", "canceled":
			return st.State, nil
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// awaitThroughOutage polls one job to a terminal state, treating every
// transport or HTTP error as "the gateway is down right now" and
// retrying until the drill deadline — the crash drill's outage is the
// expected case. Each successful poll feeds the step-monotonicity
// check: a nonzero step below the job's high-water mark means a silent
// re-execution, which adoption exists to prevent. (Step zero is "no
// update yet this session" — a freshly restarted gateway has no
// progress until the adopted shard's first report — so it never counts
// as a violation.)
func (d *driver) awaitThroughOutage(id string, violations *atomic.Int64) string {
	var maxStep int64
	last := ""
	for {
		if time.Now().After(d.deadline) {
			return last
		}
		resp, err := d.client.Get(d.base + "/api/v1/jobs/" + id)
		if err != nil {
			time.Sleep(500 * time.Millisecond)
			continue
		}
		payload, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			time.Sleep(500 * time.Millisecond)
			continue
		}
		var st struct {
			State    string `json:"state"`
			Progress struct {
				Step int64 `json:"step"`
			} `json:"progress"`
		}
		if err := json.Unmarshal(payload, &st); err != nil {
			time.Sleep(500 * time.Millisecond)
			continue
		}
		last = st.State
		if st.Progress.Step > 0 {
			if st.Progress.Step < maxStep {
				violations.Add(1)
				fmt.Fprintf(os.Stderr, "nbodyload: job %s step went backwards: %d after %d\n",
					id, st.Progress.Step, maxStep)
			} else {
				maxStep = st.Progress.Step
			}
		}
		switch st.State {
		case "done", "failed", "canceled":
			return st.State
		}
		time.Sleep(150 * time.Millisecond)
	}
}

// fetchResult returns one finished job's result bytes.
func (d *driver) fetchResult(id string) ([]byte, error) {
	resp, err := d.client.Get(d.base + "/api/v1/jobs/" + id + "/result")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("result: %s: %s", resp.Status, strings.TrimSpace(string(payload)))
	}
	return bytes.TrimSpace(payload), nil
}

// submitAndFetch submits one job, waits for it, and returns its result
// bytes.
func (d *driver) submitAndFetch(tenant string, spec service.JobSpec) ([]byte, error) {
	id, _, err := d.submit(tenant, spec)
	if err != nil {
		return nil, err
	}
	state, err := d.await(id)
	if err != nil {
		return nil, err
	}
	if state != "done" {
		return nil, fmt.Errorf("job %s finished %s", id, state)
	}
	return d.fetchResult(id)
}

// fetchMetrics returns the gateway's /metrics exposition text.
func (d *driver) fetchMetrics() (string, error) {
	resp, err := d.client.Get(d.base + "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	return string(payload), err
}

// metricValue extracts one plain metric row's value.
func metricValue(text, name string) int64 {
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, name+" ") {
			fields := strings.Fields(line)
			if len(fields) == 2 {
				if v, err := strconv.ParseFloat(fields[1], 64); err == nil {
					return int64(v)
				}
			}
		}
	}
	return 0
}

// metricFloat extracts one plain metric row's value without rounding.
func metricFloat(text, name string) float64 {
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, name+" ") {
			fields := strings.Fields(line)
			if len(fields) == 2 {
				if v, err := strconv.ParseFloat(fields[1], 64); err == nil {
					return v
				}
			}
		}
	}
	return 0
}

// sumLabeled sums every row of a labeled metric family.
func sumLabeled(text, name string) int64 {
	var sum int64
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, name+"{") {
			fields := strings.Fields(line)
			if len(fields) == 2 {
				if v, err := strconv.ParseFloat(fields[1], 64); err == nil {
					sum += int64(v)
				}
			}
		}
	}
	return sum
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
