// Command bhbench regenerates the paper's tables and figures on the
// simulated message-passing machine.
//
// Usage:
//
//	bhbench -table all                 # every experiment, paper order
//	bhbench -table 1                   # Table 1 only
//	bhbench -table fig9 -scale 0.25    # Fig 9 at quarter particle counts
//	bhbench -table ship -maxprocs 16   # cap the simulated machine size
//	bhbench -table 1 -json             # machine-readable per-run results
//
// Known ids: 1..7, fig9, kw (Section 4.1), ship (Section 4.2),
// binsize, lookup, ordering, treebuild (ablations).
//
// With -json, bhbench suppresses the text tables and prints a single
// JSON document: the rendered tables plus one record per engine
// execution (scheme, n, p, machine, wall/simulated time, efficiency),
// so CI can track the performance trajectory across commits.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

// jsonReport is the -json output document.
type jsonReport struct {
	Scale          float64               `json:"scale"`
	MaxProcs       int                   `json:"maxprocs"`
	Seed           int64                 `json:"seed"`
	ElapsedSeconds float64               `json:"elapsed_seconds"`
	Tables         []jsonTable           `json:"tables"`
	Runs           []experiments.Record  `json:"runs"`
}

// jsonTable mirrors experiments.Table with lowercase JSON keys.
type jsonTable struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

func main() {
	var (
		table    = flag.String("table", "all", "experiment id or 'all'")
		scale    = flag.Float64("scale", 1.0/16, "particle-count scale relative to the paper")
		maxProcs = flag.Int("maxprocs", 256, "cap on simulated processor counts")
		seed     = flag.Int64("seed", 1994, "dataset generation seed")
		asJSON   = flag.Bool("json", false, "emit a JSON document with per-run records instead of text tables")
	)
	flag.Parse()

	opt := experiments.Options{Scale: *scale, MaxProcs: *maxProcs, Seed: *seed}
	if *asJSON {
		experiments.StartRecording()
	}
	start := time.Now()
	var tabs []experiments.Table
	if *table == "all" {
		var err error
		tabs, err = experiments.All(opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bhbench:", err)
			os.Exit(1)
		}
	} else {
		fn, ok := experiments.ByID(*table)
		if !ok {
			fmt.Fprintf(os.Stderr, "bhbench: unknown experiment %q\n", *table)
			os.Exit(2)
		}
		t, err := fn(opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bhbench:", err)
			os.Exit(1)
		}
		tabs = []experiments.Table{t}
	}
	elapsed := time.Since(start).Seconds()

	if *asJSON {
		report := jsonReport{
			Scale:          *scale,
			MaxProcs:       *maxProcs,
			Seed:           *seed,
			ElapsedSeconds: elapsed,
			Runs:           experiments.StopRecording(),
		}
		for _, t := range tabs {
			report.Tables = append(report.Tables, jsonTable(t))
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "bhbench:", err)
			os.Exit(1)
		}
		return
	}
	for _, t := range tabs {
		fmt.Println(t.Format())
	}
	fmt.Printf("elapsed: %.1fs (scale=%.4g, maxprocs=%d)\n",
		elapsed, *scale, *maxProcs)
}
