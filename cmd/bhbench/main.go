// Command bhbench regenerates the paper's tables and figures on the
// simulated message-passing machine.
//
// Usage:
//
//	bhbench -table all                 # every experiment, paper order
//	bhbench -table 1                   # Table 1 only
//	bhbench -table fig9 -scale 0.25    # Fig 9 at quarter particle counts
//	bhbench -table ship -maxprocs 16   # cap the simulated machine size
//	bhbench -table 1 -json             # machine-readable per-run results
//
// Known ids: 1..7, fig9, kw (Section 4.1), ship (Section 4.2),
// let (communication strategies incl. locally essential trees),
// binsize, lookup, ordering, treebuild (ablations), serial (host
// wall-clock of the serial kernels — real seconds, not simulated),
// incremental (cold vs incremental step path, also host wall-clock),
// frames (columnar frame-store append/replay/compact, host wall-clock).
//
// -cpuprofile/-memprofile write pprof profiles of the host process, for
// digging into where the compute layer spends real time and memory.
//
// With -json, bhbench suppresses the text tables and prints a single
// JSON document: the rendered tables plus one record per engine
// execution (scheme, n, p, machine, wall/simulated time, efficiency),
// so CI can track the performance trajectory across commits.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/experiments"
)

// jsonReport is the -json output document.
type jsonReport struct {
	Scale          float64              `json:"scale"`
	MaxProcs       int                  `json:"maxprocs"`
	Seed           int64                `json:"seed"`
	ElapsedSeconds float64              `json:"elapsed_seconds"`
	Tables         []jsonTable          `json:"tables"`
	Runs           []experiments.Record `json:"runs"`
}

// jsonTable mirrors experiments.Table with lowercase JSON keys.
type jsonTable struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

func main() { os.Exit(run()) }

// run holds the real main so deferred profile writers execute before the
// process exits (os.Exit skips defers).
func run() int {
	var (
		table      = flag.String("table", "all", "experiment id or 'all'")
		scale      = flag.Float64("scale", 1.0/16, "particle-count scale relative to the paper")
		maxProcs   = flag.Int("maxprocs", 256, "cap on simulated processor counts")
		seed       = flag.Int64("seed", 1994, "dataset generation seed")
		asJSON     = flag.Bool("json", false, "emit a JSON document with per-run records instead of text tables")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bhbench:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "bhbench:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bhbench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize final live-heap state
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "bhbench:", err)
			}
		}()
	}

	opt := experiments.Options{Scale: *scale, MaxProcs: *maxProcs, Seed: *seed}
	if *asJSON {
		experiments.StartRecording()
	}
	start := time.Now()
	var tabs []experiments.Table
	if *table == "all" {
		var err error
		tabs, err = experiments.All(opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bhbench:", err)
			return 1
		}
	} else {
		fn, ok := experiments.ByID(*table)
		if !ok {
			fmt.Fprintf(os.Stderr, "bhbench: unknown experiment %q\n", *table)
			return 2
		}
		t, err := fn(opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bhbench:", err)
			return 1
		}
		tabs = []experiments.Table{t}
	}
	elapsed := time.Since(start).Seconds()

	if *asJSON {
		report := jsonReport{
			Scale:          *scale,
			MaxProcs:       *maxProcs,
			Seed:           *seed,
			ElapsedSeconds: elapsed,
			Runs:           experiments.StopRecording(),
		}
		for _, t := range tabs {
			report.Tables = append(report.Tables, jsonTable(t))
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "bhbench:", err)
			return 1
		}
		return 0
	}
	for _, t := range tabs {
		fmt.Println(t.Format())
	}
	fmt.Printf("elapsed: %.1fs (scale=%.4g, maxprocs=%d)\n",
		elapsed, *scale, *maxProcs)
	return 0
}
