// Command bhbench regenerates the paper's tables and figures on the
// simulated message-passing machine.
//
// Usage:
//
//	bhbench -table all                 # every experiment, paper order
//	bhbench -table 1                   # Table 1 only
//	bhbench -table fig9 -scale 0.25    # Fig 9 at quarter particle counts
//	bhbench -table ship -maxprocs 16   # cap the simulated machine size
//
// Known ids: 1..7, fig9, kw (Section 4.1), ship (Section 4.2),
// binsize, lookup, ordering, treebuild (ablations).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		table    = flag.String("table", "all", "experiment id or 'all'")
		scale    = flag.Float64("scale", 1.0/16, "particle-count scale relative to the paper")
		maxProcs = flag.Int("maxprocs", 256, "cap on simulated processor counts")
		seed     = flag.Int64("seed", 1994, "dataset generation seed")
	)
	flag.Parse()

	opt := experiments.Options{Scale: *scale, MaxProcs: *maxProcs, Seed: *seed}
	start := time.Now()
	if *table == "all" {
		tabs, err := experiments.All(opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bhbench:", err)
			os.Exit(1)
		}
		for _, t := range tabs {
			fmt.Println(t.Format())
		}
	} else {
		fn, ok := experiments.ByID(*table)
		if !ok {
			fmt.Fprintf(os.Stderr, "bhbench: unknown experiment %q\n", *table)
			os.Exit(2)
		}
		t, err := fn(opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bhbench:", err)
			os.Exit(1)
		}
		fmt.Println(t.Format())
	}
	fmt.Printf("elapsed: %.1fs (scale=%.4g, maxprocs=%d)\n",
		time.Since(start).Seconds(), *scale, *maxProcs)
}
