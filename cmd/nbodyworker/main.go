// Command nbodyworker joins a distributed n-body run as one process of
// the SPMD machine. It dials the coordinator (an nbody or nbodyd
// process started with a TCP transport), receives its block of
// simulated ranks, and serves jobs until the coordinator shuts the
// cluster down.
//
// A two-process run on one host:
//
//	nbody -transport tcp -transport-listen 127.0.0.1:9301 -transport-workers 1 ...
//	nbodyworker -join 127.0.0.1:9301
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/transport"
)

func main() {
	var (
		join      = flag.String("join", "", "coordinator address host:port (required)")
		listen    = flag.String("listen", "127.0.0.1:0", "address to accept peer connections on")
		advertise = flag.String("advertise", "", "address peers should dial (defaults to the listen address)")
		retries   = flag.Int("dial-retries", 8, "redial attempts after a failed dial")
		timeout   = flag.Duration("dial-timeout", 5*time.Second, "per-attempt dial timeout")
		rejoins   = flag.Int("rejoin", 5, "consecutive failed join/serve cycles before giving up (negative: forever)")
		logJSON   = flag.Bool("log-json", false, "emit logs as JSON records instead of text")
		quiet     = flag.Bool("q", false, "suppress job progress logging")
	)
	flag.Parse()
	logger := newLogger(*logJSON)
	if *join == "" {
		fatal(logger, fmt.Errorf("-join is required"))
	}
	// ServeLoop speaks printf; bridge its lines into the structured
	// logger so worker logs share one format with nbodyd's.
	var logf func(format string, args ...any)
	if !*quiet {
		logf = func(format string, args ...any) {
			logger.Info(fmt.Sprintf(format, args...), "component", "worker")
		}
	}
	// Each cycle joins the coordinator's current machine generation and
	// serves it; when the generation dies under us (coordinator fault,
	// peer crash) we abort the dead link and dial back in. A graceful
	// shutdown from the coordinator ends the loop.
	err := cluster.ServeLoop(func() (transport.Link, error) {
		node, err := transport.Join(*join, transport.Config{
			ListenAddr:    *listen,
			AdvertiseAddr: *advertise,
			DialTimeout:   *timeout,
			DialRetries:   *retries,
		})
		if err != nil {
			return nil, err
		}
		if !*quiet {
			logger.Info("joined cluster", "component", "worker",
				"coordinator", *join, "proc", node.ProcID(), "procs", node.NumProcs())
		}
		return node, nil
	}, cluster.RejoinPolicy{Max: *rejoins}, logf)
	if err != nil {
		fatal(logger, err)
	}
}

func newLogger(jsonOut bool) *slog.Logger {
	var h slog.Handler
	if jsonOut {
		h = slog.NewJSONHandler(os.Stderr, nil)
	} else {
		h = slog.NewTextHandler(os.Stderr, nil)
	}
	return slog.New(h).With("app", "nbodyworker")
}

func fatal(logger *slog.Logger, err error) {
	logger.Error("fatal", "err", err)
	os.Exit(1)
}
