// Command nbodygw is the fleet gateway: it consistent-hashes submitted
// simulation jobs across the nbodyd shards registered with it, leases
// each job to a shard under a heartbeat lease (re-routing on shard
// death), enforces per-tenant admission quotas with weighted fair
// queueing, and serves repeated submissions of the same canonical spec
// from a deterministic result cache.
//
// Usage:
//
//	nbodygw -addr :8090 -control 127.0.0.1:9090
//	nbodyd  -addr :8081 -gateway 127.0.0.1:9090 -shard-name s1
//
// The HTTP surface mirrors nbodyd's job API (submit, inspect, cancel,
// result) so clients can point at a fleet or a single shard
// interchangeably, plus:
//
//	GET /api/v1/shards  the registered fleet, lease counts, routing totals
//	GET /metrics        gateway counters (routing, cache, tenants)
//
// Tenancy rides in the X-Tenant request header; requests without one
// share the "default" tenant. Quota refusals are 429 with a Retry-After
// hint.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/fabric"
)

func main() {
	var (
		addr      = flag.String("addr", ":8090", "HTTP listen address (the client-facing API)")
		control   = flag.String("control", "127.0.0.1:9090", "TCP listen address shards register on")
		logJSON   = flag.Bool("log-json", false, "emit logs as JSON records instead of text")
		leaseTTL  = flag.Duration("lease-ttl", 10*time.Second, "silence window before a shard is declared dead")
		pending   = flag.Int("max-pending", 1024, "admitted-but-unleased job bound (beyond it: 429)")
		cacheCap  = flag.Int("cache-entries", 4096, "result cache capacity (canonical specs)")
		rate      = flag.Float64("tenant-rate", 50, "default tenant token-bucket refill rate (jobs/s)")
		burst     = flag.Float64("tenant-burst", 100, "default tenant token-bucket capacity")
		tenantStr = flag.String("tenants", "", "per-tenant overrides: name=rate:burst:weight[,name=...]")
		journal   = flag.String("journal", "", "durable job-journal path; restart on the same file recovers the fleet state")
		reconcile = flag.Duration("reconcile-window", 15*time.Second, "how long a restarted gateway holds journaled leases for shard reports before re-queueing")
	)
	flag.Parse()

	logger := newLogger(*logJSON)
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	tenants, err := parseTenants(*tenantStr)
	if err != nil {
		fatal("bad -tenants", "err", err)
	}

	gw, err := fabric.NewGateway(fabric.Options{
		ControlAddr:     *control,
		LeaseTTL:        *leaseTTL,
		MaxPending:      *pending,
		CacheEntries:    *cacheCap,
		TenantRate:      *rate,
		TenantBurst:     *burst,
		Tenants:         tenants,
		JournalPath:     *journal,
		ReconcileWindow: *reconcile,
		Logf: func(format string, args ...any) {
			logger.Info(fmt.Sprintf(format, args...), "component", "fabric")
		},
	})
	if err != nil {
		fatal("gateway init failed", "err", err)
	}

	srv := &http.Server{Addr: *addr, Handler: gw.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr, "control", gw.ControlAddr(),
		"lease_ttl", leaseTTL.String(), "tenant_rate", *rate, "tenant_burst", *burst)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		logger.Info("signal received, shutting down")
	case err := <-errc:
		fatal("serve failed", "err", err)
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("http shutdown", "err", err)
	}
	gw.Close()
	logger.Info("stopped")
}

// parseTenants decodes "name=rate:burst:weight,..." (burst and weight
// optional) into per-tenant configs.
func parseTenants(s string) (map[string]fabric.TenantConfig, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	out := make(map[string]fabric.TenantConfig)
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, params, ok := strings.Cut(entry, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("entry %q: want name=rate[:burst[:weight]]", entry)
		}
		var cfg fabric.TenantConfig
		parts := strings.Split(params, ":")
		if len(parts) > 3 {
			return nil, fmt.Errorf("entry %q: too many fields", entry)
		}
		if _, err := fmt.Sscanf(parts[0], "%g", &cfg.Rate); err != nil {
			return nil, fmt.Errorf("entry %q: bad rate %q", entry, parts[0])
		}
		if len(parts) > 1 {
			if _, err := fmt.Sscanf(parts[1], "%g", &cfg.Burst); err != nil {
				return nil, fmt.Errorf("entry %q: bad burst %q", entry, parts[1])
			}
		}
		if len(parts) > 2 {
			if _, err := fmt.Sscanf(parts[2], "%g", &cfg.Weight); err != nil {
				return nil, fmt.Errorf("entry %q: bad weight %q", entry, parts[2])
			}
		}
		out[strings.TrimSpace(name)] = cfg
	}
	return out, nil
}

// newLogger builds the gateway's structured logger.
func newLogger(jsonOut bool) *slog.Logger {
	var h slog.Handler
	if jsonOut {
		h = slog.NewJSONHandler(os.Stderr, nil)
	} else {
		h = slog.NewTextHandler(os.Stderr, nil)
	}
	return slog.New(h).With("app", "nbodygw")
}
