// Command nbodyd is the simulation job daemon: an HTTP service that
// queues n-body simulation jobs, runs them on a bounded worker pool,
// streams progress as NDJSON, and checkpoints running jobs to a spool
// directory so they resume after a restart.
//
// Usage:
//
//	nbodyd -addr :8080 -workers 4 -queue 32 -spool /var/lib/nbodyd
//
// Endpoints (see the README for a walkthrough):
//
//	POST /api/v1/jobs             submit   GET /api/v1/jobs            list
//	GET  /api/v1/jobs/{id}        inspect  GET /api/v1/jobs/{id}/stream NDJSON
//	POST /api/v1/jobs/{id}/cancel cancel   GET /api/v1/jobs/{id}/result result
//	GET  /metrics                 metrics  GET /healthz                liveness
//
// On SIGINT/SIGTERM the daemon stops accepting work, checkpoints every
// running job to the spool, and exits; a daemon started later on the
// same spool resumes the interrupted jobs from their last checkpoint.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/service"
	"repro/internal/transport"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "HTTP listen address")
		workers   = flag.Int("workers", 2, "worker pool size")
		queue     = flag.Int("queue", 16, "queued-job bound beyond running jobs (beyond it: 429)")
		spool     = flag.String("spool", "", "spool directory for checkpoint-backed resume (empty disables)")
		ckptEvery = flag.Int("checkpoint-every", 10, "steps between periodic job checkpoints")
		drain     = flag.Duration("drain", 30*time.Second, "max time to wait for workers on shutdown")
		cListen   = flag.String("cluster-listen", "127.0.0.1:0", "cluster coordinator listen address (with -cluster-workers)")
		cWorkers  = flag.Int("cluster-workers", 0, "nbodyworker processes to wait for; 0 disables the tcp transport")
		cWait     = flag.Duration("cluster-wait", 60*time.Second, "how long to wait for cluster workers to join")
		cStep     = flag.Duration("cluster-step-timeout", 2*time.Minute, "watchdog on one distributed step (0 disables)")
		jRetries  = flag.Int("job-retries", 3, "re-queues of a cluster job after transport faults before it fails")
		jBackoff  = flag.Duration("retry-backoff", time.Second, "first re-queue delay, doubling per retry")
	)
	flag.Parse()

	opt := service.Options{
		Workers:         *workers,
		QueueDepth:      *queue,
		SpoolDir:        *spool,
		CheckpointEvery: *ckptEvery,
		MaxRetries:      *jRetries,
		RetryBackoff:    *jBackoff,
	}
	var sup *cluster.Supervisor
	if *cWorkers > 0 {
		// The assembler builds one machine generation; after a fault the
		// supervisor demolishes it and calls the assembler again, which
		// must re-listen on the same resolved address so rejoining
		// workers find it. Port 0 is pinned after the first listen.
		listenAddr := *cListen
		sup = cluster.NewSupervisor(func() (*cluster.Coordinator, error) {
			node, err := transport.NewCoordinator(transport.Config{ListenAddr: listenAddr}, *cWorkers+1)
			if err != nil {
				return nil, err
			}
			listenAddr = node.Addr()
			log.Printf("nbodyd: cluster coordinator on %s, waiting for %d worker(s)", node.Addr(), *cWorkers)
			if err := node.WaitWorkers(*cWait); err != nil {
				node.Abort(err)
				return nil, err
			}
			log.Printf("nbodyd: cluster assembled: %d processes", node.NumProcs())
			return cluster.NewCoordinator(node)
		})
		sup.Logf = log.Printf
		sup.StepTimeout = *cStep
		// The first generation comes up before the daemon serves: a
		// misconfigured cluster should fail loudly at startup, not on the
		// first job.
		if err := sup.Ensure(); err != nil {
			log.Fatalf("nbodyd: cluster: %v", err)
		}
		opt.Cluster = sup
	}

	svc, err := service.New(opt)
	if err != nil {
		log.Fatalf("nbodyd: %v", err)
	}
	if sup != nil {
		// A getter, not a snapshot: each rebuilt generation brings fresh
		// transport counters.
		svc.Metrics().SetTransportFunc(sup.Metrics)
	}
	svc.Start()

	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("nbodyd: listening on %s (workers=%d queue=%d spool=%q)",
		*addr, *workers, *queue, *spool)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		log.Printf("nbodyd: signal received, draining (max %s)", *drain)
	case err := <-errc:
		log.Fatalf("nbodyd: serve: %v", err)
	}

	// Stop admission first, then checkpoint and drain the workers.
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("nbodyd: http shutdown: %v", err)
	}
	if err := svc.Shutdown(shutCtx); err != nil {
		log.Printf("nbodyd: worker drain: %v", err)
	}
	if sup != nil {
		if err := sup.Shutdown(); err != nil {
			log.Printf("nbodyd: cluster shutdown: %v", err)
		}
	}
	log.Printf("nbodyd: stopped")
}
