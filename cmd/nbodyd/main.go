// Command nbodyd is the simulation job daemon: an HTTP service that
// queues n-body simulation jobs, runs them on a bounded worker pool,
// streams progress as NDJSON, and checkpoints running jobs to a spool
// directory so they resume after a restart.
//
// Usage:
//
//	nbodyd -addr :8080 -workers 4 -queue 32 -spool /var/lib/nbodyd
//
// Endpoints (see the README for a walkthrough):
//
//	POST /api/v1/jobs             submit   GET /api/v1/jobs            list
//	GET  /api/v1/jobs/{id}        inspect  GET /api/v1/jobs/{id}/stream NDJSON
//	POST /api/v1/jobs/{id}/cancel cancel   GET /api/v1/jobs/{id}/result result
//	GET  /metrics                 metrics  GET /healthz                liveness
//
// On SIGINT/SIGTERM the daemon stops accepting work, checkpoints every
// running job to the spool, and exits; a daemon started later on the
// same spool resumes the interrupted jobs from their last checkpoint.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "HTTP listen address")
		workers   = flag.Int("workers", 2, "worker pool size")
		queue     = flag.Int("queue", 16, "queued-job bound beyond running jobs (beyond it: 429)")
		spool     = flag.String("spool", "", "spool directory for checkpoint-backed resume (empty disables)")
		ckptEvery = flag.Int("checkpoint-every", 10, "steps between periodic job checkpoints")
		drain     = flag.Duration("drain", 30*time.Second, "max time to wait for workers on shutdown")
	)
	flag.Parse()

	svc, err := service.New(service.Options{
		Workers:         *workers,
		QueueDepth:      *queue,
		SpoolDir:        *spool,
		CheckpointEvery: *ckptEvery,
	})
	if err != nil {
		log.Fatalf("nbodyd: %v", err)
	}
	svc.Start()

	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("nbodyd: listening on %s (workers=%d queue=%d spool=%q)",
		*addr, *workers, *queue, *spool)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		log.Printf("nbodyd: signal received, draining (max %s)", *drain)
	case err := <-errc:
		log.Fatalf("nbodyd: serve: %v", err)
	}

	// Stop admission first, then checkpoint and drain the workers.
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("nbodyd: http shutdown: %v", err)
	}
	if err := svc.Shutdown(shutCtx); err != nil {
		log.Printf("nbodyd: worker drain: %v", err)
	}
	log.Printf("nbodyd: stopped")
}
