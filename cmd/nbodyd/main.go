// Command nbodyd is the simulation job daemon: an HTTP service that
// queues n-body simulation jobs, runs them on a bounded worker pool,
// streams progress as NDJSON, and checkpoints running jobs to a spool
// directory so they resume after a restart.
//
// Usage:
//
//	nbodyd -addr :8080 -workers 4 -queue 32 -spool /var/lib/nbodyd
//
// Endpoints (see the README for a walkthrough):
//
//	POST /api/v1/jobs             submit   GET /api/v1/jobs            list
//	GET  /api/v1/jobs/{id}        inspect  GET /api/v1/jobs/{id}/stream NDJSON
//	POST /api/v1/jobs/{id}/cancel cancel   GET /api/v1/jobs/{id}/result result
//	GET  /api/v1/jobs/{id}/trace  trace    GET /metrics                metrics
//	GET  /api/v1/jobs/{id}/frames replay   GET /healthz                liveness
//
// With -debug-addr set, a second private listener serves Go's pprof
// handlers under /debug/pprof/; they are never mounted on the public
// API listener.
//
// With -gateway set, the daemon also joins an nbodygw fleet as a shard:
// it dials the gateway's control port, registers under -shard-name
// (default: hostname), and accepts up to -shard-capacity leased jobs
// (default: the worker count) alongside its own HTTP submissions. The
// agent reconnects with backoff if the gateway restarts.
//
// On SIGINT/SIGTERM the daemon stops accepting work, checkpoints every
// running job to the spool, and exits; a daemon started later on the
// same spool resumes the interrupted jobs from their last checkpoint.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/service"
	"repro/internal/transport"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "HTTP listen address")
		debugAddr = flag.String("debug-addr", "", "private listen address for /debug/pprof (empty disables; keep it off public interfaces)")
		logJSON   = flag.Bool("log-json", false, "emit logs as JSON records instead of text")
		workers   = flag.Int("workers", 2, "worker pool size")
		queue     = flag.Int("queue", 16, "queued-job bound beyond running jobs (beyond it: 429)")
		spool     = flag.String("spool", "", "spool directory for checkpoint-backed resume (empty disables)")
		ckptEvery = flag.Int("checkpoint-every", 10, "steps between periodic job checkpoints")
		frKey     = flag.Int("frames-key-every", 16, "keyframe cadence of per-job frame chains (needs -spool; negative disables frame capture)")
		frBytes   = flag.Int64("frames-max-bytes", 64<<20, "per-job frame chain byte budget before compaction thins old deltas (0 = unbounded)")
		drain     = flag.Duration("drain", 30*time.Second, "max time to wait for workers on shutdown")
		cListen   = flag.String("cluster-listen", "127.0.0.1:0", "cluster coordinator listen address (with -cluster-workers)")
		cWorkers  = flag.Int("cluster-workers", 0, "nbodyworker processes to wait for; 0 disables the tcp transport")
		cWait     = flag.Duration("cluster-wait", 60*time.Second, "how long to wait for cluster workers to join")
		cStep     = flag.Duration("cluster-step-timeout", 2*time.Minute, "watchdog on one distributed step (0 disables)")
		jRetries  = flag.Int("job-retries", 3, "re-queues of a cluster job after transport faults before it fails")
		jBackoff  = flag.Duration("retry-backoff", time.Second, "first re-queue delay, doubling per retry")
		gateway   = flag.String("gateway", "", "nbodygw control address to register with as a fleet shard (empty disables)")
		shardName = flag.String("shard-name", "", "stable shard identity on the gateway hash ring (default: the hostname)")
		shardCap  = flag.Int("shard-capacity", 0, "concurrent gateway leases to advertise (default: worker pool size)")
	)
	flag.Parse()

	logger := newLogger(*logJSON)
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	opt := service.Options{
		Workers:         *workers,
		QueueDepth:      *queue,
		SpoolDir:        *spool,
		CheckpointEvery: *ckptEvery,
		FramesKeyEvery:  *frKey,
		FramesMaxBytes:  *frBytes,
		MaxRetries:      *jRetries,
		RetryBackoff:    *jBackoff,
		// The service layer speaks printf; route its lines through the
		// structured logger so every surface ends up in one stream.
		Logf: func(format string, args ...any) {
			logger.Info(fmt.Sprintf(format, args...), "component", "service")
		},
	}
	var sup *cluster.Supervisor
	if *cWorkers > 0 {
		// The assembler builds one machine generation; after a fault the
		// supervisor demolishes it and calls the assembler again, which
		// must re-listen on the same resolved address so rejoining
		// workers find it. Port 0 is pinned after the first listen.
		listenAddr := *cListen
		sup = cluster.NewSupervisor(func() (*cluster.Coordinator, error) {
			node, err := transport.NewCoordinator(transport.Config{ListenAddr: listenAddr}, *cWorkers+1)
			if err != nil {
				return nil, err
			}
			listenAddr = node.Addr()
			logger.Info("cluster coordinator listening",
				"component", "cluster", "addr", node.Addr(), "workers", *cWorkers)
			if err := node.WaitWorkers(*cWait); err != nil {
				node.Abort(err)
				return nil, err
			}
			logger.Info("cluster assembled", "component", "cluster", "procs", node.NumProcs())
			return cluster.NewCoordinator(node)
		})
		sup.Logger = logger
		sup.StepTimeout = *cStep
		// The first generation comes up before the daemon serves: a
		// misconfigured cluster should fail loudly at startup, not on the
		// first job.
		if err := sup.Ensure(); err != nil {
			fatal("cluster assembly failed", "component", "cluster", "err", err)
		}
		opt.Cluster = sup
	}

	svc, err := service.New(opt)
	if err != nil {
		fatal("service init failed", "err", err)
	}
	if sup != nil {
		// A getter, not a snapshot: each rebuilt generation brings fresh
		// transport counters.
		svc.Metrics().SetTransportFunc(sup.Metrics)
	}
	svc.Start()

	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr, "workers", *workers, "queue", *queue, "spool", *spool)

	// With -gateway set, the daemon doubles as a fleet shard: a fabric
	// agent registers the service with the gateway and runs leased
	// assignments through the same local queue HTTP clients use.
	var agentStop chan struct{}
	var agentDone chan struct{}
	if *gateway != "" {
		name := *shardName
		if name == "" {
			if host, err := os.Hostname(); err == nil {
				name = host
			} else {
				name = "shard"
			}
		}
		capacity := *shardCap
		if capacity <= 0 {
			capacity = *workers
		}
		// Results that complete while the gateway is down park in the
		// spool (next to the frame chains) and drain on reconnect; with
		// no spool they park in memory, surviving a gateway outage but
		// not a daemon restart.
		parkDir := ""
		if *spool != "" {
			parkDir = service.ParkedDir(*spool)
		}
		agent := &fabric.Agent{
			Svc:      svc,
			Gateway:  *gateway,
			Name:     name,
			HTTPAddr: *addr,
			Capacity: capacity,
			ParkDir:  parkDir,
			Logf: func(format string, args ...any) {
				logger.Info(fmt.Sprintf(format, args...), "component", "fabric")
			},
		}
		agentStop = make(chan struct{})
		agentDone = make(chan struct{})
		go func() {
			defer close(agentDone)
			agent.Run(agentStop)
		}()
		logger.Info("fabric agent started", "component", "fabric",
			"gateway", *gateway, "shard", name, "capacity", capacity)
	}

	var dbgSrv *http.Server
	if *debugAddr != "" {
		// pprof lives on its own listener, never the public API mux: the
		// profile endpoints expose memory contents and can stall the
		// process, so they stay on a private (loopback/VPN) address.
		dbgSrv = &http.Server{Addr: *debugAddr, Handler: debugMux()}
		go func() {
			if err := dbgSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "addr", *debugAddr, "err", err)
			}
		}()
		logger.Info("pprof listening", "addr", *debugAddr, "path", "/debug/pprof/")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		logger.Info("signal received, draining", "max_drain", drain.String())
	case err := <-errc:
		fatal("serve failed", "err", err)
	}

	// Stop admission first — the fabric agent deregisters so the gateway
	// re-routes leased jobs — then checkpoint and drain the workers.
	if agentStop != nil {
		close(agentStop)
		<-agentDone
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("http shutdown", "err", err)
	}
	if dbgSrv != nil {
		dbgSrv.Close()
	}
	if err := svc.Shutdown(shutCtx); err != nil {
		logger.Warn("worker drain", "err", err)
	}
	if sup != nil {
		if err := sup.Shutdown(); err != nil {
			logger.Warn("cluster shutdown", "err", err)
		}
	}
	logger.Info("stopped")
}

// newLogger builds the daemon's structured logger. Both handlers write
// to stderr like the old log.Printf surface did.
func newLogger(jsonOut bool) *slog.Logger {
	var h slog.Handler
	if jsonOut {
		h = slog.NewJSONHandler(os.Stderr, nil)
	} else {
		h = slog.NewTextHandler(os.Stderr, nil)
	}
	return slog.New(h).With("app", "nbodyd")
}

// debugMux mounts the pprof handlers explicitly (rather than importing
// net/http/pprof for its DefaultServeMux side effect) so nothing else
// ever leaks onto the debug listener.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	return mux
}
