// Command nbody runs an astrophysical n-body simulation with one of the
// parallel Barnes–Hut formulations on the simulated message-passing
// machine and reports per-step timings, the phase breakdown, load
// balance, and communication statistics.
//
// Examples:
//
//	nbody -dist plummer -n 20000 -p 16 -scheme dpda -steps 5
//	nbody -dist s_10g_a -n 25130 -p 64 -scheme spda -grid 4 -machine cm5
//	nbody -dist g -n 50000 -p 64 -mode potential -degree 4 -alpha 0.67
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	barneshut "repro"
	"repro/internal/cluster"
	"repro/internal/obsv"
	"repro/internal/parbh"
	"repro/internal/transport"
)

func main() {
	var (
		distName  = flag.String("dist", "plummer", "distribution: plummer, g, g2, s_1g_a, s_1g_b, s_10g_a, s_10g_b, uniform")
		n         = flag.Int("n", 10000, "number of particles")
		p         = flag.Int("p", 8, "simulated processors (power of two for spsa/spda)")
		scheme    = flag.String("scheme", "dpda", "parallel formulation: spsa, spda, dpda")
		mode      = flag.String("mode", "force", "force (monopoles) or potential (multipoles)")
		alpha     = flag.Float64("alpha", 0.67, "multipole acceptance parameter")
		degree    = flag.Int("degree", 4, "multipole degree (potential mode)")
		eps       = flag.Float64("eps", 0.05, "Plummer softening (force mode)")
		steps     = flag.Int("steps", 3, "number of time-steps")
		dt        = flag.Float64("dt", 0.01, "leapfrog time-step")
		grid      = flag.Int("grid", 3, "log2 of the cluster grid per dimension (spsa/spda)")
		machine   = flag.String("machine", "ncube2", "machine profile: ncube2, cm5, ideal")
		binSize   = flag.Int("bin", 100, "function-shipping bin size")
		shipping  = flag.String("shipping", "function", "communication strategy: function, data, data-naive, let")
		strategy  = flag.String("strategy", "", "alias for -shipping (takes precedence when set)")
		seed      = flag.Int64("seed", 42, "random seed")
		verbose   = flag.Bool("v", false, "print the phase breakdown each step")
		integr    = flag.String("integrator", "leapfrog", "time integrator: leapfrog, yoshida4, euler")
		csvPath   = flag.String("csv", "", "write per-step history CSV to this file")
		tracePath = flag.String("trace", "", "write a Chrome/Perfetto trace of the run to this file")
		ckptPath  = flag.String("checkpoint", "", "write a resumable checkpoint here after the run")
		resume    = flag.String("resume", "", "resume from a checkpoint file (overrides -dist/-n)")
		trans     = flag.String("transport", "inproc", "inproc, or tcp to coordinate nbodyworker processes")
		tListen   = flag.String("transport-listen", "127.0.0.1:0", "coordinator listen address (tcp transport)")
		tWorkers  = flag.Int("transport-workers", 1, "worker processes to wait for (tcp transport)")
		tWait     = flag.Duration("transport-wait", 60*time.Second, "how long to wait for workers to join (tcp transport)")
		tRetries  = flag.Int("transport-retries", 3, "machine rebuilds after transport faults before the run fails (tcp transport)")
		tStep     = flag.Duration("transport-step-timeout", 2*time.Minute, "watchdog on one distributed step; 0 disables (tcp transport)")
	)
	flag.Parse()

	set, err := barneshut.NewNamed(*distName, *n, *seed)
	if err != nil {
		fatal(err)
	}
	cfg := barneshut.Config{
		Processors: *p,
		Alpha:      *alpha,
		Degree:     *degree,
		Eps:        *eps,
		GridLog2:   *grid,
		BinSize:    *binSize,
		DT:         *dt,
		Integrator: *integr,
	}
	switch strings.ToLower(*scheme) {
	case "spsa":
		cfg.Scheme = barneshut.SPSA
	case "spda":
		cfg.Scheme = barneshut.SPDA
	case "dpda":
		cfg.Scheme = barneshut.DPDA
	default:
		fatal(fmt.Errorf("unknown scheme %q", *scheme))
	}
	switch strings.ToLower(*mode) {
	case "force":
		cfg.Mode = barneshut.ForceMode
	case "potential":
		cfg.Mode = barneshut.PotentialMode
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
	switch strings.ToLower(*machine) {
	case "ncube2":
		cfg.Profile = barneshut.NCube2()
	case "cm5":
		cfg.Profile = barneshut.CM5()
	case "ideal":
		cfg.Profile = barneshut.IdealMachine()
	default:
		fatal(fmt.Errorf("unknown machine %q", *machine))
	}
	ship := *shipping
	if *strategy != "" {
		ship = *strategy
	}
	switch strings.ToLower(ship) {
	case "", "function":
		cfg.Shipping = barneshut.FunctionShipping
	case "data":
		cfg.Shipping = barneshut.DataShipping
	case "data-naive":
		cfg.Shipping = barneshut.DataShippingNaive
	case "let":
		cfg.Shipping = barneshut.LETShipping
	default:
		fatal(fmt.Errorf("unknown strategy %q (want function, data, data-naive, or let)", ship))
	}

	switch strings.ToLower(*trans) {
	case "inproc", "":
	case "tcp":
		if *resume != "" || *ckptPath != "" || *csvPath != "" {
			fatal(fmt.Errorf("-resume/-checkpoint/-csv are not supported with -transport tcp"))
		}
		runTCP(set, cfg, *distName, *steps, *tListen, *tWorkers, *tWait, *tRetries, *tStep, *verbose, *tracePath)
		return
	default:
		fatal(fmt.Errorf("unknown transport %q", *trans))
	}

	var sim *barneshut.Simulation
	if *resume != "" {
		f, err := os.Open(*resume)
		if err != nil {
			fatal(err)
		}
		sim, err = barneshut.ReadCheckpoint(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("nbody: resumed from %s at step %d (t=%.4g)\n", *resume, sim.Steps(), sim.Time())
	} else {
		sim, err = barneshut.NewSimulation(set, cfg)
		if err != nil {
			fatal(err)
		}
	}
	var tracer *barneshut.Tracer
	if *tracePath != "" {
		tracer = barneshut.NewTracer()
		sim.SetTracer(tracer)
	}
	effCfg := sim.Config()
	fmt.Printf("nbody: %s n=%d p=%d scheme=%v mode=%v machine=%s alpha=%g integrator=%s\n",
		*distName, len(sim.Bodies()), effCfg.Processors, effCfg.Scheme, effCfg.Mode,
		effCfg.Profile.Name, effCfg.Alpha, effCfg.Integrator)

	var history barneshut.History
	for step := 1; step <= *steps; step++ {
		wall := time.Now()
		var res *barneshut.StepResult
		if effCfg.Mode == barneshut.PotentialMode {
			res = sim.ComputeForces()
		} else {
			res = sim.Step()
		}
		history.Record(sim, res)
		fmt.Printf("step %2d: sim %.3fs  eff %.2f  speedup %.1f  imb %.2f  comm %.2f Mwords  F=%d  wall %.2fs\n",
			step, res.SimTime, res.Efficiency, res.Speedup, res.Imbalance,
			float64(res.CommWords)/1e6, res.Stats.Interactions(), time.Since(wall).Seconds())
		if *verbose {
			for _, name := range res.PhaseOrder {
				fmt.Printf("         %-36s %.4fs\n", name, res.Phases[name])
			}
		}
	}
	meanSim, meanEff, worstImb := history.Summary()
	fmt.Printf("summary: mean sim %.3fs  mean eff %.2f  worst imbalance %.2f\n",
		meanSim, meanEff, worstImb)

	if tracer != nil {
		writeTrace(tracer, *tracePath)
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		if err := history.WriteCSV(f); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Printf("history written to %s\n", *csvPath)
	}
	if *ckptPath != "" {
		f, err := os.Create(*ckptPath)
		if err != nil {
			fatal(err)
		}
		if err := sim.WriteCheckpoint(f); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Printf("checkpoint written to %s\n", *ckptPath)
	}
}

// runTCP drives the same force evaluation across real OS processes:
// this process hosts the coordinator ranks, each joined nbodyworker
// hosts a block of the rest. The run is supervised: a transport fault
// (worker crash, partition, stall) demolishes the machine generation,
// waits for workers to rejoin, and resumes the job from the last
// reported step by deterministic replay. The simulated clock and
// interaction statistics are bit-identical to the in-proc run of the
// same configuration — faults and recoveries included — and the GOLDEN
// line makes that directly comparable.
func runTCP(set *barneshut.ParticleSet, cfg barneshut.Config, distName string, steps int, listen string, workers int, wait time.Duration, retries int, stepTimeout time.Duration, verbose bool, tracePath string) {
	if workers < 1 {
		fatal(fmt.Errorf("-transport-workers must be at least 1"))
	}
	var tracer *barneshut.Tracer
	if tracePath != "" {
		tracer = barneshut.NewTracer()
	}
	// The assembler re-listens on the same resolved address after a
	// fault so rejoining workers find the rebuilt coordinator.
	listenAddr := listen
	sup := cluster.NewSupervisor(func() (*cluster.Coordinator, error) {
		node, err := transport.NewCoordinator(transport.Config{ListenAddr: listenAddr}, workers+1)
		if err != nil {
			return nil, err
		}
		listenAddr = node.Addr()
		fmt.Printf("nbody: coordinator on %s, waiting for %d worker(s)\n", node.Addr(), workers)
		if err := node.WaitWorkers(wait); err != nil {
			node.Abort(err)
			return nil, err
		}
		// Tracing wraps the link too, so the capture shows the host-clock
		// transport activity next to the simulated-clock phase spans.
		return cluster.NewCoordinator(obsv.WrapLink(node, tracer))
	})
	sup.Tracer = tracer
	sup.MaxRetries = retries
	sup.StepTimeout = stepTimeout
	sup.Logf = func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "nbody: "+format+"\n", args...)
	}
	job := cluster.Job{
		Name:    distName,
		Ranks:   cfg.Processors,
		Steps:   steps,
		Profile: cfg.Profile,
		Config: parbh.Config{
			Scheme:       cfg.Scheme,
			Mode:         cfg.Mode,
			Alpha:        cfg.Alpha,
			Degree:       cfg.Degree,
			Eps:          cfg.Eps,
			LeafCap:      cfg.LeafCap,
			GridLog2:     cfg.GridLog2,
			BinSize:      cfg.BinSize,
			Shipping:     cfg.Shipping,
			BranchLookup: cfg.BranchLookup,
			Ordering:     cfg.Ordering,
			TreeBuild:    cfg.TreeBuild,
		},
		Domain: set.Domain,
		Parts:  set.Particles,
	}
	fmt.Printf("nbody: %s n=%d p=%d scheme=%v mode=%v machine=%s over %d processes\n",
		distName, set.N(), cfg.Processors, cfg.Scheme, cfg.Mode, cfg.Profile.Name, workers+1)
	start := time.Now()
	last, err := sup.Run(job, func(step int, res *parbh.Result) bool {
		fmt.Printf("step %2d: sim %.3fs  eff %.2f  speedup %.1f  imb %.2f  comm %.2f Mwords  F=%d\n",
			step+1, res.SimTime, res.Efficiency, res.Speedup, res.Imbalance,
			float64(res.CommWords)/1e6, res.Stats.Interactions())
		if verbose {
			for _, name := range res.PhaseOrder {
				fmt.Printf("         %-36s %.4fs\n", name, res.Phases[name])
			}
		}
		return true
	})
	if err != nil {
		sup.Shutdown()
		fatal(err)
	}
	fmt.Printf("GOLDEN simtime=%.17g mac=%d pc=%d pp=%d words=%d msgs=%d\n",
		last.SimTime, last.Stats.MACTests, last.Stats.PC, last.Stats.PP,
		last.CommWords, last.CommMessages)
	if tm := sup.Metrics(); tm != nil {
		m := tm.Snapshot()
		fmt.Printf("transport: %d frames / %.2f MB sent, %d frames / %.2f MB received, %d dial(s), wall %.2fs\n",
			m.FramesSent, float64(m.BytesSent)/1e6, m.FramesRecv, float64(m.BytesRecv)/1e6,
			m.Dials, time.Since(start).Seconds())
	}
	if err := sup.Shutdown(); err != nil {
		fatal(err)
	}
	if tracer != nil {
		writeTrace(tracer, tracePath)
	}
}

// writeTrace exports the capture as Chrome trace-event JSON (open it at
// https://ui.perfetto.dev).
func writeTrace(tr *barneshut.Tracer, path string) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := tr.WriteChrome(f); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("trace written to %s (%d events", path, tr.Len())
	if d := tr.Dropped(); d > 0 {
		fmt.Printf(", %d dropped at cap", d)
	}
	fmt.Printf(")\n")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nbody:", err)
	os.Exit(1)
}
