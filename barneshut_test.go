package barneshut

import (
	"math"
	"testing"

	"repro/internal/phys"
)

func TestSerialForcesMatchDirect(t *testing.T) {
	set := NewPlummer(1500, 1, V3{}, 1)
	bh, stats := SerialForces(set, 0.6, 0.01, 8)
	ex := DirectForces(set, 0.01)
	if e := phys.FractionalErrorV3(ex, bh); e > 0.01 {
		t.Fatalf("serial BH error %v", e)
	}
	if stats.Interactions() == 0 {
		t.Fatal("no interactions recorded")
	}
}

func TestSerialPotentialsMatchDirect(t *testing.T) {
	set, err := NewNamed("g", 1200, 2)
	if err != nil {
		t.Fatal(err)
	}
	bh, _ := SerialPotentials(set, 0.67, 5, 8)
	ex := DirectPotentials(set, 0)
	if e := phys.FractionalError(ex, bh); e > 2e-3 {
		t.Fatalf("serial potential error %v", e)
	}
}

func TestSimulationDefaults(t *testing.T) {
	set := NewPlummer(200, 1, V3{}, 3)
	sim, err := NewSimulation(set, Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config()
	if cfg.Processors != 1 || cfg.DT != 0.01 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if cfg.Profile.Name != "nCUBE2" {
		t.Fatalf("default profile %q", cfg.Profile.Name)
	}
}

func TestSimulationStepAdvances(t *testing.T) {
	set := NewPlummer(300, 1, V3{}, 4)
	sim, err := NewSimulation(set, Config{Processors: 4, Scheme: DPDA, Eps: 0.05, DT: 0.01, Profile: IdealMachine()})
	if err != nil {
		t.Fatal(err)
	}
	before := sim.Bodies()
	res := sim.Step()
	if res == nil || res.Accels == nil {
		t.Fatal("no result")
	}
	after := sim.Bodies()
	moved := 0
	for i := range after {
		if after[i].Pos != before[i].Pos {
			moved++
		}
	}
	if moved < len(after)/2 {
		t.Fatalf("only %d particles moved", moved)
	}
	if sim.Steps() != 1 || math.Abs(sim.Time()-0.01) > 1e-15 {
		t.Fatalf("time accounting: steps=%d time=%v", sim.Steps(), sim.Time())
	}
}

func TestLeapfrogConservesEnergy(t *testing.T) {
	// A softened Plummer model integrated for 40 steps should conserve
	// total energy to a small drift — the standard symplectic-integrator
	// sanity check. The force error from the MAC bounds the drift.
	set := NewPlummer(400, 1, V3{}, 5)
	sim, err := NewSimulation(set, Config{
		Processors: 4, Scheme: DPDA, Alpha: 0.4, Eps: 0.1, DT: 0.005, Profile: IdealMachine(),
	})
	if err != nil {
		t.Fatal(err)
	}
	e0 := sim.TotalEnergyDirect()
	sim.Run(40)
	e1 := sim.TotalEnergyDirect()
	drift := math.Abs(e1-e0) / math.Abs(e0)
	if drift > 0.05 {
		t.Fatalf("energy drift %v (E %v -> %v)", drift, e0, e1)
	}
}

func TestMomentumConservation(t *testing.T) {
	set := NewPlummer(400, 1, V3{}, 6)
	sim, err := NewSimulation(set, Config{Processors: 4, Scheme: SPDA, Alpha: 0.5, Eps: 0.05, DT: 0.01, Profile: IdealMachine()})
	if err != nil {
		t.Fatal(err)
	}
	mom := func() V3 {
		var p V3
		for _, b := range sim.Bodies() {
			p = p.Add(b.Vel.Scale(b.Mass))
		}
		return p
	}
	p0 := mom()
	sim.Run(10)
	p1 := mom()
	// BH forces are not exactly antisymmetric, so momentum drifts at the
	// force-error scale, not machine epsilon.
	if p1.Sub(p0).Norm() > 0.05 {
		t.Fatalf("momentum drift %v", p1.Sub(p0).Norm())
	}
}

func TestComputeForcesWithoutAdvance(t *testing.T) {
	set := NewPlummer(300, 1, V3{}, 7)
	sim, err := NewSimulation(set, Config{Processors: 2, Mode: PotentialMode, Alpha: 0.67, Degree: 3, Profile: IdealMachine()})
	if err != nil {
		t.Fatal(err)
	}
	res := sim.ComputeForces()
	if res.Potentials == nil {
		t.Fatal("no potentials")
	}
	if sim.Steps() != 0 {
		t.Fatal("ComputeForces advanced the clock")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Step in PotentialMode did not panic")
		}
	}()
	sim.Step()
}

func TestKineticEnergyPositive(t *testing.T) {
	set := NewPlummer(200, 1, V3{}, 8)
	sim, _ := NewSimulation(set, Config{Profile: IdealMachine()})
	if ke := sim.KineticEnergy(); ke <= 0 {
		t.Fatalf("kinetic energy %v", ke)
	}
}

func TestGeneratorsExported(t *testing.T) {
	dom := Box{Max: V3{X: 100, Y: 100, Z: 100}}
	g := NewGaussians([]GaussianSpec{{Center: V3{X: 50, Y: 50, Z: 50}, Sigma: 3, N: 100}}, dom, 1)
	if g.N() != 100 {
		t.Fatalf("gaussian N = %d", g.N())
	}
	u := NewUniform(50, dom, 2)
	if u.N() != 50 {
		t.Fatalf("uniform N = %d", u.N())
	}
	if _, err := NewNamed("nope", 10, 0); err == nil {
		t.Fatal("bad name accepted")
	}
}

func TestProfiles(t *testing.T) {
	if NCube2().Name != "nCUBE2" || CM5().Name != "CM5" || IdealMachine().Name != "ideal" {
		t.Fatal("profile names wrong")
	}
	if NCube2().FlopRate >= CM5().FlopRate {
		t.Fatal("CM5 should be faster than nCUBE2")
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	set := NewPlummer(50, 1, V3{}, 9)
	if _, err := NewSimulation(set, Config{Processors: -2}); err == nil {
		t.Fatal("negative processors accepted")
	}
	// 64 processors need ≥ 64 clusters.
	if _, err := NewSimulation(set, Config{Processors: 64, Scheme: SPSA, GridLog2: 1}); err == nil {
		t.Fatal("undersized grid accepted")
	}
}
