package barneshut

import (
	"math"
	"runtime"
	"testing"

	"repro/internal/compute"
)

// The incremental step path (tree.Builder + flat SoA kernels) and the
// cold path (from-scratch BuildKeyed + pointer traversal, the pre-
// incremental code) must produce bit-identical trajectories and
// simulated metrics: the two-clock rule says host optimizations may only
// change the wall clock.
func TestSerialSimIncrementalMatchesCold(t *testing.T) {
	for _, integ := range []string{"leapfrog", "euler", "yoshida4"} {
		t.Run(integ, func(t *testing.T) {
			set := NewPlummer(1500, 1, V3{}, 17)
			cfg := SerialConfig{Alpha: 0.67, Eps: 0.01, DT: 0.005, Integrator: integ}
			warm, err := NewSerialSim(set, cfg)
			if err != nil {
				t.Fatal(err)
			}
			coldCfg := cfg
			coldCfg.Cold = true
			cold, err := NewSerialSim(set, coldCfg)
			if err != nil {
				t.Fatal(err)
			}
			for step := 0; step < 6; step++ {
				ws := warm.Step()
				cs := cold.Step()
				if ws != cs {
					t.Fatalf("step %d: stats differ: warm %+v cold %+v", step, ws, cs)
				}
				wb, cb := warm.Bodies(), cold.Bodies()
				for i := range wb {
					if wb[i] != cb[i] {
						t.Fatalf("step %d: body %d differs:\nwarm %+v\ncold %+v", step, i, wb[i], cb[i])
					}
				}
			}
			if warm.LastBuild().Cold {
				t.Fatal("warm sim still building cold after 6 steps")
			}
			if math.Float64bits(warm.KineticEnergy()) != math.Float64bits(cold.KineticEnergy()) {
				t.Fatal("kinetic energies diverged")
			}
		})
	}
}

// Host parallelism must not perturb the incremental path either: the
// trajectory under multi-worker flat kernels is bit-identical to the
// single-worker run.
func TestSerialSimInvariantUnderHostParallelism(t *testing.T) {
	oldProcs := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(oldProcs)

	run := func(workers int) []Particle {
		prev := compute.SetMaxWorkers(workers)
		defer compute.SetMaxWorkers(prev)
		set := NewPlummer(9000, 1, V3{}, 29)
		s, err := NewSerialSim(set, SerialConfig{DT: 0.005})
		if err != nil {
			t.Fatal(err)
		}
		s.Run(3)
		return s.Bodies()
	}

	serial := run(1)
	parallel := run(4)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("body %d differs across worker counts:\n1: %+v\n4: %+v", i, serial[i], parallel[i])
		}
	}
}

func TestSerialSimEnergyConservation(t *testing.T) {
	set := NewPlummer(800, 1, V3{}, 3)
	s, err := NewSerialSim(set, SerialConfig{Alpha: 0.5, Eps: 0.05, DT: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	e0 := s.TotalEnergyDirect()
	s.Run(25)
	e1 := s.TotalEnergyDirect()
	if drift := math.Abs((e1 - e0) / e0); drift > 0.02 {
		t.Fatalf("energy drift %v over 25 leapfrog steps (E %v -> %v)", drift, e0, e1)
	}
	if s.Steps() != 25 || s.Evals() == 0 {
		t.Fatalf("bookkeeping: steps=%d evals=%d", s.Steps(), s.Evals())
	}
}

func TestSerialSimPhasesAccumulate(t *testing.T) {
	set := NewPlummer(2000, 1, V3{}, 5)
	s, err := NewSerialSim(set, SerialConfig{DT: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(3)
	ph := s.Phases()
	if ph.Build <= 0 || ph.Force <= 0 {
		t.Fatalf("phase clocks not accumulating: %+v", ph)
	}
	rep := s.LastBuild()
	if rep.Cold || rep.N != 2000 {
		t.Fatalf("unexpected last build report: %+v", rep)
	}
}

func TestSerialSimEmptySetRejected(t *testing.T) {
	if _, err := NewSerialSim(&ParticleSet{}, SerialConfig{}); err == nil {
		t.Fatal("empty set accepted")
	}
}
