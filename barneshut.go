// Package barneshut is a Go reproduction of "Scalable parallel
// formulations of the Barnes–Hut method for n-body simulations" (Grama,
// Kumar, Sameh; Supercomputing '94 / Parallel Computing 24, 1998).
//
// It provides:
//
//   - a serial Barnes–Hut octree with monopole forces and degree-k
//     multipole (solid-harmonic) potentials;
//   - the paper's three parallel formulations — SPSA, SPDA and DPDA — on
//     a simulated message-passing multicomputer with nCUBE2 and CM5 cost
//     profiles, all based on the function-shipping paradigm, plus the
//     data-shipping baseline they are compared against and a
//     locally-essential-tree (LET) engine that trades one bulk exchange
//     per step for fully local traversals;
//   - particle distribution generators (Plummer, Gaussian families) and
//     an O(n²) direct-summation ground truth;
//   - a Simulation type that advances a particle system through time with
//     a symplectic leapfrog integrator driven by any of the formulations.
//
// The import path of this package is "repro".
package barneshut

import (
	"repro/internal/dist"
	"repro/internal/msg"
	"repro/internal/obsv"
	"repro/internal/parbh"
	"repro/internal/vec"
)

// Re-exported core types. The library's public surface lives in this
// package; the internal packages are implementation detail.
type (
	// V3 is a 3-component vector.
	V3 = vec.V3
	// Box is an axis-aligned box.
	Box = vec.Box
	// Particle is a point mass with position and velocity.
	Particle = dist.Particle
	// ParticleSet is a particle collection plus its simulation domain.
	ParticleSet = dist.Set
	// GaussianSpec describes one Gaussian cluster for NewGaussians.
	GaussianSpec = dist.GaussianSpec
	// Scheme selects the parallel formulation (SPSA, SPDA, DPDA).
	Scheme = parbh.Scheme
	// Mode selects force vs potential computation.
	Mode = parbh.Mode
	// Shipping selects function- vs data-shipping.
	Shipping = parbh.Shipping
	// Lookup selects the branch-node lookup structure.
	Lookup = parbh.Lookup
	// Ordering selects the space-filling curve for dynamic assignment.
	Ordering = parbh.Ordering
	// TreeBuild selects the top-tree construction variant.
	TreeBuild = parbh.TreeBuild
	// StepResult reports one parallel time-step (timings, efficiency,
	// phase breakdown, interaction statistics, communication volume).
	StepResult = parbh.Result
	// MachineProfile holds the simulated machine's cost constants.
	MachineProfile = msg.CostProfile
	// Tracer records per-rank trace events on the simulated and host
	// clocks; export with WriteChrome for Perfetto. See internal/obsv.
	Tracer = obsv.Tracer
	// LoadProfile summarizes a step's per-rank work distribution.
	LoadProfile = obsv.LoadProfile
)

// NewTracer returns a tracer ready to attach with Simulation.SetTracer.
func NewTracer() *Tracer { return obsv.New() }

// ProfileWork computes a load-imbalance profile from per-rank work
// measurements such as StepResult.RankForce.
func ProfileWork(work []float64) LoadProfile { return obsv.ProfileWork(work) }

// Parallel formulation selectors.
const (
	// SPSA is static partitioning, static (gray-code scatter) assignment.
	SPSA = parbh.SPSA
	// SPDA is static partitioning, dynamic (Morton-run) assignment.
	SPDA = parbh.SPDA
	// DPDA is dynamic partitioning (costzones), dynamic assignment.
	DPDA = parbh.DPDA
)

// Computation modes.
const (
	// ForceMode computes monopole force vectors.
	ForceMode = parbh.ForceMode
	// PotentialMode computes degree-k multipole potentials.
	PotentialMode = parbh.PotentialMode
)

// Communication paradigms.
const (
	// FunctionShipping ships particles to the data (the paper's schemes).
	FunctionShipping = parbh.FunctionShipping
	// DataShipping fetches tree nodes to the computation (the baseline).
	DataShipping = parbh.DataShipping
	// DataShippingNaive is data shipping without the per-step node cache:
	// every traversal miss is a fetch, as in the naive baseline the paper
	// argues against.
	DataShippingNaive = parbh.DataShippingNaive
	// LETShipping assembles a locally essential tree per rank with one
	// bulk exchange and a cross-step section cache, then evaluates forces
	// entirely locally. Bit-identical to FunctionShipping.
	LETShipping = parbh.LETShipping
)

// Branch lookup structures (Section 4.2.3).
const (
	// HashLookup locates branch nodes through a hash table.
	HashLookup = parbh.HashLookup
	// SortedLookup binary-searches a sorted key table.
	SortedLookup = parbh.SortedLookup
)

// Cluster orderings for dynamic assignment.
const (
	// MortonOrdering is the paper's Z-curve ordering.
	MortonOrdering = parbh.MortonOrdering
	// HilbertOrdering is the Peano–Hilbert alternative.
	HilbertOrdering = parbh.HilbertOrdering
)

// Top-tree construction variants (Section 3.1).
const (
	// BroadcastBuild rebuilds the top tree redundantly everywhere.
	BroadcastBuild = parbh.BroadcastBuild
	// NonReplicatedBuild computes each top cell once at a designated owner.
	NonReplicatedBuild = parbh.NonReplicatedBuild
)

// Phase names of StepResult.Phases (the rows of the paper's Table 3).
const (
	PhaseMigrate   = parbh.PhaseMigrate
	PhaseLocalTree = parbh.PhaseLocalTree
	PhaseTreeMerge = parbh.PhaseTreeMerge
	PhaseBroadcast = parbh.PhaseBroadcast
	PhaseLET       = parbh.PhaseLET
	PhaseForce     = parbh.PhaseForce
	PhaseLoadBal   = parbh.PhaseLoadBal
)

// NCube2 returns the simulated cost profile of the paper's 256-processor
// nCUBE2 (hypercube network, ~2 Mflop/s nodes).
func NCube2() MachineProfile { return msg.NCube2() }

// CM5 returns the simulated cost profile of the paper's 256-processor
// CM5 (fat-tree network, faster nodes).
func CM5() MachineProfile { return msg.CM5() }

// IdealMachine returns a profile with free communication, useful for
// algorithm-only runs and tests.
func IdealMachine() MachineProfile { return msg.Ideal() }

// NewPlummer generates an n-particle Plummer sphere in virial equilibrium
// with scale radius a centred at center (the paper's p_* datasets).
func NewPlummer(n int, a float64, center V3, seed int64) *ParticleSet {
	return dist.Plummer(n, a, center, seed)
}

// NewGaussians generates a superposition of Gaussian clusters inside
// domain (the paper's g_* and s_*g_* datasets).
func NewGaussians(specs []GaussianSpec, domain Box, seed int64) *ParticleSet {
	return dist.Gaussians(specs, domain, seed)
}

// NewUniform generates n uniformly distributed particles in box.
func NewUniform(n int, box Box, seed int64) *ParticleSet {
	return dist.Uniform(n, box, seed)
}

// NewNamed regenerates one of the paper's named datasets ("plummer",
// "g", "g2", "s_1g_a", "s_1g_b", "s_10g_a", "s_10g_b", "uniform") at an
// arbitrary particle count.
func NewNamed(name string, n int, seed int64) (*ParticleSet, error) {
	return dist.Named(name, n, seed)
}
