package barneshut

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
)

// checkpoint is the serialized form of a Simulation: configuration plus
// authoritative particle state. The engine's internal decomposition is
// rebuilt on restore (the first step after a restore re-balances, exactly
// like the first step of a fresh simulation).
type checkpoint struct {
	Version int
	Config  Config
	Time    float64
	Steps   int
	Domain  Box
	Bodies  []Particle
}

const checkpointVersion = 1

// WriteCheckpoint serializes the simulation state so it can be resumed
// later with ReadCheckpoint. The stream is a stdlib gob encoding.
func (s *Simulation) WriteCheckpoint(w io.Writer) error {
	cp := checkpoint{
		Version: checkpointVersion,
		Config:  s.cfg,
		Time:    s.time,
		Steps:   s.steps,
		Domain:  s.domain(),
		Bodies:  s.Bodies(),
	}
	if err := gob.NewEncoder(w).Encode(cp); err != nil {
		return fmt.Errorf("barneshut: writing checkpoint: %w", err)
	}
	return nil
}

// domain returns the engine's root cell so the restored decomposition
// anchors to the same cube.
func (s *Simulation) domain() Box { return s.engine.Domain() }

// ReadCheckpoint reconstructs a Simulation from a checkpoint stream.
// It fails with a descriptive error on truncated or corrupt streams and
// on checkpoints written by a newer version of this package.
func ReadCheckpoint(r io.Reader) (*Simulation, error) {
	var cp checkpoint
	if err := gob.NewDecoder(r).Decode(&cp); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("barneshut: truncated checkpoint stream: %w", err)
		}
		return nil, fmt.Errorf("barneshut: corrupt checkpoint stream: %w", err)
	}
	if cp.Version > checkpointVersion {
		return nil, fmt.Errorf("barneshut: checkpoint version %d is newer than the supported version %d (written by a newer release?)",
			cp.Version, checkpointVersion)
	}
	if cp.Version != checkpointVersion {
		return nil, fmt.Errorf("barneshut: unsupported checkpoint version %d", cp.Version)
	}
	if len(cp.Bodies) == 0 {
		return nil, errors.New("barneshut: checkpoint contains no particles")
	}
	set := &ParticleSet{Particles: cp.Bodies, Domain: cp.Domain}
	sim, err := NewSimulation(set, cp.Config)
	if err != nil {
		return nil, err
	}
	sim.time = cp.Time
	sim.steps = cp.Steps
	return sim, nil
}
