package barneshut

import (
	"encoding/gob"
	"fmt"
	"io"
)

// checkpoint is the serialized form of a Simulation: configuration plus
// authoritative particle state. The engine's internal decomposition is
// rebuilt on restore (the first step after a restore re-balances, exactly
// like the first step of a fresh simulation).
type checkpoint struct {
	Version int
	Config  Config
	Time    float64
	Steps   int
	Domain  Box
	Bodies  []Particle
}

const checkpointVersion = 1

// WriteCheckpoint serializes the simulation state so it can be resumed
// later with ReadCheckpoint. The stream is a stdlib gob encoding.
func (s *Simulation) WriteCheckpoint(w io.Writer) error {
	cp := checkpoint{
		Version: checkpointVersion,
		Config:  s.cfg,
		Time:    s.time,
		Steps:   s.steps,
		Domain:  s.domain(),
		Bodies:  s.Bodies(),
	}
	if err := gob.NewEncoder(w).Encode(cp); err != nil {
		return fmt.Errorf("barneshut: writing checkpoint: %w", err)
	}
	return nil
}

// domain returns the engine's root cell so the restored decomposition
// anchors to the same cube.
func (s *Simulation) domain() Box { return s.engine.Domain() }

// ReadCheckpoint reconstructs a Simulation from a checkpoint stream.
func ReadCheckpoint(r io.Reader) (*Simulation, error) {
	var cp checkpoint
	if err := gob.NewDecoder(r).Decode(&cp); err != nil {
		return nil, fmt.Errorf("barneshut: reading checkpoint: %w", err)
	}
	if cp.Version != checkpointVersion {
		return nil, fmt.Errorf("barneshut: unsupported checkpoint version %d", cp.Version)
	}
	set := &ParticleSet{Particles: cp.Bodies, Domain: cp.Domain}
	sim, err := NewSimulation(set, cp.Config)
	if err != nil {
		return nil, err
	}
	sim.time = cp.Time
	sim.steps = cp.Steps
	return sim, nil
}
