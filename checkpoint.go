package barneshut

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
)

// checkpoint is the serialized form of a Simulation: configuration plus
// authoritative particle state. The engine's internal decomposition is
// rebuilt on restore (the first step after a restore re-balances, exactly
// like the first step of a fresh simulation).
type checkpoint struct {
	Version int
	Config  Config
	Time    float64
	Steps   int
	Domain  Box
	Bodies  []Particle
	// FrameStep (v2) is the frame-store step this state corresponds to:
	// a frames-aware restorer can seek the job's frame chain to this
	// step instead of replaying from zero. Zero-valued in v1 streams.
	FrameStep int64
}

// Checkpoint stream versions. v1 predates the frame store; v2 adds
// FrameStep. Decoding accepts the whole [checkpointMinVersion,
// checkpointVersion] range — gob fills absent fields with zero values,
// which is exactly v1's meaning — and anything outside it fails with a
// version-specific error.
const (
	checkpointVersion    = 2
	checkpointMinVersion = 1
)

// WriteCheckpoint serializes the simulation state so it can be resumed
// later with ReadCheckpoint. The stream is a stdlib gob encoding.
func (s *Simulation) WriteCheckpoint(w io.Writer) error {
	cp := checkpoint{
		Version:   checkpointVersion,
		Config:    s.cfg,
		Time:      s.time,
		Steps:     s.steps,
		Domain:    s.Domain(),
		Bodies:    s.Bodies(),
		FrameStep: s.frameMark,
	}
	if err := gob.NewEncoder(w).Encode(cp); err != nil {
		return fmt.Errorf("barneshut: writing checkpoint: %w", err)
	}
	return nil
}

// Domain returns the engine's root cell so a restored or snapshotted
// decomposition anchors to the same cube.
func (s *Simulation) Domain() Box { return s.engine.Domain() }

// ReadCheckpoint reconstructs a Simulation from a checkpoint stream.
// It fails with a descriptive error on truncated or corrupt streams, on
// checkpoints written by a newer version of this package, and on
// versions older than checkpointMinVersion.
func ReadCheckpoint(r io.Reader) (*Simulation, error) {
	var cp checkpoint
	if err := gob.NewDecoder(r).Decode(&cp); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("barneshut: truncated checkpoint stream: %w", err)
		}
		return nil, fmt.Errorf("barneshut: corrupt checkpoint stream: %w", err)
	}
	if cp.Version > checkpointVersion {
		return nil, fmt.Errorf("barneshut: checkpoint version %d is newer than the supported version %d (written by a newer release?)",
			cp.Version, checkpointVersion)
	}
	if cp.Version < checkpointMinVersion {
		return nil, fmt.Errorf("barneshut: checkpoint version %d predates the oldest supported version %d",
			cp.Version, checkpointMinVersion)
	}
	set := &ParticleSet{Particles: cp.Bodies, Domain: cp.Domain}
	sim, err := RestoreSimulation(set, cp.Config, cp.Time, cp.Steps)
	if err != nil {
		return nil, err
	}
	sim.frameMark = cp.FrameStep
	return sim, nil
}

// RestoreSimulation rebuilds a mid-run Simulation from authoritative
// particle state: the engine re-derives its decomposition from the
// bodies, and the clocks restart at tm/steps. This is the shared core
// of ReadCheckpoint and the frame-store resume path (a decoded keyframe
// is exactly such a particle set).
func RestoreSimulation(set *ParticleSet, cfg Config, tm float64, steps int) (*Simulation, error) {
	if len(set.Particles) == 0 {
		return nil, errors.New("barneshut: restore from state with no particles")
	}
	sim, err := NewSimulation(set, cfg)
	if err != nil {
		return nil, err
	}
	sim.time = tm
	sim.steps = steps
	return sim, nil
}

// SetFrameMark records the frame-store step this simulation state is
// aligned with; it rides along in v2 checkpoints so a restorer can
// cross-reference the gob state against the job's frame chain.
func (s *Simulation) SetFrameMark(step int64) { s.frameMark = step }

// FrameMark returns the last recorded frame-store step.
func (s *Simulation) FrameMark() int64 { return s.frameMark }
