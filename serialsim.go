package barneshut

import (
	"fmt"
	"time"

	"repro/internal/direct"
	"repro/internal/dist"
	"repro/internal/integrate"
	"repro/internal/tree"
	"repro/internal/vec"
)

// SerialConfig parameterizes a SerialSim.
type SerialConfig struct {
	// Alpha is the multipole acceptance parameter (default 0.67).
	Alpha float64
	// Eps is the Plummer force softening (default 0).
	Eps float64
	// LeafCap is the s parameter (default 8).
	LeafCap int
	// DT is the integrator time-step (default 0.01).
	DT float64
	// Integrator selects the time integrator (default "leapfrog").
	Integrator string
	// Cold disables all cross-step reuse: every force evaluation runs the
	// from-scratch BuildKeyed plus the pointer-chasing traversal — the
	// pre-incremental step path, kept as the reference the incremental
	// path is benchmarked and golden-tested against. Results are
	// bit-identical either way; only the host clock differs.
	Cold bool
}

// StepPhases is the cumulative host-clock breakdown of the hot step
// path. Host time only — no simulated metric is derived from it.
type StepPhases struct {
	Build     time.Duration // octree construction (key recompute + diff/refresh/rebuild, or cold build)
	Sort      time.Duration // adaptive Morton re-sort (zero in cold mode, where it is part of Build)
	Force     time.Duration // force sweep (flatten + kernels, or pointer traversal)
	Integrate time.Duration // integrator arithmetic and bookkeeping
}

// SerialSim advances a particle system with the serial Barnes–Hut method
// on the host: incremental octree rebuilds (tree.Builder) feeding the
// flat structure-of-arrays force kernels (tree.FlatTree), under a
// symplectic integrator. It is the single-machine hot path: the same
// physics as Simulation with Processors=1, without the simulated-machine
// scaffolding.
type SerialSim struct {
	cfg    SerialConfig
	domain vec.Box
	bodies []Particle

	builder *tree.Builder
	flat    *tree.FlatTree
	method  integrate.Integrator

	stats  InteractionStats // stats of the most recent force evaluation
	phases StepPhases
	evals  int
	time   float64
	steps  int
}

// NewSerialSim builds a serial simulation over a copy of the particle
// set. The set's Domain must enclose the particles for the whole run (it
// anchors the Morton decomposition); when zero it is derived from the
// initial positions.
func NewSerialSim(set *ParticleSet, cfg SerialConfig) (*SerialSim, error) {
	if cfg.Alpha == 0 {
		cfg.Alpha = 0.67
	}
	if cfg.LeafCap <= 0 {
		cfg.LeafCap = tree.DefaultLeafCap
	}
	if cfg.DT == 0 {
		cfg.DT = 0.01
	}
	if cfg.Integrator == "" {
		cfg.Integrator = "leapfrog"
	}
	method, err := integrate.New(cfg.Integrator)
	if err != nil {
		return nil, err
	}
	if set.N() == 0 {
		return nil, fmt.Errorf("barneshut: empty particle set")
	}
	domain := set.Domain
	if domain == (vec.Box{}) {
		pts := make([]vec.V3, set.N())
		for i := range set.Particles {
			pts[i] = set.Particles[i].Pos
		}
		domain = vec.BoundingBox(pts).Expand(1e-9)
	}
	s := &SerialSim{
		cfg:     cfg,
		domain:  domain,
		bodies:  append([]Particle(nil), set.Particles...),
		builder: tree.NewBuilder(domain, cfg.LeafCap),
		method:  method,
	}
	return s, nil
}

// Config returns the simulation's effective configuration.
func (s *SerialSim) Config() SerialConfig { return s.cfg }

// Bodies returns the current particle states in input order (a copy).
func (s *SerialSim) Bodies() []Particle {
	return append([]Particle(nil), s.bodies...)
}

// Time returns the current simulation time.
func (s *SerialSim) Time() float64 { return s.time }

// Steps returns the number of completed time-steps.
func (s *SerialSim) Steps() int { return s.steps }

// Evals returns the number of force evaluations performed.
func (s *SerialSim) Evals() int { return s.evals }

// LastStats returns the interaction statistics of the most recent force
// evaluation.
func (s *SerialSim) LastStats() InteractionStats { return s.stats }

// LastBuild returns the tree builder's report for the most recent force
// evaluation (zero value in cold mode).
func (s *SerialSim) LastBuild() tree.BuildReport {
	if s.cfg.Cold {
		return tree.BuildReport{}
	}
	return s.builder.Last()
}

// Phases returns the cumulative host-clock phase breakdown.
func (s *SerialSim) Phases() StepPhases { return s.phases }

// evalForces is the integrator's acceleration callback: build (cold or
// incremental), then sweep (pointer or flat kernels). The two paths
// return bit-identical accelerations and statistics.
func (s *SerialSim) evalForces(ps []dist.Particle, buildDur, sortDur, forceDur *time.Duration) []vec.V3 {
	tb := time.Now()
	var accls []vec.V3
	var stats tree.Stats
	if s.cfg.Cold {
		tr := tree.BuildKeyed(ps, s.domain, s.cfg.LeafCap)
		*buildDur += time.Since(tb)
		tf := time.Now()
		accls, stats = tr.AccelAll(ps, s.cfg.Alpha, s.cfg.Eps)
		*forceDur += time.Since(tf)
	} else {
		tr := s.builder.Step(ps)
		rep := s.builder.Last()
		*sortDur += rep.KeyDur + rep.SortDur
		*buildDur += time.Since(tb) - rep.KeyDur - rep.SortDur
		tf := time.Now()
		s.flat = tree.Flatten(tr, s.flat)
		accls, stats = s.flat.AccelAll(ps, s.cfg.Alpha, s.cfg.Eps)
		*forceDur += time.Since(tf)
	}
	s.stats = stats
	s.evals++
	return accls
}

// Step advances the system by one time-step and returns the interaction
// statistics of the step's last force evaluation.
func (s *SerialSim) Step() InteractionStats {
	t0 := time.Now()
	var buildDur, sortDur, forceDur time.Duration
	s.method.Step(s.bodies, s.cfg.DT, func(ps []dist.Particle) []vec.V3 {
		return s.evalForces(ps, &buildDur, &sortDur, &forceDur)
	})
	s.time += s.cfg.DT
	s.steps++
	total := time.Since(t0)
	s.phases.Build += buildDur
	s.phases.Sort += sortDur
	s.phases.Force += forceDur
	s.phases.Integrate += total - buildDur - sortDur - forceDur
	return s.stats
}

// Run advances the simulation n steps and returns the last step's
// statistics.
func (s *SerialSim) Run(n int) InteractionStats {
	for i := 0; i < n; i++ {
		s.Step()
	}
	return s.stats
}

// KineticEnergy returns the system's kinetic energy.
func (s *SerialSim) KineticEnergy() float64 {
	var ke float64
	for i := range s.bodies {
		ke += 0.5 * s.bodies[i].Mass * s.bodies[i].Vel.Norm2()
	}
	return ke
}

// TotalEnergyDirect returns the exact total energy by direct summation —
// O(n²), intended for validation on modest n.
func (s *SerialSim) TotalEnergyDirect() float64 {
	return direct.TotalEnergy(s.bodies, s.cfg.Eps)
}
