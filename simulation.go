package barneshut

import (
	"fmt"

	"repro/internal/direct"
	"repro/internal/dist"
	"repro/internal/integrate"
	"repro/internal/msg"
	"repro/internal/parbh"
)

// Config parameterizes a Simulation.
type Config struct {
	// Processors is the number of simulated processors (default 1). The
	// SPSA/SPDA schemes require a power of two.
	Processors int
	// Profile is the simulated machine (default NCube2()).
	Profile MachineProfile
	// Scheme selects the parallel formulation (default SPSA).
	Scheme Scheme
	// Mode selects forces (default) or potentials.
	Mode Mode
	// Alpha is the multipole acceptance parameter (default 0.67).
	Alpha float64
	// Degree is the multipole degree in PotentialMode (default 4).
	Degree int
	// Eps is the Plummer force softening (default 0).
	Eps float64
	// LeafCap is the s parameter: max particles per leaf (default 8).
	LeafCap int
	// GridLog2 sets the SPSA/SPDA cluster grid to 2^GridLog2 per
	// dimension (default 3, i.e. 512 clusters).
	GridLog2 int
	// BinSize is the function-shipping batch size (default 100).
	BinSize int
	// DT is the integrator time-step (default 0.01).
	DT float64
	// Integrator selects the time integrator: "leapfrog" (default,
	// 2nd-order symplectic KDK), "yoshida4" (4th-order symplectic), or
	// "euler".
	Integrator string
	// Shipping, BranchLookup, Ordering, TreeBuild select implementation
	// variants; zero values give the paper's defaults (function shipping,
	// hash lookup, Morton ordering, broadcast-based construction).
	Shipping     Shipping
	BranchLookup Lookup
	Ordering     Ordering
	TreeBuild    TreeBuild
}

// Simulation advances a particle system through time using one of the
// parallel Barnes–Hut formulations for the force computation and a
// kick-drift-kick leapfrog integrator for the dynamics.
type Simulation struct {
	cfg     Config
	machine *msg.Machine
	engine  *parbh.Engine
	method  integrate.Integrator

	bodies []Particle // authoritative state, indexed by particle ID
	accel  []V3       // accelerations at the current positions
	time   float64
	steps  int
	last   *StepResult

	// frameMark is the frame-store step this state is aligned with; see
	// SetFrameMark. Serialized in v2 checkpoints.
	frameMark int64
}

// NewSimulation builds a simulation over a copy of the particle set.
func NewSimulation(set *ParticleSet, cfg Config) (*Simulation, error) {
	if cfg.Processors == 0 {
		cfg.Processors = 1
	}
	if cfg.Processors < 0 {
		return nil, fmt.Errorf("barneshut: invalid processor count %d", cfg.Processors)
	}
	if cfg.Profile == (MachineProfile{}) {
		cfg.Profile = NCube2()
	}
	if cfg.DT == 0 {
		cfg.DT = 0.01
	}
	if cfg.Integrator == "" {
		cfg.Integrator = "leapfrog"
	}
	method, err := integrate.New(cfg.Integrator)
	if err != nil {
		return nil, err
	}
	machine := msg.NewMachine(cfg.Processors, cfg.Profile)
	engine, err := parbh.New(machine, set, parbh.Config{
		Scheme:       cfg.Scheme,
		Mode:         cfg.Mode,
		Alpha:        cfg.Alpha,
		Degree:       cfg.Degree,
		Eps:          cfg.Eps,
		LeafCap:      cfg.LeafCap,
		GridLog2:     cfg.GridLog2,
		BinSize:      cfg.BinSize,
		Shipping:     cfg.Shipping,
		BranchLookup: cfg.BranchLookup,
		Ordering:     cfg.Ordering,
		TreeBuild:    cfg.TreeBuild,
	})
	if err != nil {
		return nil, err
	}
	s := &Simulation{cfg: cfg, machine: machine, engine: engine, method: method}
	s.bodies = make([]Particle, set.N())
	for _, q := range set.Particles {
		s.bodies[q.ID] = q
	}
	return s, nil
}

// Config returns the simulation's effective configuration.
func (s *Simulation) Config() Config { return s.cfg }

// SetTracer attaches an observability tracer to the simulated machine;
// nil detaches. Tracing records per-rank phase spans and message
// instants without perturbing any simulated metric (see internal/obsv).
// Attach it before stepping.
func (s *Simulation) SetTracer(tr *Tracer) { s.machine.SetTracer(tr) }

// Tracer returns the attached tracer (nil when tracing is off).
func (s *Simulation) Tracer() *Tracer { return s.machine.Tracer() }

// Bodies returns the current particle states indexed by ID (a copy).
func (s *Simulation) Bodies() []Particle {
	out := make([]Particle, len(s.bodies))
	copy(out, s.bodies)
	return out
}

// Time returns the current simulation time.
func (s *Simulation) Time() float64 { return s.time }

// Steps returns the number of completed time-steps.
func (s *Simulation) Steps() int { return s.steps }

// LastResult returns the most recent force-computation result (nil
// before the first step).
func (s *Simulation) LastResult() *StepResult { return s.last }

// ComputeForces runs one parallel force (or potential) computation at the
// current positions without advancing the dynamics.
func (s *Simulation) ComputeForces() *StepResult {
	res := s.engine.Step()
	s.last = res
	if res.Accels != nil {
		s.accel = res.Accels
	}
	return res
}

// Step advances the system by one time-step of the configured integrator
// (kick-drift-kick leapfrog by default). Every force evaluation runs on
// the simulated parallel machine; the last evaluation's result is
// returned. Step panics in PotentialMode (potentials carry no dynamics);
// use ComputeForces.
func (s *Simulation) Step() *StepResult {
	if s.cfg.Mode == PotentialMode {
		panic("barneshut: Step requires ForceMode; use ComputeForces for potentials")
	}
	accelFn := func(ps []dist.Particle) []V3 {
		s.engine.SetParticles(ps)
		res := s.engine.Step()
		s.last = res
		s.accel = res.Accels
		return res.Accels
	}
	s.method.Step(s.bodies, s.cfg.DT, accelFn)
	s.engine.SetParticles(s.bodies)
	s.time += s.cfg.DT
	s.steps++
	return s.last
}

// Run advances the simulation n steps and returns the last result.
func (s *Simulation) Run(n int) *StepResult {
	var res *StepResult
	for i := 0; i < n; i++ {
		res = s.Step()
	}
	return res
}

// KineticEnergy returns the system's kinetic energy.
func (s *Simulation) KineticEnergy() float64 {
	var ke float64
	for i := range s.bodies {
		ke += 0.5 * s.bodies[i].Mass * s.bodies[i].Vel.Norm2()
	}
	return ke
}

// TotalEnergyDirect returns the exact total energy by direct summation —
// O(n²), intended for validation on modest n.
func (s *Simulation) TotalEnergyDirect() float64 {
	return direct.TotalEnergy(s.bodies, s.cfg.Eps)
}

var _ = dist.Particle{} // keep the dist import tied to the type aliases
