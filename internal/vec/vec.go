// Package vec provides small fixed-dimension vector types used throughout
// the Barnes–Hut code. Vectors are value types; all operations return new
// values and never mutate their receivers, which keeps force-accumulation
// code free of aliasing surprises.
package vec

import (
	"fmt"
	"math"
)

// V3 is a three-dimensional vector of float64 components.
type V3 struct {
	X, Y, Z float64
}

// Zero is the additive identity.
var Zero = V3{}

// Add returns v + w.
func (v V3) Add(w V3) V3 { return V3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v V3) Sub(w V3) V3 { return V3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s * v.
func (v V3) Scale(s float64) V3 { return V3{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the inner product of v and w.
func (v V3) Dot(w V3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v × w.
func (v V3) Cross(w V3) V3 {
	return V3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm2 returns the squared Euclidean norm.
func (v V3) Norm2() float64 { return v.Dot(v) }

// Norm returns the Euclidean norm.
func (v V3) Norm() float64 { return math.Sqrt(v.Norm2()) }

// Dist returns the Euclidean distance between v and w.
func (v V3) Dist(w V3) float64 { return v.Sub(w).Norm() }

// Dist2 returns the squared Euclidean distance between v and w.
func (v V3) Dist2(w V3) float64 { return v.Sub(w).Norm2() }

// Min returns the componentwise minimum of v and w.
func (v V3) Min(w V3) V3 {
	return V3{math.Min(v.X, w.X), math.Min(v.Y, w.Y), math.Min(v.Z, w.Z)}
}

// Max returns the componentwise maximum of v and w.
func (v V3) Max(w V3) V3 {
	return V3{math.Max(v.X, w.X), math.Max(v.Y, w.Y), math.Max(v.Z, w.Z)}
}

// MaxComponent returns the largest component of v.
func (v V3) MaxComponent() float64 { return math.Max(v.X, math.Max(v.Y, v.Z)) }

// Abs returns the componentwise absolute value.
func (v V3) Abs() V3 { return V3{math.Abs(v.X), math.Abs(v.Y), math.Abs(v.Z)} }

// Component returns component i (0=X, 1=Y, 2=Z). It panics for other i.
func (v V3) Component(i int) float64 {
	switch i {
	case 0:
		return v.X
	case 1:
		return v.Y
	case 2:
		return v.Z
	}
	panic(fmt.Sprintf("vec: invalid component index %d", i))
}

// WithComponent returns a copy of v with component i set to x.
func (v V3) WithComponent(i int, x float64) V3 {
	switch i {
	case 0:
		v.X = x
	case 1:
		v.Y = x
	case 2:
		v.Z = x
	default:
		panic(fmt.Sprintf("vec: invalid component index %d", i))
	}
	return v
}

// IsFinite reports whether all components are finite numbers.
func (v V3) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0) &&
		!math.IsNaN(v.Z) && !math.IsInf(v.Z, 0)
}

// String implements fmt.Stringer.
func (v V3) String() string { return fmt.Sprintf("(%.6g, %.6g, %.6g)", v.X, v.Y, v.Z) }

// Box is an axis-aligned bounding box, used for tree cells and domain
// decomposition. Min and Max are opposite corners with Min ≤ Max
// componentwise.
type Box struct {
	Min, Max V3
}

// NewBox returns the box spanning the two corners in either order.
func NewBox(a, b V3) Box { return Box{Min: a.Min(b), Max: a.Max(b)} }

// BoundingBox returns the smallest box containing all the given points.
// It returns a zero box when pts is empty.
func BoundingBox(pts []V3) Box {
	if len(pts) == 0 {
		return Box{}
	}
	b := Box{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		b.Min = b.Min.Min(p)
		b.Max = b.Max.Max(p)
	}
	return b
}

// Center returns the centre of the box.
func (b Box) Center() V3 { return b.Min.Add(b.Max).Scale(0.5) }

// Size returns the edge lengths of the box.
func (b Box) Size() V3 { return b.Max.Sub(b.Min) }

// LongestSide returns the length of the longest edge.
func (b Box) LongestSide() float64 { return b.Size().MaxComponent() }

// Contains reports whether p lies inside the box (closed on the low
// side, open on the high side except at the box's own Max corner, which
// is treated as inside so boundary particles are not lost).
func (b Box) Contains(p V3) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X &&
		p.Y >= b.Min.Y && p.Y <= b.Max.Y &&
		p.Z >= b.Min.Z && p.Z <= b.Max.Z
}

// Cube returns the smallest cube sharing b's centre that contains b.
// Barnes–Hut cells are cubes so that the MAC's size/distance ratio is
// isotropic.
func (b Box) Cube() Box {
	c := b.Center()
	h := b.LongestSide() / 2
	d := V3{h, h, h}
	return Box{Min: c.Sub(d), Max: c.Add(d)}
}

// Octant returns the child cube with index oct in 0..7. Bit 0 selects
// the upper half in X, bit 1 in Y, bit 2 in Z.
func (b Box) Octant(oct int) Box {
	c := b.Center()
	child := b
	if oct&1 != 0 {
		child.Min.X = c.X
	} else {
		child.Max.X = c.X
	}
	if oct&2 != 0 {
		child.Min.Y = c.Y
	} else {
		child.Max.Y = c.Y
	}
	if oct&4 != 0 {
		child.Min.Z = c.Z
	} else {
		child.Max.Z = c.Z
	}
	return child
}

// OctantOf returns the octant index of p relative to the box centre.
func (b Box) OctantOf(p V3) int {
	c := b.Center()
	oct := 0
	if p.X >= c.X {
		oct |= 1
	}
	if p.Y >= c.Y {
		oct |= 2
	}
	if p.Z >= c.Z {
		oct |= 4
	}
	return oct
}

// Union returns the smallest box containing both boxes.
func (b Box) Union(o Box) Box {
	return Box{Min: b.Min.Min(o.Min), Max: b.Max.Max(o.Max)}
}

// Expand grows the box by pad on every side.
func (b Box) Expand(pad float64) Box {
	d := V3{pad, pad, pad}
	return Box{Min: b.Min.Sub(d), Max: b.Max.Add(d)}
}
