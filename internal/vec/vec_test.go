package vec

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) <= 1e-12*(1+math.Abs(a)+math.Abs(b)) }

func v3AlmostEq(a, b V3) bool { return almostEq(a.X, b.X) && almostEq(a.Y, b.Y) && almostEq(a.Z, b.Z) }

func TestAddSub(t *testing.T) {
	a := V3{1, 2, 3}
	b := V3{-4, 5, 0.5}
	if got := a.Add(b); got != (V3{-3, 7, 3.5}) {
		t.Fatalf("Add = %v", got)
	}
	if got := a.Sub(b); got != (V3{5, -3, 2.5}) {
		t.Fatalf("Sub = %v", got)
	}
}

func TestScaleDot(t *testing.T) {
	a := V3{1, -2, 3}
	if got := a.Scale(2); got != (V3{2, -4, 6}) {
		t.Fatalf("Scale = %v", got)
	}
	if got := a.Dot(V3{4, 5, 6}); got != 4-10+18 {
		t.Fatalf("Dot = %v", got)
	}
}

func TestCrossOrthogonal(t *testing.T) {
	a := V3{1, 0, 0}
	b := V3{0, 1, 0}
	if got := a.Cross(b); got != (V3{0, 0, 1}) {
		t.Fatalf("Cross = %v", got)
	}
	// Property: cross product is orthogonal to both operands.
	f := func(ax, ay, az, bx, by, bz float64) bool {
		// Fold quick's unbounded inputs into a sane range to avoid overflow.
		fold := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 1e6)
		}
		u := V3{fold(ax), fold(ay), fold(az)}
		w := V3{fold(bx), fold(by), fold(bz)}
		c := u.Cross(w)
		// Use a scaled tolerance; magnitudes can be large.
		tol := 1e-9 * (1 + u.Norm()*w.Norm())
		return math.Abs(c.Dot(u)) <= tol*(1+u.Norm()) && math.Abs(c.Dot(w)) <= tol*(1+w.Norm())
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestNormDist(t *testing.T) {
	a := V3{3, 4, 0}
	if a.Norm() != 5 {
		t.Fatalf("Norm = %v", a.Norm())
	}
	if a.Norm2() != 25 {
		t.Fatalf("Norm2 = %v", a.Norm2())
	}
	if d := a.Dist(V3{0, 0, 0}); d != 5 {
		t.Fatalf("Dist = %v", d)
	}
	if d := a.Dist2(V3{3, 4, 12}); d != 144 {
		t.Fatalf("Dist2 = %v", d)
	}
}

func TestMinMaxAbs(t *testing.T) {
	a := V3{1, -5, 3}
	b := V3{-2, 4, 3}
	if got := a.Min(b); got != (V3{-2, -5, 3}) {
		t.Fatalf("Min = %v", got)
	}
	if got := a.Max(b); got != (V3{1, 4, 3}) {
		t.Fatalf("Max = %v", got)
	}
	if got := a.Abs(); got != (V3{1, 5, 3}) {
		t.Fatalf("Abs = %v", got)
	}
	if got := a.MaxComponent(); got != 3 {
		t.Fatalf("MaxComponent = %v", got)
	}
}

func TestComponentAccess(t *testing.T) {
	a := V3{7, 8, 9}
	for i, want := range []float64{7, 8, 9} {
		if got := a.Component(i); got != want {
			t.Fatalf("Component(%d) = %v, want %v", i, got, want)
		}
	}
	if got := a.WithComponent(1, -1); got != (V3{7, -1, 9}) {
		t.Fatalf("WithComponent = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Component(3) did not panic")
		}
	}()
	a.Component(3)
}

func TestIsFinite(t *testing.T) {
	if !(V3{1, 2, 3}).IsFinite() {
		t.Fatal("finite vector reported non-finite")
	}
	if (V3{math.NaN(), 0, 0}).IsFinite() {
		t.Fatal("NaN vector reported finite")
	}
	if (V3{0, math.Inf(1), 0}).IsFinite() {
		t.Fatal("Inf vector reported finite")
	}
}

func TestBoundingBox(t *testing.T) {
	pts := []V3{{1, 2, 3}, {-1, 5, 0}, {0, 0, 10}}
	b := BoundingBox(pts)
	if b.Min != (V3{-1, 0, 0}) || b.Max != (V3{1, 5, 10}) {
		t.Fatalf("BoundingBox = %+v", b)
	}
	for _, p := range pts {
		if !b.Contains(p) {
			t.Fatalf("box does not contain %v", p)
		}
	}
	if bb := BoundingBox(nil); bb != (Box{}) {
		t.Fatalf("empty BoundingBox = %+v", bb)
	}
}

func TestBoxCube(t *testing.T) {
	b := NewBox(V3{0, 0, 0}, V3{2, 4, 1})
	c := b.Cube()
	s := c.Size()
	if !almostEq(s.X, 4) || !almostEq(s.Y, 4) || !almostEq(s.Z, 4) {
		t.Fatalf("Cube size = %v", s)
	}
	if !v3AlmostEq(c.Center(), b.Center()) {
		t.Fatalf("Cube centre moved: %v vs %v", c.Center(), b.Center())
	}
}

func TestOctants(t *testing.T) {
	b := NewBox(V3{0, 0, 0}, V3{2, 2, 2})
	// Each octant's corners must be inside the parent and each octant must
	// contain the point its index claims.
	for oct := 0; oct < 8; oct++ {
		ch := b.Octant(oct)
		if !b.Contains(ch.Min) || !b.Contains(ch.Max) {
			t.Fatalf("octant %d escapes parent: %+v", oct, ch)
		}
		center := ch.Center()
		if got := b.OctantOf(center); got != oct {
			t.Fatalf("OctantOf(center of %d) = %d", oct, got)
		}
	}
}

func TestOctantOfRoundTrip(t *testing.T) {
	b := NewBox(V3{-1, -1, -1}, V3{1, 1, 1})
	f := func(x, y, z float64) bool {
		// Clamp generated coordinates into the box.
		clamp := func(v float64) float64 {
			return math.Mod(math.Abs(v), 2) - 1 // in [-1, 1)
		}
		p := V3{clamp(x), clamp(y), clamp(z)}
		oct := b.OctantOf(p)
		return b.Octant(oct).Contains(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUnionExpand(t *testing.T) {
	a := NewBox(V3{0, 0, 0}, V3{1, 1, 1})
	b := NewBox(V3{2, -1, 0}, V3{3, 0, 5})
	u := a.Union(b)
	if u.Min != (V3{0, -1, 0}) || u.Max != (V3{3, 1, 5}) {
		t.Fatalf("Union = %+v", u)
	}
	e := a.Expand(0.5)
	if e.Min != (V3{-0.5, -0.5, -0.5}) || e.Max != (V3{1.5, 1.5, 1.5}) {
		t.Fatalf("Expand = %+v", e)
	}
}

func TestBoxCenterSize(t *testing.T) {
	b := NewBox(V3{-2, 0, 4}, V3{2, 2, 8})
	if b.Center() != (V3{0, 1, 6}) {
		t.Fatalf("Center = %v", b.Center())
	}
	if b.Size() != (V3{4, 2, 4}) {
		t.Fatalf("Size = %v", b.Size())
	}
	if b.LongestSide() != 4 {
		t.Fatalf("LongestSide = %v", b.LongestSide())
	}
}
