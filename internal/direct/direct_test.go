package direct

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/vec"
)

func twoBody() []dist.Particle {
	return []dist.Particle{
		{ID: 0, Mass: 1, Pos: vec.V3{}},
		{ID: 1, Mass: 1, Pos: vec.V3{X: 2}},
	}
}

func TestTwoBodyAccel(t *testing.T) {
	a := Accels(twoBody(), 0)
	// |a| = G m / r² = 1/4, directed toward the other particle.
	if math.Abs(a[0].X-0.25) > 1e-15 || math.Abs(a[1].X+0.25) > 1e-15 {
		t.Fatalf("accels = %v", a)
	}
	if a[0].Y != 0 || a[0].Z != 0 {
		t.Fatalf("off-axis force: %v", a[0])
	}
}

func TestTwoBodyPotential(t *testing.T) {
	phi := Potentials(twoBody(), 0)
	if math.Abs(phi[0]+0.5) > 1e-15 || math.Abs(phi[1]+0.5) > 1e-15 {
		t.Fatalf("potentials = %v", phi)
	}
}

func TestNewtonThirdLaw(t *testing.T) {
	// Total momentum change must vanish: Σ m a = 0.
	s := dist.MustNamed("plummer", 500, 1)
	a := Accels(s.Particles, 0.01)
	var f vec.V3
	for i := range a {
		f = f.Add(a[i].Scale(s.Particles[i].Mass))
	}
	if f.Norm() > 1e-12 {
		t.Fatalf("net force = %v", f)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	s := dist.MustNamed("g", 700, 2)
	as := Accels(s.Particles, 0.02)
	ap := AccelsParallel(s.Particles, 0.02)
	for i := range as {
		if as[i] != ap[i] {
			t.Fatalf("accel %d: serial %v parallel %v", i, as[i], ap[i])
		}
	}
	ps := Potentials(s.Particles, 0.02)
	pp := PotentialsParallel(s.Particles, 0.02)
	for i := range ps {
		if ps[i] != pp[i] {
			t.Fatalf("potential %d: serial %v parallel %v", i, ps[i], pp[i])
		}
	}
}

func TestTotalEnergyTwoBody(t *testing.T) {
	ps := twoBody()
	ps[0].Vel = vec.V3{Y: 0.5}
	ps[1].Vel = vec.V3{Y: -0.5}
	// KE = 2 · ½ · 1 · 0.25 = 0.25; PE = -1·1/2 = -0.5.
	e := TotalEnergy(ps, 0)
	if math.Abs(e+0.25) > 1e-15 {
		t.Fatalf("energy = %v", e)
	}
}

func TestEmptyAndSingle(t *testing.T) {
	if got := Accels(nil, 0); len(got) != 0 {
		t.Fatal("nil input produced output")
	}
	one := []dist.Particle{{ID: 0, Mass: 1, Pos: vec.V3{X: 1}}}
	if a := Accels(one, 0); a[0] != (vec.V3{}) {
		t.Fatalf("lone particle accel = %v", a[0])
	}
	if p := Potentials(one, 0); p[0] != 0 {
		t.Fatalf("lone particle potential = %v", p[0])
	}
	if e := TotalEnergy(one, 0); e != 0 {
		t.Fatalf("lone particle energy = %v", e)
	}
}
