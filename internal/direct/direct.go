// Package direct implements the O(n²) all-pairs force and potential
// computations. It is the accuracy ground truth for the hierarchical
// method and the baseline whose cost motivates treecodes in the first
// place.
package direct

import (
	"repro/internal/compute"
	"repro/internal/dist"
	"repro/internal/phys"
	"repro/internal/vec"
)

// Accels returns the exact softened gravitational acceleration on every
// particle due to all others.
func Accels(ps []dist.Particle, eps float64) []vec.V3 {
	out := make([]vec.V3, len(ps))
	for i := range ps {
		var a vec.V3
		for j := range ps {
			if i == j {
				continue
			}
			a = a.Add(phys.Accel(ps[i].Pos, ps[j].Pos, ps[j].Mass, eps))
		}
		out[i] = a
	}
	return out
}

// Potentials returns the exact (unsoftened unless eps > 0) potential at
// every particle due to all others.
func Potentials(ps []dist.Particle, eps float64) []float64 {
	out := make([]float64, len(ps))
	for i := range ps {
		var phi float64
		for j := range ps {
			if i == j {
				continue
			}
			phi += phys.Potential(ps[i].Pos, ps[j].Pos, ps[j].Mass, eps)
		}
		out[i] = phi
	}
	return out
}

// AccelsParallel computes Accels using all available cores; results are
// identical to Accels (same summation order per particle).
func AccelsParallel(ps []dist.Particle, eps float64) []vec.V3 {
	out := make([]vec.V3, len(ps))
	compute.ParallelFor(len(ps), func(i int) {
		var a vec.V3
		for j := range ps {
			if i == j {
				continue
			}
			a = a.Add(phys.Accel(ps[i].Pos, ps[j].Pos, ps[j].Mass, eps))
		}
		out[i] = a
	})
	return out
}

// PotentialsParallel computes Potentials using all available cores.
func PotentialsParallel(ps []dist.Particle, eps float64) []float64 {
	out := make([]float64, len(ps))
	compute.ParallelFor(len(ps), func(i int) {
		var phi float64
		for j := range ps {
			if i == j {
				continue
			}
			phi += phys.Potential(ps[i].Pos, ps[j].Pos, ps[j].Mass, eps)
		}
		out[i] = phi
	})
	return out
}

// TotalEnergy returns kinetic plus potential energy of the system (each
// pair counted once), the conserved quantity integrators are checked
// against.
func TotalEnergy(ps []dist.Particle, eps float64) float64 {
	var ke, pe float64
	for i := range ps {
		ke += 0.5 * ps[i].Mass * ps[i].Vel.Norm2()
		for j := i + 1; j < len(ps); j++ {
			pe += ps[i].Mass * phys.Potential(ps[i].Pos, ps[j].Pos, ps[j].Mass, eps)
		}
	}
	return ke + pe
}
