package fabric

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ringReplicas is the number of virtual nodes per shard. 64 points per
// shard keeps the expected load spread within a few percent of uniform
// for small fleets while keeping ring rebuilds trivially cheap.
const ringReplicas = 64

// ringPoint is one virtual node: a position on the 64-bit ring owned by
// a shard.
type ringPoint struct {
	hash  uint64
	shard int
}

// Ring is a consistent-hash ring over shard IDs. It is an immutable
// value: membership changes build a new ring, so a dead shard's keys
// re-route to their ring successors while every other key keeps its
// owner — the property that makes re-routing after a shard death cheap
// and cache locality stable as the fleet grows.
type Ring struct {
	points []ringPoint
}

// NewRing builds a ring over the given shard IDs with names providing
// the hash identity (names, not IDs, so a shard that reconnects under a
// new session keeps its ring positions).
func NewRing(shards map[int]string) *Ring {
	r := &Ring{}
	for id, name := range shards {
		for v := 0; v < ringReplicas; v++ {
			r.points = append(r.points, ringPoint{
				hash:  hashKey(fmt.Sprintf("%s#%d", name, v)),
				shard: id,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// Len returns the number of distinct shards on the ring.
func (r *Ring) Len() int {
	seen := map[int]bool{}
	for _, p := range r.points {
		seen[p.shard] = true
	}
	return len(seen)
}

// Successors returns up to max distinct shard IDs clockwise from h: the
// key's owner first, then its failover order. An empty ring returns nil.
func (r *Ring) Successors(h uint64, max int) []int {
	if len(r.points) == 0 || max <= 0 {
		return nil
	}
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	var out []int
	seen := map[int]bool{}
	for i := 0; i < len(r.points) && len(out) < max; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.shard] {
			seen[p.shard] = true
			out = append(out, p.shard)
		}
	}
	return out
}

// Owner returns the shard owning h, or -1 on an empty ring.
func (r *Ring) Owner(h uint64) int {
	s := r.Successors(h, 1)
	if len(s) == 0 {
		return -1
	}
	return s[0]
}

// hashKey maps a string key onto the ring: FNV-1a followed by a 64-bit
// avalanche finalizer. Raw FNV-1a is a poor ring hash — strings that
// differ only in a trailing digit ("s1#0" … "s1#63") land within a
// narrow band of high bits, which would collapse a shard's 64 virtual
// nodes into one arc and re-create hot spots. The finalizer (the
// murmur3/splitmix mixing steps) gives every input bit full influence
// over the ring position. The routing hash does not need to be
// cryptographic — the cache key underneath it already is — it only
// needs to spread well.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
