package fabric

import (
	"regexp"
	"strings"
	"testing"
	"time"
)

// expositionLine matches one Prometheus text-format sample: a metric
// name, an optional single-label selector, and a numeric value.
var expositionLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"\})? (?:[-+]?[0-9.eE+-]+|NaN)$`)

func TestMetricsExpositionParses(t *testing.T) {
	start := time.Unix(1_000_000, 0)
	m := NewMetrics(start)
	m.JobsSubmitted.Add(5)
	m.CacheHits.Add(2)
	m.Routed.Add("s1", 3)
	m.Routed.Add("s2", 1)
	m.Rerouted.Add("peer-lost", 1)
	m.Admitted.Add("alice", 4)
	m.Rejected.Add("bob", 2)
	m.RouteSeconds.Observe(0.005)

	text := m.Render(start.Add(90 * time.Second))
	for i, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Errorf("line %d not valid exposition text: %q", i+1, line)
		}
	}
}

func TestMetricsExpositionContent(t *testing.T) {
	start := time.Unix(1_000_000, 0)
	m := NewMetrics(start)
	m.CacheHits.Add(7)
	m.Routed.Add("shard-a", 11)
	m.Rejected.Add("tenant-x", 3)
	text := m.Render(start.Add(time.Second))

	for _, want := range []string{
		"nbodygw_cache_hits_total 7",
		`nbodygw_jobs_routed_total{shard="shard-a"} 11`,
		`nbodygw_tenant_rejected_total{tenant="tenant-x"} 3`,
		"nbodygw_uptime_seconds 1.000",
		"# TYPE nbodygw_jobs_routed_total counter",
		"# TYPE nbodygw_jobs_pending gauge",
		"# TYPE nbodygw_route_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\nfull text:\n%s", want, text)
		}
	}
}

// Empty label families still announce their schema so dashboards can be
// built before traffic arrives.
func TestMetricsEmptyFamiliesKeepHeaders(t *testing.T) {
	m := NewMetrics(time.Unix(0, 0))
	text := m.Render(time.Unix(1, 0))
	for _, want := range []string{
		"# TYPE nbodygw_jobs_rerouted_total counter",
		"# TYPE nbodygw_tenant_admitted_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q for an empty family", want)
		}
	}
}

func TestLabeledCounterSorted(t *testing.T) {
	c := NewLabeledCounter("x_total", "help", "k")
	c.Add("zeta", 1)
	c.Add("alpha", 2)
	c.Add("mid", 3)
	var b strings.Builder
	c.Render(&b)
	text := b.String()
	ia := strings.Index(text, `k="alpha"`)
	im := strings.Index(text, `k="mid"`)
	iz := strings.Index(text, `k="zeta"`)
	if !(ia < im && im < iz) {
		t.Fatalf("label rows not sorted:\n%s", text)
	}
	if c.Total() != 6 {
		t.Fatalf("Total = %d, want 6", c.Total())
	}
	if c.Get("mid") != 3 {
		t.Fatalf("Get(mid) = %d, want 3", c.Get("mid"))
	}
}
