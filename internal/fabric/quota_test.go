package fabric

import (
	"testing"
	"time"
)

func TestTokenBucketBurstThenRefill(t *testing.T) {
	now := time.Unix(1_000_000, 0)
	b := NewTokenBucket(2, 3, now) // 2 tokens/s, burst 3

	for i := 0; i < 3; i++ {
		if !b.Take(now) {
			t.Fatalf("take %d within burst refused", i)
		}
	}
	if b.Take(now) {
		t.Fatal("take beyond burst allowed")
	}
	if ra := b.RetryAfter(now); ra <= 0 || ra > time.Second {
		t.Fatalf("RetryAfter = %v, want (0, 1s] at 2 tokens/s", ra)
	}

	// Half a second refills one token at 2/s.
	now = now.Add(500 * time.Millisecond)
	if !b.Take(now) {
		t.Fatal("take after refill refused")
	}
	if b.Take(now) {
		t.Fatal("second take after single-token refill allowed")
	}
}

func TestTokenBucketCapsAtBurst(t *testing.T) {
	now := time.Unix(1_000_000, 0)
	b := NewTokenBucket(100, 2, now)
	now = now.Add(time.Hour) // long idle must not bank unlimited tokens
	took := 0
	for b.Take(now) {
		took++
	}
	if took != 2 {
		t.Fatalf("took %d tokens after long idle, want burst=2", took)
	}
}

func TestTokenBucketZeroRate(t *testing.T) {
	now := time.Unix(1_000_000, 0)
	b := NewTokenBucket(0, 1, now)
	if !b.Take(now) {
		t.Fatal("initial burst token refused")
	}
	if b.Take(now) {
		t.Fatal("zero-rate bucket refilled")
	}
	if ra := b.RetryAfter(now); ra != time.Hour {
		t.Fatalf("zero-rate RetryAfter = %v, want the finite 1h fallback", ra)
	}
}

// Weighted fair queueing: with equal arrival, a weight-2 tenant's jobs
// carry smaller finish tags than a weight-1 tenant's at the same queue
// depth, so it drains proportionally faster.
func TestWFQTagsFavorWeight(t *testing.T) {
	heavy := &tenant{name: "heavy", weight: 2}
	light := &tenant{name: "light", weight: 1}
	const each = 4
	for i := 0; i < each; i++ {
		heavy.tagJob(&GwJob{ID: "h"}, 0)
		light.tagJob(&GwJob{ID: "l"}, 0)
	}
	// Drain in global finish-tag order, the way dispatchLocked does.
	var order []string
	hq, lq := heavy.queue, light.queue
	for len(hq) > 0 || len(lq) > 0 {
		switch {
		case len(hq) == 0:
			order = append(order, "l")
			lq = lq[1:]
		case len(lq) == 0:
			order = append(order, "h")
			hq = hq[1:]
		case hq[0].finishTag <= lq[0].finishTag:
			order = append(order, "h")
			hq = hq[1:]
		default:
			order = append(order, "l")
			lq = lq[1:]
		}
	}
	// In the first half of the drain, heavy should get ~2/3 of slots.
	half := order[:len(order)/2]
	h := 0
	for _, who := range half {
		if who == "h" {
			h++
		}
	}
	if h < len(half)*3/5 {
		t.Fatalf("weight-2 tenant got %d of first %d slots (%v); want a clear majority", h, len(half), order)
	}
}

func TestRequeueFrontKeepsTag(t *testing.T) {
	tn := &tenant{name: "t", weight: 1}
	a, b := &GwJob{ID: "a"}, &GwJob{ID: "b"}
	tn.tagJob(a, 0)
	tn.tagJob(b, 0)
	tn.queue = tn.queue[1:] // a leased
	tag := a.finishTag
	tn.requeueFront(a)
	if tn.queue[0] != a {
		t.Fatal("re-routed job not at the head of its tenant queue")
	}
	if a.finishTag != tag {
		t.Fatalf("re-queue changed finish tag %v → %v; a faulted job must not pay twice", tag, a.finishTag)
	}
}
