package fabric

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/service"
	"repro/internal/transport"
)

// Errors surfaced by the gateway API layer.
var (
	// ErrNotFound is returned for unknown gateway job IDs.
	ErrNotFound = errors.New("fabric: no such job")
	// ErrNotDone is returned by Result for jobs that have not completed.
	ErrNotDone = errors.New("fabric: job has not completed")
	// ErrShuttingDown is returned by Submit after Close begins.
	ErrShuttingDown = errors.New("fabric: gateway shutting down")
	// ErrTerminal is returned by Cancel for jobs already terminal.
	ErrTerminal = errors.New("fabric: job already terminal")
)

// RejectedError is a 429-class admission refusal: the tenant's token
// bucket is empty or the dispatch backlog is full. RetryAfter is the
// hint every such response must carry.
type RejectedError struct {
	Tenant     string
	Reason     string
	RetryAfter time.Duration
}

func (e *RejectedError) Error() string {
	return fmt.Sprintf("fabric: tenant %q rejected: %s (retry after %v)", e.Tenant, e.Reason, e.RetryAfter)
}

// Options configures a Gateway.
type Options struct {
	// ControlAddr is the TCP address shards register on
	// (default 127.0.0.1:0).
	ControlAddr string
	// LeaseTTL is how long a shard may stay silent before the gateway
	// declares it dead and re-routes its leased jobs (default 10s).
	LeaseTTL time.Duration
	// Heartbeat is the ping interval advertised to shards
	// (default LeaseTTL/4).
	Heartbeat time.Duration
	// MaxPending bounds jobs admitted but not yet leased; beyond it
	// submissions are rejected 429 (default 1024).
	MaxPending int
	// CacheEntries bounds the result cache (default 4096).
	CacheEntries int
	// RouteRetries caps how many times one job may be re-routed after
	// shard faults before it fails (default 8).
	RouteRetries int
	// TenantRate/TenantBurst are the default token-bucket parameters
	// per tenant (defaults 50/s and 100).
	TenantRate  float64
	TenantBurst float64
	// Tenants overrides admission policy per tenant name.
	Tenants map[string]TenantConfig
	// JournalPath, when set, makes the gateway crash-restartable: every
	// submission, admission decision, lease, cancel, completion, and
	// replicated keyframe is appended to a CRC-framed write-ahead
	// journal at this path, and a gateway restarted on the same path
	// replays it — re-queueing pending jobs and reconciling leased ones
	// with their shards instead of losing them. Empty disables
	// journaling (the pre-HA behavior).
	JournalPath string
	// ReconcileWindow is how long a restarted gateway holds journaled
	// leases out of the dispatch queue waiting for their shards to
	// reconnect and report them. Jobs reported within the window are
	// adopted in place (no re-route, no double execution); jobs whose
	// shard never returns are re-queued, seeded from their journaled
	// keyframe (default LeaseTTL).
	ReconcileWindow time.Duration
	// Chaos, when set, wraps every accepted shard connection in a
	// transport.FaultConn so the PR-4 fault taxonomy (drop, dup, delay,
	// corrupt, partition) applies to the fabric control plane. Drills
	// and tests only.
	Chaos *transport.FaultPlan
	// Logf receives operational log lines (default log.Printf).
	Logf func(format string, args ...any)
	// Now substitutes a fake clock in tests (default time.Now).
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.ControlAddr == "" {
		o.ControlAddr = "127.0.0.1:0"
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 10 * time.Second
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = o.LeaseTTL / 4
	}
	if o.MaxPending <= 0 {
		o.MaxPending = 1024
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 4096
	}
	if o.RouteRetries <= 0 {
		o.RouteRetries = 8
	}
	if o.TenantRate <= 0 {
		o.TenantRate = 50
	}
	if o.TenantBurst <= 0 {
		o.TenantBurst = 100
	}
	if o.ReconcileWindow <= 0 {
		o.ReconcileWindow = o.LeaseTTL
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// GwJob is one job tracked by the gateway. Guarded by the gateway
// mutex; external packages read Status snapshots.
type GwJob struct {
	ID      string
	Tenant  string
	Spec    service.JobSpec
	Key     string // canonical cache key
	created time.Time

	specJSON  []byte
	state     service.State
	errMsg    string
	cached    bool
	coalesced bool
	retries   int

	// cancelRequested marks a leased job whose Cancel was forwarded to
	// its shard: if that shard dies before acknowledging, the job is
	// finished canceled instead of re-routed, and new submissions must
	// not coalesce onto it.
	cancelRequested bool

	// Lease bookkeeping: which shard holds the job under which lease,
	// and the shard-local job ID (for Cancel).
	lease   uint64
	shard   *shardConn
	localID string

	// Keyframe replication: the latest frame-store keyframe streamed back
	// by the job's shard, carried out with the next Assign after a
	// re-route so the replacement shard resumes mid-run. resumedStep is
	// what the current shard reported actually restoring (0 = scratch).
	// framesAddr is the HTTP address of the shard that ran (or runs) the
	// job — unlike the lease it survives completion, so the frames
	// replay proxy still has a target after Done clears the shard.
	keyframe     []byte
	keyframeStep int64
	resumedStep  int
	framesAddr   string

	finishTag float64 // WFQ virtual finish time
	progress  json.RawMessage
	result    json.RawMessage

	// recoverBy, when non-zero, marks a job in the reconciliation set:
	// it held a lease when the gateway (or its shard session) went away,
	// it is NOT in any dispatch queue, and it waits for its shard to
	// reconnect and report it. Past the deadline the watchdog re-queues
	// it, seeded from its journaled keyframe.
	recoverBy time.Time

	// followers are identical in-flight submissions coalesced onto this
	// job; they complete when it does.
	followers []*GwJob
}

// GwStatus is the JSON form of a gateway job.
type GwStatus struct {
	ID        string          `json:"id"`
	Tenant    string          `json:"tenant"`
	Key       string          `json:"key"`
	State     service.State   `json:"state"`
	Error     string          `json:"error,omitempty"`
	Cached    bool            `json:"cached,omitempty"`
	Coalesced bool            `json:"coalesced,omitempty"`
	Shard     string          `json:"shard,omitempty"`
	Retries   int             `json:"retries,omitempty"`
	Created   time.Time       `json:"created"`
	Spec      service.JobSpec `json:"spec"`
	Progress  json.RawMessage `json:"progress,omitempty"`
	// ResumedStep is the completed-step count the job's current shard
	// restored from a replicated keyframe after a re-route; 0 means the
	// run started (or re-started) from scratch.
	ResumedStep int `json:"resumed_step,omitempty"`
}

// ShardStatus is one row of the fleet view.
type ShardStatus struct {
	ID       int    `json:"id"`
	Name     string `json:"name"`
	HTTPAddr string `json:"http_addr,omitempty"`
	Capacity int    `json:"capacity"`
	Leases   int    `json:"leases"`
	Routed   int64  `json:"routed_total"`
}

// shardConn is one registered shard's control-plane session.
type shardConn struct {
	id       int
	name     string
	httpAddr string
	capacity int
	conn     net.Conn
	sendq    chan []byte
	leases   map[uint64]*GwJob
	lastSeen atomic.Int64 // unix nanos of last inbound frame
	failed   atomic.Bool
}

// Gateway routes jobs across registered shards. Construct with
// NewGateway, stop with Close.
type Gateway struct {
	opt     Options
	ln      net.Listener
	metrics *Metrics

	mu       sync.Mutex
	shards   map[int]*shardConn
	ring     *Ring
	jobs     map[string]*GwJob
	order    []string
	tenants  map[string]*tenant
	inflight map[string]*GwJob // cache key → live leader job
	cache    *Cache
	pending  int
	vtime    float64

	// Crash safety: the write-ahead journal (nil when disabled) and the
	// reconciliation set — journaled leases awaiting their shard's
	// report after a restart or session replacement, keyed by job ID.
	journal    *Journal
	recovering map[string]*GwJob
	started    time.Time
	reconciled bool // reconcile_seconds recorded

	nextShard int
	nextLease atomic.Uint64

	stopping chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewGateway opens the control listener and starts the lease watchdog.
func NewGateway(opt Options) (*Gateway, error) {
	opt = opt.withDefaults()
	ln, err := net.Listen("tcp", opt.ControlAddr)
	if err != nil {
		return nil, fmt.Errorf("fabric: gateway listen %s: %w", opt.ControlAddr, err)
	}
	g := &Gateway{
		opt:        opt,
		ln:         ln,
		metrics:    NewMetrics(opt.Now()),
		shards:     make(map[int]*shardConn),
		ring:       NewRing(nil),
		jobs:       make(map[string]*GwJob),
		tenants:    make(map[string]*tenant),
		inflight:   make(map[string]*GwJob),
		cache:      NewCache(opt.CacheEntries),
		recovering: make(map[string]*GwJob),
		started:    opt.Now(),
		reconciled: true, // restore() reopens the window if leases replay
		stopping:   make(chan struct{}),
	}
	if opt.JournalPath != "" {
		jl, st, err := OpenJournal(opt.JournalPath)
		if err != nil {
			ln.Close()
			return nil, err
		}
		g.journal = jl
		g.metrics.JournalBytes.Store(jl.Size())
		if st != nil {
			g.restore(st)
		}
	}
	g.wg.Add(2)
	go g.acceptLoop()
	go g.watchdog()
	return g, nil
}

// restore rebuilds gateway state from a replayed journal: every job is
// re-registered, done results repopulate the cache, pending jobs rejoin
// their tenants' WFQ queues, and jobs that held a lease at the crash
// enter the reconciliation set — held out of dispatch until their shard
// reconnects and reports them or the reconcile window expires.
func (g *Gateway) restore(st *JournalState) {
	now := g.opt.Now()
	g.vtime = st.VTime
	g.nextLease.Store(st.NextLease)
	for _, jt := range st.Tenants {
		t := &tenant{
			name:       jt.Name,
			weight:     jt.Weight,
			bucket:     NewTokenBucket(jt.Rate, jt.Burst, now),
			lastFinish: jt.LastFinish,
		}
		if t.weight <= 0 {
			t.weight = 1
		}
		t.bucket.tokens = jt.Tokens
		g.tenants[jt.Name] = t
	}
	// Each job first journaled after the last snapshot consumed a quota
	// token the snapshot's bucket level does not reflect; debit them so a
	// crash-restart loop cannot be used to refill a tenant's bucket.
	for name, n := range st.Admissions {
		b := g.tenantFor(name).bucket
		b.tokens -= float64(n)
		if b.tokens < 0 {
			b.tokens = 0
		}
	}
	var leased, queued, terminal int
	for _, id := range st.Order {
		rec := st.Jobs[id]
		j := &GwJob{
			ID:              rec.ID,
			Tenant:          rec.Tenant,
			Key:             rec.Key,
			created:         rec.Created,
			specJSON:        append([]byte(nil), rec.SpecJSON...),
			state:           service.State(rec.State),
			errMsg:          rec.Error,
			cached:          rec.Cached,
			coalesced:       rec.Coalesced,
			retries:         rec.Retries,
			cancelRequested: rec.CancelRequested,
			localID:         rec.LocalID,
			keyframeStep:    rec.KeyframeStep,
			resumedStep:     rec.ResumedStep,
			framesAddr:      rec.FramesAddr,
			finishTag:       rec.FinishTag,
			result:          append(json.RawMessage(nil), rec.Result...),
		}
		if len(rec.SpecJSON) > 0 {
			json.Unmarshal(rec.SpecJSON, &j.Spec)
		}
		if kf, ok := st.Keyframes[id]; ok {
			j.keyframe = append([]byte(nil), kf.Data...)
			if kf.Step > j.keyframeStep {
				j.keyframeStep = kf.Step
			}
		}
		g.jobs[id] = j
		g.order = append(g.order, id)
		if j.state.Terminal() {
			terminal++
			if j.state == service.StateDone && len(j.result) > 0 && !j.cached {
				g.cache.Put(j.Key, j.result, j.ID)
			}
			continue
		}
	}
	// Second pass (jobs map complete): re-link coalesced followers, then
	// sort live leaders into the reconciliation set or the WFQ queues.
	for _, id := range st.Order {
		j := g.jobs[id]
		rec := st.Jobs[id]
		if j.state.Terminal() {
			continue
		}
		if j.coalesced {
			if leader, ok := g.jobs[rec.LeaderID]; ok && !leader.state.Terminal() {
				leader.followers = append(leader.followers, j)
				j.state = leader.state
				continue
			}
			// Leader gone or terminal without us: treat as failed rather
			// than resurrect a duplicate run.
			j.state = service.StateFailed
			j.errMsg = "journal replay: coalesced leader lost"
			continue
		}
		g.inflight[j.Key] = j
		if (rec.Lease != 0 && rec.Shard != "") || rec.Recovering {
			// Held a lease at the crash (or already sat in the previous
			// incarnation's reconciliation set): its shard may still be
			// running it. Hold it for reconciliation instead of
			// re-dispatching — re-routing now would double-execute the job.
			j.state = service.StateRunning
			j.recoverBy = now.Add(g.opt.ReconcileWindow)
			g.recovering[id] = j
			leased++
			continue
		}
		// Admitted but never leased: straight back to its tenant's queue
		// with its journaled finish tag.
		j.state = service.StateQueued
		g.tenantFor(j.Tenant).queue = append(g.tenantFor(j.Tenant).queue, j)
		g.pending++
		g.metrics.JobsPending.Add(1)
		queued++
	}
	for _, t := range g.tenants {
		q := t.queue
		sort.Slice(q, func(i, k int) bool { return q[i].finishTag < q[k].finishTag })
	}
	g.reconciled = len(g.recovering) == 0 // gauge stays 0 when nothing to reconcile
	g.opt.Logf("nbodygw: journal replayed %d job(s): %d awaiting shard reconciliation, %d re-queued, %d terminal",
		len(g.order), leased, queued, terminal)
}

// ControlAddr returns the address shards register on.
func (g *Gateway) ControlAddr() string { return g.ln.Addr().String() }

// Metrics exposes the gateway counters.
func (g *Gateway) Metrics() *Metrics { return g.metrics }

// Close stops the control plane: no new registrations, a graceful Bye
// to every shard, and the watchdog stopped. In-flight gateway jobs are
// left as-is (shards keep running them; nothing is awaiting results).
func (g *Gateway) Close() error {
	g.stopOnce.Do(func() { close(g.stopping) })
	g.ln.Close()
	g.mu.Lock()
	conns := make([]*shardConn, 0, len(g.shards))
	for _, sc := range g.shards {
		conns = append(conns, sc)
	}
	g.mu.Unlock()
	bye, _ := transport.AppendControl(nil, transport.KindBye, nil)
	for _, sc := range conns {
		sc.conn.SetWriteDeadline(time.Now().Add(time.Second))
		sc.conn.Write(bye)
		sc.conn.Close()
	}
	g.wg.Wait()
	g.mu.Lock()
	err := g.journal.Close()
	g.journal = nil
	g.mu.Unlock()
	return err
}

// journalJobLocked appends j's full current state to the journal and
// compacts the log when it outgrows its snapshot budget. Requires g.mu.
// Journal write errors are logged, not fatal: the gateway stays
// available and degrades to pre-HA (in-memory) behavior for the record
// it could not write.
func (g *Gateway) journalJobLocked(j *GwJob) {
	if g.journal == nil {
		return
	}
	if err := g.journal.AppendJob(g.jobRecordLocked(j)); err != nil {
		g.opt.Logf("nbodygw: journal append (job %s): %v", j.ID, err)
	}
	if g.journal.ShouldCompact() {
		if err := g.journal.Compact(g.snapshotLocked()); err != nil {
			g.opt.Logf("nbodygw: journal compaction: %v", err)
		}
	}
	g.metrics.JournalBytes.Store(g.journal.Size())
}

// journalKeyframeLocked appends a job's latest replicated keyframe as
// its own record so the (large) frame bytes are not re-written with
// every job-state transition. Requires g.mu.
func (g *Gateway) journalKeyframeLocked(j *GwJob) {
	if g.journal == nil {
		return
	}
	if err := g.journal.AppendKeyframe(j.ID, j.keyframeStep, j.keyframe); err != nil {
		g.opt.Logf("nbodygw: journal append (keyframe %s): %v", j.ID, err)
	}
	if g.journal.ShouldCompact() {
		if err := g.journal.Compact(g.snapshotLocked()); err != nil {
			g.opt.Logf("nbodygw: journal compaction: %v", err)
		}
	}
	g.metrics.JournalBytes.Store(g.journal.Size())
}

// jobRecordLocked builds the durable form of one job.
func (g *Gateway) jobRecordLocked(j *GwJob) *journalJob {
	rec := &journalJob{
		ID:              j.ID,
		Tenant:          j.Tenant,
		Key:             j.Key,
		SpecJSON:        j.specJSON,
		Created:         j.created,
		State:           string(j.state),
		Error:           j.errMsg,
		Cached:          j.cached,
		Coalesced:       j.coalesced,
		Retries:         j.retries,
		CancelRequested: j.cancelRequested,
		Lease:           j.lease,
		LocalID:         j.localID,
		KeyframeStep:    j.keyframeStep,
		ResumedStep:     j.resumedStep,
		FramesAddr:      j.framesAddr,
		FinishTag:       j.finishTag,
		Result:          j.result,
		Recovering:      !j.recoverBy.IsZero(),
	}
	if len(rec.SpecJSON) == 0 {
		rec.SpecJSON, _ = json.Marshal(j.Spec)
	}
	if j.shard != nil {
		rec.Shard = j.shard.name
	}
	if j.coalesced {
		if leader, ok := g.inflight[j.Key]; ok && leader != j {
			rec.LeaderID = leader.ID
		}
	}
	return rec
}

// snapshotLocked captures the full replayable state for compaction.
func (g *Gateway) snapshotLocked() *journalSnapshot {
	snap := &journalSnapshot{
		Order:     append([]string(nil), g.order...),
		VTime:     g.vtime,
		NextLease: g.nextLease.Load(),
	}
	for _, id := range g.order {
		j := g.jobs[id]
		snap.Jobs = append(snap.Jobs, *g.jobRecordLocked(j))
		if len(j.keyframe) > 0 && !j.state.Terminal() {
			snap.Keyframes = append(snap.Keyframes,
				journalKeyframe{ID: j.ID, Step: j.keyframeStep, Data: j.keyframe})
		}
	}
	for name, t := range g.tenants {
		snap.Tenants = append(snap.Tenants, journalTenant{
			Name:       name,
			Weight:     t.weight,
			Rate:       t.bucket.Rate,
			Burst:      t.bucket.Burst,
			Tokens:     t.bucket.tokens,
			LastFinish: t.lastFinish,
		})
	}
	sort.Slice(snap.Tenants, func(i, k int) bool { return snap.Tenants[i].Name < snap.Tenants[k].Name })
	return snap
}

// acceptLoop admits shard registrations until Close.
func (g *Gateway) acceptLoop() {
	defer g.wg.Done()
	for {
		c, err := g.ln.Accept()
		if err != nil {
			return // listener closed
		}
		g.wg.Add(1)
		go func(c net.Conn) {
			defer g.wg.Done()
			g.serveShard(c)
		}(c)
	}
}

// serveShard runs one shard session: Hello handshake, then the control
// pump until the connection dies.
func (g *Gateway) serveShard(c net.Conn) {
	if g.opt.Chaos != nil {
		c = transport.NewFaultConn(c, *g.opt.Chaos)
	}
	c.SetReadDeadline(time.Now().Add(10 * time.Second))
	kind, body, err := transport.ReadRaw(c)
	if err != nil || kind != transport.KindHost {
		c.Close()
		return
	}
	v, err := transport.Unmarshal(body)
	hello, ok := v.(Hello)
	if err != nil || !ok {
		c.Close()
		return
	}
	c.SetReadDeadline(time.Time{})

	sc := &shardConn{
		name:     hello.Name,
		httpAddr: hello.HTTPAddr,
		capacity: int(hello.Capacity),
		conn:     c,
		sendq:    make(chan []byte, 1024),
		leases:   make(map[uint64]*GwJob),
	}
	if sc.capacity < 1 {
		sc.capacity = 1
	}
	sc.lastSeen.Store(time.Now().UnixNano())

	g.mu.Lock()
	// A reconnecting shard replaces its old session. The stale session's
	// leases are NOT re-routed: the shard is alive (it just dialed us)
	// and is still running them, so they move to the reconciliation set
	// and the fresh session's ReportJobs re-binds them in place. Only if
	// the report never mentions them does the window expiry re-queue.
	var stale *shardConn
	for _, prev := range g.shards {
		if prev.name == sc.name {
			stale = prev
			break
		}
	}
	if stale != nil {
		if g.shardSupersededLocked(stale) {
			g.opt.Logf("nbodygw: shard %s re-registered; awaiting lease report from fresh session", sc.name)
		}
	}
	g.mu.Unlock()

	g.mu.Lock()
	sc.id = g.nextShard
	g.nextShard++
	g.shards[sc.id] = sc
	g.rebuildRingLocked()
	g.metrics.Shards.Store(int64(len(g.shards)))
	welcome := Welcome{
		ShardID:         int32(sc.id),
		LeaseTTLMillis:  g.opt.LeaseTTL.Milliseconds(),
		HeartbeatMillis: g.opt.Heartbeat.Milliseconds(),
	}
	g.mu.Unlock()
	g.opt.Logf("nbodygw: shard %d (%s) registered, capacity %d", sc.id, sc.name, sc.capacity)

	// Writer drains the send queue; a write error fails the shard.
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		for {
			select {
			case buf, ok := <-sc.sendq:
				if !ok {
					return
				}
				if _, err := sc.conn.Write(buf); err != nil {
					g.shardFailed(sc, &transport.TransportError{Kind: transport.FaultPeerLost, Proc: sc.id,
						Err: fmt.Errorf("write to shard %s: %w", sc.name, err)})
					return
				}
			case <-g.stopping:
				return
			}
		}
	}()
	if !g.send(sc, welcome) {
		return
	}
	// New capacity may unblock pending work.
	g.mu.Lock()
	g.dispatchLocked()
	g.mu.Unlock()

	for {
		kind, body, err := transport.ReadRaw(c)
		if err != nil {
			g.shardFailed(sc, &transport.TransportError{Kind: transport.FaultPeerLost, Proc: sc.id,
				Err: fmt.Errorf("read from shard %s: %w", sc.name, err)})
			return
		}
		sc.lastSeen.Store(time.Now().UnixNano())
		switch kind {
		case transport.KindBye:
			g.shardFailed(sc, &transport.TransportError{Kind: transport.FaultClosed, Proc: sc.id,
				Err: fmt.Errorf("shard %s closed gracefully", sc.name)})
			return
		case transport.KindHost:
			v, err := transport.Unmarshal(body)
			if err != nil {
				g.shardFailed(sc, &transport.TransportError{Kind: transport.FaultCorrupt, Proc: sc.id,
					Err: fmt.Errorf("bad control frame from shard %s: %w", sc.name, err)})
				return
			}
			g.handleControl(sc, v)
		default:
			// Unknown kinds are skipped for forward compatibility.
		}
	}
}

// errSendQueueFull distinguishes a stalled shard (fail the shard) from
// an encoding error (fail the one message) in enqueue's return.
var errSendQueueFull = errors.New("fabric: shard send queue full")

// enqueue encodes one control message and offers it to the shard's send
// queue without blocking and without touching g.mu, so it is safe from
// both locked and unlocked call sites.
func (g *Gateway) enqueue(sc *shardConn, payload any) error {
	buf, err := encodeControl(payload)
	if err != nil {
		return err
	}
	select {
	case sc.sendq <- buf:
		return nil
	default:
		return errSendQueueFull
	}
}

// send enqueues one control message to a shard without blocking the
// caller; a full queue means the shard has stalled and is failed.
// Must be called WITHOUT g.mu held — locked paths (dispatchLocked) use
// enqueue + shardFailedLocked directly.
func (g *Gateway) send(sc *shardConn, payload any) bool {
	err := g.enqueue(sc, payload)
	switch {
	case err == nil:
		return true
	case errors.Is(err, errSendQueueFull):
		g.shardFailed(sc, &transport.TransportError{Kind: transport.FaultStall, Proc: sc.id,
			Err: fmt.Errorf("shard %s send queue full", sc.name)})
	default:
		g.opt.Logf("nbodygw: encoding control message for shard %s: %v", sc.name, err)
	}
	return false
}

// handleControl dispatches one inbound shard message.
func (g *Gateway) handleControl(sc *shardConn, v any) {
	switch msg := v.(type) {
	case Ping:
		g.send(sc, Pong{Nanos: msg.Nanos})
	case Pong:
		// Traffic already renewed the lease via lastSeen.
	case Accept:
		g.handleAccept(sc, msg)
	case Update:
		g.handleUpdate(sc, msg)
	case Done:
		g.handleDone(sc, msg)
	case Keyframe:
		g.handleKeyframe(sc, msg)
	case ReportJobs:
		g.handleReport(sc, msg)
	case Parked:
		g.handleParked(sc, msg)
	default:
		g.opt.Logf("nbodygw: unexpected control message %T from shard %s", v, sc.name)
	}
}

// handleAccept records the shard's admission verdict. A refusal
// re-queues the job: the gateway respects shard capacity, so a refusal
// means the shard is unhealthy or misconfigured, which routing treats
// like a fault.
func (g *Gateway) handleAccept(sc *shardConn, msg Accept) {
	g.mu.Lock()
	defer g.mu.Unlock()
	j := sc.leases[msg.Lease]
	if j == nil || j.lease != msg.Lease {
		return // stale: the job was re-routed already
	}
	if msg.Err == "" {
		j.localID = msg.LocalID
		j.framesAddr = sc.httpAddr
		j.resumedStep = int(msg.ResumedStep)
		if msg.ResumedStep > 0 {
			g.metrics.JobsResumedFromFrame.Add(1)
			g.opt.Logf("nbodygw: shard %s resumed job %s from keyframe step %d", sc.name, j.ID, msg.ResumedStep)
		}
		g.journalJobLocked(j)
		return
	}
	g.opt.Logf("nbodygw: shard %s refused job %s: %s", sc.name, j.ID, msg.Err)
	g.requeueLocked(j, "admission")
	g.dispatchLocked()
}

// handleKeyframe stores the latest replicated keyframe for a leased
// job. Only the newest frame matters — resume wants the furthest safe
// restart point — so each arrival replaces the last.
func (g *Gateway) handleKeyframe(sc *shardConn, msg Keyframe) {
	g.mu.Lock()
	defer g.mu.Unlock()
	j := sc.leases[msg.Lease]
	if j == nil || j.lease != msg.Lease {
		return // stale: the job was re-routed already
	}
	if msg.Step <= j.keyframeStep && j.keyframe != nil {
		return // out-of-order replication; keep the newer frame
	}
	j.keyframe = append([]byte(nil), msg.Data...)
	j.keyframeStep = msg.Step
	g.metrics.KeyframesReplicated.Add(1)
	g.journalKeyframeLocked(j)
}

// handleUpdate forwards a progress snapshot onto the gateway job.
func (g *Gateway) handleUpdate(sc *shardConn, msg Update) {
	g.mu.Lock()
	defer g.mu.Unlock()
	j := sc.leases[msg.Lease]
	if j == nil || j.lease != msg.Lease {
		return
	}
	if s := service.State(msg.State); s == service.StateQueued || s == service.StateRunning {
		j.state = s
	}
	j.progress = append(json.RawMessage(nil), msg.ProgressJSON...)
	for _, f := range j.followers {
		f.state = j.state
		f.progress = j.progress
	}
}

// handleDone finalizes a leased job: cache the result, complete the
// leader and every coalesced follower, release the lease.
func (g *Gateway) handleDone(sc *shardConn, msg Done) {
	g.mu.Lock()
	defer g.mu.Unlock()
	j := sc.leases[msg.Lease]
	if j == nil || j.lease != msg.Lease {
		return
	}
	delete(sc.leases, msg.Lease)
	g.metrics.JobsLeased.Add(-1)
	// A cancel-requested leader may have been replaced in the inflight
	// index by a fresh leader for the same key; only clear our own entry.
	if g.inflight[j.Key] == j {
		delete(g.inflight, j.Key)
	}
	j.lease, j.shard = 0, nil

	state := service.State(msg.State)
	switch state {
	case service.StateDone:
		res := append(json.RawMessage(nil), msg.ResultJSON...)
		g.cache.Put(j.Key, res, j.ID)
		g.finishLocked(j, service.StateDone, res, "")
	case service.StateCanceled:
		g.finishLocked(j, service.StateCanceled, nil, "")
	default:
		g.finishLocked(j, service.StateFailed, nil, msg.Err)
	}
	g.dispatchLocked()
}

// handleReport reconciles a shard's in-flight leases after it (or the
// gateway) restarted. Each reported job the gateway still wants — known,
// non-terminal, not leased elsewhere — is adopted: re-bound to this
// session under a fresh lease, exactly where it was running, so a
// gateway crash or connection blip never re-executes completed steps.
// Everything else is released: the shard cancels its local copy.
func (g *Gateway) handleReport(sc *shardConn, msg ReportJobs) {
	g.mu.Lock()
	adopted := 0
	for _, item := range msg.Jobs {
		j := g.jobs[item.JobID]
		switch {
		case j == nil || j.state.Terminal():
			g.enqueue(sc, Release{JobID: item.JobID, LocalID: item.LocalID})
		case j.shard == sc:
			// Duplicate report on the live session; the lease stands.
		case j.shard != nil:
			// Already re-routed to another live shard; that copy wins and
			// this one stops burning cycles.
			g.enqueue(sc, Release{JobID: j.ID, LocalID: item.LocalID})
		case j.cancelRequested:
			// A cancel raced the outage; honor it instead of adopting.
			g.enqueue(sc, Release{JobID: j.ID, LocalID: item.LocalID})
			delete(g.recovering, j.ID)
			j.recoverBy = time.Time{}
			if g.inflight[j.Key] == j {
				delete(g.inflight, j.Key)
			}
			g.finishLocked(j, service.StateCanceled, nil, "")
		default:
			// Recovering (journaled lease) or re-queued but not yet
			// dispatched: adopt in place.
			if _, ok := g.recovering[j.ID]; ok {
				delete(g.recovering, j.ID)
				j.recoverBy = time.Time{}
			} else if g.tenantFor(j.Tenant).removeQueued(j) {
				g.pending--
				g.metrics.JobsPending.Add(-1)
			}
			lease := g.nextLease.Add(1)
			j.lease, j.shard, j.localID = lease, sc, item.LocalID
			j.state = service.StateRunning
			j.framesAddr = sc.httpAddr
			sc.leases[lease] = j
			g.metrics.JobsLeased.Add(1)
			g.metrics.JobsAdopted.Add(1)
			g.journalJobLocked(j)
			g.enqueue(sc, Adopt{Lease: lease, JobID: j.ID, LocalID: item.LocalID})
			adopted++
		}
	}
	g.finishReconcileLocked(g.opt.Now())
	g.mu.Unlock()
	if len(msg.Jobs) > 0 {
		g.opt.Logf("nbodygw: shard %s reported %d in-flight job(s), adopted %d", sc.name, len(msg.Jobs), adopted)
	}
}

// handleParked lands a terminal result that completed while the gateway
// was unreachable. It is addressed by gateway job ID (no live lease
// exists) and acknowledged unconditionally so the shard's spooled copy
// is deleted even on redelivery.
func (g *Gateway) handleParked(sc *shardConn, msg Parked) {
	g.mu.Lock()
	j := g.jobs[msg.JobID]
	if j != nil && !j.state.Terminal() {
		// Free whatever slot the job occupies: a reconciliation entry, a
		// re-queued backlog slot, or a duplicate lease on another shard
		// (which is canceled — this result already won).
		delete(g.recovering, j.ID)
		j.recoverBy = time.Time{}
		if g.tenantFor(j.Tenant).removeQueued(j) {
			g.pending--
			g.metrics.JobsPending.Add(-1)
		}
		if j.shard != nil {
			g.enqueue(j.shard, Cancel{Lease: j.lease, JobID: j.ID})
			delete(j.shard.leases, j.lease)
			g.metrics.JobsLeased.Add(-1)
			j.lease, j.shard = 0, nil
		}
		if g.inflight[j.Key] == j {
			delete(g.inflight, j.Key)
		}
		switch service.State(msg.State) {
		case service.StateDone:
			res := append(json.RawMessage(nil), msg.ResultJSON...)
			g.cache.Put(j.Key, res, j.ID)
			g.finishLocked(j, service.StateDone, res, "")
		case service.StateCanceled:
			g.finishLocked(j, service.StateCanceled, nil, "")
		default:
			g.finishLocked(j, service.StateFailed, nil, msg.Err)
		}
		g.metrics.ParkedResults.Add(1)
		g.finishReconcileLocked(g.opt.Now())
		g.dispatchLocked()
	}
	g.enqueue(sc, ParkedAck{JobID: msg.JobID})
	g.mu.Unlock()
}

// finishReconcileLocked records the reconcile_seconds gauge once the
// restart reconciliation set drains — by adoption, parked delivery, or
// timeout re-queue.
func (g *Gateway) finishReconcileLocked(now time.Time) {
	if g.reconciled || len(g.recovering) > 0 {
		return
	}
	g.reconciled = true
	g.metrics.SetReconcileSeconds(now.Sub(g.started).Seconds())
	g.opt.Logf("nbodygw: restart reconciliation complete in %v", now.Sub(g.started).Round(time.Millisecond))
}

// finishLocked moves a job and its followers to a terminal state.
func (g *Gateway) finishLocked(j *GwJob, state service.State, result json.RawMessage, errMsg string) {
	all := append([]*GwJob{j}, j.followers...)
	j.followers = nil
	for _, job := range all {
		if job.state.Terminal() {
			continue
		}
		job.state = state
		job.result = result
		job.errMsg = errMsg
		switch state {
		case service.StateDone:
			g.metrics.JobsDone.Add(1)
		case service.StateCanceled:
			g.metrics.JobsCanceled.Add(1)
		default:
			g.metrics.JobsFailed.Add(1)
		}
		g.journalJobLocked(job)
	}
}

// requeueLocked puts a leased (or about-to-be-leased) job back at the
// front of its tenant's backlog after a routing failure, preserving its
// WFQ tag. Beyond the route-retry budget the job fails instead.
func (g *Gateway) requeueLocked(j *GwJob, fault string) {
	if j.shard != nil {
		delete(j.shard.leases, j.lease)
		g.metrics.JobsLeased.Add(-1)
	}
	j.lease, j.shard, j.localID = 0, nil, ""
	if j.cancelRequested {
		// The caller asked for a cancel the dead shard never
		// acknowledged; honor it now instead of resurrecting the job.
		if g.inflight[j.Key] == j {
			delete(g.inflight, j.Key)
		}
		g.finishLocked(j, service.StateCanceled, nil, "")
		return
	}
	j.retries++
	g.metrics.Rerouted.Add(fault, 1)
	if j.retries > g.opt.RouteRetries {
		if g.inflight[j.Key] == j {
			delete(g.inflight, j.Key)
		}
		g.finishLocked(j, service.StateFailed,
			nil, fmt.Sprintf("re-routed %d times without completing (last fault: %s)", j.retries, fault))
		return
	}
	j.state = service.StateQueued
	j.progress = nil
	g.tenantFor(j.Tenant).requeueFront(j)
	g.pending++
	g.metrics.JobsPending.Add(1)
	g.journalJobLocked(j)
}

// shardFailed removes a shard from the fleet and re-routes every job it
// held a lease on. Must be called WITHOUT g.mu held; dispatchLocked
// reaches the same teardown via shardFailedLocked.
func (g *Gateway) shardFailed(sc *shardConn, terr *transport.TransportError) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.shardFailedLocked(sc, terr) {
		g.dispatchLocked()
	}
}

// shardFailedLocked is the core of shardFailed: it requires g.mu, does
// not dispatch (callers do, so a failure inside dispatchLocked cannot
// recurse), and reports whether this call retired the session. The
// fault kind — the same taxonomy the cluster supervisor keys on — is
// what the re-route metric records. Idempotent per session.
func (g *Gateway) shardFailedLocked(sc *shardConn, terr *transport.TransportError) bool {
	select {
	case <-g.stopping:
		// The conn errors racing Close are the gateway's own teardown,
		// not shard faults. Re-routing here would journal the leases as
		// queued — a dying gateway must leave them leased on disk so
		// the restarted process holds them for reconciliation instead
		// of re-executing them.
		return false
	default:
	}
	if !sc.failed.CompareAndSwap(false, true) {
		return false
	}
	sc.conn.Close()
	delete(g.shards, sc.id)
	g.rebuildRingLocked()
	g.metrics.Shards.Store(int64(len(g.shards)))
	orphans := make([]*GwJob, 0, len(sc.leases))
	for _, j := range sc.leases {
		orphans = append(orphans, j)
	}
	// Deterministic re-queue order: oldest lease first.
	sort.Slice(orphans, func(i, k int) bool { return orphans[i].lease < orphans[k].lease })
	for i := len(orphans) - 1; i >= 0; i-- { // requeueFront reverses: push newest first
		j := orphans[i]
		delete(sc.leases, j.lease)
		g.metrics.JobsLeased.Add(-1)
		j.shard = nil
		g.requeueLocked(j, terr.Kind.String())
	}
	select {
	case <-g.stopping:
	default:
		g.opt.Logf("nbodygw: shard %d (%s) lost (%s): %d job(s) re-routed",
			sc.id, sc.name, terr.Kind, len(orphans))
	}
	return true
}

// shardSupersededLocked retires a stale session whose shard just dialed
// a replacement connection. Unlike shardFailedLocked it does NOT
// re-route the leases: the shard is demonstrably alive and still
// running them, so re-dispatching now would double-execute. The jobs
// move to the reconciliation set; the fresh session's ReportJobs adopts
// them in place, and only a report that never mentions them lets the
// window expiry re-queue. Idempotent per session.
func (g *Gateway) shardSupersededLocked(sc *shardConn) bool {
	if !sc.failed.CompareAndSwap(false, true) {
		return false
	}
	sc.conn.Close()
	delete(g.shards, sc.id)
	g.rebuildRingLocked()
	g.metrics.Shards.Store(int64(len(g.shards)))
	now := g.opt.Now()
	for lease, j := range sc.leases {
		delete(sc.leases, lease)
		g.metrics.JobsLeased.Add(-1)
		j.lease, j.shard, j.localID = 0, nil, ""
		if j.cancelRequested {
			// The cancel the stale session never acknowledged wins; the
			// fresh session's report gets a Release for it.
			if g.inflight[j.Key] == j {
				delete(g.inflight, j.Key)
			}
			g.finishLocked(j, service.StateCanceled, nil, "")
			continue
		}
		j.recoverBy = now.Add(g.opt.ReconcileWindow)
		g.recovering[j.ID] = j
		g.reconciled = false
		g.journalJobLocked(j)
	}
	return true
}

// rebuildRingLocked recomputes the hash ring from the live shard set.
func (g *Gateway) rebuildRingLocked() {
	names := make(map[int]string, len(g.shards))
	for id, sc := range g.shards {
		names[id] = sc.name
	}
	g.ring = NewRing(names)
}

// watchdog expires leases: a shard silent past the TTL is declared dead
// with a heartbeat fault, exactly as the transport layer classifies a
// silent peer.
func (g *Gateway) watchdog() {
	defer g.wg.Done()
	tick := g.opt.LeaseTTL / 4
	if g.opt.ReconcileWindow/4 < tick {
		tick = g.opt.ReconcileWindow / 4
	}
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-g.stopping:
			return
		case <-t.C:
		}
		now := time.Now()
		g.mu.Lock()
		var expired []*shardConn
		for _, sc := range g.shards {
			if now.Sub(time.Unix(0, sc.lastSeen.Load())) > g.opt.LeaseTTL {
				expired = append(expired, sc)
			}
		}
		g.mu.Unlock()
		for _, sc := range expired {
			idle := now.Sub(time.Unix(0, sc.lastSeen.Load())).Round(time.Millisecond)
			g.shardFailed(sc, &transport.TransportError{Kind: transport.FaultHeartbeat, Proc: sc.id,
				Err: fmt.Errorf("shard %s silent for %v (lease TTL %v)", sc.name, idle, g.opt.LeaseTTL)})
		}
		g.sweepRecovering(g.opt.Now())
	}
}

// sweepRecovering re-queues reconciliation-set jobs whose shard never
// came back inside the window. Each re-queued job is seeded from its
// journaled keyframe, so the replacement shard resumes mid-run rather
// than replaying from step zero.
func (g *Gateway) sweepRecovering(now time.Time) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.recovering) == 0 {
		return
	}
	var due []*GwJob
	for _, j := range g.recovering {
		if now.After(j.recoverBy) {
			due = append(due, j)
		}
	}
	if len(due) == 0 {
		return
	}
	sort.Slice(due, func(i, k int) bool { return due[i].ID < due[k].ID })
	for _, j := range due {
		delete(g.recovering, j.ID)
		j.recoverBy = time.Time{}
		g.opt.Logf("nbodygw: reconcile window expired for job %s; re-queueing (keyframe step %d)", j.ID, j.keyframeStep)
		g.requeueLocked(j, "reconcile")
	}
	g.finishReconcileLocked(now)
	g.dispatchLocked()
}

// tenantFor returns (creating if needed) the tenant record.
func (g *Gateway) tenantFor(name string) *tenant {
	if t, ok := g.tenants[name]; ok {
		return t
	}
	cfg := g.opt.Tenants[name]
	if cfg.Rate <= 0 {
		cfg.Rate = g.opt.TenantRate
	}
	if cfg.Burst <= 0 {
		cfg.Burst = g.opt.TenantBurst
	}
	if cfg.Weight <= 0 {
		cfg.Weight = 1
	}
	t := &tenant{
		name:   name,
		weight: cfg.Weight,
		bucket: NewTokenBucket(cfg.Rate, cfg.Burst, g.opt.Now()),
	}
	g.tenants[name] = t
	return t
}

// Submit admits one job for a tenant: quota, cache, coalescing,
// backlog bound, then the WFQ queue. It returns the job's status
// snapshot; a *RejectedError carries the Retry-After hint.
func (g *Gateway) Submit(tenantName string, spec service.JobSpec) (GwStatus, error) {
	select {
	case <-g.stopping:
		return GwStatus{}, ErrShuttingDown
	default:
	}
	if tenantName == "" {
		tenantName = "default"
	}
	if err := spec.Validate(); err != nil {
		g.metrics.JobsInvalid.Add(1)
		return GwStatus{}, fmt.Errorf("invalid job: %w", err)
	}
	if spec.Transport != "" && spec.Transport != "inproc" {
		// Shards run their jobs locally; a tcp job would need the
		// shard's own cluster, which the fabric does not orchestrate.
		g.metrics.JobsInvalid.Add(1)
		return GwStatus{}, fmt.Errorf("invalid job: transport %q cannot be routed through the gateway (shards run jobs in-process)", spec.Transport)
	}
	now := g.opt.Now()

	g.mu.Lock()
	defer g.mu.Unlock()

	t := g.tenantFor(tenantName)
	if !t.bucket.Take(now) {
		g.metrics.JobsRejected.Add(1)
		g.metrics.Rejected.Add(tenantName, 1)
		return GwStatus{}, &RejectedError{
			Tenant:     tenantName,
			Reason:     "quota exhausted",
			RetryAfter: t.bucket.RetryAfter(now),
		}
	}

	key := spec.CacheKey()
	j := &GwJob{
		ID:      g.newJobID(),
		Tenant:  tenantName,
		Spec:    spec,
		Key:     key,
		created: now,
		state:   service.StateQueued,
	}

	// Cache hit: the canonical spec already ran somewhere; serve the
	// byte-identical result without spending any shard capacity.
	if res, ok := g.cache.Get(key); ok {
		j.cached = true
		j.state = service.StateDone
		j.result = res
		g.registerLocked(j)
		g.metrics.CacheHits.Add(1)
		g.metrics.JobsDone.Add(1)
		g.metrics.Admitted.Add(tenantName, 1)
		g.journalJobLocked(j)
		return g.statusLocked(j), nil
	}

	// In-flight coalescing: an identical job is already pending or
	// running; this submission rides along and completes with it. A
	// leader whose cancel is already in flight to its shard is skipped —
	// riding along would cancel this fresh submission too.
	if leader, ok := g.inflight[key]; ok && !leader.state.Terminal() && !leader.cancelRequested {
		j.coalesced = true
		j.state = leader.state
		j.progress = leader.progress
		leader.followers = append(leader.followers, j)
		g.registerLocked(j)
		g.metrics.Coalesced.Add(1)
		g.metrics.Admitted.Add(tenantName, 1)
		g.journalJobLocked(j)
		return g.statusLocked(j), nil
	}

	if g.pending >= g.opt.MaxPending {
		// The backlog, not the tenant, refused this job: give the quota
		// token back so a full fleet does not also drain buckets.
		t.bucket.Refund()
		g.metrics.JobsRejected.Add(1)
		g.metrics.Rejected.Add(tenantName, 1)
		return GwStatus{}, &RejectedError{Tenant: tenantName, Reason: "dispatch backlog full", RetryAfter: time.Second}
	}

	specJSON, err := json.Marshal(spec)
	if err != nil {
		g.metrics.JobsInvalid.Add(1)
		return GwStatus{}, fmt.Errorf("fabric: encoding spec: %w", err)
	}
	j.specJSON = specJSON
	g.registerLocked(j)
	g.inflight[key] = j
	t.tagJob(j, g.vtime)
	g.pending++
	g.metrics.JobsPending.Add(1)
	g.metrics.Admitted.Add(tenantName, 1)
	g.journalJobLocked(j)
	g.dispatchLocked()
	return g.statusLocked(j), nil
}

// registerLocked indexes a new job.
func (g *Gateway) registerLocked(j *GwJob) {
	g.jobs[j.ID] = j
	g.order = append(g.order, j.ID)
	g.metrics.JobsSubmitted.Add(1)
}

// dispatchLocked drains the WFQ backlog onto shards with free lease
// slots: pick the globally smallest finish tag, route it to the first
// shard in its key's ring order with capacity, repeat until no job can
// be placed. Consistent hashing names the preferred shard; capacity
// spill walks the ring so one hot key range cannot head-of-line-block
// the fleet.
func (g *Gateway) dispatchLocked() {
	for {
		var best *tenant
		for _, t := range g.tenants {
			if len(t.queue) == 0 {
				continue
			}
			if best == nil || t.queue[0].finishTag < best.queue[0].finishTag {
				best = t
			}
		}
		if best == nil {
			return
		}
		j := best.queue[0]
		if j.state.Terminal() {
			// Canceled or failed while queued: drop it from the backlog.
			best.queue = best.queue[1:]
			g.pending--
			g.metrics.JobsPending.Add(-1)
			continue
		}
		sc := g.routeLocked(j.Key)
		if sc == nil {
			return // no shard has a free lease slot (or fleet is empty)
		}
		best.queue = best.queue[1:]
		g.pending--
		g.metrics.JobsPending.Add(-1)
		if j.finishTag > g.vtime {
			g.vtime = j.finishTag
		}

		lease := g.nextLease.Add(1)
		j.lease = lease
		j.shard = sc
		sc.leases[lease] = j
		g.metrics.JobsLeased.Add(1)
		g.metrics.Routed.Add(sc.name, 1)
		g.metrics.RouteSeconds.Observe(g.opt.Now().Sub(j.created).Seconds())
		if err := g.enqueue(sc, Assign{Lease: lease, JobID: j.ID, SpecJSON: j.specJSON,
			ResumeStep: j.keyframeStep, Keyframe: j.keyframe}); err != nil {
			if errors.Is(err, errSendQueueFull) {
				// A stalled shard is failed in place (g.mu is held, so
				// the unlocked shardFailed wrapper would self-deadlock);
				// its leases — this job included — re-queue and the loop
				// re-routes them across the survivors.
				g.shardFailedLocked(sc, &transport.TransportError{Kind: transport.FaultStall, Proc: sc.id,
					Err: fmt.Errorf("shard %s send queue full", sc.name)})
				continue
			}
			// Encoding failures are deterministic: fail the job rather
			// than leave a phantom lease the heartbeat keeps alive or
			// burn the re-route budget retrying a hopeless frame.
			delete(sc.leases, lease)
			g.metrics.JobsLeased.Add(-1)
			j.lease, j.shard = 0, nil
			if g.inflight[j.Key] == j {
				delete(g.inflight, j.Key)
			}
			g.finishLocked(j, service.StateFailed, nil, fmt.Sprintf("encoding assign frame: %v", err))
			continue
		}
		g.journalJobLocked(j)
	}
}

// routeLocked picks the shard for a key: its ring owner if that shard
// has a free lease slot, else the next successors in ring order.
func (g *Gateway) routeLocked(key string) *shardConn {
	for _, id := range g.ring.Successors(hashKey(key), len(g.shards)) {
		sc := g.shards[id]
		if sc != nil && len(sc.leases) < sc.capacity {
			return sc
		}
	}
	return nil
}

// Get returns one gateway job's status.
func (g *Gateway) Get(id string) (GwStatus, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	j, ok := g.jobs[id]
	if !ok {
		return GwStatus{}, ErrNotFound
	}
	return g.statusLocked(j), nil
}

// Jobs lists gateway jobs in submission order.
func (g *Gateway) Jobs() []GwStatus {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]GwStatus, 0, len(g.order))
	for _, id := range g.order {
		out = append(out, g.statusLocked(g.jobs[id]))
	}
	return out
}

// Result returns the result JSON of a completed gateway job.
func (g *Gateway) Result(id string) (json.RawMessage, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	j, ok := g.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	if j.state != service.StateDone || j.result == nil {
		return nil, ErrNotDone
	}
	return j.result, nil
}

// Cancel cancels a pending or leased gateway job. A leased leader with
// followers keeps its shard job running — the followers still want the
// result — and only the caller's job is detached.
func (g *Gateway) Cancel(id string) (GwStatus, error) {
	g.mu.Lock()
	j, ok := g.jobs[id]
	if !ok {
		g.mu.Unlock()
		return GwStatus{}, ErrNotFound
	}
	if j.state.Terminal() {
		st := g.statusLocked(j)
		g.mu.Unlock()
		return st, ErrTerminal
	}
	var notify *shardConn
	var cancelMsg Cancel
	switch {
	case j.coalesced:
		// Detach from the leader; the leader keeps running.
		if leader, ok := g.inflight[j.Key]; ok {
			for i, f := range leader.followers {
				if f == j {
					leader.followers = append(leader.followers[:i], leader.followers[i+1:]...)
					break
				}
			}
		}
		j.state = service.StateCanceled
		g.metrics.JobsCanceled.Add(1)
		g.journalJobLocked(j)
	case j.shard != nil:
		if len(j.followers) > 0 {
			// Promote the first follower to leader so the shard job's
			// eventual result still lands somewhere.
			leader := j.followers[0]
			leader.followers = append(leader.followers, j.followers[1:]...)
			leader.coalesced = false
			leader.lease, leader.shard, leader.localID = j.lease, j.shard, j.localID
			leader.specJSON = j.specJSON
			leader.keyframe, leader.keyframeStep = j.keyframe, j.keyframeStep
			leader.resumedStep, leader.framesAddr = j.resumedStep, j.framesAddr
			j.shard.leases[j.lease] = leader
			g.inflight[j.Key] = leader
			j.followers = nil
			j.lease, j.shard = 0, nil
			j.state = service.StateCanceled
			g.metrics.JobsCanceled.Add(1)
			g.journalJobLocked(leader)
			g.journalJobLocked(j)
		} else {
			notify = j.shard
			cancelMsg = Cancel{Lease: j.lease, JobID: j.ID}
			// Terminal state arrives via Done(canceled) from the shard;
			// if the shard dies first, the flag makes requeueLocked
			// finish the job canceled instead of re-routing it.
			j.cancelRequested = true
			g.journalJobLocked(j)
		}
	case len(j.followers) > 0:
		// Pending leader with coalesced followers: hand the queue slot
		// to the first follower so other tenants' identical submissions
		// survive this caller's cancel, mirroring the leased promotion.
		leader := j.followers[0]
		leader.followers = append(leader.followers, j.followers[1:]...)
		leader.coalesced = false
		leader.state = service.StateQueued
		leader.specJSON = j.specJSON
		leader.keyframe, leader.keyframeStep = j.keyframe, j.keyframeStep
		leader.finishTag = j.finishTag
		g.inflight[j.Key] = leader
		g.tenantFor(j.Tenant).replaceQueued(j, leader)
		j.followers = nil
		j.state = service.StateCanceled
		g.metrics.JobsCanceled.Add(1)
		g.journalJobLocked(leader)
		g.journalJobLocked(j)
	default:
		// Pending, alone: mark terminal and free the backlog slot
		// eagerly so canceled jobs cannot pin g.pending at the bound.
		if g.inflight[j.Key] == j {
			delete(g.inflight, j.Key)
		}
		g.finishLocked(j, service.StateCanceled, nil, "")
		if g.tenantFor(j.Tenant).removeQueued(j) {
			g.pending--
			g.metrics.JobsPending.Add(-1)
		}
	}
	st := g.statusLocked(j)
	g.mu.Unlock()
	if notify != nil {
		g.send(notify, cancelMsg)
	}
	return st, nil
}

// Shards returns the fleet view sorted by shard ID.
func (g *Gateway) Shards() []ShardStatus {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]ShardStatus, 0, len(g.shards))
	for _, sc := range g.shards {
		out = append(out, ShardStatus{
			ID:       sc.id,
			Name:     sc.name,
			HTTPAddr: sc.httpAddr,
			Capacity: sc.capacity,
			Leases:   len(sc.leases),
			Routed:   g.metrics.Routed.Get(sc.name),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (g *Gateway) statusLocked(j *GwJob) GwStatus {
	st := GwStatus{
		ID:          j.ID,
		Tenant:      j.Tenant,
		Key:         j.Key,
		State:       j.state,
		Error:       j.errMsg,
		Cached:      j.cached,
		Coalesced:   j.coalesced,
		Retries:     j.retries,
		Created:     j.created,
		Spec:        j.Spec,
		Progress:    j.progress,
		ResumedStep: j.resumedStep,
	}
	if j.shard != nil {
		st.Shard = j.shard.name
	}
	return st
}

// newJobID mints a gateway job ID ("g" prefix so fleet and shard IDs
// never collide in logs).
func (g *Gateway) newJobID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		v := uint64(g.opt.Now().UnixNano())*0x9E3779B97F4A7C15 + g.nextLease.Add(1)
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
	}
	return "g" + hex.EncodeToString(b[:])
}
