package fabric

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func testJournalJob(id, state string, lease uint64, shard string) *journalJob {
	return &journalJob{
		ID: id, Tenant: "t", Key: "k-" + id,
		SpecJSON: json.RawMessage(`{"n":96}`),
		Created:  time.Unix(1700000000, 0).UTC(),
		State:    state, Lease: lease, Shard: shard,
		FinishTag: 1.5,
	}
}

// Append → close → reopen must replay last-write-wins per job, the
// newest keyframe, and the lease/WFQ clocks.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gw.journal")
	jl, st, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if st != nil {
		t.Fatalf("fresh journal replayed state: %+v", st)
	}
	if err := jl.AppendJob(testJournalJob("g1", "queued", 0, "")); err != nil {
		t.Fatal(err)
	}
	if err := jl.AppendJob(testJournalJob("g1", "running", 7, "s0")); err != nil {
		t.Fatal(err)
	}
	if err := jl.AppendJob(testJournalJob("g2", "queued", 0, "")); err != nil {
		t.Fatal(err)
	}
	if err := jl.AppendKeyframe("g1", 8, []byte("frame8")); err != nil {
		t.Fatal(err)
	}
	if err := jl.AppendKeyframe("g1", 4, []byte("frame4")); err != nil { // out of order: ignored
		t.Fatal(err)
	}
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}

	jl2, st2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer jl2.Close()
	if st2 == nil {
		t.Fatal("reopen returned no state")
	}
	if got := st2.Jobs["g1"]; got == nil || got.State != "running" || got.Lease != 7 || got.Shard != "s0" {
		t.Fatalf("g1 last-write-wins replay = %+v", st2.Jobs["g1"])
	}
	if got := st2.Jobs["g2"]; got == nil || got.State != "queued" {
		t.Fatalf("g2 replay = %+v", st2.Jobs["g2"])
	}
	if want := []string{"g1", "g2"}; !reflect.DeepEqual(st2.Order, want) {
		t.Fatalf("order = %v, want %v", st2.Order, want)
	}
	if kf := st2.Keyframes["g1"]; kf == nil || kf.Step != 8 || string(kf.Data) != "frame8" {
		t.Fatalf("keyframe replay = %+v (out-of-order frame must not win)", st2.Keyframes["g1"])
	}
	if st2.NextLease != 7 {
		t.Fatalf("NextLease = %d, want 7", st2.NextLease)
	}
	if st2.VTime != 1.5 {
		t.Fatalf("VTime = %v, want 1.5", st2.VTime)
	}
	if st2.Admissions["t"] != 2 {
		t.Fatalf("Admissions[t] = %d, want 2 (distinct jobs since last snapshot)", st2.Admissions["t"])
	}
}

// A crash mid-append leaves a torn record at the tail; reopen must keep
// the valid prefix, truncate the tail, and accept new appends cleanly.
func TestJournalCrashMidAppendTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gw.journal")
	jl, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := jl.AppendJob(testJournalJob("g1", "done", 0, "")); err != nil {
		t.Fatal(err)
	}
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Simulate the crash: a second record written only half-way out.
	body, _ := json.Marshal(testJournalJob("g2", "queued", 0, ""))
	rec := appendJournalRecord(nil, jrecJob, body)
	for cut := 1; cut < len(rec); cut += 7 {
		torn := append(append([]byte(nil), full...), rec[:cut]...)
		if err := os.WriteFile(path, torn, 0o644); err != nil {
			t.Fatal(err)
		}
		jl2, st, err := OpenJournal(path)
		if err != nil {
			t.Fatalf("reopen with %d torn bytes: %v", cut, err)
		}
		if st == nil || len(st.Jobs) != 1 || st.Jobs["g1"] == nil {
			t.Fatalf("cut %d: replay = %+v, want just g1", cut, st)
		}
		if jl2.Size() != int64(len(full)) {
			t.Fatalf("cut %d: size after reopen = %d, want truncated to %d", cut, jl2.Size(), len(full))
		}
		// The journal must keep working on the truncated tail.
		if err := jl2.AppendJob(testJournalJob("g3", "queued", 0, "")); err != nil {
			t.Fatal(err)
		}
		jl2.Close()
		_, st3, err := OpenJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		if st3 == nil || st3.Jobs["g3"] == nil || st3.Jobs["g2"] != nil {
			t.Fatalf("cut %d: post-truncate append replay = %+v", cut, st3)
		}
		// Reset for the next cut point.
		if err := os.WriteFile(path, full, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// A flipped bit inside a committed record must stop replay at the
// previous record instead of replaying garbage.
func TestJournalCorruptRecordStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gw.journal")
	jl, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	jl.AppendJob(testJournalJob("g1", "done", 0, ""))
	jl.AppendJob(testJournalJob("g2", "queued", 0, ""))
	jl.Close()
	data, _ := os.ReadFile(path)
	data[len(data)-10] ^= 0x40 // inside g2's record body
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	jl2, st, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer jl2.Close()
	if st == nil || st.Jobs["g1"] == nil || st.Jobs["g2"] != nil {
		t.Fatalf("replay past corruption = %+v, want only g1", st)
	}
}

// Compaction must be a lossless round trip: replaying the snapshot file
// yields the same state the snapshot described, and subsequent appends
// merge on top of it.
func TestJournalSnapshotCompactRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gw.journal")
	jl, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		jl.AppendJob(testJournalJob("g1", "running", uint64(i+1), "s0"))
	}
	preSize := jl.Size()
	snap := &journalSnapshot{
		Order: []string{"g1", "g2"},
		Jobs: []journalJob{
			*testJournalJob("g1", "running", 50, "s0"),
			*testJournalJob("g2", "queued", 0, ""),
		},
		Keyframes: []journalKeyframe{{ID: "g1", Step: 40, Data: []byte("kf40")}},
		Tenants:   []journalTenant{{Name: "t", Weight: 2, Rate: 10, Burst: 20, Tokens: 3.5, LastFinish: 9}},
		VTime:     12.25,
		NextLease: 50,
	}
	if err := jl.Compact(snap); err != nil {
		t.Fatal(err)
	}
	if jl.Size() >= preSize {
		t.Fatalf("compaction did not shrink the log: %d -> %d", preSize, jl.Size())
	}
	// Appends after compaction merge into the snapshot.
	if err := jl.AppendJob(testJournalJob("g3", "queued", 0, "")); err != nil {
		t.Fatal(err)
	}
	jl.Close()

	_, st, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if st == nil {
		t.Fatal("no state after compaction")
	}
	if want := []string{"g1", "g2", "g3"}; !reflect.DeepEqual(st.Order, want) {
		t.Fatalf("order = %v, want %v", st.Order, want)
	}
	for _, rec := range snap.Jobs {
		got := st.Jobs[rec.ID]
		if got == nil || !reflect.DeepEqual(*got, rec) {
			t.Fatalf("job %s replay differs from snapshot:\ngot  %+v\nwant %+v", rec.ID, got, rec)
		}
	}
	if kf := st.Keyframes["g1"]; kf == nil || !reflect.DeepEqual(*kf, snap.Keyframes[0]) {
		t.Fatalf("keyframe replay = %+v, want %+v", st.Keyframes["g1"], snap.Keyframes[0])
	}
	if !reflect.DeepEqual(st.Tenants, snap.Tenants) {
		t.Fatalf("tenants replay = %+v, want %+v", st.Tenants, snap.Tenants)
	}
	if st.VTime != snap.VTime || st.NextLease != snap.NextLease {
		t.Fatalf("clocks replay = (%v, %d), want (%v, %d)", st.VTime, st.NextLease, snap.VTime, snap.NextLease)
	}
	// Only g3 was admitted after the snapshot; g1's 50 pre-snapshot
	// records must not debit the replayed bucket.
	if st.Admissions["t"] != 1 {
		t.Fatalf("Admissions[t] = %d, want 1 (post-snapshot admissions only)", st.Admissions["t"])
	}
}

// FuzzReadJournalRecord hammers the record parser with mutated frames:
// it must never panic, never over-read, and anything it accepts must
// re-encode to the identical bytes.
func FuzzReadJournalRecord(f *testing.F) {
	body, _ := json.Marshal(testJournalJob("g1", "running", 3, "s0"))
	f.Add(appendJournalRecord(nil, jrecJob, body))
	f.Add(appendJournalRecord(nil, jrecKeyframe, []byte(`{"id":"g1","step":4,"data":"aGk="}`)))
	f.Add(appendJournalRecord(nil, jrecSnapshot, []byte(`{"order":[]}`)))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 2, 0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0}, journalHeaderLen+journalCRCLen))
	f.Fuzz(func(t *testing.T, data []byte) {
		kind, body, n, err := readJournalRecord(data)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("accepted record over-reads: n=%d > len=%d", n, len(data))
		}
		if !bytes.Equal(appendJournalRecord(nil, kind, body), data[:n]) {
			t.Fatalf("accepted record does not round-trip")
		}
	})
}

// The jittered backoff must (a) stay inside [d/2, d) while d doubles
// from base to cap, and (b) decorrelate two agents: satellite-1's
// thundering-herd regression.
func TestBackoffJitterSpread(t *testing.T) {
	base, cap := 100*time.Millisecond, 800*time.Millisecond
	b := newBackoffSeeded(base, cap, 1)
	want := base
	for i := 0; i < 20; i++ {
		d := b.next()
		if d < want/2 || d >= want {
			t.Fatalf("draw %d: delay %v outside [%v, %v)", i, d, want/2, want)
		}
		if want < cap {
			want *= 2
			if want > cap {
				want = cap
			}
		}
	}
	b.reset()
	if d := b.next(); d < base/2 || d >= base {
		t.Fatalf("after reset: delay %v outside [%v, %v)", d, base/2, base)
	}

	// Two seeds must not produce the same schedule, and repeated draws
	// at the cap must actually spread over the jitter window.
	b1, b2 := newBackoffSeeded(base, cap, 42), newBackoffSeeded(base, cap, 43)
	same := true
	seen := make(map[time.Duration]bool)
	for i := 0; i < 64; i++ {
		d1, d2 := b1.next(), b2.next()
		if d1 != d2 {
			same = false
		}
		seen[d1] = true
	}
	if same {
		t.Fatal("two differently-seeded backoffs produced identical schedules")
	}
	if len(seen) < 16 {
		t.Fatalf("64 draws produced only %d distinct delays; jitter is not spreading", len(seen))
	}

	// jitter() draws stay inside the half-open interval.
	for i := 0; i < 100; i++ {
		if d := b1.jitter(5*time.Millisecond, 40*time.Millisecond); d < 5*time.Millisecond || d >= 40*time.Millisecond {
			t.Fatalf("jitter draw %v outside [5ms, 40ms)", d)
		}
	}
}

// Parked results must survive an agent restart via the spool directory
// and disappear once acknowledged.
func TestParkStoreDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ps, err := newParkStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ps.Put(&parkedResult{JobID: "g2", State: "done", Result: json.RawMessage(`{"steps":3}`)})
	ps.Put(&parkedResult{JobID: "g1", State: "failed", Err: "boom"})

	ps2, err := newParkStore(dir) // the "restarted agent"
	if err != nil {
		t.Fatal(err)
	}
	list := ps2.List()
	if len(list) != 2 || list[0].JobID != "g1" || list[1].JobID != "g2" {
		t.Fatalf("reloaded park list = %+v", list)
	}
	if list[0].Err != "boom" || string(list[1].Result) != `{"steps":3}` {
		t.Fatalf("reloaded park entries lost fields: %+v", list)
	}
	if !ps2.Remove("g1") {
		t.Fatal("Remove(g1) found nothing")
	}
	if ps2.Remove("g1") {
		t.Fatal("second Remove(g1) claimed to remove again")
	}
	ps3, err := newParkStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ps3.Len() != 1 {
		t.Fatalf("after ack, reloaded store has %d entries, want 1", ps3.Len())
	}
}
