package fabric

import (
	"fmt"
	"testing"
)

func TestRingDeterministic(t *testing.T) {
	shards := map[int]string{0: "a", 1: "b", 2: "c"}
	r1 := NewRing(shards)
	r2 := NewRing(shards)
	for i := 0; i < 100; i++ {
		h := hashKey(fmt.Sprintf("key-%d", i))
		if r1.Owner(h) != r2.Owner(h) {
			t.Fatalf("key %d: owners differ between identical rings", i)
		}
	}
}

func TestRingSpread(t *testing.T) {
	r := NewRing(map[int]string{0: "a", 1: "b", 2: "c"})
	counts := map[int]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[r.Owner(hashKey(fmt.Sprintf("key-%d", i)))]++
	}
	for id, c := range counts {
		frac := float64(c) / keys
		if frac < 0.15 || frac > 0.55 {
			t.Errorf("shard %d owns %.1f%% of keys; want roughly a third", id, 100*frac)
		}
	}
	if len(counts) != 3 {
		t.Fatalf("only %d shards own keys; want 3", len(counts))
	}
}

func TestRingSuccessorsDistinct(t *testing.T) {
	r := NewRing(map[int]string{0: "a", 1: "b", 2: "c"})
	s := r.Successors(hashKey("job"), 3)
	if len(s) != 3 {
		t.Fatalf("got %d successors, want 3", len(s))
	}
	seen := map[int]bool{}
	for _, id := range s {
		if seen[id] {
			t.Fatalf("duplicate shard %d in successor list %v", id, s)
		}
		seen[id] = true
	}
	if more := r.Successors(hashKey("job"), 10); len(more) != 3 {
		t.Fatalf("asking for more successors than shards returned %d, want 3", len(more))
	}
}

// Removing one shard must only move that shard's keys: everyone else's
// owner is stable. This is the property that keeps re-routing after a
// shard death cheap.
func TestRingStabilityUnderRemoval(t *testing.T) {
	full := NewRing(map[int]string{0: "a", 1: "b", 2: "c"})
	reduced := NewRing(map[int]string{0: "a", 2: "c"})
	moved := 0
	const keys = 2000
	for i := 0; i < keys; i++ {
		h := hashKey(fmt.Sprintf("key-%d", i))
		before := full.Owner(h)
		after := reduced.Owner(h)
		if before != 1 && before != after {
			t.Fatalf("key %d moved from surviving shard %d to %d", i, before, after)
		}
		if before == 1 {
			moved++
			if after == 1 {
				t.Fatalf("key %d still owned by removed shard", i)
			}
		}
	}
	if moved == 0 {
		t.Fatal("no keys were owned by the removed shard; spread test is vacuous")
	}
}

// A shard that reconnects under the same name — a new session, new ID —
// must keep its key range: the hash identity is the name.
func TestRingIdentityIsName(t *testing.T) {
	before := NewRing(map[int]string{0: "a", 1: "b", 2: "c"})
	after := NewRing(map[int]string{0: "a", 7: "b", 2: "c"}) // "b" reconnected as session 7
	for i := 0; i < 500; i++ {
		h := hashKey(fmt.Sprintf("key-%d", i))
		b, a := before.Owner(h), after.Owner(h)
		if b == 1 {
			if a != 7 {
				t.Fatalf("key %d: owner was b(1), now %d; want b(7)", i, a)
			}
			continue
		}
		if b != a {
			t.Fatalf("key %d: owner moved %d → %d though only b's session changed", i, b, a)
		}
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(nil)
	if got := r.Owner(42); got != -1 {
		t.Fatalf("empty ring owner = %d, want -1", got)
	}
	if s := r.Successors(42, 3); s != nil {
		t.Fatalf("empty ring successors = %v, want nil", s)
	}
}
