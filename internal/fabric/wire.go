// Package fabric turns one nbodyd into a fleet: a gateway/router that
// consistent-hashes submitted jobs across N shard daemons, with
// heartbeat-leased work assignment instead of static addressing,
// per-tenant admission control (token-bucket quotas + weighted fair
// queueing) ahead of each shard's bounded queue, and a deterministic
// result cache keyed by the canonical (scenario, seed, params) hash so
// identical requests from a million users cost one simulation.
//
// The control plane rides the transport wire layer: every message is a
// registered codec type inside a transport host frame, and every
// failure surfaces as a transport.TransportError whose FaultKind drives
// the gateway's re-routing policy — a dead shard's leased jobs are
// re-queued and re-routed exactly the way the cluster supervisor
// retries a faulted machine generation.
//
// The two-clock rule holds end to end: routing, leasing, and caching
// are host-clock machinery. A job's simulated metrics are bit-identical
// whether it runs directly on one shard, is routed through the gateway,
// is re-routed after a shard death, or is served from the cache —
// that identity is what makes the cache correct by construction.
package fabric

import (
	"fmt"

	"repro/internal/transport"
)

// Fabric control-plane wire IDs live in the 61–80 block of the codec
// registry (see the block map in transport/codec.go). They are fixed,
// process-independent, and must never be reused for a different
// encoding.
const (
	idHello     uint16 = 61
	idWelcome   uint16 = 62
	idAssign    uint16 = 63
	idAccept    uint16 = 64
	idUpdate    uint16 = 65
	idDone      uint16 = 66
	idPing      uint16 = 67
	idPong      uint16 = 68
	idCancel    uint16 = 69
	idKeyframe  uint16 = 70
	idReport    uint16 = 71
	idAdopt     uint16 = 72
	idParked    uint16 = 73
	idParkedAck uint16 = 74
	idRelease   uint16 = 75
)

// Hello is a shard's registration: its human name, the HTTP address its
// own API listens on (advertised to clients via the gateway's fleet
// view), and how many concurrent leases it will accept — the gateway
// never queues more work on a shard than the shard asked for, so the
// shard's own bounded admission queue cannot overflow from fabric
// traffic.
type Hello struct {
	Name     string
	HTTPAddr string
	Capacity int32
}

// Welcome completes a registration: the shard's fleet ID plus the lease
// discipline — the shard must make traffic (pings, updates) at least
// every HeartbeatMillis, and the gateway declares it dead after
// LeaseTTLMillis of silence.
type Welcome struct {
	ShardID         int32
	LeaseTTLMillis  int64
	HeartbeatMillis int64
}

// Assign leases one job to a shard. SpecJSON is the canonicalized
// service.JobSpec; the shard re-validates it on its own admission path.
// When the gateway holds a replicated keyframe for the job — it was
// leased before, and its previous shard streamed frame-store keyframes
// back before dying — Keyframe carries that frame-store keyframe record
// and ResumeStep its step, so the new shard resumes mid-run instead of
// replaying from zero.
type Assign struct {
	Lease      uint64
	JobID      string
	SpecJSON   []byte
	ResumeStep int64
	Keyframe   []byte
}

// Accept is the shard's admission verdict for an Assign: the local job
// ID it minted, or the admission error (queue full, invalid spec).
// ResumedStep reports the completed-step count the shard actually
// restored from an Assign keyframe (0 = started from scratch — a shard
// that cannot use the seed degrades rather than refuses).
type Accept struct {
	Lease       uint64
	JobID       string
	LocalID     string
	Err         string
	ResumedStep int64
}

// Update is a progress snapshot for a leased job; ProgressJSON is the
// shard's service.Progress. Updates double as lease renewals.
type Update struct {
	Lease        uint64
	JobID        string
	State        string
	ProgressJSON []byte
}

// Done is the terminal report for a leased job. ResultJSON is the
// shard's service.Result for state "done"; Err carries the failure
// otherwise.
type Done struct {
	Lease      uint64
	JobID      string
	State      string
	Err        string
	ResultJSON []byte
}

// Ping renews every lease its sender holds; Pong echoes the timestamp
// back so the shard can observe gateway RTT.
type Ping struct{ Nanos int64 }
type Pong struct{ Nanos int64 }

// Cancel asks a shard to cancel a leased job.
type Cancel struct {
	Lease uint64
	JobID string
}

// Keyframe replicates one frame-store keyframe of a leased job from its
// shard to the gateway. The gateway keeps only the latest per job; if
// the shard dies, the next Assign for the job carries it back out so
// the replacement shard resumes from Step instead of step zero. Data is
// a self-contained frames keyframe record (frames.DecodeKeyframe).
type Keyframe struct {
	Lease uint64
	JobID string
	Step  int64
	Data  []byte
}

// ReportedJob is one in-flight lease a reconnecting shard still runs:
// the gateway job ID it was assigned under, the shard-local job ID, and
// the last completed step (observability; the gateway's adoption
// decision keys on the IDs alone).
type ReportedJob struct {
	JobID   string
	LocalID string
	Step    int64
}

// ReportJobs is the first message a shard sends after Welcome: every
// gateway job it is still running from previous sessions. A freshly
// restarted gateway uses these reports during its reconciliation window
// to adopt still-running jobs instead of re-routing them; a gateway
// that never crashed uses them to re-bind leases across a connection
// blip. Shards with nothing in flight send an empty report.
type ReportJobs struct {
	Jobs []ReportedJob
}

// Adopt re-binds a reported job to the fresh session under a new lease:
// the shard keeps running the job exactly where it was — no restart, no
// re-route — and resumes streaming Updates/Done under the new lease.
type Adopt struct {
	Lease   uint64
	JobID   string
	LocalID string
}

// Parked delivers a terminal result that completed while the gateway
// was unreachable and was spooled on the shard. It is addressed by
// gateway job ID because no live lease exists; the gateway finishes the
// job (idempotently) and answers ParkedAck.
type Parked struct {
	JobID      string
	State      string
	Err        string
	ResultJSON []byte
}

// ParkedAck confirms a Parked result is journaled gateway-side; the
// shard deletes its spooled copy. Always sent, even for unknown or
// already-terminal jobs, so redelivery converges.
type ParkedAck struct {
	JobID string
}

// Release tells a shard to cancel a local job it reported but the
// gateway cannot adopt: the job is terminal, canceled, or already
// re-routed to another shard (whose copy wins). Addressed by local ID
// because no lease binds the two sides.
type Release struct {
	JobID   string
	LocalID string
}

func init() {
	transport.Register(idHello,
		func(w *transport.Writer, v Hello) {
			w.Str(v.Name)
			w.Str(v.HTTPAddr)
			w.I32(v.Capacity)
		},
		func(r *transport.Reader) (Hello, error) {
			return Hello{Name: r.Str(), HTTPAddr: r.Str(), Capacity: r.I32()}, r.Err()
		})
	transport.Register(idWelcome,
		func(w *transport.Writer, v Welcome) {
			w.I32(v.ShardID)
			w.I64(v.LeaseTTLMillis)
			w.I64(v.HeartbeatMillis)
		},
		func(r *transport.Reader) (Welcome, error) {
			return Welcome{ShardID: r.I32(), LeaseTTLMillis: r.I64(), HeartbeatMillis: r.I64()}, r.Err()
		})
	transport.Register(idAssign,
		func(w *transport.Writer, v Assign) {
			w.U64(v.Lease)
			w.Str(v.JobID)
			w.Raw(v.SpecJSON)
			w.I64(v.ResumeStep)
			w.Raw(v.Keyframe)
		},
		func(r *transport.Reader) (Assign, error) {
			return Assign{Lease: r.U64(), JobID: r.Str(), SpecJSON: r.Raw(),
				ResumeStep: r.I64(), Keyframe: r.Raw()}, r.Err()
		})
	transport.Register(idAccept,
		func(w *transport.Writer, v Accept) {
			w.U64(v.Lease)
			w.Str(v.JobID)
			w.Str(v.LocalID)
			w.Str(v.Err)
			w.I64(v.ResumedStep)
		},
		func(r *transport.Reader) (Accept, error) {
			return Accept{Lease: r.U64(), JobID: r.Str(), LocalID: r.Str(), Err: r.Str(),
				ResumedStep: r.I64()}, r.Err()
		})
	transport.Register(idUpdate,
		func(w *transport.Writer, v Update) {
			w.U64(v.Lease)
			w.Str(v.JobID)
			w.Str(v.State)
			w.Raw(v.ProgressJSON)
		},
		func(r *transport.Reader) (Update, error) {
			return Update{Lease: r.U64(), JobID: r.Str(), State: r.Str(), ProgressJSON: r.Raw()}, r.Err()
		})
	transport.Register(idDone,
		func(w *transport.Writer, v Done) {
			w.U64(v.Lease)
			w.Str(v.JobID)
			w.Str(v.State)
			w.Str(v.Err)
			w.Raw(v.ResultJSON)
		},
		func(r *transport.Reader) (Done, error) {
			return Done{Lease: r.U64(), JobID: r.Str(), State: r.Str(), Err: r.Str(), ResultJSON: r.Raw()}, r.Err()
		})
	transport.Register(idPing,
		func(w *transport.Writer, v Ping) { w.I64(v.Nanos) },
		func(r *transport.Reader) (Ping, error) { return Ping{Nanos: r.I64()}, r.Err() })
	transport.Register(idPong,
		func(w *transport.Writer, v Pong) { w.I64(v.Nanos) },
		func(r *transport.Reader) (Pong, error) { return Pong{Nanos: r.I64()}, r.Err() })
	transport.Register(idCancel,
		func(w *transport.Writer, v Cancel) {
			w.U64(v.Lease)
			w.Str(v.JobID)
		},
		func(r *transport.Reader) (Cancel, error) {
			return Cancel{Lease: r.U64(), JobID: r.Str()}, r.Err()
		})
	transport.Register(idKeyframe,
		func(w *transport.Writer, v Keyframe) {
			w.U64(v.Lease)
			w.Str(v.JobID)
			w.I64(v.Step)
			w.Raw(v.Data)
		},
		func(r *transport.Reader) (Keyframe, error) {
			return Keyframe{Lease: r.U64(), JobID: r.Str(), Step: r.I64(), Data: r.Raw()}, r.Err()
		})
	transport.Register(idReport,
		func(w *transport.Writer, v ReportJobs) {
			w.U32(uint32(len(v.Jobs)))
			for _, j := range v.Jobs {
				w.Str(j.JobID)
				w.Str(j.LocalID)
				w.I64(j.Step)
			}
		},
		func(r *transport.Reader) (ReportJobs, error) {
			n := r.U32()
			if err := r.Err(); err != nil {
				return ReportJobs{}, err
			}
			// Each entry is at least 2 length-prefixed strings + an i64;
			// bound the allocation before trusting the count.
			if int(n) > r.Remaining()/16+1 {
				return ReportJobs{}, fmt.Errorf("fabric: report count %d exceeds frame", n)
			}
			v := ReportJobs{}
			for i := uint32(0); i < n; i++ {
				v.Jobs = append(v.Jobs, ReportedJob{JobID: r.Str(), LocalID: r.Str(), Step: r.I64()})
			}
			return v, r.Err()
		})
	transport.Register(idAdopt,
		func(w *transport.Writer, v Adopt) {
			w.U64(v.Lease)
			w.Str(v.JobID)
			w.Str(v.LocalID)
		},
		func(r *transport.Reader) (Adopt, error) {
			return Adopt{Lease: r.U64(), JobID: r.Str(), LocalID: r.Str()}, r.Err()
		})
	transport.Register(idParked,
		func(w *transport.Writer, v Parked) {
			w.Str(v.JobID)
			w.Str(v.State)
			w.Str(v.Err)
			w.Raw(v.ResultJSON)
		},
		func(r *transport.Reader) (Parked, error) {
			return Parked{JobID: r.Str(), State: r.Str(), Err: r.Str(), ResultJSON: r.Raw()}, r.Err()
		})
	transport.Register(idParkedAck,
		func(w *transport.Writer, v ParkedAck) { w.Str(v.JobID) },
		func(r *transport.Reader) (ParkedAck, error) {
			return ParkedAck{JobID: r.Str()}, r.Err()
		})
	transport.Register(idRelease,
		func(w *transport.Writer, v Release) {
			w.Str(v.JobID)
			w.Str(v.LocalID)
		},
		func(r *transport.Reader) (Release, error) {
			return Release{JobID: r.Str(), LocalID: r.Str()}, r.Err()
		})
}

// encodeControl frames one fabric control message: a transport host
// frame whose body is the registered payload. Fabric connections carry
// only these frames (plus Bye), so the host-frame kind unambiguously
// means "fabric control" here.
func encodeControl(payload any) ([]byte, error) {
	return transport.AppendControl(nil, transport.KindHost, payload)
}
