package fabric

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"
)

// The gateway journal is a durable write-ahead log of every state
// transition the gateway cannot afford to forget: submissions, tenant
// admission state, lease assignments, cancels, completions, and
// replicated keyframes. It shares the frame-store record discipline
// (internal/frames): a magic prefix, then CRC-framed records
//
//	[u32 bodyLen][u8 kind][body][u32 crc32c(kind||body)]
//
// so a torn tail from a crash mid-append truncates cleanly on reopen
// and a flipped bit fails the checksum instead of replaying garbage.
// Record bodies are JSON: the journal is a recovery log, not a hot
// path, and debuggability beats density here. Compaction rewrites the
// file as one snapshot record through a temp file + rename, so a crash
// mid-compaction leaves the previous journal intact.

// journalMagic distinguishes a gateway journal from a frame chain (NBF1)
// at a glance; the version digit bumps on incompatible record changes.
const journalMagic = "NBJ1"

// Journal record kinds. A snapshot resets replay state; job and
// keyframe records merge into it, last write wins per job.
const (
	jrecSnapshot byte = 1
	jrecJob      byte = 2
	jrecKeyframe byte = 3
)

const (
	journalHeaderLen = 5 // u32 body length + u8 kind
	journalCRCLen    = 4
	// maxJournalRecord bounds the allocation a corrupt length prefix can
	// force. Snapshots carry every live result, so the bound is generous.
	maxJournalRecord = 256 << 20
)

// errJournalCorrupt marks a record that fails framing or checksum
// validation; replay stops at the last valid record.
var errJournalCorrupt = errors.New("fabric: corrupt journal record")

var journalCRC = crc32.MakeTable(crc32.Castagnoli)

// journalJob is the durable form of one GwJob. Every mutation appends
// the job's full record; replay keeps the last one per ID, so the log
// needs no per-field delta encoding.
type journalJob struct {
	ID              string          `json:"id"`
	Tenant          string          `json:"tenant"`
	Key             string          `json:"key"`
	SpecJSON        json.RawMessage `json:"spec,omitempty"`
	Created         time.Time       `json:"created"`
	State           string          `json:"state"`
	Error           string          `json:"error,omitempty"`
	Cached          bool            `json:"cached,omitempty"`
	Coalesced       bool            `json:"coalesced,omitempty"`
	LeaderID        string          `json:"leader_id,omitempty"`
	Retries         int             `json:"retries,omitempty"`
	CancelRequested bool            `json:"cancel_requested,omitempty"`
	// Recovering marks a job whose lease was superseded (its shard
	// re-registered) and which sat in the reconciliation set when this
	// record was written: it carries no lease, but replay must NOT
	// re-queue it — its shard may still be running it.
	Recovering   bool            `json:"recovering,omitempty"`
	Lease        uint64          `json:"lease,omitempty"`
	Shard        string          `json:"shard,omitempty"`
	LocalID      string          `json:"local_id,omitempty"`
	KeyframeStep int64           `json:"keyframe_step,omitempty"`
	ResumedStep  int             `json:"resumed_step,omitempty"`
	FramesAddr   string          `json:"frames_addr,omitempty"`
	FinishTag    float64         `json:"finish_tag,omitempty"`
	Result       json.RawMessage `json:"result,omitempty"`
}

// journalKeyframe carries one replicated frame-store keyframe. Keyframes
// are journaled as their own records so the (large) frame bytes are not
// re-written with every job-state transition.
type journalKeyframe struct {
	ID   string `json:"id"`
	Step int64  `json:"step"`
	Data []byte `json:"data"`
}

// journalTenant is one tenant's admission state: bucket level and WFQ
// bookkeeping, captured in snapshots.
type journalTenant struct {
	Name       string  `json:"name"`
	Weight     float64 `json:"weight"`
	Rate       float64 `json:"rate"`
	Burst      float64 `json:"burst"`
	Tokens     float64 `json:"tokens"`
	LastFinish float64 `json:"last_finish"`
}

// journalSnapshot is the full replayable gateway state, written on
// compaction as the file's sole record.
type journalSnapshot struct {
	Order     []string          `json:"order"`
	Jobs      []journalJob      `json:"jobs"`
	Keyframes []journalKeyframe `json:"keyframes,omitempty"`
	Tenants   []journalTenant   `json:"tenants,omitempty"`
	VTime     float64           `json:"vtime"`
	NextLease uint64            `json:"next_lease"`
}

// JournalState is the replayed picture of a gateway at its last
// journaled transition: jobs (by ID, in submission order), the latest
// replicated keyframe per job, tenant admission state, and the WFQ /
// lease clocks.
type JournalState struct {
	Order     []string
	Jobs      map[string]*journalJob
	Keyframes map[string]*journalKeyframe
	Tenants   []journalTenant
	VTime     float64
	NextLease uint64
	// Admissions counts distinct jobs first journaled per tenant SINCE
	// the last snapshot. Snapshots capture token-bucket levels; each
	// admission after the snapshot consumed one token the snapshot does
	// not know about, so restore debits these from the replayed buckets.
	Admissions map[string]int
}

func newJournalState() *JournalState {
	return &JournalState{
		Jobs:       make(map[string]*journalJob),
		Keyframes:  make(map[string]*journalKeyframe),
		Admissions: make(map[string]int),
	}
}

// apply merges one record into the replay state.
func (st *JournalState) apply(kind byte, body []byte) error {
	switch kind {
	case jrecSnapshot:
		var snap journalSnapshot
		if err := json.Unmarshal(body, &snap); err != nil {
			return err
		}
		*st = *newJournalState()
		for i := range snap.Jobs {
			rec := snap.Jobs[i]
			st.Jobs[rec.ID] = &rec
		}
		// Order lists only IDs the snapshot actually carries; a snapshot
		// is self-consistent by construction but replay stays defensive.
		for _, id := range snap.Order {
			if _, ok := st.Jobs[id]; ok {
				st.Order = append(st.Order, id)
			}
		}
		for i := range snap.Keyframes {
			kf := snap.Keyframes[i]
			st.Keyframes[kf.ID] = &kf
		}
		st.Tenants = snap.Tenants
		st.VTime = snap.VTime
		st.NextLease = snap.NextLease
	case jrecJob:
		var rec journalJob
		if err := json.Unmarshal(body, &rec); err != nil {
			return err
		}
		if rec.ID == "" {
			return fmt.Errorf("job record without id")
		}
		if _, ok := st.Jobs[rec.ID]; !ok {
			st.Order = append(st.Order, rec.ID)
			st.Admissions[rec.Tenant]++
		}
		st.Jobs[rec.ID] = &rec
		if rec.Lease > st.NextLease {
			st.NextLease = rec.Lease
		}
		if rec.FinishTag > st.VTime {
			st.VTime = rec.FinishTag
		}
	case jrecKeyframe:
		var kf journalKeyframe
		if err := json.Unmarshal(body, &kf); err != nil {
			return err
		}
		if kf.ID == "" {
			return fmt.Errorf("keyframe record without id")
		}
		if prev, ok := st.Keyframes[kf.ID]; ok && prev.Step >= kf.Step {
			return nil // out-of-order replication; keep the newer frame
		}
		st.Keyframes[kf.ID] = &kf
	default:
		// Unknown kinds from a newer writer are skipped, not fatal: the
		// fields this reader understands still replay.
	}
	return nil
}

// appendJournalRecord frames one record onto buf: header, body, CRC.
func appendJournalRecord(buf []byte, kind byte, body []byte) []byte {
	var hdr [journalHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(body)))
	hdr[4] = kind
	buf = append(buf, hdr[:]...)
	buf = append(buf, body...)
	crc := crc32.Update(0, journalCRC, hdr[4:5])
	crc = crc32.Update(crc, journalCRC, body)
	return binary.LittleEndian.AppendUint32(buf, crc)
}

// readJournalRecord parses one framed record from the front of buf,
// returning the record and the total bytes it occupies. It never panics
// and never allocates beyond the validated body length; any framing or
// checksum violation returns errJournalCorrupt.
func readJournalRecord(buf []byte) (kind byte, body []byte, n int, err error) {
	if len(buf) < journalHeaderLen+journalCRCLen {
		return 0, nil, 0, errJournalCorrupt
	}
	bodyLen := binary.LittleEndian.Uint32(buf[:4])
	kind = buf[4]
	if bodyLen > maxJournalRecord {
		return 0, nil, 0, errJournalCorrupt
	}
	n = journalHeaderLen + int(bodyLen) + journalCRCLen
	if len(buf) < n {
		return 0, nil, 0, errJournalCorrupt
	}
	body = buf[journalHeaderLen : journalHeaderLen+int(bodyLen)]
	crc := crc32.Update(0, journalCRC, buf[4:5])
	crc = crc32.Update(crc, journalCRC, body)
	if crc != binary.LittleEndian.Uint32(buf[journalHeaderLen+int(bodyLen):n]) {
		return 0, nil, 0, errJournalCorrupt
	}
	return kind, body, n, nil
}

// replayJournal scans a journal image (after the magic), applying every
// valid record and reporting how many bytes of the image are good. A
// torn or corrupt tail ends the scan without error — that is the
// crash-mid-append case reopen truncates away.
func replayJournal(data []byte) (*JournalState, int, error) {
	st := newJournalState()
	off := 0
	for off < len(data) {
		kind, body, n, err := readJournalRecord(data[off:])
		if err != nil {
			return st, off, nil // torn tail: valid prefix ends here
		}
		if err := st.apply(kind, body); err != nil {
			// A record that frames correctly but decodes badly is real
			// corruption, not a torn append; stop and keep the prefix.
			return st, off, nil
		}
		off += n
	}
	return st, off, nil
}

// Journal is the gateway's open write-ahead log. All methods are called
// with the gateway mutex held (appends record transitions of state that
// same mutex guards), so the Journal itself needs no locking.
type Journal struct {
	path string
	f    *os.File
	size int64

	// compactBytes triggers a snapshot+truncate when the file outgrows
	// it; snapshotting resets the trigger to the snapshot size plus the
	// same budget, so compaction cost stays proportional to state size.
	compactBytes int64
}

// journalCompactBytes is the default snapshot+truncate threshold.
const journalCompactBytes = 4 << 20

// OpenJournal opens (creating if absent) the journal at path, replays
// it, and truncates any torn tail so the next append lands on a clean
// record boundary. The returned state is nil for a fresh journal.
func OpenJournal(path string) (*Journal, *JournalState, error) {
	data, err := os.ReadFile(path)
	fresh := false
	switch {
	case err == nil:
	case errors.Is(err, os.ErrNotExist):
		fresh = true
	default:
		return nil, nil, fmt.Errorf("fabric: reading journal %s: %w", path, err)
	}

	jl := &Journal{path: path, compactBytes: journalCompactBytes}
	if fresh || len(data) == 0 {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("fabric: creating journal %s: %w", path, err)
		}
		if _, err := f.Write([]byte(journalMagic)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("fabric: initializing journal %s: %w", path, err)
		}
		jl.f, jl.size = f, int64(len(journalMagic))
		return jl, nil, nil
	}

	if len(data) < len(journalMagic) || string(data[:len(journalMagic)]) != journalMagic {
		return nil, nil, fmt.Errorf("fabric: %s is not a gateway journal (bad magic)", path)
	}
	st, good, _ := replayJournal(data[len(journalMagic):])
	end := int64(len(journalMagic) + good)
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("fabric: opening journal %s: %w", path, err)
	}
	if end < int64(len(data)) {
		// Crash mid-append left a torn record; drop it so the replayed
		// state and the on-disk log agree byte for byte.
		if err := f.Truncate(end); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("fabric: truncating torn journal tail: %w", err)
		}
	}
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("fabric: seeking journal: %w", err)
	}
	jl.f, jl.size = f, end
	if len(st.Jobs) == 0 && len(st.Keyframes) == 0 && len(st.Tenants) == 0 {
		return jl, nil, nil
	}
	return jl, st, nil
}

// Size reports the journal's on-disk size (backs nbodygw_journal_bytes).
func (jl *Journal) Size() int64 {
	if jl == nil {
		return 0
	}
	return jl.size
}

// append frames and writes one record in a single Write call, so a
// crash leaves at worst one torn record at the tail.
func (jl *Journal) append(kind byte, v any) error {
	if jl == nil {
		return nil
	}
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	rec := appendJournalRecord(nil, kind, body)
	if _, err := jl.f.Write(rec); err != nil {
		return err
	}
	jl.size += int64(len(rec))
	return nil
}

// AppendJob journals one job-state transition.
func (jl *Journal) AppendJob(rec *journalJob) error { return jl.append(jrecJob, rec) }

// AppendKeyframe journals one replicated keyframe.
func (jl *Journal) AppendKeyframe(id string, step int64, data []byte) error {
	return jl.append(jrecKeyframe, &journalKeyframe{ID: id, Step: step, Data: data})
}

// ShouldCompact reports whether the log has outgrown its snapshot
// budget.
func (jl *Journal) ShouldCompact() bool {
	return jl != nil && jl.size > jl.compactBytes
}

// Compact rewrites the journal as a single snapshot record through a
// temp file + rename: a crash mid-compaction leaves the previous log
// untouched, and the rename is the commit point. The snapshot is also
// the one place the journal fsyncs — steady-state appends survive a
// process SIGKILL (the kernel holds the pages) and the periodic sync
// bounds what a whole-host crash can lose.
func (jl *Journal) Compact(snap *journalSnapshot) error {
	if jl == nil {
		return nil
	}
	body, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	buf := append([]byte(journalMagic), appendJournalRecord(nil, jrecSnapshot, body)...)
	tmp := jl.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, jl.path); err != nil {
		os.Remove(tmp)
		return err
	}
	old := jl.f
	nf, err := os.OpenFile(jl.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	old.Close()
	jl.f = nf
	jl.size = int64(len(buf))
	jl.compactBytes = jl.size + journalCompactBytes
	return nil
}

// Close releases the file handle. The journal needs no trailer: every
// record is self-validating.
func (jl *Journal) Close() error {
	if jl == nil || jl.f == nil {
		return nil
	}
	err := jl.f.Close()
	jl.f = nil
	return err
}
