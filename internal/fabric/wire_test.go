package fabric

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/transport"
)

// Every fabric control message must survive a codec round trip exactly:
// both ends resolve payloads by the fixed wire IDs alone.
func TestWireRoundTrips(t *testing.T) {
	msgs := []any{
		Hello{Name: "shard-1", HTTPAddr: "127.0.0.1:8081", Capacity: 4},
		Welcome{ShardID: 7, LeaseTTLMillis: 10_000, HeartbeatMillis: 2_500},
		Assign{Lease: 42, JobID: "gabc123", SpecJSON: []byte(`{"n":96}`)},
		Accept{Lease: 42, JobID: "gabc123", LocalID: "jdeadbeef"},
		Accept{Lease: 43, JobID: "gdef456", Err: "queue full"},
		Update{Lease: 42, JobID: "gabc123", State: "running", ProgressJSON: []byte(`{"step":2}`)},
		Done{Lease: 42, JobID: "gabc123", State: "done", ResultJSON: []byte(`{"steps":3}`)},
		Done{Lease: 44, JobID: "gfff", State: "failed", Err: "boom"},
		Ping{Nanos: 123456789},
		Pong{Nanos: 123456789},
		Cancel{Lease: 42, JobID: "gabc123"},
	}
	for _, in := range msgs {
		b, err := transport.Marshal(in)
		if err != nil {
			t.Fatalf("marshal %T: %v", in, err)
		}
		out, err := transport.Unmarshal(b)
		if err != nil {
			t.Fatalf("unmarshal %T: %v", in, err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("round trip %T:\n in: %+v\nout: %+v", in, in, out)
		}
	}
}

// Control frames carry messages over the same KindHost framing the SPMD
// transport uses; a frame written by encodeControl must read back with
// ReadRaw.
func TestWireControlFraming(t *testing.T) {
	in := Assign{Lease: 9, JobID: "g123", SpecJSON: []byte(`{"steps":1}`)}
	frame, err := encodeControl(in)
	if err != nil {
		t.Fatal(err)
	}
	kind, body, err := transport.ReadRaw(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	if kind != transport.KindHost {
		t.Fatalf("frame kind = %d, want KindHost", kind)
	}
	out, err := transport.Unmarshal(body)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out.(Assign)) {
		t.Fatalf("framing round trip: in %+v, out %+v", in, out)
	}
}

// The fabric block's IDs must stay inside 61–80 and registered.
func TestWireIDsRegistered(t *testing.T) {
	for _, v := range []any{
		Hello{}, Welcome{}, Assign{}, Accept{}, Update{}, Done{}, Ping{}, Pong{}, Cancel{},
	} {
		if !transport.Registered(v) {
			t.Fatalf("%T not registered with the transport codec", v)
		}
	}
}
