package fabric

import "container/list"

// cacheEntry is one cached terminal result: the canonical spec key, the
// result JSON exactly as the producing shard reported it, and which
// gateway job produced it (for provenance in the fleet view).
type cacheEntry struct {
	key      string
	result   []byte
	producer string
}

// Cache is a bounded LRU over canonical spec keys. Simulated metrics
// are deterministic functions of the canonical spec — that is the
// two-clock rule — so a hit returns a byte-identical result to what a
// fresh simulation would produce, and eviction is purely a capacity
// decision, never a correctness one. Guarded by the gateway mutex.
type Cache struct {
	cap     int
	order   *list.List // front = most recent
	entries map[string]*list.Element
}

// NewCache returns an LRU holding at most capacity results.
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// Get returns the cached result for key, marking it recently used.
func (c *Cache) Get(key string) ([]byte, bool) {
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).result, true
}

// Put stores a result, evicting the least-recently-used entry beyond
// capacity.
func (c *Cache) Put(key string, result []byte, producer string) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).result = result
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, result: result, producer: producer})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// Len returns the number of cached results.
func (c *Cache) Len() int { return c.order.Len() }
