package fabric

import (
	"hash/fnv"
	"math/rand"
	"sync"
	"time"
)

// backoff is a jittered, capped exponential backoff for shard-agent
// reconnects and parked-result drains. Plain exponential backoff
// synchronizes a fleet: every agent observes the gateway die at the
// same instant, so every agent's k-th retry lands at the same instant —
// a thundering herd straight into the freshly restarted gateway's
// accept loop. Full-range jitter decorrelates them: each delay is drawn
// uniformly from [d/2, d) where d doubles from base to cap, so N agents
// spread across half the window while the expected delay keeps its
// exponential shape.
type backoff struct {
	mu        sync.Mutex // Run's reconnect loop and the drain goroutine share the stream
	base, cap time.Duration
	cur       time.Duration
	rng       *rand.Rand
}

// newBackoff seeds the jitter stream. Two agents with different names
// draw different schedules even if started the same nanosecond.
func newBackoff(base, cap time.Duration, name string) *backoff {
	h := fnv.New64a()
	h.Write([]byte(name))
	seed := int64(h.Sum64()) ^ time.Now().UnixNano()
	return newBackoffSeeded(base, cap, seed)
}

// newBackoffSeeded is the deterministic constructor tests drive.
func newBackoffSeeded(base, cap time.Duration, seed int64) *backoff {
	if base <= 0 {
		base = 250 * time.Millisecond
	}
	if cap < base {
		cap = base
	}
	return &backoff{base: base, cap: cap, cur: base, rng: rand.New(rand.NewSource(seed))}
}

// next returns the delay before the next attempt and advances the
// exponential schedule.
func (b *backoff) next() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	d := b.cur
	if b.cur < b.cap {
		b.cur *= 2
		if b.cur > b.cap {
			b.cur = b.cap
		}
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(b.rng.Int63n(int64(half)))
}

// reset restores the schedule after a healthy session, so a later
// outage starts from the fast end again.
func (b *backoff) reset() {
	b.mu.Lock()
	b.cur = b.base
	b.mu.Unlock()
}

// jitter draws a uniform delay in [lo, hi) from the same stream; the
// parked-result drain paces its sends with it so N agents reconnecting
// together do not replay their spools in lockstep.
func (b *backoff) jitter(lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return lo + time.Duration(b.rng.Int63n(int64(hi-lo)))
}
