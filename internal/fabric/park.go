package fabric

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// parkedResult is one terminal result that completed while the gateway
// was unreachable, spooled until a reconnected session drains it.
type parkedResult struct {
	JobID  string          `json:"job_id"`
	State  string          `json:"state"`
	Err    string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// parkStore holds parked results. With a directory it follows the
// service-spool discipline — one JSON file per entry under
// <spool>/parked/, written through a temp file + rename, surviving an
// agent restart; without one it degrades to in-memory parking, which
// survives a gateway outage but not an agent crash.
type parkStore struct {
	dir string // "" = memory only

	mu  sync.Mutex
	mem map[string]*parkedResult
}

// newParkStore opens (creating if needed) the parked-result store and
// loads any entries a previous agent process left behind.
func newParkStore(dir string) (*parkStore, error) {
	ps := &parkStore{dir: dir, mem: make(map[string]*parkedResult)}
	if dir == "" {
		return ps, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fabric: creating park dir: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			continue
		}
		var p parkedResult
		if json.Unmarshal(data, &p) != nil || p.JobID == "" {
			continue // half-written or foreign file; redelivery is lost, not corrupted
		}
		ps.mem[p.JobID] = &p
	}
	return ps, nil
}

// Put parks one result, durably when a directory is configured.
func (ps *parkStore) Put(p *parkedResult) error {
	ps.mu.Lock()
	ps.mem[p.JobID] = p
	ps.mu.Unlock()
	if ps.dir == "" {
		return nil
	}
	data, err := json.Marshal(p)
	if err != nil {
		return err
	}
	path := filepath.Join(ps.dir, p.JobID+".json")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Remove deletes one entry after the gateway acknowledged it, and
// reports whether the entry existed (a redelivered ack removes
// nothing, so the drain counter only moves once per result).
func (ps *parkStore) Remove(jobID string) bool {
	ps.mu.Lock()
	_, had := ps.mem[jobID]
	delete(ps.mem, jobID)
	ps.mu.Unlock()
	if ps.dir != "" {
		os.Remove(filepath.Join(ps.dir, jobID+".json"))
	}
	return had
}

// List snapshots the parked entries in job-ID order (deterministic
// drain order for tests and logs).
func (ps *parkStore) List() []*parkedResult {
	ps.mu.Lock()
	out := make([]*parkedResult, 0, len(ps.mem))
	for _, p := range ps.mem {
		out = append(out, p)
	}
	ps.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].JobID < out[j].JobID })
	return out
}

// Len reports how many results await drain.
func (ps *parkStore) Len() int {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return len(ps.mem)
}
