package fabric

import (
	"net"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/transport"
)

// A shard whose send queue is full must be failed in place by the
// dispatch loop, which runs under the gateway mutex — the unlocked
// shardFailed wrapper there would self-deadlock and wedge every API
// handler forever.
func TestDispatchToStalledShardDoesNotDeadlock(t *testing.T) {
	gw, err := NewGateway(Options{ControlAddr: "127.0.0.1:0", Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	// A hand-built shard session: one-slot send queue, already full,
	// no writer goroutine draining it.
	c1, c2 := net.Pipe()
	defer c2.Close()
	sc := &shardConn{
		name:     "stalled",
		capacity: 4,
		conn:     c1,
		sendq:    make(chan []byte, 1),
		leases:   make(map[uint64]*GwJob),
	}
	sc.lastSeen.Store(time.Now().UnixNano())
	sc.sendq <- []byte("wedge")
	gw.mu.Lock()
	sc.id = gw.nextShard
	gw.nextShard++
	gw.shards[sc.id] = sc
	gw.rebuildRingLocked()
	gw.mu.Unlock()

	done := make(chan GwStatus, 1)
	go func() {
		st, err := gw.Submit("t", quickSpec(2, 81))
		if err != nil {
			t.Errorf("Submit: %v", err)
		}
		done <- st
	}()
	var st GwStatus
	select {
	case st = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Submit wedged dispatching to a stalled shard (send-path deadlock)")
	}
	if n := len(gw.Shards()); n != 0 {
		t.Fatalf("stalled shard still registered (%d shards); want it failed", n)
	}
	got, err := gw.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State.Terminal() {
		t.Fatalf("job reached %s; want it re-queued for the next shard", got.State)
	}
}

// Canceling a pending leader must not cancel the coalesced followers
// riding on it: the first follower inherits the queue slot and still
// completes, exactly like the leased-leader promotion.
func TestCancelPendingLeaderPromotesFollower(t *testing.T) {
	f := startFleet(t, 1, Options{LeaseTTL: 5 * time.Second}, 1)

	// Occupy the only lease slot so the leader/follower pair stays
	// pending.
	blocker, err := f.gw.Submit("tenant-a", slowSpec(61))
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "blocker leased", func() bool {
		shards := f.gw.Shards()
		return len(shards) == 1 && shards[0].Leases == 1
	})

	spec := quickSpec(2, 62)
	leader, err := f.gw.Submit("tenant-a", spec)
	if err != nil {
		t.Fatal(err)
	}
	follower, err := f.gw.Submit("tenant-b", spec)
	if err != nil {
		t.Fatal(err)
	}
	if !follower.Coalesced {
		t.Fatalf("second submission did not coalesce: %+v", follower)
	}

	cst, err := f.gw.Cancel(leader.ID)
	if err != nil {
		t.Fatal(err)
	}
	if cst.State != service.StateCanceled {
		t.Fatalf("canceled leader state = %s, want canceled", cst.State)
	}
	fst, err := f.gw.Get(follower.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fst.State.Terminal() {
		t.Fatalf("follower reached %s when its leader was canceled; want it promoted and still queued", fst.State)
	}

	// Free the slot: the promoted follower must run to completion.
	if _, err := f.gw.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}
	fin := awaitTerminal(t, f.gw, follower.ID)
	if fin.State != service.StateDone {
		t.Fatalf("promoted follower finished %s (%s); want done", fin.State, fin.Error)
	}
	if _, err := f.gw.Result(follower.ID); err != nil {
		t.Fatalf("promoted follower has no result: %v", err)
	}
}

// startMuteCancelShard registers a protocol-correct shard that accepts
// assignments but silently ignores Cancel frames, so a gateway-side
// cancel can never be acknowledged before the shard dies.
func startMuteCancelShard(t *testing.T, gw *Gateway, name string, capacity int32) net.Conn {
	t.Helper()
	conn, err := dialControl(gw.ControlAddr())
	if err != nil {
		t.Fatal(err)
	}
	hello, err := encodeControl(Hello{Name: name, Capacity: capacity})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(hello); err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			kind, body, err := transport.ReadRaw(conn)
			if err != nil {
				return
			}
			if kind != transport.KindHost {
				continue
			}
			v, err := transport.Unmarshal(body)
			if err != nil {
				return
			}
			if a, ok := v.(Assign); ok {
				ack, err := encodeControl(Accept{Lease: a.Lease, JobID: a.JobID, LocalID: "local-" + a.JobID})
				if err != nil {
					return
				}
				conn.Write(ack)
			}
			// Welcome, Pong: nothing to do. Cancel: deliberately ignored.
		}
	}()
	waitUntil(t, "mute-cancel shard registered", func() bool { return len(gw.Shards()) == 1 })
	return conn
}

// A cancel forwarded to a shard that dies before acknowledging must
// stick: the orphaned lease finishes canceled instead of being
// re-routed and run to completion behind the caller's back. A fresh
// submission of the same spec must not coalesce onto the doomed leader.
func TestCancelSurvivesShardDeath(t *testing.T) {
	gw, err := NewGateway(Options{ControlAddr: "127.0.0.1:0", LeaseTTL: 5 * time.Second, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	conn := startMuteCancelShard(t, gw, "mute-cancel", 1)
	defer conn.Close()

	spec := quickSpec(2, 51)
	st, err := gw.Submit("t", spec)
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "job leased to the mute shard", func() bool {
		shards := gw.Shards()
		return len(shards) == 1 && shards[0].Leases == 1
	})

	if _, err := gw.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}

	// The leader's cancel is in flight: an identical submission must
	// start a fresh job, not ride along into the cancel.
	st2, err := gw.Submit("t", spec)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Coalesced {
		t.Fatal("fresh submission coalesced onto a leader whose cancel is in flight")
	}

	// The shard dies without ever acknowledging the cancel.
	conn.Close()
	fin := awaitTerminal(t, gw, st.ID)
	if fin.State != service.StateCanceled {
		t.Fatalf("job finished %s after its shard died; want the requested cancel honored", fin.State)
	}
	if n := gw.Metrics().Rerouted.Total(); n != 0 {
		t.Fatalf("cancel-requested job was re-routed %d time(s); want 0", n)
	}
	// The replacement submission survives, waiting for fleet capacity.
	got, err := gw.Get(st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State.Terminal() {
		t.Fatalf("replacement job reached %s; want it still queued", got.State)
	}
}

// A backlog-full rejection must refund the tenant's quota token, and
// canceling a queued job must free its backlog slot immediately — the
// two halves of "a full fleet does not also burn quota".
func TestBacklogRejectionRefundsQuotaAndCancelFreesSlot(t *testing.T) {
	// No shards: every admitted job stays pending. Burst of 3 with no
	// meaningful refill bounds the total token spend.
	gw, err := NewGateway(Options{
		ControlAddr: "127.0.0.1:0",
		MaxPending:  1,
		TenantRate:  0.001,
		TenantBurst: 3,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	s1, err := gw.Submit("t", quickSpec(2, 71))
	if err != nil {
		t.Fatal(err)
	}
	_, err = gw.Submit("t", quickSpec(2, 72))
	rej, ok := err.(*RejectedError)
	if !ok {
		t.Fatalf("submit over backlog err = %v, want *RejectedError", err)
	}
	if rej.Reason != "dispatch backlog full" {
		t.Fatalf("rejection reason = %q, want backlog-full", rej.Reason)
	}

	// Canceling the queued job frees its slot right away…
	if _, err := gw.Cancel(s1.ID); err != nil {
		t.Fatal(err)
	}
	s3, err := gw.Submit("t", quickSpec(2, 73))
	if err != nil {
		t.Fatalf("submit after cancel rejected (%v); canceled job still pinned the backlog", err)
	}
	// …and with the rejected submission's token refunded, a third
	// admission still fits the burst of 3.
	if _, err := gw.Cancel(s3.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := gw.Submit("t", quickSpec(2, 74)); err != nil {
		t.Fatalf("third admission rejected (%v); backlog-full rejection burned a quota token", err)
	}
}
