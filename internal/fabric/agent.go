package fabric

import (
	"encoding/json"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/service"
	"repro/internal/transport"
)

// Agent is the shard side of the fabric: it registers a local
// service.Service with a gateway, accepts leased assignments, runs them
// through the local job queue, streams progress back, and reports
// terminal results. It reconnects with backoff if the gateway drops.
type Agent struct {
	// Svc is the local job service assignments run on.
	Svc *service.Service
	// Gateway is the gateway control address to register with.
	Gateway string
	// Name identifies this shard on the hash ring; it must be stable
	// across reconnects so the shard keeps its ring positions.
	Name string
	// HTTPAddr is this shard's own API address, advertised for
	// debugging (the fleet view shows it).
	HTTPAddr string
	// Capacity is the number of concurrent leases to advertise
	// (default 1).
	Capacity int
	// Logf receives operational log lines (default log.Printf).
	Logf func(format string, args ...any)
}

// agentSession is one live gateway connection's state.
type agentSession struct {
	agent *Agent
	conn  net.Conn

	writeMu sync.Mutex // one frame at a time on the wire

	mu      sync.Mutex
	jobs    map[uint64]string // lease → local job ID
	byLocal map[string]uint64 // local job ID → lease (keyframe hook lookup)
	closed  bool
}

// Run connects to the gateway and serves assignments until stop
// closes. Connection failures back off and retry; Run only returns on
// stop.
func (a *Agent) Run(stop <-chan struct{}) {
	if a.Logf == nil {
		a.Logf = log.Printf
	}
	if a.Capacity < 1 {
		a.Capacity = 1
	}
	backoff := 250 * time.Millisecond
	for {
		select {
		case <-stop:
			return
		default:
		}
		err := a.session(stop)
		select {
		case <-stop:
			return
		default:
		}
		if err != nil {
			a.Logf("fabric agent %s: session ended: %v (reconnecting in %v)", a.Name, err, backoff)
		}
		select {
		case <-stop:
			return
		case <-time.After(backoff):
		}
		if backoff < 5*time.Second {
			backoff *= 2
		}
	}
}

// session runs one registration: Hello/Welcome, then the assignment
// pump until the connection dies or stop closes.
func (a *Agent) session(stop <-chan struct{}) error {
	conn, err := net.DialTimeout("tcp", a.Gateway, 5*time.Second)
	if err != nil {
		return fmt.Errorf("dial gateway %s: %w", a.Gateway, err)
	}
	s := &agentSession{agent: a, conn: conn, jobs: make(map[uint64]string), byLocal: make(map[string]uint64)}
	defer s.close()

	// Replicate frame-store keyframes of leased jobs to the gateway: if
	// this shard dies, the gateway re-routes each job with its latest
	// keyframe and the replacement shard resumes mid-run. Keyframes of
	// purely local jobs have no lease and are skipped. The hook runs on
	// worker goroutines; a send failure here is ignored — the session
	// read loop notices the dead connection and re-registers.
	a.Svc.SetFrameHook(func(jobID string, step int64, rec []byte) {
		s.mu.Lock()
		lease, ok := s.byLocal[jobID]
		s.mu.Unlock()
		if !ok {
			return
		}
		s.send(Keyframe{Lease: lease, JobID: jobID, Step: step, Data: rec})
	})
	defer a.Svc.SetFrameHook(nil)

	if err := s.send(Hello{Name: a.Name, HTTPAddr: a.HTTPAddr, Capacity: int32(a.Capacity)}); err != nil {
		return fmt.Errorf("hello: %w", err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	kind, body, err := transport.ReadRaw(conn)
	if err != nil {
		return fmt.Errorf("awaiting welcome: %w", err)
	}
	if kind != transport.KindHost {
		return fmt.Errorf("awaiting welcome: unexpected frame kind %d", kind)
	}
	v, err := transport.Unmarshal(body)
	if err != nil {
		return fmt.Errorf("decoding welcome: %w", err)
	}
	welcome, ok := v.(Welcome)
	if !ok {
		return fmt.Errorf("awaiting welcome: unexpected message %T", v)
	}
	leaseTTL := time.Duration(welcome.LeaseTTLMillis) * time.Millisecond
	heartbeat := time.Duration(welcome.HeartbeatMillis) * time.Millisecond
	if heartbeat <= 0 {
		heartbeat = leaseTTL / 4
	}
	if heartbeat <= 0 {
		heartbeat = time.Second
	}
	a.Logf("fabric agent %s: registered with %s as shard %d (lease TTL %v)",
		a.Name, a.Gateway, welcome.ShardID, leaseTTL)

	// Heartbeats keep the lease alive even when no job traffic flows.
	hbStop := make(chan struct{})
	defer close(hbStop)
	go func() {
		t := time.NewTicker(heartbeat)
		defer t.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-stop:
				return
			case now := <-t.C:
				if err := s.send(Ping{Nanos: now.UnixNano()}); err != nil {
					return
				}
			}
		}
	}()
	// A stop request tears the connection down so ReadRaw unblocks.
	go func() {
		select {
		case <-stop:
			bye, err := transport.AppendControl(nil, transport.KindBye, nil)
			if err == nil {
				s.writeMu.Lock()
				conn.SetWriteDeadline(time.Now().Add(time.Second))
				conn.Write(bye)
				s.writeMu.Unlock()
			}
			conn.Close()
		case <-hbStop:
		}
	}()

	for {
		// A gateway silent past three lease TTLs is gone; reconnect.
		if leaseTTL > 0 {
			conn.SetReadDeadline(time.Now().Add(3 * leaseTTL))
		} else {
			conn.SetReadDeadline(time.Time{})
		}
		kind, body, err := transport.ReadRaw(conn)
		if err != nil {
			return fmt.Errorf("gateway connection: %w", err)
		}
		switch kind {
		case transport.KindBye:
			return fmt.Errorf("gateway said goodbye")
		case transport.KindHost:
			v, err := transport.Unmarshal(body)
			if err != nil {
				return fmt.Errorf("decoding control frame: %w", err)
			}
			s.handle(v)
		default:
			// Skip unknown kinds for forward compatibility.
		}
	}
}

// handle dispatches one gateway message.
func (s *agentSession) handle(v any) {
	switch msg := v.(type) {
	case Ping:
		s.send(Pong{Nanos: msg.Nanos})
	case Pong:
		// Round trip complete; nothing to record.
	case Assign:
		s.handleAssign(msg)
	case Cancel:
		s.handleCancel(msg)
	default:
		s.agent.Logf("fabric agent %s: unexpected control message %T", s.agent.Name, v)
	}
}

// handleAssign admits one leased job into the local service and spawns
// the progress forwarder.
func (s *agentSession) handleAssign(msg Assign) {
	var spec service.JobSpec
	if err := json.Unmarshal(msg.SpecJSON, &spec); err != nil {
		s.send(Accept{Lease: msg.Lease, JobID: msg.JobID, Err: fmt.Sprintf("decoding spec: %v", err)})
		return
	}
	var st service.Status
	var err error
	if len(msg.Keyframe) > 0 {
		// A re-routed job with a replicated keyframe: resume from it.
		// SubmitSeeded degrades to a from-scratch run on any problem with
		// the seed, so the assignment never bounces over a stale frame.
		st, err = s.agent.Svc.SubmitSeeded(spec, msg.Keyframe)
	} else {
		st, err = s.agent.Svc.Submit(spec)
	}
	if err != nil {
		s.send(Accept{Lease: msg.Lease, JobID: msg.JobID, Err: err.Error()})
		return
	}
	s.mu.Lock()
	s.jobs[msg.Lease] = st.ID
	s.byLocal[st.ID] = msg.Lease
	s.mu.Unlock()
	s.send(Accept{Lease: msg.Lease, JobID: msg.JobID, LocalID: st.ID,
		ResumedStep: int64(st.ResumedFrom)})
	go s.forward(msg.Lease, msg.JobID, st.ID)
}

// handleCancel cancels the local job behind a lease; the terminal
// Done(canceled) flows back through the forwarder.
func (s *agentSession) handleCancel(msg Cancel) {
	s.mu.Lock()
	localID, ok := s.jobs[msg.Lease]
	s.mu.Unlock()
	if !ok {
		return
	}
	s.agent.Svc.Cancel(localID)
}

// forward streams the local job's progress to the gateway, then its
// terminal result.
func (s *agentSession) forward(lease uint64, jobID, localID string) {
	defer func() {
		s.mu.Lock()
		delete(s.jobs, lease)
		delete(s.byLocal, localID)
		s.mu.Unlock()
	}()
	ch, unsub, err := s.agent.Svc.Subscribe(localID)
	if err != nil {
		s.send(Done{Lease: lease, JobID: jobID, State: string(service.StateFailed),
			Err: fmt.Sprintf("subscribing to local job: %v", err)})
		return
	}
	defer unsub()
	for p := range ch {
		st, err := s.agent.Svc.Get(localID)
		if err != nil {
			break
		}
		pj, err := json.Marshal(p)
		if err != nil {
			continue
		}
		if err := s.send(Update{Lease: lease, JobID: jobID, State: string(st.State), ProgressJSON: pj}); err != nil {
			return // connection gone; the gateway will re-route
		}
	}
	st, err := s.agent.Svc.Get(localID)
	if err != nil {
		s.send(Done{Lease: lease, JobID: jobID, State: string(service.StateFailed),
			Err: fmt.Sprintf("local job vanished: %v", err)})
		return
	}
	switch st.State {
	case service.StateDone:
		res, err := s.agent.Svc.Result(localID)
		if err != nil {
			s.send(Done{Lease: lease, JobID: jobID, State: string(service.StateFailed),
				Err: fmt.Sprintf("fetching local result: %v", err)})
			return
		}
		rj, err := json.Marshal(res)
		if err != nil {
			s.send(Done{Lease: lease, JobID: jobID, State: string(service.StateFailed),
				Err: fmt.Sprintf("encoding result: %v", err)})
			return
		}
		s.send(Done{Lease: lease, JobID: jobID, State: string(service.StateDone), ResultJSON: rj})
	case service.StateCanceled:
		s.send(Done{Lease: lease, JobID: jobID, State: string(service.StateCanceled)})
	default:
		s.send(Done{Lease: lease, JobID: jobID, State: string(service.StateFailed), Err: st.Error})
	}
}

// send writes one control frame; frames are serialized so concurrent
// forwarders never interleave bytes.
func (s *agentSession) send(payload any) error {
	buf, err := encodeControl(payload)
	if err != nil {
		return err
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if s.closed {
		return fmt.Errorf("session closed")
	}
	s.conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
	_, err = s.conn.Write(buf)
	return err
}

// close tears the session down and cancels gateway-leased local jobs:
// once the connection is gone the gateway re-routes them, so finishing
// them here would only duplicate work.
func (s *agentSession) close() {
	s.writeMu.Lock()
	s.closed = true
	s.writeMu.Unlock()
	s.conn.Close()
	s.mu.Lock()
	locals := make([]string, 0, len(s.jobs))
	for _, id := range s.jobs {
		locals = append(locals, id)
	}
	s.jobs = make(map[uint64]string)
	s.byLocal = make(map[string]uint64)
	s.mu.Unlock()
	for _, id := range locals {
		s.agent.Svc.Cancel(id)
	}
}
