package fabric

import (
	"encoding/json"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/service"
	"repro/internal/transport"
)

// Agent is the shard side of the fabric: it registers a local
// service.Service with a gateway, accepts leased assignments, runs them
// through the local job queue, streams progress back, and reports
// terminal results. It reconnects with jittered backoff if the gateway
// drops — and, crucially, keeps its leased jobs RUNNING through the
// outage: the gateway journal remembers them, the reconnect handshake
// reports them, and the gateway adopts them in place instead of
// re-executing. Results that complete while the gateway is away are
// parked (spooled when ParkDir is set) and drained on reconnect.
type Agent struct {
	// Svc is the local job service assignments run on.
	Svc *service.Service
	// Gateway is the gateway control address to register with.
	Gateway string
	// Name identifies this shard on the hash ring; it must be stable
	// across reconnects so the shard keeps its ring positions.
	Name string
	// HTTPAddr is this shard's own API address, advertised for
	// debugging (the fleet view shows it).
	HTTPAddr string
	// Capacity is the number of concurrent leases to advertise
	// (default 1).
	Capacity int
	// ParkDir, when set, spools results that complete while the gateway
	// is unreachable to one JSON file per job (written atomically), so
	// they survive an agent restart too. Daemons derive it from the
	// service spool via service.ParkedDir. Empty parks in memory only.
	ParkDir string
	// Chaos, when set, wraps the gateway connection in a
	// transport.FaultConn so drills can inject the PR-4 fault taxonomy
	// into the shard side of the control plane. Tests only.
	Chaos *transport.FaultPlan
	// Logf receives operational log lines (default log.Printf).
	Logf func(format string, args ...any)

	mu       sync.Mutex
	inflight map[string]*agentJob // gateway job ID → live local job
	byLocal  map[string]*agentJob // local job ID → same (frame hook lookup)
	byLease  map[uint64]*agentJob // current lease → same (cancel lookup)
	sess     *agentSession        // live gateway session, nil during outages
	park     *parkStore
	bo       *backoff
}

// agentJob is one gateway-leased job the agent is running locally. It
// outlives gateway sessions: the lease re-binds on every reconnect
// (fresh Assign de-dup or Adopt), while the local job runs undisturbed.
type agentJob struct {
	gwID     string
	localID  string
	lease    uint64 // 0 while the gateway is away
	released bool   // gateway declined the job; don't deliver or park
	kfStep   int64
	kf       []byte // latest frame-store keyframe, re-sent after Adopt
}

// agentSession is one live gateway connection.
type agentSession struct {
	agent *Agent
	conn  net.Conn

	writeMu sync.Mutex // one frame at a time on the wire
	closed  bool
	gone    chan struct{} // closed when the session tears down
}

// Run connects to the gateway and serves assignments until stop
// closes. Connection failures retry with jittered, capped exponential
// backoff (reset after every healthy session); Run only returns on
// stop, cancelling the local jobs it was running for the gateway.
func (a *Agent) Run(stop <-chan struct{}) {
	if a.Logf == nil {
		a.Logf = log.Printf
	}
	if a.Capacity < 1 {
		a.Capacity = 1
	}
	a.mu.Lock()
	if a.inflight == nil {
		a.inflight = make(map[string]*agentJob)
		a.byLocal = make(map[string]*agentJob)
		a.byLease = make(map[uint64]*agentJob)
	}
	if a.bo == nil {
		a.bo = newBackoff(250*time.Millisecond, 5*time.Second, a.Name)
	}
	if a.park == nil {
		ps, err := newParkStore(a.ParkDir)
		if err != nil {
			a.Logf("fabric agent %s: park dir unavailable (%v); parking in memory", a.Name, err)
			ps, _ = newParkStore("")
		} else if n := ps.Len(); n > 0 {
			a.Logf("fabric agent %s: %d parked result(s) recovered from %s", a.Name, n, a.ParkDir)
		}
		a.park = ps
	}
	a.mu.Unlock()

	// Keyframes stream from worker goroutines for the whole agent
	// lifetime: each is remembered per job (so an Adopt can re-seed a
	// restarted gateway's journal) and forwarded when a session is live.
	a.Svc.SetFrameHook(func(localID string, step int64, rec []byte) {
		a.mu.Lock()
		j := a.byLocal[localID]
		var lease uint64
		var sess *agentSession
		if j != nil {
			j.kf = append(j.kf[:0], rec...)
			j.kfStep = step
			lease, sess = j.lease, a.sess
		}
		a.mu.Unlock()
		if j == nil || sess == nil || lease == 0 {
			return
		}
		sess.send(Keyframe{Lease: lease, JobID: j.gwID, Step: step, Data: rec})
	})
	defer a.Svc.SetFrameHook(nil)
	defer a.cancelLocal()

	for {
		select {
		case <-stop:
			return
		default:
		}
		welcomed, err := a.session(stop)
		select {
		case <-stop:
			return
		default:
		}
		if welcomed {
			a.bo.reset()
		}
		d := a.bo.next()
		if err != nil {
			a.Logf("fabric agent %s: session ended: %v (reconnecting in %v)", a.Name, err, d.Round(time.Millisecond))
		}
		select {
		case <-stop:
			return
		case <-time.After(d):
		}
	}
}

// cancelLocal cancels every gateway-leased local job: the agent is
// stopping for good, not riding out an outage.
func (a *Agent) cancelLocal() {
	a.mu.Lock()
	locals := make([]string, 0, len(a.inflight))
	for _, j := range a.inflight {
		locals = append(locals, j.localID)
	}
	a.mu.Unlock()
	for _, id := range locals {
		a.Svc.Cancel(id)
	}
}

// session runs one registration: Hello/Welcome, the in-flight lease
// report, the parked-result drain, then the assignment pump until the
// connection dies or stop closes. The bool reports whether the session
// got past the handshake (healthy — reset the reconnect backoff).
func (a *Agent) session(stop <-chan struct{}) (bool, error) {
	conn, err := net.DialTimeout("tcp", a.Gateway, 5*time.Second)
	if err != nil {
		return false, fmt.Errorf("dial gateway %s: %w", a.Gateway, err)
	}
	if a.Chaos != nil {
		conn = transport.NewFaultConn(conn, *a.Chaos)
	}
	s := &agentSession{agent: a, conn: conn, gone: make(chan struct{})}
	defer s.close()

	if err := s.send(Hello{Name: a.Name, HTTPAddr: a.HTTPAddr, Capacity: int32(a.Capacity)}); err != nil {
		return false, fmt.Errorf("hello: %w", err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	kind, body, err := transport.ReadRaw(conn)
	if err != nil {
		return false, fmt.Errorf("awaiting welcome: %w", err)
	}
	if kind != transport.KindHost {
		return false, fmt.Errorf("awaiting welcome: unexpected frame kind %d", kind)
	}
	v, err := transport.Unmarshal(body)
	if err != nil {
		return false, fmt.Errorf("decoding welcome: %w", err)
	}
	welcome, ok := v.(Welcome)
	if !ok {
		return false, fmt.Errorf("awaiting welcome: unexpected message %T", v)
	}
	leaseTTL := time.Duration(welcome.LeaseTTLMillis) * time.Millisecond
	heartbeat := time.Duration(welcome.HeartbeatMillis) * time.Millisecond
	if heartbeat <= 0 {
		heartbeat = leaseTTL / 4
	}
	if heartbeat <= 0 {
		heartbeat = time.Second
	}
	a.mu.Lock()
	a.sess = s
	a.mu.Unlock()
	a.Logf("fabric agent %s: registered with %s as shard %d (lease TTL %v)",
		a.Name, a.Gateway, welcome.ShardID, leaseTTL)

	// First business on a fresh session: report every job still running
	// for the gateway so it adopts them instead of re-routing (an empty
	// report is still sent — it tells a restarted gateway this shard
	// holds nothing). Then drain parked results in the background.
	if err := s.send(ReportJobs{Jobs: a.reportedJobs()}); err != nil {
		return false, fmt.Errorf("reporting in-flight jobs: %w", err)
	}
	go a.drainParked(s, stop)

	// Heartbeats keep the lease alive even when no job traffic flows.
	go func() {
		t := time.NewTicker(heartbeat)
		defer t.Stop()
		for {
			select {
			case <-s.gone:
				return
			case <-stop:
				return
			case now := <-t.C:
				if err := s.send(Ping{Nanos: now.UnixNano()}); err != nil {
					return
				}
			}
		}
	}()
	// A stop request tears the connection down so ReadRaw unblocks.
	go func() {
		select {
		case <-stop:
			bye, err := transport.AppendControl(nil, transport.KindBye, nil)
			if err == nil {
				s.writeMu.Lock()
				conn.SetWriteDeadline(time.Now().Add(time.Second))
				conn.Write(bye)
				s.writeMu.Unlock()
			}
			conn.Close()
		case <-s.gone:
		}
	}()

	for {
		// A gateway silent past three lease TTLs is gone; reconnect.
		if leaseTTL > 0 {
			conn.SetReadDeadline(time.Now().Add(3 * leaseTTL))
		} else {
			conn.SetReadDeadline(time.Time{})
		}
		kind, body, err := transport.ReadRaw(conn)
		if err != nil {
			return true, fmt.Errorf("gateway connection: %w", err)
		}
		switch kind {
		case transport.KindBye:
			return true, fmt.Errorf("gateway said goodbye")
		case transport.KindHost:
			v, err := transport.Unmarshal(body)
			if err != nil {
				return true, fmt.Errorf("decoding control frame: %w", err)
			}
			s.handle(v)
		default:
			// Skip unknown kinds for forward compatibility.
		}
	}
}

// reportedJobs snapshots the in-flight set for the reconnect report,
// with each job's current completed-step count so drills can assert
// adopted jobs never move backwards.
func (a *Agent) reportedJobs() []ReportedJob {
	a.mu.Lock()
	jobs := make([]*agentJob, 0, len(a.inflight))
	for _, j := range a.inflight {
		if !j.released {
			jobs = append(jobs, j)
		}
	}
	a.mu.Unlock()
	out := make([]ReportedJob, 0, len(jobs))
	for _, j := range jobs {
		step := int64(0)
		if st, err := a.Svc.Get(j.localID); err == nil {
			step = int64(st.Progress.Step)
		}
		out = append(out, ReportedJob{JobID: j.gwID, LocalID: j.localID, Step: step})
	}
	return out
}

// drainParked replays spooled terminal results to a fresh session, one
// Parked frame per job with jittered pacing so a fleet reconnecting in
// unison does not dump every spool into the gateway at the same
// instant. Entries are removed on ParkedAck, not here, so a session
// that dies mid-drain redelivers the remainder next time.
func (a *Agent) drainParked(s *agentSession, stop <-chan struct{}) {
	list := a.park.List()
	for i, p := range list {
		if i > 0 {
			select {
			case <-stop:
				return
			case <-s.gone:
				return
			case <-time.After(a.bo.jitter(5*time.Millisecond, 40*time.Millisecond)):
			}
		}
		if s.send(Parked{JobID: p.JobID, State: p.State, Err: p.Err, ResultJSON: p.Result}) != nil {
			return
		}
	}
	if len(list) > 0 {
		a.Logf("fabric agent %s: drained %d parked result(s)", a.Name, len(list))
	}
}

// handle dispatches one gateway message.
func (s *agentSession) handle(v any) {
	switch msg := v.(type) {
	case Ping:
		s.send(Pong{Nanos: msg.Nanos})
	case Pong:
		// Round trip complete; nothing to record.
	case Assign:
		s.handleAssign(msg)
	case Adopt:
		s.handleAdopt(msg)
	case Cancel:
		s.handleCancel(msg)
	case Release:
		s.handleRelease(msg)
	case ParkedAck:
		s.handleParkedAck(msg)
	default:
		s.agent.Logf("fabric agent %s: unexpected control message %T", s.agent.Name, v)
	}
}

// handleAssign admits one leased job into the local service and spawns
// the watcher. If the gateway re-assigns a job this agent is ALREADY
// running (its reconcile window expired before this shard reconnected,
// and the ring routed the retry back here), the existing local job is
// re-bound to the new lease instead of starting a duplicate run.
func (s *agentSession) handleAssign(msg Assign) {
	a := s.agent
	a.mu.Lock()
	if j := a.inflight[msg.JobID]; j != nil && !j.released {
		if j.lease != 0 {
			delete(a.byLease, j.lease)
		}
		j.lease = msg.Lease
		a.byLease[msg.Lease] = j
		localID := j.localID
		a.mu.Unlock()
		step := int64(0)
		if st, err := a.Svc.Get(localID); err == nil {
			step = int64(st.Progress.Step)
		}
		s.send(Accept{Lease: msg.Lease, JobID: msg.JobID, LocalID: localID, ResumedStep: step})
		return
	}
	a.mu.Unlock()

	var spec service.JobSpec
	if err := json.Unmarshal(msg.SpecJSON, &spec); err != nil {
		s.send(Accept{Lease: msg.Lease, JobID: msg.JobID, Err: fmt.Sprintf("decoding spec: %v", err)})
		return
	}
	var st service.Status
	var err error
	if len(msg.Keyframe) > 0 {
		// A re-routed job with a replicated keyframe: resume from it.
		// SubmitSeeded degrades to a from-scratch run on any problem with
		// the seed, so the assignment never bounces over a stale frame.
		st, err = a.Svc.SubmitSeeded(spec, msg.Keyframe)
	} else {
		st, err = a.Svc.Submit(spec)
	}
	if err != nil {
		s.send(Accept{Lease: msg.Lease, JobID: msg.JobID, Err: err.Error()})
		return
	}
	j := &agentJob{gwID: msg.JobID, localID: st.ID, lease: msg.Lease}
	a.mu.Lock()
	a.inflight[msg.JobID] = j
	a.byLocal[st.ID] = j
	a.byLease[msg.Lease] = j
	a.mu.Unlock()
	s.send(Accept{Lease: msg.Lease, JobID: msg.JobID, LocalID: st.ID,
		ResumedStep: int64(st.ResumedFrom)})
	go a.watch(j)
}

// handleAdopt re-binds a running local job to the fresh lease a
// reconciling gateway granted, then re-sends the latest keyframe so a
// gateway restarted from an older journal regains the newest resume
// point.
func (s *agentSession) handleAdopt(msg Adopt) {
	a := s.agent
	a.mu.Lock()
	j := a.inflight[msg.JobID]
	var kf []byte
	var kfStep int64
	if j != nil {
		if j.lease != 0 {
			delete(a.byLease, j.lease)
		}
		j.lease = msg.Lease
		a.byLease[msg.Lease] = j
		if len(j.kf) > 0 {
			kf = append([]byte(nil), j.kf...)
			kfStep = j.kfStep
		}
	}
	a.mu.Unlock()
	if j == nil {
		// Adopt for a job that finished in the meantime: its result is
		// parked (or already on the wire); the drain settles it.
		return
	}
	a.Logf("fabric agent %s: job %s adopted under lease %d", a.Name, msg.JobID, msg.Lease)
	if kf != nil {
		s.send(Keyframe{Lease: msg.Lease, JobID: msg.JobID, Step: kfStep, Data: kf})
	}
}

// handleCancel cancels the local job behind a lease; the terminal
// Done(canceled) flows back through the watcher.
func (s *agentSession) handleCancel(msg Cancel) {
	a := s.agent
	a.mu.Lock()
	j := a.byLease[msg.Lease]
	a.mu.Unlock()
	if j == nil {
		return
	}
	a.Svc.Cancel(j.localID)
}

// handleRelease drops a job the gateway no longer wants (re-routed
// elsewhere, canceled, or unknown after a journal loss): the local run
// is canceled and its eventual terminal state is discarded rather than
// delivered or parked.
func (s *agentSession) handleRelease(msg Release) {
	a := s.agent
	a.mu.Lock()
	j := a.inflight[msg.JobID]
	if j != nil {
		j.released = true
	}
	a.mu.Unlock()
	if j == nil {
		// Never ran here, or already terminal: drop any parked copy too —
		// the gateway has declared it does not want this result.
		a.park.Remove(msg.JobID)
		return
	}
	a.Logf("fabric agent %s: job %s released by gateway; canceling local run", a.Name, msg.JobID)
	a.Svc.Cancel(j.localID)
}

// handleParkedAck completes one parked-result delivery.
func (s *agentSession) handleParkedAck(msg ParkedAck) {
	if s.agent.park.Remove(msg.JobID) {
		s.agent.Svc.Metrics().ParkedDrained.Add(1)
	}
}

// watch streams one local job's progress to whatever gateway session is
// live, then delivers (or parks) its terminal result. It is spawned
// once per job and survives any number of session turnovers.
func (a *Agent) watch(j *agentJob) {
	ch, unsub, err := a.Svc.Subscribe(j.localID)
	if err == nil {
		for p := range ch {
			st, err := a.Svc.Get(j.localID)
			if err != nil {
				break
			}
			pj, err := json.Marshal(p)
			if err != nil {
				continue
			}
			a.mu.Lock()
			lease, sess := j.lease, a.sess
			a.mu.Unlock()
			if sess == nil || lease == 0 {
				continue // gateway away; progress resumes after adoption
			}
			sess.send(Update{Lease: lease, JobID: j.gwID, State: string(st.State), ProgressJSON: pj})
		}
		unsub()
	}

	st, err := a.Svc.Get(j.localID)
	var state, errMsg string
	var result []byte
	switch {
	case err != nil:
		state, errMsg = string(service.StateFailed), fmt.Sprintf("local job vanished: %v", err)
	case st.State == service.StateDone:
		res, err := a.Svc.Result(j.localID)
		if err != nil {
			state, errMsg = string(service.StateFailed), fmt.Sprintf("fetching local result: %v", err)
			break
		}
		rj, err := json.Marshal(res)
		if err != nil {
			state, errMsg = string(service.StateFailed), fmt.Sprintf("encoding result: %v", err)
			break
		}
		state, result = string(service.StateDone), rj
	case st.State == service.StateCanceled:
		state = string(service.StateCanceled)
	default:
		state, errMsg = string(service.StateFailed), st.Error
	}
	a.deliver(j, state, errMsg, result)
}

// deliver hands a terminal result to the live session, or parks it for
// the next one. The job leaves the in-flight set either way: it is
// finished locally, and redelivery (if needed) flows from the park
// store, not from re-running.
func (a *Agent) deliver(j *agentJob, state, errMsg string, result []byte) {
	a.mu.Lock()
	delete(a.inflight, j.gwID)
	delete(a.byLocal, j.localID)
	if j.lease != 0 {
		delete(a.byLease, j.lease)
	}
	released := j.released
	lease, sess := j.lease, a.sess
	a.mu.Unlock()
	if released {
		return
	}
	if sess != nil && lease != 0 {
		if sess.send(Done{Lease: lease, JobID: j.gwID, State: state, Err: errMsg, ResultJSON: result}) == nil {
			return
		}
	}
	p := &parkedResult{JobID: j.gwID, State: state, Err: errMsg, Result: result}
	if err := a.park.Put(p); err != nil {
		a.Logf("fabric agent %s: parking result for job %s: %v", a.Name, j.gwID, err)
	}
	a.Svc.Metrics().ResultsParked.Add(1)
	a.Logf("fabric agent %s: gateway unreachable; parked %s result for job %s", a.Name, state, j.gwID)
}

// send writes one control frame; frames are serialized so concurrent
// watchers never interleave bytes.
func (s *agentSession) send(payload any) error {
	buf, err := encodeControl(payload)
	if err != nil {
		return err
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if s.closed {
		return fmt.Errorf("session closed")
	}
	s.conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
	_, err = s.conn.Write(buf)
	return err
}

// close tears the session down. Local jobs KEEP RUNNING: the gateway
// (or its restarted successor) adopts them on the next session, and
// anything that finishes in between parks. Only an agent stop cancels
// local work.
func (s *agentSession) close() {
	s.writeMu.Lock()
	if s.closed {
		s.writeMu.Unlock()
		return
	}
	s.closed = true
	s.writeMu.Unlock()
	close(s.gone)
	s.conn.Close()
	a := s.agent
	a.mu.Lock()
	if a.sess == s {
		a.sess = nil
	}
	// Leases die with the session; adoption re-issues them.
	for _, j := range a.inflight {
		if j.lease != 0 {
			delete(a.byLease, j.lease)
			j.lease = 0
		}
	}
	a.mu.Unlock()
}
