package fabric

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/transport"
)

// haShard is one shard for the crash-restart tests: a spooled service
// (frames + parked-result directory) plus its agent, started outside
// the fleet helper so the gateway can die and be reborn around it.
type haShard struct {
	svc  *service.Service
	stop chan struct{}
}

func startHAShard(t *testing.T, name, gwAddr string, chaos *transport.FaultPlan) *haShard {
	t.Helper()
	spool := t.TempDir()
	svc, err := service.New(service.Options{
		Workers: 2, QueueDepth: 16, Logf: t.Logf,
		SpoolDir: spool, FramesKeyEvery: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	h := &haShard{svc: svc, stop: make(chan struct{})}
	agent := &Agent{
		Svc: svc, Gateway: gwAddr, Name: name, Capacity: 2,
		ParkDir: service.ParkedDir(spool), Chaos: chaos, Logf: t.Logf,
	}
	go agent.Run(h.stop)
	t.Cleanup(func() {
		select {
		case <-h.stop:
		default:
			close(h.stop)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		svc.Shutdown(ctx)
	})
	return h
}

// gwStep decodes the completed-step counter out of a gateway status's
// raw progress payload (0 until the shard's first update arrives).
func gwStep(st GwStatus) int {
	var p struct {
		Step int `json:"step"`
	}
	json.Unmarshal(st.Progress, &p)
	return p.Step
}

// runDirect runs one spec on a standalone service and returns its
// marshaled result — the reference for bit-identical physics checks.
func runDirect(t *testing.T, spec service.JobSpec) []byte {
	t.Helper()
	svc, err := service.New(service.Options{Workers: 1, QueueDepth: 4, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	defer shutdownSvc(t, svc)
	st, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "direct reference job terminal", func() bool {
		s, _ := svc.Get(st.ID)
		return s.State.Terminal()
	})
	res, err := svc.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	out, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// The tentpole drill, in-process: kill the gateway mid-run and restart
// it on the same journal. Nothing may be lost — the in-flight job is
// adopted where it was running (step counter monotonic across the
// crash), the job that finished during the outage drains from the park
// spool, the pre-crash result survives replay, and every completed
// job's physics is bit-identical to an undisturbed run.
func TestGatewayCrashRestartAdoptsAndDrainsParked(t *testing.T) {
	journal := t.TempDir() + "/gw.journal"
	opt := Options{
		JournalPath:     journal,
		LeaseTTL:        5 * time.Second,
		ReconcileWindow: 20 * time.Second,
		Logf:            t.Logf,
	}
	gw1, err := NewGateway(opt)
	if err != nil {
		t.Fatal(err)
	}
	addr := gw1.ControlAddr()

	s0 := startHAShard(t, "ha0", addr, nil)
	s1 := startHAShard(t, "ha1", addr, nil)
	waitUntil(t, "both shards registered", func() bool { return len(gw1.Shards()) == 2 })

	// The slow anchor below owns the adoption guarantee, so this job
	// only has to be mid-run at the crash; whichever way the scheduler
	// lands it — adopted and finished after restart, or finished during
	// the outage and drained from the park spool — it must end done
	// with undisturbed physics.
	longSpec := service.JobSpec{
		Dist: "plummer", N: 160, Processors: 2, Scheme: "spsa",
		Machine: "ideal", Steps: 600, Eps: 0.05, DT: 0.01, Seed: 13,
	}
	parkSpec := longSpec
	parkSpec.Steps, parkSpec.Seed = 300, 21
	quick := quickSpec(3, 7)

	// A job that completes before the crash: its result must survive
	// replay without re-execution.
	preST, err := gw1.Submit("tenant-a", quick)
	if err != nil {
		t.Fatal(err)
	}
	if st := awaitTerminal(t, gw1, preST.ID); st.State != service.StateDone {
		t.Fatalf("pre-crash job finished %s (%s)", st.State, st.Error)
	}

	// The job that spans the crash.
	longST, err := gw1.Submit("tenant-a", longSpec)
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "long job past two keyframes", func() bool {
		st, err := gw1.Get(longST.ID)
		if err != nil || st.State.Terminal() {
			t.Fatalf("long job not running: %+v err=%v", st, err)
		}
		return gwStep(st) >= 16
	})

	// The adoption anchor: a job that cannot plausibly finish during
	// the outage, so the restarted gateway always has a live lease to
	// adopt no matter how the scheduler paces the others. Canceled at
	// the end.
	slowST, err := gw1.Submit("tenant-a", slowSpec(99))
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "slow job running on its shard", func() bool {
		st, _ := gw1.Get(slowST.ID)
		return gwStep(st) >= 1
	})

	// The job that will finish while the gateway is dead.
	parkST, err := gw1.Submit("tenant-b", parkSpec)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for progress, not just a lease: Shard is set when the Assign
	// is dispatched, and a crash could land before the agent ever
	// receives it — a step proves the shard is actually executing.
	waitUntil(t, "park job running on its shard", func() bool {
		st, _ := gw1.Get(parkST.ID)
		return gwStep(st) >= 1
	})

	stLong, err := gw1.Get(longST.ID)
	if err != nil {
		t.Fatal(err)
	}
	stepBefore := gwStep(stLong)

	// Crash. (In-process Close is the SIGKILL stand-in — the CI gwha job
	// drives the real signal; what matters here is that the journal is
	// all the next gateway gets.)
	if err := gw1.Close(); err != nil {
		t.Fatalf("closing first gateway: %v", err)
	}

	// With the gateway dead, the park job finishes and must spool.
	waitUntil(t, "outage result parked", func() bool {
		return s0.svc.Metrics().ResultsParked.Load()+s1.svc.Metrics().ResultsParked.Load() >= 1
	})

	// Restart on the same journal and the same control address.
	opt.ControlAddr = addr
	gw2, err := NewGateway(opt)
	if err != nil {
		t.Fatalf("restarting gateway on journal: %v", err)
	}
	defer gw2.Close()

	// Replayed pre-crash result is immediately servable.
	if st, err := gw2.Get(preST.ID); err != nil || st.State != service.StateDone {
		t.Fatalf("pre-crash job after replay: %+v err=%v", st, err)
	}
	if _, err := gw2.Result(preST.ID); err != nil {
		t.Fatalf("pre-crash result after replay: %v", err)
	}

	waitUntil(t, "shards re-registered", func() bool { return len(gw2.Shards()) == 2 })
	waitUntil(t, "slow job adopted", func() bool { return gw2.Metrics().JobsAdopted.Load() >= 1 })
	waitUntil(t, "parked result drained", func() bool {
		st, _ := gw2.Get(parkST.ID)
		return st.State.Terminal()
	})
	if st, _ := gw2.Get(parkST.ID); st.State != service.StateDone {
		t.Fatalf("park job finished %s (%s), want done", st.State, st.Error)
	}
	if got := gw2.Metrics().ParkedResults.Load(); got < 1 {
		t.Fatalf("nbodygw_parked_results_total = %d, want >= 1", got)
	}
	// The ack that moves the drain counter arrives a beat after the
	// gateway finishes the job, so this is a wait, not an assertion.
	waitUntil(t, "drain acknowledged on the shard", func() bool {
		return s0.svc.Metrics().ParkedDrained.Load()+s1.svc.Metrics().ParkedDrained.Load() >= 1
	})

	// Adoption, not re-routing: the restarted gateway must never have
	// fault-classified the journaled leases.
	if rerouted := gw2.Metrics().Rerouted.Total(); rerouted != 0 {
		t.Fatalf("restarted gateway re-routed %d job(s); adoption should have re-bound them in place", rerouted)
	}

	// An adopted job's step counter is monotonic across the crash: it
	// kept running, it did not restart. The long job is the observable
	// one (the slow anchor may not have reported a step yet); skip the
	// comparison if it already finished — a job that completed during
	// the outage drained through the park path instead of adoption.
	waitUntil(t, "crash-spanning job reporting progress", func() bool {
		st, _ := gw2.Get(longST.ID)
		return st.State.Terminal() || gwStep(st) > 0
	})
	if st, _ := gw2.Get(longST.ID); !st.State.Terminal() && gwStep(st) < stepBefore {
		t.Fatalf("adopted job stepped backwards: %d before crash, %d after", stepBefore, gwStep(st))
	}

	fin := awaitTerminal(t, gw2, longST.ID)
	if fin.State != service.StateDone {
		t.Fatalf("long job finished %s (%s), want done", fin.State, fin.Error)
	}

	// The anchor survived adoption as a running job; release it.
	if st, _ := gw2.Get(slowST.ID); st.State != service.StateRunning {
		t.Fatalf("slow anchor is %s (%s), want running after adoption", st.State, st.Error)
	}
	if _, err := gw2.Cancel(slowST.ID); err != nil {
		t.Fatalf("cancel slow anchor: %v", err)
	}

	// Reconciliation settled and recorded its duration.
	if sec := gw2.Metrics().ReconcileSeconds(); sec <= 0 {
		t.Fatalf("nbodygw_reconcile_seconds = %v, want > 0 after the window settles", sec)
	}

	// GOLDEN: every result bit-identical to an undisturbed run.
	for _, check := range []struct {
		name string
		id   string
		spec service.JobSpec
	}{
		{"adopted", longST.ID, longSpec},
		{"parked", parkST.ID, parkSpec},
		{"replayed", preST.ID, quick},
	} {
		got, err := gw2.Result(check.id)
		if err != nil {
			t.Fatalf("%s result: %v", check.name, err)
		}
		if !samePhysics(t, runDirect(t, check.spec), got) {
			t.Fatalf("%s job's physics differs from an undisturbed run", check.name)
		}
	}
}

// Satellite 2: a freshly restarted gateway must hold journaled leases
// out of dispatch until the reconcile window expires — and only then
// re-queue them, seeded from the journaled keyframe.
func TestReconcileWindowHoldsJournaledLeases(t *testing.T) {
	journal := t.TempDir() + "/gw.journal"

	// Phase 1: run a framed job long enough to journal a lease and at
	// least one keyframe, then kill everything.
	gw1, err := NewGateway(Options{JournalPath: journal, LeaseTTL: 5 * time.Second, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	sh := startHAShard(t, "w0", gw1.ControlAddr(), nil)
	waitUntil(t, "shard registered", func() bool { return len(gw1.Shards()) == 1 })
	st, err := gw1.Submit("tenant-a", slowSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "keyframe journaled", func() bool {
		return gw1.Metrics().KeyframesReplicated.Load() >= 1
	})
	if err := gw1.Close(); err != nil {
		t.Fatal(err)
	}
	close(sh.stop) // the old shard never comes back

	// Phase 2: restart with a short window and NO shards. The journaled
	// lease must sit in the reconciliation set — running, unrouted,
	// unclassified — until the window expires.
	gw2, err := NewGateway(Options{
		JournalPath:     journal,
		LeaseTTL:        5 * time.Second,
		ReconcileWindow: 700 * time.Millisecond,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gw2.Close()
	got, err := gw2.Get(st.ID)
	if err != nil {
		t.Fatalf("journaled job missing after replay: %v", err)
	}
	if got.State != service.StateRunning {
		t.Fatalf("journaled lease replayed as %s, want running (held for reconciliation)", got.State)
	}
	if n := gw2.Metrics().JobsPending.Load(); n != 0 {
		t.Fatalf("journaled lease entered the dispatch queue immediately (pending=%d)", n)
	}
	if n := gw2.Metrics().Rerouted.Total(); n != 0 {
		t.Fatalf("journaled lease fault-classified before the window expired (rerouted=%d)", n)
	}

	waitUntil(t, "reconcile window expiry re-queues the job", func() bool {
		s, _ := gw2.Get(st.ID)
		return s.State == service.StateQueued
	})
	if n := gw2.Metrics().Rerouted.Get("reconcile"); n != 1 {
		t.Fatalf("nbodygw_jobs_rerouted_total{fault=\"reconcile\"} = %d, want 1", n)
	}

	// Phase 3: a fresh shard joins; the re-queued job must dispatch
	// seeded from the journaled keyframe, not restart from step zero.
	startHAShard(t, "w1", gw2.ControlAddr(), nil)
	waitUntil(t, "re-queued job resumed from journaled keyframe", func() bool {
		return gw2.Metrics().JobsResumedFromFrame.Load() >= 1
	})
	if _, err := gw2.Cancel(st.ID); err != nil {
		t.Fatalf("cancel resumed job: %v", err)
	}
}

// Chaos drill: with delay, duplication, and corruption injected on BOTH
// sides of the control plane, every submitted job must still complete
// with physics identical to a clean run. (Drops are excluded by design:
// a dropped Assign has no retransmit timer at this layer; drop coverage
// lives in the transport's own FaultLink suite.)
func TestFleetChaosControlPlane(t *testing.T) {
	// Corruption tears down whole sessions (the decoder cannot trust
	// anything after a bad frame), so its probability is kept low enough
	// that sessions live long enough to make progress, and the re-route
	// budget is raised: the drill pins liveness under faults, not a
	// retry ceiling.
	gwChaos := &transport.FaultPlan{Seed: 7, DelayProb: 0.2, Delay: 2 * time.Millisecond, DupProb: 0.15, CorruptProb: 0.01}
	agChaos := &transport.FaultPlan{Seed: 11, DelayProb: 0.2, Delay: 2 * time.Millisecond, DupProb: 0.15, CorruptProb: 0.01}
	gw, err := NewGateway(Options{
		LeaseTTL:     2 * time.Second,
		RouteRetries: 100,
		Chaos:        gwChaos,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	startHAShard(t, "c0", gw.ControlAddr(), agChaos)
	startHAShard(t, "c1", gw.ControlAddr(), agChaos)
	waitUntil(t, "chaos shards registered", func() bool { return len(gw.Shards()) == 2 })

	ids := make([]string, 0, 6)
	specs := make([]service.JobSpec, 0, 6)
	for i := 0; i < 6; i++ {
		spec := quickSpec(3, int64(100+i))
		st, err := gw.Submit("tenant-a", spec)
		if err != nil {
			t.Fatalf("submit %d under chaos: %v", i, err)
		}
		ids = append(ids, st.ID)
		specs = append(specs, spec)
	}
	for i, id := range ids {
		st := awaitTerminal(t, gw, id)
		if st.State != service.StateDone {
			t.Fatalf("chaos job %d finished %s (%s), want done", i, st.State, st.Error)
		}
	}
	// Physics spot-check against a clean run.
	got, err := gw.Result(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if !samePhysics(t, runDirect(t, specs[0]), got) {
		t.Fatal("chaos-routed result differs from a clean run")
	}
}

// The new crash-safety rows must appear in both expositions.
func TestCrashSafetyMetricsExposed(t *testing.T) {
	gm := NewMetrics(time.Unix(0, 0))
	gm.JobsAdopted.Add(2)
	gm.JournalBytes.Store(123)
	gm.SetReconcileSeconds(1.5)
	text := gm.Render(time.Unix(10, 0))
	for _, row := range []string{
		"nbodygw_jobs_adopted_total 2",
		"nbodygw_parked_results_total 0",
		"nbodygw_journal_bytes 123",
		"nbodygw_reconcile_seconds 1.500000",
	} {
		if !strings.Contains(text, row) {
			t.Errorf("gateway exposition missing %q", row)
		}
	}

	svc, err := service.New(service.Options{Workers: 1, QueueDepth: 2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	svc.Metrics().ResultsParked.Add(3)
	svc.Metrics().ParkedDrained.Add(2)
	stext := svc.Metrics().Render()
	for _, row := range []string{
		"nbodyd_results_parked_total 3",
		"nbodyd_parked_drained_total 2",
	} {
		if !strings.Contains(stext, row) {
			t.Errorf("service exposition missing %q", row)
		}
	}
}
