package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
)

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// quickSpec is a job that completes in well under a second.
func quickSpec(steps int, seed int64) service.JobSpec {
	return service.JobSpec{
		Dist: "uniform", N: 96, Processors: 2, Scheme: "spsa",
		Machine: "ideal", Steps: steps, Eps: 0.05, Seed: seed,
	}
}

// slowSpec is a job that takes long enough to still be running when the
// test acts on it.
func slowSpec(seed int64) service.JobSpec {
	s := quickSpec(1<<20, seed)
	s.N = 256
	return s
}

// fleet is an in-process gateway plus N shard services with agents.
type fleet struct {
	gw    *Gateway
	svcs  []*service.Service
	stops []chan struct{}
}

// startFleet wires up a gateway and n shard agents, waiting for every
// registration.
func startFleet(t *testing.T, n int, opt Options, capacity int) *fleet {
	t.Helper()
	return startFleetWith(t, n, opt, capacity, func(int) service.Options {
		return service.Options{Workers: 2, QueueDepth: 16, Logf: t.Logf}
	})
}

// startFleetWith is startFleet with per-shard service options (e.g. a
// spool + frame cadence for keyframe-handoff tests).
func startFleetWith(t *testing.T, n int, opt Options, capacity int, svcOpt func(i int) service.Options) *fleet {
	t.Helper()
	opt.ControlAddr = "127.0.0.1:0"
	if opt.Logf == nil {
		opt.Logf = t.Logf
	}
	gw, err := NewGateway(opt)
	if err != nil {
		t.Fatal(err)
	}
	f := &fleet{gw: gw}
	t.Cleanup(func() {
		f.stopAgents()
		gw.Close()
	})
	for i := 0; i < n; i++ {
		svc, err := service.New(svcOpt(i))
		if err != nil {
			t.Fatal(err)
		}
		svc.Start()
		f.svcs = append(f.svcs, svc)
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			svc.Shutdown(ctx)
		})
		// Each shard serves its own HTTP API like a real nbodyd would;
		// the advertised address is what the gateway's frames proxy
		// dials.
		shardSrv := httptest.NewServer(svc.Handler())
		t.Cleanup(shardSrv.Close)
		agent := &Agent{
			Svc:      svc,
			Gateway:  gw.ControlAddr(),
			Name:     fmt.Sprintf("s%d", i),
			HTTPAddr: strings.TrimPrefix(shardSrv.URL, "http://"),
			Capacity: capacity,
			Logf:     t.Logf,
		}
		stop := make(chan struct{})
		f.stops = append(f.stops, stop)
		go agent.Run(stop)
	}
	waitUntil(t, "all shards registered", func() bool { return len(gw.Shards()) == n })
	return f
}

func (f *fleet) stopAgents() {
	for _, stop := range f.stops {
		select {
		case <-stop:
		default:
			close(stop)
		}
	}
}

// killShard stops one shard's agent (its leases re-route) and waits for
// the gateway to notice.
func (f *fleet) killShard(t *testing.T, i int) {
	t.Helper()
	close(f.stops[i])
	waitUntil(t, "gateway dropped the killed shard", func() bool {
		for _, s := range f.gw.Shards() {
			if s.Name == fmt.Sprintf("s%d", i) {
				return false
			}
		}
		return true
	})
}

func awaitTerminal(t *testing.T, gw *Gateway, id string) GwStatus {
	t.Helper()
	var st GwStatus
	waitUntil(t, "job "+id+" terminal", func() bool {
		var err error
		st, err = gw.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		return st.State.Terminal()
	})
	return st
}

// The golden check: a job routed through gateway → lease → shard must
// return the byte-identical result a direct service run produces.
func TestFleetGoldenMatchesDirect(t *testing.T) {
	f := startFleet(t, 3, Options{LeaseTTL: 5 * time.Second}, 2)
	spec := quickSpec(3, 7)

	direct, err := service.New(service.Options{Workers: 1, QueueDepth: 4, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	direct.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		direct.Shutdown(ctx)
	}()
	dst, err := direct.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "direct job terminal", func() bool {
		st, _ := direct.Get(dst.ID)
		return st.State.Terminal()
	})
	dres, err := direct.Result(dst.ID)
	if err != nil {
		t.Fatal(err)
	}
	directJSON, err := json.Marshal(dres)
	if err != nil {
		t.Fatal(err)
	}

	gst, err := f.gw.Submit("tenant-a", spec)
	if err != nil {
		t.Fatal(err)
	}
	fin := awaitTerminal(t, f.gw, gst.ID)
	if fin.State != service.StateDone {
		t.Fatalf("gateway job finished %s (%s), want done", fin.State, fin.Error)
	}
	gatewayJSON, err := f.gw.Result(gst.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !samePhysics(t, directJSON, gatewayJSON) {
		t.Fatalf("gateway-routed result differs from direct run:\ndirect:  %.120s\ngateway: %.120s",
			directJSON, gatewayJSON)
	}
}

// samePhysics compares two marshaled results on the deterministic
// fields only. MachineTime is zeroed before comparing: as documented in
// internal/parbh's host-determinism notes, the function-shipping
// protocol polls for remote work between particles, so per-processor
// waiting time — and hence the accumulated simulated completion clock —
// carries bounded host-scheduling jitter even though the flop-charged
// physics underneath is bit-exact.
func samePhysics(t *testing.T, a, b []byte) bool {
	t.Helper()
	var ra, rb service.Result
	if err := json.Unmarshal(a, &ra); err != nil {
		t.Fatalf("unmarshal result A: %v", err)
	}
	if err := json.Unmarshal(b, &rb); err != nil {
		t.Fatalf("unmarshal result B: %v", err)
	}
	ra.MachineTime, rb.MachineTime = 0, 0
	ca, errA := json.Marshal(&ra)
	cb, errB := json.Marshal(&rb)
	if errA != nil || errB != nil {
		t.Fatalf("re-marshal results: %v / %v", errA, errB)
	}
	return bytes.Equal(ca, cb)
}

// A second submission of the same canonical spec must be served from the
// result cache: identical bytes, no second simulation anywhere.
func TestFleetCacheHitSkipsSimulation(t *testing.T) {
	f := startFleet(t, 2, Options{LeaseTTL: 5 * time.Second}, 2)
	spec := quickSpec(3, 11)

	first, err := f.gw.Submit("tenant-a", spec)
	if err != nil {
		t.Fatal(err)
	}
	awaitTerminal(t, f.gw, first.ID)
	res1, err := f.gw.Result(first.ID)
	if err != nil {
		t.Fatal(err)
	}
	routedBefore := f.gw.Metrics().Routed.Total()

	// Different JSON spelling, same canonical spec: explicit defaults
	// and different host-only fields must still hit.
	spec2 := spec
	spec2.Name = "same physics, different label"
	spec2.Integrator = "leapfrog"
	spec2.Machine = "IDEAL"
	second, err := f.gw.Submit("tenant-b", spec2)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached || second.State != service.StateDone {
		t.Fatalf("second submission not served from cache: %+v", second)
	}
	res2, err := f.gw.Result(second.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res1, res2) {
		t.Fatal("cached result differs from the original")
	}
	if got := f.gw.Metrics().Routed.Total(); got != routedBefore {
		t.Fatalf("cache hit leased work to a shard (routed %d → %d)", routedBefore, got)
	}
	if hits := f.gw.Metrics().CacheHits.Load(); hits != 1 {
		t.Fatalf("cache hits = %d, want 1", hits)
	}
	var shardJobs int64
	for _, svc := range f.svcs {
		shardJobs += svc.Metrics().JobsSubmitted.Load()
	}
	if shardJobs != 1 {
		t.Fatalf("shards ran %d jobs, want exactly 1 (the cache must absorb the repeat)", shardJobs)
	}
}

// Identical submissions in flight coalesce onto one lease instead of
// simulating twice.
func TestFleetCoalescesInFlight(t *testing.T) {
	f := startFleet(t, 1, Options{LeaseTTL: 5 * time.Second}, 1)

	// Occupy the only lease slot so the next jobs stay pending.
	blocker, err := f.gw.Submit("tenant-a", slowSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "blocker leased", func() bool {
		shards := f.gw.Shards()
		return len(shards) == 1 && shards[0].Leases == 1
	})

	spec := quickSpec(2, 21)
	leader, err := f.gw.Submit("tenant-a", spec)
	if err != nil {
		t.Fatal(err)
	}
	follower, err := f.gw.Submit("tenant-b", spec)
	if err != nil {
		t.Fatal(err)
	}
	if !follower.Coalesced {
		t.Fatalf("identical pending submission did not coalesce: %+v", follower)
	}
	if f.gw.Metrics().Coalesced.Load() != 1 {
		t.Fatal("coalesced counter not incremented")
	}

	// Free the slot; leader runs; both jobs finish with the same bytes.
	if _, err := f.gw.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}
	lfin := awaitTerminal(t, f.gw, leader.ID)
	ffin := awaitTerminal(t, f.gw, follower.ID)
	if lfin.State != service.StateDone || ffin.State != service.StateDone {
		t.Fatalf("leader %s, follower %s; want both done", lfin.State, ffin.State)
	}
	lres, _ := f.gw.Result(leader.ID)
	fres, _ := f.gw.Result(follower.ID)
	if !bytes.Equal(lres, fres) {
		t.Fatal("coalesced follower's result differs from the leader's")
	}
}

// Killing a shard mid-run must lose nothing: its leased jobs re-route to
// the survivors and every accepted job still completes.
func TestFleetShardDeathReroutesWithoutLoss(t *testing.T) {
	f := startFleet(t, 3, Options{LeaseTTL: 5 * time.Second}, 1)

	// Enough moderately sized jobs that every shard holds a lease.
	var ids []string
	for i := 0; i < 9; i++ {
		spec := quickSpec(40, int64(100+i))
		spec.N = 128
		st, err := f.gw.Submit("tenant-a", spec)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	waitUntil(t, "every shard holds a lease", func() bool {
		for _, s := range f.gw.Shards() {
			if s.Leases == 0 {
				return false
			}
		}
		return len(f.gw.Shards()) == 3
	})

	f.killShard(t, 1)

	lost := 0
	for _, id := range ids {
		st := awaitTerminal(t, f.gw, id)
		if st.State != service.StateDone {
			lost++
			t.Errorf("job %s finished %s (%s); want done", id, st.State, st.Error)
		}
	}
	if lost != 0 {
		t.Fatalf("%d accepted job(s) lost after shard death", lost)
	}
	if f.gw.Metrics().Rerouted.Total() == 0 {
		t.Fatal("no re-routes recorded though a leased shard died")
	}
	if len(f.gw.Shards()) != 2 {
		t.Fatalf("fleet view shows %d shards, want 2", len(f.gw.Shards()))
	}
}

// A silent shard — connected but not heartbeating — must be expired by
// the lease watchdog with a heartbeat fault.
func TestFleetHeartbeatExpiry(t *testing.T) {
	opt := Options{LeaseTTL: 300 * time.Millisecond, Logf: t.Logf, ControlAddr: "127.0.0.1:0"}
	gw, err := NewGateway(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	conn, err := dialControl(gw.ControlAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hello, err := encodeControl(Hello{Name: "mute", Capacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(hello); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "mute shard registered", func() bool { return len(gw.Shards()) == 1 })
	// Say nothing. The watchdog must declare the shard dead.
	waitUntil(t, "mute shard expired", func() bool { return len(gw.Shards()) == 0 })
}

// Tenant quotas: an exhausted bucket rejects with a positive Retry-After
// while other tenants keep flowing.
func TestFleetQuotaRejects(t *testing.T) {
	f := startFleet(t, 1, Options{
		LeaseTTL:    5 * time.Second,
		TenantRate:  0.001, // effectively no refill during the test
		TenantBurst: 2,
	}, 2)

	spec := slowSpec(31)
	for i := 0; i < 2; i++ {
		s := spec
		s.Seed = int64(31 + i)
		if _, err := f.gw.Submit("greedy", s); err != nil {
			t.Fatalf("submit %d within burst: %v", i, err)
		}
	}
	s := spec
	s.Seed = 99
	_, err := f.gw.Submit("greedy", s)
	rej, ok := err.(*RejectedError)
	if !ok {
		t.Fatalf("third submit err = %v, want *RejectedError", err)
	}
	if rej.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v, want positive", rej.RetryAfter)
	}
	if f.gw.Metrics().Rejected.Get("greedy") != 1 {
		t.Fatal("tenant rejection not counted")
	}
	// Another tenant still gets in.
	s.Seed = 100
	if _, err := f.gw.Submit("patient", s); err != nil {
		t.Fatalf("other tenant blocked by greedy tenant's quota: %v", err)
	}
}

// tcp-transport jobs need a shard-local cluster the fabric does not
// orchestrate; the gateway must refuse them up front.
func TestGatewayRejectsClusterTransport(t *testing.T) {
	f := startFleet(t, 1, Options{LeaseTTL: 5 * time.Second}, 1)
	spec := quickSpec(2, 5)
	spec.Transport = "tcp"
	if _, err := f.gw.Submit("t", spec); err == nil || !strings.Contains(err.Error(), "transport") {
		t.Fatalf("Submit(tcp transport) err = %v, want transport rejection", err)
	}
}

// The HTTP surface: submit → 202, quota → 429 + Retry-After, oversized
// body → 413, /metrics speaks the shared exposition content type.
func TestGatewayHTTP(t *testing.T) {
	f := startFleet(t, 1, Options{
		LeaseTTL:    5 * time.Second,
		TenantRate:  0.001,
		TenantBurst: 1,
	}, 2)
	srv := httptest.NewServer(f.gw.Handler())
	defer srv.Close()

	post := func(tenant string, body []byte) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/api/v1/jobs", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Tenant", tenant)
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	body, _ := json.Marshal(quickSpec(2, 41))
	resp := post("web", body)
	var st GwStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	awaitTerminal(t, f.gw, st.ID)

	// Burst of 1 is spent: the next submission is a 429 with Retry-After.
	resp = post("web", body)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 response missing Retry-After header")
	}

	// Oversized specs bounce with 413 before touching admission.
	huge := append([]byte(`{"name":"`), bytes.Repeat([]byte("x"), maxSubmitBytes+1)...)
	huge = append(huge, []byte(`"}`)...)
	resp = post("other", huge)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized submit status = %d, want 413", resp.StatusCode)
	}

	// /metrics speaks the same exposition content type the shards use.
	mresp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); ct != service.ExpositionContentType {
		t.Fatalf("metrics content type = %q, want %q", ct, service.ExpositionContentType)
	}
	text, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		"nbodygw_jobs_routed_total{shard=\"s0\"}",
		"nbodygw_cache_hits_total",
		"nbodygw_tenant_rejected_total{tenant=\"web\"}",
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("gateway /metrics missing %q", want)
		}
	}

	// The fleet view lists the registered shard.
	sresp, err := srv.Client().Get(srv.URL + "/api/v1/shards")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var shards []ShardStatus
	if err := json.NewDecoder(sresp.Body).Decode(&shards); err != nil {
		t.Fatal(err)
	}
	if len(shards) != 1 || shards[0].Name != "s0" {
		t.Fatalf("fleet view = %+v, want one shard s0", shards)
	}
}

// dialControl opens a raw control connection (test helper for the
// watchdog test).
func dialControl(addr string) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, 5*time.Second)
}
