package fabric

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/service"
)

// shutdownSvc drains a standalone service with a bounded deadline.
func shutdownSvc(t *testing.T, svc *service.Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	svc.Shutdown(ctx)
}

// Killing the shard that holds a framed job mid-run must not restart it
// from step zero: the dead shard has been replicating frame-store
// keyframes to the gateway, so the replacement shard resumes from the
// last replicated keyframe, the gateway status reports the resumed
// step, and the final physics is bit-identical to an undisturbed run.
func TestFleetHandoffResumesFromKeyframe(t *testing.T) {
	f := startFleetWith(t, 2, Options{LeaseTTL: 5 * time.Second}, 1, func(int) service.Options {
		return service.Options{
			Workers: 1, QueueDepth: 16, Logf: t.Logf,
			SpoolDir: t.TempDir(), FramesKeyEvery: 8,
		}
	})

	spec := service.JobSpec{
		Dist: "plummer", N: 160, Processors: 2, Scheme: "spsa",
		Machine: "ideal", Steps: 600, Eps: 0.05, DT: 0.01, Seed: 13,
	}

	// Reference: the same spec run undisturbed on a standalone service.
	direct, err := service.New(service.Options{Workers: 1, QueueDepth: 4, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	direct.Start()
	defer shutdownSvc(t, direct)
	dst, err := direct.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "reference job done", func() bool {
		s, _ := direct.Get(dst.ID)
		return s.State.Terminal()
	})
	dres, err := direct.Result(dst.ID)
	if err != nil {
		t.Fatal(err)
	}
	refJSON, err := json.Marshal(dres)
	if err != nil {
		t.Fatal(err)
	}

	gst, err := f.gw.Submit("tenant-a", spec)
	if err != nil {
		t.Fatal(err)
	}

	// Let the run get past at least two replicated keyframes — the
	// latest then sits at step >= 8, so a resume from it cannot be a
	// from-scratch restart.
	var victim string
	waitUntil(t, "two keyframes replicated", func() bool {
		st, err := f.gw.Get(gst.ID)
		if err != nil || st.State.Terminal() {
			t.Fatalf("job not running while awaiting keyframes: %+v err=%v", st, err)
		}
		victim = st.Shard
		return victim != "" && f.gw.Metrics().KeyframesReplicated.Load() >= 2
	})

	for i := range f.stops {
		if victim == fmt.Sprintf("s%d", i) {
			f.killShard(t, i)
		}
	}

	fin := awaitTerminal(t, f.gw, gst.ID)
	if fin.State != service.StateDone {
		t.Fatalf("handed-off job finished %s (%s), want done", fin.State, fin.Error)
	}
	if fin.Retries < 1 {
		t.Fatalf("job retries = %d, want >= 1 after shard death", fin.Retries)
	}
	if fin.ResumedStep < 8 {
		t.Fatalf("resumed_step = %d, want >= 8 (replacement shard should resume from a replicated keyframe)", fin.ResumedStep)
	}
	if fin.Shard == victim {
		t.Fatalf("job still reports the dead shard %s", victim)
	}
	if got := f.gw.Metrics().JobsResumedFromFrame.Load(); got < 1 {
		t.Fatalf("nbodygw_jobs_resumed_from_frame_total = %d, want >= 1", got)
	}

	gres, err := f.gw.Result(gst.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !samePhysics(t, refJSON, gres) {
		t.Fatalf("handed-off result differs from undisturbed run:\nref:     %.120s\nhandoff: %.120s", refJSON, gres)
	}
}

// A shard handed an Assign keyframe it cannot use (corrupt bytes) must
// degrade to a from-scratch run rather than refuse the lease: the job
// still completes, with resumed_step = 0.
func TestFleetHandoffDegradesOnBadKeyframe(t *testing.T) {
	f := startFleetWith(t, 1, Options{LeaseTTL: 5 * time.Second}, 1, func(int) service.Options {
		return service.Options{
			Workers: 1, QueueDepth: 16, Logf: t.Logf,
			SpoolDir: t.TempDir(), FramesKeyEvery: 8,
		}
	})

	// A routed job on a frames-enabled shard completes normally and
	// reports no resume: it was never re-routed.
	spec := quickSpec(30, 17)
	gst, err := f.gw.Submit("tenant-a", spec)
	if err != nil {
		t.Fatal(err)
	}
	fin := awaitTerminal(t, f.gw, gst.ID)
	if fin.State != service.StateDone || fin.ResumedStep != 0 {
		t.Fatalf("undisturbed routed job: state %s resumed_step %d, want done/0", fin.State, fin.ResumedStep)
	}

	// The degrade path the agent relies on: a seeded submit with corrupt
	// bytes must start from scratch rather than refuse the job.
	st, err := f.svcs[0].SubmitSeeded(spec, []byte("not a frame record"))
	if err != nil {
		t.Fatalf("SubmitSeeded with corrupt seed refused: %v", err)
	}
	waitUntil(t, "degraded job done", func() bool {
		s, _ := f.svcs[0].Get(st.ID)
		return s.State.Terminal()
	})
	got, err := f.svcs[0].Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != service.StateDone {
		t.Fatalf("degraded job finished %s (%s), want done", got.State, got.Error)
	}
	if got.ResumedFrom != 0 {
		t.Fatalf("corrupt seed reported resumed_from = %d, want 0", got.ResumedFrom)
	}
}

// The gateway's frames action proxies the replay stream from the shard
// that ran the job — including after completion, when the lease is gone
// but the shard's frame chain survives its spool cleanup.
func TestGatewayFramesProxy(t *testing.T) {
	f := startFleetWith(t, 1, Options{LeaseTTL: 5 * time.Second}, 1, func(int) service.Options {
		return service.Options{
			Workers: 1, QueueDepth: 16, Logf: t.Logf,
			SpoolDir: t.TempDir(), FramesKeyEvery: 4,
		}
	})
	srv := httptest.NewServer(f.gw.Handler())
	defer srv.Close()

	spec := quickSpec(20, 29)
	gst, err := f.gw.Submit("tenant-a", spec)
	if err != nil {
		t.Fatal(err)
	}
	fin := awaitTerminal(t, f.gw, gst.ID)
	if fin.State != service.StateDone {
		t.Fatalf("job finished %s (%s), want done", fin.State, fin.Error)
	}

	resp, err := srv.Client().Get(srv.URL + "/api/v1/jobs/" + gst.ID + "/frames?fields=meta")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("proxied frames status = %d (%s), want 200", resp.StatusCode, body)
	}
	var steps []int
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line struct {
			Step int `json:"step"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		steps = append(steps, line.Step)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(steps) != spec.Steps || steps[0] != 1 || steps[len(steps)-1] != spec.Steps {
		t.Fatalf("proxied replay steps = %v, want 1..%d", steps, spec.Steps)
	}

	// Unknown gateway job IDs 404 without touching any shard.
	resp2, err := srv.Client().Get(srv.URL + "/api/v1/jobs/nope/frames")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job frames status = %d, want 404", resp2.StatusCode)
	}
}
