package fabric

import (
	"math"
	"time"
)

// TokenBucket is the per-tenant admission throttle: Rate tokens accrue
// per second up to Burst, and each accepted submission spends one.
// Callers pass the current time explicitly so tests drive refill
// deterministically.
type TokenBucket struct {
	Rate  float64 // tokens per second
	Burst float64 // bucket capacity

	tokens float64
	last   time.Time
}

// NewTokenBucket returns a full bucket.
func NewTokenBucket(rate, burst float64, now time.Time) *TokenBucket {
	if burst < 1 {
		burst = 1
	}
	return &TokenBucket{Rate: rate, Burst: burst, tokens: burst, last: now}
}

// refill accrues tokens for the time elapsed since the last call.
func (b *TokenBucket) refill(now time.Time) {
	dt := now.Sub(b.last).Seconds()
	if dt > 0 {
		b.tokens = math.Min(b.Burst, b.tokens+dt*b.Rate)
		b.last = now
	}
}

// Take spends one token if available.
func (b *TokenBucket) Take(now time.Time) bool {
	b.refill(now)
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

// Refund returns one token, undoing a Take whose submission was later
// refused for a non-quota reason (e.g. the dispatch backlog was full).
func (b *TokenBucket) Refund() {
	b.tokens = math.Min(b.Burst, b.tokens+1)
}

// RetryAfter reports how long until the next token accrues — the value
// a 429 response carries in its Retry-After header. A zero-rate bucket
// reports a long but finite backoff rather than +Inf.
func (b *TokenBucket) RetryAfter(now time.Time) time.Duration {
	b.refill(now)
	if b.tokens >= 1 {
		return 0
	}
	if b.Rate <= 0 {
		return time.Hour
	}
	need := 1 - b.tokens
	return time.Duration(need / b.Rate * float64(time.Second))
}

// TenantConfig is one tenant's admission policy.
type TenantConfig struct {
	// Rate and Burst parameterize the token bucket (defaults from the
	// gateway options).
	Rate  float64
	Burst float64
	// Weight is the weighted-fair-queueing share; a weight-2 tenant
	// drains twice as fast as a weight-1 tenant under contention
	// (default 1).
	Weight float64
}

// tenant is the gateway's per-tenant state: the quota bucket, the WFQ
// backlog, and the virtual-time bookkeeping. Guarded by the gateway
// mutex.
type tenant struct {
	name       string
	weight     float64
	bucket     *TokenBucket
	queue      []*GwJob
	lastFinish float64
}

// tagJob stamps j with its weighted-fair virtual finish time and
// appends it to the tenant's backlog. vtime is the scheduler's current
// virtual time; the finish tag is the classic start-time-fair
// approximation: max(vtime, previous finish) + 1/weight, so a
// high-weight tenant's jobs accrue smaller tags and drain
// proportionally faster.
func (t *tenant) tagJob(j *GwJob, vtime float64) {
	start := vtime
	if t.lastFinish > start {
		start = t.lastFinish
	}
	j.finishTag = start + 1/t.weight
	t.lastFinish = j.finishTag
	t.queue = append(t.queue, j)
}

// requeueFront puts a re-routed job back at the head of its tenant's
// backlog, keeping its original finish tag: a job that already won
// admission and lost its shard must not pay for the fleet's fault.
func (t *tenant) requeueFront(j *GwJob) {
	t.queue = append([]*GwJob{j}, t.queue...)
}

// replaceQueued swaps one backlog entry for another in place, so a
// promoted follower inherits the canceled leader's queue position. The
// promoted job keeps this tenant's slot even if it belongs to another
// tenant: its admission was already counted, and the slot's fair-share
// cost stays with the tenant that queued it.
func (t *tenant) replaceQueued(old, repl *GwJob) bool {
	for i, q := range t.queue {
		if q == old {
			t.queue[i] = repl
			return true
		}
	}
	return false
}

// removeQueued deletes a backlog entry, reporting whether it was
// present so the caller can release the gateway's pending slot.
func (t *tenant) removeQueued(j *GwJob) bool {
	for i, q := range t.queue {
		if q == j {
			t.queue = append(t.queue[:i], t.queue[i+1:]...)
			return true
		}
	}
	return false
}
