package fabric

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obsv"
)

// LabeledCounter is a counter family with one label dimension, rendered
// in Prometheus text exposition as name{label="value"} rows. Values are
// created on first use; rendering is sorted so output is diff-stable.
type LabeledCounter struct {
	name  string
	help  string
	label string

	mu sync.Mutex
	m  map[string]*atomic.Int64
}

// NewLabeledCounter builds a counter family keyed by one label.
func NewLabeledCounter(name, help, label string) *LabeledCounter {
	return &LabeledCounter{name: name, help: help, label: label, m: make(map[string]*atomic.Int64)}
}

// Add increments the counter for one label value.
func (c *LabeledCounter) Add(value string, delta int64) {
	c.mu.Lock()
	ctr, ok := c.m[value]
	if !ok {
		ctr = &atomic.Int64{}
		c.m[value] = ctr
	}
	c.mu.Unlock()
	ctr.Add(delta)
}

// Get returns the count for one label value.
func (c *LabeledCounter) Get(value string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ctr, ok := c.m[value]; ok {
		return ctr.Load()
	}
	return 0
}

// Total sums the family.
func (c *LabeledCounter) Total() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var sum int64
	for _, ctr := range c.m {
		sum += ctr.Load()
	}
	return sum
}

// Render appends the family's exposition rows. A family with no
// observations still emits its TYPE header so scrapers learn the
// schema.
func (c *LabeledCounter) Render(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n", c.name, c.help, c.name)
	c.mu.Lock()
	values := make([]string, 0, len(c.m))
	for v := range c.m {
		values = append(values, v)
	}
	sort.Strings(values)
	for _, v := range values {
		fmt.Fprintf(b, "%s{%s=%q} %d\n", c.name, c.label, v, c.m[v].Load())
	}
	c.mu.Unlock()
}

// Metrics aggregates the gateway's counters, gauges, and histograms,
// rendered under the nbodygw_ prefix in the same Prometheus text
// exposition the shard daemons serve.
type Metrics struct {
	start time.Time

	JobsSubmitted atomic.Int64 // accepted at the gateway (cache hits included)
	JobsInvalid   atomic.Int64 // 400s at validation
	JobsRejected  atomic.Int64 // 429s (quota + backlog bound)
	JobsDone      atomic.Int64
	JobsFailed    atomic.Int64
	JobsCanceled  atomic.Int64
	CacheHits     atomic.Int64 // served from the result cache
	Coalesced     atomic.Int64 // attached to an identical in-flight job
	JobsPending   atomic.Int64 // gauge: admitted, awaiting a lease
	JobsLeased    atomic.Int64 // gauge: leased to a shard right now
	Shards        atomic.Int64 // gauge: registered shards

	// KeyframesReplicated counts frame-store keyframes shards streamed
	// back for leased jobs; JobsResumedFromFrame counts accepted
	// assignments a shard actually restored from such a keyframe (i.e.
	// re-routed jobs that skipped replaying from step zero).
	KeyframesReplicated  atomic.Int64
	JobsResumedFromFrame atomic.Int64

	// Crash-safety counters. JobsAdopted counts journaled leases a
	// reconnecting shard reported and the gateway re-bound in place
	// instead of re-routing; ParkedResults counts terminal results that
	// arrived via the parked-result drain rather than a live lease;
	// JournalBytes is the on-disk journal size; reconcileMicros is the
	// host time from gateway start until the reconciliation window
	// emptied (adoption, drain, or timeout re-queue of every journaled
	// lease), 0 while reconciliation is still open or was never needed.
	JobsAdopted     atomic.Int64
	ParkedResults   atomic.Int64
	JournalBytes    atomic.Int64
	reconcileMicros atomic.Int64

	// Routed counts lease grants by shard name; Rerouted counts
	// re-queues of leased jobs by the TransportError fault kind that
	// killed their shard; Admitted/Rejected count per-tenant admission
	// decisions.
	Routed   *LabeledCounter
	Rerouted *LabeledCounter
	Admitted *LabeledCounter
	Rejected *LabeledCounter

	// RouteSeconds is the host-clock latency from gateway admission to
	// lease grant (queueing + routing, not simulation).
	RouteSeconds *obsv.Histogram
}

// NewMetrics builds the gateway metric set.
func NewMetrics(now time.Time) *Metrics {
	return &Metrics{
		start: now,
		Routed: NewLabeledCounter("nbodygw_jobs_routed_total",
			"Jobs leased to a shard, by shard name.", "shard"),
		Rerouted: NewLabeledCounter("nbodygw_jobs_rerouted_total",
			"Leased jobs re-queued after a shard fault, by fault kind.", "fault"),
		Admitted: NewLabeledCounter("nbodygw_tenant_admitted_total",
			"Submissions admitted past the tenant quota, by tenant.", "tenant"),
		Rejected: NewLabeledCounter("nbodygw_tenant_rejected_total",
			"Submissions rejected by the tenant quota or backlog bound, by tenant.", "tenant"),
		RouteSeconds: obsv.NewHistogram("nbodygw_route_seconds",
			"Host seconds from gateway admission to lease grant.",
			obsv.ExpBuckets(0.0001, 10, 8)),
	}
}

// SetReconcileSeconds records how long restart reconciliation took.
func (m *Metrics) SetReconcileSeconds(sec float64) {
	m.reconcileMicros.Store(int64(sec * 1e6))
}

// ReconcileSeconds reads the reconciliation duration gauge.
func (m *Metrics) ReconcileSeconds() float64 {
	return float64(m.reconcileMicros.Load()) / 1e6
}

// Render writes the exposition text: plain rows sorted by name, then
// the labeled families, then the histogram.
func (m *Metrics) Render(now time.Time) string {
	rows := map[string]string{
		"nbodygw_jobs_submitted_total":          fmt.Sprintf("%d", m.JobsSubmitted.Load()),
		"nbodygw_jobs_invalid_total":            fmt.Sprintf("%d", m.JobsInvalid.Load()),
		"nbodygw_jobs_rejected_total":           fmt.Sprintf("%d", m.JobsRejected.Load()),
		"nbodygw_jobs_done_total":               fmt.Sprintf("%d", m.JobsDone.Load()),
		"nbodygw_jobs_failed_total":             fmt.Sprintf("%d", m.JobsFailed.Load()),
		"nbodygw_jobs_canceled_total":           fmt.Sprintf("%d", m.JobsCanceled.Load()),
		"nbodygw_cache_hits_total":              fmt.Sprintf("%d", m.CacheHits.Load()),
		"nbodygw_jobs_coalesced_total":          fmt.Sprintf("%d", m.Coalesced.Load()),
		"nbodygw_jobs_pending":                  fmt.Sprintf("%d", m.JobsPending.Load()),
		"nbodygw_jobs_leased":                   fmt.Sprintf("%d", m.JobsLeased.Load()),
		"nbodygw_shards_connected":              fmt.Sprintf("%d", m.Shards.Load()),
		"nbodygw_uptime_seconds":                fmt.Sprintf("%.3f", now.Sub(m.start).Seconds()),
		"nbodygw_keyframes_replicated_total":    fmt.Sprintf("%d", m.KeyframesReplicated.Load()),
		"nbodygw_jobs_resumed_from_frame_total": fmt.Sprintf("%d", m.JobsResumedFromFrame.Load()),
		"nbodygw_jobs_adopted_total":            fmt.Sprintf("%d", m.JobsAdopted.Load()),
		"nbodygw_parked_results_total":          fmt.Sprintf("%d", m.ParkedResults.Load()),
		"nbodygw_journal_bytes":                 fmt.Sprintf("%d", m.JournalBytes.Load()),
		"nbodygw_reconcile_seconds":             fmt.Sprintf("%.6f", m.ReconcileSeconds()),
	}
	names := make([]string, 0, len(rows))
	for name := range rows {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		kind := "counter"
		if !strings.HasSuffix(name, "_total") {
			kind = "gauge"
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n%s %s\n", name, kind, name, rows[name])
	}
	m.Routed.Render(&b)
	m.Rerouted.Render(&b)
	m.Admitted.Render(&b)
	m.Rejected.Render(&b)
	m.RouteSeconds.Render(&b)
	return b.String()
}
