package fabric

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/service"
)

// maxSubmitBytes bounds a job submission body; anything larger is a
// client error, not a legitimate spec.
const maxSubmitBytes = 1 << 20

// Handler serves the gateway HTTP API. It mirrors the shard daemon's
// /api/v1/jobs surface so clients can point at a fleet or a single
// shard interchangeably, plus fleet-only routes (/api/v1/shards).
// Tenancy is carried in the X-Tenant header; absent means "default".
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodPost:
			g.handleSubmit(w, r)
		case http.MethodGet:
			writeJSON(w, http.StatusOK, g.Jobs())
		default:
			w.Header().Set("Allow", "GET, POST")
			writeErr(w, http.StatusMethodNotAllowed, errors.New("method not allowed"))
		}
	})
	mux.HandleFunc("/api/v1/jobs/", g.handleJob)
	mux.HandleFunc("/api/v1/shards", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", "GET")
			writeErr(w, http.StatusMethodNotAllowed, errors.New("method not allowed"))
			return
		}
		writeJSON(w, http.StatusOK, g.Shards())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", service.ExpositionContentType)
		fmt.Fprint(w, g.metrics.Render(g.opt.Now()))
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status": "ok",
			"shards": len(g.Shards()),
		})
	})
	return mux
}

// handleSubmit admits one job. Admission refusals are 429 with a
// Retry-After hint; oversized bodies are 413.
func (g *Gateway) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxSubmitBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var spec service.JobSpec
	if err := dec.Decode(&spec); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeErr(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("job spec exceeds %d bytes", tooLarge.Limit))
			return
		}
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding job spec: %w", err))
		return
	}
	tenant := strings.TrimSpace(r.Header.Get("X-Tenant"))
	st, err := g.Submit(tenant, spec)
	var rej *RejectedError
	switch {
	case errors.As(err, &rej):
		w.Header().Set("Retry-After", retryAfterSeconds(rej.RetryAfter))
		writeErr(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrShuttingDown):
		writeErr(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeErr(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusAccepted, st)
	}
}

// handleJob serves /api/v1/jobs/{id}[/result|/cancel].
func (g *Gateway) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/api/v1/jobs/")
	id, action, _ := strings.Cut(rest, "/")
	switch action {
	case "":
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", "GET")
			writeErr(w, http.StatusMethodNotAllowed, errors.New("method not allowed"))
			return
		}
		st, err := g.Get(id)
		if err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	case "result":
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", "GET")
			writeErr(w, http.StatusMethodNotAllowed, errors.New("method not allowed"))
			return
		}
		res, err := g.Result(id)
		switch {
		case errors.Is(err, ErrNotFound):
			writeErr(w, http.StatusNotFound, err)
		case errors.Is(err, ErrNotDone):
			writeErr(w, http.StatusConflict, err)
		default:
			w.Header().Set("Content-Type", "application/json")
			w.Write(res)
		}
	case "frames":
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", "GET")
			writeErr(w, http.StatusMethodNotAllowed, errors.New("method not allowed"))
			return
		}
		g.proxyFrames(w, r, id)
	case "cancel":
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", "POST")
			writeErr(w, http.StatusMethodNotAllowed, errors.New("method not allowed"))
			return
		}
		st, err := g.Cancel(id)
		switch {
		case errors.Is(err, ErrNotFound):
			writeErr(w, http.StatusNotFound, err)
		case errors.Is(err, ErrTerminal):
			writeErr(w, http.StatusConflict, err)
		default:
			writeJSON(w, http.StatusOK, st)
		}
	default:
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown action %q", action))
	}
}

// proxyFrames streams the frame-store replay endpoint of the shard that
// holds (or held) a gateway job. The gateway owns no frame data itself
// beyond the single replicated resume keyframe, so replay is proxied to
// the shard's own HTTP API, preserving the query string and the Accept
// header; the body is copied through without buffering so tail-follow
// streams work end to end.
func (g *Gateway) proxyFrames(w http.ResponseWriter, r *http.Request, id string) {
	g.mu.Lock()
	j, ok := g.jobs[id]
	if !ok {
		g.mu.Unlock()
		writeErr(w, http.StatusNotFound, ErrNotFound)
		return
	}
	addr, localID := j.framesAddr, j.localID
	g.mu.Unlock()
	if addr == "" || localID == "" {
		writeErr(w, http.StatusConflict,
			fmt.Errorf("fabric: job %s has no shard frame store to replay from (never accepted by a shard, or the shard advertises no HTTP address)", id))
		return
	}
	target := "http://" + addr + "/api/v1/jobs/" + localID + "/frames"
	if r.URL.RawQuery != "" {
		target += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, target, nil)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, fmt.Errorf("building shard request: %w", err))
		return
	}
	if accept := r.Header.Get("Accept"); accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		writeErr(w, http.StatusBadGateway, fmt.Errorf("reaching shard frame store: %w", err))
		return
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	// Flush eagerly: tail-follow replays emit one line per simulation
	// step and the client wants each as it lands, not a buffered burst.
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// retryAfterSeconds formats a Retry-After header value, rounding up so
// clients never retry before the hint allows.
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// apiError is the JSON error envelope, matching the shard API.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, apiError{Error: err.Error()})
}
