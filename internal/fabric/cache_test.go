package fabric

import (
	"fmt"
	"testing"
)

func TestCachePutGet(t *testing.T) {
	c := NewCache(4)
	if _, ok := c.Get("missing"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("k1", []byte("r1"), "j1")
	got, ok := c.Get("k1")
	if !ok || string(got) != "r1" {
		t.Fatalf("Get(k1) = %q, %v; want r1, true", got, ok)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(3)
	for i := 1; i <= 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte{byte(i)}, "")
	}
	// Touch k1 so k2 is the LRU when k4 arrives.
	c.Get("k1")
	c.Put("k4", []byte{4}, "")
	if _, ok := c.Get("k2"); ok {
		t.Fatal("k2 survived eviction though it was least recently used")
	}
	for _, k := range []string{"k1", "k3", "k4"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted; want it resident", k)
		}
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
}

func TestCacheOverwrite(t *testing.T) {
	c := NewCache(2)
	c.Put("k", []byte("old"), "j1")
	c.Put("k", []byte("new"), "j2")
	got, _ := c.Get("k")
	if string(got) != "new" {
		t.Fatalf("Get after overwrite = %q, want new", got)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d after overwrite, want 1", c.Len())
	}
}
