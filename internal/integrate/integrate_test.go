package integrate

import (
	"math"
	"testing"

	"repro/internal/direct"
	"repro/internal/dist"
	"repro/internal/phys"
	"repro/internal/vec"
)

// kepler builds a two-body system on a circular orbit: masses 1 and 1e-3,
// separation 1, G = 1.
func kepler() []dist.Particle {
	const m1, m2 = 1.0, 1e-3
	v := math.Sqrt((m1 + m2) / 1.0)
	return []dist.Particle{
		{ID: 0, Mass: m1, Pos: vec.V3{}, Vel: vec.V3{Y: -v * m2 / (m1 + m2)}},
		{ID: 1, Mass: m2, Pos: vec.V3{X: 1}, Vel: vec.V3{Y: v * m1 / (m1 + m2)}},
	}
}

// eccentric builds a two-body orbit with eccentricity 0.6 started at
// aphelion (semi-major axis 1). Eccentric orbits expose integrator error
// that circular orbits hide (symplectic error oscillates and cancels over
// a period on a circle).
func eccentric() []dist.Particle {
	const m1, m2 = 1.0, 1e-3
	const e, a = 0.6, 1.0
	rAp := a * (1 + e)
	vAp := math.Sqrt((m1 + m2) * (1 - e) / (a * (1 + e)))
	return []dist.Particle{
		{ID: 0, Mass: m1, Pos: vec.V3{}, Vel: vec.V3{Y: -vAp * m2 / (m1 + m2)}},
		{ID: 1, Mass: m2, Pos: vec.V3{X: rAp}, Vel: vec.V3{Y: vAp * m1 / (m1 + m2)}},
	}
}

func directAccel(ps []dist.Particle) []vec.V3 { return direct.Accels(ps, 0) }

// energyDrift integrates one orbital period of the eccentric orbit and
// returns the maximum relative energy deviation along the trajectory.
func energyDrift(t *testing.T, ig Integrator, dt float64) float64 {
	t.Helper()
	ps := eccentric()
	ig.Reset()
	e0 := direct.TotalEnergy(ps, 0)
	period := 2 * math.Pi // a = 1, μ ≈ 1
	steps := int(period / dt)
	var worst float64
	for i := 0; i < steps; i++ {
		ig.Step(ps, dt, directAccel)
		if d := math.Abs((direct.TotalEnergy(ps, 0) - e0) / e0); d > worst {
			worst = d
		}
	}
	return worst
}

func TestNewByName(t *testing.T) {
	for _, name := range []string{"euler", "leapfrog", "kdk", "yoshida4", "yoshida"} {
		ig, err := New(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ig.Evals() < 1 {
			t.Fatalf("%s: evals = %d", name, ig.Evals())
		}
	}
	if _, err := New("rk4"); err == nil {
		t.Fatal("unknown integrator accepted")
	}
}

func TestLeapfrogBeatsEuler(t *testing.T) {
	const dt = 0.01
	euler := energyDrift(t, &Euler{}, dt)
	lf := energyDrift(t, &Leapfrog{}, dt)
	if lf >= euler {
		t.Fatalf("leapfrog drift %v not below euler %v", lf, euler)
	}
	// e=0.6 concentrates force at perihelion; dt=0.01 there is coarse, so
	// the max in-orbit deviation is ~1e-3, far below Euler's.
	if lf > 5e-3 {
		t.Fatalf("leapfrog drift %v too large", lf)
	}
}

func TestYoshidaBeatsLeapfrog(t *testing.T) {
	const dt = 0.02
	lf := energyDrift(t, &Leapfrog{}, dt)
	y4 := energyDrift(t, NewYoshida4(), dt)
	if y4 >= lf {
		t.Fatalf("yoshida4 drift %v not below leapfrog %v", y4, lf)
	}
}

func TestLeapfrogIsSecondOrder(t *testing.T) {
	// Halving dt should cut the energy error by ≈4 (order 2).
	e1 := energyDrift(t, &Leapfrog{}, 0.02)
	e2 := energyDrift(t, &Leapfrog{}, 0.01)
	ratio := e1 / e2
	if ratio < 2.5 {
		t.Fatalf("convergence ratio %v, want ≈4", ratio)
	}
}

func TestYoshidaIsFourthOrder(t *testing.T) {
	e1 := energyDrift(t, NewYoshida4(), 0.04)
	e2 := energyDrift(t, NewYoshida4(), 0.02)
	ratio := e1 / e2
	if ratio < 8 {
		t.Fatalf("convergence ratio %v, want ≈16", ratio)
	}
}

func TestOrbitStaysCircular(t *testing.T) {
	ps := kepler()
	lf := &Leapfrog{}
	dt := 0.005
	for i := 0; i < int(2*math.Pi/dt); i++ {
		lf.Step(ps, dt, directAccel)
		r := ps[1].Pos.Dist(ps[0].Pos)
		if r < 0.98 || r > 1.02 {
			t.Fatalf("orbit radius %v at step %d", r, i)
		}
	}
}

func TestResetForcesRecomputation(t *testing.T) {
	ps := kepler()
	lf := &Leapfrog{}
	lf.Step(ps, 0.01, directAccel)
	// Externally perturb the state; without Reset the cached acceleration
	// would be stale.
	ps[1].Pos = ps[1].Pos.Add(vec.V3{X: 0.5})
	lf.Reset()
	calls := 0
	lf.Step(ps, 0.01, func(ps []dist.Particle) []vec.V3 {
		calls++
		return directAccel(ps)
	})
	if calls != 2 { // leading kick recompute + trailing kick
		t.Fatalf("accel calls after Reset = %d, want 2", calls)
	}
}

func TestMomentumConservedExactly(t *testing.T) {
	// Direct-summation forces are exactly antisymmetric, so every
	// integrator here conserves momentum to rounding.
	ps := dist.MustNamed("plummer", 100, 3).Particles
	mom := func() vec.V3 {
		var p vec.V3
		for i := range ps {
			p = p.Add(ps[i].Vel.Scale(ps[i].Mass))
		}
		return p
	}
	p0 := mom()
	lf := &Leapfrog{}
	for i := 0; i < 10; i++ {
		lf.Step(ps, 0.01, func(ps []dist.Particle) []vec.V3 { return direct.Accels(ps, 0.05) })
	}
	if mom().Sub(p0).Norm() > 1e-12 {
		t.Fatalf("momentum drift %v", mom().Sub(p0).Norm())
	}
}

func TestEulerSingleEvalPerStep(t *testing.T) {
	ps := kepler()
	calls := 0
	e := &Euler{}
	e.Step(ps, 0.01, func(ps []dist.Particle) []vec.V3 {
		calls++
		return directAccel(ps)
	})
	if calls != 1 {
		t.Fatalf("euler used %d evals", calls)
	}
	_ = phys.G
}
