// Package integrate provides the time integrators used to advance n-body
// systems: symplectic leapfrog (kick-drift-kick), its 4th-order Yoshida
// composition, and a plain forward Euler for contrast. Integrators are
// defined over an acceleration callback so they work with any force
// engine — the serial treecode, the parallel formulations, or direct
// summation.
package integrate

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/vec"
)

// AccelFunc computes accelerations for the given particle states,
// indexed like the input slice.
type AccelFunc func(ps []dist.Particle) []vec.V3

// Integrator advances particle states in place by one step of size dt,
// calling accel as needed. Implementations may keep state (cached
// accelerations) keyed to the particle slice contents; Reset clears it.
type Integrator interface {
	Step(ps []dist.Particle, dt float64, accel AccelFunc)
	// Evals returns the number of force evaluations per step.
	Evals() int
	// Name identifies the method.
	Name() string
	// Reset drops cached state (call after externally modifying ps).
	Reset()
}

// New returns an integrator by name: "euler", "leapfrog", "yoshida4".
func New(name string) (Integrator, error) {
	switch name {
	case "euler":
		return &Euler{}, nil
	case "leapfrog", "kdk":
		return &Leapfrog{}, nil
	case "yoshida4", "yoshida":
		return NewYoshida4(), nil
	}
	return nil, fmt.Errorf("integrate: unknown integrator %q", name)
}

// Euler is the explicit (symplectic, semi-implicit) Euler method:
// v ← v + a·dt, then x ← x + v·dt. First order; kept as the baseline the
// higher-order methods are compared against.
type Euler struct{}

// Step implements Integrator.
func (e *Euler) Step(ps []dist.Particle, dt float64, accel AccelFunc) {
	a := accel(ps)
	for i := range ps {
		ps[i].Vel = ps[i].Vel.Add(a[i].Scale(dt))
		ps[i].Pos = ps[i].Pos.Add(ps[i].Vel.Scale(dt))
	}
}

// Evals implements Integrator.
func (e *Euler) Evals() int { return 1 }

// Name implements Integrator.
func (e *Euler) Name() string { return "euler" }

// Reset implements Integrator.
func (e *Euler) Reset() {}

// Leapfrog is the kick-drift-kick (velocity Verlet) integrator: second
// order, symplectic, one force evaluation per step (the trailing kick
// reuses the next step's leading evaluation through a cached
// acceleration).
type Leapfrog struct {
	acc []vec.V3 // accelerations at the current positions
}

// Step implements Integrator.
func (l *Leapfrog) Step(ps []dist.Particle, dt float64, accel AccelFunc) {
	if l.acc == nil || len(l.acc) != len(ps) {
		l.acc = accel(ps)
	}
	for i := range ps {
		ps[i].Vel = ps[i].Vel.Add(l.acc[i].Scale(dt / 2))
		ps[i].Pos = ps[i].Pos.Add(ps[i].Vel.Scale(dt))
	}
	l.acc = accel(ps)
	for i := range ps {
		ps[i].Vel = ps[i].Vel.Add(l.acc[i].Scale(dt / 2))
	}
}

// Evals implements Integrator.
func (l *Leapfrog) Evals() int { return 1 }

// Name implements Integrator.
func (l *Leapfrog) Name() string { return "leapfrog" }

// Reset implements Integrator.
func (l *Leapfrog) Reset() { l.acc = nil }

// Yoshida4 is the 4th-order symplectic composition of three leapfrog
// sub-steps with the Yoshida (1990) coefficients. Three force evaluations
// per step, error O(dt⁴): the standard choice when the leapfrog's energy
// error at an affordable dt is still too large.
type Yoshida4 struct {
	inner Leapfrog
	w     [3]float64
}

// NewYoshida4 returns a 4th-order Yoshida integrator.
func NewYoshida4() *Yoshida4 {
	// w1 = 1/(2 - 2^(1/3)), w0 = -2^(1/3) · w1.
	const cbrt2 = 1.2599210498948732
	w1 := 1 / (2 - cbrt2)
	w0 := -cbrt2 * w1
	return &Yoshida4{w: [3]float64{w1, w0, w1}}
}

// Step implements Integrator.
func (y *Yoshida4) Step(ps []dist.Particle, dt float64, accel AccelFunc) {
	for _, w := range y.w {
		y.inner.Step(ps, w*dt, accel)
		// Sub-steps move the particles, so the cached acceleration of the
		// inner leapfrog remains valid across sub-steps (it was computed
		// at the final positions of the previous sub-step).
	}
}

// Evals implements Integrator.
func (y *Yoshida4) Evals() int { return 3 }

// Name implements Integrator.
func (y *Yoshida4) Name() string { return "yoshida4" }

// Reset implements Integrator.
func (y *Yoshida4) Reset() { y.inner.Reset() }
