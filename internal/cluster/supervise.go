package cluster

import (
	"fmt"
	"log/slog"
	"time"

	"repro/internal/obsv"
	"repro/internal/parbh"
	"repro/internal/transport"
)

// Assembler builds one machine generation: a fully admitted transport
// (coordinator listening, workers joined) wrapped in a Coordinator.
// The supervisor calls it again after demolishing a faulted generation,
// so for TCP it must be able to re-listen on the same address.
type Assembler func() (*Coordinator, error)

// RecoveryEvent describes one supervised recovery: what faulted, which
// retry this is, and where the job resumes.
type RecoveryEvent struct {
	Attempt    int                 // 1-based retry count
	Fault      transport.FaultKind // classification of the triggering fault
	Err        error               // the failure that killed the previous generation
	ResumeStep int                 // first step the retry will report
}

// Supervisor runs jobs across machine generations: when a run dies of
// a transport-class fault it demolishes the generation (Abort — peers
// observe a crash and rejoin), reassembles, and resumes the job from
// the last completed step with capped exponential backoff between
// attempts. Epochs are threaded across generations so a stale worker's
// frames from before the fault are fenced off by the rebuilt machine.
type Supervisor struct {
	// MaxRetries caps recovery attempts per RunFrom call (0 = fail on
	// the first fault; the service layer re-queues instead).
	MaxRetries int
	// BackoffBase is the first inter-attempt delay, doubling up to
	// BackoffMax. Defaults 200ms and 5s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// SetupTimeout and StepTimeout are applied to every Coordinator the
	// supervisor assembles (zero keeps the Coordinator defaults).
	SetupTimeout time.Duration
	StepTimeout  time.Duration
	// Logf, if non-nil, narrates recoveries as formatted lines. It is
	// the compatibility surface: callers (and tests) that pin log lines
	// keep getting exactly them.
	Logf func(format string, args ...any)
	// Logger, if non-nil, narrates the same events as structured slog
	// records with typed fields (fault kind, attempt, resume step,
	// generation). When both are set, Logf keeps its pinned lines and
	// Logger gets the structured record.
	Logger *slog.Logger
	// OnRecovery, if non-nil, observes every recovery event (metrics,
	// progress streams).
	OnRecovery func(RecoveryEvent)
	// Tracer, when non-nil, is installed on every coordinator this
	// supervisor assembles, so traces span machine generations: a fault,
	// the rebuild, and the replayed steps all land in one capture.
	Tracer *obsv.Tracer

	assemble  Assembler
	coord     *Coordinator
	epochBase uint32
}

// NewSupervisor wraps an assembler. The first machine generation is
// built lazily on the first run (or explicitly via Ensure).
func NewSupervisor(assemble Assembler) *Supervisor {
	return &Supervisor{assemble: assemble, BackoffBase: 200 * time.Millisecond, BackoffMax: 5 * time.Second}
}

func (s *Supervisor) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	} else if s.Logger != nil {
		s.Logger.Info(fmt.Sprintf(format, args...), "component", "cluster")
	}
}

// narrateRecovery reports one recovery on whichever logging surfaces
// are configured: the printf shim keeps its line format, the structured
// logger gets typed fields.
func (s *Supervisor) narrateRecovery(ev RecoveryEvent) {
	if s.Logf != nil {
		s.Logf("cluster: recovering from %s fault (attempt %d/%d, resume step %d): %v",
			ev.Fault, ev.Attempt, s.MaxRetries, ev.ResumeStep, ev.Err)
	}
	if s.Logger != nil {
		s.Logger.Warn("recovering from transport fault",
			"component", "cluster",
			"fault", ev.Fault.String(),
			"attempt", ev.Attempt,
			"max_retries", s.MaxRetries,
			"resume_step", ev.ResumeStep,
			"generation", s.epochBase,
			"err", ev.Err)
	}
}

// Ensure assembles the current machine generation if none is live.
func (s *Supervisor) Ensure() error {
	if s.coord != nil {
		return nil
	}
	c, err := s.assemble()
	if err != nil {
		return err
	}
	// Epoch continuity across generations: the rebuilt machine keeps
	// counting from where the demolished one stopped, so frames and
	// acks from pre-fault incarnations can never match a live epoch.
	c.epoch = s.epochBase
	if s.SetupTimeout > 0 {
		c.SetupTimeout = s.SetupTimeout
	}
	if s.StepTimeout > 0 {
		c.StepTimeout = s.StepTimeout
	}
	c.Tracer = s.Tracer
	s.coord = c
	return nil
}

// SetTracer installs (or, with nil, removes) the tracer on this
// supervisor and on the live generation's coordinator, if any. The
// service layer calls it per traced job.
func (s *Supervisor) SetTracer(tr *obsv.Tracer) {
	s.Tracer = tr
	if s.coord != nil {
		s.coord.Tracer = tr
	}
}

// discard demolishes the current generation after a failure. Abort, not
// Close: workers blocked mid-step must observe a crash and unwind.
func (s *Supervisor) discard(err error) {
	if s.coord == nil {
		return
	}
	s.epochBase = s.coord.epoch
	s.coord.Abort(err)
	s.coord = nil
}

// Metrics returns the live generation's transport counters, or nil
// between generations.
func (s *Supervisor) Metrics() *transport.Metrics {
	if s.coord == nil {
		return nil
	}
	return s.coord.Metrics()
}

// Run executes the job from step 0 under supervision.
func (s *Supervisor) Run(job Job, onStep func(step int, res *parbh.Result) bool) (*parbh.Result, error) {
	return s.RunFrom(job, 0, onStep)
}

// RunFrom executes the job from step from under supervision. Any
// transport-class failure demolishes the machine generation and — up
// to MaxRetries times — reassembles and resumes after the last step
// that was reported, replaying earlier steps silently. Non-transport
// failures (bad job, engine bug) are returned immediately; they would
// only recur.
func (s *Supervisor) RunFrom(job Job, from int, onStep func(step int, res *parbh.Result) bool) (*parbh.Result, error) {
	resume := from
	backoff := s.BackoffBase
	if backoff <= 0 {
		backoff = 200 * time.Millisecond
	}
	for attempt := 0; ; attempt++ {
		if err := s.Ensure(); err != nil {
			if attempt >= s.MaxRetries {
				return nil, fmt.Errorf("cluster: assembling machine: %w", err)
			}
			s.logf("cluster: assembly failed (attempt %d/%d): %v", attempt+1, s.MaxRetries, err)
			time.Sleep(backoff)
			backoff = nextBackoff(backoff, s.BackoffMax)
			continue
		}
		res, err := s.coord.RunFrom(job, resume, func(step int, r *parbh.Result) bool {
			resume = step + 1
			return onStep == nil || onStep(step, r)
		})
		if err == nil {
			return res, nil
		}
		// Any failure leaves the generation suspect — machines are
		// poisoned, workers may be mid-unwind — so demolish it either
		// way; only transport-class faults are worth a retry.
		s.discard(err)
		if !transport.Retryable(err) || attempt >= s.MaxRetries {
			return nil, err
		}
		ev := RecoveryEvent{Attempt: attempt + 1, Fault: transport.FaultKindOf(err), Err: err, ResumeStep: resume}
		s.narrateRecovery(ev)
		if s.OnRecovery != nil {
			s.OnRecovery(ev)
		}
		time.Sleep(backoff)
		backoff = nextBackoff(backoff, s.BackoffMax)
	}
}

// Shutdown releases workers and closes the live generation gracefully.
func (s *Supervisor) Shutdown() error {
	if s.coord == nil {
		return nil
	}
	err := s.coord.Shutdown()
	s.coord = nil
	return err
}

func nextBackoff(cur, max time.Duration) time.Duration {
	if max <= 0 {
		max = 5 * time.Second
	}
	cur *= 2
	if cur > max {
		cur = max
	}
	return cur
}

// RejoinPolicy tunes a worker's rejoin loop.
type RejoinPolicy struct {
	// Max is the number of consecutive failed join/serve cycles before
	// giving up; negative means retry forever. Successful admission
	// resets the count.
	Max int
	// Base is the first backoff between cycles, doubling up to MaxWait.
	// Defaults 200ms and 5s.
	Base    time.Duration
	MaxWait time.Duration
}

// ServeLoop runs a worker under supervision: join the coordinator,
// serve jobs, and — when the machine generation dies under it — abort
// the dead link and rejoin with capped exponential backoff. A graceful
// shutdown from the coordinator ends the loop with nil. This is the
// worker half of the re-admission protocol: the supervisor's rebuilt
// transport admits whichever workers dial back in.
func ServeLoop(join func() (transport.Link, error), pol RejoinPolicy, logf func(format string, args ...any)) error {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	base := pol.Base
	if base <= 0 {
		base = 200 * time.Millisecond
	}
	backoff := base
	failures := 0
	var lastErr error
	for {
		link, err := join()
		if err != nil {
			lastErr = err
			failures++
			if pol.Max >= 0 && failures > pol.Max {
				return fmt.Errorf("cluster: worker giving up after %d failed cycle(s): %w", failures, lastErr)
			}
			logf("join failed (cycle %d): %v; retrying in %v", failures, err, backoff)
			time.Sleep(backoff)
			backoff = nextBackoff(backoff, pol.MaxWait)
			continue
		}
		failures = 0
		backoff = base
		err = Serve(link, logf)
		if err == nil {
			link.Close()
			return nil
		}
		lastErr = err
		// Abort, not Close: peers of this generation must observe a
		// failure, or ranks blocked on this worker's frames would hang
		// until their own watchdogs fire.
		link.Abort(err)
		failures++
		if pol.Max >= 0 && failures > pol.Max {
			return fmt.Errorf("cluster: worker giving up after %d failed cycle(s): %w", failures, lastErr)
		}
		logf("serve failed (cycle %d): %v; rejoining in %v", failures, err, backoff)
		time.Sleep(backoff)
		backoff = nextBackoff(backoff, pol.MaxWait)
	}
}
