// Package cluster runs the SPMD simulated machine across real OS
// processes: a coordinator (proc 0) drives SPSA/SPDA/DPDA jobs on a
// machine whose ranks are block-partitioned over the member processes,
// exchanging engine payloads through internal/transport.
//
// The control protocol is deliberately small and step-granular:
//
//	coordinator → workers:  jobStart, stepCmd*, endJob, shutdown
//	workers → coordinator:  stepOutputs (inside parbh's result gather)
//
// All control traffic travels on the transport's untimed host channel;
// the simulated machine only ever sees rank-to-rank frames, so the
// simulated clock, interaction stats, and comm volumes of a job are
// bit-identical to the same job on an in-proc machine.
package cluster

import (
	"repro/internal/dist"
	"repro/internal/msg"
	"repro/internal/parbh"
	"repro/internal/transport"
	"repro/internal/vec"
)

// Wire IDs 51–60 are reserved for this package (see the block table in
// internal/transport/codec.go).
const (
	idJobStart uint16 = 51
	idStepCmd  uint16 = 52
	idEndJob   uint16 = 53
	idShutdown uint16 = 54
	idJobReady uint16 = 55
)

// Job describes one distributed engine run. Every process receives the
// full particle set and bootstraps the engine deterministically, so no
// initial scatter is needed; the per-step migrations keep only the
// owned particles hot on each rank afterwards.
type Job struct {
	Name    string
	Ranks   int // simulated processors (≥ member process count)
	Steps   int
	Profile msg.CostProfile
	Config  parbh.Config
	Domain  vec.Box
	Parts   []dist.Particle
}

// jobStart opens a job on the workers: the job itself plus the epoch
// that tags every frame of this run.
type jobStart struct {
	Epoch uint32
	Job   Job
}

// stepCmd tells workers to execute one engine step.
type stepCmd struct {
	Epoch uint32
	Step  int32
}

// endJob closes the current job on the workers.
type endJob struct {
	Epoch uint32
}

// shutdown tells a worker process to exit its serve loop.
type shutdown struct{}

// jobReady acknowledges jobStart: the worker's engine is built and its
// frame handlers are installed (or Err says why not). The coordinator
// collects one from every worker before the first stepCmd — without
// this barrier a fast coordinator could put rank frames on the wire
// while a worker is still decoding the job, and they would arrive at a
// link with no machine behind it.
type jobReady struct {
	Epoch uint32
	Err   string
}

func putProfile(w *transport.Writer, p msg.CostProfile) {
	w.Str(p.Name)
	w.F64(p.FlopRate)
	w.F64(p.TS)
	w.F64(p.TW)
	w.F64(p.TH)
	w.I32(int32(p.Topology))
	if p.StoreAndForward {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

func getProfile(r *transport.Reader) msg.CostProfile {
	var p msg.CostProfile
	p.Name = r.Str()
	p.FlopRate = r.F64()
	p.TS = r.F64()
	p.TW = r.F64()
	p.TH = r.F64()
	p.Topology = msg.Topology(r.I32())
	p.StoreAndForward = r.U8() != 0
	return p
}

func putConfig(w *transport.Writer, c parbh.Config) {
	w.I32(int32(c.Scheme))
	w.I32(int32(c.Mode))
	w.F64(c.Alpha)
	w.I32(int32(c.Degree))
	w.F64(c.Eps)
	w.I32(int32(c.LeafCap))
	w.I32(int32(c.GridLog2))
	w.I32(int32(c.BinSize))
	w.I32(int32(c.Shipping))
	w.I32(int32(c.BranchLookup))
	w.I32(int32(c.Ordering))
	w.I32(int32(c.TreeBuild))
}

func getConfig(r *transport.Reader) parbh.Config {
	var c parbh.Config
	c.Scheme = parbh.Scheme(r.I32())
	c.Mode = parbh.Mode(r.I32())
	c.Alpha = r.F64()
	c.Degree = int(r.I32())
	c.Eps = r.F64()
	c.LeafCap = int(r.I32())
	c.GridLog2 = int(r.I32())
	c.BinSize = int(r.I32())
	c.Shipping = parbh.Shipping(r.I32())
	c.BranchLookup = parbh.Lookup(r.I32())
	c.Ordering = parbh.Ordering(r.I32())
	c.TreeBuild = parbh.TreeBuild(r.I32())
	return c
}

func putV3(w *transport.Writer, v vec.V3) {
	w.F64(v.X)
	w.F64(v.Y)
	w.F64(v.Z)
}

func getV3(r *transport.Reader) vec.V3 {
	return vec.V3{X: r.F64(), Y: r.F64(), Z: r.F64()}
}

func init() {
	transport.Register(idJobStart,
		func(w *transport.Writer, v jobStart) {
			w.U32(v.Epoch)
			w.Str(v.Job.Name)
			w.I32(int32(v.Job.Ranks))
			w.I32(int32(v.Job.Steps))
			putProfile(w, v.Job.Profile)
			putConfig(w, v.Job.Config)
			putV3(w, v.Job.Domain.Min)
			putV3(w, v.Job.Domain.Max)
			w.Len(len(v.Job.Parts), v.Job.Parts == nil)
			for _, q := range v.Job.Parts {
				w.I64(int64(q.ID))
				w.F64(q.Mass)
				putV3(w, q.Pos)
				putV3(w, q.Vel)
			}
		},
		func(r *transport.Reader) (jobStart, error) {
			var v jobStart
			v.Epoch = r.U32()
			v.Job.Name = r.Str()
			v.Job.Ranks = int(r.I32())
			v.Job.Steps = int(r.I32())
			v.Job.Profile = getProfile(r)
			v.Job.Config = getConfig(r)
			v.Job.Domain.Min = getV3(r)
			v.Job.Domain.Max = getV3(r)
			n, notNil := r.SliceLen(8 * 8)
			if notNil && r.Err() == nil {
				v.Job.Parts = make([]dist.Particle, n)
				for i := range v.Job.Parts {
					q := &v.Job.Parts[i]
					q.ID = int(r.I64())
					q.Mass = r.F64()
					q.Pos = getV3(r)
					q.Vel = getV3(r)
				}
			}
			return v, r.Err()
		})
	transport.Register(idStepCmd,
		func(w *transport.Writer, v stepCmd) {
			w.U32(v.Epoch)
			w.I32(v.Step)
		},
		func(r *transport.Reader) (stepCmd, error) {
			return stepCmd{Epoch: r.U32(), Step: r.I32()}, r.Err()
		})
	transport.Register(idEndJob,
		func(w *transport.Writer, v endJob) { w.U32(v.Epoch) },
		func(r *transport.Reader) (endJob, error) {
			return endJob{Epoch: r.U32()}, r.Err()
		})
	transport.Register(idShutdown,
		func(w *transport.Writer, v shutdown) {},
		func(r *transport.Reader) (shutdown, error) { return shutdown{}, nil })
	transport.Register(idJobReady,
		func(w *transport.Writer, v jobReady) {
			w.U32(v.Epoch)
			w.Str(v.Err)
		},
		func(r *transport.Reader) (jobReady, error) {
			return jobReady{Epoch: r.U32(), Err: r.Str()}, r.Err()
		})
}
