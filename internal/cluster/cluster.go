package cluster

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/dist"
	"repro/internal/msg"
	"repro/internal/obsv"
	"repro/internal/parbh"
	"repro/internal/transport"
)

// assignRanks block-partitions ranks over procs: proc i gets a
// contiguous run, earlier procs take the remainder, proc 0 always owns
// rank 0. Identical on every process by construction.
func assignRanks(ranks, procs int) ([]int32, error) {
	if ranks < procs {
		return nil, fmt.Errorf("cluster: %d rank(s) cannot cover %d process(es)", ranks, procs)
	}
	owner := make([]int32, ranks)
	base := ranks / procs
	rem := ranks % procs
	r := 0
	for p := 0; p < procs; p++ {
		n := base
		if p < rem {
			n++
		}
		for i := 0; i < n; i++ {
			owner[r] = int32(p)
			r++
		}
	}
	return owner, nil
}

// RankNet implements msg.Network over a transport.Link for one job: it
// maps ranks to processes, stamps the job epoch on outgoing frames, and
// drops frames from stale epochs (a straggler from a previous job on a
// reused connection must never reach a live mailbox).
type RankNet struct {
	link    transport.Link
	owner   []int32
	local   []int
	epoch   uint32
	handler atomic.Pointer[func(*transport.Frame)]
}

// newRankNet wires a per-job network onto link. The same assignment is
// computed on every process from (ranks, link.NumProcs()).
func newRankNet(link transport.Link, ranks int, epoch uint32) (*RankNet, error) {
	owner, err := assignRanks(ranks, link.NumProcs())
	if err != nil {
		return nil, err
	}
	rn := &RankNet{link: link, owner: owner, epoch: epoch}
	me := int32(link.ProcID())
	for rk, o := range owner {
		if o == me {
			rn.local = append(rn.local, rk)
		}
	}
	link.SetDataHandler(rn.onFrame)
	return rn, nil
}

func (rn *RankNet) onFrame(f *transport.Frame) {
	if f.Epoch != rn.epoch {
		return // stale job incarnation
	}
	if fn := rn.handler.Load(); fn != nil {
		(*fn)(f)
	}
}

// Ranks implements msg.Network.
func (rn *RankNet) Ranks() int { return len(rn.owner) }

// LocalRanks implements msg.Network.
func (rn *RankNet) LocalRanks() []int { return rn.local }

// ProcID implements msg.Network.
func (rn *RankNet) ProcID() int { return rn.link.ProcID() }

// NumProcs implements msg.Network.
func (rn *RankNet) NumProcs() int { return rn.link.NumProcs() }

// SendFrame implements msg.Network.
func (rn *RankNet) SendFrame(f *transport.Frame) error {
	f.Epoch = rn.epoch
	return rn.link.SendData(int(rn.owner[f.Dst]), f)
}

// SetHandler implements msg.Network.
func (rn *RankNet) SetHandler(fn func(*transport.Frame)) { rn.handler.Store(&fn) }

// SetErrorHandler implements msg.Network.
func (rn *RankNet) SetErrorHandler(fn func(error)) { rn.link.SetErrorHandler(fn) }

// HostSend implements msg.Network.
func (rn *RankNet) HostSend(dst int, payload any) error { return rn.link.HostSend(dst, payload) }

// HostRecv implements msg.Network.
func (rn *RankNet) HostRecv() (int, any, error) { return rn.link.HostRecv() }

// Coordinator drives jobs from process 0 of an assembled transport.
// It is not safe for concurrent use: one job at a time.
type Coordinator struct {
	link  transport.Link
	epoch uint32

	// SetupTimeout bounds how long the jobReady barrier waits for each
	// control message; a worker that never acknowledges fails the job
	// with a FaultStall instead of hanging it. Default 60s.
	SetupTimeout time.Duration
	// StepTimeout bounds one engine step on the coordinator. When it
	// expires the machine is interrupted via context and the step
	// returns a FaultStall error — the watchdog that detects a worker
	// dying silently mid-step. 0 disables the watchdog.
	StepTimeout time.Duration
	// Tracer, when non-nil, is attached to every machine this
	// coordinator builds. It captures simulated-clock spans for the
	// ranks hosted by this process (workers' ranks trace in their own
	// processes; shipping those events would itself be communication
	// and violate the tracing-changes-nothing rule). Wrap the link with
	// obsv.WrapLink to capture the host-clock side as well.
	Tracer *obsv.Tracer

	// Control-message fetcher state (see recvHost).
	pending  chan hostEvent
	fetching bool
}

// hostEvent is one resolved HostRecv.
type hostEvent struct {
	src     int
	payload any
	err     error
}

// NewCoordinator wraps an assembled link (proc 0). For TCP the link
// comes from transport.NewCoordinator + WaitWorkers; tests use a
// transport.MeshNode.
func NewCoordinator(link transport.Link) (*Coordinator, error) {
	if link.ProcID() != 0 {
		return nil, fmt.Errorf("cluster: coordinator must be proc 0, got %d", link.ProcID())
	}
	return &Coordinator{link: link, SetupTimeout: 60 * time.Second}, nil
}

// recvHost reads the next control message with a deadline. The fetch
// runs on a helper goroutine; on timeout it stays outstanding and the
// next recvHost consumes its result, so messages are never lost. Every
// timeout is fatal for the current machine generation (the caller
// abandons the job and the supervisor demolishes the link), which is
// what bounds the orphaned fetch's lifetime.
func (c *Coordinator) recvHost(timeout time.Duration) (int, any, error) {
	if c.pending == nil {
		c.pending = make(chan hostEvent, 1)
	}
	if !c.fetching {
		c.fetching = true
		pending := c.pending
		go func() {
			src, payload, err := c.link.HostRecv()
			pending <- hostEvent{src: src, payload: payload, err: err}
		}()
	}
	var expired <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		expired = t.C
	}
	select {
	case ev := <-c.pending:
		c.fetching = false
		return ev.src, ev.payload, ev.err
	case <-expired:
		return 0, nil, &transport.TransportError{Kind: transport.FaultStall, Proc: -1,
			Err: fmt.Errorf("no control message within %v", timeout)}
	}
}

// Run executes a job across the member processes and returns the final
// step's result. onStep, if non-nil, observes every step's result on
// the coordinator; returning false stops the job early (workers simply
// receive endJob instead of another stepCmd).
func (c *Coordinator) Run(job Job, onStep func(step int, res *parbh.Result) bool) (*parbh.Result, error) {
	return c.RunFrom(job, 0, onStep)
}

// RunFrom executes a job, replaying steps before from silently: the
// engine runs them (every step's state depends on its predecessors)
// but they are not reported to onStep, because a previous incarnation
// of the job already delivered them before a fault. Cluster jobs never
// integrate particle state, so each step is a deterministic function
// of the job and its index — the replay reproduces bit-identical
// simulated metrics, which is the checkpoint-recovery invariant the
// golden tests pin.
func (c *Coordinator) RunFrom(job Job, from int, onStep func(step int, res *parbh.Result) bool) (*parbh.Result, error) {
	if job.Steps <= 0 {
		return nil, fmt.Errorf("cluster: job needs at least 1 step")
	}
	if len(job.Parts) == 0 {
		return nil, fmt.Errorf("cluster: job has no particles")
	}
	if from < 0 {
		from = 0
	}
	if from >= job.Steps {
		return nil, fmt.Errorf("cluster: resume step %d out of range (job has %d steps)", from, job.Steps)
	}
	c.epoch++
	epoch := c.epoch
	procs := c.link.NumProcs()
	if _, err := assignRanks(job.Ranks, procs); err != nil {
		return nil, err
	}
	for p := 1; p < procs; p++ {
		if err := c.link.HostSend(p, jobStart{Epoch: epoch, Job: job}); err != nil {
			return nil, fmt.Errorf("cluster: starting job on proc %d: %w", p, err)
		}
	}
	eng, err := buildEngine(c.link, epoch, job)
	if err != nil {
		return nil, err
	}
	eng.Machine().SetTracer(c.Tracer)
	// Barrier: every worker must have its engine built and handlers
	// installed before any rank frame can flow, or early frames would
	// hit a link with no machine behind it. Acks from stale epochs —
	// stragglers of a job a previous machine generation abandoned — are
	// skipped, not errors: epoch fencing applies to control traffic too.
	for acks := 0; acks < procs-1; {
		src, payload, err := c.recvHost(c.SetupTimeout)
		if err != nil {
			return nil, fmt.Errorf("cluster: waiting for workers: %w", err)
		}
		ack, ok := payload.(jobReady)
		if !ok {
			return nil, fmt.Errorf("cluster: proc %d sent %T during job setup, want jobReady", src, payload)
		}
		if ack.Epoch != epoch {
			continue // stale job incarnation
		}
		if ack.Err != "" {
			for p := 1; p < procs; p++ {
				c.link.HostSend(p, endJob{Epoch: epoch})
			}
			return nil, fmt.Errorf("cluster: proc %d failed to start job: %s", src, ack.Err)
		}
		acks++
	}
	var last *parbh.Result
	var stepErr error
	for s := 0; s < job.Steps; s++ {
		for p := 1; p < procs; p++ {
			if err := c.link.HostSend(p, stepCmd{Epoch: epoch, Step: int32(s)}); err != nil {
				return nil, fmt.Errorf("cluster: step %d on proc %d: %w", s, p, err)
			}
		}
		res, err := c.runStep(eng)
		if err != nil {
			stepErr = err
			break
		}
		if s < from {
			continue // replayed: reported by the pre-fault incarnation
		}
		last = res
		if onStep != nil && !onStep(s, res) {
			break
		}
	}
	for p := 1; p < procs; p++ {
		if err := c.link.HostSend(p, endJob{Epoch: epoch}); err != nil && stepErr == nil {
			stepErr = fmt.Errorf("cluster: ending job on proc %d: %w", p, err)
		}
	}
	if stepErr != nil {
		return nil, stepErr
	}
	return last, nil
}

// runStep executes one coordinator-side engine step under the step
// watchdog: if the step outlives StepTimeout — a worker died without
// its connection resetting, or frames were dropped on the floor — the
// machine is cancelled via context and the step fails with FaultStall.
func (c *Coordinator) runStep(eng *parbh.Engine) (*parbh.Result, error) {
	if c.StepTimeout <= 0 {
		return runStep(eng)
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.StepTimeout)
	defer cancel()
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			if ctx.Err() == context.DeadlineExceeded {
				eng.Machine().Interrupt(&transport.TransportError{Kind: transport.FaultStall, Proc: -1,
					Err: fmt.Errorf("step exceeded %v: %w", c.StepTimeout, ctx.Err())})
			}
		case <-done:
		}
	}()
	return runStep(eng)
}

// Abort demolishes the coordinator's machine generation ungracefully:
// peers observe the loss and unwind. Used by the supervisor before
// rebuilding; Shutdown remains the graceful path.
func (c *Coordinator) Abort(err error) { c.link.Abort(err) }

// Epoch returns the last job epoch issued by this coordinator.
func (c *Coordinator) Epoch() uint32 { return c.epoch }

// Shutdown releases the worker processes (they exit Serve) and closes
// the coordinator's link.
func (c *Coordinator) Shutdown() error {
	for p := 1; p < c.link.NumProcs(); p++ {
		c.link.HostSend(p, shutdown{})
	}
	return c.link.Close()
}

// Metrics exposes the coordinator link's transport counters.
func (c *Coordinator) Metrics() *transport.Metrics { return c.link.Metrics() }

// buildEngine constructs this process's share of the distributed
// machine and engine for one job. Deterministic given the job, so
// every process bootstraps identical ownership state.
func buildEngine(link transport.Link, epoch uint32, job Job) (*parbh.Engine, error) {
	rn, err := newRankNet(link, job.Ranks, epoch)
	if err != nil {
		return nil, err
	}
	machine := msg.NewNetworkMachine(rn, job.Profile)
	set := &dist.Set{Particles: job.Parts, Domain: job.Domain}
	return parbh.New(machine, set, job.Config)
}

// runStep executes one engine step. Transport failures come back as
// typed errors from StepErr (their TransportError classification is
// what supervisors key retry policy on); a genuine panic in the engine
// is converted to an error too, so a worker reports and rejoins rather
// than crashing its process.
func runStep(eng *parbh.Engine) (res *parbh.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("cluster: step failed: %v", r)
		}
	}()
	res, err = eng.StepErr()
	if err != nil {
		err = fmt.Errorf("cluster: step failed: %w", err)
	}
	return res, err
}

// Serve runs a worker process's control loop until the coordinator
// shuts it down or the transport fails. logf may be nil.
func Serve(link transport.Link, logf func(format string, args ...any)) error {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	for {
		_, payload, err := link.HostRecv()
		if err != nil {
			return fmt.Errorf("cluster: worker control channel: %w", err)
		}
		switch v := payload.(type) {
		case jobStart:
			logf("job %q: %d ranks over %d procs, %d steps, scheme %v",
				v.Job.Name, v.Job.Ranks, link.NumProcs(), v.Job.Steps, v.Job.Config.Scheme)
			eng, err := buildEngine(link, v.Epoch, v.Job)
			if err != nil {
				logf("job %q rejected: %v", v.Job.Name, err)
				if serr := link.HostSend(0, jobReady{Epoch: v.Epoch, Err: err.Error()}); serr != nil {
					return fmt.Errorf("cluster: worker control channel: %w", serr)
				}
				continue
			}
			if err := link.HostSend(0, jobReady{Epoch: v.Epoch}); err != nil {
				return fmt.Errorf("cluster: worker control channel: %w", err)
			}
			if err := serveJob(link, eng, v); err != nil {
				if err == errShutdown {
					logf("shutdown")
					return nil
				}
				return err
			}
			logf("job %q done", v.Job.Name)
		case stepCmd, endJob:
			// Stragglers from a job this worker already left (e.g. the
			// coordinator releasing everyone after a failed start).
		case shutdown:
			logf("shutdown")
			return nil
		default:
			logf("ignoring unexpected control payload %T", payload)
		}
	}
}

// serveJob runs one job's steps as commanded by the coordinator.
func serveJob(link transport.Link, eng *parbh.Engine, js jobStart) error {
	for {
		_, payload, err := link.HostRecv()
		if err != nil {
			return fmt.Errorf("cluster: worker control channel: %w", err)
		}
		switch v := payload.(type) {
		case stepCmd:
			if v.Epoch != js.Epoch {
				continue // stale
			}
			if _, err := runStep(eng); err != nil {
				return err
			}
		case endJob:
			if v.Epoch == js.Epoch {
				return nil
			}
		case shutdown:
			return errShutdown
		default:
			return fmt.Errorf("cluster: unexpected control payload %T during job", payload)
		}
	}
}

// errShutdown propagates a shutdown received mid-job out of serveJob.
var errShutdown = fmt.Errorf("cluster: shutdown requested")
