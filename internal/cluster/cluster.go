package cluster

import (
	"fmt"
	"sync/atomic"

	"repro/internal/dist"
	"repro/internal/msg"
	"repro/internal/parbh"
	"repro/internal/transport"
)

// assignRanks block-partitions ranks over procs: proc i gets a
// contiguous run, earlier procs take the remainder, proc 0 always owns
// rank 0. Identical on every process by construction.
func assignRanks(ranks, procs int) ([]int32, error) {
	if ranks < procs {
		return nil, fmt.Errorf("cluster: %d rank(s) cannot cover %d process(es)", ranks, procs)
	}
	owner := make([]int32, ranks)
	base := ranks / procs
	rem := ranks % procs
	r := 0
	for p := 0; p < procs; p++ {
		n := base
		if p < rem {
			n++
		}
		for i := 0; i < n; i++ {
			owner[r] = int32(p)
			r++
		}
	}
	return owner, nil
}

// RankNet implements msg.Network over a transport.Link for one job: it
// maps ranks to processes, stamps the job epoch on outgoing frames, and
// drops frames from stale epochs (a straggler from a previous job on a
// reused connection must never reach a live mailbox).
type RankNet struct {
	link    transport.Link
	owner   []int32
	local   []int
	epoch   uint32
	handler atomic.Pointer[func(*transport.Frame)]
}

// newRankNet wires a per-job network onto link. The same assignment is
// computed on every process from (ranks, link.NumProcs()).
func newRankNet(link transport.Link, ranks int, epoch uint32) (*RankNet, error) {
	owner, err := assignRanks(ranks, link.NumProcs())
	if err != nil {
		return nil, err
	}
	rn := &RankNet{link: link, owner: owner, epoch: epoch}
	me := int32(link.ProcID())
	for rk, o := range owner {
		if o == me {
			rn.local = append(rn.local, rk)
		}
	}
	link.SetDataHandler(rn.onFrame)
	return rn, nil
}

func (rn *RankNet) onFrame(f *transport.Frame) {
	if f.Epoch != rn.epoch {
		return // stale job incarnation
	}
	if fn := rn.handler.Load(); fn != nil {
		(*fn)(f)
	}
}

// Ranks implements msg.Network.
func (rn *RankNet) Ranks() int { return len(rn.owner) }

// LocalRanks implements msg.Network.
func (rn *RankNet) LocalRanks() []int { return rn.local }

// ProcID implements msg.Network.
func (rn *RankNet) ProcID() int { return rn.link.ProcID() }

// NumProcs implements msg.Network.
func (rn *RankNet) NumProcs() int { return rn.link.NumProcs() }

// SendFrame implements msg.Network.
func (rn *RankNet) SendFrame(f *transport.Frame) error {
	f.Epoch = rn.epoch
	return rn.link.SendData(int(rn.owner[f.Dst]), f)
}

// SetHandler implements msg.Network.
func (rn *RankNet) SetHandler(fn func(*transport.Frame)) { rn.handler.Store(&fn) }

// SetErrorHandler implements msg.Network.
func (rn *RankNet) SetErrorHandler(fn func(error)) { rn.link.SetErrorHandler(fn) }

// HostSend implements msg.Network.
func (rn *RankNet) HostSend(dst int, payload any) error { return rn.link.HostSend(dst, payload) }

// HostRecv implements msg.Network.
func (rn *RankNet) HostRecv() (int, any, error) { return rn.link.HostRecv() }

// Coordinator drives jobs from process 0 of an assembled transport.
type Coordinator struct {
	link  transport.Link
	epoch uint32
}

// NewCoordinator wraps an assembled link (proc 0). For TCP the link
// comes from transport.NewCoordinator + WaitWorkers; tests use a
// transport.MeshNode.
func NewCoordinator(link transport.Link) (*Coordinator, error) {
	if link.ProcID() != 0 {
		return nil, fmt.Errorf("cluster: coordinator must be proc 0, got %d", link.ProcID())
	}
	return &Coordinator{link: link}, nil
}

// Run executes a job across the member processes and returns the final
// step's result. onStep, if non-nil, observes every step's result on
// the coordinator; returning false stops the job early (workers simply
// receive endJob instead of another stepCmd).
func (c *Coordinator) Run(job Job, onStep func(step int, res *parbh.Result) bool) (*parbh.Result, error) {
	if job.Steps <= 0 {
		return nil, fmt.Errorf("cluster: job needs at least 1 step")
	}
	if len(job.Parts) == 0 {
		return nil, fmt.Errorf("cluster: job has no particles")
	}
	c.epoch++
	epoch := c.epoch
	procs := c.link.NumProcs()
	if _, err := assignRanks(job.Ranks, procs); err != nil {
		return nil, err
	}
	for p := 1; p < procs; p++ {
		if err := c.link.HostSend(p, jobStart{Epoch: epoch, Job: job}); err != nil {
			return nil, fmt.Errorf("cluster: starting job on proc %d: %w", p, err)
		}
	}
	eng, err := buildEngine(c.link, epoch, job)
	if err != nil {
		return nil, err
	}
	// Barrier: every worker must have its engine built and handlers
	// installed before any rank frame can flow, or early frames would
	// hit a link with no machine behind it.
	for i := 1; i < procs; i++ {
		src, payload, err := c.link.HostRecv()
		if err != nil {
			return nil, fmt.Errorf("cluster: waiting for workers: %w", err)
		}
		ack, ok := payload.(jobReady)
		if !ok {
			return nil, fmt.Errorf("cluster: proc %d sent %T during job setup, want jobReady", src, payload)
		}
		if ack.Epoch != epoch {
			return nil, fmt.Errorf("cluster: proc %d acknowledged epoch %d, want %d", src, ack.Epoch, epoch)
		}
		if ack.Err != "" {
			for p := 1; p < procs; p++ {
				c.link.HostSend(p, endJob{Epoch: epoch})
			}
			return nil, fmt.Errorf("cluster: proc %d failed to start job: %s", src, ack.Err)
		}
	}
	var last *parbh.Result
	var stepErr error
	for s := 0; s < job.Steps; s++ {
		for p := 1; p < procs; p++ {
			if err := c.link.HostSend(p, stepCmd{Epoch: epoch, Step: int32(s)}); err != nil {
				return nil, fmt.Errorf("cluster: step %d on proc %d: %w", s, p, err)
			}
		}
		res, err := runStep(eng)
		if err != nil {
			stepErr = err
			break
		}
		last = res
		if onStep != nil && !onStep(s, res) {
			break
		}
	}
	for p := 1; p < procs; p++ {
		if err := c.link.HostSend(p, endJob{Epoch: epoch}); err != nil && stepErr == nil {
			stepErr = fmt.Errorf("cluster: ending job on proc %d: %w", p, err)
		}
	}
	if stepErr != nil {
		return nil, stepErr
	}
	return last, nil
}

// Shutdown releases the worker processes (they exit Serve) and closes
// the coordinator's link.
func (c *Coordinator) Shutdown() error {
	for p := 1; p < c.link.NumProcs(); p++ {
		c.link.HostSend(p, shutdown{})
	}
	return c.link.Close()
}

// Metrics exposes the coordinator link's transport counters.
func (c *Coordinator) Metrics() *transport.Metrics { return c.link.Metrics() }

// buildEngine constructs this process's share of the distributed
// machine and engine for one job. Deterministic given the job, so
// every process bootstraps identical ownership state.
func buildEngine(link transport.Link, epoch uint32, job Job) (*parbh.Engine, error) {
	rn, err := newRankNet(link, job.Ranks, epoch)
	if err != nil {
		return nil, err
	}
	machine := msg.NewNetworkMachine(rn, job.Profile)
	set := &dist.Set{Particles: job.Parts, Domain: job.Domain}
	return parbh.New(machine, set, job.Config)
}

// runStep converts an engine panic (transport failure surfaces as one)
// into an error so callers get a clean failure instead of a crash.
func runStep(eng *parbh.Engine) (res *parbh.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("cluster: step failed: %v", r)
		}
	}()
	return eng.Step(), nil
}

// Serve runs a worker process's control loop until the coordinator
// shuts it down or the transport fails. logf may be nil.
func Serve(link transport.Link, logf func(format string, args ...any)) error {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	for {
		_, payload, err := link.HostRecv()
		if err != nil {
			return fmt.Errorf("cluster: worker control channel: %w", err)
		}
		switch v := payload.(type) {
		case jobStart:
			logf("job %q: %d ranks over %d procs, %d steps, scheme %v",
				v.Job.Name, v.Job.Ranks, link.NumProcs(), v.Job.Steps, v.Job.Config.Scheme)
			eng, err := buildEngine(link, v.Epoch, v.Job)
			if err != nil {
				logf("job %q rejected: %v", v.Job.Name, err)
				if serr := link.HostSend(0, jobReady{Epoch: v.Epoch, Err: err.Error()}); serr != nil {
					return fmt.Errorf("cluster: worker control channel: %w", serr)
				}
				continue
			}
			if err := link.HostSend(0, jobReady{Epoch: v.Epoch}); err != nil {
				return fmt.Errorf("cluster: worker control channel: %w", err)
			}
			if err := serveJob(link, eng, v); err != nil {
				if err == errShutdown {
					logf("shutdown")
					return nil
				}
				return err
			}
			logf("job %q done", v.Job.Name)
		case stepCmd, endJob:
			// Stragglers from a job this worker already left (e.g. the
			// coordinator releasing everyone after a failed start).
		case shutdown:
			logf("shutdown")
			return nil
		default:
			logf("ignoring unexpected control payload %T", payload)
		}
	}
}

// serveJob runs one job's steps as commanded by the coordinator.
func serveJob(link transport.Link, eng *parbh.Engine, js jobStart) error {
	for {
		_, payload, err := link.HostRecv()
		if err != nil {
			return fmt.Errorf("cluster: worker control channel: %w", err)
		}
		switch v := payload.(type) {
		case stepCmd:
			if v.Epoch != js.Epoch {
				continue // stale
			}
			if _, err := runStep(eng); err != nil {
				return err
			}
		case endJob:
			if v.Epoch == js.Epoch {
				return nil
			}
		case shutdown:
			return errShutdown
		default:
			return fmt.Errorf("cluster: unexpected control payload %T during job", payload)
		}
	}
}

// errShutdown propagates a shutdown received mid-job out of serveJob.
var errShutdown = fmt.Errorf("cluster: shutdown requested")
