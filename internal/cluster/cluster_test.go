package cluster

import (
	"sync"
	"testing"

	"repro/internal/dist"
	"repro/internal/msg"
	"repro/internal/parbh"
	"repro/internal/transport"
)

// testJob is the fixture shared by the cross-transport golden tests:
// small enough to run in CI, large enough that every protocol (branch
// exchange, shipping, load balance) carries real traffic.
func testJob(cfg parbh.Config, steps int) (Job, *dist.Set) {
	s := dist.MustNamed("g", 1200, 99)
	return Job{
		Name:    "golden",
		Ranks:   8,
		Steps:   steps,
		Profile: msg.CM5(),
		Config:  cfg,
		Domain:  s.Domain,
		Parts:   s.Particles,
	}, s
}

// inprocResults runs the same job on the classic single-process machine.
func inprocResults(t *testing.T, job Job) []*parbh.Result {
	t.Helper()
	machine := msg.NewMachine(job.Ranks, job.Profile)
	set := &dist.Set{Particles: job.Parts, Domain: job.Domain}
	eng, err := parbh.New(machine, set, job.Config)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*parbh.Result, job.Steps)
	for i := range out {
		out[i] = eng.Step()
	}
	return out
}

// meshResults runs the job across procs in-memory transport nodes, all
// payloads passing through the codec exactly as TCP would send them.
func meshResults(t *testing.T, job Job, procs int) []*parbh.Result {
	t.Helper()
	nodes := transport.NewMesh(procs)
	var wg sync.WaitGroup
	for p := 1; p < procs; p++ {
		wg.Add(1)
		go func(link transport.Link) {
			defer wg.Done()
			if err := Serve(link, nil); err != nil {
				t.Error(err)
			}
		}(nodes[p])
	}
	coord, err := NewCoordinator(nodes[0])
	if err != nil {
		t.Fatal(err)
	}
	var out []*parbh.Result
	_, err = coord.Run(job, func(step int, res *parbh.Result) bool {
		out = append(out, res)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Shutdown(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	return out
}

// compareBitIdentical asserts the distributed result carries exactly
// the in-proc simulated metrics. simTime selects whether the simulated
// completion time itself is compared: it is fully deterministic for
// data shipping's wave-synchronous protocol, while function shipping's
// polling order jitters SimTime (documented in parbh's host
// determinism tests) — stats and comm volumes are exact either way.
func compareBitIdentical(t *testing.T, want, got *parbh.Result, step int, simTime bool) {
	t.Helper()
	if got.Stats != want.Stats {
		t.Errorf("step %d: interaction stats = %+v, want %+v", step, got.Stats, want.Stats)
	}
	if got.CommWords != want.CommWords {
		t.Errorf("step %d: comm words = %d, want %d", step, got.CommWords, want.CommWords)
	}
	if got.CommMessages != want.CommMessages {
		t.Errorf("step %d: comm messages = %d, want %d", step, got.CommMessages, want.CommMessages)
	}
	if got.BranchNodes != want.BranchNodes {
		t.Errorf("step %d: branch nodes = %d, want %d", step, got.BranchNodes, want.BranchNodes)
	}
	if simTime && got.SimTime != want.SimTime {
		t.Errorf("step %d: simulated time = %.17g, want %.17g", step, got.SimTime, want.SimTime)
	}
	if simTime && got.Imbalance != want.Imbalance {
		t.Errorf("step %d: imbalance = %.17g, want %.17g", step, got.Imbalance, want.Imbalance)
	}
	if len(got.Accels) != len(want.Accels) {
		t.Fatalf("step %d: %d accels, want %d", step, len(got.Accels), len(want.Accels))
	}
	bad := 0
	for i := range want.Accels {
		if got.Accels[i] != want.Accels[i] {
			bad++
		}
	}
	if bad > 0 {
		t.Errorf("step %d: %d/%d accelerations differ from in-proc run", step, bad, len(want.Accels))
	}
}

// TestCrossTransportGoldenDPDADataShipping pins the full two-clock
// guarantee: a DPDA data-shipping job split across processes yields
// bit-identical simulated time, interaction stats, comm volumes, and
// accelerations to the in-proc run.
func TestCrossTransportGoldenDPDADataShipping(t *testing.T) {
	cfg := parbh.Config{
		Scheme:   parbh.DPDA,
		Mode:     parbh.ForceMode,
		Shipping: parbh.DataShipping,
		Alpha:    0.67,
		Eps:      0.01,
	}
	job, _ := testJob(cfg, 2)
	want := inprocResults(t, job)
	for _, procs := range []int{2, 3} {
		got := meshResults(t, job, procs)
		if len(got) != len(want) {
			t.Fatalf("procs=%d: %d steps, want %d", procs, len(got), len(want))
		}
		for i := range want {
			compareBitIdentical(t, want[i], got[i], i, true)
		}
	}
}

// TestCrossTransportGoldenDPDAFunctionShipping pins the
// function-shipping path: stats, comm volumes, and accelerations are
// exact (SimTime carries the documented service-order jitter and is
// not compared).
func TestCrossTransportGoldenDPDAFunctionShipping(t *testing.T) {
	cfg := parbh.Config{
		Scheme: parbh.DPDA,
		Mode:   parbh.ForceMode,
		Alpha:  0.67,
		Eps:    0.01,
	}
	job, _ := testJob(cfg, 2)
	want := inprocResults(t, job)
	got := meshResults(t, job, 2)
	for i := range want {
		compareBitIdentical(t, want[i], got[i], i, false)
	}
}

// TestCrossTransportGoldenSPSA covers the static scheme including the
// broadcast tree build.
func TestCrossTransportGoldenSPSA(t *testing.T) {
	cfg := parbh.Config{
		Scheme:   parbh.SPSA,
		Mode:     parbh.ForceMode,
		Shipping: parbh.DataShipping,
		Alpha:    0.67,
		Eps:      0.01,
		GridLog2: 2,
	}
	job, _ := testJob(cfg, 1)
	want := inprocResults(t, job)
	got := meshResults(t, job, 2)
	compareBitIdentical(t, want[0], got[0], 0, true)
}

// TestCrossTransportGoldenSPDA covers the dynamic-assignment scheme
// with the non-replicated tree build (tagBranchUp protocol on the
// wire) and potential mode (expansion payloads).
func TestCrossTransportGoldenSPDA(t *testing.T) {
	cfg := parbh.Config{
		Scheme:    parbh.SPDA,
		Mode:      parbh.PotentialMode,
		Shipping:  parbh.DataShipping,
		Alpha:     0.67,
		Degree:    2,
		GridLog2:  2,
		TreeBuild: parbh.NonReplicatedBuild,
	}
	job, _ := testJob(cfg, 2)
	want := inprocResults(t, job)
	got := meshResults(t, job, 2)
	for i := range want {
		if got[i].Stats != want[i].Stats {
			t.Errorf("step %d: interaction stats = %+v, want %+v", i, got[i].Stats, want[i].Stats)
		}
		if got[i].CommWords != want[i].CommWords {
			t.Errorf("step %d: comm words = %d, want %d", i, got[i].CommWords, want[i].CommWords)
		}
		if got[i].SimTime != want[i].SimTime {
			t.Errorf("step %d: simulated time = %.17g, want %.17g", i, got[i].SimTime, want[i].SimTime)
		}
		for j := range want[i].Potentials {
			if got[i].Potentials[j] != want[i].Potentials[j] {
				t.Errorf("step %d: potential %d = %g, want %g", i, j, got[i].Potentials[j], want[i].Potentials[j])
				break
			}
		}
	}
}

// TestAssignRanks pins the block partition: contiguous, exhaustive,
// proc 0 owns rank 0.
func TestAssignRanks(t *testing.T) {
	owner, err := assignRanks(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{0, 0, 0, 1, 1, 1, 2, 2}
	for i := range want {
		if owner[i] != want[i] {
			t.Fatalf("owner = %v, want %v", owner, want)
		}
	}
	if _, err := assignRanks(2, 3); err == nil {
		t.Fatal("expected error for more procs than ranks")
	}
}
