package cluster

import (
	"testing"

	"repro/internal/parbh"
	"repro/internal/transport"
)

// TestCrossTransportGoldenLET pins the full two-clock guarantee for the
// LET engine: a DPDA LET job split across processes yields bit-identical
// simulated time, interaction stats, comm volumes, and accelerations to
// the in-proc run. Unlike function shipping, the LET protocol is pure
// collectives — no mid-phase polling — so SimTime itself is exact and is
// compared. Two steps make the warm path (cache markers on the wire)
// cross the transport too.
func TestCrossTransportGoldenLET(t *testing.T) {
	cfg := parbh.Config{
		Scheme:   parbh.DPDA,
		Mode:     parbh.ForceMode,
		Shipping: parbh.LETShipping,
		Alpha:    0.67,
		Eps:      0.01,
	}
	job, _ := testJob(cfg, 2)
	want := inprocResults(t, job)
	if want[1].LETCacheHits == 0 {
		t.Error("warm step served no sections from cache")
	}
	for _, procs := range []int{2, 3} {
		got := meshResults(t, job, procs)
		if len(got) != len(want) {
			t.Fatalf("procs=%d: %d steps, want %d", procs, len(got), len(want))
		}
		for i := range want {
			compareBitIdentical(t, want[i], got[i], i, true)
		}
	}
}

// TestGoldenRecoveryLETCorrupt wires FaultLink chaos through the LET
// bulk exchange: a corrupted LET reply surfaces as a retryable transport
// fault, the Supervisor rebuilds the machine, and the replayed run —
// caches rebuilt from step 0 — converges to metrics bit-identical to the
// fault-free run.
func TestGoldenRecoveryLETCorrupt(t *testing.T) {
	cfg := parbh.Config{
		Scheme:   parbh.SPSA,
		Mode:     parbh.ForceMode,
		Shipping: parbh.LETShipping,
		Alpha:    0.67,
		Eps:      0.01,
		GridLog2: 2,
	}
	job, _ := testJob(cfg, 2)
	want := inprocResults(t, job)
	h := newChaosHarness(2, func(gen int) []transport.FaultPlan {
		if gen == 0 {
			return []transport.FaultPlan{{}, {Seed: 41 + chaosSeed, CorruptProb: 0.05}}
		}
		return noFaults(2)
	})
	got, events := runSupervised(t, h, job, nil)
	if h.generation() < 2 {
		t.Fatalf("corruption never forced a rebuild (generations=%d)", h.generation())
	}
	if len(events) == 0 {
		t.Fatal("no recovery events observed")
	}
	if n := h.link(0, 1).Metrics().FaultsCorrupted.Load(); n == 0 {
		t.Error("corruption plan injected nothing")
	}
	for i := range want {
		compareBitIdentical(t, want[i], got[i], i, true)
	}
}
