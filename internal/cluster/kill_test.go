package cluster

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/msg"
	"repro/internal/parbh"
)

// TestWorkerSIGKILLRecoveryGolden is the process-level fault drill: a
// real nbodyworker process is SIGKILLed mid-job, a replacement dials
// in, and the supervised coordinator finishes the run with a GOLDEN
// line bit-identical to the in-proc reference. No step is reported
// twice — resume replays silently — and the coordinator process never
// dies, it recovers.
func TestWorkerSIGKILLRecoveryGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and launches real binaries")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	tmp := t.TempDir()
	nbody := filepath.Join(tmp, "nbody")
	worker := filepath.Join(tmp, "nbodyworker")
	for bin, pkg := range map[string]string{nbody: "./cmd/nbody", worker: "./cmd/nbodyworker"} {
		cmd := exec.Command(goBin, "build", "-o", bin, pkg)
		cmd.Dir = "../.." // module root
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	startWorker := func() *exec.Cmd {
		cmd := exec.CommandContext(ctx, worker, "-join", addr, "-dial-retries", "60", "-q")
		cmd.Stdout, cmd.Stderr = nil, nil
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		return cmd
	}
	victim := startWorker()

	const steps = 4
	coord := exec.CommandContext(ctx, nbody,
		"-transport", "tcp", "-transport-listen", addr, "-transport-workers", "1",
		"-transport-retries", "3",
		"-dist", "g", "-n", "4000", "-seed", "99", "-p", "8",
		"-scheme", "dpda", "-shipping", "data", "-steps", fmt.Sprint(steps),
		"-machine", "cm5", "-alpha", "0.67", "-eps", "0.01")
	stdout, err := coord.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	coord.Stderr = &stderr
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}

	// Scan the coordinator's live output: the moment the first step
	// reports, SIGKILL the worker and launch its replacement. The kill
	// lands while later steps are in flight, so the coordinator sees the
	// connection die mid-computation.
	var lines []string
	var replacement *exec.Cmd
	killed := false
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		lines = append(lines, line)
		if !killed && strings.HasPrefix(line, "step  1:") {
			killed = true
			if err := victim.Process.Kill(); err != nil {
				t.Fatalf("kill worker: %v", err)
			}
			victim.Wait() // reap; a kill error is the point
			replacement = startWorker()
		}
	}
	if err := coord.Wait(); err != nil {
		t.Fatalf("coordinator: %v\nstdout:\n%s\nstderr:\n%s",
			err, strings.Join(lines, "\n"), stderr.String())
	}
	if !killed {
		t.Fatalf("job finished before the kill landed; output:\n%s", strings.Join(lines, "\n"))
	}
	if replacement != nil {
		if err := replacement.Wait(); err != nil {
			t.Errorf("replacement worker: %v", err)
		}
	}

	if !strings.Contains(stderr.String(), "recovering from") {
		t.Errorf("coordinator never logged a recovery:\n%s", stderr.String())
	}
	var golden string
	stepSeen := make(map[string]int)
	for _, line := range lines {
		if strings.HasPrefix(line, "GOLDEN ") {
			golden = line
		}
		if strings.HasPrefix(line, "step ") {
			key := strings.SplitN(line, ":", 2)[0]
			stepSeen[key]++
		}
	}
	for key, n := range stepSeen {
		if n != 1 {
			t.Errorf("%q reported %d times; replay must be silent", key, n)
		}
	}
	if len(stepSeen) != steps {
		t.Errorf("saw %d distinct steps, want %d", len(stepSeen), steps)
	}
	if golden == "" {
		t.Fatalf("no GOLDEN line:\n%s", strings.Join(lines, "\n"))
	}

	var simtime float64
	var mac, pc, pp, words, msgs int64
	if _, err := fmt.Sscanf(golden, "GOLDEN simtime=%g mac=%d pc=%d pp=%d words=%d msgs=%d",
		&simtime, &mac, &pc, &pp, &words, &msgs); err != nil {
		t.Fatalf("parsing %q: %v", golden, err)
	}
	cfg := parbh.Config{
		Scheme:   parbh.DPDA,
		Mode:     parbh.ForceMode,
		Shipping: parbh.DataShipping,
		Alpha:    0.67,
		Degree:   4,
		Eps:      0.01,
		GridLog2: 3,
		BinSize:  100,
	}
	set := dist.MustNamed("g", 4000, 99)
	job := Job{
		Name:    "kill",
		Ranks:   8,
		Steps:   steps,
		Profile: msg.CM5(),
		Config:  cfg,
		Domain:  set.Domain,
		Parts:   set.Particles,
	}
	ref := inprocResults(t, job)
	want := ref[len(ref)-1]
	if simtime != want.SimTime {
		t.Errorf("simtime = %.17g, want %.17g", simtime, want.SimTime)
	}
	if mac != want.Stats.MACTests || pc != want.Stats.PC || pp != want.Stats.PP {
		t.Errorf("interactions = mac %d pc %d pp %d, want mac %d pc %d pp %d",
			mac, pc, pp, want.Stats.MACTests, want.Stats.PC, want.Stats.PP)
	}
	if words != want.CommWords || msgs != want.CommMessages {
		t.Errorf("comm = %d words %d msgs, want %d words %d msgs",
			words, msgs, want.CommWords, want.CommMessages)
	}
}
