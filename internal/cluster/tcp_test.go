package cluster

import (
	"sync"
	"testing"
	"time"

	"repro/internal/parbh"
	"repro/internal/transport"
)

// tcpResults runs the job across procs real TCP nodes on loopback —
// the same wiring as meshResults, but every frame crosses a socket.
func tcpResults(t *testing.T, job Job, procs int) []*parbh.Result {
	t.Helper()
	coord, err := transport.NewCoordinator(transport.Config{ListenAddr: "127.0.0.1:0"}, procs)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for p := 1; p < procs; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			node, err := transport.Join(coord.Addr(), transport.Config{ListenAddr: "127.0.0.1:0"})
			if err != nil {
				t.Error(err)
				return
			}
			defer node.Close()
			if err := Serve(node, nil); err != nil {
				t.Error(err)
			}
		}()
	}
	if err := coord.WaitWorkers(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	c, err := NewCoordinator(coord)
	if err != nil {
		t.Fatal(err)
	}
	var out []*parbh.Result
	_, err = c.Run(job, func(step int, res *parbh.Result) bool {
		out = append(out, res)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	return out
}

// TestCrossTransportGoldenDPDAOverTCP is the mesh golden test on real
// sockets: a DPDA data-shipping job split over three processes worth of
// TCP nodes yields bit-identical simulated time, stats, comm volumes,
// and accelerations to the in-proc machine.
func TestCrossTransportGoldenDPDAOverTCP(t *testing.T) {
	cfg := parbh.Config{
		Scheme:   parbh.DPDA,
		Mode:     parbh.ForceMode,
		Shipping: parbh.DataShipping,
		Alpha:    0.67,
		Eps:      0.01,
	}
	job, _ := testJob(cfg, 2)
	want := inprocResults(t, job)
	got := tcpResults(t, job, 3)
	if len(got) != len(want) {
		t.Fatalf("%d steps over TCP, want %d", len(got), len(want))
	}
	for i := range want {
		compareBitIdentical(t, want[i], got[i], i, true)
	}
}
