package cluster

import (
	"errors"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/parbh"
	"repro/internal/transport"
)

// chaosSeed offsets every fault plan's RNG seed; the CI chaos matrix
// sweeps CHAOS_SEED across fault schedules. Any seed must converge to
// the bit-identical golden — the invariant holds for every schedule,
// not for one blessed fixture.
var chaosSeed = func() int64 {
	v, _ := strconv.ParseInt(os.Getenv("CHAOS_SEED"), 10, 64)
	return v
}()

// chaosHarness builds a Supervisor whose assembler constructs a fresh
// in-memory mesh per machine generation, wrapping every endpoint in a
// FaultLink with the plan chosen by plans(generation). Worker goroutines
// Serve each generation and unwind when it dies — faulted generations
// end their Serve with an error, which is the point.
type chaosHarness struct {
	procs int
	plans func(gen int) []transport.FaultPlan

	mu    sync.Mutex
	gens  int
	nodes [][]*transport.MeshNode
	links [][]*transport.FaultLink
	wg    sync.WaitGroup

	sup *Supervisor
}

func newChaosHarness(procs int, plans func(gen int) []transport.FaultPlan) *chaosHarness {
	h := &chaosHarness{procs: procs, plans: plans}
	h.sup = NewSupervisor(func() (*Coordinator, error) {
		h.mu.Lock()
		gen := h.gens
		h.gens++
		h.mu.Unlock()
		nodes := transport.NewMesh(procs)
		pl := plans(gen)
		links := make([]*transport.FaultLink, procs)
		for i := range nodes {
			links[i] = transport.NewFaultLink(nodes[i], pl[i])
		}
		h.mu.Lock()
		h.nodes = append(h.nodes, nodes)
		h.links = append(h.links, links)
		h.mu.Unlock()
		for p := 1; p < procs; p++ {
			h.wg.Add(1)
			go func(link transport.Link) {
				defer h.wg.Done()
				// Mirror ServeLoop: Abort on failure so peers observe
				// the death instead of blocking on missing frames.
				if err := Serve(link, nil); err != nil {
					link.Abort(err)
				} else {
					link.Close()
				}
			}(links[p])
		}
		return NewCoordinator(links[0])
	})
	h.sup.MaxRetries = 5
	h.sup.BackoffBase = time.Millisecond
	h.sup.BackoffMax = 10 * time.Millisecond
	return h
}

// generation returns how many machine generations have been assembled.
func (h *chaosHarness) generation() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.gens
}

// link returns endpoint proc of generation gen.
func (h *chaosHarness) link(gen, proc int) *transport.FaultLink {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.links[gen][proc]
}

// kill crashes proc of generation gen: aborting the raw mesh endpoint
// (below the FaultLink wrapper) is the in-memory equivalent of a
// SIGKILLed worker process — every peer observes peer loss.
func (h *chaosHarness) kill(gen, proc int) {
	h.mu.Lock()
	node := h.nodes[gen][proc]
	h.mu.Unlock()
	node.Abort(errors.New("injected worker crash"))
}

// noFaults is the all-clean plan for one generation.
func noFaults(procs int) []transport.FaultPlan {
	return make([]transport.FaultPlan, procs)
}

// runSupervised drives the job through the harness, asserting that
// every step is reported exactly once (replayed steps must stay silent)
// and that the run eventually succeeds. It returns the per-step results
// and the recovery events observed.
func runSupervised(t *testing.T, h *chaosHarness, job Job, onStep func(step int)) ([]*parbh.Result, []RecoveryEvent) {
	t.Helper()
	results := make([]*parbh.Result, job.Steps)
	var events []RecoveryEvent
	h.sup.OnRecovery = func(ev RecoveryEvent) { events = append(events, ev) }
	_, err := h.sup.Run(job, func(step int, res *parbh.Result) bool {
		if step < 0 || step >= job.Steps {
			t.Errorf("step %d out of range", step)
			return false
		}
		if results[step] != nil {
			t.Errorf("step %d reported twice (checkpoint replay leaked into the stream)", step)
		}
		results[step] = res
		if onStep != nil {
			onStep(step)
		}
		return true
	})
	if err != nil {
		t.Fatalf("supervised run failed: %v", err)
	}
	if err := h.sup.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	h.wg.Wait()
	for i, r := range results {
		if r == nil {
			t.Fatalf("step %d never reported", i)
		}
	}
	return results, events
}

// TestGoldenRecoveryDPDAPartition: a full link partition mid-run on a
// worker demolishes the generation; the rebuilt machine resumes by
// silent replay and the reported results are bit-identical to a
// fault-free in-proc run — the headline invariant of the failure model.
func TestGoldenRecoveryDPDAPartition(t *testing.T) {
	cfg := parbh.Config{
		Scheme:   parbh.DPDA,
		Mode:     parbh.ForceMode,
		Shipping: parbh.DataShipping,
		Alpha:    0.67,
		Eps:      0.01,
	}
	job, _ := testJob(cfg, 3)
	want := inprocResults(t, job)
	h := newChaosHarness(2, func(gen int) []transport.FaultPlan {
		if gen == 0 {
			return []transport.FaultPlan{{}, {Seed: 11 + chaosSeed, PartitionAfter: 40}}
		}
		return noFaults(2)
	})
	got, events := runSupervised(t, h, job, nil)
	if h.generation() < 2 {
		t.Fatalf("partition never forced a rebuild (generations=%d)", h.generation())
	}
	if len(events) == 0 {
		t.Fatal("no recovery events observed")
	}
	for i := range want {
		compareBitIdentical(t, want[i], got[i], i, true)
	}
}

// TestGoldenRecoverySPSAWorkerKill: an aborted worker link — the
// in-memory equivalent of SIGKILL — is detected as peer loss; the job
// resumes on a rebuilt machine with bit-identical metrics.
func TestGoldenRecoverySPSAWorkerKill(t *testing.T) {
	cfg := parbh.Config{
		Scheme:   parbh.SPSA,
		Mode:     parbh.ForceMode,
		Shipping: parbh.DataShipping,
		Alpha:    0.67,
		Eps:      0.01,
		GridLog2: 2,
	}
	job, _ := testJob(cfg, 2)
	want := inprocResults(t, job)
	h := newChaosHarness(2, func(gen int) []transport.FaultPlan { return noFaults(2) })
	killed := false
	got, events := runSupervised(t, h, job, func(step int) {
		if step == 0 && !killed {
			killed = true
			h.kill(0, 1)
		}
	})
	if h.generation() < 2 {
		t.Fatalf("worker kill never forced a rebuild (generations=%d)", h.generation())
	}
	if len(events) == 0 {
		t.Fatal("no recovery events observed")
	}
	if events[0].Fault != transport.FaultPeerLost {
		t.Errorf("recovery fault = %v, want peer_lost", events[0].Fault)
	}
	if events[0].ResumeStep != 1 {
		t.Errorf("resume step = %d, want 1 (step 0 was already reported)", events[0].ResumeStep)
	}
	for i := range want {
		compareBitIdentical(t, want[i], got[i], i, true)
	}
}

// TestGoldenRecoverySPDACorrupt: an injected corrupt frame fails the
// receiving worker exactly as an undecodable TCP body would; recovery
// still converges to the fault-free metrics.
func TestGoldenRecoverySPDACorrupt(t *testing.T) {
	cfg := parbh.Config{
		Scheme:    parbh.SPDA,
		Mode:      parbh.ForceMode,
		Shipping:  parbh.DataShipping,
		Alpha:     0.67,
		Eps:       0.01,
		GridLog2:  2,
		TreeBuild: parbh.NonReplicatedBuild,
	}
	job, _ := testJob(cfg, 2)
	want := inprocResults(t, job)
	h := newChaosHarness(2, func(gen int) []transport.FaultPlan {
		if gen == 0 {
			return []transport.FaultPlan{{}, {Seed: 3 + chaosSeed, CorruptProb: 0.05}}
		}
		return noFaults(2)
	})
	got, events := runSupervised(t, h, job, nil)
	if h.generation() < 2 {
		t.Fatalf("corruption never forced a rebuild (generations=%d)", h.generation())
	}
	if len(events) == 0 {
		t.Fatal("no recovery events observed")
	}
	if n := h.link(0, 1).Metrics().FaultsCorrupted.Load(); n == 0 {
		t.Error("corruption plan injected nothing")
	}
	for i := range want {
		compareBitIdentical(t, want[i], got[i], i, true)
	}
}

// TestGoldenRecoveryFaultGauntlet is the acceptance scenario: drop,
// partition, and a worker kill across consecutive generations, with the
// stall watchdog converting silent drops into step timeouts. The job
// still finishes with simulated metrics bit-identical to the fault-free
// run, every step reported exactly once.
func TestGoldenRecoveryFaultGauntlet(t *testing.T) {
	cfg := parbh.Config{
		Scheme:   parbh.DPDA,
		Mode:     parbh.ForceMode,
		Shipping: parbh.DataShipping,
		Alpha:    0.67,
		Eps:      0.01,
	}
	job, _ := testJob(cfg, 4)
	want := inprocResults(t, job)
	h := newChaosHarness(2, func(gen int) []transport.FaultPlan {
		switch gen {
		case 0:
			// Generation 0: total partition on the worker mid-step.
			return []transport.FaultPlan{{}, {Seed: 17 + chaosSeed, PartitionAfter: 60}}
		case 1:
			// Generation 1: the coordinator silently drops outgoing
			// frames; only the stall watchdog can notice.
			return []transport.FaultPlan{{Seed: 29 + chaosSeed, DropProb: 0.08}, {}}
		default:
			return noFaults(2)
		}
	})
	h.sup.StepTimeout = 2 * time.Second
	killed := false
	got, events := runSupervised(t, h, job, func(step int) {
		// Generation 2+: kill the worker once after a step completes.
		if h.generation() >= 3 && !killed {
			killed = true
			h.kill(h.generation()-1, 1)
		}
	})
	if h.generation() < 4 {
		t.Fatalf("gauntlet used %d generations, want >= 4", h.generation())
	}
	if len(events) < 3 {
		t.Fatalf("observed %d recovery events, want >= 3: %+v", len(events), events)
	}
	if n := h.link(1, 0).Metrics().FaultsDropped.Load(); n == 0 {
		t.Error("drop plan injected nothing in generation 1")
	}
	for i := range want {
		compareBitIdentical(t, want[i], got[i], i, true)
	}
}
