package cluster

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/parbh"
)

// TestMultiProcessExecGolden is the end-to-end acceptance test: the
// real nbody and nbodyworker binaries split a DPDA job across three OS
// processes over loopback TCP, and the GOLDEN line the coordinator
// prints carries exactly the simulated metrics of the in-proc run
// computed here in-test. This is the cross-transport golden with
// nothing shared — no memory, no scheduler, only sockets.
func TestMultiProcessExecGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and launches real binaries")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	tmp := t.TempDir()
	nbody := filepath.Join(tmp, "nbody")
	worker := filepath.Join(tmp, "nbodyworker")
	for bin, pkg := range map[string]string{nbody: "./cmd/nbody", worker: "./cmd/nbodyworker"} {
		cmd := exec.Command(goBin, "build", "-o", bin, pkg)
		cmd.Dir = "../.." // module root
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}

	// Reserve a loopback port for the coordinator; workers dial it with
	// a generous retry budget, so launch order doesn't matter.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	var workers []*exec.Cmd
	var workerOut []*bytes.Buffer
	for i := 0; i < 2; i++ {
		cmd := exec.CommandContext(ctx, worker, "-join", addr, "-dial-retries", "40", "-q")
		buf := &bytes.Buffer{}
		cmd.Stdout, cmd.Stderr = buf, buf
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		workers = append(workers, cmd)
		workerOut = append(workerOut, buf)
	}
	coord := exec.CommandContext(ctx, nbody,
		"-transport", "tcp", "-transport-listen", addr, "-transport-workers", "2",
		"-dist", "g", "-n", "1200", "-seed", "99", "-p", "8",
		"-scheme", "dpda", "-shipping", "data", "-steps", "2",
		"-machine", "cm5", "-alpha", "0.67", "-eps", "0.01")
	out, err := coord.CombinedOutput()
	if err != nil {
		t.Fatalf("coordinator: %v\n%s", err, out)
	}
	for i, cmd := range workers {
		if err := cmd.Wait(); err != nil {
			t.Errorf("worker %d: %v\n%s", i, err, workerOut[i].String())
		}
	}

	var golden string
	sc := bufio.NewScanner(bytes.NewReader(out))
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "GOLDEN ") {
			golden = sc.Text()
		}
	}
	if golden == "" {
		t.Fatalf("no GOLDEN line in coordinator output:\n%s", out)
	}
	var simtime float64
	var mac, pc, pp, words, msgs int64
	if _, err := fmt.Sscanf(golden, "GOLDEN simtime=%g mac=%d pc=%d pp=%d words=%d msgs=%d",
		&simtime, &mac, &pc, &pp, &words, &msgs); err != nil {
		t.Fatalf("parsing %q: %v", golden, err)
	}

	// The in-proc reference, configured exactly as the CLI flags above
	// configure the coordinator (including flag defaults the DPDA data
	// path ignores, for faithfulness).
	cfg := parbh.Config{
		Scheme:   parbh.DPDA,
		Mode:     parbh.ForceMode,
		Shipping: parbh.DataShipping,
		Alpha:    0.67,
		Degree:   4,
		Eps:      0.01,
		GridLog2: 3,
		BinSize:  100,
	}
	job, _ := testJob(cfg, 2)
	ref := inprocResults(t, job)
	want := ref[len(ref)-1]
	// %.17g round-trips float64 exactly, so this is a bit comparison.
	if simtime != want.SimTime {
		t.Errorf("simtime = %.17g, want %.17g", simtime, want.SimTime)
	}
	if mac != want.Stats.MACTests || pc != want.Stats.PC || pp != want.Stats.PP {
		t.Errorf("interactions = mac %d pc %d pp %d, want mac %d pc %d pp %d",
			mac, pc, pp, want.Stats.MACTests, want.Stats.PC, want.Stats.PP)
	}
	if words != want.CommWords || msgs != want.CommMessages {
		t.Errorf("comm = %d words %d msgs, want %d words %d msgs",
			words, msgs, want.CommWords, want.CommMessages)
	}
}
