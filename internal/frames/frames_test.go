package frames_test

import (
	"errors"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/frames"
)

// mkFrame builds a deterministic frame: step 0 lays particles out from
// the seed, later steps displace every coordinate by a small amount so
// the XOR delta path (shared high bytes) is exercised the way a real
// simulation exercises it.
func mkFrame(step int64, n int, seed int64) *frames.Frame {
	rng := rand.New(rand.NewSource(seed))
	f := &frames.Frame{}
	f.Meta = frames.Meta{
		Step:        step,
		Time:        float64(step) * 0.0625,
		SimTime:     1.5 * float64(step),
		MachineTime: 2.25 * float64(step),
		Energy:      -0.5 + 1e-9*float64(step),
		Efficiency:  0.75,
		Imbalance:   1.0 + 1e-3*float64(step),
		CommWords:   100 * step,
		MACTests:    1000 * step,
		PC:          7 * step,
		PP:          11 * step,
	}
	f.Meta.Domain.Min.X, f.Meta.Domain.Min.Y, f.Meta.Domain.Min.Z = -1, -1, -1
	f.Meta.Domain.Max.X, f.Meta.Domain.Max.Y, f.Meta.Domain.Max.Z = 1, 1, 1
	d := 1e-7 * float64(step)
	p := &f.Parts
	for i := 0; i < n; i++ {
		p.ID = append(p.ID, int32(i))
		p.Mass = append(p.Mass, rng.Float64())
		p.PosX = append(p.PosX, rng.NormFloat64()+d)
		p.PosY = append(p.PosY, rng.NormFloat64()-d)
		p.PosZ = append(p.PosZ, rng.NormFloat64()+2*d)
		p.VelX = append(p.VelX, rng.NormFloat64()*1e-3)
		p.VelY = append(p.VelY, rng.NormFloat64()*1e-3)
		p.VelZ = append(p.VelZ, rng.NormFloat64()*1e-3)
	}
	return f
}

// cloneFrame deep-copies a frame the reader may reuse on the next Next.
func cloneFrame(f *frames.Frame) *frames.Frame {
	cp := &frames.Frame{Meta: f.Meta}
	cp.Parts.ID = append([]int32(nil), f.Parts.ID...)
	cp.Parts.Mass = append([]float64(nil), f.Parts.Mass...)
	cp.Parts.PosX = append([]float64(nil), f.Parts.PosX...)
	cp.Parts.PosY = append([]float64(nil), f.Parts.PosY...)
	cp.Parts.PosZ = append([]float64(nil), f.Parts.PosZ...)
	cp.Parts.VelX = append([]float64(nil), f.Parts.VelX...)
	cp.Parts.VelY = append([]float64(nil), f.Parts.VelY...)
	cp.Parts.VelZ = append([]float64(nil), f.Parts.VelZ...)
	return cp
}

// sameBits asserts bit-exact equality of two frames, column by column.
func sameBits(t *testing.T, want, got *frames.Frame) {
	t.Helper()
	if want.Meta != got.Meta {
		t.Fatalf("meta mismatch: want %+v got %+v", want.Meta, got.Meta)
	}
	if want.Parts.Len() != got.Parts.Len() {
		t.Fatalf("n mismatch: want %d got %d", want.Parts.Len(), got.Parts.Len())
	}
	for i := range want.Parts.ID {
		if want.Parts.ID[i] != got.Parts.ID[i] {
			t.Fatalf("id[%d]: want %d got %d", i, want.Parts.ID[i], got.Parts.ID[i])
		}
	}
	cols := func(f *frames.Frame) [][]float64 {
		return [][]float64{f.Parts.Mass, f.Parts.PosX, f.Parts.PosY, f.Parts.PosZ,
			f.Parts.VelX, f.Parts.VelY, f.Parts.VelZ}
	}
	wc, gc := cols(want), cols(got)
	for ci := range wc {
		for i := range wc[ci] {
			if math.Float64bits(wc[ci][i]) != math.Float64bits(gc[ci][i]) {
				t.Fatalf("col %d[%d]: want %x got %x", ci, i,
					math.Float64bits(wc[ci][i]), math.Float64bits(gc[ci][i]))
			}
		}
	}
}

func writeChain(t *testing.T, path string, steps int, n int, keyEvery int, clean bool) []*frames.Frame {
	t.Helper()
	w, err := frames.Create(path, frames.WriterOptions{KeyEvery: keyEvery})
	if err != nil {
		t.Fatal(err)
	}
	var all []*frames.Frame
	for s := 0; s < steps; s++ {
		f := mkFrame(int64(s), n, 42)
		if _, err := w.Append(f); err != nil {
			t.Fatal(err)
		}
		all = append(all, f)
	}
	if clean {
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	} else {
		// Abandon without Close: a crash leaves no index or trailer.
		if err := w.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	return all
}

func readAll(t *testing.T, path string) ([]*frames.Frame, bool) {
	t.Helper()
	r, err := frames.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var out []*frames.Frame
	for {
		var f frames.Frame
		err := r.Next(&f)
		if err == io.EOF {
			return out, r.CleanEOF()
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		out = append(out, cloneFrame(&f))
	}
}

func TestRoundTripBitIdentical(t *testing.T) {
	for _, clean := range []bool{true, false} {
		path := filepath.Join(t.TempDir(), "chain.nbf")
		want := writeChain(t, path, 23, 64, 4, clean)
		got, cleanEOF := readAll(t, path)
		if cleanEOF != clean {
			t.Fatalf("CleanEOF = %v, want %v", cleanEOF, clean)
		}
		if len(got) != len(want) {
			t.Fatalf("read %d frames, want %d", len(got), len(want))
		}
		for i := range want {
			sameBits(t, want[i], got[i])
		}
	}
}

func TestSeekStep(t *testing.T) {
	for _, clean := range []bool{true, false} {
		path := filepath.Join(t.TempDir(), "seek.nbf")
		want := writeChain(t, path, 33, 48, 5, clean)
		r, err := frames.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		idx, err := r.Index()
		if err != nil {
			t.Fatal(err)
		}
		if len(idx) == 0 {
			t.Fatal("no keyframes indexed")
		}
		for _, target := range []int64{0, 1, 7, 13, 22, 32} {
			if err := r.SeekStep(target); err != nil {
				t.Fatal(err)
			}
			var f frames.Frame
			for {
				if err := r.Next(&f); err != nil {
					t.Fatalf("seek %d: %v", target, err)
				}
				if f.Meta.Step >= target {
					break
				}
			}
			if f.Meta.Step != target {
				t.Fatalf("seek %d landed on %d", target, f.Meta.Step)
			}
			sameBits(t, want[target], cloneFrame(&f))
		}
	}
}

// TestCrashTruncationRecovery simulates a crash at every possible byte
// boundary: the file is cut at each offset, and the cut file must (a)
// open and read a clean prefix without panicking, and (b) recover
// through OpenAppend such that the continued chain reads back
// bit-identically.
func TestCrashTruncationRecovery(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.nbf")
	want := writeChain(t, full, 9, 12, 3, false)
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	for cut := len("NBF1"); cut <= len(data); cut++ {
		path := filepath.Join(dir, "cut.nbf")
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, cleanEOF := readAll(t, path)
		if cleanEOF {
			t.Fatalf("cut %d: torn file reported clean close", cut)
		}
		for i := range got {
			sameBits(t, want[i], got[i])
		}
		// Recovery: reopen for append and continue the chain.
		w, err := frames.OpenAppend(path, frames.WriterOptions{KeyEvery: 3})
		if err != nil {
			t.Fatalf("cut %d: OpenAppend: %v", cut, err)
		}
		next := mkFrame(int64(len(got)), 12, 42)
		if _, err := w.Append(next); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		got2, cleanEOF := readAll(t, path)
		if !cleanEOF {
			t.Fatalf("cut %d: recovered file not clean after Close", cut)
		}
		if len(got2) != len(got)+1 {
			t.Fatalf("cut %d: recovered chain has %d frames, want %d", cut, len(got2), len(got)+1)
		}
		for i := range got {
			sameBits(t, want[i], got2[i])
		}
		sameBits(t, next, got2[len(got)])
	}
}

// TestCorruptMidFile flips one byte in every record of the file body
// (not the tail record) and asserts the reader reports ErrCorrupt
// rather than EOF or silence.
func TestCorruptMidFile(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.nbf")
	writeChain(t, full, 8, 16, 3, false)
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte early in the file (inside the first record's body):
	// every later record still present means this cannot be a torn tail.
	for _, off := range []int{8, 24, 99} {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x40
		path := filepath.Join(dir, "bad.nbf")
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := frames.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		var sawCorrupt bool
		for {
			var f frames.Frame
			err := r.Next(&f)
			if err == io.EOF {
				break
			}
			if err != nil {
				if !errors.Is(err, frames.ErrCorrupt) {
					t.Fatalf("offset %d: error %v is not ErrCorrupt", off, err)
				}
				sawCorrupt = true
				break
			}
		}
		r.Close()
		if !sawCorrupt {
			t.Fatalf("offset %d: bit flip went undetected", off)
		}
	}
}

func TestOpenAppendAfterCleanClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chain.nbf")
	want := writeChain(t, path, 7, 20, 3, true)
	w, err := frames.OpenAppend(path, frames.WriterOptions{KeyEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	for s := 7; s < 14; s++ {
		f := mkFrame(int64(s), 20, 42)
		if _, err := w.Append(f); err != nil {
			t.Fatal(err)
		}
		want = append(want, f)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, clean := readAll(t, path)
	if !clean {
		t.Fatal("not clean after reopen+close")
	}
	if len(got) != len(want) {
		t.Fatalf("read %d frames, want %d", len(got), len(want))
	}
	for i := range want {
		sameBits(t, want[i], got[i])
	}
}

func TestKeyframeRecordRoundTrip(t *testing.T) {
	f := mkFrame(17, 40, 7)
	rec := frames.EncodeKeyframe(f)
	got, err := frames.DecodeKeyframe(rec)
	if err != nil {
		t.Fatal(err)
	}
	sameBits(t, f, got)

	// Seed a file from the replicated record and continue the chain —
	// the fabric handoff path.
	path := filepath.Join(t.TempDir(), "seed.nbf")
	if err := frames.WriteSeed(path, rec); err != nil {
		t.Fatal(err)
	}
	w, err := frames.OpenAppend(path, frames.WriterOptions{KeyEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	next := mkFrame(18, 40, 7)
	if _, err := w.Append(next); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got2, _ := readAll(t, path)
	if len(got2) != 2 {
		t.Fatalf("seeded chain has %d frames, want 2", len(got2))
	}
	sameBits(t, f, got2[0])
	sameBits(t, next, got2[1])

	// Corrupt seed records must be refused.
	bad := append([]byte(nil), rec...)
	bad[10] ^= 1
	if err := frames.WriteSeed(filepath.Join(t.TempDir(), "bad.nbf"), bad); err == nil {
		t.Fatal("corrupt seed accepted")
	}
}

func TestCompactionBudget(t *testing.T) {
	path := filepath.Join(t.TempDir(), "compact.nbf")
	w, err := frames.Create(path, frames.WriterOptions{KeyEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	const budget = 96 << 10
	pol := frames.Retention{MaxBytes: budget, KeepGroups: 2, Decimate: 4}
	var lastSteps []int64
	for s := 0; s < 200; s++ {
		f := mkFrame(int64(s), 64, 42)
		isKey, err := w.Append(f)
		if err != nil {
			t.Fatal(err)
		}
		lastSteps = append(lastSteps, int64(s))
		if isKey && w.Size() > budget {
			if _, err := w.Compact(pol); err != nil {
				t.Fatal(err)
			}
		}
	}
	if w.Size() > budget {
		t.Fatalf("size %d exceeds budget %d after compaction", w.Size(), budget)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// The surviving chain must read clean, strictly increase in step,
	// and retain the dense recent tail (the last KeyEvery frames).
	got, clean := readAll(t, path)
	if !clean {
		t.Fatal("compacted file not clean")
	}
	if len(got) == 0 {
		t.Fatal("compaction dropped everything")
	}
	prev := int64(-1)
	for _, f := range got {
		if f.Meta.Step <= prev {
			t.Fatalf("steps not strictly increasing: %d after %d", f.Meta.Step, prev)
		}
		prev = f.Meta.Step
	}
	if prev != lastSteps[len(lastSteps)-1] {
		t.Fatalf("tail frame is step %d, want %d", prev, lastSteps[len(lastSteps)-1])
	}
	tail := got[len(got)-4:]
	for i, f := range tail {
		want := mkFrame(f.Meta.Step, 64, 42)
		sameBits(t, want, tail[i])
	}
}

func TestTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tail.nbf")
	want := writeChain(t, path, 11, 24, 4, false)
	got, err := frames.Tail(path)
	if err != nil {
		t.Fatal(err)
	}
	sameBits(t, want[len(want)-1], got)
}

// FuzzReadFrame feeds arbitrary bytes to the file reader and the
// standalone keyframe decoder: they must error on garbage, never panic,
// and never allocate past the input's own size class. Seeds are kept
// tiny on purpose — every byte of a CRC-framed input is load-bearing,
// so the minimizer can rarely shrink an interesting input and its cost
// scales with seed size (CI also caps it with -fuzzminimizetime).
func FuzzReadFrame(f *testing.F) {
	// One scratch directory per process: fuzz workers are separate
	// processes (each runs this setup itself) and executions within a
	// worker are sequential, so a single reused path is race-free.
	dir, err := os.MkdirTemp("", "framesfuzz")
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { os.RemoveAll(dir) })

	// Seed corpus: a clean file, a crashed file, and a standalone record.
	seedPath := filepath.Join(dir, "seed.nbf")
	w, err := frames.Create(seedPath, frames.WriterOptions{KeyEvery: 2})
	if err != nil {
		f.Fatal(err)
	}
	for s := 0; s < 3; s++ {
		if _, err := w.Append(mkFrame(int64(s), 2, 3)); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	clean, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(clean)
	f.Add(clean[:len(clean)-20])
	f.Add(frames.EncodeKeyframe(mkFrame(0, 1, 9)))
	f.Add([]byte("NBF1"))
	f.Add([]byte{})

	path := filepath.Join(dir, "fuzz.nbf")
	f.Fuzz(func(t *testing.T, data []byte) {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		r, err := frames.Open(path)
		if err == nil {
			for i := 0; i < 64; i++ {
				var fr frames.Frame
				if err := r.Next(&fr); err != nil {
					break
				}
				if fr.Parts.Len() > len(data) {
					t.Fatalf("decoded %d particles from %d input bytes", fr.Parts.Len(), len(data))
				}
			}
			r.Close()
		}
		if fr, err := frames.DecodeKeyframe(data); err == nil {
			if fr.Parts.Len()*12 > len(data) {
				t.Fatalf("keyframe decoded %d particles from %d bytes", fr.Parts.Len(), len(data))
			}
		}
	})
}
