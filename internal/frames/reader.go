package frames

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
)

func leU32(b []byte) uint32         { return binary.LittleEndian.Uint32(b) }
func leU64(b []byte) uint64         { return binary.LittleEndian.Uint64(b) }
func crc32Checksum(p []byte) uint32 { return crc32.Update(0, crcTable, p) }

// Reader walks a frame file in step order, decoding keyframes and
// applying deltas. It distinguishes three end states:
//
//   - clean close: the index record is reached; Next returns io.EOF and
//     CleanEOF() reports true — the chain is complete.
//   - live tail: the file simply ends (or its last record is still
//     being written); Next returns io.EOF with CleanEOF() false. The
//     caller may retry after the writer appends more — this is how
//     /frames tail-follows a running job.
//   - corruption: a record fails its CRC (or is structurally invalid)
//     with more data after it; Next returns ErrCorrupt.
//
// Every length is validated against MaxRecord and the stat'd file size
// before any allocation, so a corrupt length prefix cannot force an
// oversized buffer.
type Reader struct {
	f           *os.File
	path        string
	off         int64
	size        int64
	prev        *Frame
	index       []IndexEntry
	indexLoaded bool
	clean       bool
	sinceKey    int
	lastKeyOff  int64
	lastKeyLen  int64
	buf         []byte
}

// Open opens a frame file for reading. If the file was closed cleanly,
// the trailer's sparse index is loaded for O(log n) SeekStep; a crashed
// file falls back to a one-pass header scan on first seek.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	var hdr [len(magic)]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil || string(hdr[:]) != magic {
		f.Close()
		return nil, fmt.Errorf("%w: %s is not a frame file", ErrCorrupt, path)
	}
	r := &Reader{f: f, path: path, off: int64(len(magic)), size: st.Size()}
	r.loadTrailerIndex()
	return r, nil
}

// Close releases the file handle.
func (r *Reader) Close() error { return r.f.Close() }

// CleanEOF reports whether the last io.EOF from Next was the file's
// clean-close marker (index record) rather than a live or torn tail.
func (r *Reader) CleanEOF() bool { return r.clean }

// Offset is the byte offset of the next unread record — after a scan to
// io.EOF it is the exact end of the valid chain, which is where
// OpenAppend truncates and resumes.
func (r *Reader) Offset() int64 { return r.off }

// loadTrailerIndex opportunistically loads the clean-close index. Any
// validation failure leaves the reader in scan-fallback mode; a crashed
// or truncated file is normal, not an error.
func (r *Reader) loadTrailerIndex() {
	if r.size < int64(len(magic))+trailerLen {
		return
	}
	var tr [trailerLen]byte
	if _, err := r.f.ReadAt(tr[:], r.size-trailerLen); err != nil {
		return
	}
	if leU32(tr[12:]) != trailerMagic || crc32Checksum(tr[:8]) != leU32(tr[8:12]) {
		return
	}
	indexOff := int64(leU64(tr[:8]))
	if indexOff < int64(len(magic)) || indexOff >= r.size-trailerLen {
		return
	}
	var rh [headerLen]byte
	if _, err := r.f.ReadAt(rh[:], indexOff); err != nil {
		return
	}
	bodyLen := int64(leU32(rh[:4]))
	if rh[4] != recIndex || bodyLen > MaxRecord ||
		indexOff+headerLen+bodyLen+crcLen != r.size-trailerLen {
		return
	}
	buf := make([]byte, headerLen+bodyLen+crcLen)
	if _, err := r.f.ReadAt(buf, indexOff); err != nil {
		return
	}
	if crc32Checksum(buf[4:headerLen+bodyLen]) != leU32(buf[headerLen+bodyLen:]) {
		return
	}
	idx, err := decodeIndex(buf[headerLen : headerLen+bodyLen])
	if err != nil {
		return
	}
	r.index = idx
	r.indexLoaded = true
}

// Next decodes the next frame of the chain into f. It re-stats the file
// each call so a tail-following reader sees the writer's appends.
func (r *Reader) Next(f *Frame) error {
	if r.clean {
		return io.EOF
	}
	st, err := r.f.Stat()
	if err != nil {
		return err
	}
	r.size = st.Size()
	if r.off >= r.size || r.off+headerLen > r.size {
		return io.EOF
	}
	var hdr [headerLen]byte
	if _, err := r.f.ReadAt(hdr[:], r.off); err != nil {
		return err
	}
	bodyLen := int64(leU32(hdr[:4]))
	kind := hdr[4]
	if bodyLen > MaxRecord {
		// A torn tail is a prefix of a well-formed record, so its
		// length field — once fully present — is always plausible. An
		// absurd length is corruption, and is refused before any
		// allocation.
		return fmt.Errorf("%w: record length %d exceeds limit", ErrCorrupt, bodyLen)
	}
	recLen := headerLen + bodyLen + crcLen
	if r.off+recLen > r.size {
		// Record extends past the current end of file: either the
		// writer is mid-append (retry later) or a crash tore it off
		// (OpenAppend truncates here). Retryable in both cases.
		return io.EOF
	}
	if int64(cap(r.buf)) < recLen {
		r.buf = make([]byte, recLen)
	}
	buf := r.buf[:recLen]
	if _, err := r.f.ReadAt(buf, r.off); err != nil {
		return err
	}
	if crc32Checksum(buf[4:headerLen+bodyLen]) != leU32(buf[headerLen+bodyLen:]) {
		if r.off+recLen == r.size {
			// Garbage exactly at the tail: treat like a torn record.
			// Under a live writer this can also be a transiently
			// observed partial append; the retry reads it whole.
			return io.EOF
		}
		return fmt.Errorf("%w: CRC mismatch at offset %d", ErrCorrupt, r.off)
	}
	body := buf[headerLen : headerLen+bodyLen]
	switch kind {
	case recIndex:
		idx, err := decodeIndex(body)
		if err != nil {
			return err
		}
		if !r.indexLoaded {
			r.index = idx
			r.indexLoaded = true
		}
		r.clean = true
		return io.EOF
	case recKeyframe:
		if err := decodeKeyframe(body, f); err != nil {
			return err
		}
		r.lastKeyOff, r.lastKeyLen = r.off, recLen
		r.sinceKey = 1
	case recDelta:
		if err := decodeDelta(body, f, r.prev); err != nil {
			return err
		}
		r.sinceKey++
	default:
		return fmt.Errorf("%w: unknown record kind %d", ErrCorrupt, kind)
	}
	if r.prev == nil {
		r.prev = &Frame{}
	}
	copyFrame(r.prev, f)
	r.off += recLen
	return nil
}

// Index returns the sparse keyframe index (step, offset) in file order,
// building it with a header scan if the file lacks a clean trailer.
func (r *Reader) Index() ([]IndexEntry, error) {
	if err := r.ensureIndex(); err != nil {
		return nil, err
	}
	return append([]IndexEntry(nil), r.index...), nil
}

// ensureIndex builds the keyframe index by scanning record headers.
// Only headers and the 8-byte step field are read; CRC validation
// happens when Next actually decodes a record.
func (r *Reader) ensureIndex() error {
	if r.indexLoaded {
		return nil
	}
	st, err := r.f.Stat()
	if err != nil {
		return err
	}
	size := st.Size()
	var idx []IndexEntry
	off := int64(len(magic))
	for off+headerLen <= size {
		var hdr [headerLen]byte
		if _, err := r.f.ReadAt(hdr[:], off); err != nil {
			return err
		}
		bodyLen := int64(leU32(hdr[:4]))
		if bodyLen > MaxRecord || off+headerLen+bodyLen+crcLen > size {
			break // torn or corrupt tail; the scan index covers the valid prefix
		}
		if hdr[4] == recIndex {
			break
		}
		if hdr[4] == recKeyframe && bodyLen >= 8 {
			var stepb [8]byte
			if _, err := r.f.ReadAt(stepb[:], off+headerLen); err != nil {
				return err
			}
			idx = append(idx, IndexEntry{Step: int64(leU64(stepb[:])), Off: off})
		}
		off += headerLen + bodyLen + crcLen
	}
	r.index = idx
	r.indexLoaded = true
	return nil
}

// SeekStep positions the reader at the latest keyframe whose step does
// not exceed step (or the first keyframe if step precedes them all).
// The next Next decodes that keyframe; callers skip forward to the
// exact step they want. O(log n) with a clean-close index.
func (r *Reader) SeekStep(step int64) error {
	if err := r.ensureIndex(); err != nil {
		return err
	}
	r.prev = nil
	r.clean = false
	r.sinceKey = 0
	if len(r.index) == 0 {
		r.off = int64(len(magic))
		return nil
	}
	i := sort.Search(len(r.index), func(i int) bool { return r.index[i].Step > step })
	if i > 0 {
		i--
	}
	r.off = r.index[i].Off
	return nil
}

// scanState is what a full forward walk of the chain learns: where the
// valid prefix ends, the last decoded frame, the keyframe cadence
// position, and the raw bytes of the last keyframe record.
type scanState struct {
	end        int64
	last       *Frame
	sinceKey   int
	index      []IndexEntry
	lastKeyRec []byte
}

// scanChain walks r to its end, ignoring any trailer index so the tail
// is re-validated byte by byte. io.EOF (clean or torn) terminates the
// scan; ErrCorrupt mid-file propagates.
func scanChain(r *Reader) (scanState, error) {
	var st scanState
	var f Frame
	var last *Frame
	for {
		err := r.Next(&f)
		if err == io.EOF {
			break
		}
		if err != nil {
			return st, err
		}
		if last == nil {
			last = &Frame{}
		}
		copyFrame(last, &f)
	}
	st.end = r.off
	st.last = last
	st.sinceKey = r.sinceKey
	if err := r.ensureIndex(); err != nil {
		return st, err
	}
	st.index = append(st.index, r.index...)
	if r.lastKeyLen > 0 {
		st.lastKeyRec = make([]byte, r.lastKeyLen)
		if _, err := r.f.ReadAt(st.lastKeyRec, r.lastKeyOff); err != nil {
			return st, err
		}
	}
	return st, nil
}

// Tail opens path, walks the chain past any torn tail, and returns the
// last intact frame (nil if the file holds none). This is the resume
// probe: the service compares it against the gob checkpoint and resumes
// from whichever is fresher.
func Tail(path string) (*Frame, error) {
	r, err := Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	st, err := scanChain(r)
	if err != nil {
		return nil, err
	}
	return st.last, nil
}
