// Package frames is the columnar frame store: the time-series output
// layer of the simulation service. A frame file is an append-only chain
// of CRC-framed records — the same length-prefix-then-validate
// discipline as the transport wire format — holding per-field particle
// columns (positions, velocities, mass as contiguous []float64, the
// same structure-of-arrays transposition dist.Particles uses in RAM)
// plus a per-frame metrics header that is a superset of the root
// package's HistoryEntry.
//
// Keyframes carry full columns; the frames between two keyframes are
// delta-encoded as XOR-of-Float64bits against the previous frame.
// Small-displacement steps share sign, exponent, and the high mantissa
// bits with their predecessor, so the XOR image is mostly leading-zero
// bytes and packs hard — while round-tripping bit-identically, which is
// what lets a resumed job replay to the same GOLDEN simulated metrics
// as an uninterrupted one.
//
// Layout:
//
//	magic "NBF1"
//	record := [u32 bodyLen][u8 kind][body][u32 crc32c(kind||body)]
//	  kind 1 keyframe: meta | u32 n | id[n]i32 | 7 × col[n]f64
//	  kind 2 delta:    meta | u32 n | idTag(+ids) | 7 × packed column
//	  kind 3 index:    u32 count | count × (i64 step, i64 offset)
//	trailer (after the index record, clean close only):
//	  [i64 indexOffset][u32 crc32c(indexOffset)][u32 "NBFX"]
//
// A torn tail — a record cut short by a crash, or one whose CRC fails
// at end-of-file — is detected and dropped, never poisoning the chain;
// everything before it reads clean. The index record plus trailer give
// clean-close opens an O(log n) seek-to-step; crashed files rebuild the
// index with one forward scan.
package frames

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/dist"
	"repro/internal/vec"
)

// File framing constants.
const (
	magic        = "NBF1"
	trailerMagic = 0x5846424E // "NBFX" little-endian
	headerLen    = 5          // u32 bodyLen + u8 kind
	crcLen       = 4
	trailerLen   = 16 // i64 index offset + u32 crc + u32 magic

	recKeyframe = 1
	recDelta    = 2
	recIndex    = 3

	// MaxRecord bounds one record body before any allocation, exactly as
	// transport.MaxFrame bounds a wire frame: a corrupt length prefix
	// must never become a giant allocation.
	MaxRecord = 256 << 20
)

// crcTable is the Castagnoli polynomial, hardware-accelerated on the
// platforms this runs on.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Magic returns the file magic, for callers emitting a frame stream
// over a transport other than a file (the replay API's binary mode).
func Magic() []byte { return []byte(magic) }

// ErrCorrupt reports a structurally invalid record in the middle of a
// frame file (a failed CRC or malformed body that cannot be a torn
// tail). Tails cut short by a crash are not corruption; they are
// silently dropped on open and reported as io.EOF when streaming.
var ErrCorrupt = errors.New("frames: corrupt record")

// Meta is the per-frame metrics header: the job's clock state plus the
// last step's simulated-machine measurements, a superset of the root
// package's HistoryEntry. MachineTime is the cumulative simulated
// machine seconds across completed steps — restoring the accumulator
// from here preserves the floating-point summation order, so a resumed
// job's final MachineTime is bit-equal to an uninterrupted run's.
type Meta struct {
	Step        int64
	Time        float64
	SimTime     float64
	MachineTime float64
	Energy      float64
	Efficiency  float64
	Imbalance   float64
	CommWords   int64
	MACTests    int64
	PC          int64
	PP          int64
	Domain      vec.Box
}

// metaLen is the fixed encoded size of Meta: 11 scalar fields plus the
// 6 floats of the domain box, 8 bytes each.
const metaLen = 17 * 8

// Frame is one decoded frame: its metrics header and the particle
// columns, in the same structure-of-arrays layout the compute kernels
// iterate.
type Frame struct {
	Meta  Meta
	Parts dist.Particles
}

// numCols is the number of float64 columns per frame (mass, pos, vel).
const numCols = 7

// cols returns the frame's float64 columns in serialization order.
func (f *Frame) cols() [numCols]*[]float64 {
	p := &f.Parts
	return [numCols]*[]float64{&p.Mass, &p.PosX, &p.PosY, &p.PosZ, &p.VelX, &p.VelY, &p.VelZ}
}

func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// appendMeta encodes the fixed-size metrics header.
func appendMeta(b []byte, m *Meta) []byte {
	b = appendU64(b, uint64(m.Step))
	b = appendF64(b, m.Time)
	b = appendF64(b, m.SimTime)
	b = appendF64(b, m.MachineTime)
	b = appendF64(b, m.Energy)
	b = appendF64(b, m.Efficiency)
	b = appendF64(b, m.Imbalance)
	b = appendU64(b, uint64(m.CommWords))
	b = appendU64(b, uint64(m.MACTests))
	b = appendU64(b, uint64(m.PC))
	b = appendU64(b, uint64(m.PP))
	b = appendF64(b, m.Domain.Min.X)
	b = appendF64(b, m.Domain.Min.Y)
	b = appendF64(b, m.Domain.Min.Z)
	b = appendF64(b, m.Domain.Max.X)
	b = appendF64(b, m.Domain.Max.Y)
	b = appendF64(b, m.Domain.Max.Z)
	return b
}

// cursor is a bounds-checked little-endian reader over one record body.
// Every getter reports failure through ok so decode paths cannot read
// past the body regardless of how mangled the input is.
type cursor struct {
	b   []byte
	off int
	ok  bool
}

func newCursor(b []byte) *cursor { return &cursor{b: b, ok: true} }

func (c *cursor) u8() byte {
	if !c.ok || c.off+1 > len(c.b) {
		c.ok = false
		return 0
	}
	v := c.b[c.off]
	c.off++
	return v
}

func (c *cursor) u32() uint32 {
	if !c.ok || c.off+4 > len(c.b) {
		c.ok = false
		return 0
	}
	v := binary.LittleEndian.Uint32(c.b[c.off:])
	c.off += 4
	return v
}

func (c *cursor) u64() uint64 {
	if !c.ok || c.off+8 > len(c.b) {
		c.ok = false
		return 0
	}
	v := binary.LittleEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v
}

func (c *cursor) f64() float64 { return math.Float64frombits(c.u64()) }

// take returns the next n raw bytes of the body.
func (c *cursor) take(n int) []byte {
	if !c.ok || n < 0 || c.off+n > len(c.b) {
		c.ok = false
		return nil
	}
	v := c.b[c.off : c.off+n]
	c.off += n
	return v
}

// remaining is the unread byte count, for exact-size validation.
func (c *cursor) remaining() int { return len(c.b) - c.off }

// readMeta decodes the fixed-size metrics header.
func (c *cursor) readMeta(m *Meta) {
	m.Step = int64(c.u64())
	m.Time = c.f64()
	m.SimTime = c.f64()
	m.MachineTime = c.f64()
	m.Energy = c.f64()
	m.Efficiency = c.f64()
	m.Imbalance = c.f64()
	m.CommWords = int64(c.u64())
	m.MACTests = int64(c.u64())
	m.PC = int64(c.u64())
	m.PP = int64(c.u64())
	m.Domain.Min.X = c.f64()
	m.Domain.Min.Y = c.f64()
	m.Domain.Min.Z = c.f64()
	m.Domain.Max.X = c.f64()
	m.Domain.Max.Y = c.f64()
	m.Domain.Max.Z = c.f64()
}

// finishRecord wraps an encoded body (starting at body[bodyStart:]) into
// a complete record in place: the caller reserves headerLen bytes, and
// finishRecord fills the header and appends the CRC. The CRC covers the
// kind byte and the body, so neither can be flipped undetected.
func finishRecord(buf []byte, kind byte) []byte {
	body := buf[headerLen:]
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(body)))
	buf[4] = kind
	crc := crc32.Update(0, crcTable, buf[4:])
	return appendU32(buf, crc)
}

// appendKeyframe encodes a full-column keyframe record onto b.
func appendKeyframe(b []byte, f *Frame) []byte {
	start := len(b)
	b = append(b, make([]byte, headerLen)...)
	b = appendMeta(b, &f.Meta)
	n := f.Parts.Len()
	b = appendU32(b, uint32(n))
	for _, id := range f.Parts.ID {
		b = appendU32(b, uint32(id))
	}
	for _, col := range f.cols() {
		for _, v := range *col {
			b = appendF64(b, v)
		}
	}
	return append(b[:start], finishRecord(b[start:], recKeyframe)...)
}

// Column delta tags.
const (
	colSame   = 0 // column bit-identical to the previous frame
	colPacked = 1 // per-value significant-byte packing of the XOR image
)

// appendDelta encodes f as an XOR delta against prev. The two frames
// must have equal particle counts (the writer keyframes on any count
// change). Each float64 column is XORed bit-wise with its predecessor;
// the image of a slightly-moved particle has zero sign/exponent/high
// mantissa bytes, so values are stored as a significant-byte count plus
// only the low non-zero bytes.
func appendDelta(b []byte, f, prev *Frame) []byte {
	start := len(b)
	b = append(b, make([]byte, headerLen)...)
	b = appendMeta(b, &f.Meta)
	n := f.Parts.Len()
	b = appendU32(b, uint32(n))

	// Particle IDs almost never change between frames; a changed set
	// falls back to the raw column.
	same := true
	for i, id := range f.Parts.ID {
		if id != prev.Parts.ID[i] {
			same = false
			break
		}
	}
	if same {
		b = append(b, colSame)
	} else {
		b = append(b, colPacked)
		for _, id := range f.Parts.ID {
			b = appendU32(b, uint32(id))
		}
	}

	prevCols := prev.cols()
	for ci, col := range f.cols() {
		cur, old := *col, *prevCols[ci]
		identical := true
		for i := range cur {
			if math.Float64bits(cur[i]) != math.Float64bits(old[i]) {
				identical = false
				break
			}
		}
		if identical {
			b = append(b, colSame)
			continue
		}
		b = append(b, colPacked)
		for i := range cur {
			x := math.Float64bits(cur[i]) ^ math.Float64bits(old[i])
			nb := significantBytes(x)
			b = append(b, byte(nb))
			for k := 0; k < nb; k++ {
				b = append(b, byte(x>>(8*k)))
			}
		}
	}
	return append(b[:start], finishRecord(b[start:], recDelta)...)
}

// significantBytes is the count of low bytes needed to represent x (0
// for x == 0, 8 for a full-width image).
func significantBytes(x uint64) int {
	n := 0
	for x != 0 {
		n++
		x >>= 8
	}
	return n
}

// decodeKeyframe decodes a keyframe body into f, reusing f's column
// capacity. Every length is validated against the body before columns
// are sized, so a hostile body cannot force an allocation beyond its
// own size.
func decodeKeyframe(body []byte, f *Frame) error {
	c := newCursor(body)
	c.readMeta(&f.Meta)
	n := int(c.u32())
	if !c.ok || n < 0 {
		return fmt.Errorf("%w: truncated keyframe header", ErrCorrupt)
	}
	if want := n * (4 + numCols*8); c.remaining() != want {
		return fmt.Errorf("%w: keyframe body is %d bytes for %d particles (want %d)", ErrCorrupt, c.remaining(), n, want)
	}
	f.Parts.Reset()
	ids := c.take(n * 4)
	for i := 0; i < n; i++ {
		f.Parts.ID = append(f.Parts.ID, int32(binary.LittleEndian.Uint32(ids[i*4:])))
	}
	for _, col := range f.cols() {
		raw := c.take(n * 8)
		for i := 0; i < n; i++ {
			*col = append(*col, math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:])))
		}
	}
	return nil
}

// decodeDelta decodes a delta body into f by applying the XOR image to
// prev, which must be the immediately preceding frame of the chain.
func decodeDelta(body []byte, f, prev *Frame) error {
	c := newCursor(body)
	c.readMeta(&f.Meta)
	n := int(c.u32())
	if !c.ok || n < 0 {
		return fmt.Errorf("%w: truncated delta header", ErrCorrupt)
	}
	if prev == nil || prev.Parts.Len() != n {
		return fmt.Errorf("%w: delta for %d particles without a matching predecessor", ErrCorrupt, n)
	}
	f.Parts.Reset()
	switch c.u8() {
	case colSame:
		f.Parts.ID = append(f.Parts.ID, prev.Parts.ID...)
	case colPacked:
		ids := c.take(n * 4)
		if !c.ok {
			return fmt.Errorf("%w: truncated delta id column", ErrCorrupt)
		}
		for i := 0; i < n; i++ {
			f.Parts.ID = append(f.Parts.ID, int32(binary.LittleEndian.Uint32(ids[i*4:])))
		}
	default:
		return fmt.Errorf("%w: unknown delta id tag", ErrCorrupt)
	}
	prevCols := prev.cols()
	for ci, col := range f.cols() {
		old := *prevCols[ci]
		switch c.u8() {
		case colSame:
			*col = append(*col, old...)
		case colPacked:
			for i := 0; i < n; i++ {
				nb := int(c.u8())
				if nb > 8 {
					return fmt.Errorf("%w: delta byte count %d", ErrCorrupt, nb)
				}
				raw := c.take(nb)
				if !c.ok {
					return fmt.Errorf("%w: truncated delta column", ErrCorrupt)
				}
				var x uint64
				for k := 0; k < nb; k++ {
					x |= uint64(raw[k]) << (8 * k)
				}
				*col = append(*col, math.Float64frombits(math.Float64bits(old[i])^x))
			}
		default:
			return fmt.Errorf("%w: unknown delta column tag", ErrCorrupt)
		}
	}
	if !c.ok {
		return fmt.Errorf("%w: truncated delta body", ErrCorrupt)
	}
	if c.remaining() != 0 {
		return fmt.Errorf("%w: %d trailing bytes in delta body", ErrCorrupt, c.remaining())
	}
	return nil
}

// IndexEntry locates one keyframe: the step it captured and the byte
// offset of its record.
type IndexEntry struct {
	Step int64
	Off  int64
}

// appendIndexRecord encodes the sparse keyframe index as a record.
func appendIndexRecord(b []byte, idx []IndexEntry) []byte {
	start := len(b)
	b = append(b, make([]byte, headerLen)...)
	b = appendU32(b, uint32(len(idx)))
	for _, e := range idx {
		b = appendU64(b, uint64(e.Step))
		b = appendU64(b, uint64(e.Off))
	}
	return append(b[:start], finishRecord(b[start:], recIndex)...)
}

// decodeIndex decodes an index record body.
func decodeIndex(body []byte) ([]IndexEntry, error) {
	c := newCursor(body)
	n := int(c.u32())
	if !c.ok || n < 0 || c.remaining() != n*16 {
		return nil, fmt.Errorf("%w: malformed index record", ErrCorrupt)
	}
	idx := make([]IndexEntry, n)
	for i := range idx {
		idx[i] = IndexEntry{Step: int64(c.u64()), Off: int64(c.u64())}
	}
	return idx, nil
}

// copyFrame deep-copies src into dst, reusing dst's column capacity.
// The writer and reader both keep their delta-chain predecessor
// separate from caller-owned frames.
func copyFrame(dst, src *Frame) {
	dst.Meta = src.Meta
	dst.Parts.Reset()
	dst.Parts.ID = append(dst.Parts.ID, src.Parts.ID...)
	sc, dc := src.cols(), dst.cols()
	for i := range sc {
		*dc[i] = append(*dc[i], *sc[i]...)
	}
}

// EncodeKeyframe encodes f as one standalone keyframe record — header,
// body, and CRC, without the file magic. This is the unit the fabric
// replicates: a gateway holding the latest keyframe record of a leased
// job can seed a replacement shard with it.
func EncodeKeyframe(f *Frame) []byte {
	return appendKeyframe(nil, f)
}

// DecodeKeyframe validates and decodes one standalone keyframe record
// produced by EncodeKeyframe (or extracted from a frame file).
func DecodeKeyframe(rec []byte) (*Frame, error) {
	if len(rec) < headerLen+crcLen {
		return nil, fmt.Errorf("%w: record shorter than its framing", ErrCorrupt)
	}
	bodyLen := int(binary.LittleEndian.Uint32(rec[0:4]))
	if bodyLen < 0 || bodyLen > MaxRecord || headerLen+bodyLen+crcLen != len(rec) {
		return nil, fmt.Errorf("%w: record length %d does not match %d-byte buffer", ErrCorrupt, bodyLen, len(rec))
	}
	if rec[4] != recKeyframe {
		return nil, fmt.Errorf("%w: record kind %d is not a keyframe", ErrCorrupt, rec[4])
	}
	body := rec[headerLen : headerLen+bodyLen]
	want := binary.LittleEndian.Uint32(rec[headerLen+bodyLen:])
	if crc32.Update(0, crcTable, rec[4:headerLen+bodyLen]) != want {
		return nil, fmt.Errorf("%w: keyframe CRC mismatch", ErrCorrupt)
	}
	f := &Frame{}
	if err := decodeKeyframe(body, f); err != nil {
		return nil, err
	}
	return f, nil
}
