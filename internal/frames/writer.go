package frames

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// WriterOptions tune a frame writer.
type WriterOptions struct {
	// KeyEvery is the keyframe cadence: a full-column keyframe is
	// written every KeyEvery frames, with XOR deltas in between.
	// Defaults to 16.
	KeyEvery int
}

func (o WriterOptions) withDefaults() WriterOptions {
	if o.KeyEvery <= 0 {
		o.KeyEvery = 16
	}
	return o
}

// Writer appends frames to one file. It is not safe for concurrent use;
// the service serializes appends per job on the owning worker.
type Writer struct {
	f        *os.File
	path     string
	opt      WriterOptions
	size     int64
	prev     *Frame // last appended frame, the delta predecessor
	sinceKey int
	index    []IndexEntry
	lastKey  []byte // raw record bytes of the last keyframe, for replication
	buf      []byte
	closed   bool
}

// Create starts a new frame file at path, truncating any existing one.
func Create(path string, opt WriterOptions) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write([]byte(magic)); err != nil {
		f.Close()
		return nil, err
	}
	return &Writer{f: f, path: path, opt: opt.withDefaults(), size: int64(len(magic))}, nil
}

// OpenAppend reopens an existing frame file for appending. A torn tail
// record — one cut short by a crash or failing its CRC at end-of-file —
// is truncated away, as is any clean-close index/trailer (a fresh one
// is written on the next Close). The delta predecessor is rebuilt by
// replaying the last keyframe group, so the chain continues seamlessly.
func OpenAppend(path string, opt WriterOptions) (*Writer, error) {
	r, err := Open(path)
	if err != nil {
		return nil, err
	}
	// Walk the whole chain to find the append point and the last frame.
	// scanState deliberately ignores the trailer index: OpenAppend must
	// re-validate the tail even after a clean close, because compaction
	// or external truncation may have happened since.
	st, err := scanChain(r)
	r.Close()
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(st.end); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(st.end, 0); err != nil {
		f.Close()
		return nil, err
	}
	w := &Writer{
		f:        f,
		path:     path,
		opt:      opt.withDefaults(),
		size:     st.end,
		prev:     st.last,
		sinceKey: st.sinceKey,
		index:    st.index,
		lastKey:  st.lastKeyRec,
	}
	return w, nil
}

// Append writes one frame, choosing keyframe or delta encoding. A
// keyframe is forced on the first frame, on any particle-count change,
// and every KeyEvery frames. Reports whether a keyframe was written —
// the service replicates the keyframe record to the gateway on true.
// Each record lands in a single Write call so tail-following readers
// never observe a half-record except at a genuine crash boundary.
func (w *Writer) Append(f *Frame) (isKey bool, err error) {
	if w.closed {
		return false, fmt.Errorf("frames: append to closed writer")
	}
	isKey = w.prev == nil || w.prev.Parts.Len() != f.Parts.Len() || w.sinceKey >= w.opt.KeyEvery
	w.buf = w.buf[:0]
	if isKey {
		w.buf = appendKeyframe(w.buf, f)
	} else {
		w.buf = appendDelta(w.buf, f, w.prev)
	}
	if _, err := w.f.Write(w.buf); err != nil {
		return false, err
	}
	if isKey {
		w.index = append(w.index, IndexEntry{Step: f.Meta.Step, Off: w.size})
		w.lastKey = append(w.lastKey[:0], w.buf...)
		w.sinceKey = 1
	} else {
		w.sinceKey++
	}
	w.size += int64(len(w.buf))
	if w.prev == nil {
		w.prev = &Frame{}
	}
	copyFrame(w.prev, f)
	return isKey, nil
}

// Sync flushes appended records to stable storage.
func (w *Writer) Sync() error { return w.f.Sync() }

// Size is the current file size in bytes, including records not yet
// fsynced.
func (w *Writer) Size() int64 { return w.size }

// Steps is the number of keyframes currently indexed.
func (w *Writer) Keyframes() int { return len(w.index) }

// KeyframeRecord returns the raw record bytes of the most recent
// keyframe (header, body, CRC), or nil if none has been written. The
// slice is owned by the writer; callers must copy before retaining.
func (w *Writer) KeyframeRecord() []byte { return w.lastKey }

// LastStep returns the step of the last appended (or replayed, after
// OpenAppend) frame. ok is false on an empty chain. Appending a step at
// or below LastStep would break the index's step ordering; callers
// resuming from an older state must Create a fresh file instead.
func (w *Writer) LastStep() (step int64, ok bool) {
	if w.prev == nil {
		return 0, false
	}
	return w.prev.Meta.Step, true
}

// Close appends the sparse keyframe index and the fixed trailer, giving
// readers an O(log n) seek without a forward scan, then closes the
// file. A file missing these (crash) is still fully readable.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	indexOff := w.size
	buf := appendIndexRecord(w.buf[:0], w.index)
	buf = appendTrailer(buf, indexOff)
	if _, err := w.f.Write(buf); err != nil {
		w.f.Close()
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// appendTrailer encodes the 16-byte clean-close trailer pointing at the
// index record.
func appendTrailer(b []byte, indexOff int64) []byte {
	var off [8]byte
	b = appendU64(b, uint64(indexOff))
	copy(off[:], b[len(b)-8:])
	b = appendU32(b, crcUpdate(off[:]))
	return appendU32(b, trailerMagic)
}

// crcUpdate is a tiny helper so trailer code reads like the record code.
func crcUpdate(p []byte) uint32 { return crc32Checksum(p) }

// Retention is the compaction policy for a job's frame file.
type Retention struct {
	// MaxBytes is the byte budget; 0 means unbounded (compaction only
	// decimates, never drops for size).
	MaxBytes int64
	// KeepGroups is how many trailing keyframe groups (keyframe plus
	// its deltas) are kept in full fidelity. Defaults to 2.
	KeepGroups int
	// Decimate keeps every Decimate-th keyframe among the older groups
	// (deltas dropped). Defaults to 4.
	Decimate int
}

func (r Retention) withDefaults() Retention {
	if r.KeepGroups <= 0 {
		r.KeepGroups = 2
	}
	if r.Decimate <= 0 {
		r.Decimate = 4
	}
	return r
}

// Compact rewrites the file under the retention policy: the last
// KeepGroups keyframe groups survive in full (keyframe plus deltas);
// older groups are reduced to keyframes only, with only every
// Decimate-th kept; then the oldest survivors are dropped until the
// file fits MaxBytes (the full-fidelity tail is never dropped). Groups
// are copied as intact byte ranges, so delta chains stay valid — every
// surviving delta still follows its own keyframe. Returns the new file
// size. The writer must be between Appends (service compacts only on
// keyframe boundaries).
func (w *Writer) Compact(pol Retention) (int64, error) {
	if w.closed {
		return 0, fmt.Errorf("frames: compact on closed writer")
	}
	pol = pol.withDefaults()
	if len(w.index) <= pol.KeepGroups {
		return w.size, nil
	}
	if err := w.f.Sync(); err != nil {
		return 0, err
	}

	// Partition the keyframes: old (decimated to bare keyframes) and
	// the full-fidelity tail.
	cut := len(w.index) - pol.KeepGroups
	type span struct {
		entry IndexEntry
		start int64
		end   int64 // exclusive; group runs to the next keyframe or EOF
	}
	groups := make([]span, len(w.index))
	for i, e := range w.index {
		end := w.size
		if i+1 < len(w.index) {
			end = w.index[i+1].Off
		}
		groups[i] = span{entry: e, start: e.Off, end: end}
	}

	var keep []span
	// Older groups: keyframe record only, every Decimate-th (counted
	// from the oldest so the survivors are stable as compaction
	// repeats), plus always the newest old group so the history's
	// leading edge stays dense near the tail.
	for i := 0; i < cut; i++ {
		if i%pol.Decimate != 0 && i != cut-1 {
			continue
		}
		g := groups[i]
		end, err := w.recordEnd(g.start)
		if err != nil {
			return 0, err
		}
		keep = append(keep, span{entry: g.entry, start: g.start, end: end})
	}
	keep = append(keep, groups[cut:]...)

	// Byte budget: drop oldest survivors, never the full-fidelity tail.
	if pol.MaxBytes > 0 {
		total := int64(len(magic))
		for _, s := range keep {
			total += s.end - s.start
		}
		for len(keep) > pol.KeepGroups && total > pol.MaxBytes {
			total -= keep[0].end - keep[0].start
			keep = keep[1:]
		}
	}

	// Rewrite via temp file + rename, the same atomicity discipline as
	// the spool's atomicWrite.
	tmp, err := os.CreateTemp(filepath.Dir(w.path), ".nbf-compact-*")
	if err != nil {
		return 0, err
	}
	tmpPath := tmp.Name()
	fail := func(e error) (int64, error) {
		tmp.Close()
		os.Remove(tmpPath)
		return 0, e
	}
	if _, err := tmp.Write([]byte(magic)); err != nil {
		return fail(err)
	}
	newIndex := make([]IndexEntry, 0, len(keep))
	off := int64(len(magic))
	for _, s := range keep {
		n, err := copyRange(tmp, w.f, s.start, s.end)
		if err != nil {
			return fail(err)
		}
		newIndex = append(newIndex, IndexEntry{Step: s.entry.Step, Off: off})
		off += n
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmpPath, w.path); err != nil {
		os.Remove(tmpPath)
		return 0, err
	}
	// Swap the writer onto the new file. prev/sinceKey/lastKey are
	// still valid: the tail groups were copied verbatim.
	nf, err := os.OpenFile(w.path, os.O_RDWR, 0o644)
	if err != nil {
		return 0, err
	}
	if _, err := nf.Seek(off, 0); err != nil {
		nf.Close()
		return 0, err
	}
	w.f.Close()
	w.f = nf
	w.size = off
	w.index = newIndex
	sort.Slice(w.index, func(i, j int) bool { return w.index[i].Off < w.index[j].Off })
	return w.size, nil
}

// recordEnd reads one record header at off and returns the offset just
// past that record.
func (w *Writer) recordEnd(off int64) (int64, error) {
	var hdr [headerLen]byte
	if _, err := w.f.ReadAt(hdr[:], off); err != nil {
		return 0, err
	}
	bodyLen := int64(leU32(hdr[:4]))
	return off + headerLen + bodyLen + crcLen, nil
}

// copyRange copies [start,end) of src to dst using ReadAt, leaving
// src's file position (the append cursor) untouched.
func copyRange(dst *os.File, src *os.File, start, end int64) (int64, error) {
	buf := make([]byte, 256<<10)
	var copied int64
	for start+copied < end {
		n := int64(len(buf))
		if rem := end - start - copied; rem < n {
			n = rem
		}
		rn, err := src.ReadAt(buf[:n], start+copied)
		if rn > 0 {
			if _, werr := dst.Write(buf[:rn]); werr != nil {
				return copied, werr
			}
			copied += int64(rn)
		}
		if err != nil {
			return copied, err
		}
	}
	return copied, nil
}

// WriteSeed creates a frame file at path containing one replicated
// keyframe record, via temp + rename. This is how a replacement shard
// materializes the victim's last keyframe before resuming the job: the
// file then continues through OpenAppend like any crash-recovered one.
func WriteSeed(path string, rec []byte) error {
	if _, err := DecodeKeyframe(rec); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".nbf-seed-*")
	if err != nil {
		return err
	}
	tmpPath := tmp.Name()
	if _, err := tmp.Write([]byte(magic)); err == nil {
		_, err = tmp.Write(rec)
	}
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmpPath)
		return err
	}
	if err := os.Rename(tmpPath, path); err != nil {
		os.Remove(tmpPath)
		return err
	}
	return nil
}
