package let

import (
	"math"

	"repro/internal/compute"
	"repro/internal/dist"
	"repro/internal/phys"
	"repro/internal/tree"
	"repro/internal/vec"
)

// Flat is the locally essential tree in structure-of-arrays form: the
// grafted peer sections first, then a DFS linearization of the rank's
// replicated tree (top nodes, local subtrees inlined, remote branch
// cells carrying graft references). Traversal sweeps the main region
// with the same accumulator-stack discipline as tree.FlatTree, deferring
// remote branches; deferred sections are then replayed and folded in
// defer order — exactly the slot order function shipping folds its
// replies in.
//
// Node kinds. Top and branch summaries have no owner-side tree node, so
// accepted interactions there charge the traversing particle's
// extra-load account (as function shipping does); local and section
// nodes charge per-node Load counters, the section ones flowing back to
// the owner as deltas.
const (
	kTop uint8 = iota
	kLocalInt
	kLocalLeaf
	kBranchInt  // remote branch cell: MAC, defer on reject
	kBranchLeaf // remote leaf-cell branch: always defer, no MAC
	kSecOpen
	kSecClosed // summary-only: MAC must accept, by construction
	kSecLeaf
)

// SecMeta locates one grafted section in the flat arrays.
type SecMeta struct {
	Owner     int
	Key       uint64
	Base, End int32
}

type letScratch struct {
	loads  []int64
	stats  tree.Stats
	acc    []vec.V3
	facc   []float64
	ends   []int32
	defers []int32
}

func (sc *letScratch) resetLoads(n int) {
	if cap(sc.loads) < n {
		sc.loads = make([]int64, n)
		return
	}
	sc.loads = sc.loads[:n]
	for i := range sc.loads {
		sc.loads[i] = 0
	}
}

// Flat is rebuilt (or reused via Reset) every step.
type Flat struct {
	kind             []uint8
	comX, comY, comZ []float64
	mass             []float64
	side             []float64
	skip             []int32
	leafLo, leafHi   []int32
	exps             []*phys.Expansion
	nodeRefs         []*tree.Node // local nodes for Load write-back
	graftLo, graftHi []int32      // per-node range into grafts
	grafts           []int32      // section indices; -1 = owner shipped nothing

	cols     colSet
	sections []SecMeta
	mainRoot int32

	loads   []int64
	scratch []letScratch
}

// colSet is the particle columns the leaf kernels read (local leaves and
// grafted section leaves interleaved in append order).
type colSet struct {
	id             []int32
	px, py, pz, pm []float64
}

func (c *colSet) reset() {
	c.id = c.id[:0]
	c.px, c.py, c.pz = c.px[:0], c.py[:0], c.pz[:0]
	c.pm = c.pm[:0]
}

// Reset clears the structure for a new step, keeping capacity.
func (f *Flat) Reset() {
	f.kind = f.kind[:0]
	f.comX, f.comY, f.comZ = f.comX[:0], f.comY[:0], f.comZ[:0]
	f.mass, f.side, f.skip = f.mass[:0], f.side[:0], f.skip[:0]
	f.leafLo, f.leafHi = f.leafLo[:0], f.leafHi[:0]
	f.exps = f.exps[:0]
	f.nodeRefs = f.nodeRefs[:0]
	f.graftLo, f.graftHi = f.graftLo[:0], f.graftHi[:0]
	f.grafts = f.grafts[:0]
	f.cols.reset()
	f.sections = f.sections[:0]
	f.mainRoot = 0
}

// NumNodes returns the total linearized node count (sections + main).
func (f *Flat) NumNodes() int { return len(f.kind) }

// NumSections returns the number of grafted sections.
func (f *Flat) NumSections() int { return len(f.sections) }

func (f *Flat) push(kind uint8, com vec.V3, mass, side float64, exp *phys.Expansion,
	ref *tree.Node, lo, hi int32) int32 {
	idx := int32(len(f.kind))
	f.kind = append(f.kind, kind)
	f.comX = append(f.comX, com.X)
	f.comY = append(f.comY, com.Y)
	f.comZ = append(f.comZ, com.Z)
	f.mass = append(f.mass, mass)
	f.side = append(f.side, side)
	f.skip = append(f.skip, idx+1)
	f.leafLo = append(f.leafLo, lo)
	f.leafHi = append(f.leafHi, hi)
	f.exps = append(f.exps, exp)
	f.nodeRefs = append(f.nodeRefs, ref)
	f.graftLo = append(f.graftLo, 0)
	f.graftHi = append(f.graftHi, 0)
	return idx
}

// AddSection grafts a decoded section's node columns; exps carries the
// per-node decoded expansions (nil entries for leaves; nil slice in
// force mode). Returns the section index branch nodes reference.
func (f *Flat) AddSection(owner int, sec *Section, exps []*phys.Expansion) int {
	base := int32(len(f.kind))
	pbase := int32(len(f.cols.id))
	for j := range sec.Kind {
		var k uint8
		lo, hi := int32(-1), int32(-1)
		switch sec.Kind[j] {
		case NodeLeaf:
			k = kSecLeaf
			lo, hi = pbase+sec.LeafLo[j], pbase+sec.LeafHi[j]
		case NodeClosed:
			k = kSecClosed
		default:
			k = kSecOpen
		}
		var e *phys.Expansion
		if exps != nil {
			e = exps[j]
		}
		idx := f.push(k, vec.V3{X: sec.ComX[j], Y: sec.ComY[j], Z: sec.ComZ[j]},
			sec.Mass[j], sec.Side[j], e, nil, lo, hi)
		f.skip[idx] = base + sec.Skip[j]
	}
	f.cols.id = append(f.cols.id, sec.PID...)
	f.cols.px = append(f.cols.px, sec.PX...)
	f.cols.py = append(f.cols.py, sec.PY...)
	f.cols.pz = append(f.cols.pz, sec.PZ...)
	f.cols.pm = append(f.cols.pm, sec.PM...)
	f.sections = append(f.sections, SecMeta{Owner: owner, Key: sec.BranchKey, Base: base, End: int32(len(f.kind))})
	return len(f.sections) - 1
}

// BeginMain marks the start of the main sweep region; call after all
// sections are grafted, before flattening the replicated tree.
func (f *Flat) BeginMain() { f.mainRoot = int32(len(f.kind)) }

// AddTop appends a replicated top node; close with CloseInternal after
// its children.
func (f *Flat) AddTop(com vec.V3, mass, side float64, exp *phys.Expansion) int32 {
	return f.push(kTop, com, mass, side, exp, nil, -1, -1)
}

// AddBranch appends a remote branch cell. grafts lists the section index
// per owner, in owner order (-1 when that owner shipped nothing: the MAC
// provably accepts, and the kernels panic if it ever rejects).
func (f *Flat) AddBranch(leafCell bool, com vec.V3, mass, side float64, exp *phys.Expansion, grafts []int32) {
	k := kBranchInt
	if leafCell {
		k = kBranchLeaf
	}
	idx := f.push(k, com, mass, side, exp, nil, -1, -1)
	f.graftLo[idx] = int32(len(f.grafts))
	f.grafts = append(f.grafts, grafts...)
	f.graftHi[idx] = int32(len(f.grafts))
}

// AddZero appends an empty local leaf standing in for a non-nil
// zero-count child: the traversal folds an exact zero vector and charges
// nothing, replaying the pointer walk's early return for such nodes.
func (f *Flat) AddZero() {
	lo := int32(len(f.cols.id))
	f.push(kLocalLeaf, vec.V3{}, 0, 0, nil, nil, lo, lo)
}

// CloseInternal patches an internal node's skip pointer past its
// completed subtree.
func (f *Flat) CloseInternal(idx int32) { f.skip[idx] = int32(len(f.kind)) }

// AddLocalSubtree inlines a locally-owned subtree, recording node
// references for Load write-back.
func (f *Flat) AddLocalSubtree(n *tree.Node) {
	if n.IsLeaf() {
		lo := int32(len(f.cols.id))
		for i := range n.Particles {
			p := &n.Particles[i]
			f.cols.id = append(f.cols.id, int32(p.ID))
			f.cols.px = append(f.cols.px, p.Pos.X)
			f.cols.py = append(f.cols.py, p.Pos.Y)
			f.cols.pz = append(f.cols.pz, p.Pos.Z)
			f.cols.pm = append(f.cols.pm, p.Mass)
		}
		f.push(kLocalLeaf, vec.V3{}, 0, 0, nil, n, lo, int32(len(f.cols.id)))
		return
	}
	idx := f.push(kLocalInt, n.COM, n.Mass, n.Box.LongestSide(), n.Exp, n, -1, -1)
	for _, c := range n.Children {
		if c != nil {
			f.AddLocalSubtree(c)
		}
	}
	f.skip[idx] = int32(len(f.kind))
}

// Seal finalizes construction: sizes the merged Load array.
func (f *Flat) Seal() {
	n := len(f.kind)
	if cap(f.loads) < n {
		f.loads = make([]int64, n)
	}
	f.loads = f.loads[:n]
	for i := range f.loads {
		f.loads[i] = 0
	}
}

// prepWorkers sizes and resets the per-worker shards before a sweep.
// Shards are cleared here, not inside the parallel body: when blocks
// don't divide evenly a trailing worker may get no block at all, and its
// stale shard must not leak into the worker-order merge.
func (f *Flat) prepWorkers(nParts, nNodes int) int {
	workers := compute.Workers(nParts)
	if workers < 1 {
		workers = 1
	}
	for len(f.scratch) < workers {
		f.scratch = append(f.scratch, letScratch{})
	}
	for w := 0; w < workers; w++ {
		f.scratch[w].resetLoads(nNodes)
		f.scratch[w].stats = tree.Stats{}
	}
	return workers
}

// ForceAll runs the force traversal for every particle, host-parallel
// via internal/compute, and merges the per-worker shards in worker order
// so results are invariant under GOMAXPROCS. out and extra are indexed
// like ps; extra receives each particle's summary-interaction flop
// charge accumulated with addend exAdd per accepted top/branch summary
// (the function-shipping extra-load account). Merged Load counters are
// left in the Flat for ApplyLocalLoads / SectionDeltas.
func (f *Flat) ForceAll(ps []dist.Particle, alpha, eps, exAdd float64, out []vec.V3, extra []float64) tree.Stats {
	n := len(f.kind)
	if len(ps) == 0 {
		return tree.Stats{}
	}
	workers := f.prepWorkers(len(ps), n)
	compute.ParallelBlocks(len(ps), func(worker, lo, hi int) {
		sc := &f.scratch[worker]
		for i := lo; i < hi; i++ {
			q := &ps[i]
			sc.defers = sc.defers[:0]
			a, ex := f.forceOne(sc, q.Pos, int32(q.ID), alpha, eps, exAdd)
			for _, si := range sc.defers {
				if si < 0 {
					panic("let: essential section missing for deferred branch")
				}
				a = a.Add(f.sectionForce(sc, f.sections[si], q.Pos, int32(q.ID), alpha, eps))
			}
			out[i] = a
			extra[i] = ex
		}
	})
	return f.merge(workers)
}

// PotentialAll is ForceAll for potential mode (leaf softening 0,
// accepted summaries evaluate their multipole expansions).
func (f *Flat) PotentialAll(ps []dist.Particle, alpha, exAdd float64, out []float64, extra []float64) tree.Stats {
	n := len(f.kind)
	if len(ps) == 0 {
		return tree.Stats{}
	}
	workers := f.prepWorkers(len(ps), n)
	compute.ParallelBlocks(len(ps), func(worker, lo, hi int) {
		sc := &f.scratch[worker]
		for i := lo; i < hi; i++ {
			q := &ps[i]
			sc.defers = sc.defers[:0]
			phi, ex := f.potOne(sc, q.Pos, int32(q.ID), alpha, exAdd)
			for _, si := range sc.defers {
				if si < 0 {
					panic("let: essential section missing for deferred branch")
				}
				phi += f.sectionPot(sc, f.sections[si], q.Pos, int32(q.ID), alpha)
			}
			out[i] = phi
			extra[i] = ex
		}
	})
	return f.merge(workers)
}

func (f *Flat) merge(workers int) tree.Stats {
	var stats tree.Stats
	for w := 0; w < workers; w++ {
		sc := &f.scratch[w]
		stats.Add(sc.stats)
		for j, v := range sc.loads {
			if v != 0 {
				f.loads[j] += v
			}
		}
	}
	return stats
}

// leafAccel folds cols[lo:hi) from a zero accumulator in column order —
// the same arithmetic, including the signed-zero-preserving explicit add
// of a zero contribution, as tree.FlatTree's fused kernel.
func (f *Flat) leafAccel(lo, hi, self int32, pos vec.V3, e2 float64, s *tree.Stats) vec.V3 {
	ids, px, py, pz, ms := f.cols.id, f.cols.px, f.cols.py, f.cols.pz, f.cols.pm
	var ax, ay, az float64
	for j := lo; j < hi; j++ {
		if ids[j] == self {
			continue
		}
		dx, dy, dz := px[j]-pos.X, py[j]-pos.Y, pz[j]-pos.Z
		r2 := dx*dx + dy*dy + dz*dz + e2
		if r2 != 0 {
			inv := 1 / math.Sqrt(r2)
			g := phys.G * ms[j] * inv * inv * inv
			ax += g * dx
			ay += g * dy
			az += g * dz
		} else {
			ax += 0
			ay += 0
			az += 0
		}
		s.PP++
	}
	return vec.V3{X: ax, Y: ay, Z: az}
}

func (f *Flat) leafPot(lo, hi, self int32, pos vec.V3, s *tree.Stats) float64 {
	ids, px, py, pz, ms := f.cols.id, f.cols.px, f.cols.py, f.cols.pz, f.cols.pm
	var phi float64
	for j := lo; j < hi; j++ {
		if ids[j] == self {
			continue
		}
		phi += phys.Potential(pos, vec.V3{X: px[j], Y: py[j], Z: pz[j]}, ms[j], 0)
		s.PP++
	}
	return phi
}

// forceOne sweeps the main region for one particle. The arithmetic —
// shared difference vector for MAC and accepted-cluster kernel,
// push/fold accumulator stack on reject/close — replays the
// function-shipping traversal bit-exactly; deferred branches add an
// explicit zero vector (not a no-op under signed zeros) and record their
// graft list in sc.defers.
func (f *Flat) forceOne(sc *letScratch, pos vec.V3, self int32, alpha, eps float64, exAdd float64) (vec.V3, float64) {
	loads := sc.loads
	e2 := eps * eps
	comX, comY, comZ := f.comX, f.comY, f.comZ
	mass, side, skip, kind := f.mass, f.side, f.skip, f.kind
	var extra float64

	// Root: the traversal result is returned directly, never folded into
	// an enclosing accumulator (0+x is not an identity for −0).
	r := f.mainRoot
	switch kind[r] {
	case kLocalLeaf:
		lo, hi := f.leafLo[r], f.leafHi[r]
		loads[r] += int64(hi - lo)
		return f.leafAccel(lo, hi, self, pos, e2, &sc.stats), extra
	case kBranchLeaf:
		f.deferGrafts(sc, r)
		return vec.V3{}, extra
	}
	sc.stats.MACTests++
	{
		dx, dy, dz := comX[r]-pos.X, comY[r]-pos.Y, comZ[r]-pos.Z
		n2 := dx*dx + dy*dy + dz*dz
		if d := math.Sqrt(n2); d != 0 && side[r]/d < alpha {
			sc.stats.PC++
			switch kind[r] {
			case kLocalInt:
				loads[r]++
			default:
				extra += exAdd
			}
			inv := 1 / math.Sqrt(n2 + e2)
			g := phys.G * mass[r] * inv * inv * inv
			return vec.V3{X: g * dx, Y: g * dy, Z: g * dz}, extra
		}
	}
	if kind[r] == kBranchInt {
		f.deferGrafts(sc, r)
		return vec.V3{}, extra
	}

	var top vec.V3
	stack := sc.acc[:0]
	ends := sc.ends[:0]
	n := skip[r]
	for i := r + 1; i < n; {
		for len(ends) > 0 && ends[len(ends)-1] == i {
			ends = ends[:len(ends)-1]
			top = stack[len(stack)-1].Add(top)
			stack = stack[:len(stack)-1]
		}
		switch kind[i] {
		case kLocalLeaf:
			lo, hi := f.leafLo[i], f.leafHi[i]
			loads[i] += int64(hi - lo)
			top = top.Add(f.leafAccel(lo, hi, self, pos, e2, &sc.stats))
			i = skip[i]
			continue
		case kBranchLeaf:
			top = top.Add(vec.V3{})
			f.deferGrafts(sc, i)
			i = skip[i]
			continue
		}
		sc.stats.MACTests++
		dx, dy, dz := comX[i]-pos.X, comY[i]-pos.Y, comZ[i]-pos.Z
		n2 := dx*dx + dy*dy + dz*dz
		if d := math.Sqrt(n2); d != 0 && side[i]/d < alpha {
			sc.stats.PC++
			if kind[i] == kLocalInt {
				loads[i]++
			} else {
				extra += exAdd
			}
			inv := 1 / math.Sqrt(n2 + e2)
			g := phys.G * mass[i] * inv * inv * inv
			top = vec.V3{X: top.X + g*dx, Y: top.Y + g*dy, Z: top.Z + g*dz}
			i = skip[i]
			continue
		}
		if kind[i] == kBranchInt {
			top = top.Add(vec.V3{})
			f.deferGrafts(sc, i)
			i = skip[i]
			continue
		}
		stack = append(stack, top)
		top = vec.V3{}
		ends = append(ends, skip[i])
		i++
	}
	for j := len(ends) - 1; j >= 0; j-- {
		top = stack[j].Add(top)
	}
	sc.acc, sc.ends = stack[:0], ends[:0]
	return top, extra
}

func (f *Flat) deferGrafts(sc *letScratch, i int32) {
	sc.defers = append(sc.defers, f.grafts[f.graftLo[i]:f.graftHi[i]]...)
}

// sectionForce replays the owner-side service of one deferred branch:
// evaluation starts below the (already rejected) branch root, exactly as
// serveForce does. Section loads land in the worker shard and flow back
// to the owner as deltas.
func (f *Flat) sectionForce(sc *letScratch, m SecMeta, pos vec.V3, self int32, alpha, eps float64) vec.V3 {
	loads := sc.loads
	e2 := eps * eps
	base := m.Base
	if f.kind[base] == kSecLeaf {
		lo, hi := f.leafLo[base], f.leafHi[base]
		loads[base] += int64(hi - lo)
		return f.leafAccel(lo, hi, self, pos, e2, &sc.stats)
	}
	loads[base]++ // serveForce: branch.Load++ per served visit
	comX, comY, comZ := f.comX, f.comY, f.comZ
	mass, side, skip, kind := f.mass, f.side, f.skip, f.kind
	var top vec.V3
	stack := sc.acc[:0]
	ends := sc.ends[:0]
	for i := base + 1; i < m.End; {
		for len(ends) > 0 && ends[len(ends)-1] == i {
			ends = ends[:len(ends)-1]
			top = stack[len(stack)-1].Add(top)
			stack = stack[:len(stack)-1]
		}
		if kind[i] == kSecLeaf {
			lo, hi := f.leafLo[i], f.leafHi[i]
			loads[i] += int64(hi - lo)
			top = top.Add(f.leafAccel(lo, hi, self, pos, e2, &sc.stats))
			i = skip[i]
			continue
		}
		sc.stats.MACTests++
		dx, dy, dz := comX[i]-pos.X, comY[i]-pos.Y, comZ[i]-pos.Z
		n2 := dx*dx + dy*dy + dz*dz
		if d := math.Sqrt(n2); d != 0 && side[i]/d < alpha {
			sc.stats.PC++
			loads[i]++
			inv := 1 / math.Sqrt(n2 + e2)
			g := phys.G * mass[i] * inv * inv * inv
			top = vec.V3{X: top.X + g*dx, Y: top.Y + g*dy, Z: top.Z + g*dz}
			i = skip[i]
			continue
		}
		if kind[i] == kSecClosed {
			panic("let: essential-set criterion violated (closed node rejected by MAC)")
		}
		stack = append(stack, top)
		top = vec.V3{}
		ends = append(ends, skip[i])
		i++
	}
	for j := len(ends) - 1; j >= 0; j-- {
		top = stack[j].Add(top)
	}
	sc.acc, sc.ends = stack[:0], ends[:0]
	return top
}

// potOne is forceOne for potential mode.
func (f *Flat) potOne(sc *letScratch, pos vec.V3, self int32, alpha, exAdd float64) (float64, float64) {
	loads := sc.loads
	comX, comY, comZ := f.comX, f.comY, f.comZ
	side, skip, kind := f.side, f.skip, f.kind
	var extra float64

	r := f.mainRoot
	switch kind[r] {
	case kLocalLeaf:
		lo, hi := f.leafLo[r], f.leafHi[r]
		loads[r] += int64(hi - lo)
		return f.leafPot(lo, hi, self, pos, &sc.stats), extra
	case kBranchLeaf:
		f.deferGrafts(sc, r)
		return 0, extra
	}
	sc.stats.MACTests++
	{
		dx, dy, dz := comX[r]-pos.X, comY[r]-pos.Y, comZ[r]-pos.Z
		n2 := dx*dx + dy*dy + dz*dz
		if d := math.Sqrt(n2); d != 0 && side[r]/d < alpha {
			sc.stats.PC++
			if kind[r] == kLocalInt {
				loads[r]++
			} else {
				extra += exAdd
			}
			return f.exps[r].EvalPotential(pos), extra
		}
	}
	if kind[r] == kBranchInt {
		f.deferGrafts(sc, r)
		return 0, extra
	}

	var top float64
	stack := sc.facc[:0]
	ends := sc.ends[:0]
	n := skip[r]
	for i := r + 1; i < n; {
		for len(ends) > 0 && ends[len(ends)-1] == i {
			ends = ends[:len(ends)-1]
			top = stack[len(stack)-1] + top
			stack = stack[:len(stack)-1]
		}
		switch kind[i] {
		case kLocalLeaf:
			lo, hi := f.leafLo[i], f.leafHi[i]
			loads[i] += int64(hi - lo)
			top += f.leafPot(lo, hi, self, pos, &sc.stats)
			i = skip[i]
			continue
		case kBranchLeaf:
			top += 0
			f.deferGrafts(sc, i)
			i = skip[i]
			continue
		}
		sc.stats.MACTests++
		dx, dy, dz := comX[i]-pos.X, comY[i]-pos.Y, comZ[i]-pos.Z
		n2 := dx*dx + dy*dy + dz*dz
		if d := math.Sqrt(n2); d != 0 && side[i]/d < alpha {
			sc.stats.PC++
			if kind[i] == kLocalInt {
				loads[i]++
			} else {
				extra += exAdd
			}
			top += f.exps[i].EvalPotential(pos)
			i = skip[i]
			continue
		}
		if kind[i] == kBranchInt {
			top += 0
			f.deferGrafts(sc, i)
			i = skip[i]
			continue
		}
		stack = append(stack, top)
		top = 0
		ends = append(ends, skip[i])
		i++
	}
	for j := len(ends) - 1; j >= 0; j-- {
		top = stack[j] + top
	}
	sc.facc, sc.ends = stack[:0], ends[:0]
	return top, extra
}

// sectionPot is sectionForce for potential mode.
func (f *Flat) sectionPot(sc *letScratch, m SecMeta, pos vec.V3, self int32, alpha float64) float64 {
	loads := sc.loads
	base := m.Base
	if f.kind[base] == kSecLeaf {
		lo, hi := f.leafLo[base], f.leafHi[base]
		loads[base] += int64(hi - lo)
		return f.leafPot(lo, hi, self, pos, &sc.stats)
	}
	loads[base]++
	comX, comY, comZ := f.comX, f.comY, f.comZ
	side, skip, kind := f.side, f.skip, f.kind
	var top float64
	stack := sc.facc[:0]
	ends := sc.ends[:0]
	for i := base + 1; i < m.End; {
		for len(ends) > 0 && ends[len(ends)-1] == i {
			ends = ends[:len(ends)-1]
			top = stack[len(stack)-1] + top
			stack = stack[:len(stack)-1]
		}
		if kind[i] == kSecLeaf {
			lo, hi := f.leafLo[i], f.leafHi[i]
			loads[i] += int64(hi - lo)
			top += f.leafPot(lo, hi, self, pos, &sc.stats)
			i = skip[i]
			continue
		}
		sc.stats.MACTests++
		dx, dy, dz := comX[i]-pos.X, comY[i]-pos.Y, comZ[i]-pos.Z
		n2 := dx*dx + dy*dy + dz*dz
		if d := math.Sqrt(n2); d != 0 && side[i]/d < alpha {
			sc.stats.PC++
			loads[i]++
			top += f.exps[i].EvalPotential(pos)
			i = skip[i]
			continue
		}
		if kind[i] == kSecClosed {
			panic("let: essential-set criterion violated (closed node rejected by MAC)")
		}
		stack = append(stack, top)
		top = 0
		ends = append(ends, skip[i])
		i++
	}
	for j := len(ends) - 1; j >= 0; j-- {
		top = stack[j] + top
	}
	sc.facc, sc.ends = stack[:0], ends[:0]
	return top
}

// ApplyLocalLoads adds the merged Load counters of local nodes back to
// their tree nodes.
func (f *Flat) ApplyLocalLoads() {
	for i, n := range f.nodeRefs {
		if n != nil && f.loads[i] != 0 {
			n.Load += f.loads[i]
		}
	}
}

// SectionDeltas appends section si's non-zero Load deltas (ordinals are
// section-relative, matching the owner's BuildSection node order) to the
// given slices and returns them.
func (f *Flat) SectionDeltas(si int, nodes []int32, deltas []int64) ([]int32, []int64) {
	m := f.sections[si]
	for i := m.Base; i < m.End; i++ {
		if v := f.loads[i]; v != 0 {
			nodes = append(nodes, i-m.Base)
			deltas = append(deltas, v)
		}
	}
	return nodes, deltas
}

// Section returns the metadata of section si.
func (f *Flat) Section(si int) SecMeta { return f.sections[si] }
