// Package let implements the locally-essential-tree (LET) exchange of
// Dubinski's parallel tree code, adapted to the paper's three
// formulations: instead of shipping particles to the data (function
// shipping) or fetching cells on demand (data shipping), each rank
// computes, per peer, the exact subset of its local subtrees the peer's
// particles can possibly open — the *essential set* — and ships it in
// one bulk message per step. The receiving rank grafts the returned node
// columns beside a flat linearization of its replicated tree and then
// traverses purely locally, host-parallel within the rank.
//
// Correctness contract (the two-clock rule): the traversal kernels in
// flat.go replay the function-shipping engine's floating-point reduction
// order exactly — same MAC arithmetic, same accumulator-stack
// open/close structure, same signed-zero adds at deferred branches — so
// accelerations, potentials, interaction Stats, and per-node Load
// counters are bit-identical to function shipping. The essential-set
// criterion below is conservative: a node is only summarized (closed)
// when the MAC provably accepts it from every point of the peer's
// bounding box; the kernels panic if that guarantee is ever violated.
package let

import (
	"math"

	"repro/internal/dist"
	"repro/internal/tree"
	"repro/internal/vec"
)

// Bounds is the axis-aligned bounding box of one rank's particles — the
// domain against which owners evaluate the essential-set criterion. The
// min/max corners are exact copies of particle coordinates (no
// arithmetic), so a particle on a face has axis distance exactly zero.
type Bounds struct {
	Has      bool // false when the rank currently owns no particles
	Min, Max vec.V3
}

// BoundsWords is the modelled wire size of one Bounds record.
const BoundsWords = 7

// BoundsOf returns the bounding box of the particles' positions.
func BoundsOf(ps []dist.Particle) Bounds {
	if len(ps) == 0 {
		return Bounds{}
	}
	b := Bounds{Has: true, Min: ps[0].Pos, Max: ps[0].Pos}
	for i := 1; i < len(ps); i++ {
		b.Min = b.Min.Min(ps[i].Pos)
		b.Max = b.Max.Max(ps[i].Pos)
	}
	return b
}

// MinDist returns the Euclidean distance from p to the nearest point of
// the box (zero when p is inside).
func (b Bounds) MinDist(p vec.V3) float64 {
	dx := axisDist(b.Min.X, b.Max.X, p.X)
	dy := axisDist(b.Min.Y, b.Max.Y, p.Y)
	dz := axisDist(b.Min.Z, b.Max.Z, p.Z)
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

func axisDist(lo, hi, x float64) float64 {
	if x < lo {
		return lo - x
	}
	if x > hi {
		return x - hi
	}
	return 0
}

// OpenMargin is the relative safety margin of the closed test. The MAC a
// peer replays computes side/dist(q,com) with its own roundings; the
// owner's minDist is a different expression with different roundings.
// True distances satisfy dist(q,com) ≥ minDist for every q in the box,
// but both sides are computed in floating point, so closing demands a
// margin that dwarfs the few-ulp disagreement (~1e-16 relative) between
// the two computations. Opening a node that would have been accepted is
// merely conservative; closing one that gets rejected is a correctness
// violation, which the traversal kernels turn into a panic.
const OpenMargin = 1e-12

// Closed reports whether the MAC provably accepts a node with the given
// centre of mass and box side from every point of the peer bounds: the
// node can be shipped as a summary with no children.
func (b Bounds) Closed(com vec.V3, side float64, alpha float64) bool {
	if !b.Has {
		return true
	}
	d := b.MinDist(com)
	return d*(1-OpenMargin) > side/alpha
}

// Node kinds of a serialized essential set.
const (
	// NodeOpen is an internal node shipped with its children: the MAC can
	// fail for some point of the peer bounds, so the peer must be able to
	// descend it. Its summary is still shipped — individual particles may
	// accept it.
	NodeOpen uint8 = iota
	// NodeClosed is an internal node shipped as a bare summary: the MAC
	// provably accepts it from everywhere in the peer bounds.
	NodeClosed
	// NodeLeaf carries a particle range (possibly empty, standing in for
	// a zero-count node that contributes an exact zero vector).
	NodeLeaf
)

// Section is the serialized essential set of one branch subtree for one
// peer: node columns in DFS (Morton) order. Node index within the
// section is the ordinal the peer uses to return per-node Load deltas.
type Section struct {
	// BranchKey is the packed CellKey of the branch root this section
	// describes.
	BranchKey uint64
	// Epoch is the step at which this section's content last changed —
	// the cross-step cache key.
	Epoch int64
	// Cached marks a marker section: content is byte-identical to what
	// the peer already holds under (owner, BranchKey, Epoch); no columns
	// follow.
	Cached bool

	Kind             []uint8
	Skip             []int32 // index one past the node's subtree, section-relative
	ComX, ComY, ComZ []float64
	Mass             []float64
	Side             []float64 // precomputed Box.LongestSide()
	LeafLo, LeafHi   []int32   // particle range for NodeLeaf; -1 otherwise

	// Exp holds ExpStride floats per non-leaf node, in node order
	// (potential mode only).
	Exp       []float64
	ExpStride int32

	// Leaf particle columns, indexed by LeafLo/LeafHi.
	PID            []int32
	PX, PY, PZ, PM []float64
}

// NumNodes returns the number of serialized nodes.
func (s *Section) NumNodes() int { return len(s.Kind) }

// WireWords returns the modelled wire size in 8-byte words: two words of
// header (key + epoch/flags); per internal node six words of summary
// (com, mass, side, kind/skip) plus the expansion floats; per leaf two
// words of framing plus four words per particle (id, mass packed with
// the three coordinates — the same per-particle model the data-shipping
// engine uses).
func (s *Section) WireWords() int {
	if s.Cached {
		return 2
	}
	w := 2
	for i, k := range s.Kind {
		if k == NodeLeaf {
			w += 2 + 4*int(s.LeafHi[i]-s.LeafLo[i])
		} else {
			w += 6 + int(s.ExpStride)
		}
	}
	return w
}

// BuildSection walks the subtree rooted at root and serializes its
// essential set for a peer with the given bounds. alwaysShip forces
// shipping even when the root is provably closed — set for leaf-cell
// branches (count ≤ leafCap), which peers defer unconditionally without
// a MAC test. withExp ships per-node expansion floats (potential mode).
//
// Returns the section, the owner-side nodes aligned with its ordinals
// (for Load write-back), and the number of nodes examined (for flop
// accounting). A nil section means nothing is essential: the peer's MAC
// provably accepts the root summary everywhere.
func BuildSection(root *tree.Node, bb Bounds, alpha float64, withExp bool, alwaysShip bool) (*Section, []*tree.Node, int) {
	if !bb.Has || root == nil || root.Count == 0 {
		return nil, nil, 0
	}
	visited := 1
	rootSide := root.Box.LongestSide()
	if !alwaysShip && !root.IsLeaf() && bb.Closed(root.COM, rootSide, alpha) {
		return nil, nil, visited
	}
	if root.IsLeaf() && !alwaysShip && bb.Closed(root.COM, rootSide, alpha) {
		// Oversized max-depth leaf the peer will MAC-test and provably
		// accept: nothing to ship.
		return nil, nil, visited
	}
	sec := &Section{}
	var nodes []*tree.Node

	appendLeaf := func(n *tree.Node) {
		lo := int32(len(sec.PID))
		for i := range n.Particles {
			p := &n.Particles[i]
			sec.PID = append(sec.PID, int32(p.ID))
			sec.PX = append(sec.PX, p.Pos.X)
			sec.PY = append(sec.PY, p.Pos.Y)
			sec.PZ = append(sec.PZ, p.Pos.Z)
			sec.PM = append(sec.PM, p.Mass)
		}
		sec.Kind = append(sec.Kind, NodeLeaf)
		sec.Skip = append(sec.Skip, int32(len(sec.Kind)))
		sec.ComX = append(sec.ComX, 0)
		sec.ComY = append(sec.ComY, 0)
		sec.ComZ = append(sec.ComZ, 0)
		sec.Mass = append(sec.Mass, 0)
		sec.Side = append(sec.Side, 0)
		sec.LeafLo = append(sec.LeafLo, lo)
		sec.LeafHi = append(sec.LeafHi, int32(len(sec.PID)))
		nodes = append(nodes, n)
	}
	appendInternal := func(n *tree.Node, kind uint8, side float64) int {
		sec.Kind = append(sec.Kind, kind)
		sec.Skip = append(sec.Skip, int32(len(sec.Kind))) // patched for NodeOpen
		sec.ComX = append(sec.ComX, n.COM.X)
		sec.ComY = append(sec.ComY, n.COM.Y)
		sec.ComZ = append(sec.ComZ, n.COM.Z)
		sec.Mass = append(sec.Mass, n.Mass)
		sec.Side = append(sec.Side, side)
		sec.LeafLo = append(sec.LeafLo, -1)
		sec.LeafHi = append(sec.LeafHi, -1)
		if withExp && n.Exp != nil {
			fs := n.Exp.Floats()
			if sec.ExpStride == 0 {
				sec.ExpStride = int32(len(fs))
			}
			sec.Exp = append(sec.Exp, fs...)
		}
		nodes = append(nodes, n)
		return len(sec.Kind) - 1
	}

	var add func(n *tree.Node)
	add = func(n *tree.Node) {
		visited++
		if n.Count == 0 || n.IsLeaf() {
			// Zero-count nodes serialize as empty leaves: the peer folds an
			// exact zero vector, matching the pointer traversal's early
			// return, and charges no load.
			appendLeaf(n)
			return
		}
		side := n.Box.LongestSide()
		if bb.Closed(n.COM, side, alpha) {
			appendInternal(n, NodeClosed, side)
			return
		}
		idx := appendInternal(n, NodeOpen, side)
		for _, c := range n.Children {
			if c != nil {
				add(c)
			}
		}
		sec.Skip[idx] = int32(len(sec.Kind))
	}

	if root.IsLeaf() {
		appendLeaf(root)
		return sec, nodes, visited
	}
	idx := appendInternal(root, NodeOpen, rootSide)
	for _, c := range root.Children {
		if c != nil {
			add(c)
		}
	}
	sec.Skip[idx] = int32(len(sec.Kind))
	return sec, nodes, visited
}

// Equal reports whether two sections carry bit-identical content
// (ignoring Epoch and Cached). Floats compare by bit pattern: a +0/−0
// flip changes downstream signed-zero arithmetic and must miss the
// cache.
func (s *Section) Equal(o *Section) bool {
	if s.BranchKey != o.BranchKey || s.ExpStride != o.ExpStride {
		return false
	}
	if !bytesEq(s.Kind, o.Kind) || !i32Eq(s.Skip, o.Skip) ||
		!i32Eq(s.LeafLo, o.LeafLo) || !i32Eq(s.LeafHi, o.LeafHi) ||
		!i32Eq(s.PID, o.PID) {
		return false
	}
	return f64Eq(s.ComX, o.ComX) && f64Eq(s.ComY, o.ComY) && f64Eq(s.ComZ, o.ComZ) &&
		f64Eq(s.Mass, o.Mass) && f64Eq(s.Side, o.Side) && f64Eq(s.Exp, o.Exp) &&
		f64Eq(s.PX, o.PX) && f64Eq(s.PY, o.PY) && f64Eq(s.PZ, o.PZ) && f64Eq(s.PM, o.PM)
}

func bytesEq(a, b []uint8) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func i32Eq(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func f64Eq(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}
