package msg

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
)

// run executes body on a fresh p-processor ideal machine.
func run(t *testing.T, p int, body func(*Proc)) []Stats {
	t.Helper()
	m := NewMachine(p, Ideal())
	return m.Run(body)
}

func TestPointToPoint(t *testing.T) {
	run(t, 2, func(p *Proc) {
		if p.ID() == 0 {
			p.Send(1, 7, "hello", 1)
		} else {
			data, from := p.Recv(0, 7)
			if data.(string) != "hello" || from != 0 {
				t.Errorf("got %v from %d", data, from)
			}
		}
	})
}

func TestTagMatching(t *testing.T) {
	// Messages with unexpected tags must not satisfy a Recv for another
	// tag, regardless of arrival order.
	run(t, 2, func(p *Proc) {
		if p.ID() == 0 {
			p.Send(1, 1, "first", 1)
			p.Send(1, 2, "second", 1)
		} else {
			data, _ := p.Recv(0, 2)
			if data.(string) != "second" {
				t.Errorf("tag 2 returned %v", data)
			}
			data, _ = p.Recv(0, 1)
			if data.(string) != "first" {
				t.Errorf("tag 1 returned %v", data)
			}
		}
	})
}

func TestAnySourceRecv(t *testing.T) {
	run(t, 4, func(p *Proc) {
		if p.ID() == 0 {
			seen := map[int]bool{}
			for i := 0; i < 3; i++ {
				_, from := p.Recv(AnySource, 5)
				seen[from] = true
			}
			if len(seen) != 3 {
				t.Errorf("sources seen: %v", seen)
			}
		} else {
			p.Send(0, 5, p.ID(), 1)
		}
	})
}

func TestTryRecv(t *testing.T) {
	run(t, 2, func(p *Proc) {
		if p.ID() == 0 {
			if _, _, ok := p.TryRecv(AnySource, 9); ok {
				t.Error("TryRecv matched nothing")
			}
			p.Send(1, 3, 42, 1)
		} else {
			data, _ := p.Recv(0, 3)
			if data.(int) != 42 {
				t.Errorf("got %v", data)
			}
			// Now the queue is empty again.
			if _, _, ok := p.TryRecv(AnySource, AnyTag); ok {
				t.Error("TryRecv found residue")
			}
		}
	})
}

func TestSelfSend(t *testing.T) {
	run(t, 1, func(p *Proc) {
		p.Send(0, 1, "loop", 2)
		data, from := p.Recv(0, 1)
		if data.(string) != "loop" || from != 0 {
			t.Errorf("self-send returned %v from %d", data, from)
		}
	})
}

func TestBarrierOrdering(t *testing.T) {
	// A counter incremented before the barrier must be complete at every
	// processor after it.
	var before int64
	run(t, 8, func(p *Proc) {
		atomic.AddInt64(&before, 1)
		p.Barrier()
		if v := atomic.LoadInt64(&before); v != 8 {
			t.Errorf("proc %d saw %d pre-barrier increments", p.ID(), v)
		}
	})
}

func TestBcastAllSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 8, 13, 16} {
		for root := 0; root < n; root += 1 + n/3 {
			m := NewMachine(n, Ideal())
			m.Run(func(p *Proc) {
				var payload any
				if p.ID() == root {
					payload = fmt.Sprintf("from-%d", root)
				}
				got := p.Bcast(root, payload, 1)
				if got.(string) != fmt.Sprintf("from-%d", root) {
					t.Errorf("n=%d root=%d proc=%d got %v", n, root, p.ID(), got)
				}
			})
		}
	}
}

func TestAllGatherAllSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8, 16} {
		m := NewMachine(n, Ideal())
		m.Run(func(p *Proc) {
			got := p.AllGather(p.ID()*10, 1)
			if len(got) != n {
				t.Errorf("n=%d: AllGather returned %d items", n, len(got))
				return
			}
			for r, v := range got {
				if v.(int) != r*10 {
					t.Errorf("n=%d proc=%d: rank %d item = %v", n, p.ID(), r, v)
				}
			}
		})
	}
}

func TestAllToAllAllSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8, 11} {
		m := NewMachine(n, Ideal())
		m.Run(func(p *Proc) {
			payloads := make([]any, n)
			words := make([]int, n)
			for i := range payloads {
				payloads[i] = p.ID()*1000 + i
				words[i] = 1
			}
			got := p.AllToAll(payloads, words)
			for src, v := range got {
				if v.(int) != src*1000+p.ID() {
					t.Errorf("n=%d proc %d: from %d got %v", n, p.ID(), src, v)
				}
			}
		})
	}
}

func TestAllReduceSumAndMax(t *testing.T) {
	for _, n := range []int{1, 2, 4, 5, 8} {
		m := NewMachine(n, Ideal())
		m.Run(func(p *Proc) {
			x := []float64{float64(p.ID()), 1, float64(-p.ID())}
			sum := p.SumF64(x)
			wantSum := float64(n*(n-1)) / 2
			if sum[0] != wantSum || sum[1] != float64(n) || sum[2] != -wantSum {
				t.Errorf("n=%d: sum = %v", n, sum)
			}
			mx := p.MaxF64([]float64{float64(p.ID())})
			if mx[0] != float64(n-1) {
				t.Errorf("n=%d: max = %v", n, mx)
			}
		})
	}
}

func TestGather(t *testing.T) {
	run(t, 6, func(p *Proc) {
		got := p.Gather(2, p.ID()*p.ID(), 1)
		if p.ID() != 2 {
			if got != nil {
				t.Errorf("non-root received %v", got)
			}
			return
		}
		for r, v := range got {
			if v.(int) != r*r {
				t.Errorf("rank %d item = %v", r, v)
			}
		}
	})
}

func TestCollectivesBackToBack(t *testing.T) {
	// Sequenced tags keep consecutive collectives from stealing each
	// other's messages even when processors race ahead.
	run(t, 8, func(p *Proc) {
		for i := 0; i < 20; i++ {
			got := p.AllGather(p.ID()+i, 1)
			for r, v := range got {
				if v.(int) != r+i {
					t.Fatalf("round %d rank %d: %v", i, r, v)
				}
			}
			p.Barrier()
			sum := p.SumF64([]float64{1})
			if sum[0] != 8 {
				t.Fatalf("round %d sum=%v", i, sum)
			}
		}
	})
}

func TestSimulatedClockAdvances(t *testing.T) {
	m := NewMachine(2, NCube2())
	stats := m.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Compute(2e6) // 1 second of compute at 2 Mflop/s
			p.Send(1, 1, "x", 100)
		} else {
			p.Recv(0, 1)
			if p.Now() < 1.0 {
				t.Errorf("receiver clock %v did not wait for sender", p.Now())
			}
		}
	})
	if stats[0].ComputeTime < 0.99 || stats[0].ComputeTime > 1.01 {
		t.Errorf("compute time = %v", stats[0].ComputeTime)
	}
	if stats[0].Messages != 1 || stats[0].Words != 100 {
		t.Errorf("message accounting: %+v", stats[0])
	}
	// Receiver's comm time includes the wait for the sender's compute.
	if stats[1].CommTime < 0.99 {
		t.Errorf("receiver comm time = %v", stats[1].CommTime)
	}
}

func TestTransferTimeModel(t *testing.T) {
	c := NCube2()
	// Cut-through: ts + th·hops + tw·m.
	got := c.TransferTime(10, 3)
	want := c.TS + 3*c.TH + 10*c.TW
	if math.Abs(got-want) > 1e-18 {
		t.Fatalf("cut-through = %v, want %v", got, want)
	}
	c.StoreAndForward = true
	got = c.TransferTime(10, 3)
	want = 3 * (c.TS + 10*c.TW)
	if math.Abs(got-want) > 1e-18 {
		t.Fatalf("store-and-forward = %v, want %v", got, want)
	}
}

func TestHops(t *testing.T) {
	hc := NCube2()
	if hc.Hops(0, 0, 16) != 0 {
		t.Fatal("self hops != 0")
	}
	if hc.Hops(0b0000, 0b1111, 16) != 4 {
		t.Fatalf("hypercube hops = %d", hc.Hops(0, 15, 16))
	}
	ft := CM5()
	if h := ft.Hops(0, 255, 256); h != 2*4 {
		t.Fatalf("fat-tree hops for p=256: %d", h)
	}
	if h := ft.Hops(0, 3, 4); h != 2 {
		t.Fatalf("fat-tree hops for p=4: %d", h)
	}
}

func TestMaxTimeAndTotals(t *testing.T) {
	stats := []Stats{
		{ComputeTime: 1, CommTime: 0.5, Messages: 3, Words: 30},
		{ComputeTime: 0.2, CommTime: 2, Messages: 1, Words: 5},
	}
	if MaxTime(stats) != 2.2 {
		t.Fatalf("MaxTime = %v", MaxTime(stats))
	}
	if TotalWords(stats) != 35 || TotalMessages(stats) != 4 {
		t.Fatal("totals wrong")
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	m := NewMachine(4, NCube2())
	m.Run(func(p *Proc) {
		if p.ID() == 2 {
			p.Compute(10e6) // 5 seconds
		}
		t0 := p.GlobalMaxTime()
		if t0 < 5.0 {
			t.Errorf("proc %d: global time %v below slowest proc", p.ID(), t0)
		}
	})
}

func TestRunPropagatesPanic(t *testing.T) {
	m := NewMachine(4, Ideal())
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic not propagated")
		}
		if !strings.Contains(fmt.Sprint(r), "boom") {
			t.Fatalf("unexpected panic payload: %v", r)
		}
	}()
	m.Run(func(p *Proc) {
		if p.ID() == 3 {
			panic("boom")
		}
		// Peers block in Recv and must be released by the panic path.
		p.Recv(AnySource, 1)
	})
}

func TestMachineReusableAfterRun(t *testing.T) {
	m := NewMachine(4, Ideal())
	for i := 0; i < 3; i++ {
		m.Run(func(p *Proc) {
			got := p.AllGather(p.ID(), 1)
			if len(got) != 4 {
				t.Errorf("run %d: %v", i, got)
			}
		})
	}
}

func TestSendValidation(t *testing.T) {
	m := NewMachine(2, Ideal())
	defer func() {
		if recover() == nil {
			t.Fatal("invalid destination accepted")
		}
	}()
	m.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Send(5, 1, nil, 0)
		}
	})
}

func TestDeterministicClocksAcrossRuns(t *testing.T) {
	// The simulated clock depends only on the communication pattern, not
	// on goroutine scheduling: two identical runs give identical times.
	times := make([][]float64, 2)
	for trial := 0; trial < 2; trial++ {
		m := NewMachine(8, NCube2())
		ts := make([]float64, 8)
		m.Run(func(p *Proc) {
			// Deterministic ring pattern with compute.
			p.Compute(float64(p.ID()+1) * 1e5)
			next := (p.ID() + 1) % 8
			p.Send(next, 1, p.ID(), 10)
			p.Recv((p.ID()+7)%8, 1)
			p.Barrier()
			ts[p.ID()] = p.Now()
		})
		times[trial] = ts
	}
	for i := range times[0] {
		if times[0][i] != times[1][i] {
			t.Fatalf("proc %d: %v vs %v", i, times[0][i], times[1][i])
		}
	}
}

func TestAllGatherVolumeScalesWithP(t *testing.T) {
	// All-to-all broadcast moves Θ(p·m) words per processor in total;
	// total volume grows superlinearly with p.
	vol := func(p int) int64 {
		m := NewMachine(p, NCube2())
		stats := m.Run(func(pr *Proc) { pr.AllGather(0, 10) })
		return TotalWords(stats)
	}
	v4, v16 := vol(4), vol(16)
	if v16 <= 4*v4 {
		t.Fatalf("volume did not scale: p=4 %d words, p=16 %d words", v4, v16)
	}
}

func TestStatsSorted(t *testing.T) {
	// Sanity: Run returns stats indexed by rank (spot-check via distinct
	// compute loads).
	m := NewMachine(4, Ideal())
	stats := m.Run(func(p *Proc) {
		p.Compute(float64(p.ID()) * 1e6)
	})
	flops := make([]float64, 4)
	for i, s := range stats {
		flops[i] = s.Flops
	}
	if !sort.Float64sAreSorted(flops) {
		t.Fatalf("stats not rank-indexed: %v", flops)
	}
}
