package msg

import (
	"math/rand"
	"sync/atomic"
	"testing"
)

func TestRecvTagsFiltersProtocols(t *testing.T) {
	// A processor waiting on protocol tags must not consume a collective
	// message from a peer that raced ahead.
	m := NewMachine(2, Ideal())
	m.Run(func(p *Proc) {
		const protoTag = 7
		if p.ID() == 0 {
			// Send a protocol message, then immediately join a collective.
			p.Send(1, protoTag, "work", 1)
			got := p.AllGather(p.ID(), 1)
			if got[1].(int) != 1 {
				t.Errorf("collective corrupted: %v", got)
			}
		} else {
			// Receive only the protocol tag first, then the collective:
			// the collective's message must still be there.
			payload, from, tag := p.RecvTags(protoTag)
			if payload.(string) != "work" || from != 0 || tag != protoTag {
				t.Errorf("RecvTags got %v/%d/%d", payload, from, tag)
			}
			got := p.AllGather(p.ID(), 1)
			if got[0].(int) != 0 {
				t.Errorf("collective corrupted: %v", got)
			}
		}
	})
}

func TestRecvTagsMultiple(t *testing.T) {
	m := NewMachine(2, Ideal())
	m.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Send(1, 5, "five", 1)
			p.Send(1, 3, "three", 1)
		} else {
			// Accept either of two tags; arrival order decides.
			seen := map[int]string{}
			for i := 0; i < 2; i++ {
				payload, _, tag := p.RecvTags(3, 5)
				seen[tag] = payload.(string)
			}
			if seen[3] != "three" || seen[5] != "five" {
				t.Errorf("seen = %v", seen)
			}
		}
	})
}

func TestTryRecvTagsNonBlocking(t *testing.T) {
	m := NewMachine(1, Ideal())
	m.Run(func(p *Proc) {
		if _, _, _, ok := p.TryRecvTags(1, 2, 3); ok {
			t.Error("matched on empty mailbox")
		}
		p.Send(0, 2, 42, 1)
		payload, _, tag, ok := p.TryRecvTags(1, 2, 3)
		if !ok || tag != 2 || payload.(int) != 42 {
			t.Errorf("TryRecvTags: %v/%d/%v", payload, tag, ok)
		}
	})
}

func TestMessageStorm(t *testing.T) {
	// Randomized all-pairs traffic with tag matching: every message must
	// arrive exactly once at the right place.
	const p = 8
	const perPair = 50
	m := NewMachine(p, NCube2())
	var received int64
	m.Run(func(pr *Proc) {
		rng := rand.New(rand.NewSource(int64(pr.ID())))
		// Send bursts to random destinations with the receiver's id as tag
		// payload check.
		for i := 0; i < perPair*(p-1); i++ {
			dst := rng.Intn(p - 1)
			if dst >= pr.ID() {
				dst++
			}
			p := pr
			p.Send(dst, 99, [2]int{p.ID(), i}, 2)
		}
		// Everyone expects perPair*(p-1) messages on average; to make the
		// count deterministic, drain until a barrier says all sends done,
		// then drain the rest.
		pr.Barrier()
		for {
			payload, from, _, ok := pr.TryRecvTags(99)
			if !ok {
				break
			}
			pair := payload.([2]int)
			if pair[0] != from {
				t.Errorf("payload source %d but sender %d", pair[0], from)
			}
			atomic.AddInt64(&received, 1)
		}
	})
	want := int64(p * perPair * (p - 1))
	if received != want {
		t.Fatalf("received %d messages, want %d", received, want)
	}
}

func TestBlockingRecvAcrossScheduling(t *testing.T) {
	// A chain of dependent blocking receives across all processors: the
	// token must travel the ring twice without loss.
	const p = 16
	m := NewMachine(p, CM5())
	m.Run(func(pr *Proc) {
		for round := 0; round < 2; round++ {
			if pr.ID() == 0 {
				pr.Send(1, 1, round*100, 1)
				payload, _ := pr.Recv((p - 1), 1)
				if payload.(int) != round*100+p-1 {
					t.Errorf("round %d: token %v", round, payload)
				}
			} else {
				payload, _ := pr.Recv(pr.ID()-1, 1)
				pr.Send((pr.ID()+1)%p, 1, payload.(int)+1, 1)
			}
		}
	})
}

func TestClockMonotonic(t *testing.T) {
	m := NewMachine(4, NCube2())
	m.Run(func(p *Proc) {
		prev := p.Now()
		for i := 0; i < 50; i++ {
			switch i % 3 {
			case 0:
				p.Compute(1000)
			case 1:
				p.Send((p.ID()+1)%4, 2, i, 1)
			case 2:
				p.Recv((p.ID()+3)%4, 2)
			}
			if p.Now() < prev {
				t.Errorf("clock went backwards: %v -> %v", prev, p.Now())
			}
			prev = p.Now()
		}
		// Drain the last unreceived message per ring neighbour.
		for {
			if _, _, ok := p.TryRecv(AnySource, 2); !ok {
				break
			}
		}
	})
}

func TestNegativeComputePanics(t *testing.T) {
	m := NewMachine(1, Ideal())
	defer func() {
		if recover() == nil {
			t.Fatal("negative compute accepted")
		}
	}()
	m.Run(func(p *Proc) { p.Compute(-1) })
}
