package msg

import "math/bits"

// Collective operations. All processors of the machine must call the same
// collectives in the same order (standard SPMD discipline); a per-proc
// sequence number keeps successive collectives from interfering even when
// processors drift in simulated time.
//
// The implementations are the classical hypercube/ring algorithms from
// Kumar, Grama, Gupta & Karypis, "Introduction to Parallel Computing"
// (the paper's reference [20] for its all-to-all personalized
// communication): recursive doubling for all-to-all broadcast on
// power-of-two machines, a ring otherwise, binomial trees for one-to-all
// broadcast, and pairwise exchange for all-to-all personalized
// communication. Their costs emerge from the underlying Send/Recv model
// rather than being charged as formulas.

const collTagBase = 1 << 20

// pack is the recursive-doubling AllGather envelope: the set of
// (rank, payload, words) triples a processor has accumulated so far.
// It crosses process boundaries on distributed machines, so it has a
// transport codec (codec.go).
type pack struct {
	ranks []int
	items []any
	words []int
}

// collTagStride reserves a block of tags per collective invocation so
// multi-round collectives can use tag+round without colliding with the
// next collective.
const collTagStride = 64

// nextCollTag returns a fresh tag block for one collective invocation.
func (p *Proc) nextCollTag() int {
	p.collSeq++
	return collTagBase + p.collSeq*collTagStride
}

// Barrier blocks until all processors reach it. Clocks are synchronized
// to the latest arrival implied by the dissemination pattern, so after a
// barrier every clock is at least the pre-barrier maximum.
func (p *Proc) Barrier() {
	tag := p.nextCollTag()
	n := p.m.P
	if n == 1 {
		return
	}
	round := 0
	for step := 1; step < n; step <<= 1 {
		dst := (p.id + step) % n
		src := (p.id - step + n) % n
		p.Send(dst, tag+round, p.now, 1)
		p.Recv(src, tag+round)
		round++
	}
}

// Bcast distributes root's payload to every processor and returns it.
// Non-root callers pass any placeholder (ignored). The algorithm is a
// binomial tree rooted at root.
func (p *Proc) Bcast(root int, payload any, words int) any {
	tag := p.nextCollTag()
	n := p.m.P
	if n == 1 {
		return payload
	}
	rel := (p.id - root + n) % n // rank relative to root
	// Find the step at which this processor receives: the lowest set bit
	// of rel (root "receives" at step n).
	if rel != 0 {
		data, _ := p.Recv(AnySource, tag)
		payload = data
	}
	// Forward to processors whose relative rank is rel + 2^k for
	// 2^k > lowbit(rel) ... classic binomial: processor rel sends to
	// rel + s for each s = 2^k with s > rel's low bit and rel+s < n,
	// starting from the top. Equivalent standard loop:
	low := rel & (-rel)
	if rel == 0 {
		low = 1 << uint(bits.Len(uint(n-1)))
	}
	for s := low >> 1; s >= 1; s >>= 1 {
		child := rel + s
		if rel == 0 {
			child = s
		}
		if child < n && child != rel {
			p.Send((child+root)%n, tag, payload, words)
		}
	}
	return payload
}

// AllGather performs an all-to-all broadcast: every processor contributes
// payload (words 8-byte words) and receives the contributions of all
// processors, indexed by rank. For power-of-two machines it uses
// recursive doubling (log p rounds with doubling message sizes); other
// sizes use a ring.
func (p *Proc) AllGather(payload any, words int) []any {
	tag := p.nextCollTag()
	n := p.m.P
	out := make([]any, n)
	wordsOf := make([]int, n)
	out[p.id] = payload
	wordsOf[p.id] = words
	if n == 1 {
		return out
	}
	if n&(n-1) == 0 {
		// Recursive doubling: at round k exchange everything held so far
		// with the partner differing in bit k.
		held := []int{p.id}
		for step := 1; step < n; step <<= 1 {
			partner := p.id ^ step
			pk := pack{}
			total := 0
			for _, r := range held {
				pk.ranks = append(pk.ranks, r)
				pk.items = append(pk.items, out[r])
				pk.words = append(pk.words, wordsOf[r])
				total += wordsOf[r]
			}
			p.Send(partner, tag, pk, total)
			data, _ := p.Recv(partner, tag)
			got := data.(pack)
			for i, r := range got.ranks {
				out[r] = got.items[i]
				wordsOf[r] = got.words[i]
				held = append(held, r)
			}
		}
		return out
	}
	// Ring: pass the most recently received item to the right.
	right := (p.id + 1) % n
	left := (p.id - 1 + n) % n
	cur := p.id
	for step := 0; step < n-1; step++ {
		p.Send(right, tag, [3]any{cur, wordsOf[cur], out[cur]}, wordsOf[cur]+1)
		data, _ := p.Recv(left, tag)
		item := data.([3]any)
		r := item[0].(int)
		wordsOf[r] = item[1].(int)
		out[r] = item[2]
		cur = r
	}
	return out
}

// AllToAll performs all-to-all personalized communication: payloads[i]
// goes to processor i (words[i] 8-byte words each; nil/0 entries are
// still delivered so receivers can rely on one message per peer). The
// returned slice holds the payload received from each rank. The paper
// uses this to move particles between processors after re-partitioning.
func (p *Proc) AllToAll(payloads []any, words []int) []any {
	if len(payloads) != p.m.P || len(words) != p.m.P {
		panic("msg: AllToAll needs one payload per processor")
	}
	tag := p.nextCollTag()
	n := p.m.P
	out := make([]any, n)
	out[p.id] = payloads[p.id]
	for offset := 1; offset < n; offset++ {
		dst := (p.id + offset) % n
		src := (p.id - offset + n) % n
		p.Send(dst, tag, payloads[dst], words[dst])
		data, _ := p.Recv(src, tag)
		out[src] = data
	}
	return out
}

// AllReduceF64 element-wise combines float64 vectors across all
// processors with op and returns the result (identical on every
// processor). Implemented as recursive halving/doubling on power-of-two
// machines and gather+broadcast otherwise.
func (p *Proc) AllReduceF64(x []float64, op func(a, b float64) float64) []float64 {
	tag := p.nextCollTag()
	n := p.m.P
	acc := append([]float64(nil), x...)
	if n == 1 {
		return acc
	}
	if n&(n-1) == 0 {
		round := 0
		for step := 1; step < n; step <<= 1 {
			partner := p.id ^ step
			// Send a snapshot: acc is mutated below while the partner may
			// still be reading the payload (messages share memory).
			snap := append([]float64(nil), acc...)
			p.Send(partner, tag+round, snap, len(acc))
			data, _ := p.Recv(partner, tag+round)
			other := data.([]float64)
			for i := range acc {
				acc[i] = op(acc[i], other[i])
			}
			round++
		}
		return acc
	}
	// Gather at 0, reduce, broadcast.
	if p.id == 0 {
		for i := 1; i < n; i++ {
			data, _ := p.Recv(AnySource, tag)
			other := data.([]float64)
			for j := range acc {
				acc[j] = op(acc[j], other[j])
			}
		}
	} else {
		p.Send(0, tag, acc, len(acc))
	}
	res := p.Bcast(0, acc, len(acc))
	return res.([]float64)
}

// SumF64 is AllReduceF64 with addition.
func (p *Proc) SumF64(x []float64) []float64 {
	return p.AllReduceF64(x, func(a, b float64) float64 { return a + b })
}

// MaxF64 is AllReduceF64 with max.
func (p *Proc) MaxF64(x []float64) []float64 {
	return p.AllReduceF64(x, func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	})
}

// Gather collects every processor's payload at root (rank order). Only
// root receives the full slice; others get nil.
func (p *Proc) Gather(root int, payload any, words int) []any {
	tag := p.nextCollTag()
	n := p.m.P
	if p.id != root {
		p.Send(root, tag, payload, words)
		return nil
	}
	out := make([]any, n)
	out[root] = payload
	for i := 0; i < n-1; i++ {
		data, from := p.Recv(AnySource, tag)
		out[from] = data
	}
	return out
}

// GlobalMaxTime synchronizes all clocks to the global maximum and returns
// it. Used by the engines to delimit phases the way the paper times them.
func (p *Proc) GlobalMaxTime() float64 {
	t := p.MaxF64([]float64{p.now})[0]
	if t > p.now {
		p.stats.CommTime += t - p.now
		p.now = t
	}
	return t
}
