package msg

import (
	"strings"
	"testing"
)

// TestCopyOnSendDecouplesSenderBuffer pins the wire-semantics contract
// for cross-process use: the payload is fully encoded (deep-copied) at
// Send time, so the sender may reuse its buffer immediately and the
// receiver still sees the original values. Remote sends always behave
// this way (the frame is encoded before SendFrame returns); the
// copy-on-send switch gives local delivery identical semantics so the
// hazard can be asserted on an in-proc machine.
func TestCopyOnSendDecouplesSenderBuffer(t *testing.T) {
	m := NewMachine(2, Ideal())
	m.SetCopyOnSend(true)
	m.Run(func(p *Proc) {
		switch p.ID() {
		case 0:
			buf := []float64{1, 2, 3}
			p.Send(1, 7, buf, len(buf))
			// Reuse the buffer immediately: the receiver of tag 7 must
			// still observe {1,2,3}.
			buf[0], buf[1], buf[2] = -9, -9, -9
			p.Send(1, 8, buf, len(buf))
		case 1:
			v, _ := p.Recv(0, 7)
			got := v.([]float64)
			for i, want := range []float64{1, 2, 3} {
				if got[i] != want {
					t.Errorf("receiver saw mutated payload: got[%d] = %g, want %g", i, got[i], want)
				}
			}
			v2, _ := p.Recv(0, 8)
			if got2 := v2.([]float64); got2[0] != -9 {
				t.Errorf("second send carried %g, want the reused buffer's -9", got2[0])
			}
		}
	})
}

// TestDefaultLocalSendPassesByReference documents the zero-cost default
// for the single-process machine: local delivery passes the payload by
// reference. Formulations must therefore not mutate buffers after Send
// — the copy-on-send and strict-wire tests prove they don't.
func TestDefaultLocalSendPassesByReference(t *testing.T) {
	m := NewMachine(2, Ideal())
	m.Run(func(p *Proc) {
		switch p.ID() {
		case 0:
			buf := []float64{1}
			p.Send(1, 1, buf, 1)
			p.Recv(1, 2) // receiver has captured the slice
			buf[0] = 42
			p.Send(1, 3, struct{}{}, 0)
		case 1:
			v, _ := p.Recv(0, 1)
			got := v.([]float64)
			p.Send(0, 2, struct{}{}, 0)
			p.Recv(0, 3)
			if got[0] != 42 {
				t.Errorf("in-proc default copied the payload (got %g); expected reference passing", got[0])
			}
		}
	})
}

// TestStrictWireRejectsUnregisteredPayload: with the strict-wire switch
// on, sending any payload type without a transport codec panics at Send
// time, even rank-locally — the guard behind the exhaustiveness test.
func TestStrictWireRejectsUnregisteredPayload(t *testing.T) {
	type notOnTheWire struct{ X int }
	m := NewMachine(1, Ideal())
	m.SetStrictWire(true)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("strict-wire Send of an unregistered type did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "no transport codec") {
			t.Fatalf("panic = %v, want a no-transport-codec message", r)
		}
	}()
	m.Run(func(p *Proc) {
		p.Send(0, 1, notOnTheWire{X: 1}, 1)
	})
}
