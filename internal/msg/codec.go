package msg

import "repro/internal/transport"

// Wire IDs 21–30 are reserved for this package (see the block table in
// internal/transport/codec.go).
const (
	idPack   uint16 = 21
	idTriple uint16 = 22
)

// The collective envelopes carry nested `any` payloads; those inner
// values resolve through the registry recursively, so anything a
// collective can forward must itself be registered.
func init() {
	transport.Register(idPack,
		func(w *transport.Writer, v pack) {
			w.Len(len(v.ranks), v.ranks == nil)
			for _, r := range v.ranks {
				w.I32(int32(r))
			}
			w.Len(len(v.items), v.items == nil)
			for _, it := range v.items {
				transport.MustEncodeAny(w, it)
			}
			w.Len(len(v.words), v.words == nil)
			for _, n := range v.words {
				w.I64(int64(n))
			}
		},
		func(r *transport.Reader) (pack, error) {
			var v pack
			if n, notNil := r.SliceLen(4); notNil && r.Err() == nil {
				v.ranks = make([]int, n)
				for i := range v.ranks {
					v.ranks[i] = int(r.I32())
				}
			}
			if n, notNil := r.SliceLen(2); notNil && r.Err() == nil {
				v.items = make([]any, n)
				for i := range v.items {
					it, err := transport.DecodeAny(r)
					if err != nil {
						return pack{}, err
					}
					v.items[i] = it
				}
			}
			if n, notNil := r.SliceLen(8); notNil && r.Err() == nil {
				v.words = make([]int, n)
				for i := range v.words {
					v.words[i] = int(r.I64())
				}
			}
			return v, r.Err()
		})
	transport.Register(idTriple,
		func(w *transport.Writer, v [3]any) {
			for _, it := range v {
				transport.MustEncodeAny(w, it)
			}
		},
		func(r *transport.Reader) ([3]any, error) {
			var v [3]any
			for i := range v {
				it, err := transport.DecodeAny(r)
				if err != nil {
					return v, err
				}
				v[i] = it
			}
			return v, r.Err()
		})
}
