package msg

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/transport"
)

// Network is the seam between a Machine and a real interconnect: a rank
// ownership map plus a frame pipe. The in-proc Machine has none (every
// rank is local and payloads pass by reference); a network Machine
// routes sends to non-local ranks through SendFrame and receives
// deliveries through the handler it installs with SetHandler.
//
// Implementations sit above transport.Link (see internal/cluster):
// they translate rank IDs to process IDs, stamp job epochs on outgoing
// frames, and filter stale ones on the way in. The simulated clock
// never touches this layer — arrival timestamps are computed on the
// sender under the machine's CostProfile and travel inside the frame,
// which is what keeps simulated time bit-identical across transports.
type Network interface {
	// Ranks returns the total number of ranks in the machine.
	Ranks() int
	// LocalRanks returns the ranks hosted by this process, ascending.
	LocalRanks() []int
	// ProcID returns this process's index (0 = coordinator).
	ProcID() int
	// NumProcs returns the number of processes the ranks span.
	NumProcs() int
	// SendFrame ships a frame to the process owning f.Dst. The payload
	// is encoded before SendFrame returns (no aliasing with sender
	// memory).
	SendFrame(f *transport.Frame) error
	// SetHandler installs the delivery callback for incoming frames.
	SetHandler(fn func(*transport.Frame))
	// SetErrorHandler installs the callback for fatal transport
	// errors (peer lost, heartbeat timeout, corrupt frame).
	SetErrorHandler(fn func(error))
	// HostSend ships an untimed control message to another process.
	// Host traffic never touches the simulated clock: it carries job
	// setup and result gathers, not machine messages.
	HostSend(dst int, payload any) error
	// HostRecv blocks for the next control message from any process.
	HostRecv() (src int, payload any, err error)
}

// NewNetworkMachine creates a Machine whose ranks are spread across OS
// processes connected by net. Run executes the SPMD body only for this
// process's local ranks; sends to remote ranks are encoded through the
// codec registry and shipped as frames. Remote payload types must be
// registered with internal/transport or Send panics.
//
// If the transport fails mid-run, every local rank blocked in Recv or
// Send unwinds with the transport error: RunErr returns it, Run panics
// with it — a clear failure, not a hang, and never a dead process when
// the caller uses RunErr.
func NewNetworkMachine(net Network, profile CostProfile) *Machine {
	p := net.Ranks()
	if p <= 0 {
		panic(fmt.Sprintf("msg: invalid rank count %d", p))
	}
	local := net.LocalRanks()
	if len(local) == 0 {
		panic("msg: network machine with no local ranks")
	}
	m := &Machine{P: p, Profile: profile, net: net}
	m.boxes = make([]*mailbox, p)
	for i := range m.boxes {
		m.boxes[i] = newMailbox()
	}
	m.localRanks = append([]int(nil), local...)
	sort.Ints(m.localRanks)
	m.isLocal = make([]bool, p)
	for _, r := range m.localRanks {
		if r < 0 || r >= p {
			panic(fmt.Sprintf("msg: local rank %d out of range 0..%d", r, p-1))
		}
		m.isLocal[r] = true
	}
	net.SetHandler(m.deliverFrame)
	net.SetErrorHandler(m.fail)
	return m
}

// deliverFrame is the Network handler: queue an incoming frame into the
// destination rank's mailbox exactly as a local put would.
func (m *Machine) deliverFrame(f *transport.Frame) {
	dst := int(f.Dst)
	if dst < 0 || dst >= m.P || !m.isLocal[dst] {
		m.fail(fmt.Errorf("msg: frame for rank %d misrouted to this process", dst))
		return
	}
	m.boxes[dst].put(message{
		src:     int(f.Src),
		tag:     int(f.Tag),
		payload: f.Payload,
		words:   int(f.Words),
		arrival: f.Arrival,
	})
}

// fail poisons the machine: every local rank blocked in Recv unblocks
// and unwinds with the failure instead of hanging on a dead
// interconnect. The first failure wins; later ones are dropped.
func (m *Machine) fail(err error) {
	m.failure.CompareAndSwap(nil, &failureCell{err: err})
	for _, b := range m.boxes {
		if b != nil {
			b.stop()
		}
	}
}

// Interrupt poisons the machine from outside the SPMD body: every
// local rank unwinds with err and RunErr returns it. Watchdogs use
// this to cancel a machine whose peers have gone silent — tie it to a
// context by calling Interrupt(ctx.Err()) when the context is done.
func (m *Machine) Interrupt(err error) {
	if err == nil {
		err = errors.New("msg: machine interrupted")
	}
	m.fail(err)
}

// Err returns the failure that poisoned the machine, if any.
func (m *Machine) Err() error {
	if c := m.failure.Load(); c != nil {
		return c.err
	}
	return nil
}

// stopErr renders the failure behind a Recv interrupted by stop.
func (m *Machine) stopErr() error {
	if c := m.failure.Load(); c != nil {
		return fmt.Errorf("msg: machine stopped: %w", c.err)
	}
	return errors.New("msg: machine stopped while receiving (peer panicked)")
}

// Distributed reports whether this machine's ranks span processes.
func (m *Machine) Distributed() bool { return m.net != nil }

// ProcID returns this process's index in the distributed machine, or 0
// for the in-proc default.
func (m *Machine) ProcID() int {
	if m.net == nil {
		return 0
	}
	return m.net.ProcID()
}

// NumHostProcs returns the number of OS processes the machine's ranks
// span (1 for the in-proc default).
func (m *Machine) NumHostProcs() int {
	if m.net == nil {
		return 1
	}
	return m.net.NumProcs()
}

// HostSend ships an untimed control message to another process of a
// distributed machine. It is not valid on an in-proc machine.
func (m *Machine) HostSend(dst int, payload any) error {
	if m.net == nil {
		return fmt.Errorf("msg: HostSend on a non-distributed machine")
	}
	return m.net.HostSend(dst, payload)
}

// HostRecv blocks for the next control message from any process.
func (m *Machine) HostRecv() (int, any, error) {
	if m.net == nil {
		return -1, nil, fmt.Errorf("msg: HostRecv on a non-distributed machine")
	}
	return m.net.HostRecv()
}

// LocalRanks returns the ranks executed by this process, ascending.
// For an in-proc machine that is all of 0..P-1.
func (m *Machine) LocalRanks() []int {
	if m.localRanks != nil {
		return m.localRanks
	}
	all := make([]int, m.P)
	for i := range all {
		all[i] = i
	}
	return all
}

// IsLocal reports whether rank runs in this process.
func (m *Machine) IsLocal(rank int) bool {
	if m.isLocal == nil {
		return rank >= 0 && rank < m.P
	}
	return rank >= 0 && rank < m.P && m.isLocal[rank]
}

// Leader returns the lowest rank local to this process: the rank that
// performs once-per-process duties (recording results, owning maps).
func (m *Machine) Leader() int {
	if m.localRanks != nil {
		return m.localRanks[0]
	}
	return 0
}

// SetCopyOnSend makes every local Send deep-copy its payload through
// the codec registry, exactly as a remote send would. Off by default
// for in-proc machines (reference passing is the zero-cost path); the
// wire-semantics tests switch it on to prove the formulations don't
// depend on payload aliasing.
func (m *Machine) SetCopyOnSend(on bool) { m.copyOnSend = on }

// SetStrictWire makes Send panic on any payload type without a codec,
// even for rank-local delivery. The codec exhaustiveness test runs the
// full formulations on a strict machine to prove every payload that an
// SPSA/SPDA/DPDA step can emit is registered.
func (m *Machine) SetStrictWire(on bool) { m.strictWire = on }
