// Package msg is the message-passing substrate the parallel Barnes–Hut
// formulations run on. The paper's code ran on a 256-processor nCUBE2 and
// a 256-processor CM5 through a native message layer; Go has neither
// machine nor MPI, so this package provides both:
//
//   - an SPMD runtime: a Machine of P logical processors, each a
//     goroutine, with blocking tagged point-to-point Send/Recv and the
//     collective operations the paper uses (barrier, broadcast, all-to-all
//     broadcast, all-to-all personalized, all-reduce), and
//
//   - a simulated machine clock per processor: computation is charged via
//     the paper's flop-count cost model and communication via the
//     classical ts + tw·m (+ per-hop) model with machine profiles for the
//     nCUBE2 and CM5. Receives advance the receiver's clock to the
//     message's arrival time, so per-phase maxima reproduce how the paper
//     reports parallel runtimes — while the goroutines also give real
//     parallelism on the host.
//
// All sends are logically buffered: a Send never blocks waiting for the
// receiver (mailboxes grow as needed), matching the paper's one
// outstanding-bin flow-control discipline being implemented *above* this
// layer, not by it.
package msg

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/obsv"
	"repro/internal/transport"
)

// Topology selects how hop counts are computed for the per-hop term of
// the communication model.
type Topology int

const (
	// Hypercube distance is the Hamming distance of the processor ids
	// (the nCUBE2 is a binary hypercube).
	Hypercube Topology = iota
	// FatTree charges a constant number of hops per message (the CM5's
	// data network is a 4-ary fat tree; distance varies between 2 and
	// 2·log4 p, approximated by the latter).
	FatTree
	// Uniform charges zero hops: a fully connected abstraction.
	Uniform
)

// CostProfile holds the machine constants of the simulated computer.
// Times are in seconds, rates in flops per second, words are 8-byte
// float64s. The shipped profiles use published ballpark figures for the
// paper's machines; all experiment conclusions depend only on the ratios.
type CostProfile struct {
	Name     string
	FlopRate float64 // per-processor useful flop rate
	TS       float64 // message startup latency (ts)
	TW       float64 // per-word transfer time (tw)
	TH       float64 // per-hop switching time (th)
	Topology Topology
	// StoreAndForward charges (TS + TW·m) per hop instead of cut-through
	// TS + TH·hops + TW·m.
	StoreAndForward bool
}

// NCube2 returns a cost profile for the 256-node nCUBE2: ~2 Mflop/s
// scalar nodes, high startup latency, hypercube wormhole routing.
func NCube2() CostProfile {
	return CostProfile{
		Name:     "nCUBE2",
		FlopRate: 2.0e6,
		TS:       160e-6,
		TW:       2.4e-6,
		TH:       4e-6,
		Topology: Hypercube,
	}
}

// CM5 returns a cost profile for the CM5: faster SPARC nodes, a fat-tree
// network with lower per-word cost.
func CM5() CostProfile {
	return CostProfile{
		Name:     "CM5",
		FlopRate: 8.0e6,
		TS:       86e-6,
		TW:       0.9e-6,
		TH:       2e-6,
		Topology: FatTree,
	}
}

// Ideal returns a profile with free communication; useful in tests that
// check pure algorithm behaviour.
func Ideal() CostProfile {
	return CostProfile{Name: "ideal", FlopRate: 1e9, Topology: Uniform}
}

// Hops returns the number of network hops between two processors.
func (c CostProfile) Hops(src, dst, p int) int {
	if src == dst {
		return 0
	}
	switch c.Topology {
	case Hypercube:
		return bits.OnesCount(uint(src ^ dst))
	case FatTree:
		// Up to the least common ancestor and back down; approximate with
		// the tree height for a 4-ary fat tree.
		h := 1
		for n := 4; n < p; n *= 4 {
			h++
		}
		return 2 * h
	default:
		return 0
	}
}

// TransferTime returns the modelled time for a message of `words`
// 8-byte words across `hops` hops.
func (c CostProfile) TransferTime(words, hops int) float64 {
	if c.StoreAndForward && hops > 1 {
		return float64(hops) * (c.TS + c.TW*float64(words))
	}
	return c.TS + c.TH*float64(hops) + c.TW*float64(words)
}

// message is an in-flight tagged message.
type message struct {
	src, tag int
	payload  any
	words    int
	arrival  float64 // simulated arrival time at the receiver
}

// mailbox is an unbounded tag-matched message queue. Messages are held
// in arrival order in a sliding window over the backing slice: head marks
// the first live entry, a message matched out of the middle becomes a
// tombstone skipped by later scans, and the window compacts when it
// drains or tombstones dominate. Removal is therefore O(scan) with no
// per-take memmove of the queue tail, while the first-match-in-arrival-
// order semantics are unchanged.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []mailEntry
	head    int // index of the first live entry
	dead    int // tombstones in [head, len(queue))
	stopped bool
}

type mailEntry struct {
	msg  message
	live bool
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) put(m message) {
	mb.mu.Lock()
	mb.queue = append(mb.queue, mailEntry{msg: m, live: true})
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// take removes and returns the first message matching (src, tag); src or
// tag may be AnySource/AnyTag. block selects whether to wait.
func (mb *mailbox) take(src, tag int, block bool) (message, bool) {
	return mb.takeWhere(func(m *message) bool {
		return (src == AnySource || m.src == src) && (tag == AnyTag || m.tag == tag)
	}, block)
}

// takeWhere removes and returns the first message (in arrival order)
// satisfying pred.
func (mb *mailbox) takeWhere(pred func(*message) bool, block bool) (message, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		for i := mb.head; i < len(mb.queue); i++ {
			e := &mb.queue[i]
			if !e.live || !pred(&e.msg) {
				continue
			}
			m := e.msg
			e.live = false
			e.msg = message{} // release the payload reference
			mb.dead++
			mb.collect()
			return m, true
		}
		if !block || mb.stopped {
			return message{}, false
		}
		mb.cond.Wait()
	}
}

// collect advances head past leading tombstones and compacts the window
// when it drains completely or tombstones outnumber live entries.
func (mb *mailbox) collect() {
	for mb.head < len(mb.queue) && !mb.queue[mb.head].live {
		mb.head++
		mb.dead--
	}
	if mb.head == len(mb.queue) {
		mb.queue = mb.queue[:0]
		mb.head = 0
		return
	}
	if mb.dead >= 32 && 2*mb.dead > len(mb.queue)-mb.head {
		w := 0
		for i := mb.head; i < len(mb.queue); i++ {
			if mb.queue[i].live {
				mb.queue[w] = mb.queue[i]
				w++
			}
		}
		mb.queue = mb.queue[:w]
		mb.head, mb.dead = 0, 0
	}
}

func (mb *mailbox) stop() {
	mb.mu.Lock()
	mb.stopped = true
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// Wildcards for Recv matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// Stats aggregates a processor's simulated activity.
type Stats struct {
	ComputeTime float64 // seconds spent in modelled computation
	CommTime    float64 // seconds the processor spent in send overhead and waiting
	Messages    int64   // messages sent
	Words       int64   // 8-byte words sent
	Flops       float64 // flops charged
}

// Machine is a simulated multicomputer. By default all P ranks run as
// goroutines in this process and payloads pass by reference; a machine
// built with NewNetworkMachine instead hosts a subset of the ranks and
// ships frames to the rest through a Network (see netmachine.go).
type Machine struct {
	P       int
	Profile CostProfile
	boxes   []*mailbox

	// Distributed-machine state; nil/zero for the in-proc default.
	net        Network
	localRanks []int  // ranks hosted here (nil means all)
	isLocal    []bool // indexed by rank (nil means all local)

	// Wire-semantics switches (see SetCopyOnSend, SetStrictWire).
	copyOnSend bool
	strictWire bool

	// tracer, when non-nil, records simulated-clock events (message
	// instants here, phase spans in parbh). Hooks only read the clock —
	// never advance it — so simulated metrics are bit-identical with
	// tracing on or off (see internal/obsv and its golden tests).
	tracer *obsv.Tracer

	failure atomic.Pointer[failureCell] // transport failure or interrupt, if any
}

// SetTracer attaches an observability tracer; nil detaches. Set it
// before Run — ranks read the field without synchronization.
func (m *Machine) SetTracer(tr *obsv.Tracer) { m.tracer = tr }

// Tracer returns the attached tracer (nil when tracing is off).
func (m *Machine) Tracer() *obsv.Tracer { return m.tracer }

// failureCell boxes the first failure recorded against the machine.
type failureCell struct{ err error }

// stopPanic carries a machine-stop error up a rank's stack: Recv and
// Send raise it when the machine has been poisoned (transport failure,
// interrupt), and RunErr converts the unwinding into a returned error.
// Any other panic value is a programming error and is re-raised.
type stopPanic struct{ err error }

// NewMachine creates a machine of p processors with the given profile.
func NewMachine(p int, profile CostProfile) *Machine {
	if p <= 0 {
		panic(fmt.Sprintf("msg: invalid processor count %d", p))
	}
	m := &Machine{P: p, Profile: profile}
	m.boxes = make([]*mailbox, p)
	for i := range m.boxes {
		m.boxes[i] = newMailbox()
	}
	return m
}

// Run executes body as an SPMD program: one goroutine per local
// processor (every processor, for the in-proc default). It returns
// per-processor stats indexed by rank; on a distributed machine only
// local ranks are filled and the caller merges across processes. A
// panic in any processor is re-raised on the caller after the others
// are released; a transport failure or Interrupt is raised as a panic
// too (use RunErr to receive it as an error instead).
func (m *Machine) Run(body func(*Proc)) []Stats {
	stats, err := m.RunErr(body)
	if err != nil {
		panic(err)
	}
	return stats
}

// RunErr executes body like Run but contains machine-stop failures: a
// transport fault or an Interrupt mid-run unwinds every local rank and
// comes back as the returned error — the process never panics over a
// dead interconnect. Genuine panics in the SPMD body (programming
// errors) are still re-raised. After an error return the machine is
// poisoned and must be discarded; after a nil return it is reset for
// the next Run.
func (m *Machine) RunErr(body func(*Proc)) ([]Stats, error) {
	stats := make([]Stats, m.P)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var panicked any
	var stopped error
	for _, i := range m.LocalRanks() {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if sp, ok := r.(stopPanic); ok {
						if stopped == nil {
							stopped = sp.err
						}
					} else if panicked == nil {
						panicked = fmt.Sprintf("proc %d: %v", id, r)
					}
					mu.Unlock()
					// Release peers blocked in Recv so the run can unwind.
					for _, b := range m.boxes {
						b.stop()
					}
				}
			}()
			p := &Proc{id: id, m: m}
			body(p)
			stats[id] = p.stats
		}(i)
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	if c := m.failure.Load(); c != nil {
		return nil, fmt.Errorf("msg: machine stopped: %w", c.err)
	}
	if stopped != nil {
		return nil, stopped
	}
	// Reset stop flags so the machine can be reused.
	for _, b := range m.boxes {
		b.mu.Lock()
		b.stopped = false
		b.queue = b.queue[:0]
		b.head, b.dead = 0, 0
		b.mu.Unlock()
	}
	return stats, nil
}

// MaxTime returns the parallel completion time implied by per-processor
// stats: the maximum over processors of compute + communication time.
func MaxTime(stats []Stats) float64 {
	var t float64
	for _, s := range stats {
		if tt := s.ComputeTime + s.CommTime; tt > t {
			t = tt
		}
	}
	return t
}

// TotalWords sums the communication volume across processors.
func TotalWords(stats []Stats) int64 {
	var w int64
	for _, s := range stats {
		w += s.Words
	}
	return w
}

// TotalMessages sums the message count across processors.
func TotalMessages(stats []Stats) int64 {
	var n int64
	for _, s := range stats {
		n += s.Messages
	}
	return n
}

// Proc is one logical processor of a Machine. All methods must be called
// only from the goroutine running that processor's body.
type Proc struct {
	id      int
	m       *Machine
	now     float64 // simulated local clock
	stats   Stats
	collSeq int // collective-operation sequence number (see collectives.go)
}

// ID returns the processor's rank in 0..P-1.
func (p *Proc) ID() int { return p.id }

// NumProcs returns the machine size.
func (p *Proc) NumProcs() int { return p.m.P }

// Machine returns the owning machine.
func (p *Proc) Machine() *Machine { return p.m }

// Now returns the processor's simulated clock in seconds.
func (p *Proc) Now() float64 { return p.now }

// Stats returns a snapshot of the processor's accounting.
func (p *Proc) Stats() Stats { return p.stats }

// Compute charges flops of modelled computation to the local clock.
func (p *Proc) Compute(flops float64) {
	if flops < 0 {
		panic("msg: negative flops")
	}
	p.stats.Flops += flops
	dt := flops / p.m.Profile.FlopRate
	p.now += dt
	p.stats.ComputeTime += dt
}

// Sleep advances the clock without charging compute (models fixed
// per-phase software overheads).
func (p *Proc) Sleep(seconds float64) {
	p.now += seconds
	p.stats.CommTime += seconds
}

// Send transmits payload to processor dst with the given tag. words is
// the modelled message size in 8-byte words. The sender is charged the
// startup latency; the payload arrives at the modelled transfer time.
//
// Message accounting and the arrival timestamp are computed here, on
// the sender, under the machine's cost profile — never from transport
// behaviour — so the simulated clock and comm volumes are identical
// whether dst lives in this process or across a socket.
func (p *Proc) Send(dst, tag int, payload any, words int) {
	if dst < 0 || dst >= p.m.P {
		panic(fmt.Sprintf("msg: send to invalid processor %d", dst))
	}
	prof := p.m.Profile
	hops := prof.Hops(p.id, dst, p.m.P)
	// Sender-side software overhead.
	p.now += prof.TS
	p.stats.CommTime += prof.TS
	arrival := p.now + prof.TransferTime(words, hops)
	p.stats.Messages++
	p.stats.Words += int64(words)
	if dst == p.id {
		// Loopback: deliver without network cost beyond the startup.
		arrival = p.now
	}
	if tr := p.m.tracer; tr != nil {
		// Collectives dominate message counts; recording them as instants
		// keeps the trace readable at p=256 (one marker per send, phase
		// spans carry the durations).
		tr.SimInstant(p.id, "send", "msg", p.now,
			obsv.Int("dst", dst), obsv.Int("tag", tag), obsv.Int("words", words),
			obsv.F64("arrival_s", arrival))
	}
	if p.m.strictWire && !transport.Registered(payload) {
		panic(fmt.Sprintf("msg: payload type %s sent by proc %d (tag %d) has no transport codec",
			transport.TypeName(payload), p.id, tag))
	}
	if p.m.net != nil && !p.m.isLocal[dst] {
		f := &transport.Frame{
			Src:     int32(p.id),
			Dst:     int32(dst),
			Tag:     int32(tag),
			Words:   int32(words),
			Arrival: arrival,
			Payload: payload,
		}
		// The frame is fully encoded before SendFrame returns, so the
		// caller may reuse its buffers immediately.
		if err := p.m.net.SendFrame(f); err != nil {
			err = fmt.Errorf("msg: proc %d send to %d (tag %d): %w", p.id, dst, tag, err)
			p.m.fail(err)
			panic(stopPanic{err})
		}
		return
	}
	if p.m.copyOnSend {
		cp, err := transport.RoundTrip(payload)
		if err != nil {
			panic(fmt.Sprintf("msg: proc %d send to %d (tag %d): copy-on-send: %v", p.id, dst, tag, err))
		}
		payload = cp
	}
	p.m.boxes[dst].put(message{src: p.id, tag: tag, payload: payload, words: words, arrival: arrival})
}

// Recv blocks until a message matching (src, tag) arrives; wildcards
// AnySource/AnyTag match anything. It advances the simulated clock to the
// message arrival time (waiting is accounted as communication time) and
// returns the payload with the actual source.
func (p *Proc) Recv(src, tag int) (payload any, from int) {
	msg, ok := p.m.boxes[p.id].take(src, tag, true)
	if !ok {
		panic(stopPanic{p.m.stopErr()})
	}
	if msg.arrival > p.now {
		p.stats.CommTime += msg.arrival - p.now
		p.now = msg.arrival
	}
	return msg.payload, msg.src
}

// TryRecv is a non-blocking Recv. ok reports whether a message matched.
func (p *Proc) TryRecv(src, tag int) (payload any, from int, ok bool) {
	msg, ok := p.m.boxes[p.id].take(src, tag, false)
	if !ok {
		return nil, 0, false
	}
	if msg.arrival > p.now {
		p.stats.CommTime += msg.arrival - p.now
		p.now = msg.arrival
	}
	return msg.payload, msg.src, true
}

// RecvTags blocks until a message whose tag is one of tags arrives and
// returns it. Unlike Recv(AnySource, AnyTag) it will not consume messages
// belonging to other protocols (e.g. in-flight collectives from
// processors that have raced ahead).
func (p *Proc) RecvTags(tags ...int) (payload any, from, tag int) {
	msg, ok := p.m.boxes[p.id].takeWhere(func(m *message) bool {
		for _, t := range tags {
			if m.tag == t {
				return true
			}
		}
		return false
	}, true)
	if !ok {
		panic(stopPanic{p.m.stopErr()})
	}
	if msg.arrival > p.now {
		p.stats.CommTime += msg.arrival - p.now
		p.now = msg.arrival
	}
	return msg.payload, msg.src, msg.tag
}

// TryRecvTags is the non-blocking variant of RecvTags.
func (p *Proc) TryRecvTags(tags ...int) (payload any, from, tag int, ok bool) {
	msg, ok := p.m.boxes[p.id].takeWhere(func(m *message) bool {
		for _, t := range tags {
			if m.tag == t {
				return true
			}
		}
		return false
	}, false)
	if !ok {
		return nil, 0, 0, false
	}
	if msg.arrival > p.now {
		p.stats.CommTime += msg.arrival - p.now
		p.now = msg.arrival
	}
	return msg.payload, msg.src, msg.tag, true
}
