package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/tree"
	"repro/internal/vec"
)

func TestRunsByLoadProperties(t *testing.T) {
	f := func(seed int64, pRaw uint8, rRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + int(pRaw%16)
		r := p + int(rRaw%256)
		order := rng.Perm(r)
		loads := make([]float64, r)
		for i := range loads {
			loads[i] = rng.Float64() * 10
		}
		starts := RunsByLoad(order, loads, p)
		// Shape invariants.
		if len(starts) != p+1 || starts[0] != 0 || starts[p] != r {
			return false
		}
		for i := 1; i <= p; i++ {
			if starts[i] < starts[i-1] {
				return false
			}
		}
		// Ownership covers every cluster exactly once.
		owner := OwnerFromRuns(order, starts, r)
		seen := make([]int, r)
		for proc := 0; proc < p; proc++ {
			for pos := starts[proc]; pos < starts[proc+1]; pos++ {
				seen[order[pos]]++
			}
		}
		for c := range seen {
			if seen[c] != 1 {
				return false
			}
		}
		// Owners are nondecreasing along the order (contiguous runs).
		prev := 0
		for _, c := range order {
			if owner[c] < prev {
				return false
			}
			prev = owner[c]
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRunsByLoadBoundOnImbalance(t *testing.T) {
	// Property: max run load ≤ W/p + max single cluster load (each
	// boundary can overshoot by at most one cluster).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const p = 8
		r := 64 + rng.Intn(512)
		order := make([]int, r)
		loads := make([]float64, r)
		var total, maxLoad float64
		for i := range order {
			order[i] = i
			loads[i] = rng.Float64() * 100
			total += loads[i]
			if loads[i] > maxLoad {
				maxLoad = loads[i]
			}
		}
		starts := RunsByLoad(order, loads, p)
		for proc := 0; proc < p; proc++ {
			var l float64
			for pos := starts[proc]; pos < starts[proc+1]; pos++ {
				l += loads[order[pos]]
			}
			if l > total/p+maxLoad+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCostzonesConservesParticles(t *testing.T) {
	f := func(seed int64, pRaw uint8) bool {
		p := 1 + int(pRaw%12)
		n := 200 + int(uint16(seed)%800)
		s := dist.Uniform(n, vec.NewBox(vec.V3{}, vec.V3{X: 1, Y: 1, Z: 1}), seed)
		tr := tree.Build(s.Particles, tree.Options{LeafCap: 8, Domain: s.Domain})
		// Randomly record some loads.
		for i := 0; i < n/4; i++ {
			tr.AccelAt(s.Particles[i].Pos, s.Particles[i].ID, 0.7, 0.01, nil)
		}
		zones := Costzones(tr, p)
		if len(zones) != p {
			return false
		}
		seen := make(map[int]bool)
		for _, z := range zones {
			for _, q := range z {
				if seen[q.ID] {
					return false // duplicated
				}
				seen[q.ID] = true
			}
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestGridBucketMortonOrderConsistent(t *testing.T) {
	// MortonOrder and HilbertOrder must be permutations for non-cubic and
	// non-power-of-two grids too.
	for _, dims := range [][3]int{{4, 4, 4}, {8, 2, 1}, {3, 5, 7}} {
		g, err := NewGrid(vec.NewBox(vec.V3{}, vec.V3{X: 1, Y: 1, Z: 1}), dims[0], dims[1], dims[2])
		if err != nil {
			t.Fatal(err)
		}
		for _, order := range [][]int{g.MortonOrder(), g.HilbertOrder()} {
			if len(order) != g.NumClusters() {
				t.Fatalf("order length %d for grid %v", len(order), dims)
			}
			seen := make([]bool, g.NumClusters())
			for _, c := range order {
				if c < 0 || c >= g.NumClusters() || seen[c] {
					t.Fatalf("bad order for grid %v", dims)
				}
				seen[c] = true
			}
		}
	}
}
