package partition

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/tree"
	"repro/internal/vec"
)

func unitGrid(t *testing.T, r int) *Grid {
	t.Helper()
	g, err := NewGrid(vec.NewBox(vec.V3{}, vec.V3{X: 1, Y: 1, Z: 1}), r, r, r)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGridValidation(t *testing.T) {
	if _, err := NewGrid(vec.NewBox(vec.V3{}, vec.V3{X: 1, Y: 1, Z: 1}), 0, 4, 4); err == nil {
		t.Fatal("zero-dimension grid accepted")
	}
	if _, err := NewGrid(vec.Box{}, 4, 4, 4); err == nil {
		t.Fatal("degenerate domain accepted")
	}
}

func TestIndexCoordsRoundTrip(t *testing.T) {
	g := unitGrid(t, 5)
	for idx := 0; idx < g.NumClusters(); idx++ {
		i, j, k := g.Coords(idx)
		if g.Index(i, j, k) != idx {
			t.Fatalf("round trip failed at %d", idx)
		}
	}
}

func TestClusterOfMatchesBoxOf(t *testing.T) {
	g := unitGrid(t, 4)
	f := func(x, y, z float64) bool {
		fold := func(v float64) float64 {
			v = math.Abs(math.Mod(v, 1))
			return v
		}
		p := vec.V3{X: fold(x), Y: fold(y), Z: fold(z)}
		idx := g.ClusterOf(p)
		return g.BoxOf(idx).Contains(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestClusterOfClampsOutside(t *testing.T) {
	g := unitGrid(t, 4)
	if got := g.ClusterOf(vec.V3{X: -5, Y: 0.1, Z: 0.1}); got != g.Index(0, 0, 0) {
		t.Fatalf("below-domain point went to %d", got)
	}
	if got := g.ClusterOf(vec.V3{X: 7, Y: 7, Z: 7}); got != g.Index(3, 3, 3) {
		t.Fatalf("above-domain point went to %d", got)
	}
}

func TestBucketPartitionsAll(t *testing.T) {
	g := unitGrid(t, 8)
	s := dist.Uniform(5000, g.Domain, 1)
	buckets := g.Bucket(s.Particles)
	total := 0
	for c, b := range buckets {
		total += len(b)
		for _, p := range b {
			if g.ClusterOf(p.Pos) != c {
				t.Fatalf("particle in wrong bucket")
			}
		}
	}
	if total != 5000 {
		t.Fatalf("buckets hold %d particles", total)
	}
}

func TestMortonOrderIsPermutationAndLocal(t *testing.T) {
	g := unitGrid(t, 4)
	order := g.MortonOrder()
	seen := make([]bool, g.NumClusters())
	for _, c := range order {
		if seen[c] {
			t.Fatalf("cluster %d repeated", c)
		}
		seen[c] = true
	}
	// Morton order visits the first octant's 2×2×2 block before touching
	// the farthest corner cluster.
	posOf := make(map[int]int)
	for pos, c := range order {
		posOf[c] = pos
	}
	if posOf[g.Index(3, 3, 3)] < posOf[g.Index(1, 1, 1)] {
		t.Fatal("Morton order not hierarchical")
	}
}

func TestHilbertOrderIsPermutationAndContiguous(t *testing.T) {
	g := unitGrid(t, 4)
	order := g.HilbertOrder()
	seen := make([]bool, g.NumClusters())
	for _, c := range order {
		if seen[c] {
			t.Fatalf("cluster %d repeated", c)
		}
		seen[c] = true
	}
	// Hilbert order steps between face-adjacent clusters.
	for pos := 1; pos < len(order); pos++ {
		i0, j0, k0 := g.Coords(order[pos-1])
		i1, j1, k1 := g.Coords(order[pos])
		d := abs(i1-i0) + abs(j1-j0) + abs(k1-k0)
		if d != 1 {
			t.Fatalf("Hilbert step %d→%d has distance %d", pos-1, pos, d)
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestScatterAssignBalanced(t *testing.T) {
	g := unitGrid(t, 8)
	owner, err := g.ScatterAssign(16)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 16)
	for _, o := range owner {
		counts[o]++
	}
	for p, c := range counts {
		if c != g.NumClusters()/16 {
			t.Fatalf("proc %d owns %d clusters", p, c)
		}
	}
}

func TestScatterAssignErrors(t *testing.T) {
	g, err := NewGrid(vec.NewBox(vec.V3{}, vec.V3{X: 1, Y: 1, Z: 1}), 3, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.ScatterAssign(4); err == nil {
		t.Fatal("non-power-of-two grid accepted by scatter map")
	}
}

func TestRunsByLoadEqualLoads(t *testing.T) {
	order := make([]int, 16)
	loads := make([]float64, 16)
	for i := range order {
		order[i] = i
		loads[i] = 1
	}
	starts := RunsByLoad(order, loads, 4)
	want := []int{0, 4, 8, 12, 16}
	for i := range want {
		if starts[i] != want[i] {
			t.Fatalf("starts = %v", starts)
		}
	}
}

func TestRunsByLoadSkewedLoads(t *testing.T) {
	// One huge cluster: it should occupy one processor; the rest spread.
	order := []int{0, 1, 2, 3, 4, 5, 6, 7}
	loads := []float64{100, 1, 1, 1, 1, 1, 1, 1}
	starts := RunsByLoad(order, loads, 4)
	// First run is just cluster 0 (its load already exceeds 3·W/4).
	if starts[1] != 1 {
		t.Fatalf("starts = %v", starts)
	}
	owner := OwnerFromRuns(order, starts, 8)
	if owner[0] != 0 {
		t.Fatalf("owner = %v", owner)
	}
	// All positions covered, owners nondecreasing along the order.
	prev := 0
	for _, c := range order {
		if owner[c] < prev {
			t.Fatalf("owners not contiguous: %v", owner)
		}
		prev = owner[c]
	}
}

func TestRunsByLoadZeroTotal(t *testing.T) {
	order := []int{0, 1, 2, 3}
	loads := []float64{0, 0, 0, 0}
	starts := RunsByLoad(order, loads, 2)
	if starts[0] != 0 || starts[2] != 4 || starts[1] != 2 {
		t.Fatalf("starts = %v", starts)
	}
}

func TestRunsByLoadImbalanceBound(t *testing.T) {
	// With many clusters of bounded load, the resulting imbalance must be
	// small: max load ≤ mean + max single cluster load.
	g := unitGrid(t, 8)
	s := dist.MustNamed("s_10g_a", 20000, 3)
	buckets := g.Bucket(s.Particles)
	loads := make([]float64, g.NumClusters())
	var maxCluster float64
	for c, b := range buckets {
		loads[c] = float64(len(b))
		if loads[c] > maxCluster {
			maxCluster = loads[c]
		}
	}
	order := g.MortonOrder()
	const p = 16
	starts := RunsByLoad(order, loads, p)
	owner := OwnerFromRuns(order, starts, g.NumClusters())
	per := make([]float64, p)
	for c, o := range owner {
		per[o] += loads[c]
	}
	mean := 20000.0 / p
	for proc, l := range per {
		if l > mean+maxCluster+1 {
			t.Fatalf("proc %d load %v exceeds mean %v + max cluster %v", proc, l, mean, maxCluster)
		}
	}
}

func TestImbalanceMeasure(t *testing.T) {
	owner := []int{0, 0, 1, 1}
	loads := []float64{1, 1, 1, 1}
	if got := Imbalance(owner, loads, 2); got != 1 {
		t.Fatalf("balanced imbalance = %v", got)
	}
	loads = []float64{3, 1, 0, 0}
	if got := Imbalance(owner, loads, 2); got != 2 {
		t.Fatalf("imbalance = %v, want 2", got)
	}
	if got := Imbalance(owner, []float64{0, 0, 0, 0}, 2); got != 1 {
		t.Fatalf("zero-load imbalance = %v", got)
	}
}

func TestCostzonesBalancesLoad(t *testing.T) {
	s := dist.MustNamed("s_1g_a", 8000, 4)
	tr := tree.Build(s.Particles, tree.Options{LeafCap: 8, Domain: s.Domain})
	// Record a force phase so loads are realistic.
	for _, p := range s.Particles {
		tr.AccelAt(p.Pos, p.ID, 0.7, 0.01, nil)
	}
	const p = 8
	zones := Costzones(tr, p)
	total := 0
	for _, z := range zones {
		total += len(z)
	}
	if total != 8000 {
		t.Fatalf("zones hold %d particles", total)
	}
	// Re-measure the load of each zone by counting interactions per
	// particle: zones should be within ~3x of each other even for this
	// extremely concentrated distribution.
	tr2 := tree.Build(s.Particles, tree.Options{LeafCap: 8, Domain: s.Domain})
	zoneLoad := make([]float64, p)
	for z, parts := range zones {
		var st tree.Stats
		for _, q := range parts {
			tr2.AccelAt(q.Pos, q.ID, 0.7, 0.01, &st)
		}
		zoneLoad[z] = float64(st.Interactions())
	}
	// Parallel completion time is governed by the most loaded zone, so
	// judge balance by max/mean. (Costzones balances node-resident load;
	// this re-measure counts particle-initiated interactions — correlated
	// but not identical, hence the 2.5 allowance on this extremely
	// concentrated distribution.)
	var sum, max float64
	for _, l := range zoneLoad {
		sum += l
		max = math.Max(max, l)
	}
	mean := sum / float64(p)
	if max/mean > 2.5 {
		t.Fatalf("costzones imbalance max/mean = %v: loads %v", max/mean, zoneLoad)
	}
}

func TestCostzonesFallsBackToCounts(t *testing.T) {
	// Without recorded loads, zones split by particle count.
	s := dist.Uniform(1000, vec.NewBox(vec.V3{}, vec.V3{X: 1, Y: 1, Z: 1}), 5)
	tr := tree.Build(s.Particles, tree.Options{LeafCap: 8, Domain: s.Domain})
	zones := Costzones(tr, 4)
	for z, parts := range zones {
		if len(parts) < 150 || len(parts) > 350 {
			t.Fatalf("zone %d has %d particles", z, len(parts))
		}
	}
}

func TestCostzonesZonesAreSpatiallyContiguous(t *testing.T) {
	// Zones follow the Morton leaf order, so each zone's particles come
	// from a contiguous range of the in-order walk.
	s := dist.Uniform(2000, vec.NewBox(vec.V3{}, vec.V3{X: 1, Y: 1, Z: 1}), 6)
	tr := tree.Build(s.Particles, tree.Options{LeafCap: 8, Domain: s.Domain})
	zones := Costzones(tr, 4)
	// Build the walk order of particle IDs.
	pos := make(map[int]int)
	i := 0
	tr.WalkLeaves(func(n *tree.Node) bool {
		for j := range n.Particles {
			pos[n.Particles[j].ID] = i
			i++
		}
		return true
	})
	lastEnd := -1
	for z, parts := range zones {
		for _, q := range parts {
			if pos[q.ID] <= lastEnd {
				t.Fatalf("zone %d overlaps previous zone in walk order", z)
			}
			lastEnd = pos[q.ID]
		}
	}
}

func TestCostzonesEmptyTree(t *testing.T) {
	tr := tree.Build(nil, tree.Options{Domain: vec.NewBox(vec.V3{}, vec.V3{X: 1, Y: 1, Z: 1})})
	zones := Costzones(tr, 4)
	for _, z := range zones {
		if len(z) != 0 {
			t.Fatal("empty tree produced particles")
		}
	}
}
