// Package partition implements the domain-decomposition side of the three
// parallel formulations:
//
//   - a static grid of r = rx·ry·rz clusters with the gray-code scatter
//     (modular) assignment — the SPSA scheme;
//   - Morton ordering of the clusters plus load-proportional contiguous
//     runs — the SPDA scheme's dynamic assignment;
//   - costzones over the Barnes–Hut tree's per-node interaction counts —
//     the DPDA scheme's dynamic partitioning.
package partition

import (
	"fmt"
	"sort"

	"repro/internal/dist"
	"repro/internal/keys"
	"repro/internal/tree"
	"repro/internal/vec"
)

// Grid is a static decomposition of the domain into rx × ry × rz equal
// box-shaped clusters (the paper's r subdomains).
type Grid struct {
	Domain     vec.Box
	RX, RY, RZ int
}

// NewGrid validates and returns a cluster grid.
func NewGrid(domain vec.Box, rx, ry, rz int) (*Grid, error) {
	if rx <= 0 || ry <= 0 || rz <= 0 {
		return nil, fmt.Errorf("partition: invalid grid %dx%dx%d", rx, ry, rz)
	}
	if domain.Size().X <= 0 || domain.Size().Y <= 0 || domain.Size().Z <= 0 {
		return nil, fmt.Errorf("partition: degenerate domain %+v", domain)
	}
	return &Grid{Domain: domain, RX: rx, RY: ry, RZ: rz}, nil
}

// NumClusters returns r = rx·ry·rz.
func (g *Grid) NumClusters() int { return g.RX * g.RY * g.RZ }

// Index flattens cluster coordinates.
func (g *Grid) Index(i, j, k int) int { return (k*g.RY+j)*g.RX + i }

// Coords unflattens a cluster index.
func (g *Grid) Coords(idx int) (i, j, k int) {
	i = idx % g.RX
	j = (idx / g.RX) % g.RY
	k = idx / (g.RX * g.RY)
	return
}

// ClusterOf returns the cluster index containing point p (points outside
// the domain clamp to the border clusters).
func (g *Grid) ClusterOf(p vec.V3) int {
	size := g.Domain.Size()
	cl := func(v, lo, sz float64, n int) int {
		i := int((v - lo) / sz * float64(n))
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		return i
	}
	return g.Index(
		cl(p.X, g.Domain.Min.X, size.X, g.RX),
		cl(p.Y, g.Domain.Min.Y, size.Y, g.RY),
		cl(p.Z, g.Domain.Min.Z, size.Z, g.RZ),
	)
}

// BoxOf returns the spatial extent of a cluster.
func (g *Grid) BoxOf(idx int) vec.Box {
	i, j, k := g.Coords(idx)
	size := g.Domain.Size()
	dx := size.X / float64(g.RX)
	dy := size.Y / float64(g.RY)
	dz := size.Z / float64(g.RZ)
	min := vec.V3{
		X: g.Domain.Min.X + float64(i)*dx,
		Y: g.Domain.Min.Y + float64(j)*dy,
		Z: g.Domain.Min.Z + float64(k)*dz,
	}
	return vec.Box{Min: min, Max: min.Add(vec.V3{X: dx, Y: dy, Z: dz})}
}

// Bucket distributes particles into per-cluster slices.
func (g *Grid) Bucket(ps []dist.Particle) [][]dist.Particle {
	out := make([][]dist.Particle, g.NumClusters())
	for _, p := range ps {
		c := g.ClusterOf(p.Pos)
		out[c] = append(out[c], p)
	}
	return out
}

// MortonOrder returns the cluster indices sorted along the Morton (Z)
// curve of their grid coordinates — the SPDA ordering, "computed in
// advance and stored in a sorted list" (Section 3.3.2).
func (g *Grid) MortonOrder() []int {
	order := make([]int, g.NumClusters())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ja, ka := g.Coords(order[a])
		ib, jb, kb := g.Coords(order[b])
		ma := keys.Encode3(uint32(ia), uint32(ja), uint32(ka))
		mb := keys.Encode3(uint32(ib), uint32(jb), uint32(kb))
		if ma != mb {
			return ma < mb
		}
		return order[a] < order[b]
	})
	return order
}

// HilbertOrder returns the cluster indices sorted along the Peano–Hilbert
// curve — the ordering used by the costzones scheme the paper builds on;
// provided as an ablation alternative to MortonOrder.
func (g *Grid) HilbertOrder() []int {
	bits := uint(1)
	for 1<<bits < g.RX || 1<<bits < g.RY || 1<<bits < g.RZ {
		bits++
	}
	order := make([]int, g.NumClusters())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ja, ka := g.Coords(order[a])
		ib, jb, kb := g.Coords(order[b])
		ha := keys.HilbertEncode3(uint32(ia), uint32(ja), uint32(ka), bits)
		hb := keys.HilbertEncode3(uint32(ib), uint32(jb), uint32(kb), bits)
		if ha != hb {
			return ha < hb
		}
		return order[a] < order[b]
	})
	return order
}

// ScatterAssign returns the SPSA owner of every cluster using the
// gray-code modular mapping. The grid dimensions and p must be powers of
// two with r ≥ p.
func (g *Grid) ScatterAssign(p int) ([]int, error) {
	m, err := keys.NewScatterMap(g.RX, g.RY, g.RZ, p)
	if err != nil {
		return nil, err
	}
	owner := make([]int, g.NumClusters())
	for idx := range owner {
		i, j, k := g.Coords(idx)
		owner[idx] = m.Proc(i, j, k)
	}
	return owner, nil
}

// RunsByLoad cuts an ordered cluster list into p contiguous runs of
// near-equal total load: the SPDA reassignment. loads is indexed by
// cluster id; order is the space-filling-curve order. It returns starts
// of length p+1 with run i = order[starts[i]:starts[i+1]]. Runs follow
// the ideal boundaries i·W/p; a cluster whose load straddles a boundary
// goes to the earlier processor, matching the paper's "import from the
// next processor in the Morton ordering" steady state.
func RunsByLoad(order []int, loads []float64, p int) []int {
	var total float64
	for _, c := range order {
		total += loads[c]
	}
	starts := make([]int, p+1)
	starts[p] = len(order)
	if total <= 0 {
		// Degenerate: split by count.
		for i := 1; i < p; i++ {
			starts[i] = i * len(order) / p
		}
		return starts
	}
	acc := 0.0
	next := 1
	for pos, c := range order {
		acc += loads[c]
		for next < p && acc >= float64(next)*total/float64(p) {
			starts[next] = pos + 1
			next++
		}
	}
	for ; next < p; next++ {
		starts[next] = len(order)
	}
	// Monotonicity guard (degenerate loads can leave empty runs; keep
	// starts sorted).
	for i := 1; i <= p; i++ {
		if starts[i] < starts[i-1] {
			starts[i] = starts[i-1]
		}
	}
	return starts
}

// OwnerFromRuns converts run boundaries back to a per-cluster owner map.
func OwnerFromRuns(order []int, starts []int, numClusters int) []int {
	owner := make([]int, numClusters)
	p := len(starts) - 1
	for proc := 0; proc < p; proc++ {
		for pos := starts[proc]; pos < starts[proc+1]; pos++ {
			owner[order[pos]] = proc
		}
	}
	return owner
}

// Imbalance returns max(procLoad)/mean(procLoad) for the given ownership;
// 1.0 is perfect balance.
func Imbalance(owner []int, loads []float64, p int) float64 {
	per := make([]float64, p)
	var total float64
	for c, o := range owner {
		per[o] += loads[c]
		total += loads[c]
	}
	if total == 0 {
		return 1
	}
	mean := total / float64(p)
	var max float64
	for _, l := range per {
		if l > max {
			max = l
		}
	}
	return max / mean
}

// Costzones partitions the particles of a Barnes–Hut tree into p zones of
// near-equal interaction load by an in-order (Morton) walk of the tree
// (Section 3.3.3). Each node's Load counter must hold the number of
// interactions computed *at that node* during the last force phase (i.e.
// raw counters, before any SumLoads aggregation): under function shipping
// the load lives at the tree nodes, so an internal node's own load is
// spread over the particles of its subtree while walking down. When no
// load has been recorded (first time-step) particle counts are used. The
// return value is one particle slice per processor; concatenated they
// follow the leaves' Morton order, so zones are spatially contiguous.
func Costzones(t *tree.Tree, p int) [][]dist.Particle {
	var w float64
	t.Walk(func(n *tree.Node) bool { w += float64(n.Load); return true })
	zones := make([][]dist.Particle, p)
	useCounts := w <= 0
	if useCounts {
		w = float64(t.Root.Count)
	}
	if w == 0 {
		return zones
	}
	acc := 0.0
	var rec func(n *tree.Node, extraPerParticle float64)
	rec = func(n *tree.Node, extraPerParticle float64) {
		if n == nil || n.Count == 0 {
			return
		}
		if n.IsLeaf() {
			var leafLoad float64
			if useCounts {
				leafLoad = float64(n.Count)
			} else {
				leafLoad = float64(n.Load) + extraPerParticle*float64(n.Count)
			}
			share := leafLoad / float64(len(n.Particles))
			for i := range n.Particles {
				// Zone of the load midpoint of this particle's share.
				zone := int((acc + share/2) / w * float64(p))
				if zone >= p {
					zone = p - 1
				}
				zones[zone] = append(zones[zone], n.Particles[i])
				acc += share
			}
			return
		}
		childExtra := extraPerParticle
		if !useCounts {
			childExtra += float64(n.Load) / float64(n.Count)
		}
		for _, c := range n.Children {
			rec(c, childExtra)
		}
	}
	rec(t.Root, 0)
	return zones
}
