package transport

// Link is a process's endpoint in a machine spread across OS processes.
// Procs are numbered 0..NumProcs-1; proc 0 is the coordinator. Data
// frames carry simulated-machine messages and are delivered to the
// handler installed with SetDataHandler; host messages are an untimed
// control channel (job setup, result gathers) read via HostRecv.
//
// Both implementations — the in-process Mesh and the TCP Node — encode
// every payload through the codec registry at send time, so a payload
// that crosses a Link never aliases sender memory.
type Link interface {
	// ProcID returns this process's index in the machine.
	ProcID() int
	// NumProcs returns the number of processes in the machine.
	NumProcs() int
	// SendData ships a data frame to another process.
	SendData(dst int, f *Frame) error
	// SetDataHandler installs the delivery callback for incoming data
	// frames. Must be called before traffic starts; the handler may be
	// invoked from multiple reader goroutines concurrently.
	SetDataHandler(fn func(*Frame))
	// SetErrorHandler installs the callback invoked when the link
	// fails (peer gone, read error, heartbeat timeout). Invoked at
	// most once per failing peer.
	SetErrorHandler(fn func(err error))
	// HostSend ships an untimed control message to another process.
	HostSend(dst int, payload any) error
	// HostRecv blocks for the next control message from any process,
	// returning the sender's proc ID. It returns an error once the
	// link is closed or fails.
	HostRecv() (src int, payload any, err error)
	// Metrics exposes the link's host-side counters.
	Metrics() *Metrics
	// Close tears the link down gracefully: peers observe an orderly
	// goodbye, not a failure.
	Close() error
	// Abort tears the link down ungracefully, as if this process had
	// crashed: no goodbye is sent, so peers observe a failure and any
	// rank blocked on traffic from this process unwinds. err is the
	// reason recorded on the local host channel. Used by supervisors to
	// demolish a faulted machine generation before rebuilding it.
	Abort(err error)
}
