package transport

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// FaultPlan is a seeded, deterministic chaos schedule for one endpoint.
// All probabilities are per data frame; the zero value injects nothing.
// Fault decisions come from a private rand.Rand seeded with Seed and
// advanced once per frame, so two runs with the same plan and the same
// frame sequence inject the same faults — the property the chaos CI
// matrix and the golden-recovery tests rely on.
type FaultPlan struct {
	// Seed initializes the fault RNG (0 behaves like 1).
	Seed int64
	// DropProb silently swallows an outgoing data frame.
	DropProb float64
	// DupProb sends an outgoing data frame twice; receivers drop the
	// second copy via the Frame.Seq dedup window.
	DupProb float64
	// DelayProb stalls an outgoing data frame by Delay before it is
	// written. The stall is synchronous so per-connection FIFO order —
	// which the machine's mailbox matching depends on — is preserved.
	DelayProb float64
	// Delay is the injected stall (default 1ms when a delay fault or
	// slow peer is configured).
	Delay time.Duration
	// CorruptProb damages an incoming data frame beyond repair: the
	// frame is dropped and the link fails with a FaultCorrupt error,
	// exactly as the TCP pump reacts to an undecodable body.
	CorruptProb float64
	// SlowPeers lists destination procs whose outgoing frames are
	// always delayed by Delay.
	SlowPeers []int
	// PartitionAfter severs the link after this many data frames have
	// crossed it (sent + received); 0 means never. The partition is
	// total: every later frame in either direction is dropped and the
	// link fails with a FaultPartition error.
	PartitionAfter int
}

// FaultLink wraps an inner Link and injects the plan's faults on the
// data path. Host messages are never corrupted or reordered — they
// model the out-of-band control channel — but a partitioned link fails
// them like everything else. FaultLink implements Link, so any machine
// assembled over mesh or TCP endpoints can be wrapped transparently.
type FaultLink struct {
	inner Link
	plan  FaultPlan

	rmu sync.Mutex
	rng *rand.Rand

	seq    atomic.Uint32 // outgoing dedup sequence, shared across dsts
	frames atomic.Int64  // data frames seen, drives PartitionAfter

	dmu     sync.Mutex
	lastSeq map[int32]uint32 // per-source-rank last delivered Seq

	failed   atomic.Bool
	failErr  atomic.Pointer[error] // first failure, returned by later sends
	failOnce sync.Once

	dataFn atomic.Pointer[func(*Frame)]
	errFn  atomic.Pointer[func(error)]
	host   *hostInbox
}

// NewFaultLink wraps inner with the plan. The wrapper installs its own
// handlers on inner; callers must install theirs on the wrapper.
func NewFaultLink(inner Link, plan FaultPlan) *FaultLink {
	seed := plan.Seed
	if seed == 0 {
		seed = 1
	}
	if plan.Delay <= 0 {
		plan.Delay = time.Millisecond
	}
	fl := &FaultLink{
		inner:   inner,
		plan:    plan,
		rng:     rand.New(rand.NewSource(seed)),
		lastSeq: make(map[int32]uint32),
		host:    newHostInbox(),
	}
	inner.SetDataHandler(fl.onFrame)
	inner.SetErrorHandler(fl.fail)
	// Host messages are repumped through the wrapper's own inbox so a
	// partition can fail blocked HostRecv callers even while the inner
	// link stays healthy.
	go func() {
		for {
			src, payload, err := inner.HostRecv()
			if err != nil {
				fl.host.fail(err)
				return
			}
			fl.host.put(hostMsg{src: src, payload: payload})
		}
	}()
	return fl
}

// roll draws one uniform [0,1) sample under the plan's RNG.
func (fl *FaultLink) roll() float64 {
	fl.rmu.Lock()
	v := fl.rng.Float64()
	fl.rmu.Unlock()
	return v
}

// countFrame advances the partition trigger by one data frame.
func (fl *FaultLink) countFrame() {
	if fl.plan.PartitionAfter <= 0 {
		return
	}
	if fl.frames.Add(1) == int64(fl.plan.PartitionAfter) {
		fl.inner.Metrics().FaultsPartitions.Add(1)
		fl.fail(faultErr(FaultPartition, -1, "injected partition after %d frames", fl.plan.PartitionAfter))
	}
}

// fail marks the link failed and fires the error handler exactly once.
// The first failure is remembered so that later sends report the real
// fault kind (peer lost, heartbeat, ...) instead of minting a generic
// partition error — supervisors classify retries by that kind.
func (fl *FaultLink) fail(err error) {
	fl.failErr.CompareAndSwap(nil, &err)
	fl.failed.Store(true)
	fl.failOnce.Do(func() {
		fl.host.fail(err)
		if fn := fl.errFn.Load(); fn != nil {
			(*fn)(err)
		}
	})
}

// sendErr is what a send through a failed link returns.
func (fl *FaultLink) sendErr(dst int) error {
	if p := fl.failErr.Load(); p != nil {
		return *p
	}
	return faultErr(FaultPartition, dst, "link partitioned")
}

// ProcID implements Link.
func (fl *FaultLink) ProcID() int { return fl.inner.ProcID() }

// NumProcs implements Link.
func (fl *FaultLink) NumProcs() int { return fl.inner.NumProcs() }

// Metrics implements Link: fault counters land on the inner link's
// metrics so one snapshot covers transport and chaos activity.
func (fl *FaultLink) Metrics() *Metrics { return fl.inner.Metrics() }

// SetDataHandler implements Link.
func (fl *FaultLink) SetDataHandler(fn func(*Frame)) { fl.dataFn.Store(&fn) }

// SetErrorHandler implements Link.
func (fl *FaultLink) SetErrorHandler(fn func(error)) { fl.errFn.Store(&fn) }

// SendData implements Link, applying outgoing faults: drop, delay,
// slow peer, duplicate, partition.
func (fl *FaultLink) SendData(dst int, f *Frame) error {
	if fl.failed.Load() {
		return fl.sendErr(dst)
	}
	fl.countFrame()
	if fl.failed.Load() {
		return fl.sendErr(dst)
	}
	m := fl.inner.Metrics()
	if fl.plan.DropProb > 0 && fl.roll() < fl.plan.DropProb {
		m.FaultsDropped.Add(1)
		return nil // swallowed: the receiver's rank blocks until recovery
	}
	delay := fl.plan.DelayProb > 0 && fl.roll() < fl.plan.DelayProb
	for _, p := range fl.plan.SlowPeers {
		if p == dst {
			delay = true
		}
	}
	if delay {
		m.FaultsDelayed.Add(1)
		time.Sleep(fl.plan.Delay)
	}
	f.Seq = fl.seq.Add(1)
	if err := fl.inner.SendData(dst, f); err != nil {
		return err
	}
	if fl.plan.DupProb > 0 && fl.roll() < fl.plan.DupProb {
		m.FaultsDuplicated.Add(1)
		return fl.inner.SendData(dst, f) // same Seq: receiver dedups
	}
	return nil
}

// onFrame applies incoming faults — corruption, partition, duplicate
// suppression — then forwards to the installed handler.
func (fl *FaultLink) onFrame(f *Frame) {
	if fl.failed.Load() {
		return // partitioned: inbound traffic is dropped on the floor
	}
	fl.countFrame()
	if fl.failed.Load() {
		return
	}
	m := fl.inner.Metrics()
	if fl.plan.CorruptProb > 0 && fl.roll() < fl.plan.CorruptProb {
		m.FaultsCorrupted.Add(1)
		fl.fail(faultErr(FaultCorrupt, int(f.Src), "injected frame corruption (rank %d, tag %d)", f.Src, f.Tag))
		return
	}
	if f.Seq != 0 {
		// Senders stamp strictly increasing Seq per source link, and
		// injected delays are synchronous, so per-source order holds: an
		// already-seen Seq can only be an injected duplicate.
		fl.dmu.Lock()
		dup := f.Seq <= fl.lastSeq[f.Src]
		if !dup {
			fl.lastSeq[f.Src] = f.Seq
		}
		fl.dmu.Unlock()
		if dup {
			m.FaultsDeduped.Add(1)
			return
		}
	}
	if fn := fl.dataFn.Load(); fn != nil {
		(*fn)(f)
	}
}

// HostSend implements Link. Control traffic is not fault-injected, but
// a partitioned link refuses it.
func (fl *FaultLink) HostSend(dst int, payload any) error {
	if fl.failed.Load() {
		return fl.sendErr(dst)
	}
	return fl.inner.HostSend(dst, payload)
}

// HostRecv implements Link.
func (fl *FaultLink) HostRecv() (int, any, error) {
	m, err := fl.host.get()
	if err != nil {
		return -1, nil, err
	}
	return m.src, m.payload, nil
}

// Close implements Link.
func (fl *FaultLink) Close() error {
	err := fl.inner.Close()
	fl.host.fail(faultErr(FaultClosed, -1, "link closed"))
	return err
}

// Abort implements Link.
func (fl *FaultLink) Abort(err error) {
	if err == nil {
		err = faultErr(FaultClosed, -1, "link aborted")
	}
	fl.failErr.CompareAndSwap(nil, &err)
	fl.failed.Store(true)
	fl.inner.Abort(err)
	fl.host.fail(err)
}
