package transport

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Metrics counts host-side transport activity. Everything here lives on
// the real clock: none of it feeds back into the simulated cost model.
type Metrics struct {
	FramesSent   atomic.Int64
	FramesRecv   atomic.Int64
	BytesSent    atomic.Int64
	BytesRecv    atomic.Int64
	Dials        atomic.Int64
	DialRetries  atomic.Int64
	DialFailures atomic.Int64
	Heartbeats   atomic.Int64
	ConnsOpen    atomic.Int64

	// Injected-fault counters, bumped by FaultLink. All zero on a link
	// without a chaos wrapper.
	FaultsDropped    atomic.Int64 // outgoing data frames swallowed
	FaultsDuplicated atomic.Int64 // outgoing data frames sent twice
	FaultsDelayed    atomic.Int64 // outgoing data frames delayed
	FaultsCorrupted  atomic.Int64 // incoming data frames corrupted
	FaultsDeduped    atomic.Int64 // duplicate deliveries dropped by Seq
	FaultsPartitions atomic.Int64 // full partitions triggered

	rtt rttSampler
}

// ObserveRTT records one heartbeat round-trip time in seconds.
func (m *Metrics) ObserveRTT(seconds float64) { m.rtt.observe(seconds) }

// MetricsSnapshot is a point-in-time copy, safe to serialize.
type MetricsSnapshot struct {
	FramesSent   int64 `json:"frames_sent"`
	FramesRecv   int64 `json:"frames_recv"`
	BytesSent    int64 `json:"bytes_sent"`
	BytesRecv    int64 `json:"bytes_recv"`
	Dials        int64 `json:"dials"`
	DialRetries  int64 `json:"dial_retries"`
	DialFailures int64 `json:"dial_failures"`
	Heartbeats   int64 `json:"heartbeats"`
	ConnsOpen    int64 `json:"conns_open"`

	FaultsDropped    int64 `json:"faults_dropped,omitempty"`
	FaultsDuplicated int64 `json:"faults_duplicated,omitempty"`
	FaultsDelayed    int64 `json:"faults_delayed,omitempty"`
	FaultsCorrupted  int64 `json:"faults_corrupted,omitempty"`
	FaultsDeduped    int64 `json:"faults_deduped,omitempty"`
	FaultsPartitions int64 `json:"faults_partitions,omitempty"`

	RTTCount int64   `json:"rtt_count"`
	RTTp50   float64 `json:"rtt_p50_seconds"`
	RTTp99   float64 `json:"rtt_p99_seconds"`
}

// Snapshot copies the counters and RTT percentiles.
func (m *Metrics) Snapshot() MetricsSnapshot {
	count, p50, p99 := m.rtt.percentiles()
	return MetricsSnapshot{
		FramesSent:   m.FramesSent.Load(),
		FramesRecv:   m.FramesRecv.Load(),
		BytesSent:    m.BytesSent.Load(),
		BytesRecv:    m.BytesRecv.Load(),
		Dials:        m.Dials.Load(),
		DialRetries:  m.DialRetries.Load(),
		DialFailures: m.DialFailures.Load(),
		Heartbeats:   m.Heartbeats.Load(),
		ConnsOpen:    m.ConnsOpen.Load(),

		FaultsDropped:    m.FaultsDropped.Load(),
		FaultsDuplicated: m.FaultsDuplicated.Load(),
		FaultsDelayed:    m.FaultsDelayed.Load(),
		FaultsCorrupted:  m.FaultsCorrupted.Load(),
		FaultsDeduped:    m.FaultsDeduped.Load(),
		FaultsPartitions: m.FaultsPartitions.Load(),

		RTTCount: count,
		RTTp50:   p50,
		RTTp99:   p99,
	}
}

// rttSampler keeps the most recent RTT observations in a fixed ring so
// percentiles track current conditions without unbounded memory.
type rttSampler struct {
	mu      sync.Mutex
	samples [512]float64
	n       int   // filled entries, up to len(samples)
	next    int   // ring cursor
	total   int64 // lifetime observation count
}

func (s *rttSampler) observe(v float64) {
	s.mu.Lock()
	s.samples[s.next] = v
	s.next = (s.next + 1) % len(s.samples)
	if s.n < len(s.samples) {
		s.n++
	}
	s.total++
	s.mu.Unlock()
}

func (s *rttSampler) percentiles() (count int64, p50, p99 float64) {
	s.mu.Lock()
	count = s.total
	buf := make([]float64, s.n)
	copy(buf, s.samples[:s.n])
	s.mu.Unlock()
	if len(buf) == 0 {
		return count, 0, 0
	}
	sort.Float64s(buf)
	pct := func(p float64) float64 {
		i := int(p * float64(len(buf)-1))
		return buf[i]
	}
	return count, pct(0.50), pct(0.99)
}
