package transport

import (
	"net"
	"testing"
	"time"
)

// silentCoordinator accepts one worker join, completes the handshake,
// and then — depending on pong — either answers liveness probes or goes
// completely silent. It returns the listen address.
func silentCoordinator(t *testing.T, pong bool) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		kind, _, err := ReadRaw(c)
		if err != nil || kind != KindHello {
			return
		}
		buf, err := AppendControl(nil, KindWelcome, welcomeBody{
			ProcID: 1,
			Addrs:  []string{"coordinator", "worker"},
		})
		if err != nil {
			return
		}
		if _, err := c.Write(buf); err != nil {
			return
		}
		for {
			kind, body, err := ReadRaw(c)
			if err != nil {
				return
			}
			if kind == KindPing && pong {
				reply, err := AppendControl(nil, KindPong, mustUnmarshalPing(body))
				if err != nil {
					return
				}
				if _, err := c.Write(reply); err != nil {
					return
				}
			}
		}
	}()
	return ln.Addr().String()
}

// joinWatching joins addr with the given heartbeat settings and returns
// the node plus a channel carrying its first fatal link error.
func joinWatching(t *testing.T, addr string, interval, timeout time.Duration) (*Node, chan error) {
	t.Helper()
	n, err := Join(addr, Config{
		ListenAddr:        "127.0.0.1:0",
		HeartbeatInterval: interval,
		HeartbeatTimeout:  timeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	errs := make(chan error, 4)
	n.SetErrorHandler(func(err error) { errs <- err })
	return n, errs
}

// TestHeartbeatWatchdogFires: a peer that stops answering probes is
// declared dead with a FaultHeartbeat error.
func TestHeartbeatWatchdogFires(t *testing.T) {
	addr := silentCoordinator(t, false)
	_, errs := joinWatching(t, addr, 20*time.Millisecond, 80*time.Millisecond)
	select {
	case err := <-errs:
		if k := FaultKindOf(err); k != FaultHeartbeat {
			t.Fatalf("fault kind = %v, want heartbeat: %v", k, err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("silent peer never declared dead")
	}
}

// TestHeartbeatDisabledDisablesWatchdog is the regression for the
// coupled-disable bug: a negative HeartbeatInterval turns off the
// probes, so the staleness watchdog must be off too — with no probes
// manufacturing traffic, an idle healthy peer looks exactly like a dead
// one and a lone timeout check would kill every quiet connection.
func TestHeartbeatDisabledDisablesWatchdog(t *testing.T) {
	addr := silentCoordinator(t, false)
	// Timeout far below the idle period: if any timeout path survived
	// the disable, it would fire well within the sleep.
	n, errs := joinWatching(t, addr, -1, 30*time.Millisecond)
	time.Sleep(300 * time.Millisecond)
	select {
	case err := <-errs:
		t.Fatalf("disabled heartbeats still declared the peer dead: %v", err)
	default:
	}
	if got := n.Metrics().Snapshot().Heartbeats; got != 0 {
		t.Fatalf("probes sent with heartbeats disabled: %d", got)
	}
}

// TestHeartbeatIntervalLongerThanTimeout: with probes spaced wider than
// the raw timeout, a healthy (ponging) peer must not be declared dead —
// the liveness deadline has to leave room for one full probe
// round-trip.
func TestHeartbeatIntervalLongerThanTimeout(t *testing.T) {
	addr := silentCoordinator(t, true)
	_, errs := joinWatching(t, addr, 120*time.Millisecond, 40*time.Millisecond)
	time.Sleep(500 * time.Millisecond)
	select {
	case err := <-errs:
		t.Fatalf("healthy peer declared dead under interval > timeout: %v", err)
	default:
	}
}
