package transport

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Handshake and liveness payloads live in the transport built-in ID
// block (1–20) alongside the scalar codecs in codec.go.
const (
	idStrings uint16 = 15
	idHello   uint16 = 16
	idWelcome uint16 = 17
	idIdent   uint16 = 18
	idPing    uint16 = 19
)

// helloBody is a worker's join request: the address its own listener
// advertises so peers can dial it directly.
type helloBody struct{ Addr string }

// welcomeBody completes the join: the worker's proc ID and every
// proc's advertised address, index-aligned with proc IDs.
type welcomeBody struct {
	ProcID int32
	Addrs  []string
}

// identBody is the first frame on a dialed peer connection: which proc
// is calling.
type identBody struct{ Src int32 }

// pingBody carries the sender's wall-clock send time; the pong echoes
// it back verbatim so the sender computes RTT without bookkeeping.
type pingBody struct{ Nanos int64 }

func init() {
	Register(idStrings,
		func(w *Writer, v []string) {
			w.Len(len(v), v == nil)
			for _, s := range v {
				w.Str(s)
			}
		},
		func(r *Reader) ([]string, error) {
			n, notNil := r.SliceLen(4)
			if !notNil || r.Err() != nil {
				return nil, r.Err()
			}
			out := make([]string, n)
			for i := range out {
				out[i] = r.Str()
			}
			return out, r.Err()
		})
	Register(idHello,
		func(w *Writer, v helloBody) { w.Str(v.Addr) },
		func(r *Reader) (helloBody, error) { return helloBody{Addr: r.Str()}, r.Err() })
	Register(idWelcome,
		func(w *Writer, v welcomeBody) {
			w.I32(v.ProcID)
			w.Len(len(v.Addrs), v.Addrs == nil)
			for _, s := range v.Addrs {
				w.Str(s)
			}
		},
		func(r *Reader) (welcomeBody, error) {
			var v welcomeBody
			v.ProcID = r.I32()
			n, notNil := r.SliceLen(4)
			if notNil && r.Err() == nil {
				v.Addrs = make([]string, n)
				for i := range v.Addrs {
					v.Addrs[i] = r.Str()
				}
			}
			return v, r.Err()
		})
	Register(idIdent,
		func(w *Writer, v identBody) { w.I32(v.Src) },
		func(r *Reader) (identBody, error) { return identBody{Src: r.I32()}, r.Err() })
	Register(idPing,
		func(w *Writer, v pingBody) { w.I64(v.Nanos) },
		func(r *Reader) (pingBody, error) { return pingBody{Nanos: r.I64()}, r.Err() })
}

// Config tunes a TCP node. Zero values select the defaults noted on
// each field.
type Config struct {
	// ListenAddr is the address this process listens on for peer
	// connections. Default "127.0.0.1:0" (ephemeral loopback port).
	ListenAddr string
	// AdvertiseAddr is the address peers should dial to reach this
	// process. Default: the listener's actual address.
	AdvertiseAddr string
	// DialTimeout bounds one TCP connect attempt. Default 2s.
	DialTimeout time.Duration
	// DialRetries is the number of additional attempts after the
	// first dial fails, with exponential backoff between attempts.
	// Default 8.
	DialRetries int
	// RetryBase is the first backoff interval; it doubles per retry
	// up to RetryMax. Defaults 50ms and 2s.
	RetryBase time.Duration
	RetryMax  time.Duration
	// HeartbeatInterval spaces ping probes on idle peer connections.
	// Default 1s; negative disables heartbeats.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout declares a peer dead when no frame (data or
	// pong) has arrived on its connection for this long. Default 30s.
	HeartbeatTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.ListenAddr == "" {
		c.ListenAddr = "127.0.0.1:0"
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.DialRetries == 0 {
		c.DialRetries = 8
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 50 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 2 * time.Second
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = time.Second
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 30 * time.Second
	}
	return c
}

// hostMsg is one untimed control message held in the host inbox.
type hostMsg struct {
	src     int
	payload any
}

// hostInbox is an unbounded FIFO: reader pumps must never block on a
// slow host-side consumer, or data frames queued behind a host message
// on the same connection would stall the simulated machine.
type hostInbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []hostMsg
	failed error
	closed bool
}

func newHostInbox() *hostInbox {
	hi := &hostInbox{}
	hi.cond = sync.NewCond(&hi.mu)
	return hi
}

func (hi *hostInbox) put(m hostMsg) {
	hi.mu.Lock()
	if !hi.closed {
		hi.queue = append(hi.queue, m)
	}
	hi.mu.Unlock()
	hi.cond.Signal()
}

func (hi *hostInbox) fail(err error) {
	hi.mu.Lock()
	if hi.failed == nil {
		hi.failed = err
	}
	hi.closed = true
	hi.mu.Unlock()
	hi.cond.Broadcast()
}

func (hi *hostInbox) get() (hostMsg, error) {
	hi.mu.Lock()
	defer hi.mu.Unlock()
	for len(hi.queue) == 0 && !hi.closed {
		hi.cond.Wait()
	}
	if len(hi.queue) > 0 {
		m := hi.queue[0]
		hi.queue = hi.queue[1:]
		return m, nil
	}
	if hi.failed != nil {
		return hostMsg{}, hi.failed
	}
	return hostMsg{}, faultErr(FaultClosed, -1, "link closed")
}

// peerConn is one TCP connection to a peer, with a write lock (frames
// must not interleave) and a last-traffic timestamp for liveness.
type peerConn struct {
	peer     int
	conn     net.Conn
	wmu      sync.Mutex
	lastSeen atomic.Int64 // unix nanos of last inbound frame
	said_bye atomic.Bool  // peer announced graceful close
}

func (pc *peerConn) writeFrame(n *Node, buf []byte) error {
	pc.wmu.Lock()
	_, err := pc.conn.Write(buf)
	pc.wmu.Unlock()
	if err == nil {
		n.metrics.FramesSent.Add(1)
		n.metrics.BytesSent.Add(int64(len(buf)))
	}
	return err
}

// dialFuture deduplicates concurrent dials to the same peer.
type dialFuture struct {
	done chan struct{}
	pc   *peerConn
	err  error
}

// Node is the TCP implementation of Link. Proc 0 creates one with
// NewCoordinator and admits workers via WaitWorkers; workers create
// theirs with Join. Connections between peers are dialed lazily on
// first send, with retry and exponential backoff, and identified by an
// Ident frame; each connection runs a reader pump that dispatches data
// frames, host messages, and liveness probes uniformly.
type Node struct {
	cfg     Config
	procID  int
	nprocs  int
	addrs   []string
	ln      net.Listener
	metrics Metrics
	host    *hostInbox

	dataFn atomic.Pointer[func(*Frame)]
	errFn  atomic.Pointer[func(error)]

	mu      sync.Mutex
	out     map[int]*peerConn // dialed by us, keyed by peer proc
	in      []*peerConn       // accepted or handshake conns
	dialing map[int]*dialFuture

	closed  atomic.Bool
	closeCh chan struct{}
	wg      sync.WaitGroup
}

func newNode(cfg Config) *Node {
	return &Node{
		cfg:     cfg.withDefaults(),
		out:     make(map[int]*peerConn),
		dialing: make(map[int]*dialFuture),
		host:    newHostInbox(),
		closeCh: make(chan struct{}),
	}
}

// NewCoordinator opens the coordinator's listener (proc 0 of an
// eventual nprocs-process machine). Call WaitWorkers to admit the
// remaining procs before any traffic.
func NewCoordinator(cfg Config, nprocs int) (*Node, error) {
	if nprocs < 1 {
		return nil, fmt.Errorf("transport: machine needs at least 1 process, got %d", nprocs)
	}
	n := newNode(cfg)
	n.procID = 0
	n.nprocs = nprocs
	ln, err := net.Listen("tcp", n.cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: coordinator listen %s: %w", n.cfg.ListenAddr, err)
	}
	n.ln = ln
	n.addrs = make([]string, nprocs)
	n.addrs[0] = n.advertised()
	return n, nil
}

// Addr returns the address peers dial to reach this node.
func (n *Node) advertised() string {
	if n.cfg.AdvertiseAddr != "" {
		return n.cfg.AdvertiseAddr
	}
	return n.ln.Addr().String()
}

// Addr returns this node's advertised listen address.
func (n *Node) Addr() string { return n.advertised() }

// WaitWorkers blocks until the other nprocs-1 processes have joined,
// assigns them proc IDs in arrival order, and distributes the address
// table. It must complete before the machine exchanges any frames.
func (n *Node) WaitWorkers(timeout time.Duration) error {
	if n.procID != 0 {
		return fmt.Errorf("transport: WaitWorkers is coordinator-only")
	}
	need := n.nprocs - 1
	conns := make([]*peerConn, 0, need)
	if timeout > 0 {
		if tl, ok := n.ln.(*net.TCPListener); ok {
			tl.SetDeadline(time.Now().Add(timeout))
		}
	}
	for len(conns) < need {
		c, err := n.ln.Accept()
		if err != nil {
			for _, pc := range conns {
				pc.conn.Close()
			}
			return fmt.Errorf("transport: waiting for %d worker(s), have %d: %w",
				need, len(conns), err)
		}
		kind, body, err := ReadRaw(c)
		if err != nil || kind != KindHello {
			c.Close()
			continue
		}
		v, err := Unmarshal(body)
		hello, ok := v.(helloBody)
		if err != nil || !ok {
			c.Close()
			continue
		}
		n.metrics.BytesRecv.Add(int64(len(body)) + frameHeaderLen)
		n.metrics.FramesRecv.Add(1)
		pc := &peerConn{peer: len(conns) + 1, conn: c}
		pc.lastSeen.Store(time.Now().UnixNano())
		n.addrs[pc.peer] = hello.Addr
		conns = append(conns, pc)
	}
	if tl, ok := n.ln.(*net.TCPListener); ok {
		tl.SetDeadline(time.Time{})
	}
	// All workers present: complete each handshake, then start pumps.
	for _, pc := range conns {
		buf, err := AppendControl(nil, KindWelcome, welcomeBody{
			ProcID: int32(pc.peer),
			Addrs:  append([]string(nil), n.addrs...),
		})
		if err != nil {
			return err
		}
		if err := pc.writeFrame(n, buf); err != nil {
			return fmt.Errorf("transport: welcome to proc %d: %w", pc.peer, err)
		}
	}
	n.mu.Lock()
	n.in = append(n.in, conns...)
	n.mu.Unlock()
	for _, pc := range conns {
		n.startPump(pc)
	}
	n.metrics.ConnsOpen.Add(int64(len(conns)))
	n.startAccepting()
	n.startHeartbeats()
	return nil
}

// Join connects to a coordinator at addr and returns once the machine
// is fully assembled. The dial itself honors the retry/backoff policy,
// so a worker may be started before its coordinator.
func Join(coordAddr string, cfg Config) (*Node, error) {
	n := newNode(cfg)
	ln, err := net.Listen("tcp", n.cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: worker listen %s: %w", n.cfg.ListenAddr, err)
	}
	n.ln = ln
	conn, err := n.dialRetry(coordAddr)
	if err != nil {
		ln.Close()
		return nil, fmt.Errorf("transport: join %s: %w", coordAddr, err)
	}
	buf, err := AppendControl(nil, KindHello, helloBody{Addr: n.advertised()})
	if err != nil {
		conn.Close()
		ln.Close()
		return nil, err
	}
	if _, err := conn.Write(buf); err != nil {
		conn.Close()
		ln.Close()
		return nil, fmt.Errorf("transport: join %s: hello: %w", coordAddr, err)
	}
	n.metrics.FramesSent.Add(1)
	n.metrics.BytesSent.Add(int64(len(buf)))
	kind, body, err := ReadRaw(conn)
	if err != nil || kind != KindWelcome {
		conn.Close()
		ln.Close()
		if err == nil {
			err = fmt.Errorf("unexpected frame kind %d", kind)
		}
		return nil, fmt.Errorf("transport: join %s: welcome: %w", coordAddr, err)
	}
	v, err := Unmarshal(body)
	if err != nil {
		conn.Close()
		ln.Close()
		return nil, fmt.Errorf("transport: join %s: welcome: %w", coordAddr, err)
	}
	welcome := v.(welcomeBody)
	n.metrics.FramesRecv.Add(1)
	n.metrics.BytesRecv.Add(int64(len(body)) + frameHeaderLen)
	n.procID = int(welcome.ProcID)
	n.addrs = welcome.Addrs
	n.nprocs = len(welcome.Addrs)
	// The join connection doubles as this worker's outbound link to
	// the coordinator: no second dial, and the coordinator already
	// pumps its far end.
	pc := &peerConn{peer: 0, conn: conn}
	pc.lastSeen.Store(time.Now().UnixNano())
	n.out[0] = pc
	n.metrics.ConnsOpen.Add(1)
	n.startPump(pc)
	n.startAccepting()
	n.startHeartbeats()
	return n, nil
}

// dialRetry connects to addr under the node's retry/backoff policy.
func (n *Node) dialRetry(addr string) (net.Conn, error) {
	backoff := n.cfg.RetryBase
	var lastErr error
	attempts := 1 + n.cfg.DialRetries
	if n.cfg.DialRetries < 0 {
		attempts = 1
	}
	for i := 0; i < attempts; i++ {
		if n.closed.Load() {
			return nil, fmt.Errorf("node closed")
		}
		if i > 0 {
			n.metrics.DialRetries.Add(1)
			select {
			case <-time.After(backoff):
			case <-n.closeCh:
				return nil, fmt.Errorf("node closed")
			}
			backoff *= 2
			if backoff > n.cfg.RetryMax {
				backoff = n.cfg.RetryMax
			}
		}
		n.metrics.Dials.Add(1)
		c, err := net.DialTimeout("tcp", addr, n.cfg.DialTimeout)
		if err == nil {
			return c, nil
		}
		lastErr = err
	}
	n.metrics.DialFailures.Add(1)
	return nil, fmt.Errorf("dial %s failed after %d attempt(s): %w", addr, attempts, lastErr)
}

// ProcID implements Link.
func (n *Node) ProcID() int { return n.procID }

// NumProcs implements Link.
func (n *Node) NumProcs() int { return n.nprocs }

// Metrics implements Link.
func (n *Node) Metrics() *Metrics { return &n.metrics }

// SetDataHandler implements Link.
func (n *Node) SetDataHandler(fn func(*Frame)) { n.dataFn.Store(&fn) }

// SetErrorHandler implements Link.
func (n *Node) SetErrorHandler(fn func(error)) { n.errFn.Store(&fn) }

// SendData implements Link: encode now (no aliasing with the sender's
// buffers), dial the peer if this is the first frame to it, write.
func (n *Node) SendData(dst int, f *Frame) error {
	buf, err := AppendFrame(nil, f)
	if err != nil {
		return err
	}
	pc, err := n.connFor(dst)
	if err != nil {
		return err
	}
	if err := pc.writeFrame(n, buf); err != nil {
		// A failed write means the peer's connection is gone — classify
		// as peer loss so supervisors treat it as retryable, exactly
		// like a read-side reset.
		return &TransportError{Kind: FaultPeerLost, Proc: dst,
			Err: fmt.Errorf("send to proc %d: %w", dst, err)}
	}
	return nil
}

// HostSend implements Link.
func (n *Node) HostSend(dst int, payload any) error {
	w := Writer{}
	w.U32(0)
	w.U8(KindHost)
	w.I32(int32(n.procID))
	if err := EncodeAny(&w, payload); err != nil {
		return err
	}
	buf := w.Bytes()
	body := len(buf) - frameHeaderLen
	if body > MaxFrame {
		return fmt.Errorf("transport: host frame body %d exceeds MaxFrame %d", body, MaxFrame)
	}
	putU32(buf, uint32(body))
	pc, err := n.connFor(dst)
	if err != nil {
		return err
	}
	if err := pc.writeFrame(n, buf); err != nil {
		return &TransportError{Kind: FaultPeerLost, Proc: dst,
			Err: fmt.Errorf("host send to proc %d: %w", dst, err)}
	}
	return nil
}

// HostRecv implements Link.
func (n *Node) HostRecv() (int, any, error) {
	m, err := n.host.get()
	if err != nil {
		return -1, nil, err
	}
	return m.src, m.payload, nil
}

// connFor returns the outbound connection to dst, dialing it (once,
// even under concurrent senders) if absent.
func (n *Node) connFor(dst int) (*peerConn, error) {
	if dst == n.procID || dst < 0 || dst >= n.nprocs {
		return nil, fmt.Errorf("transport: bad destination proc %d (self %d of %d)", dst, n.procID, n.nprocs)
	}
	n.mu.Lock()
	if pc := n.out[dst]; pc != nil {
		n.mu.Unlock()
		return pc, nil
	}
	if f := n.dialing[dst]; f != nil {
		n.mu.Unlock()
		<-f.done
		return f.pc, f.err
	}
	fut := &dialFuture{done: make(chan struct{})}
	n.dialing[dst] = fut
	n.mu.Unlock()

	pc, err := n.dialPeer(dst)
	n.mu.Lock()
	delete(n.dialing, dst)
	if err == nil {
		n.out[dst] = pc
	}
	n.mu.Unlock()
	fut.pc, fut.err = pc, err
	close(fut.done)
	return pc, err
}

func (n *Node) dialPeer(dst int) (*peerConn, error) {
	conn, err := n.dialRetry(n.addrs[dst])
	if err != nil {
		// An unreachable peer mid-run is a peer fault (retryable after
		// a machine rebuild), not an application error.
		return nil, &TransportError{Kind: FaultPeerLost, Proc: dst,
			Err: fmt.Errorf("proc %d unreachable: %w", dst, err)}
	}
	pc := &peerConn{peer: dst, conn: conn}
	pc.lastSeen.Store(time.Now().UnixNano())
	buf, err := AppendControl(nil, KindIdent, identBody{Src: int32(n.procID)})
	if err != nil {
		conn.Close()
		return nil, err
	}
	if err := pc.writeFrame(n, buf); err != nil {
		conn.Close()
		return nil, &TransportError{Kind: FaultPeerLost, Proc: dst,
			Err: fmt.Errorf("ident to proc %d: %w", dst, err)}
	}
	n.metrics.ConnsOpen.Add(1)
	n.startPump(pc)
	return pc, nil
}

// startAccepting launches the listener loop for peer-dialed (Ident)
// connections.
func (n *Node) startAccepting() {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		for {
			c, err := n.ln.Accept()
			if err != nil {
				return // listener closed
			}
			n.wg.Add(1)
			go func(c net.Conn) {
				defer n.wg.Done()
				kind, body, err := ReadRaw(c)
				if err != nil || kind != KindIdent {
					c.Close()
					return
				}
				v, err := Unmarshal(body)
				ident, ok := v.(identBody)
				if err != nil || !ok {
					c.Close()
					return
				}
				n.metrics.FramesRecv.Add(1)
				n.metrics.BytesRecv.Add(int64(len(body)) + frameHeaderLen)
				pc := &peerConn{peer: int(ident.Src), conn: c}
				pc.lastSeen.Store(time.Now().UnixNano())
				n.mu.Lock()
				n.in = append(n.in, pc)
				n.mu.Unlock()
				n.metrics.ConnsOpen.Add(1)
				n.pump(pc)
			}(c)
		}
	}()
}

// startPump runs the reader loop for pc on its own goroutine.
func (n *Node) startPump(pc *peerConn) {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		n.pump(pc)
	}()
}

// pump reads frames from one connection until error or close,
// dispatching uniformly: the same loop serves inbound and outbound
// connections, so pongs on a dialed conn and pings on an accepted one
// both work.
func (n *Node) pump(pc *peerConn) {
	for {
		kind, body, err := ReadRaw(pc.conn)
		if err != nil {
			if n.closed.Load() || pc.said_bye.Load() {
				return
			}
			n.fail(faultErr(FaultPeerLost, pc.peer, "connection to proc %d lost: %w", pc.peer, err))
			return
		}
		pc.lastSeen.Store(time.Now().UnixNano())
		n.metrics.FramesRecv.Add(1)
		n.metrics.BytesRecv.Add(int64(len(body)) + frameHeaderLen)
		switch kind {
		case KindData:
			f, err := DecodeFrame(body)
			if err != nil {
				n.fail(faultErr(FaultCorrupt, pc.peer, "bad frame from proc %d: %w", pc.peer, err))
				return
			}
			fn := n.dataFn.Load()
			if fn == nil {
				// Dropping silently would hang the sender's machine; the
				// cluster protocol's ready barrier makes this unreachable
				// in correct use.
				n.fail(fmt.Errorf("transport: proc %d received a data frame from proc %d before a handler was installed", n.procID, pc.peer))
				return
			}
			(*fn)(f)
		case KindHost:
			r := NewReader(body)
			src := int(r.I32())
			v, err := DecodeAny(r)
			if err != nil {
				n.fail(faultErr(FaultCorrupt, pc.peer, "bad host frame from proc %d: %w", pc.peer, err))
				return
			}
			n.host.put(hostMsg{src: src, payload: v})
		case KindPing:
			reply, err := AppendControl(nil, KindPong, mustUnmarshalPing(body))
			if err == nil {
				pc.writeFrame(n, reply)
			}
		case KindPong:
			if p, ok := mustUnmarshalPing(body).(pingBody); ok {
				rtt := time.Duration(time.Now().UnixNano() - p.Nanos)
				if rtt > 0 {
					n.metrics.ObserveRTT(rtt.Seconds())
				}
			}
		case KindBye:
			pc.said_bye.Store(true)
			pc.conn.Close()
			n.metrics.ConnsOpen.Add(-1)
			return
		default:
			// Unknown kinds are skipped for forward compatibility.
		}
	}
}

// mustUnmarshalPing decodes a ping/pong body, tolerating corruption by
// returning a zero body (liveness probes are best-effort).
func mustUnmarshalPing(body []byte) any {
	v, err := Unmarshal(body)
	if err != nil {
		return pingBody{}
	}
	return v
}

// startHeartbeats launches the liveness machinery: a probe loop that
// pings every outbound connection each HeartbeatInterval, and a
// staleness watchdog that declares a peer dead once its connection has
// been silent past the liveness deadline. A negative interval disables
// BOTH: with no probes flowing, an idle healthy peer generates no
// inbound traffic at all, so a timeout check on its own would declare
// it dead — the probe is what manufactures the traffic the watchdog
// observes.
func (n *Node) startHeartbeats() {
	if n.cfg.HeartbeatInterval < 0 {
		return
	}
	// The liveness deadline must leave room for at least one full
	// probe round-trip: with a probe interval longer than the
	// configured timeout, a healthy-but-idle peer has had no chance to
	// prove liveness yet when the raw timeout expires.
	deadAfter := n.cfg.HeartbeatTimeout
	if n.cfg.HeartbeatInterval > deadAfter {
		deadAfter = n.cfg.HeartbeatInterval + n.cfg.HeartbeatTimeout
	}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		t := time.NewTicker(n.cfg.HeartbeatInterval)
		defer t.Stop()
		for {
			select {
			case <-n.closeCh:
				return
			case <-t.C:
			}
			now := time.Now()
			for _, pc := range n.outConns() {
				if pc.said_bye.Load() {
					continue
				}
				buf, err := AppendControl(nil, KindPing, pingBody{Nanos: now.UnixNano()})
				if err == nil && pc.writeFrame(n, buf) == nil {
					n.metrics.Heartbeats.Add(1)
				}
			}
		}
	}()
	// Watchdog ticks faster than the deadline so detection latency is a
	// fraction of the timeout, not up to one full probe interval.
	tick := deadAfter / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		t := time.NewTicker(tick)
		defer t.Stop()
		for {
			select {
			case <-n.closeCh:
				return
			case <-t.C:
			}
			now := time.Now()
			for _, pc := range n.outConns() {
				if pc.said_bye.Load() {
					continue
				}
				idle := now.Sub(time.Unix(0, pc.lastSeen.Load()))
				if idle > deadAfter {
					n.fail(faultErr(FaultHeartbeat, pc.peer, "proc %d silent for %v (heartbeat timeout)", pc.peer, idle.Round(time.Millisecond)))
					return
				}
			}
		}
	}()
}

// outConns snapshots the outbound connections under the lock.
func (n *Node) outConns() []*peerConn {
	n.mu.Lock()
	conns := make([]*peerConn, 0, len(n.out))
	for _, pc := range n.out {
		conns = append(conns, pc)
	}
	n.mu.Unlock()
	return conns
}

// fail reports a fatal link error once and poisons the host inbox so
// blocked HostRecv callers unblock.
func (n *Node) fail(err error) {
	if n.closed.Load() {
		return
	}
	n.host.fail(err)
	if fn := n.errFn.Load(); fn != nil {
		(*fn)(err)
	}
}

// Close implements Link: best-effort Bye to every dialed peer, then
// tear everything down.
func (n *Node) Close() error {
	if !n.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(n.closeCh)
	n.mu.Lock()
	outs := make([]*peerConn, 0, len(n.out))
	for _, pc := range n.out {
		outs = append(outs, pc)
	}
	ins := append([]*peerConn(nil), n.in...)
	n.mu.Unlock()
	if buf, err := AppendControl(nil, KindBye, nil); err == nil {
		// Bye goes on every live conn, inbound included: a peer that
		// dialed us still has a pump on that socket, and a bare close
		// would read as a transport failure there.
		for _, pc := range append(outs, ins...) {
			pc.conn.SetWriteDeadline(time.Now().Add(time.Second))
			pc.writeFrame(n, buf)
		}
	}
	if n.ln != nil {
		n.ln.Close()
	}
	for _, pc := range outs {
		pc.conn.Close()
	}
	for _, pc := range ins {
		pc.conn.Close()
	}
	n.host.fail(faultErr(FaultClosed, -1, "link closed"))
	n.wg.Wait()
	return nil
}

// Abort implements Link: tear the node down as if the process had
// crashed. No Bye is sent, so every peer's pump observes a connection
// reset and fails its node — exactly the signal a supervisor needs to
// demolish a faulted machine generation everywhere at once.
func (n *Node) Abort(err error) {
	if !n.closed.CompareAndSwap(false, true) {
		return
	}
	if err == nil {
		err = faultErr(FaultClosed, -1, "link aborted")
	}
	close(n.closeCh)
	n.mu.Lock()
	conns := make([]*peerConn, 0, len(n.out)+len(n.in))
	for _, pc := range n.out {
		conns = append(conns, pc)
	}
	conns = append(conns, n.in...)
	n.mu.Unlock()
	if n.ln != nil {
		n.ln.Close()
	}
	for _, pc := range conns {
		pc.conn.Close()
	}
	n.host.fail(err)
	n.wg.Wait()
}

// putU32 patches a little-endian u32 at the front of buf.
func putU32(buf []byte, v uint32) {
	buf[0] = byte(v)
	buf[1] = byte(v >> 8)
	buf[2] = byte(v >> 16)
	buf[3] = byte(v >> 24)
}
