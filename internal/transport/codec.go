// Package transport is the point-to-point wire layer under the msg
// Machine: a typed binary codec for every payload the SPMD formulations
// exchange, a length-prefixed frame format, and two interchangeable
// process-to-process links — an in-process mesh (tests, loopback) and a
// TCP implementation with per-peer connection management (dial retry
// with exponential backoff, heartbeats, graceful close).
//
// The two-clock rule extends here: everything in this package belongs to
// the *host* clock. The simulated interconnect (ts + tw·m + th·hops) is
// charged by package msg at send time and travels inside the frame as a
// precomputed arrival timestamp, so the simulated time, interaction
// stats, and communication volumes of a run are bit-identical whether
// the machine's ranks share one process or are spread across many.
// Frames, bytes, dials, retries, and heartbeat RTTs are host-side
// observability only, exported through Metrics.
package transport

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
	"sync"
)

// Type IDs are fixed, process-independent, and must never be reused for
// a different encoding: both ends of a connection resolve payloads by
// these numbers alone. Blocks are assigned per package:
//
//	1–20   transport built-ins (scalars, plain slices)
//	21–30  internal/msg collective envelopes
//	31–50  internal/parbh wire structs
//	51–60  internal/cluster control messages
//	61–80  internal/fabric gateway/shard control messages
//
// ID 0 is reserved for nil.
const (
	idNil     uint16 = 0
	idBool    uint16 = 1
	idInt     uint16 = 2
	idInt32   uint16 = 3
	idInt64   uint16 = 4
	idUint64  uint16 = 5
	idFloat64 uint16 = 6
	idString  uint16 = 7
	idBytes   uint16 = 8
	idInts    uint16 = 9
	idInt32s  uint16 = 10
	idUint64s uint16 = 11
	idF64s    uint16 = 12
	idF64x2   uint16 = 13
	idEmpty   uint16 = 14
)

// Writer is an append-only encode buffer. All integers are
// little-endian and fixed-width; floats are IEEE-754 bit patterns, so a
// round trip is bit-exact.
type Writer struct{ b []byte }

// Bytes returns the encoded contents.
func (w *Writer) Bytes() []byte { return w.b }

// Reset clears the buffer, keeping capacity.
func (w *Writer) Reset() { w.b = w.b[:0] }

func (w *Writer) U8(v uint8)   { w.b = append(w.b, v) }
func (w *Writer) U16(v uint16) { w.b = binary.LittleEndian.AppendUint16(w.b, v) }
func (w *Writer) U32(v uint32) { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *Writer) U64(v uint64) { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *Writer) I32(v int32)  { w.U32(uint32(v)) }
func (w *Writer) I64(v int64)  { w.U64(uint64(v)) }
func (w *Writer) F64(v float64) {
	w.U64(math.Float64bits(v))
}

// Len writes a slice length. Nil and empty slices are distinguished so
// decoded values compare deep-equal to the originals.
func (w *Writer) Len(n int, isNil bool) {
	if isNil {
		w.U32(nilLen)
		return
	}
	w.U32(uint32(n))
}

// Str writes a length-prefixed string.
func (w *Writer) Str(s string) {
	w.U32(uint32(len(s)))
	w.b = append(w.b, s...)
}

// Raw appends raw bytes with a length prefix.
func (w *Writer) Raw(b []byte) {
	w.Len(len(b), b == nil)
	w.b = append(w.b, b...)
}

// nilLen is the length-prefix sentinel for nil slices.
const nilLen = 0xFFFFFFFF

// Reader decodes a buffer written by Writer. Errors are sticky: after
// the first failure every subsequent read returns zero values and Err
// reports the failure. Length prefixes are validated against the bytes
// actually remaining, so a corrupt length cannot drive allocation
// beyond the input size.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader returns a Reader over b.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the first decode error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.b) - r.off }

func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.Remaining() < n {
		r.fail("transport: truncated input: need %d bytes, have %d", n, r.Remaining())
		return nil
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b
}

func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *Reader) I32() int32   { return int32(r.U32()) }
func (r *Reader) I64() int64   { return int64(r.U64()) }
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// SliceLen reads a slice length written by Writer.Len and validates it
// against the remaining input at elemSize bytes per element. It returns
// (-1, false) for nil slices and (n, true) otherwise; on a bogus length
// the reader fails and (0, true) is returned.
func (r *Reader) SliceLen(elemSize int) (n int, notNil bool) {
	v := r.U32()
	if r.err != nil {
		return 0, true
	}
	if v == nilLen {
		return -1, false
	}
	n = int(v)
	if elemSize < 1 {
		elemSize = 1
	}
	if n > r.Remaining()/elemSize {
		r.fail("transport: slice length %d exceeds remaining input (%d bytes, elem size %d)",
			n, r.Remaining(), elemSize)
		return 0, true
	}
	return n, true
}

// Str reads a length-prefixed string.
func (r *Reader) Str() string {
	n, _ := r.SliceLen(1)
	if r.err != nil || n <= 0 {
		return ""
	}
	return string(r.take(n))
}

// Raw reads bytes written by Writer.Raw.
func (r *Reader) Raw() []byte {
	n, notNil := r.SliceLen(1)
	if r.err != nil || !notNil {
		return nil
	}
	b := r.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// codecEntry binds one concrete Go type to its wire identity.
type codecEntry struct {
	id   uint16
	name string
	typ  reflect.Type
	enc  func(*Writer, any)
	dec  func(*Reader) (any, error)
}

var registry struct {
	sync.RWMutex
	byType map[reflect.Type]*codecEntry
	byID   map[uint16]*codecEntry
}

func init() {
	registry.byType = make(map[reflect.Type]*codecEntry)
	registry.byID = make(map[uint16]*codecEntry)
	registerBuiltins()
}

// Register binds type T to a fixed wire ID with explicit encode/decode
// functions. It panics on a duplicate ID or type: wire identities are
// global constants, and a collision is a build-time bug, not a runtime
// condition. Packages register their payload types from init.
func Register[T any](id uint16, enc func(*Writer, T), dec func(*Reader) (T, error)) {
	var zero T
	typ := reflect.TypeOf(zero)
	if typ == nil {
		panic("transport: cannot register interface type")
	}
	e := &codecEntry{
		id:   id,
		name: typ.String(),
		typ:  typ,
		enc:  func(w *Writer, v any) { enc(w, v.(T)) },
		dec: func(r *Reader) (any, error) {
			v, err := dec(r)
			return v, err
		},
	}
	registry.Lock()
	defer registry.Unlock()
	if id == idNil {
		panic("transport: wire ID 0 is reserved for nil")
	}
	if prev, ok := registry.byID[id]; ok {
		panic(fmt.Sprintf("transport: wire ID %d already bound to %s", id, prev.name))
	}
	if prev, ok := registry.byType[typ]; ok {
		panic(fmt.Sprintf("transport: type %s already registered as ID %d", typ, prev.id))
	}
	registry.byID[id] = e
	registry.byType[typ] = e
}

// Registered reports whether v's concrete type has a codec. A nil value
// is always encodable.
func Registered(v any) bool {
	if v == nil {
		return true
	}
	registry.RLock()
	defer registry.RUnlock()
	_, ok := registry.byType[reflect.TypeOf(v)]
	return ok
}

// TypeName returns the registered name for diagnostics, or the
// reflected type when unregistered.
func TypeName(v any) string {
	if v == nil {
		return "nil"
	}
	return reflect.TypeOf(v).String()
}

// EncodeAny writes v's wire ID and body. It returns an error for
// unregistered types — the caller decides whether that is fatal (a
// remote send) or fine (an in-process reference pass).
func EncodeAny(w *Writer, v any) error {
	if v == nil {
		w.U16(idNil)
		return nil
	}
	registry.RLock()
	e, ok := registry.byType[reflect.TypeOf(v)]
	registry.RUnlock()
	if !ok {
		return fmt.Errorf("transport: no codec registered for %s", reflect.TypeOf(v))
	}
	w.U16(e.id)
	e.enc(w, v)
	return nil
}

// MustEncodeAny is EncodeAny for use inside codec functions (whose
// signatures have no error path): an unregistered nested type panics
// with the offending type name. The codec exhaustiveness tests keep
// this from firing in production paths.
func MustEncodeAny(w *Writer, v any) {
	if err := EncodeAny(w, v); err != nil {
		panic(err.Error())
	}
}

// DecodeAny reads one value written by EncodeAny.
func DecodeAny(r *Reader) (any, error) {
	id := r.U16()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if id == idNil {
		return nil, nil
	}
	registry.RLock()
	e, ok := registry.byID[id]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("transport: unknown wire ID %d", id)
	}
	v, err := e.dec(r)
	if err != nil {
		return nil, err
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return v, nil
}

// Marshal encodes a single registered value to bytes.
func Marshal(v any) ([]byte, error) {
	var w Writer
	if err := EncodeAny(&w, v); err != nil {
		return nil, err
	}
	return w.Bytes(), nil
}

// Unmarshal decodes a single value from bytes, requiring full
// consumption of the input.
func Unmarshal(b []byte) (any, error) {
	r := NewReader(b)
	v, err := DecodeAny(r)
	if err != nil {
		return nil, err
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("transport: %d trailing bytes after payload", r.Remaining())
	}
	return v, nil
}

// RoundTrip deep-copies a registered value through its codec: the
// canonical "fully encoded at send time" semantics. The returned value
// shares no mutable state with the input.
func RoundTrip(v any) (any, error) {
	b, err := Marshal(v)
	if err != nil {
		return nil, err
	}
	return Unmarshal(b)
}

// registerBuiltins installs codecs for the scalar and plain-slice
// payloads the collectives exchange.
func registerBuiltins() {
	Register(idBool,
		func(w *Writer, v bool) {
			if v {
				w.U8(1)
			} else {
				w.U8(0)
			}
		},
		func(r *Reader) (bool, error) { return r.U8() != 0, r.Err() })
	Register(idInt,
		func(w *Writer, v int) { w.I64(int64(v)) },
		func(r *Reader) (int, error) { return int(r.I64()), r.Err() })
	Register(idInt32,
		func(w *Writer, v int32) { w.I32(v) },
		func(r *Reader) (int32, error) { return r.I32(), r.Err() })
	Register(idInt64,
		func(w *Writer, v int64) { w.I64(v) },
		func(r *Reader) (int64, error) { return r.I64(), r.Err() })
	Register(idUint64,
		func(w *Writer, v uint64) { w.U64(v) },
		func(r *Reader) (uint64, error) { return r.U64(), r.Err() })
	Register(idFloat64,
		func(w *Writer, v float64) { w.F64(v) },
		func(r *Reader) (float64, error) { return r.F64(), r.Err() })
	Register(idString,
		func(w *Writer, v string) { w.Str(v) },
		func(r *Reader) (string, error) { return r.Str(), r.Err() })
	Register(idBytes,
		func(w *Writer, v []byte) { w.Raw(v) },
		func(r *Reader) ([]byte, error) { return r.Raw(), r.Err() })
	Register(idInts,
		func(w *Writer, v []int) {
			w.Len(len(v), v == nil)
			for _, x := range v {
				w.I64(int64(x))
			}
		},
		func(r *Reader) ([]int, error) {
			n, notNil := r.SliceLen(8)
			if !notNil || r.Err() != nil {
				return nil, r.Err()
			}
			out := make([]int, n)
			for i := range out {
				out[i] = int(r.I64())
			}
			return out, r.Err()
		})
	Register(idInt32s,
		func(w *Writer, v []int32) {
			w.Len(len(v), v == nil)
			for _, x := range v {
				w.I32(x)
			}
		},
		func(r *Reader) ([]int32, error) {
			n, notNil := r.SliceLen(4)
			if !notNil || r.Err() != nil {
				return nil, r.Err()
			}
			out := make([]int32, n)
			for i := range out {
				out[i] = r.I32()
			}
			return out, r.Err()
		})
	Register(idUint64s,
		func(w *Writer, v []uint64) {
			w.Len(len(v), v == nil)
			for _, x := range v {
				w.U64(x)
			}
		},
		func(r *Reader) ([]uint64, error) {
			n, notNil := r.SliceLen(8)
			if !notNil || r.Err() != nil {
				return nil, r.Err()
			}
			out := make([]uint64, n)
			for i := range out {
				out[i] = r.U64()
			}
			return out, r.Err()
		})
	Register(idF64s,
		func(w *Writer, v []float64) {
			w.Len(len(v), v == nil)
			for _, x := range v {
				w.F64(x)
			}
		},
		func(r *Reader) ([]float64, error) {
			n, notNil := r.SliceLen(8)
			if !notNil || r.Err() != nil {
				return nil, r.Err()
			}
			out := make([]float64, n)
			for i := range out {
				out[i] = r.F64()
			}
			return out, r.Err()
		})
	Register(idF64x2,
		func(w *Writer, v [2]float64) { w.F64(v[0]); w.F64(v[1]) },
		func(r *Reader) ([2]float64, error) {
			return [2]float64{r.F64(), r.F64()}, r.Err()
		})
	Register(idEmpty,
		func(w *Writer, v struct{}) {},
		func(r *Reader) (struct{}, error) { return struct{}{}, nil })
}
