package transport

import (
	"bytes"
	"encoding/binary"
	"math"
	"reflect"
	"strings"
	"testing"
)

// seedFrames returns valid encoded data frames (header included)
// covering nil, scalar, slice, string, and empty-struct payloads.
func seedFrames(t testing.TB) [][]byte {
	t.Helper()
	var out [][]byte
	for i, payload := range []any{
		nil,
		true,
		int(42),
		int64(-7),
		float64(3.25),
		"hello",
		[]byte{1, 2, 3},
		[]int{4, 5},
		[]int32{6},
		[]uint64{7, 8, 9},
		[]float64{1.5, 2.5},
		[2]float64{0.5, -0.5},
		struct{}{},
	} {
		f := &Frame{Epoch: 3, Src: int32(i), Dst: 1, Tag: 9, Words: 2, Arrival: 1.25}
		f.Payload = payload
		buf, err := AppendFrame(nil, f)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, buf)
	}
	return out
}

// FuzzDecodeFrame hammers the frame decoder with truncated, corrupt,
// and hostile inputs: it must return errors, never panic, and never
// allocate beyond the MaxFrame cap. ReadRaw's length-prefix guard is
// exercised on the same inputs treated as a byte stream.
func FuzzDecodeFrame(f *testing.F) {
	for _, buf := range seedFrames(f) {
		f.Add(buf[frameHeaderLen:]) // well-formed body
		f.Add(buf)                  // header misparsed as body
		if len(buf) > frameHeaderLen+3 {
			f.Add(buf[frameHeaderLen : len(buf)-3]) // truncated body
		}
	}
	// An oversized length prefix: ReadRaw must reject it before
	// allocating.
	huge := make([]byte, frameHeaderLen)
	binary.LittleEndian.PutUint32(huge, uint32(MaxFrame+1))
	huge[4] = KindData
	f.Add(huge)
	// A plausible-looking body with a hostile slice length.
	bogus := make([]byte, 0, 64)
	w := Writer{b: bogus}
	w.U32(1)       // epoch
	w.I32(0)       // src
	w.I32(1)       // dst
	w.I32(2)       // tag
	w.I32(3)       // words
	w.F64(0.5)     // arrival
	w.U16(idF64s)  // []float64
	w.U32(1 << 30) // claimed length far beyond the input
	f.Add(w.Bytes())

	f.Fuzz(func(t *testing.T, body []byte) {
		frame, err := DecodeFrame(body)
		if err == nil {
			// Whatever decoded must re-encode: the codec space is closed
			// under round trips.
			if _, rerr := AppendFrame(nil, frame); rerr != nil {
				t.Fatalf("decoded frame failed to re-encode: %v", rerr)
			}
		}
		// The same bytes as a socket stream. Cap the claimed length we
		// honor in-fuzz so the corpus doesn't thrash on allocations that
		// are legal (≤ MaxFrame) but huge; the MaxFrame rejection itself
		// is pinned deterministically in TestReadRawRejectsOversizedLength.
		if len(body) >= frameHeaderLen {
			if n := binary.LittleEndian.Uint32(body[:4]); n <= 1<<20 || n > MaxFrame {
				_, _, _ = ReadRaw(bytes.NewReader(body))
			}
		}
	})
}

// TestFrameRoundTrip pins bit-exact frame round trips for every builtin
// payload shape, including float bit patterns that compare unequal
// (NaN) or equal across distinct bits (±0).
func TestFrameRoundTrip(t *testing.T) {
	payloads := []any{
		nil,
		false,
		int(-1),
		int32(7),
		int64(1 << 40),
		uint64(math.MaxUint64),
		math.Inf(-1),
		"κόσμος",
		[]byte(nil),
		[]byte{},
		[]int(nil),
		[]float64{math.Pi, -0.0, math.SmallestNonzeroFloat64},
		[2]float64{1, 2},
		struct{}{},
	}
	for _, payload := range payloads {
		in := &Frame{Epoch: 9, Src: 2, Dst: 5, Tag: 1 << 20, Words: 33, Arrival: 0.125, Payload: payload}
		buf, err := AppendFrame(nil, in)
		if err != nil {
			t.Fatalf("%T: %v", payload, err)
		}
		if buf[4] != KindData {
			t.Fatalf("%T: frame kind = %d, want %d", payload, buf[4], KindData)
		}
		if got := binary.LittleEndian.Uint32(buf[:4]); int(got) != len(buf)-frameHeaderLen {
			t.Fatalf("%T: length prefix %d, body %d", payload, got, len(buf)-frameHeaderLen)
		}
		out, err := DecodeFrame(buf[frameHeaderLen:])
		if err != nil {
			t.Fatalf("%T: decode: %v", payload, err)
		}
		if out.Epoch != in.Epoch || out.Src != in.Src || out.Dst != in.Dst ||
			out.Tag != in.Tag || out.Words != in.Words ||
			math.Float64bits(out.Arrival) != math.Float64bits(in.Arrival) {
			t.Fatalf("%T: header round trip: got %+v, want %+v", payload, out, in)
		}
		if !reflect.DeepEqual(out.Payload, in.Payload) {
			t.Fatalf("payload round trip: got %#v, want %#v", out.Payload, in.Payload)
		}
	}
}

// TestDecodeFrameTruncated: every prefix of a valid body errors, never
// panics.
func TestDecodeFrameTruncated(t *testing.T) {
	for _, buf := range seedFrames(t) {
		body := buf[frameHeaderLen:]
		for cut := 0; cut < len(body); cut++ {
			if _, err := DecodeFrame(body[:cut]); err == nil {
				t.Fatalf("truncation to %d/%d bytes decoded without error", cut, len(body))
			}
		}
	}
}

// TestDecodeFrameTrailingBytes: extra bytes after the payload are a
// decode error (a frame is exactly one message).
func TestDecodeFrameTrailingBytes(t *testing.T) {
	buf := seedFrames(t)[0]
	body := append(append([]byte(nil), buf[frameHeaderLen:]...), 0xEE)
	_, err := DecodeFrame(body)
	if err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("err = %v, want trailing-bytes error", err)
	}
}

// TestDecodeFrameUnknownWireID: a payload ID nothing registered decodes
// to a clear error.
func TestDecodeFrameUnknownWireID(t *testing.T) {
	var w Writer
	w.U32(0) // epoch
	w.U32(0) // seq
	w.I32(0)
	w.I32(0)
	w.I32(0)
	w.I32(0)
	w.F64(0)
	w.U16(0xFFFE)
	if _, err := DecodeFrame(w.Bytes()); err == nil || !strings.Contains(err.Error(), "unknown wire ID") {
		t.Fatalf("err = %v, want unknown-wire-ID error", err)
	}
}

// TestReadRawRejectsOversizedLength: a hostile length prefix is refused
// before any allocation happens.
func TestReadRawRejectsOversizedLength(t *testing.T) {
	hdr := make([]byte, frameHeaderLen)
	binary.LittleEndian.PutUint32(hdr, uint32(MaxFrame+1))
	hdr[4] = KindData
	_, _, err := ReadRaw(bytes.NewReader(hdr))
	if err == nil || !strings.Contains(err.Error(), "exceeds MaxFrame") {
		t.Fatalf("err = %v, want MaxFrame rejection", err)
	}
}

// TestHostileSliceLengthBounded: a corrupt slice length cannot drive
// allocation beyond the input size (the SliceLen guard).
func TestHostileSliceLengthBounded(t *testing.T) {
	var w Writer
	w.U16(idF64s)
	w.U32(1 << 30) // claims 8 GiB of floats in a 6-byte input
	if _, err := Unmarshal(w.Bytes()); err == nil {
		t.Fatal("hostile slice length decoded without error")
	}
}
