package transport

import (
	"fmt"
	"testing"
	"time"
)

// faultPair wraps a two-node mesh in FaultLinks with the given plans.
// Mesh delivery is synchronous, so effects of SendData are observable
// as soon as it returns.
func faultPair(plan0, plan1 FaultPlan) (*FaultLink, *FaultLink) {
	nodes := NewMesh(2)
	return NewFaultLink(nodes[0], plan0), NewFaultLink(nodes[1], plan1)
}

func testFrame(tag int) *Frame {
	return &Frame{Src: 0, Dst: 1, Tag: int32(tag), Words: 3, Arrival: 1.5, Payload: []float64{1, 2, 3}}
}

// TestFaultLinkDrop: with DropProb 1 every data frame is swallowed
// without an error (the receiver's rank would block until recovery),
// and the drop counter records each one.
func TestFaultLinkDrop(t *testing.T) {
	a, b := faultPair(FaultPlan{Seed: 1, DropProb: 1}, FaultPlan{})
	got := 0
	b.SetDataHandler(func(*Frame) { got++ })
	for i := 0; i < 5; i++ {
		if err := a.SendData(1, testFrame(i)); err != nil {
			t.Fatalf("drop must be silent, got %v", err)
		}
	}
	if got != 0 {
		t.Fatalf("%d frames delivered through a 100%% drop plan", got)
	}
	if n := a.Metrics().FaultsDropped.Load(); n != 5 {
		t.Fatalf("FaultsDropped = %d, want 5", n)
	}
}

// TestFaultLinkDuplicateDedup: DupProb 1 sends every frame twice; the
// receiving FaultLink's Seq window drops the copies, so the handler
// sees each frame exactly once and both sides count the chaos.
func TestFaultLinkDuplicateDedup(t *testing.T) {
	a, b := faultPair(FaultPlan{Seed: 1, DupProb: 1}, FaultPlan{})
	var tags []int
	b.SetDataHandler(func(f *Frame) { tags = append(tags, int(f.Tag)) })
	for i := 0; i < 4; i++ {
		if err := a.SendData(1, testFrame(i)); err != nil {
			t.Fatal(err)
		}
	}
	if len(tags) != 4 {
		t.Fatalf("delivered %d frames, want 4 (dedup failed): %v", len(tags), tags)
	}
	for i, tag := range tags {
		if tag != i {
			t.Fatalf("delivery order %v, want 0..3", tags)
		}
	}
	if n := a.Metrics().FaultsDuplicated.Load(); n != 4 {
		t.Fatalf("FaultsDuplicated = %d, want 4", n)
	}
	if n := b.Metrics().FaultsDeduped.Load(); n != 4 {
		t.Fatalf("FaultsDeduped = %d, want 4", n)
	}
}

// TestFaultLinkDelay: delayed frames still arrive, in order, and are
// counted.
func TestFaultLinkDelay(t *testing.T) {
	a, b := faultPair(FaultPlan{Seed: 1, DelayProb: 1, Delay: time.Millisecond}, FaultPlan{})
	got := 0
	b.SetDataHandler(func(*Frame) { got++ })
	start := time.Now()
	for i := 0; i < 3; i++ {
		if err := a.SendData(1, testFrame(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got != 3 {
		t.Fatalf("delivered %d frames, want 3", got)
	}
	if n := a.Metrics().FaultsDelayed.Load(); n != 3 {
		t.Fatalf("FaultsDelayed = %d, want 3", n)
	}
	if elapsed := time.Since(start); elapsed < 3*time.Millisecond {
		t.Fatalf("3 delayed sends finished in %v, delays not applied", elapsed)
	}
}

// TestFaultLinkSlowPeer: frames to a listed peer are always delayed.
func TestFaultLinkSlowPeer(t *testing.T) {
	a, b := faultPair(FaultPlan{Seed: 1, SlowPeers: []int{1}, Delay: time.Millisecond}, FaultPlan{})
	got := 0
	b.SetDataHandler(func(*Frame) { got++ })
	if err := a.SendData(1, testFrame(0)); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("delivered %d frames, want 1", got)
	}
	if n := a.Metrics().FaultsDelayed.Load(); n != 1 {
		t.Fatalf("FaultsDelayed = %d, want 1", n)
	}
}

// TestFaultLinkPartition: after PartitionAfter frames the link is
// severed in both directions, the error handler fires once with a
// FaultPartition, and blocked host calls fail.
func TestFaultLinkPartition(t *testing.T) {
	a, b := faultPair(FaultPlan{Seed: 1, PartitionAfter: 3}, FaultPlan{})
	b.SetDataHandler(func(*Frame) {})
	errs := make(chan error, 4)
	a.SetErrorHandler(func(err error) { errs <- err })
	var sendErr error
	for i := 0; i < 6; i++ {
		if err := a.SendData(1, testFrame(i)); err != nil {
			sendErr = err
		}
	}
	if sendErr == nil {
		t.Fatal("sends past the partition trigger did not fail")
	}
	if k := FaultKindOf(sendErr); k != FaultPartition {
		t.Fatalf("send error kind = %v, want partition: %v", k, sendErr)
	}
	select {
	case err := <-errs:
		if k := FaultKindOf(err); k != FaultPartition {
			t.Fatalf("error handler kind = %v: %v", k, err)
		}
	default:
		t.Fatal("error handler never fired")
	}
	if err := a.HostSend(1, "x"); FaultKindOf(err) != FaultPartition {
		t.Fatalf("HostSend through partition = %v, want partition error", err)
	}
	if _, _, err := a.HostRecv(); err == nil {
		t.Fatal("HostRecv on a partitioned link did not fail")
	}
	if n := a.Metrics().FaultsPartitions.Load(); n != 1 {
		t.Fatalf("FaultsPartitions = %d, want 1", n)
	}
}

// TestFaultLinkCorrupt: an injected corruption drops the frame and
// fails the receiving link with a FaultCorrupt, exactly as the TCP pump
// reacts to an undecodable body.
func TestFaultLinkCorrupt(t *testing.T) {
	a, b := faultPair(FaultPlan{}, FaultPlan{Seed: 1, CorruptProb: 1})
	got := 0
	b.SetDataHandler(func(*Frame) { got++ })
	errs := make(chan error, 1)
	b.SetErrorHandler(func(err error) { errs <- err })
	if err := a.SendData(1, testFrame(0)); err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatal("corrupted frame was delivered")
	}
	select {
	case err := <-errs:
		if k := FaultKindOf(err); k != FaultCorrupt {
			t.Fatalf("error kind = %v: %v", k, err)
		}
	default:
		t.Fatal("corruption did not fail the link")
	}
	if n := b.Metrics().FaultsCorrupted.Load(); n != 1 {
		t.Fatalf("FaultsCorrupted = %d, want 1", n)
	}
}

// TestFaultLinkDeterministicSchedule: the same seed over the same frame
// sequence injects the same faults — the property the chaos CI matrix
// and the golden-recovery tests rely on.
func TestFaultLinkDeterministicSchedule(t *testing.T) {
	run := func(seed int64) []int {
		a, b := faultPair(FaultPlan{Seed: seed, DropProb: 0.4}, FaultPlan{})
		var tags []int
		b.SetDataHandler(func(f *Frame) { tags = append(tags, int(f.Tag)) })
		for i := 0; i < 50; i++ {
			if err := a.SendData(1, testFrame(i)); err != nil {
				t.Fatal(err)
			}
		}
		return tags
	}
	first := run(99)
	second := run(99)
	if fmt.Sprint(first) != fmt.Sprint(second) {
		t.Fatalf("same seed produced different schedules:\n%v\n%v", first, second)
	}
	if len(first) == 0 || len(first) == 50 {
		t.Fatalf("drop plan delivered %d/50 frames; expected a mix", len(first))
	}
	other := run(7)
	if fmt.Sprint(first) == fmt.Sprint(other) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestFaultLinkHostPassThrough: control traffic crosses a healthy fault
// link unmodified.
func TestFaultLinkHostPassThrough(t *testing.T) {
	a, b := faultPair(FaultPlan{Seed: 1, DropProb: 1}, FaultPlan{})
	if err := a.HostSend(1, "hello"); err != nil {
		t.Fatal(err)
	}
	src, payload, err := b.HostRecv()
	if err != nil || src != 0 || payload != "hello" {
		t.Fatalf("HostRecv = %d, %v, %v", src, payload, err)
	}
}

// TestRetryableClassification pins which fault kinds a supervisor may
// retry.
func TestRetryableClassification(t *testing.T) {
	if Retryable(nil) {
		t.Fatal("nil error is not retryable")
	}
	if Retryable(fmt.Errorf("plain error")) {
		t.Fatal("non-transport errors are not retryable")
	}
	for _, kind := range []FaultKind{FaultPeerLost, FaultHeartbeat, FaultCorrupt, FaultPartition, FaultStall} {
		err := fmt.Errorf("wrapped: %w", faultErr(kind, 2, "boom"))
		if !Retryable(err) {
			t.Fatalf("%v should be retryable", kind)
		}
		if FaultKindOf(err) != kind {
			t.Fatalf("FaultKindOf lost the kind %v", kind)
		}
	}
	if Retryable(faultErr(FaultClosed, -1, "closed")) {
		t.Fatal("a deliberate close is not retryable")
	}
}
