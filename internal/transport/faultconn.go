package transport

import (
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// FaultConn applies the FaultLink chaos taxonomy to a framed control
// connection — the fabric's gateway↔shard plane, which rides raw conns
// rather than the Link interface. The wrapper is sender-side: each
// endpoint wraps its own conn, and every Write call (one whole control
// frame, the fabric's write discipline) rolls the plan's dice:
//
//   - DropProb swallows the frame (the peer never sees it; lease
//     heartbeating and re-registration absorb the gap),
//   - DelayProb stalls it synchronously by Delay, preserving FIFO order,
//   - DupProb writes it twice (control handling is idempotent),
//   - CorruptProb flips a body byte, which the receiver classifies as
//     FaultCorrupt and answers by failing the session,
//   - PartitionAfter severs the conn after that many written frames.
//
// Decisions come from a private RNG seeded with plan.Seed, so a drill
// replays identically. Reads pass through untouched.
type FaultConn struct {
	net.Conn
	plan FaultPlan

	mu   sync.Mutex
	rng  *rand.Rand
	sent int

	Dropped     atomic.Int64
	Duplicated  atomic.Int64
	Delayed     atomic.Int64
	Corrupted   atomic.Int64
	Partitioned atomic.Bool
}

// NewFaultConn wraps conn with the plan. A nil plan or zero-value plan
// injects nothing (but still counts frames for PartitionAfter == 0,
// i.e. never partitions).
func NewFaultConn(conn net.Conn, plan FaultPlan) *FaultConn {
	seed := plan.Seed
	if seed == 0 {
		seed = 1
	}
	if plan.Delay <= 0 {
		plan.Delay = time.Millisecond
	}
	return &FaultConn{Conn: conn, plan: plan, rng: rand.New(rand.NewSource(seed))}
}

// Write applies the plan to one outgoing control frame.
func (fc *FaultConn) Write(frame []byte) (int, error) {
	fc.mu.Lock()
	fc.sent++
	partitioned := fc.plan.PartitionAfter > 0 && fc.sent > fc.plan.PartitionAfter
	var drop, dup, corrupt, delay bool
	if !partitioned {
		drop = fc.plan.DropProb > 0 && fc.rng.Float64() < fc.plan.DropProb
		delay = fc.plan.DelayProb > 0 && fc.rng.Float64() < fc.plan.DelayProb
		dup = fc.plan.DupProb > 0 && fc.rng.Float64() < fc.plan.DupProb
		corrupt = fc.plan.CorruptProb > 0 && fc.rng.Float64() < fc.plan.CorruptProb
	}
	fc.mu.Unlock()

	if partitioned {
		if fc.Partitioned.CompareAndSwap(false, true) {
			fc.Conn.Close() // sever both directions, like a real partition
		}
		return 0, faultErr(FaultPartition, -1, "injected partition after %d control frames", fc.plan.PartitionAfter)
	}
	if drop {
		fc.Dropped.Add(1)
		return len(frame), nil
	}
	if delay {
		fc.Delayed.Add(1)
		time.Sleep(fc.plan.Delay)
	}
	buf := frame
	if corrupt && len(frame) > frameHeaderLen {
		// Flip one byte past the header: the length prefix stays intact so
		// the stream keeps framing, but the body fails to decode and the
		// receiver classifies the session FaultCorrupt.
		fc.Corrupted.Add(1)
		buf = append([]byte(nil), frame...)
		buf[frameHeaderLen] ^= 0xFF
	}
	if _, err := fc.Conn.Write(buf); err != nil {
		return 0, err
	}
	if dup {
		fc.Duplicated.Add(1)
		fc.Conn.Write(buf)
	}
	return len(frame), nil
}
