package transport

import (
	"net"
	"strings"
	"testing"
	"time"
)

// freePort reserves a loopback port and releases it: the window between
// close and reuse is tolerable in tests and avoids hardcoded ports.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// TestDialRetryExhaustion pins the acceptance criterion for a dead dial
// target: Join retries with backoff, then returns a clear error naming
// the attempt count — it must not hang.
func TestDialRetryExhaustion(t *testing.T) {
	addr := freePort(t) // nothing listens here
	type result struct {
		node *Node
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		n, err := Join(addr, Config{
			ListenAddr:  "127.0.0.1:0",
			DialRetries: 2,
			RetryBase:   5 * time.Millisecond,
			RetryMax:    20 * time.Millisecond,
			DialTimeout: 250 * time.Millisecond,
		})
		ch <- result{n, err}
	}()
	select {
	case r := <-ch:
		if r.err == nil {
			r.node.Close()
			t.Fatal("Join to a dead address succeeded")
		}
		if !strings.Contains(r.err.Error(), "attempt") {
			t.Fatalf("err = %v, want an attempt-count message", r.err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Join hung instead of exhausting its retry budget")
	}
}

// TestDialRetryDelayedListener: a worker that starts before its
// coordinator joins successfully once the listener comes up, recording
// the retries it needed.
func TestDialRetryDelayedListener(t *testing.T) {
	addr := freePort(t)
	type joined struct {
		node *Node
		err  error
	}
	ch := make(chan joined, 1)
	go func() {
		n, err := Join(addr, Config{
			ListenAddr:  "127.0.0.1:0",
			DialRetries: 40,
			RetryBase:   25 * time.Millisecond,
			RetryMax:    100 * time.Millisecond,
		})
		ch <- joined{n, err}
	}()
	time.Sleep(300 * time.Millisecond) // let the worker fail a dial or two
	coord, err := NewCoordinator(Config{ListenAddr: addr}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	if err := coord.WaitWorkers(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	j := <-ch
	if j.err != nil {
		t.Fatal(j.err)
	}
	defer j.node.Close()
	if j.node.ProcID() != 1 || j.node.NumProcs() != 2 {
		t.Fatalf("joined as proc %d of %d, want 1 of 2", j.node.ProcID(), j.node.NumProcs())
	}
	if got := j.node.Metrics().Snapshot().DialRetries; got == 0 {
		t.Error("worker joined without recording any dial retries despite the delayed listener")
	}
	// Prove the link is live both ways on the host channel.
	if err := coord.HostSend(1, "ping"); err != nil {
		t.Fatal(err)
	}
	if _, payload, err := j.node.HostRecv(); err != nil || payload != "ping" {
		t.Fatalf("worker HostRecv = %v, %v", payload, err)
	}
	if err := j.node.HostSend(0, "pong"); err != nil {
		t.Fatal(err)
	}
	if src, payload, err := coord.HostRecv(); err != nil || payload != "pong" || src != 1 {
		t.Fatalf("coordinator HostRecv = %d, %v, %v", src, payload, err)
	}
}

// TestTCPDataFrameDelivery exchanges data frames across a real socket
// pair and checks the transport metrics move.
func TestTCPDataFrameDelivery(t *testing.T) {
	coord, err := NewCoordinator(Config{ListenAddr: "127.0.0.1:0"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	type joined struct {
		node *Node
		err  error
	}
	ch := make(chan joined, 1)
	go func() {
		n, err := Join(coord.Addr(), Config{ListenAddr: "127.0.0.1:0"})
		ch <- joined{n, err}
	}()
	if err := coord.WaitWorkers(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	j := <-ch
	if j.err != nil {
		t.Fatal(j.err)
	}
	defer j.node.Close()

	got := make(chan *Frame, 1)
	j.node.SetDataHandler(func(f *Frame) { got <- f })
	payload := []float64{1, 2, 3}
	f := &Frame{Epoch: 1, Src: 0, Dst: 4, Tag: 17, Words: 3, Arrival: 2.5, Payload: payload}
	if err := coord.SendData(1, f); err != nil {
		t.Fatal(err)
	}
	// The frame was encoded at send time: mutating the sender's buffer
	// now must not reach the receiver (the aliasing guarantee on the
	// real wire).
	payload[0] = -1
	select {
	case rf := <-got:
		if rf.Src != 0 || rf.Dst != 4 || rf.Tag != 17 || rf.Words != 3 || rf.Arrival != 2.5 {
			t.Fatalf("frame header = %+v", rf)
		}
		if p := rf.Payload.([]float64); p[0] != 1 {
			t.Fatalf("receiver saw sender's post-send mutation: %v", p)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("data frame never delivered")
	}
	m := coord.Metrics().Snapshot()
	if m.FramesSent == 0 || m.BytesSent == 0 {
		t.Errorf("coordinator metrics did not record the send: %+v", m)
	}
}
