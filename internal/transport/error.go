package transport

import (
	"errors"
	"fmt"
)

// FaultKind classifies a transport failure. The kind is what a
// supervisor keys recovery policy on: everything except FaultClosed is
// a fault of the interconnect or a peer and is worth retrying after a
// rebuild; FaultClosed means this endpoint was torn down deliberately.
type FaultKind int

const (
	FaultNone      FaultKind = iota
	FaultPeerLost            // connection reset, read error, peer process gone
	FaultHeartbeat           // liveness probe timeout: peer silent too long
	FaultCorrupt             // frame failed to decode (injected or real bit rot)
	FaultPartition           // full partition: no traffic crosses the link
	FaultStall               // control-protocol or step deadline expired
	FaultClosed              // link closed locally
)

func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultPeerLost:
		return "peer_lost"
	case FaultHeartbeat:
		return "heartbeat"
	case FaultCorrupt:
		return "corrupt"
	case FaultPartition:
		return "partition"
	case FaultStall:
		return "stall"
	case FaultClosed:
		return "closed"
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// TransportError is a structured transport failure: which kind of fault,
// which peer (or -1 when unknown / not peer-specific), and the
// underlying cause. Machine and engine layers propagate it unchanged so
// the service layer can decide whether a failed job is retryable.
type TransportError struct {
	Kind FaultKind
	Proc int // peer proc ID, -1 if unknown
	Err  error
}

func (e *TransportError) Error() string {
	if e.Proc >= 0 {
		return fmt.Sprintf("transport: %s (proc %d): %v", e.Kind, e.Proc, e.Err)
	}
	return fmt.Sprintf("transport: %s: %v", e.Kind, e.Err)
}

func (e *TransportError) Unwrap() error { return e.Err }

// faultErr builds a TransportError with a formatted cause.
func faultErr(kind FaultKind, proc int, format string, args ...any) *TransportError {
	return &TransportError{Kind: kind, Proc: proc, Err: fmt.Errorf(format, args...)}
}

// FaultKindOf extracts the fault kind carried by err, or FaultNone if
// err has no TransportError in its chain.
func FaultKindOf(err error) FaultKind {
	var te *TransportError
	if errors.As(err, &te) {
		return te.Kind
	}
	return FaultNone
}

// Retryable reports whether err is a transport-class failure that a
// supervisor can reasonably retry by rebuilding the machine: a fault of
// the interconnect or a peer, not a deliberate local close and not an
// application error.
func Retryable(err error) bool {
	k := FaultKindOf(err)
	return k != FaultNone && k != FaultClosed
}
