package transport

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Frame kinds. Data frames carry a simulated-machine message between
// two ranks; host frames carry untimed control traffic between
// processes (job setup, result gathers). The rest are connection
// plumbing: the join handshake, liveness probes, and graceful close.
const (
	KindData    uint8 = 1
	KindHost    uint8 = 2
	KindHello   uint8 = 3 // worker → coordinator: join request
	KindWelcome uint8 = 4 // coordinator → worker: proc ID + topology
	KindIdent   uint8 = 5 // first frame on a dialed conn: who is calling
	KindPing    uint8 = 6
	KindPong    uint8 = 7
	KindBye     uint8 = 8 // graceful close
)

// MaxFrame caps the decoded size of a single frame body. A corrupt or
// hostile length prefix therefore cannot drive an allocation beyond
// this bound. 256 MiB comfortably covers the largest particle
// migrations at paper scale.
const MaxFrame = 256 << 20

// frameHeaderLen is the wire overhead per frame: u32 body length plus
// u8 kind.
const frameHeaderLen = 5

// Frame is one simulated-machine message in flight between processes.
// Src/Dst are machine ranks; Arrival is the simulated-clock delivery
// timestamp, computed on the sender under the machine's cost model so
// that the simulated interconnect is independent of the real one.
// Epoch tags the job incarnation: frames from a previous job on a
// reused connection are dropped by the receiver. Seq is a per-sender
// sequence number stamped by fault-injecting links so receivers can
// drop duplicated deliveries; 0 means unset and is never deduplicated.
type Frame struct {
	Epoch   uint32
	Seq     uint32
	Src     int32
	Dst     int32
	Tag     int32
	Words   int32
	Arrival float64
	Payload any
}

// AppendFrame encodes f as a length-prefixed data frame onto buf.
func AppendFrame(buf []byte, f *Frame) ([]byte, error) {
	w := Writer{b: buf}
	w.U32(0) // body length, patched below
	w.U8(KindData)
	start := len(w.b)
	w.U32(f.Epoch)
	w.U32(f.Seq)
	w.I32(f.Src)
	w.I32(f.Dst)
	w.I32(f.Tag)
	w.I32(f.Words)
	w.F64(f.Arrival)
	if err := EncodeAny(&w, f.Payload); err != nil {
		return buf, err
	}
	body := len(w.b) - start
	if body > MaxFrame {
		return buf, fmt.Errorf("transport: frame body %d exceeds MaxFrame %d", body, MaxFrame)
	}
	binary.LittleEndian.PutUint32(w.b[start-frameHeaderLen:], uint32(body))
	return w.b, nil
}

// DecodeFrame parses a data-frame body produced by AppendFrame (the
// bytes after the header). It never panics on corrupt input and never
// allocates beyond the input size plus decoded-value overhead.
func DecodeFrame(body []byte) (*Frame, error) {
	if len(body) > MaxFrame {
		return nil, fmt.Errorf("transport: frame body %d exceeds MaxFrame %d", len(body), MaxFrame)
	}
	r := NewReader(body)
	f := &Frame{
		Epoch:   r.U32(),
		Seq:     r.U32(),
		Src:     r.I32(),
		Dst:     r.I32(),
		Tag:     r.I32(),
		Words:   r.I32(),
		Arrival: r.F64(),
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	p, err := DecodeAny(r)
	if err != nil {
		return nil, err
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("transport: %d trailing bytes after frame payload", r.Remaining())
	}
	f.Payload = p
	return f, nil
}

// AppendControl encodes a non-data frame: kind plus an optional
// registered payload (host messages, hello/welcome bodies) or raw bytes
// (ping/pong timestamps).
func AppendControl(buf []byte, kind uint8, payload any) ([]byte, error) {
	w := Writer{b: buf}
	w.U32(0)
	w.U8(kind)
	start := len(w.b)
	if err := EncodeAny(&w, payload); err != nil {
		return buf, err
	}
	body := len(w.b) - start
	if body > MaxFrame {
		return buf, fmt.Errorf("transport: frame body %d exceeds MaxFrame %d", body, MaxFrame)
	}
	binary.LittleEndian.PutUint32(w.b[start-frameHeaderLen:], uint32(body))
	return w.b, nil
}

// ReadRaw reads one length-prefixed frame from r, returning its kind
// and body bytes. Lengths beyond MaxFrame are rejected before any
// allocation.
func ReadRaw(r io.Reader) (kind uint8, body []byte, err error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	kind = hdr[4]
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("transport: incoming frame length %d exceeds MaxFrame %d", n, MaxFrame)
	}
	body = make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	return kind, body, nil
}
