package transport

import (
	"fmt"
	"sync/atomic"
)

// MeshNode is the in-process implementation of Link: a full mesh of
// nodes inside one OS process, delivering frames by function call. It
// still pushes every payload through the codec — encode on send,
// decode on delivery — so it exercises exactly the wire semantics of
// the TCP path (no aliasing, registered types only) without sockets.
// The cross-transport golden tests lean on this equivalence.
type MeshNode struct {
	procID  int
	peers   []*MeshNode
	metrics Metrics
	host    *hostInbox
	dataFn  atomic.Pointer[func(*Frame)]
	errFn   atomic.Pointer[func(error)]
	closed  atomic.Bool
}

// NewMesh builds an n-process in-memory mesh, fully connected.
func NewMesh(n int) []*MeshNode {
	nodes := make([]*MeshNode, n)
	for i := range nodes {
		nodes[i] = &MeshNode{procID: i, peers: nodes, host: newHostInbox()}
	}
	return nodes
}

// ProcID implements Link.
func (m *MeshNode) ProcID() int { return m.procID }

// NumProcs implements Link.
func (m *MeshNode) NumProcs() int { return len(m.peers) }

// Metrics implements Link.
func (m *MeshNode) Metrics() *Metrics { return &m.metrics }

// SetDataHandler implements Link.
func (m *MeshNode) SetDataHandler(fn func(*Frame)) { m.dataFn.Store(&fn) }

// SetErrorHandler implements Link.
func (m *MeshNode) SetErrorHandler(fn func(error)) { m.errFn.Store(&fn) }

// SendData implements Link: serialize, hand the bytes to the peer,
// decode there, deliver.
func (m *MeshNode) SendData(dst int, f *Frame) error {
	if dst < 0 || dst >= len(m.peers) || dst == m.procID {
		return fmt.Errorf("transport: bad destination proc %d (self %d of %d)", dst, m.procID, len(m.peers))
	}
	if m.closed.Load() {
		return faultErr(FaultClosed, m.procID, "link closed")
	}
	buf, err := AppendFrame(nil, f)
	if err != nil {
		return err
	}
	m.metrics.FramesSent.Add(1)
	m.metrics.BytesSent.Add(int64(len(buf)))
	return m.peers[dst].deliver(buf)
}

func (m *MeshNode) deliver(buf []byte) error {
	if m.closed.Load() {
		return faultErr(FaultPeerLost, m.procID, "peer %d closed", m.procID)
	}
	m.metrics.FramesRecv.Add(1)
	m.metrics.BytesRecv.Add(int64(len(buf)))
	f, err := DecodeFrame(buf[frameHeaderLen:])
	if err != nil {
		return err
	}
	fn := m.dataFn.Load()
	if fn == nil {
		// Dropping silently would hang the sender's machine; the cluster
		// protocol's ready barrier makes this unreachable in correct use.
		return fmt.Errorf("transport: proc %d received a data frame before a handler was installed", m.procID)
	}
	(*fn)(f)
	return nil
}

// HostSend implements Link.
func (m *MeshNode) HostSend(dst int, payload any) error {
	if dst < 0 || dst >= len(m.peers) || dst == m.procID {
		return fmt.Errorf("transport: bad destination proc %d (self %d of %d)", dst, m.procID, len(m.peers))
	}
	copied, err := RoundTrip(payload)
	if err != nil {
		return err
	}
	m.metrics.FramesSent.Add(1)
	peer := m.peers[dst]
	peer.metrics.FramesRecv.Add(1)
	peer.host.put(hostMsg{src: m.procID, payload: copied})
	return nil
}

// HostRecv implements Link.
func (m *MeshNode) HostRecv() (int, any, error) {
	msg, err := m.host.get()
	if err != nil {
		return -1, nil, err
	}
	return msg.src, msg.payload, nil
}

// Close implements Link.
func (m *MeshNode) Close() error {
	if m.closed.CompareAndSwap(false, true) {
		m.host.fail(faultErr(FaultClosed, m.procID, "link closed"))
	}
	return nil
}

// Abort implements Link: the in-memory equivalent of a process crash.
// This node stops accepting traffic and every peer observes the loss —
// their error handlers fire and their host channels fail, exactly as a
// TCP peer would see a connection reset.
func (m *MeshNode) Abort(err error) {
	if !m.closed.CompareAndSwap(false, true) {
		return
	}
	if err == nil {
		err = faultErr(FaultClosed, m.procID, "link aborted")
	}
	m.host.fail(err)
	for _, p := range m.peers {
		if p != m {
			p.peerLost(m.procID)
		}
	}
}

// peerLost records that peer proc crashed: fail the host channel and
// fire the error handler, mirroring the TCP node's reaction to a read
// error. The node itself stays open for sends to surviving peers.
func (m *MeshNode) peerLost(proc int) {
	if m.closed.Load() {
		return
	}
	err := faultErr(FaultPeerLost, proc, "peer %d aborted", proc)
	m.host.fail(err)
	if fn := m.errFn.Load(); fn != nil {
		(*fn)(err)
	}
}
