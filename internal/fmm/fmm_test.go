package fmm

import (
	"math"
	"testing"

	"repro/internal/direct"
	"repro/internal/dist"
	"repro/internal/phys"
	"repro/internal/tree"
	"repro/internal/vec"
)

// byID reindexes direct potentials by particle ID.
func byID(set *dist.Set, raw []float64) []float64 {
	out := make([]float64, set.N())
	for i, q := range set.Particles {
		out[q.ID] = raw[i]
	}
	return out
}

func TestFMMMatchesDirect(t *testing.T) {
	for _, name := range []string{"plummer", "g", "s_10g_b"} {
		set := dist.MustNamed(name, 2000, 1)
		got, stats := Potentials(set.Particles, set.Domain, Config{Degree: 6, Theta: 0.5})
		want := byID(set, direct.PotentialsParallel(set.Particles, 0))
		if e := phys.FractionalError(want, got); e > 2e-4 {
			t.Fatalf("%s: FMM error %v", name, e)
		}
		if stats.M2L == 0 || stats.P2P == 0 {
			t.Fatalf("%s: degenerate stats %+v", name, stats)
		}
	}
}

func TestFMMErrorDecaysWithDegree(t *testing.T) {
	set := dist.MustNamed("plummer", 1500, 2)
	want := byID(set, direct.PotentialsParallel(set.Particles, 0))
	prev := math.Inf(1)
	for _, deg := range []int{1, 2, 4, 6} {
		got, _ := Potentials(set.Particles, set.Domain, Config{Degree: deg, Theta: 0.5})
		err := phys.FractionalError(want, got)
		if err > prev*1.2 {
			t.Fatalf("degree %d error %v did not improve on %v", deg, err, prev)
		}
		prev = err
	}
	if prev > 1e-4 {
		t.Fatalf("degree-6 error %v", prev)
	}
}

func TestFMMErrorGrowsWithTheta(t *testing.T) {
	set := dist.MustNamed("g", 1500, 3)
	want := byID(set, direct.PotentialsParallel(set.Particles, 0))
	var prev float64
	for _, theta := range []float64{0.4, 0.6, 0.8} {
		got, _ := Potentials(set.Particles, set.Domain, Config{Degree: 4, Theta: theta})
		err := phys.FractionalError(want, got)
		if err < prev*0.8 {
			t.Fatalf("theta %v error %v fell from %v", theta, err, prev)
		}
		prev = err
	}
}

func TestFMMUsesFewerInteractionsThanBH(t *testing.T) {
	// The FMM's cluster–cluster interactions amortize far-field work:
	// for equal accuracy its total kernel invocations should undercut
	// Barnes–Hut's particle–cell count at moderate n.
	set := dist.MustNamed("plummer", 8000, 4)
	want := byID(set, direct.PotentialsParallel(set.Particles, 0))

	got, stats := Potentials(set.Particles, set.Domain, Config{Degree: 4, Theta: 0.55})
	fmmErr := phys.FractionalError(want, got)

	// A Barnes–Hut run tuned to a similar error level.
	tr := tree.Build(set.Particles, tree.Options{LeafCap: 8, Domain: set.Domain})
	tr.BuildExpansions(4)
	pots, bhStats := tr.PotentialAll(set.Particles, 0.6)
	bhErr := phys.FractionalError(want, byID(set, pots))

	if fmmErr > bhErr*10 {
		t.Fatalf("FMM error %v far above BH error %v", fmmErr, bhErr)
	}
	// Compare far-field interaction counts: M2L (each a k⁴ operation but
	// counted once per cell pair) vs BH's per-particle PC interactions.
	if stats.M2L >= bhStats.PC {
		t.Fatalf("FMM M2L count %d not below BH PC count %d", stats.M2L, bhStats.PC)
	}
}

func TestFMMLinearity(t *testing.T) {
	// Doubling every mass doubles every potential.
	set := dist.MustNamed("g", 800, 5)
	got1, _ := Potentials(set.Particles, set.Domain, Config{Degree: 4})
	heavy := set.Clone()
	for i := range heavy.Particles {
		heavy.Particles[i].Mass *= 2
	}
	got2, _ := Potentials(heavy.Particles, heavy.Domain, Config{Degree: 4})
	for i := range got1 {
		if math.Abs(got2[i]-2*got1[i]) > 1e-9*math.Abs(got1[i]) {
			t.Fatalf("particle %d: %v vs 2×%v", i, got2[i], got1[i])
		}
	}
}

func TestFMMEmptyAndTiny(t *testing.T) {
	got, _ := Potentials(nil, dist.MustNamed("uniform", 10, 6).Domain, Config{})
	if len(got) != 1 { // maxID defaults to 0
		t.Fatalf("empty FMM output length %d", len(got))
	}
	set := dist.MustNamed("uniform", 2, 7)
	got, _ = Potentials(set.Particles, set.Domain, Config{Degree: 3})
	want := byID(set, direct.Potentials(set.Particles, 0))
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9*math.Abs(want[i]) {
			t.Fatalf("two-body potential %v vs %v", got[i], want[i])
		}
	}
}

func TestFMMStatsAccounting(t *testing.T) {
	set := dist.MustNamed("plummer", 3000, 8)
	ev := New(set.Particles, set.Domain, Config{Degree: 4, Theta: 0.6})
	_, stats := ev.Potentials()
	if stats.P2M != int64(set.N()) {
		t.Fatalf("P2M = %d, want %d", stats.P2M, set.N())
	}
	if stats.L2P != int64(set.N()) {
		t.Fatalf("L2P = %d, want %d", stats.L2P, set.N())
	}
	if stats.M2M == 0 || stats.L2L == 0 {
		t.Fatalf("translations missing: %+v", stats)
	}
}

func TestFMMScalesBetterThanQuadratic(t *testing.T) {
	// P2P+M2L counts should grow far slower than n² (near-linearly).
	count := func(n int) int64 {
		set := dist.MustNamed("uniform", n, 9)
		_, stats := Potentials(set.Particles, set.Domain, Config{Degree: 2, Theta: 0.6})
		return stats.P2P + stats.M2L
	}
	// A 16× particle range smooths over tree-depth quantization: the
	// octree only refines in whole levels, so small spans show lumpy
	// growth factors.
	c1 := count(1000)
	c2 := count(16000)
	ratio := float64(c2) / float64(c1)
	if ratio > 60 { // quadratic would be 256; near-linear is ~16-30
		t.Fatalf("work grew %vx for 16x particles", ratio)
	}
}

func TestFMMAccelsMatchDirect(t *testing.T) {
	set := dist.MustNamed("plummer", 1500, 10)
	acc, _ := Accels(set.Particles, set.Domain, Config{Degree: 6, Theta: 0.5})
	raw := direct.AccelsParallel(set.Particles, 0)
	want := make([]vec.V3, set.N())
	for i, q := range set.Particles {
		want[q.ID] = raw[i]
	}
	if e := phys.FractionalErrorV3(want, acc); e > 5e-4 {
		t.Fatalf("FMM force error %v", e)
	}
}

func TestFMMEvaluateBothOutputs(t *testing.T) {
	set := dist.MustNamed("g", 800, 11)
	ev := New(set.Particles, set.Domain, Config{Degree: 4, Theta: 0.5})
	pots, accs, stats := ev.Evaluate()
	if len(pots) != set.N() || len(accs) != set.N() {
		t.Fatalf("lengths %d/%d", len(pots), len(accs))
	}
	if stats.L2P != int64(set.N()) {
		t.Fatalf("L2P = %d", stats.L2P)
	}
	// The potentials from Evaluate match a fresh Potentials run.
	pots2, _ := Potentials(set.Particles, set.Domain, Config{Degree: 4, Theta: 0.5})
	for i := range pots {
		if pots[i] != pots2[i] {
			t.Fatalf("potential %d differs between Evaluate and Potentials", i)
		}
	}
}
