// Package fmm implements the fast multipole method for gravitational
// potentials — the extension the paper points to ("Parallel formulations
// of FMM and the Barnes–Hut method are similar... the techniques can be
// extended to FMM", Sections 2 and 6). Unlike Barnes–Hut, the FMM uses
// cluster–cluster interactions: multipole expansions of well-separated
// source cells are converted once into local expansions of target cells
// (M2L), locals flow down the tree (L2L) and are evaluated at the leaves
// (L2P), giving O(n) complexity for uniform distributions.
//
// The implementation uses the dual tree traversal formulation: pairs of
// cells interact when their size-to-distance ratio passes an acceptance
// criterion, otherwise the larger cell is split — an adaptive,
// list-free way to build the interaction sets.
package fmm

import (
	"repro/internal/dist"
	"repro/internal/phys"
	"repro/internal/tree"
	"repro/internal/vec"
)

// Config parameterizes an FMM evaluation.
type Config struct {
	// Degree of the multipole/local expansions (default 4).
	Degree int
	// Theta is the cell–cell acceptance parameter: cells interact via
	// M2L when (r_a + r_b) / distance < Theta (default 0.6).
	Theta float64
	// LeafCap is the octree leaf capacity (default 16; larger leaves
	// favour the FMM's P2P kernel).
	LeafCap int
}

func (c Config) withDefaults() Config {
	if c.Degree == 0 {
		c.Degree = 4
	}
	if c.Theta == 0 {
		c.Theta = 0.6
	}
	if c.LeafCap == 0 {
		c.LeafCap = 16
	}
	return c
}

// Stats counts the work of one evaluation.
type Stats struct {
	M2L int64 // cell–cell multipole-to-local conversions
	P2P int64 // particle–particle interactions
	P2M int64 // particle-to-multipole accumulations
	M2M int64 // multipole translations
	L2L int64 // local translations
	L2P int64 // local evaluations
}

// cell augments a tree node with FMM expansions about the box centre.
type cell struct {
	n      *tree.Node
	m      *phys.Expansion
	l      *phys.Local
	kids   []*cell
	radius float64 // half-diagonal of the box
}

// Evaluator holds the tree and expansions for a particle set.
type Evaluator struct {
	cfg   Config
	tr    *tree.Tree
	root  *cell
	stats Stats
}

// New builds the octree and runs the upward pass (P2M at the leaves, M2M
// at internal cells).
func New(particles []dist.Particle, domain vec.Box, cfg Config) *Evaluator {
	cfg = cfg.withDefaults()
	e := &Evaluator{cfg: cfg}
	e.tr = tree.Build(particles, tree.Options{LeafCap: cfg.LeafCap, Domain: domain})
	e.root = e.upward(e.tr.Root)
	return e
}

// upward builds the cell wrapper and its multipole expansion.
func (e *Evaluator) upward(n *tree.Node) *cell {
	if n == nil || n.Count == 0 {
		return nil
	}
	c := &cell{n: n, radius: n.Box.Size().Norm() / 2}
	c.m = phys.NewExpansion(e.cfg.Degree, n.Box.Center())
	c.l = phys.NewLocal(e.cfg.Degree, n.Box.Center())
	if n.IsLeaf() {
		for i := range n.Particles {
			c.m.AddParticle(n.Particles[i].Mass, n.Particles[i].Pos)
		}
		e.stats.P2M += int64(len(n.Particles))
		return c
	}
	for _, ch := range n.Children {
		if k := e.upward(ch); k != nil {
			c.kids = append(c.kids, k)
			c.m.Add(k.m.TranslateTo(c.m.Center))
			e.stats.M2M++
		}
	}
	return c
}

// accepted reports whether two cells are well separated under the
// cell–cell criterion.
func (e *Evaluator) accepted(a, b *cell) bool {
	d := a.m.Center.Dist(b.m.Center)
	if d == 0 {
		return false
	}
	return (a.radius+b.radius)/d < e.cfg.Theta
}

// Potentials evaluates the potential at every particle (indexed by
// particle ID over the maximum ID present) and returns the work stats.
// An Evaluator supports exactly one evaluation (Potentials or Evaluate).
func (e *Evaluator) Potentials() ([]float64, Stats) {
	pots, _, stats := e.evaluate(false)
	return pots, stats
}

// Evaluate computes both potentials and accelerations (a = -∇Φ, from the
// analytic gradients of the expansions) in one pass, indexed by particle
// ID. An Evaluator supports exactly one evaluation.
func (e *Evaluator) Evaluate() ([]float64, []vec.V3, Stats) {
	return e.evaluate(true)
}

func (e *Evaluator) evaluate(withAccel bool) ([]float64, []vec.V3, Stats) {
	maxID := 0
	e.tr.WalkLeaves(func(n *tree.Node) bool {
		for i := range n.Particles {
			if n.Particles[i].ID > maxID {
				maxID = n.Particles[i].ID
			}
		}
		return true
	})
	out := make([]float64, maxID+1)
	var acc []vec.V3
	if withAccel {
		acc = make([]vec.V3, maxID+1)
	}
	if e.root == nil {
		return out, acc, e.stats
	}
	e.interact(e.root, e.root, out, acc)
	e.downward(e.root, out, acc)
	return out, acc, e.stats
}

// interact is the dual tree traversal: a receives, b sources.
func (e *Evaluator) interact(a, b *cell, out []float64, acc []vec.V3) {
	if a == nil || b == nil {
		return
	}
	if a != b && e.accepted(a, b) {
		a.l.AddMultipole(b.m)
		e.stats.M2L++
		return
	}
	aLeaf := a.n.IsLeaf()
	bLeaf := b.n.IsLeaf()
	if aLeaf && bLeaf {
		e.p2p(a.n, b.n, out, acc)
		return
	}
	// Split the larger cell (or the only splittable one).
	if bLeaf || (!aLeaf && a.radius >= b.radius) {
		for _, k := range a.kids {
			e.interact(k, b, out, acc)
		}
		return
	}
	for _, k := range b.kids {
		e.interact(a, k, out, acc)
	}
}

// p2p accumulates near-field particle–particle potentials (and forces)
// of source leaf b onto target leaf a.
func (e *Evaluator) p2p(a, b *tree.Node, out []float64, acc []vec.V3) {
	for i := range a.Particles {
		ti := &a.Particles[i]
		var phi float64
		var f vec.V3
		for j := range b.Particles {
			sj := &b.Particles[j]
			if sj.ID == ti.ID {
				continue
			}
			phi += phys.Potential(ti.Pos, sj.Pos, sj.Mass, 0)
			if acc != nil {
				f = f.Add(phys.Accel(ti.Pos, sj.Pos, sj.Mass, 0))
			}
			e.stats.P2P++
		}
		out[ti.ID] += phi
		if acc != nil {
			acc[ti.ID] = acc[ti.ID].Add(f)
		}
	}
}

// downward pushes local expansions to the leaves and evaluates them.
func (e *Evaluator) downward(c *cell, out []float64, acc []vec.V3) {
	if c == nil {
		return
	}
	if c.n.IsLeaf() {
		for i := range c.n.Particles {
			out[c.n.Particles[i].ID] += c.l.EvalPotential(c.n.Particles[i].Pos)
			if acc != nil {
				acc[c.n.Particles[i].ID] = acc[c.n.Particles[i].ID].Add(c.l.EvalAccel(c.n.Particles[i].Pos))
			}
		}
		e.stats.L2P += int64(len(c.n.Particles))
		return
	}
	for _, k := range c.kids {
		k.l.Add(c.l.TranslateTo(k.l.Center))
		e.stats.L2L++
		e.downward(k, out, acc)
	}
}

// Potentials is a convenience one-shot evaluation.
func Potentials(particles []dist.Particle, domain vec.Box, cfg Config) ([]float64, Stats) {
	return New(particles, domain, cfg).Potentials()
}

// Accels is a convenience one-shot force evaluation (a = -∇Φ).
func Accels(particles []dist.Particle, domain vec.Box, cfg Config) ([]vec.V3, Stats) {
	_, acc, stats := New(particles, domain, cfg).Evaluate()
	return acc, stats
}
