package bem

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/vec"
)

func TestGreenBasics(t *testing.T) {
	x := vec.V3{X: 1}
	y := vec.V3{}
	// k = 0 reduces to the Laplace kernel 1/r.
	if g := Green(x, y, 0); g != 1 {
		t.Fatalf("static Green = %v", g)
	}
	// |G| = 1/r regardless of k.
	g := Green(vec.V3{X: 2}, y, 3.7)
	if math.Abs(cmplx.Abs(g)-0.5) > 1e-15 {
		t.Fatalf("|G| = %v", cmplx.Abs(g))
	}
	// Phase advances as k·r.
	if ph := cmplx.Phase(Green(vec.V3{X: 1}, y, 1.25)); math.Abs(ph-1.25) > 1e-12 {
		t.Fatalf("phase = %v", ph)
	}
	if Green(x, x, 1) != 0 {
		t.Fatal("self Green not zero")
	}
}

func TestDirectTwoSources(t *testing.T) {
	src := []Source{
		{ID: 0, Pos: vec.V3{}, Strength: 1},
		{ID: 1, Pos: vec.V3{X: 2}, Strength: 1i},
	}
	const k = 0.5
	u := Direct(src, k)
	want0 := 1i * Green(src[0].Pos, src[1].Pos, k)
	want1 := Green(src[1].Pos, src[0].Pos, k)
	if cmplx.Abs(u[0]-want0) > 1e-15 || cmplx.Abs(u[1]-want1) > 1e-15 {
		t.Fatalf("u = %v", u)
	}
}

func TestTreecodeMatchesDirect(t *testing.T) {
	// Low-frequency scattering off a sphere: ka = 1.
	const n, radius, k = 1500, 1.0, 1.0
	src := SpherePanels(n, radius, k)
	exact := Direct(src, k)
	ev := NewEvaluator(src, k, Config{Alpha: 0.4, Kappa: 0.4})
	strengths := make([]complex128, n)
	for _, s := range src {
		strengths[s.ID] = s.Strength
	}
	got, st := ev.MatVec(strengths)
	if e := RelError(got, exact); e > 5e-3 {
		t.Fatalf("treecode error %v", e)
	}
	if st.Accepted == 0 {
		t.Fatal("no cluster interactions used")
	}
	if st.Direct+st.Accepted >= int64(n)*int64(n-1) {
		t.Fatal("treecode did not save work")
	}
}

func TestTreecodeErrorShrinksWithAlpha(t *testing.T) {
	const n, k = 1000, 1.0
	src := SpherePanels(n, 1, k)
	exact := Direct(src, k)
	strengths := make([]complex128, n)
	for _, s := range src {
		strengths[s.ID] = s.Strength
	}
	var prev = math.Inf(1)
	for _, alpha := range []float64{0.8, 0.5, 0.3} {
		ev := NewEvaluator(src, k, Config{Alpha: alpha, Kappa: 0.5})
		got, _ := ev.MatVec(strengths)
		err := RelError(got, exact)
		if err > prev*1.3 {
			t.Fatalf("alpha %v error %v did not improve on %v", alpha, err, prev)
		}
		prev = err
	}
}

func TestKappaGuardsOscillation(t *testing.T) {
	// At higher frequency the phase criterion must keep accuracy: with a
	// generous alpha, shrinking kappa should reduce the error.
	const n, k = 1200, 6.0 // ka = 6: several wavelengths across the sphere
	src := SpherePanels(n, 1, k)
	exact := Direct(src, k)
	strengths := make([]complex128, n)
	for _, s := range src {
		strengths[s.ID] = s.Strength
	}
	loose, _ := NewEvaluator(src, k, Config{Alpha: 0.7, Kappa: 10}).MatVec(strengths)
	tight, _ := NewEvaluator(src, k, Config{Alpha: 0.7, Kappa: 0.3}).MatVec(strengths)
	eLoose := RelError(loose, exact)
	eTight := RelError(tight, exact)
	if eTight >= eLoose {
		t.Fatalf("kappa did not help: loose %v, tight %v", eLoose, eTight)
	}
	if eTight > 0.05 {
		t.Fatalf("tight-kappa error still %v", eTight)
	}
}

func TestMatVecLinearity(t *testing.T) {
	const n, k = 500, 1.0
	src := SpherePanels(n, 1, k)
	ev := NewEvaluator(src, k, Config{})
	x1 := make([]complex128, n)
	x2 := make([]complex128, n)
	for i := range x1 {
		x1[i] = complex(float64(i%7), float64(i%3))
		x2[i] = complex(1, -float64(i%5))
	}
	y1, _ := ev.MatVec(x1)
	y2, _ := ev.MatVec(x2)
	sum := make([]complex128, n)
	for i := range sum {
		sum[i] = x1[i] + x2[i]
	}
	ySum, _ := ev.MatVec(sum)
	for i := range ySum {
		want := y1[i] + y2[i]
		// The strength-weighted centroids shift with the input, so
		// linearity holds only to the approximation tolerance.
		if cmplx.Abs(ySum[i]-want) > 2e-2*(1+cmplx.Abs(want)) {
			t.Fatalf("entry %d: %v vs %v", i, ySum[i], want)
		}
	}
}

func TestSpherePanels(t *testing.T) {
	src := SpherePanels(500, 2.0, 1.5)
	if len(src) != 500 {
		t.Fatalf("panels = %d", len(src))
	}
	for i, s := range src {
		if math.Abs(s.Pos.Norm()-2.0) > 1e-12 {
			t.Fatalf("panel %d radius %v", i, s.Pos.Norm())
		}
		if math.Abs(cmplx.Abs(s.Strength)-1) > 1e-12 {
			t.Fatalf("panel %d strength %v", i, s.Strength)
		}
		if s.ID != i {
			t.Fatalf("panel %d id %d", i, s.ID)
		}
	}
}

func TestRelError(t *testing.T) {
	a := []complex128{3, 4i}
	if RelError(a, a) != 0 {
		t.Fatal("identical error nonzero")
	}
	if e := RelError([]complex128{0}, []complex128{0}); e != 0 {
		t.Fatal("zero/zero")
	}
	if e := RelError([]complex128{1}, []complex128{0}); !math.IsInf(e, 1) {
		t.Fatal("zero denominator")
	}
}
