package bem

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// denseApply builds a MatVecFunc from an explicit matrix.
func denseApply(a [][]complex128) MatVecFunc {
	return func(x []complex128) []complex128 {
		n := len(a)
		y := make([]complex128, n)
		for i := 0; i < n; i++ {
			var s complex128
			for j := 0; j < n; j++ {
				s += a[i][j] * x[j]
			}
			y[i] = s
		}
		return y
	}
}

// randomSystem builds a diagonally dominant complex system with a known
// solution.
func randomSystem(rng *rand.Rand, n int) (a [][]complex128, x, b []complex128) {
	a = make([][]complex128, n)
	x = make([]complex128, n)
	for i := range a {
		a[i] = make([]complex128, n)
		for j := range a[i] {
			a[i][j] = complex(rng.NormFloat64(), rng.NormFloat64()) * 0.1
		}
		a[i][i] += complex(float64(n), 0) // dominance
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	b = denseApply(a)(x)
	return
}

func TestGMRESSolvesDenseSystem(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a, want, b := randomSystem(rng, 60)
	res, err := GMRES(denseApply(a), b, nil, GMRESOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: residual %v after %d iters", res.Residual, res.Iterations)
	}
	for i := range want {
		if cmplx.Abs(res.X[i]-want[i]) > 1e-7*(1+cmplx.Abs(want[i])) {
			t.Fatalf("x[%d] = %v, want %v", i, res.X[i], want[i])
		}
	}
}

func TestGMRESRestartPath(t *testing.T) {
	// Restart smaller than the natural Krylov dimension forces the outer
	// loop to cycle.
	rng := rand.New(rand.NewSource(2))
	a, want, b := randomSystem(rng, 80)
	res, err := GMRES(denseApply(a), b, nil, GMRESOptions{Tol: 1e-9, Restart: 5, MaxIters: 400})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("restarted GMRES did not converge: %v", res.Residual)
	}
	var worst float64
	for i := range want {
		worst = math.Max(worst, cmplx.Abs(res.X[i]-want[i]))
	}
	if worst > 1e-5 {
		t.Fatalf("solution error %v", worst)
	}
}

func TestGMRESInitialGuess(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, want, b := randomSystem(rng, 40)
	// Starting at the answer converges immediately.
	res, err := GMRES(denseApply(a), b, want, GMRESOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iterations > 1 {
		t.Fatalf("warm start took %d iterations", res.Iterations)
	}
	if _, err := GMRES(denseApply(a), b, make([]complex128, 7), GMRESOptions{}); err == nil {
		t.Fatal("wrong-length guess accepted")
	}
}

func TestGMRESEdgeCases(t *testing.T) {
	res, err := GMRES(nil, nil, nil, GMRESOptions{})
	if err != nil || !res.Converged {
		t.Fatal("empty system should trivially converge")
	}
	// Zero right-hand side → zero solution.
	res, err = GMRES(denseApply([][]complex128{{1}}), []complex128{0}, nil, GMRESOptions{})
	if err != nil || !res.Converged || res.X[0] != 0 {
		t.Fatalf("zero rhs: %+v, %v", res, err)
	}
}

func TestGMRESIdentity(t *testing.T) {
	b := []complex128{1 + 2i, 3, -4i}
	res, err := GMRES(func(x []complex128) []complex128 {
		y := make([]complex128, len(x))
		copy(y, x)
		return y
	}, b, nil, GMRESOptions{})
	if err != nil || !res.Converged {
		t.Fatal("identity solve failed")
	}
	for i := range b {
		if cmplx.Abs(res.X[i]-b[i]) > 1e-12 {
			t.Fatalf("x[%d] = %v", i, res.X[i])
		}
	}
}

func TestSolveScatteringConverges(t *testing.T) {
	// A regularized single-layer system on a small sphere: the solve must
	// converge and the recovered strengths must reproduce the right-hand
	// side through an exact (direct) product.
	const n, k = 400, 1.0
	src := SpherePanels(n, 1.0, k)
	rhs := make([]complex128, n)
	for _, s := range src {
		rhs[s.ID] = -s.Strength // -u_inc at the collocation points
	}
	const diag = 25.0
	res, err := SolveScattering(src, k, diag, rhs, Config{Alpha: 0.3, Kappa: 0.3}, GMRESOptions{Tol: 1e-8, MaxIters: 300})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("scattering solve did not converge: residual %v", res.Residual)
	}
	// Verify against the exact operator: (diag·I + G) x ≈ rhs. The
	// treecode operator differs from the exact one by its approximation
	// error, so the verification tolerance is the treecode tolerance, not
	// the solver tolerance.
	withStrengths := make([]Source, n)
	copy(withStrengths, src)
	for i := range withStrengths {
		withStrengths[i].Strength = res.X[i]
	}
	exact := Direct(withStrengths, k)
	var num, den float64
	for i := range rhs {
		got := exact[i] + complex(diag, 0)*res.X[i]
		num += cmplx.Abs(got-rhs[i]) * cmplx.Abs(got-rhs[i])
		den += cmplx.Abs(rhs[i]) * cmplx.Abs(rhs[i])
	}
	if math.Sqrt(num/den) > 2e-2 {
		t.Fatalf("recovered strengths violate the exact system by %v", math.Sqrt(num/den))
	}
}
