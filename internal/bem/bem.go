// Package bem demonstrates the paper's closing claim (Sections 2 and 6):
// the hierarchical techniques apply beyond gravity to boundary element
// methods, where "boundary elements correspond to particles and the force
// model is defined by the Green's function of the integral equation" —
// for electromagnetic scattering, the Helmholtz kernel e^{ikr}/r of the
// field integral equation.
//
// The package provides point sources with complex strengths, the exact
// O(n²) summation, and a Barnes–Hut-style treecode evaluation of the
// single-layer potential. Because the kernel oscillates, the acceptance
// criterion is two-fold: the geometric size/distance test of the
// Barnes–Hut method plus a low-frequency condition k·size < κ bounding
// the phase variation across the cluster. Evaluating the kernel sum is
// exactly the matrix–vector product a BEM iterative solver performs each
// step (the companion paper [17] parallelizes precisely this product).
package bem

import (
	"math"
	"math/cmplx"

	"repro/internal/dist"
	"repro/internal/tree"
	"repro/internal/vec"
)

// Source is a boundary element: a collocation point with a complex
// strength (e.g. an induced surface current amplitude).
type Source struct {
	ID       int
	Pos      vec.V3
	Strength complex128
}

// Green evaluates the Helmholtz free-space Green's function e^{ikr}/r
// between x and y (unnormalized; the 1/4π factor is conventional and
// omitted consistently). Returns 0 at coincident points.
func Green(x, y vec.V3, k float64) complex128 {
	r := x.Dist(y)
	if r == 0 {
		return 0
	}
	return cmplx.Exp(complex(0, k*r)) / complex(r, 0)
}

// Direct computes the exact single-layer potential at every source point
// due to all other sources: u_i = Σ_{j≠i} q_j e^{ikr_ij}/r_ij — one dense
// matrix–vector product.
func Direct(src []Source, k float64) []complex128 {
	out := make([]complex128, len(src))
	for i := range src {
		var u complex128
		for j := range src {
			if i == j {
				continue
			}
			u += src[j].Strength * Green(src[i].Pos, src[j].Pos, k)
		}
		out[i] = u
	}
	return out
}

// Config parameterizes the treecode evaluation.
type Config struct {
	// Alpha is the Barnes–Hut size/distance acceptance parameter
	// (default 0.5).
	Alpha float64
	// Kappa bounds the phase variation k·size of accepted clusters
	// (default 0.5 radians); clusters whose extent spans a substantial
	// fraction of a wavelength are always opened.
	Kappa float64
	// LeafCap is the octree leaf capacity (default 8).
	LeafCap int
}

func (c Config) withDefaults() Config {
	if c.Alpha == 0 {
		c.Alpha = 0.5
	}
	if c.Kappa == 0 {
		c.Kappa = 0.5
	}
	if c.LeafCap == 0 {
		c.LeafCap = 8
	}
	return c
}

// Stats counts treecode work.
type Stats struct {
	Accepted int64 // cluster interactions
	Direct   int64 // point–point interactions
}

// Evaluator is a treecode for repeated Helmholtz matrix–vector products
// over a fixed geometry: the tree is built once, strengths may change
// between products (as they do across the iterations of a BEM solver).
type Evaluator struct {
	cfg Config
	k   float64
	tr  *tree.Tree
	src []Source
}

// NewEvaluator builds the spatial tree over the source points.
func NewEvaluator(src []Source, k float64, cfg Config) *Evaluator {
	cfg = cfg.withDefaults()
	// Reuse the gravity octree for geometry: encode each source as a
	// particle whose ID indexes back into src (mass is unused: strengths
	// are aggregated per product because they change between products).
	ps := make([]dist.Particle, len(src))
	pts := make([]vec.V3, len(src))
	for i, s := range src {
		ps[i] = dist.Particle{ID: s.ID, Mass: 1, Pos: s.Pos}
		pts[i] = s.Pos
	}
	domain := vec.BoundingBox(pts).Expand(1e-9)
	e := &Evaluator{cfg: cfg, k: k, src: src}
	e.tr = tree.Build(ps, tree.Options{LeafCap: cfg.LeafCap, Domain: domain})
	return e
}

// cluster aggregates for one node under the current strengths: total
// strength and the strength-weighted centroid ("centre of charge").
type cluster struct {
	q complex128
	c vec.V3
}

// MatVec computes the treecode approximation of the matrix–vector
// product for the given strengths (indexed by source ID). The result is
// indexed by source ID too.
func (e *Evaluator) MatVec(strengths []complex128) ([]complex128, Stats) {
	// Upward pass: aggregate strengths per node. Oscillatory kernels have
	// no useful single "centre" for the phase unless the cluster is small
	// relative to the wavelength; the κ criterion enforces that.
	agg := make(map[*tree.Node]cluster)
	var up func(n *tree.Node) cluster
	up = func(n *tree.Node) cluster {
		var cl cluster
		if n == nil || n.Count == 0 {
			return cl
		}
		if n.IsLeaf() {
			var wsum vec.V3
			var wnorm float64
			for i := range n.Particles {
				q := strengths[n.Particles[i].ID]
				cl.q += q
				w := cmplx.Abs(q)
				wsum = wsum.Add(n.Particles[i].Pos.Scale(w))
				wnorm += w
			}
			if wnorm > 0 {
				cl.c = wsum.Scale(1 / wnorm)
			} else {
				cl.c = n.Box.Center()
			}
			agg[n] = cl
			return cl
		}
		var wsum vec.V3
		var wnorm float64
		for _, ch := range n.Children {
			if ch == nil || ch.Count == 0 {
				continue
			}
			sub := up(ch)
			cl.q += sub.q
			w := cmplx.Abs(sub.q)
			wsum = wsum.Add(sub.c.Scale(w))
			wnorm += w
		}
		if wnorm > 0 {
			cl.c = wsum.Scale(1 / wnorm)
		} else {
			cl.c = n.Box.Center()
		}
		agg[n] = cl
		return cl
	}
	up(e.tr.Root)

	out := make([]complex128, len(strengths))
	var st Stats
	var walk func(n *tree.Node, at vec.V3, self int) complex128
	walk = func(n *tree.Node, at vec.V3, self int) complex128 {
		if n == nil || n.Count == 0 {
			return 0
		}
		if n.IsLeaf() {
			var u complex128
			for i := range n.Particles {
				id := n.Particles[i].ID
				if id == self {
					continue
				}
				u += strengths[id] * Green(at, n.Particles[i].Pos, e.k)
				st.Direct++
			}
			return u
		}
		cl := agg[n]
		size := n.Box.LongestSide()
		d := at.Dist(cl.c)
		if d > 0 && size/d < e.cfg.Alpha && e.k*size < e.cfg.Kappa {
			st.Accepted++
			return cl.q * Green(at, cl.c, e.k)
		}
		var u complex128
		for _, ch := range n.Children {
			u += walk(ch, at, self)
		}
		return u
	}
	for _, s := range e.src {
		out[s.ID] = walk(e.tr.Root, s.Pos, s.ID)
	}
	return out, st
}

// SpherePanels places n roughly uniform collocation points on a sphere of
// the given radius (Fibonacci lattice) with plane-wave-induced strengths
// e^{ik·z} — the standard first-kind excitation of a scattering problem.
func SpherePanels(n int, radius, k float64) []Source {
	src := make([]Source, n)
	golden := math.Pi * (3 - math.Sqrt(5))
	for i := 0; i < n; i++ {
		z := 1 - 2*(float64(i)+0.5)/float64(n)
		r := math.Sqrt(1 - z*z)
		phi := golden * float64(i)
		pos := vec.V3{X: radius * r * math.Cos(phi), Y: radius * r * math.Sin(phi), Z: radius * z}
		src[i] = Source{ID: i, Pos: pos, Strength: cmplx.Exp(complex(0, k*pos.Z))}
	}
	return src
}

// RelError returns ‖a-b‖₂/‖b‖₂ for complex vectors.
func RelError(approx, exact []complex128) float64 {
	var num, den float64
	for i := range exact {
		num += cmplx.Abs(approx[i]-exact[i]) * cmplx.Abs(approx[i]-exact[i])
		den += cmplx.Abs(exact[i]) * cmplx.Abs(exact[i])
	}
	if den == 0 {
		if num == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Sqrt(num / den)
}
