package bem

import (
	"fmt"
	"math"
	"math/cmplx"
)

// GMRES solves the dense complex linear system A·x = b given only a
// matrix–vector product — the setting where the hierarchical matvec pays
// off: each iteration of the iterative solver is one treecode product
// instead of an O(n²) dense product (Section 6's boundary-element use
// case, and the subject of the companion matrix–vector paper [17]).
//
// The implementation is standard restarted GMRES(m) with modified
// Gram–Schmidt and Givens rotations on the Hessenberg matrix.

// MatVecFunc applies the system operator to a vector.
type MatVecFunc func(x []complex128) []complex128

// GMRESOptions configure the solver.
type GMRESOptions struct {
	// Tol is the target relative residual ‖b - Ax‖/‖b‖ (default 1e-8).
	Tol float64
	// Restart is the Krylov subspace size m (default 30).
	Restart int
	// MaxIters bounds the total matvec count (default 200).
	MaxIters int
}

func (o GMRESOptions) withDefaults() GMRESOptions {
	if o.Tol == 0 {
		o.Tol = 1e-8
	}
	if o.Restart == 0 {
		o.Restart = 30
	}
	if o.MaxIters == 0 {
		o.MaxIters = 200
	}
	return o
}

// GMRESResult reports the solve.
type GMRESResult struct {
	X          []complex128
	Residual   float64 // final relative residual
	Iterations int     // matvec count
	Converged  bool
}

func dotc(a, b []complex128) complex128 {
	var s complex128
	for i := range a {
		s += cmplx.Conj(a[i]) * b[i]
	}
	return s
}

func nrm2(a []complex128) float64 {
	var s float64
	for i := range a {
		s += real(a[i])*real(a[i]) + imag(a[i])*imag(a[i])
	}
	return math.Sqrt(s)
}

// GMRES solves A·x = b. x0 may be nil (zero initial guess).
func GMRES(apply MatVecFunc, b []complex128, x0 []complex128, opt GMRESOptions) (*GMRESResult, error) {
	opt = opt.withDefaults()
	n := len(b)
	if n == 0 {
		return &GMRESResult{Converged: true}, nil
	}
	x := make([]complex128, n)
	if x0 != nil {
		if len(x0) != n {
			return nil, fmt.Errorf("bem: initial guess length %d, want %d", len(x0), n)
		}
		copy(x, x0)
	}
	bnorm := nrm2(b)
	if bnorm == 0 {
		return &GMRESResult{X: x, Converged: true}, nil
	}

	iters := 0
	m := opt.Restart
	for iters < opt.MaxIters {
		// r = b - A x.
		ax := apply(x)
		iters++
		r := make([]complex128, n)
		for i := range r {
			r[i] = b[i] - ax[i]
		}
		beta := nrm2(r)
		if beta/bnorm < opt.Tol {
			return &GMRESResult{X: x, Residual: beta / bnorm, Iterations: iters, Converged: true}, nil
		}

		// Arnoldi with modified Gram–Schmidt.
		V := make([][]complex128, m+1)
		H := make([][]complex128, m+1) // H[i][j], i row ≤ j+1
		for i := range H {
			H[i] = make([]complex128, m)
		}
		V[0] = make([]complex128, n)
		for i := range r {
			V[0][i] = r[i] / complex(beta, 0)
		}
		// Givens rotations.
		cs := make([]complex128, m)
		sn := make([]complex128, m)
		g := make([]complex128, m+1)
		g[0] = complex(beta, 0)

		k := 0
		for ; k < m && iters < opt.MaxIters; k++ {
			w := apply(V[k])
			iters++
			for i := 0; i <= k; i++ {
				H[i][k] = dotc(V[i], w)
				for j := range w {
					w[j] -= H[i][k] * V[i][j]
				}
			}
			hk1 := nrm2(w)
			H[k+1][k] = complex(hk1, 0)
			if hk1 > 1e-300 {
				V[k+1] = make([]complex128, n)
				for j := range w {
					V[k+1][j] = w[j] / complex(hk1, 0)
				}
			}
			// Apply previous rotations to the new column.
			for i := 0; i < k; i++ {
				t := cs[i]*H[i][k] + sn[i]*H[i+1][k]
				H[i+1][k] = -cmplx.Conj(sn[i])*H[i][k] + cmplx.Conj(cs[i])*H[i+1][k]
				H[i][k] = t
			}
			// New rotation annihilating H[k+1][k].
			denom := math.Hypot(cmplx.Abs(H[k][k]), cmplx.Abs(H[k+1][k]))
			if denom == 0 {
				cs[k], sn[k] = 1, 0
			} else {
				cs[k] = complex(cmplx.Abs(H[k][k])/denom, 0)
				if cmplx.Abs(H[k][k]) > 0 {
					ph := H[k][k] / complex(cmplx.Abs(H[k][k]), 0)
					sn[k] = ph * cmplx.Conj(H[k+1][k]) / complex(denom, 0)
				} else {
					sn[k] = complex(1, 0)
				}
			}
			t := cs[k]*H[k][k] + sn[k]*H[k+1][k]
			H[k][k] = t
			H[k+1][k] = 0
			g[k+1] = -cmplx.Conj(sn[k]) * g[k]
			g[k] = cs[k] * g[k]
			if cmplx.Abs(g[k+1])/bnorm < opt.Tol {
				k++
				break
			}
			if V[k+1] == nil {
				k++
				break // lucky breakdown: exact solution in the subspace
			}
		}
		// Solve the triangular system H y = g.
		y := make([]complex128, k)
		for i := k - 1; i >= 0; i-- {
			s := g[i]
			for j := i + 1; j < k; j++ {
				s -= H[i][j] * y[j]
			}
			if H[i][i] == 0 {
				return nil, fmt.Errorf("bem: GMRES breakdown (singular Hessenberg at %d)", i)
			}
			y[i] = s / H[i][i]
		}
		for i := 0; i < k; i++ {
			for j := range x {
				x[j] += y[i] * V[i][j]
			}
		}
		// Converged inside the cycle?
		res := cmplx.Abs(g[k]) / bnorm
		if res < opt.Tol {
			return &GMRESResult{X: x, Residual: res, Iterations: iters, Converged: true}, nil
		}
	}
	// Final residual.
	ax := apply(x)
	r := 0.0
	for i := range b {
		d := b[i] - ax[i]
		r += real(d)*real(d) + imag(d)*imag(d)
	}
	rr := math.Sqrt(r) / bnorm
	return &GMRESResult{X: x, Residual: rr, Iterations: iters, Converged: rr < opt.Tol}, nil
}

// SolveScattering solves the first-kind single-layer system
// Σ_j G(x_i, x_j) q_j = -u_inc(x_i) for the induced strengths q, using
// the treecode matvec with a diagonal (self-term) regularization d·I:
// (d·I + G) q = rhs. The diagonal stands in for the singular self-patch
// integral a real BEM discretization would carry; it also keeps the
// system well conditioned.
func SolveScattering(src []Source, k, diag float64, rhs []complex128, cfg Config, opt GMRESOptions) (*GMRESResult, error) {
	ev := NewEvaluator(src, k, cfg)
	apply := func(x []complex128) []complex128 {
		y, _ := ev.MatVec(x)
		for i := range y {
			y[i] += complex(diag, 0) * x[i]
		}
		return y
	}
	return GMRES(apply, rhs, nil, opt)
}
