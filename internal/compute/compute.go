// Package compute is the host-parallelism layer: a worker-pool parallel
// for-loop used by every hot path that is safe to run multi-core (direct
// summation, serial-tree traversals, octree construction).
//
// Host parallelism is strictly separate from the *simulated* parallelism
// of package msg: goroutines here make the program faster on the real
// machine but must never change the simulated metrics (SimTime, Stats,
// Flops, CommWords). Callers therefore shard any accumulators per worker
// and merge them in worker order, so results are bit-identical to a
// sequential execution regardless of GOMAXPROCS (see DESIGN.md,
// "Two clocks").
package compute

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// maxWorkers overrides the worker count when positive (set via
// SetMaxWorkers; used by tests to force sequential execution).
var maxWorkers atomic.Int64

// SetMaxWorkers caps the number of workers used by this package (0
// restores the GOMAXPROCS default) and returns the previous cap. It is
// intended for tests and benchmarks that compare parallel against
// sequential execution.
func SetMaxWorkers(n int) int {
	return int(maxWorkers.Swap(int64(n)))
}

// Workers returns the number of workers a loop of n iterations will use:
// min(GOMAXPROCS, n), further capped by SetMaxWorkers.
func Workers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if cap := int(maxWorkers.Load()); cap > 0 && w > cap {
		w = cap
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ParallelFor runs body(i) for i in [0, n) across Workers(n) goroutines
// in contiguous blocks. body must not assume any cross-iteration order.
func ParallelFor(n int, body func(i int)) {
	ParallelBlocks(n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ParallelBlocks partitions [0, n) into Workers(n) contiguous blocks and
// runs body(worker, lo, hi) for each, one goroutine per worker. Worker
// ids are dense in [0, Workers(n)), so callers can keep per-worker
// accumulators and merge them deterministically (in worker order) after
// the call returns. With one worker the body runs on the calling
// goroutine, so a sequential execution is exactly the w=0 block.
func ParallelBlocks(n int, body func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := Workers(n)
	if workers == 1 {
		body(0, 0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			body(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}
