package compute

import (
	"sync/atomic"
	"testing"
)

func TestParallelForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 10007} {
		var sum atomic.Int64
		seen := make([]atomic.Bool, n)
		ParallelFor(n, func(i int) {
			if seen[i].Swap(true) {
				t.Errorf("n=%d: index %d visited twice", n, i)
			}
			sum.Add(int64(i))
		})
		want := int64(n) * int64(n-1) / 2
		if sum.Load() != want {
			t.Fatalf("n=%d: sum = %d, want %d", n, sum.Load(), want)
		}
	}
}

func TestParallelBlocksDenseWorkerIDs(t *testing.T) {
	const n = 1000
	w := Workers(n)
	counts := make([]atomic.Int64, w)
	ParallelBlocks(n, func(worker, lo, hi int) {
		if worker < 0 || worker >= w {
			t.Errorf("worker id %d out of range [0,%d)", worker, w)
			return
		}
		counts[worker].Add(int64(hi - lo))
	})
	var total int64
	for i := range counts {
		total += counts[i].Load()
	}
	if total != n {
		t.Fatalf("covered %d of %d iterations", total, n)
	}
}

func TestSetMaxWorkersForcesSequential(t *testing.T) {
	prev := SetMaxWorkers(1)
	defer SetMaxWorkers(prev)
	if w := Workers(1000); w != 1 {
		t.Fatalf("Workers = %d with cap 1", w)
	}
	// With one worker the body must run on the calling goroutine in order.
	var order []int
	ParallelFor(5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential order violated: %v", order)
		}
	}
}

func TestParallelBlocksEmpty(t *testing.T) {
	called := false
	ParallelBlocks(0, func(_, _, _ int) { called = true })
	if called {
		t.Fatal("body called for n=0")
	}
}
