package tree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/direct"
	"repro/internal/dist"
	"repro/internal/keys"
	"repro/internal/phys"
	"repro/internal/vec"
)

func uniformSet(n int, seed int64) *dist.Set {
	return dist.Uniform(n, vec.NewBox(vec.V3{}, vec.V3{X: 1, Y: 1, Z: 1}), seed)
}

func TestBuildInvariants(t *testing.T) {
	for _, name := range []string{"uniform", "plummer", "s_1g_a", "s_10g_b"} {
		s := dist.MustNamed(name, 3000, 1)
		tr := Build(s.Particles, Options{LeafCap: 8, Domain: s.Domain})
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tr.Root.Count != 3000 {
			t.Fatalf("%s: root count %d", name, tr.Root.Count)
		}
		if math.Abs(tr.Root.Mass-1) > 1e-9 {
			t.Fatalf("%s: root mass %v", name, tr.Root.Mass)
		}
		com := s.CenterOfMass()
		if tr.Root.COM.Dist(com) > 1e-9 {
			t.Fatalf("%s: COM %v vs %v", name, tr.Root.COM, com)
		}
	}
}

func TestLeafCapacityRespected(t *testing.T) {
	s := uniformSet(2000, 2)
	for _, cap := range []int{1, 4, 16, 100} {
		tr := Build(s.Particles, Options{LeafCap: cap})
		tr.WalkLeaves(func(n *Node) bool {
			if len(n.Particles) > cap && int(n.Key.Level) < MaxDepth {
				t.Fatalf("leafCap %d: leaf with %d particles at level %d", cap, len(n.Particles), n.Key.Level)
			}
			return true
		})
	}
}

func TestBuildHandlesCoincidentParticles(t *testing.T) {
	// Particles at the same position must not recurse forever: the depth
	// cap turns the degenerate cell into an oversized leaf.
	ps := make([]dist.Particle, 20)
	for i := range ps {
		ps[i] = dist.Particle{ID: i, Mass: 1, Pos: vec.V3{X: 0.5, Y: 0.5, Z: 0.5}}
	}
	tr := Build(ps, Options{LeafCap: 2, Domain: vec.NewBox(vec.V3{}, vec.V3{X: 1, Y: 1, Z: 1})})
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Root.Count != 20 {
		t.Fatalf("count = %d", tr.Root.Count)
	}
	if tr.Depth() > MaxDepth {
		t.Fatalf("depth = %d", tr.Depth())
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	tr := Build(nil, Options{Domain: vec.NewBox(vec.V3{}, vec.V3{X: 1, Y: 1, Z: 1})})
	if tr.Root.Count != 0 {
		t.Fatalf("empty tree count = %d", tr.Root.Count)
	}
	if a := tr.AccelAt(vec.V3{X: 0.5}, -1, 0.7, 0, nil); a != (vec.V3{}) {
		t.Fatalf("empty tree accel = %v", a)
	}
	one := []dist.Particle{{ID: 0, Mass: 2, Pos: vec.V3{X: 0.25, Y: 0.25, Z: 0.25}}}
	tr = Build(one, Options{Domain: vec.NewBox(vec.V3{}, vec.V3{X: 1, Y: 1, Z: 1})})
	if tr.Root.Mass != 2 {
		t.Fatalf("singleton mass = %v", tr.Root.Mass)
	}
	// Self-interaction excluded.
	if a := tr.AccelAt(one[0].Pos, 0, 0.7, 0, nil); a != (vec.V3{}) {
		t.Fatalf("self accel = %v", a)
	}
}

func TestWalkLeavesIsMortonOrder(t *testing.T) {
	s := uniformSet(1000, 3)
	tr := Build(s.Particles, Options{LeafCap: 4, Domain: s.Domain})
	var prev keys.CellKey
	first := true
	tr.WalkLeaves(func(n *Node) bool {
		if !first && !prev.Less(n.Key) {
			t.Fatalf("leaf order violated: %v then %v", prev, n.Key)
		}
		prev = n.Key
		first = false
		return true
	})
}

func TestWalkLeavesEarlyStop(t *testing.T) {
	s := uniformSet(500, 4)
	tr := Build(s.Particles, Options{LeafCap: 4})
	count := 0
	tr.WalkLeaves(func(n *Node) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("visited %d leaves, want 3", count)
	}
}

func TestAlphaZeroIsExact(t *testing.T) {
	// With α = 0 the MAC never accepts, so BH degenerates to the direct
	// sum (every interaction is particle–particle).
	s := uniformSet(300, 5)
	tr := Build(s.Particles, Options{LeafCap: 8, Domain: s.Domain})
	var stats Stats
	got := make([]vec.V3, s.N())
	for i, p := range s.Particles {
		got[i] = tr.AccelAt(p.Pos, p.ID, 0, 0.01, &stats)
	}
	want := direct.Accels(s.Particles, 0.01)
	if e := phys.FractionalErrorV3(want, got); e > 1e-12 {
		t.Fatalf("α=0 error = %v", e)
	}
	if stats.PC != 0 {
		t.Fatalf("α=0 produced %d particle–cluster interactions", stats.PC)
	}
}

func TestAccuracyImprovesAsAlphaShrinks(t *testing.T) {
	s := dist.MustNamed("plummer", 2000, 6)
	tr := Build(s.Particles, Options{LeafCap: 8, Domain: s.Domain})
	want := direct.AccelsParallel(s.Particles, 0.01)
	var prevErr = math.Inf(1)
	var prevWork int64
	for _, alpha := range []float64{1.2, 0.8, 0.4} {
		var stats Stats
		got := make([]vec.V3, s.N())
		for i, p := range s.Particles {
			got[i] = tr.AccelAt(p.Pos, p.ID, alpha, 0.01, &stats)
		}
		err := phys.FractionalErrorV3(want, got)
		if err > prevErr*1.2 {
			t.Fatalf("α=%v error %v worse than %v", alpha, err, prevErr)
		}
		work := stats.Interactions()
		if work < prevWork { // smaller α must do at least as much work
			t.Fatalf("α=%v did %d interactions, previous %d — work should grow as α shrinks", alpha, work, prevWork)
		}
		prevErr, prevWork = err, work
	}
	if prevErr > 0.05 {
		t.Fatalf("α=0.4 force error = %v", prevErr)
	}
}

func TestTreeForceMuchCheaperThanDirect(t *testing.T) {
	s := dist.MustNamed("plummer", 5000, 7)
	tr := Build(s.Particles, Options{LeafCap: 8, Domain: s.Domain})
	var stats Stats
	for _, p := range s.Particles {
		tr.AccelAt(p.Pos, p.ID, 0.8, 0.01, &stats)
	}
	directWork := int64(s.N()) * int64(s.N()-1)
	if stats.Interactions()*5 > directWork {
		t.Fatalf("treecode did %d interactions vs direct %d — no speedup", stats.Interactions(), directWork)
	}
}

func TestPotentialMatchesDirectAtHighDegree(t *testing.T) {
	s := dist.MustNamed("plummer", 1000, 8)
	tr := Build(s.Particles, Options{LeafCap: 8, Domain: s.Domain})
	tr.BuildExpansions(6)
	got, _ := tr.PotentialAll(s.Particles, 0.6)
	want := direct.PotentialsParallel(s.Particles, 0)
	if e := phys.FractionalError(want, got); e > 5e-4 {
		t.Fatalf("degree-6 potential error = %v", e)
	}
}

func TestPotentialErrorDropsWithDegree(t *testing.T) {
	// The paper's Table 6 trend: error decreases as the degree grows at
	// fixed α.
	s := dist.MustNamed("g", 1500, 9)
	tr := Build(s.Particles, Options{LeafCap: 8, Domain: s.Domain})
	want := direct.PotentialsParallel(s.Particles, 0)
	var prev = math.Inf(1)
	for _, deg := range []int{1, 3, 5} {
		tr.BuildExpansions(deg)
		got, _ := tr.PotentialAll(s.Particles, 0.67)
		err := phys.FractionalError(want, got)
		if err > prev {
			t.Fatalf("degree %d error %v did not improve on %v", deg, err, prev)
		}
		prev = err
	}
}

func TestPotentialErrorGrowsWithAlpha(t *testing.T) {
	// The paper's Table 7 trend: error increases with α at fixed degree.
	s := dist.MustNamed("g", 1500, 10)
	tr := Build(s.Particles, Options{LeafCap: 8, Domain: s.Domain})
	tr.BuildExpansions(4)
	want := direct.PotentialsParallel(s.Particles, 0)
	var prev float64
	for _, alpha := range []float64{0.67, 0.8, 1.0} {
		got, _ := tr.PotentialAll(s.Particles, alpha)
		err := phys.FractionalError(want, got)
		if err < prev {
			t.Fatalf("α=%v error %v decreased from %v", alpha, err, prev)
		}
		prev = err
	}
}

func TestPotentialRequiresExpansions(t *testing.T) {
	s := uniformSet(10, 11)
	tr := Build(s.Particles, Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("PotentialAt without expansions did not panic")
		}
	}()
	tr.PotentialAt(vec.V3{}, -1, 0.7, nil)
}

func TestLoadAccounting(t *testing.T) {
	s := uniformSet(500, 12)
	tr := Build(s.Particles, Options{LeafCap: 8, Domain: s.Domain})
	var stats Stats
	for _, p := range s.Particles {
		tr.AccelAt(p.Pos, p.ID, 0.7, 0.01, &stats)
	}
	w := tr.SumLoads()
	// Root load after SumLoads equals total interactions recorded. Leaf
	// loads count every particle in the leaf (including a self-skip), so
	// W ≥ interactions.
	if w < stats.Interactions() {
		t.Fatalf("summed load %d < interactions %d", w, stats.Interactions())
	}
	tr.ResetLoads()
	if tr.SumLoads() != 0 {
		t.Fatal("ResetLoads left residue")
	}
}

func TestStatsFlops(t *testing.T) {
	s := Stats{MACTests: 10, PC: 5, PP: 3}
	want := 10*phys.MACFlops + 5*phys.InteractionFlops(4) + 3*phys.PPFlops
	if got := s.Flops(4); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Flops = %v, want %v", got, want)
	}
	var sum Stats
	sum.Add(s)
	sum.Add(s)
	if sum.MACTests != 20 || sum.PC != 10 || sum.PP != 6 {
		t.Fatalf("Add = %+v", sum)
	}
}

func TestBuildSubtreeMatchesFullTreeCell(t *testing.T) {
	// Building a subtree for a cell directly must match the corresponding
	// subtree of the full build (same counts/mass/keys), which is what the
	// distributed construction relies on.
	s := uniformSet(2000, 13)
	full := Build(s.Particles, Options{LeafCap: 8, Domain: s.Domain})
	// Pick the first non-empty child of the root.
	var oct int
	for o, c := range full.Root.Children {
		if c != nil && c.Count > 0 {
			oct = o
			break
		}
	}
	cell := full.Root.Children[oct]
	var sub []dist.Particle
	for _, p := range s.Particles {
		if cell.Box.Contains(p.Pos) && full.Root.Box.OctantOf(p.Pos) == oct {
			sub = append(sub, p)
		}
	}
	rebuilt := BuildSubtree(sub, cell.Box, cell.Key, 8)
	if rebuilt.Count != cell.Count {
		t.Fatalf("count %d vs %d", rebuilt.Count, cell.Count)
	}
	if math.Abs(rebuilt.Mass-cell.Mass) > 1e-12 {
		t.Fatalf("mass %v vs %v", rebuilt.Mass, cell.Mass)
	}
	if rebuilt.COM.Dist(cell.COM) > 1e-12 {
		t.Fatalf("COM %v vs %v", rebuilt.COM, cell.COM)
	}
}

func TestTreeSizeReasonable(t *testing.T) {
	s := uniformSet(4096, 14)
	tr := Build(s.Particles, Options{LeafCap: 8, Domain: s.Domain})
	n := tr.NumNodes()
	if n < 4096/8 || n > 4096*4 {
		t.Fatalf("NumNodes = %d for 4096 particles", n)
	}
	if d := tr.Depth(); d < 3 || d > 12 {
		t.Fatalf("Depth = %d", d)
	}
}

func TestAccelAllMatchesPerParticle(t *testing.T) {
	s := uniformSet(200, 15)
	tr := Build(s.Particles, Options{LeafCap: 8, Domain: s.Domain})
	all, _ := tr.AccelAll(s.Particles, 0.7, 0.01)
	for i, p := range s.Particles {
		one := tr.AccelAt(p.Pos, p.ID, 0.7, 0.01, nil)
		if all[i] != one {
			t.Fatalf("particle %d: %v vs %v", i, all[i], one)
		}
	}
}

func TestMassConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := 50 + int(uint(seed)%200)
		s := uniformSet(n, seed)
		tr := Build(s.Particles, Options{LeafCap: 1 + int(uint(seed)%8), Domain: s.Domain})
		return tr.Validate() == nil && tr.Root.Count == n &&
			math.Abs(tr.Root.Mass-s.TotalMass()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestLeavesPartitionParticles(t *testing.T) {
	s := uniformSet(1000, 16)
	tr := Build(s.Particles, Options{LeafCap: 8, Domain: s.Domain})
	var ids []int
	tr.WalkLeaves(func(n *Node) bool {
		for i := range n.Particles {
			ids = append(ids, n.Particles[i].ID)
		}
		return true
	})
	if len(ids) != 1000 {
		t.Fatalf("leaves hold %d particles", len(ids))
	}
	sort.Ints(ids)
	for i, id := range ids {
		if id != i {
			t.Fatalf("missing or duplicate particle id near %d", i)
		}
	}
}

func TestAcceptsCriterion(t *testing.T) {
	n := &Node{
		Box:  vec.NewBox(vec.V3{}, vec.V3{X: 1, Y: 1, Z: 1}),
		COM:  vec.V3{X: 0.5, Y: 0.5, Z: 0.5},
		Mass: 1,
	}
	// size/dist = 1/10 < 0.5 ⇒ accept.
	if !Accepts(n, vec.V3{X: 10.5, Y: 0.5, Z: 0.5}, 0.5) {
		t.Fatal("distant node not accepted")
	}
	// size/dist = 1/1 ⇒ reject at α = 0.5.
	if Accepts(n, vec.V3{X: 1.5, Y: 0.5, Z: 0.5}, 0.5) {
		t.Fatal("near node accepted")
	}
	// At the COM itself never accept.
	if Accepts(n, n.COM, 10) {
		t.Fatal("accepted at zero distance")
	}
}

func TestRandomizedForceAgainstDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 3; trial++ {
		n := 100 + rng.Intn(400)
		s := dist.MustNamed([]string{"uniform", "plummer", "s_10g_a"}[trial], n, int64(trial))
		tr := Build(s.Particles, Options{LeafCap: 4, Domain: s.Domain})
		got, _ := tr.AccelAll(s.Particles, 0.5, 0.05)
		want := direct.Accels(s.Particles, 0.05)
		if e := phys.FractionalErrorV3(want, got); e > 0.02 {
			t.Fatalf("trial %d: force error %v", trial, e)
		}
	}
}
