package tree

import (
	"runtime"
	"testing"

	"repro/internal/compute"
	"repro/internal/dist"
)

// Host parallelism must never change results: AccelAll/PotentialAll run
// multi-core but are required to be bit-identical — accelerations, Stats,
// and per-node Load counters — to the sequential loop (the "two clocks"
// invariant, DESIGN.md). These tests force a multi-worker run even on a
// single-core host by raising GOMAXPROCS.

// collectLoads returns every node's Load in depth-first order.
func collectLoads(t *Tree) []int64 {
	var loads []int64
	t.Walk(func(n *Node) bool {
		loads = append(loads, n.Load)
		return true
	})
	return loads
}

func TestAccelAllParallelMatchesSerial(t *testing.T) {
	oldProcs := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(oldProcs)

	s := dist.MustNamed("plummer", 4000, 61)
	build := func() *Tree {
		return Build(s.Particles, Options{LeafCap: 8, Domain: s.Domain})
	}

	serialTree := build()
	prev := compute.SetMaxWorkers(1)
	wantAcc, wantStats := serialTree.AccelAll(s.Particles, 0.67, 0.01)
	compute.SetMaxWorkers(prev)
	wantLoads := collectLoads(serialTree)

	parTree := build()
	if w := compute.Workers(len(s.Particles)); w < 2 {
		t.Fatalf("expected multiple workers, got %d", w)
	}
	gotAcc, gotStats := parTree.AccelAll(s.Particles, 0.67, 0.01)
	gotLoads := collectLoads(parTree)

	if gotStats != wantStats {
		t.Errorf("stats differ: parallel %+v serial %+v", gotStats, wantStats)
	}
	for i := range wantAcc {
		if gotAcc[i] != wantAcc[i] {
			t.Fatalf("accel %d differs: parallel %v serial %v", i, gotAcc[i], wantAcc[i])
		}
	}
	if len(gotLoads) != len(wantLoads) {
		t.Fatalf("node counts differ: %d vs %d", len(gotLoads), len(wantLoads))
	}
	for i := range wantLoads {
		if gotLoads[i] != wantLoads[i] {
			t.Fatalf("load %d differs: parallel %d serial %d", i, gotLoads[i], wantLoads[i])
		}
	}
}

func TestPotentialAllParallelMatchesSerial(t *testing.T) {
	oldProcs := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(oldProcs)

	s := dist.MustNamed("g", 3000, 62)
	build := func() *Tree {
		tr := Build(s.Particles, Options{LeafCap: 8, Domain: s.Domain})
		tr.BuildExpansions(4)
		return tr
	}

	serialTree := build()
	prev := compute.SetMaxWorkers(1)
	wantPhi, wantStats := serialTree.PotentialAll(s.Particles, 0.67)
	compute.SetMaxWorkers(prev)
	wantLoads := collectLoads(serialTree)

	parTree := build()
	gotPhi, gotStats := parTree.PotentialAll(s.Particles, 0.67)
	gotLoads := collectLoads(parTree)

	if gotStats != wantStats {
		t.Errorf("stats differ: parallel %+v serial %+v", gotStats, wantStats)
	}
	for i := range wantPhi {
		if gotPhi[i] != wantPhi[i] {
			t.Fatalf("potential %d differs: parallel %v serial %v", i, gotPhi[i], wantPhi[i])
		}
	}
	for i := range wantLoads {
		if gotLoads[i] != wantLoads[i] {
			t.Fatalf("load %d differs: parallel %d serial %d", i, gotLoads[i], wantLoads[i])
		}
	}
}

// TestParallelBuildMatchesSerial checks that the goroutine-parallel
// octree construction produces exactly the structure the serial build
// does, above and below the parallel threshold.
func TestParallelBuildMatchesSerial(t *testing.T) {
	oldProcs := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(oldProcs)

	s := dist.MustNamed("plummer", 2*parallelBuildMin, 63)

	prev := compute.SetMaxWorkers(1)
	serial := Build(s.Particles, Options{LeafCap: 8, Domain: s.Domain})
	compute.SetMaxWorkers(prev)
	par := Build(s.Particles, Options{LeafCap: 8, Domain: s.Domain})

	var mismatch string
	var walk func(a, b *Node)
	walk = func(a, b *Node) {
		if mismatch != "" {
			return
		}
		if (a == nil) != (b == nil) {
			mismatch = "structure differs"
			return
		}
		if a == nil {
			return
		}
		if a.Key != b.Key || a.Count != b.Count || a.Mass != b.Mass || a.COM != b.COM {
			mismatch = "node fields differ"
			return
		}
		if len(a.Particles) != len(b.Particles) {
			mismatch = "leaf sizes differ"
			return
		}
		for i := range a.Particles {
			if a.Particles[i].ID != b.Particles[i].ID {
				mismatch = "leaf particle order differs"
				return
			}
		}
		for o := range a.Children {
			walk(a.Children[o], b.Children[o])
		}
	}
	walk(serial.Root, par.Root)
	if mismatch != "" {
		t.Fatal(mismatch)
	}
	if err := par.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestBuildKeyedUnsortedInput checks the radix-sorted keyed build handles
// arbitrary input order: the tree over a shuffled particle set must be
// identical (Morton order is canonical) to the tree over sorted input.
func TestBuildKeyedUnsortedInput(t *testing.T) {
	s := dist.MustNamed("uniform", 3000, 64)
	a := BuildKeyed(s.Particles, s.Domain, 8)

	shuffled := append([]dist.Particle(nil), s.Particles...)
	for i := len(shuffled) - 1; i > 0; i-- {
		j := (i * 7919) % (i + 1)
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	}
	b := BuildKeyed(shuffled, s.Domain, 8)

	if a.NumNodes() != b.NumNodes() || a.Depth() != b.Depth() {
		t.Fatalf("shape differs: %d/%d nodes, %d/%d depth",
			a.NumNodes(), b.NumNodes(), a.Depth(), b.Depth())
	}
	var ids func(n *Node) []int
	ids = func(n *Node) []int {
		var out []int
		walkLeaves(n, func(l *Node) bool {
			for i := range l.Particles {
				out = append(out, l.Particles[i].ID)
			}
			return true
		})
		return out
	}
	ia, ib := ids(a.Root), ids(b.Root)
	for i := range ia {
		if ia[i] != ib[i] {
			t.Fatalf("leaf order differs at %d: %d vs %d", i, ia[i], ib[i])
		}
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
}
