package tree

// nodeArena allocates Nodes in contiguous slabs so a build performs one
// heap allocation per slab instead of one per cell. Slabs are never
// reallocated once handed out (a full slab is replaced, not grown), so
// node pointers remain stable; finished slabs stay reachable through the
// tree's own node pointers and need no tracking. An arena may only be
// used from one goroutine — parallel builds give each subtree its own.
type nodeArena struct {
	slab []Node
}

// arenaMaxSlabNodes caps a single slab so overflow growth cannot
// overcommit memory on small or lopsided trees.
const arenaMaxSlabNodes = 1 << 13

// newNodeArena sizes the first slab for a build over n particles with the
// given leaf capacity: a near-complete octree has ~2·n/leafCap nodes.
func newNodeArena(n, leafCap int) *nodeArena {
	if leafCap <= 0 {
		leafCap = DefaultLeafCap
	}
	hint := 2*n/leafCap + 8
	if hint > arenaMaxSlabNodes {
		hint = arenaMaxSlabNodes
	}
	return &nodeArena{slab: make([]Node, 0, hint)}
}

// grab returns a fresh zero Node from the arena. When the current slab
// fills, the next one doubles (up to the cap), so total slab count stays
// logarithmic without a huge fixed slab size.
func (a *nodeArena) grab() *Node {
	if len(a.slab) == cap(a.slab) {
		next := 2 * cap(a.slab)
		if next < 64 {
			next = 64
		}
		if next > arenaMaxSlabNodes {
			next = arenaMaxSlabNodes
		}
		a.slab = make([]Node, 0, next)
	}
	a.slab = append(a.slab, Node{})
	return &a.slab[len(a.slab)-1]
}
