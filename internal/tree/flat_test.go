package tree

import (
	"math"
	"runtime"
	"testing"

	"repro/internal/compute"
	"repro/internal/dist"
	"repro/internal/vec"
)

// The flat SoA kernels replay the recursive traversal's exact reduction
// tree (PUSH/POP interaction-list markers), so their accelerations,
// potentials, Stats, and per-node Load counters must be bit-identical to
// the pointer-chasing AccelAll/PotentialAll — not approximately equal.

func flatVsPointerAccel(t *testing.T, ps []dist.Particle, domain vec.Box, alpha, eps float64, leafCap int) {
	t.Helper()
	ptrTree := BuildKeyed(ps, domain, leafCap)
	wantAcc, wantStats := ptrTree.AccelAll(ps, alpha, eps)
	wantLoads := collectLoads(ptrTree)

	flatTree := BuildKeyed(ps, domain, leafCap)
	f := Flatten(flatTree, nil)
	gotAcc, gotStats := f.AccelAll(ps, alpha, eps)
	gotLoads := collectLoads(flatTree)

	if gotStats != wantStats {
		t.Fatalf("stats differ: flat %+v pointer %+v", gotStats, wantStats)
	}
	for i := range wantAcc {
		if math.Float64bits(gotAcc[i].X) != math.Float64bits(wantAcc[i].X) ||
			math.Float64bits(gotAcc[i].Y) != math.Float64bits(wantAcc[i].Y) ||
			math.Float64bits(gotAcc[i].Z) != math.Float64bits(wantAcc[i].Z) {
			t.Fatalf("accel %d differs: flat %v pointer %v", i, gotAcc[i], wantAcc[i])
		}
	}
	if len(gotLoads) != len(wantLoads) {
		t.Fatalf("load vector length: %d vs %d", len(gotLoads), len(wantLoads))
	}
	for i := range wantLoads {
		if gotLoads[i] != wantLoads[i] {
			t.Fatalf("load %d differs: flat %d pointer %d", i, gotLoads[i], wantLoads[i])
		}
	}
}

func TestFlatAccelMatchesPointer(t *testing.T) {
	for _, name := range []string{"plummer", "g", "uniform"} {
		t.Run(name, func(t *testing.T) {
			s := dist.MustNamed(name, 3000, 61)
			for _, alpha := range []float64{0.3, 0.67, 1.2} {
				flatVsPointerAccel(t, s.Particles, s.Domain, alpha, 0.01, 8)
			}
		})
	}
}

func TestFlatAccelSmallAndDegenerate(t *testing.T) {
	domain := vec.Box{Min: vec.V3{X: -1, Y: -1, Z: -1}, Max: vec.V3{X: 1, Y: 1, Z: 1}}
	t.Run("single", func(t *testing.T) {
		ps := []dist.Particle{{ID: 0, Mass: 2, Pos: vec.V3{X: 0.25}}}
		flatVsPointerAccel(t, ps, domain, 0.67, 0.01, 8)
	})
	t.Run("root-leaf", func(t *testing.T) {
		// n ≤ leafCap: the whole tree is one leaf, the rootLeaf kernel path.
		ps := make([]dist.Particle, 6)
		for i := range ps {
			ps[i] = dist.Particle{ID: i, Mass: 1, Pos: vec.V3{X: float64(i) * 0.1, Y: -0.3}}
		}
		flatVsPointerAccel(t, ps, domain, 0.67, 0.01, 8)
	})
	t.Run("coincident", func(t *testing.T) {
		ps := make([]dist.Particle, 20)
		for i := range ps {
			ps[i] = dist.Particle{ID: i, Mass: 1, Pos: vec.V3{X: 0.5, Y: 0.5, Z: 0.5}}
		}
		flatVsPointerAccel(t, ps, domain, 0.67, 0.01, 4)
	})
}

func TestFlatAccelRootPC(t *testing.T) {
	// A tight far cluster plus one distant probe: with a generous alpha
	// the probe accepts the root cell outright — the rootPC kernel path.
	domain := vec.Box{Min: vec.V3{X: -100, Y: -100, Z: -100}, Max: vec.V3{X: 100, Y: 100, Z: 100}}
	var ps []dist.Particle
	for i := 0; i < 30; i++ {
		ps = append(ps, dist.Particle{ID: i, Mass: 1, Pos: vec.V3{
			X: -90 + 0.01*float64(i%5), Y: -90 + 0.01*float64(i/5), Z: -90}})
	}
	ps = append(ps, dist.Particle{ID: 30, Mass: 1, Pos: vec.V3{X: 95, Y: 95, Z: 95}})
	flatVsPointerAccel(t, ps, domain, 5.0, 0.01, 4)
}

func TestFlatPotentialMatchesPointer(t *testing.T) {
	s := dist.MustNamed("plummer", 2500, 23)
	for _, degree := range []int{0, 2, 4} {
		ptrTree := BuildKeyed(s.Particles, s.Domain, 8)
		ptrTree.BuildExpansions(degree)
		wantPot, wantStats := ptrTree.PotentialAll(s.Particles, 0.67)
		wantLoads := collectLoads(ptrTree)

		flatTree := BuildKeyed(s.Particles, s.Domain, 8)
		flatTree.BuildExpansions(degree)
		f := Flatten(flatTree, nil)
		gotPot, gotStats := f.PotentialAll(s.Particles, 0.67)
		gotLoads := collectLoads(flatTree)

		if gotStats != wantStats {
			t.Fatalf("degree %d: stats differ: flat %+v pointer %+v", degree, gotStats, wantStats)
		}
		for i := range wantPot {
			if math.Float64bits(gotPot[i]) != math.Float64bits(wantPot[i]) {
				t.Fatalf("degree %d: potential %d differs: flat %v pointer %v", degree, i, gotPot[i], wantPot[i])
			}
		}
		for i := range wantLoads {
			if gotLoads[i] != wantLoads[i] {
				t.Fatalf("degree %d: load %d differs", degree, i)
			}
		}
	}
}

func TestFlatParallelMatchesSerial(t *testing.T) {
	oldProcs := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(oldProcs)

	s := dist.MustNamed("plummer", 4000, 61)

	serialTree := BuildKeyed(s.Particles, s.Domain, 8)
	fs := Flatten(serialTree, nil)
	prev := compute.SetMaxWorkers(1)
	wantAcc, wantStats := fs.AccelAll(s.Particles, 0.67, 0.01)
	compute.SetMaxWorkers(prev)
	wantLoads := collectLoads(serialTree)

	parTree := BuildKeyed(s.Particles, s.Domain, 8)
	fp := Flatten(parTree, nil)
	if w := compute.Workers(len(s.Particles)); w < 2 {
		t.Fatalf("expected multiple workers, got %d", w)
	}
	gotAcc, gotStats := fp.AccelAll(s.Particles, 0.67, 0.01)
	gotLoads := collectLoads(parTree)

	if gotStats != wantStats {
		t.Fatalf("stats differ: parallel %+v serial %+v", gotStats, wantStats)
	}
	for i := range wantAcc {
		if gotAcc[i] != wantAcc[i] {
			t.Fatalf("accel %d differs: parallel %v serial %v", i, gotAcc[i], wantAcc[i])
		}
	}
	for i := range wantLoads {
		if gotLoads[i] != wantLoads[i] {
			t.Fatalf("load %d differs: parallel %d serial %d", i, gotLoads[i], wantLoads[i])
		}
	}
}

func TestFlattenReuse(t *testing.T) {
	// Reusing a FlatTree across rebuilds (the per-step pattern in
	// SerialSim) must give the same answers as a fresh flatten.
	s := dist.MustNamed("g", 1500, 7)
	tr := BuildKeyed(s.Particles, s.Domain, 8)
	f := Flatten(tr, nil)
	f.AccelAll(s.Particles, 0.67, 0.01)

	small := s.Particles[:200]
	tr2 := BuildKeyed(small, s.Domain, 8)
	f = Flatten(tr2, f) // shrinking reuse
	gotAcc, gotStats := f.AccelAll(small, 0.67, 0.01)

	ref := BuildKeyed(small, s.Domain, 8)
	wantAcc, wantStats := Flatten(ref, nil).AccelAll(small, 0.67, 0.01)
	if gotStats != wantStats {
		t.Fatalf("stats differ after reuse: %+v vs %+v", gotStats, wantStats)
	}
	for i := range wantAcc {
		if gotAcc[i] != wantAcc[i] {
			t.Fatalf("accel %d differs after reuse", i)
		}
	}
}
