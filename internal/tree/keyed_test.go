package tree

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/keys"
	"repro/internal/phys"
	"repro/internal/vec"
)

func TestKeyedBuildMatchesGeometricAggregates(t *testing.T) {
	s := dist.MustNamed("plummer", 3000, 31)
	geo := Build(s.Particles, Options{LeafCap: 8, Domain: s.Domain})
	key := BuildKeyed(s.Particles, s.Domain, 8)
	if key.Root.Count != geo.Root.Count {
		t.Fatalf("counts differ: %d vs %d", key.Root.Count, geo.Root.Count)
	}
	if math.Abs(key.Root.Mass-geo.Root.Mass) > 1e-12 {
		t.Fatalf("masses differ")
	}
	if key.Root.COM.Dist(geo.Root.COM) > 1e-12 {
		t.Fatalf("COMs differ")
	}
}

func TestKeyedBuildForcesMatchGeometric(t *testing.T) {
	// The two builds may disagree about boundary particles by one cell,
	// but the forces they produce agree to BH tolerance.
	s := dist.MustNamed("g", 2000, 32)
	geo := Build(s.Particles, Options{LeafCap: 8, Domain: s.Domain})
	key := BuildKeyed(s.Particles, s.Domain, 8)
	a1, _ := geo.AccelAll(s.Particles, 0.7, 0.01)
	a2, _ := key.AccelAll(s.Particles, 0.7, 0.01)
	if e := phys.FractionalErrorV3(a1, a2); e > 1e-3 {
		t.Fatalf("keyed vs geometric force difference %v", e)
	}
}

func TestKeyedCellMembershipConsistentWithKeys(t *testing.T) {
	// The property that motivates the keyed build: every particle in a
	// cell has a full-resolution Morton key inside the cell's key range.
	s := dist.MustNamed("s_10g_a", 3000, 33)
	tr := BuildKeyed(s.Particles, s.Domain, 8)
	rootBox := tr.Root.Box
	var check func(n *Node) bool
	check = func(n *Node) bool {
		if n == nil {
			return true
		}
		shift := 3 * uint(keys.MaxBits3D-int(n.Key.Level))
		lo := uint64(n.Key.Key) << shift
		hi := lo + (1 << shift)
		if n.IsLeaf() {
			for i := range n.Particles {
				k := uint64(keys.PointKey3(n.Particles[i].Pos, rootBox, keys.MaxBits3D))
				if k < lo || k >= hi {
					t.Errorf("particle %d key %x outside cell %v range [%x,%x)",
						n.Particles[i].ID, k, n.Key, lo, hi)
					return false
				}
			}
			return true
		}
		for _, c := range n.Children {
			if !check(c) {
				return false
			}
		}
		return true
	}
	check(tr.Root)
}

func TestKeyedSubtreeMatchesSubrange(t *testing.T) {
	s := dist.MustNamed("uniform", 2000, 34)
	full := BuildKeyed(s.Particles, s.Domain, 8)
	rootBox := full.Root.Box
	// Rebuild one child cell from the particles whose keys land in it.
	for oct, child := range full.Root.Children {
		if child == nil || child.Count == 0 {
			continue
		}
		var sub []dist.Particle
		for _, q := range s.Particles {
			k := uint64(keys.PointKey3(q.Pos, rootBox, keys.MaxBits3D))
			if int(k>>(3*(keys.MaxBits3D-1)))&7 == oct {
				sub = append(sub, q)
			}
		}
		re := BuildSubtreeKeyed(sub, rootBox, child.Box, child.Key, 8)
		if re.Count != child.Count {
			t.Fatalf("oct %d: count %d vs %d", oct, re.Count, child.Count)
		}
		if re.COM.Dist(child.COM) > 1e-12 {
			t.Fatalf("oct %d: COM differs", oct)
		}
		break
	}
}

func TestKeyedBuildCoincidentParticles(t *testing.T) {
	ps := make([]dist.Particle, 30)
	for i := range ps {
		ps[i] = dist.Particle{ID: i, Mass: 1, Pos: vec.V3{X: 0.25, Y: 0.25, Z: 0.25}}
	}
	tr := BuildKeyed(ps, vec.NewBox(vec.V3{}, vec.V3{X: 1, Y: 1, Z: 1}), 4)
	if tr.Root.Count != 30 {
		t.Fatalf("count = %d", tr.Root.Count)
	}
	if tr.Depth() > MaxDepth {
		t.Fatalf("depth = %d", tr.Depth())
	}
}

func TestParticleLevelsAndCountNodes(t *testing.T) {
	s := dist.MustNamed("uniform", 500, 35)
	tr := Build(s.Particles, Options{LeafCap: 8, Domain: s.Domain})
	pl := ParticleLevels(tr.Root)
	// Every particle contributes at least the root level and at most
	// MaxDepth levels.
	if pl < int64(tr.Root.Count) || pl > int64(tr.Root.Count)*int64(MaxDepth+1) {
		t.Fatalf("ParticleLevels = %d for %d particles", pl, tr.Root.Count)
	}
	if CountNodes(tr.Root) != tr.NumNodes() {
		t.Fatal("CountNodes disagrees with NumNodes")
	}
}

func TestAccelFromEqualsSubtreeTraversal(t *testing.T) {
	s := dist.MustNamed("plummer", 1000, 36)
	tr := Build(s.Particles, Options{LeafCap: 8, Domain: s.Domain})
	// AccelFrom at the root must equal AccelAt.
	for i := 0; i < 50; i++ {
		q := s.Particles[i]
		var s1, s2 Stats
		a1 := tr.AccelAt(q.Pos, q.ID, 0.7, 0.01, &s1)
		a2 := AccelFrom(tr.Root, q.Pos, q.ID, 0.7, 0.01, &s2)
		if a1 != a2 {
			t.Fatalf("particle %d: %v vs %v", i, a1, a2)
		}
		if s1 != s2 {
			t.Fatalf("stats differ: %+v vs %+v", s1, s2)
		}
	}
}

func TestSumLoadsNode(t *testing.T) {
	s := dist.MustNamed("uniform", 400, 37)
	tr := Build(s.Particles, Options{LeafCap: 8, Domain: s.Domain})
	for _, q := range s.Particles {
		tr.AccelAt(q.Pos, q.ID, 0.7, 0.01, nil)
	}
	// SumLoadsNode aggregates destructively: after one call, each child's
	// Load holds its subtree total and the root total is its own load
	// plus the children's totals.
	rootOwn := tr.Root.Load
	total := SumLoadsNode(tr.Root)
	var childSum int64
	for _, c := range tr.Root.Children {
		if c != nil {
			childSum += c.Load
		}
	}
	if total != rootOwn+childSum {
		t.Fatalf("SumLoadsNode inconsistent: %d vs %d+%d", total, rootOwn, childSum)
	}
	if total <= 0 {
		t.Fatal("no load recorded")
	}
}
