package tree

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/dist"
	"repro/internal/vec"
)

// diffNodes compares two trees node for node, field for field, with
// bitwise float comparison — the two-clock rule demands the incremental
// build be indistinguishable from the from-scratch build, not merely
// numerically close.
func diffNodes(a, b *Node, path string) error {
	if (a == nil) != (b == nil) {
		return fmt.Errorf("%s: nil mismatch (got %v, want %v)", path, a != nil, b != nil)
	}
	if a == nil {
		return nil
	}
	if a.Box != b.Box {
		return fmt.Errorf("%s: box %+v vs %+v", path, a.Box, b.Box)
	}
	if a.Key != b.Key {
		return fmt.Errorf("%s: key %+v vs %+v", path, a.Key, b.Key)
	}
	if a.Count != b.Count {
		return fmt.Errorf("%s: count %d vs %d", path, a.Count, b.Count)
	}
	if math.Float64bits(a.Mass) != math.Float64bits(b.Mass) {
		return fmt.Errorf("%s: mass %x vs %x", path, math.Float64bits(a.Mass), math.Float64bits(b.Mass))
	}
	if math.Float64bits(a.COM.X) != math.Float64bits(b.COM.X) ||
		math.Float64bits(a.COM.Y) != math.Float64bits(b.COM.Y) ||
		math.Float64bits(a.COM.Z) != math.Float64bits(b.COM.Z) {
		return fmt.Errorf("%s: COM %v vs %v", path, a.COM, b.COM)
	}
	if a.Load != b.Load {
		return fmt.Errorf("%s: load %d vs %d", path, a.Load, b.Load)
	}
	if (a.Exp == nil) != (b.Exp == nil) {
		return fmt.Errorf("%s: expansion presence mismatch", path)
	}
	if a.IsLeaf() != b.IsLeaf() {
		return fmt.Errorf("%s: leafness %v vs %v", path, a.IsLeaf(), b.IsLeaf())
	}
	if len(a.Particles) != len(b.Particles) {
		return fmt.Errorf("%s: leaf size %d vs %d", path, len(a.Particles), len(b.Particles))
	}
	for i := range a.Particles {
		if a.Particles[i] != b.Particles[i] {
			return fmt.Errorf("%s: leaf particle %d: %+v vs %+v", path, i, a.Particles[i], b.Particles[i])
		}
	}
	for o := 0; o < 8; o++ {
		if err := diffNodes(a.Children[o], b.Children[o], fmt.Sprintf("%s/%d", path, o)); err != nil {
			return err
		}
	}
	return nil
}

// jitter moves a fraction frac of the bodies by a random displacement of
// the given scale (in domain units). frac=0 models a pathological
// zero-motion step; frac=1 moves everything.
func jitter(rng *rand.Rand, bodies []dist.Particle, frac, scale float64) {
	for i := range bodies {
		if frac < 1 && rng.Float64() >= frac {
			continue
		}
		bodies[i].Pos.X += (rng.Float64() - 0.5) * scale
		bodies[i].Pos.Y += (rng.Float64() - 0.5) * scale
		bodies[i].Pos.Z += (rng.Float64() - 0.5) * scale
	}
}

func testDomain() vec.Box {
	return vec.Box{Min: vec.V3{X: -40, Y: -40, Z: -40}, Max: vec.V3{X: 40, Y: 40, Z: 40}}
}

func TestBuilderIncrementalMatchesFromScratch(t *testing.T) {
	domain := testDomain()
	for _, tc := range []struct {
		name  string
		frac  float64
		scale float64
	}{
		{"none-moved", 0, 0},
		{"tiny-drift", 0.01, 1e-3},
		{"small-drift", 0.05, 0.05},
		{"heavy-drift", 0.5, 1.0},
		{"all-moved", 1.0, 2.0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			bodies := dist.MustNamed("plummer", 2500, 61).Particles
			b := NewBuilder(domain, 8)
			for step := 0; step < 6; step++ {
				got := b.Step(bodies)
				want := BuildKeyed(bodies, domain, 8)
				if err := diffNodes(got.Root, want.Root, "root"); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				rep := b.Last()
				if step == 0 && !rep.Cold {
					t.Fatal("first step must be cold")
				}
				if step > 0 && rep.Cold && tc.frac < 0.5 {
					t.Fatalf("step %d unexpectedly cold under light drift: %+v", step, rep)
				}
				jitter(rng, bodies, tc.frac, tc.scale)
			}
		})
	}
}

func TestBuilderStepSortedMatchesFromScratch(t *testing.T) {
	domain := testDomain()
	rng := rand.New(rand.NewSource(7))
	bodies := dist.MustNamed("g", 1800, 19).Particles
	b := NewBuilder(domain, 8)
	for step := 0; step < 5; step++ {
		sorted, ks := sortedByKey(bodies, domain.Cube())
		got := b.StepSorted(sorted, ks)
		want := BuildKeyed(bodies, domain, 8)
		if err := diffNodes(got.Root, want.Root, "root"); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		jitter(rng, bodies, 0.1, 0.2)
	}
}

func TestBuilderStepSortedUnsortedFallback(t *testing.T) {
	domain := testDomain()
	bodies := dist.MustNamed("plummer", 600, 3).Particles
	sorted, ks := sortedByKey(bodies, domain.Cube())
	// Violate the sortedness contract on purpose; the defensive scan must
	// re-sort rather than build a malformed tree.
	sorted[0], sorted[len(sorted)-1] = sorted[len(sorted)-1], sorted[0]
	ks[0], ks[len(ks)-1] = ks[len(ks)-1], ks[0]
	got := NewBuilder(domain, 8).StepSorted(sorted, ks)
	want := BuildKeyed(bodies, domain, 8)
	if err := diffNodes(got.Root, want.Root, "root"); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderColdFallbacks(t *testing.T) {
	domain := testDomain()
	rng := rand.New(rand.NewSource(9))
	bodies := dist.MustNamed("plummer", 1200, 5).Particles
	b := NewBuilder(domain, 8)
	b.Step(bodies)

	// Reordering the input slice must be detected by the ID guard.
	reordered := append([]dist.Particle(nil), bodies...)
	rng.Shuffle(len(reordered), func(i, j int) { reordered[i], reordered[j] = reordered[j], reordered[i] })
	got := b.Step(reordered)
	if !b.Last().Cold {
		t.Fatal("reordered input did not force a cold build")
	}
	if err := diffNodes(got.Root, BuildKeyed(reordered, domain, 8).Root, "root"); err != nil {
		t.Fatal(err)
	}

	// A length change must force a cold build.
	shrunk := reordered[:900]
	got = b.Step(shrunk)
	if !b.Last().Cold {
		t.Fatal("length change did not force a cold build")
	}
	if err := diffNodes(got.Root, BuildKeyed(shrunk, domain, 8).Root, "root"); err != nil {
		t.Fatal(err)
	}

	// Reset drops all retained state.
	b.Reset()
	got = b.Step(shrunk)
	if !b.Last().Cold {
		t.Fatal("step after Reset was not cold")
	}
	if err := diffNodes(got.Root, BuildKeyed(shrunk, domain, 8).Root, "root"); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderArenaRecycle(t *testing.T) {
	// Heavy motion every step accumulates rebuild garbage until the
	// arena-stale check forces a cold rebuild; correctness must hold
	// through the recycle.
	domain := testDomain()
	rng := rand.New(rand.NewSource(13))
	bodies := dist.MustNamed("plummer", 800, 31).Particles
	b := NewBuilder(domain, 8)
	recycled := false
	for step := 0; step < 30; step++ {
		got := b.Step(bodies)
		if step > 0 && b.Last().Cold {
			recycled = true
		}
		want := BuildKeyed(bodies, domain, 8)
		if err := diffNodes(got.Root, want.Root, "root"); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		jitter(rng, bodies, 1.0, 10.0)
	}
	if !recycled {
		t.Fatal("30 all-moved steps never triggered an arena recycle")
	}
}

func TestBuilderCoincidentParticles(t *testing.T) {
	// All particles at one point drive the build to MaxDepth and the
	// oversized-leaf path; the incremental diff must reproduce it.
	domain := testDomain()
	bodies := make([]dist.Particle, 40)
	for i := range bodies {
		bodies[i] = dist.Particle{ID: i, Mass: 1, Pos: vec.V3{X: 1.25, Y: -3.5, Z: 7.75}}
	}
	b := NewBuilder(domain, 4)
	for step := 0; step < 3; step++ {
		got := b.Step(bodies)
		want := BuildKeyed(bodies, domain, 4)
		if err := diffNodes(got.Root, want.Root, "root"); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		// Move one particle away and back to dirty the deep chain.
		if step == 0 {
			bodies[0].Pos = vec.V3{X: -20, Y: 20, Z: -20}
		} else {
			bodies[0].Pos = vec.V3{X: 1.25, Y: -3.5, Z: 7.75}
		}
	}
}

func FuzzBuilderIncremental(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(5), uint8(10))
	f.Add(int64(2), uint8(4), uint8(0), uint8(0))    // none moved
	f.Add(int64(3), uint8(4), uint8(100), uint8(50)) // all moved, large scale
	f.Add(int64(4), uint8(2), uint8(100), uint8(255))
	f.Add(int64(5), uint8(6), uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, steps, movedPct, scalePct uint8) {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(400)
		domain := testDomain()
		bodies := make([]dist.Particle, n)
		for i := range bodies {
			bodies[i] = dist.Particle{
				ID:   i,
				Mass: rng.Float64() + 0.01,
				Pos: vec.V3{
					X: (rng.Float64() - 0.5) * 70,
					Y: (rng.Float64() - 0.5) * 70,
					Z: (rng.Float64() - 0.5) * 70,
				},
			}
		}
		nsteps := 1 + int(steps%6)
		frac := float64(movedPct%101) / 100
		scale := float64(scalePct) / 4 // up to ~64 units: drift past cell and domain bounds
		b := NewBuilder(domain, 1+rng.Intn(12))
		for step := 0; step < nsteps; step++ {
			got := b.Step(bodies)
			want := BuildKeyed(bodies, domain, b.leafCap)
			if err := diffNodes(got.Root, want.Root, "root"); err != nil {
				t.Fatalf("seed=%d step=%d frac=%g scale=%g: %v", seed, step, frac, scale, err)
			}
			jitter(rng, bodies, frac, scale)
		}
	})
}
