// Package tree implements the serial Barnes–Hut octree: construction with
// s-particle leaves, centre-of-mass and multipole upward passes, the
// α multipole acceptance criterion, force and potential traversals, and
// the per-node interaction counters that drive the paper's load-balancing
// schemes. The distributed formulations in package parbh are built from
// the same nodes: each processor owns subtrees of this form and grafts
// them under a replicated top tree.
package tree

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/compute"
	"repro/internal/dist"
	"repro/internal/keys"
	"repro/internal/phys"
	"repro/internal/vec"
)

// DefaultLeafCap is the default maximum number of particles in a leaf
// (the paper's s parameter).
const DefaultLeafCap = 8

// MaxDepth bounds the octree depth. 21 levels is the Morton key
// resolution; beyond that coincident particles would recurse forever, so
// deeper cells become oversized leaves.
const MaxDepth = keys.MaxBits3D

// Node is one cell of the octree. Internal nodes have at least one
// non-nil child; leaves carry the particles themselves.
type Node struct {
	Box   vec.Box      // spatial extent (a cube)
	Key   keys.CellKey // hierarchical cell identity
	Mass  float64      // total mass of the subtree
	COM   vec.V3       // centre of mass of the subtree
	Count int          // number of particles in the subtree

	// Load counts the particles this node computed interactions with
	// during the last force-computation phase (Section 3.3: "each node in
	// the tree keeps track of the number of particles it interacts
	// with"). For leaves it counts particle–particle interactions.
	Load int64

	Children  [8]*Node
	Particles []dist.Particle // leaf payload; nil for internal nodes

	// Exp is the node's multipole expansion about its centre of mass,
	// populated by BuildExpansions for potential-mode traversals.
	Exp *phys.Expansion

	// loadIdx is the node's position in the tree's DFS numbering,
	// assigned by indexLoads so parallel traversals can shard Load
	// counters per worker and merge them deterministically.
	loadIdx int32
}

// IsLeaf reports whether the node stores particles directly.
func (n *Node) IsLeaf() bool { return n.Particles != nil || n.Count == 0 }

// Tree is a Barnes–Hut octree over a particle set.
type Tree struct {
	Root    *Node
	LeafCap int
	Degree  int // multipole degree of the expansions, -1 if absent
}

// Options configure tree construction.
type Options struct {
	// LeafCap is the s parameter: cells with more than LeafCap particles
	// are split. Zero means DefaultLeafCap.
	LeafCap int
	// Domain overrides the root cell. When zero, the root is the cube
	// around the particles' bounding box.
	Domain vec.Box
	// CollapseBoxes enables the box-collapsing technique of Section 2:
	// before splitting, a cell shrinks to the smallest cube containing
	// its particles, so a tight pair in a huge cell is resolved in O(1)
	// subdivisions instead of one per halving. This bounds the build at
	// O(n log n) where the plain method is unbounded. Collapsed cells are
	// no longer aligned with the hierarchical Morton decomposition, so
	// the option applies to serial trees only (the distributed engines
	// rely on key-aligned cells).
	CollapseBoxes bool
}

// Build constructs the octree for the particles. The root cell is the
// cube enclosing the domain so that octant subdivision preserves cubic
// cells (the MAC's size/distance test assumes cubes).
func Build(particles []dist.Particle, opt Options) *Tree {
	leafCap := opt.LeafCap
	if leafCap <= 0 {
		leafCap = DefaultLeafCap
	}
	box := opt.Domain
	if box == (vec.Box{}) {
		pts := make([]vec.V3, len(particles))
		for i := range particles {
			pts[i] = particles[i].Pos
		}
		box = vec.BoundingBox(pts).Expand(1e-9)
	}
	box = box.Cube()
	t := &Tree{LeafCap: leafCap, Degree: -1}
	ps := append([]dist.Particle(nil), particles...)
	a := newNodeArena(len(ps), leafCap)
	if opt.CollapseBoxes {
		t.Root = buildCollapsed(ps, box, keys.CellKey{}, leafCap, a)
	} else {
		scratch := make([]dist.Particle, len(ps))
		t.Root = buildNode(ps, scratch, box, keys.CellKey{}, leafCap, a)
	}
	return t
}

// parallelBuildMin is the subtree size above which octant children are
// built concurrently. Below it the goroutine and arena overhead exceeds
// the win; above it each child gets its own goroutine and arena. The
// resulting tree is identical either way — only wall-clock changes.
const parallelBuildMin = 8192

// buildParallel reports whether a subtree of this size should fan its
// octants out to goroutines: large enough to amortize the overhead, and
// the host actually has more than one worker available.
func buildParallel(n int) bool {
	return n >= parallelBuildMin && compute.Workers(n) > 1
}

// fillLeaf stores the particles in a leaf and computes its mass moments.
func fillLeaf(n *Node, ps []dist.Particle) {
	n.Particles = ps
	for i := range ps {
		n.Mass += ps[i].Mass
		n.COM = n.COM.Add(ps[i].Pos.Scale(ps[i].Mass))
	}
	if n.Mass > 0 {
		n.COM = n.COM.Scale(1 / n.Mass)
	}
}

// buildCollapsed is buildNode with box collapsing: the cell first shrinks
// to the smallest cube enclosing its particles (padded so boundary
// particles stay strictly inside), then splits by octant as usual. Depth
// is bounded by the particle count, not the geometry, so no MaxDepth
// fallback is needed; key levels are still capped to stay meaningful.
func buildCollapsed(ps []dist.Particle, box vec.Box, key keys.CellKey, leafCap int, a *nodeArena) *Node {
	n := a.grab()
	n.Box, n.Key = box, key
	n.Count = len(ps)
	if len(ps) == 0 {
		n.Particles = []dist.Particle{}
		return n
	}
	if len(ps) <= leafCap {
		fillLeaf(n, ps)
		return n
	}
	// Collapse: tighten to the particles' bounding cube when it is
	// substantially smaller than the current cell. The coincidence test
	// uses the raw (unpadded) extent: positions closer than one ulp are
	// identical in float64 and can never be separated.
	pts := make([]vec.V3, len(ps))
	for i := range ps {
		pts[i] = ps[i].Pos
	}
	raw := vec.BoundingBox(pts)
	if raw.LongestSide() == 0 {
		// All particles coincide: keep them as one leaf.
		fillLeaf(n, ps)
		return n
	}
	tight := raw.Expand(raw.LongestSide() * 1e-9).Cube()
	if tight.LongestSide() < 0.5*box.LongestSide() {
		box = tight
		n.Box = tight
	}
	var buckets [8][]dist.Particle
	for i := range ps {
		buckets[box.OctantOf(ps[i].Pos)] = append(buckets[box.OctantOf(ps[i].Pos)], ps[i])
	}
	childLevel := key.Level
	if int(childLevel) < MaxDepth {
		childLevel++
	}
	for o := 0; o < 8; o++ {
		if len(buckets[o]) == 0 {
			continue
		}
		ck := keys.CellKey{Level: childLevel, Key: key.Key<<3 | keys.Morton(o)}
		child := buildCollapsed(buckets[o], box.Octant(o), ck, leafCap, a)
		n.Children[o] = child
		n.Mass += child.Mass
		n.COM = n.COM.Add(child.COM.Scale(child.Mass))
	}
	if n.Mass > 0 {
		n.COM = n.COM.Scale(1 / n.Mass)
	}
	return n
}

// BuildSubtree constructs a subtree for the cell identified by key with
// extent box. Used by the distributed construction, where each processor
// builds the subtrees under its branch nodes independently.
func BuildSubtree(particles []dist.Particle, box vec.Box, key keys.CellKey, leafCap int) *Node {
	if leafCap <= 0 {
		leafCap = DefaultLeafCap
	}
	ps := append([]dist.Particle(nil), particles...)
	scratch := make([]dist.Particle, len(ps))
	return buildNode(ps, scratch, box, key, leafCap, newNodeArena(len(ps), leafCap))
}

// buildNode recursively partitions ps (which it may reorder) into the
// octants of box. ps and scratch are two same-length buffers ping-ponged
// across levels: each level scatters ps into octant runs of scratch and
// the children recurse with the roles swapped, so the whole build uses
// two n-sized buffers instead of one allocation per internal node.
// Leaves end up referencing runs of whichever buffer their level landed
// on; both stay alive through those references.
func buildNode(ps, scratch []dist.Particle, box vec.Box, key keys.CellKey, leafCap int, a *nodeArena) *Node {
	n := a.grab()
	n.Box, n.Key = box, key
	n.Count = len(ps)
	if len(ps) == 0 {
		n.Particles = []dist.Particle{}
		return n
	}
	if len(ps) <= leafCap || int(key.Level) >= MaxDepth {
		fillLeaf(n, ps)
		return n
	}
	// Partition in place: bucket by octant with a counting pass, then a
	// stable scatter into the scratch buffer, whose octant runs become
	// the children's particle storage.
	var counts [8]int
	for i := range ps {
		counts[box.OctantOf(ps[i].Pos)]++
	}
	var starts [9]int
	for o := 0; o < 8; o++ {
		starts[o+1] = starts[o] + counts[o]
	}
	var fill [8]int
	for i := range ps {
		o := box.OctantOf(ps[i].Pos)
		scratch[starts[o]+fill[o]] = ps[i]
		fill[o]++
	}
	if buildParallel(len(ps)) {
		// The closure takes the per-octant bounds as arguments, not
		// captures, so counts/starts stay stack-allocated on the (common)
		// serial path below.
		var wg sync.WaitGroup
		for o := 0; o < 8; o++ {
			if counts[o] == 0 {
				continue
			}
			wg.Add(1)
			go func(o, lo, hi int) {
				defer wg.Done()
				ca := newNodeArena(hi-lo, leafCap)
				n.Children[o] = buildNode(scratch[lo:hi], ps[lo:hi],
					box.Octant(o), key.Child(o), leafCap, ca)
			}(o, starts[o], starts[o+1])
		}
		wg.Wait()
		for o := 0; o < 8; o++ {
			if child := n.Children[o]; child != nil {
				n.Mass += child.Mass
				n.COM = n.COM.Add(child.COM.Scale(child.Mass))
			}
		}
	} else {
		for o := 0; o < 8; o++ {
			if counts[o] == 0 {
				continue
			}
			child := buildNode(scratch[starts[o]:starts[o+1]], ps[starts[o]:starts[o+1]],
				box.Octant(o), key.Child(o), leafCap, a)
			n.Children[o] = child
			n.Mass += child.Mass
			n.COM = n.COM.Add(child.COM.Scale(child.Mass))
		}
	}
	if n.Mass > 0 {
		n.COM = n.COM.Scale(1 / n.Mass)
	}
	return n
}

// BuildKeyed constructs the octree using quantized Morton keys for every
// octant decision instead of geometric comparisons. The two agree except
// for particles within a rounding ulp of a cell boundary — but the
// parallel DPDA decomposition defines ownership by key ranges, so its
// trees must be built with exactly the same arithmetic or a processor
// could claim cells inside another's range. domain is the global root
// cell (it is cubed internally).
//
// Keys are computed once, radix-sorted with the particle ID tie-break,
// and the tree is then built over contiguous key ranges: child cells are
// located by binary search on the 3-bit octant digit instead of a
// counting scatter per level. Particles whose input order already is the
// (key, ID) order — the invariant the DPDA engine maintains — come out
// in exactly the same leaf order as before.
// BuildKeyed is the cold-start path of Builder.Step: a one-shot Builder
// runs the same sort and range build without any retained state.
func BuildKeyed(particles []dist.Particle, domain vec.Box, leafCap int) *Tree {
	return NewBuilder(domain, leafCap).Step(particles)
}

// BuildSubtreeKeyed is BuildKeyed for the subtree of cell `key` (with
// extent box); rootBox is the global root cell the particle keys are
// quantized against.
func BuildSubtreeKeyed(particles []dist.Particle, rootBox vec.Box, box vec.Box, key keys.CellKey, leafCap int) *Node {
	if leafCap <= 0 {
		leafCap = DefaultLeafCap
	}
	ps, ks := sortedByKey(particles, rootBox)
	return buildKeyedRange(ps, ks, box, key, leafCap, newNodeArena(len(ps), leafCap))
}

// sortedByKey returns a copy of the particles sorted by (full-resolution
// Morton key, ID) together with the aligned key slice.
func sortedByKey(particles []dist.Particle, rootBox vec.Box) ([]dist.Particle, []uint64) {
	pairs := make([]keys.KeyIdx, len(particles))
	for i := range particles {
		pairs[i] = keys.KeyIdx{
			Key: uint64(keys.PointKey3(particles[i].Pos, rootBox, keys.MaxBits3D)),
			ID:  int32(particles[i].ID),
			Idx: int32(i),
		}
	}
	keys.SortKeyIdx(pairs, nil)
	ps := make([]dist.Particle, len(particles))
	ks := make([]uint64, len(particles))
	for i := range pairs {
		ps[i] = particles[pairs[i].Idx]
		ks[i] = pairs[i].Key
	}
	return ps, ks
}

// keyOctant extracts the octant a full-resolution key takes at the given
// tree level (level 0 chooses the root's child).
func keyOctant(k uint64, level int) int {
	return int(k>>(3*uint(keys.MaxBits3D-1-level))) & 7
}

// buildKeyedRange builds the subtree for a contiguous range of the
// key-sorted particle array. Child ranges are found by binary search on
// the octant digit (nondecreasing within a cell's range, because all
// keys share the cell's prefix), so no per-level scatter or scratch
// buffers are needed; leaves subslice the shared sorted array.
func buildKeyedRange(ps []dist.Particle, ks []uint64, box vec.Box, key keys.CellKey, leafCap int, a *nodeArena) *Node {
	n := a.grab()
	n.Box, n.Key = box, key
	n.Count = len(ps)
	if len(ps) == 0 {
		n.Particles = []dist.Particle{}
		return n
	}
	if len(ps) <= leafCap || int(key.Level) >= MaxDepth {
		fillLeaf(n, ps)
		return n
	}
	level := int(key.Level)
	// bounds[o] is the first index whose octant digit is ≥ o.
	var bounds [9]int
	bounds[8] = len(ps)
	for o := 7; o >= 1; o-- {
		lo, hi := 0, bounds[o+1]
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if keyOctant(ks[mid], level) < o {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		bounds[o] = lo
	}
	if buildParallel(len(ps)) {
		var wg sync.WaitGroup
		for o := 0; o < 8; o++ {
			lo, hi := bounds[o], bounds[o+1]
			if lo == hi {
				continue
			}
			wg.Add(1)
			go func(o, lo, hi int) {
				defer wg.Done()
				ca := newNodeArena(hi-lo, leafCap)
				n.Children[o] = buildKeyedRange(ps[lo:hi], ks[lo:hi], box.Octant(o), key.Child(o), leafCap, ca)
			}(o, lo, hi)
		}
		wg.Wait()
		for o := 0; o < 8; o++ {
			if child := n.Children[o]; child != nil {
				n.Mass += child.Mass
				n.COM = n.COM.Add(child.COM.Scale(child.Mass))
			}
		}
	} else {
		for o := 0; o < 8; o++ {
			lo, hi := bounds[o], bounds[o+1]
			if lo == hi {
				continue
			}
			child := buildKeyedRange(ps[lo:hi], ks[lo:hi], box.Octant(o), key.Child(o), leafCap, a)
			n.Children[o] = child
			n.Mass += child.Mass
			n.COM = n.COM.Add(child.COM.Scale(child.Mass))
		}
	}
	if n.Mass > 0 {
		n.COM = n.COM.Scale(1 / n.Mass)
	}
	return n
}

// BuildExpansions populates every node's multipole expansion of the given
// degree about its centre of mass: P2M at the leaves, M2M (exact
// translation) on the way up. After this call the tree can serve
// potential-mode traversals.
func (t *Tree) BuildExpansions(degree int) {
	t.Degree = degree
	buildExp(t.Root, degree)
}

func buildExp(n *Node, degree int) {
	if n == nil || n.Count == 0 {
		return
	}
	e := phys.NewExpansion(degree, n.COM)
	if n.IsLeaf() {
		for i := range n.Particles {
			e.AddParticle(n.Particles[i].Mass, n.Particles[i].Pos)
		}
	} else {
		for _, c := range n.Children {
			if c == nil || c.Count == 0 {
				continue
			}
			buildExp(c, degree)
			e.Add(c.Exp.TranslateTo(n.COM))
		}
	}
	n.Exp = e
}

// ResetLoads zeroes the interaction counters throughout the tree.
func (t *Tree) ResetLoads() { resetLoad(t.Root) }

func resetLoad(n *Node) {
	if n == nil {
		return
	}
	n.Load = 0
	for _, c := range n.Children {
		resetLoad(c)
	}
}

// SumLoads propagates leaf/interior interaction counts up the tree so
// that each node's Load is the total for its subtree, and returns the
// root total W (Section 3.3.3: "After the force computation phase, this
// variable is summed up along the tree").
func (t *Tree) SumLoads() int64 { return sumLoad(t.Root) }

func sumLoad(n *Node) int64 {
	if n == nil {
		return 0
	}
	for _, c := range n.Children {
		n.Load += sumLoad(c)
	}
	return n.Load
}

// Stats summarizes a traversal's work in the units of the paper's cost
// model.
type Stats struct {
	MACTests int64 // multipole acceptance tests evaluated
	PC       int64 // particle–cluster interactions
	PP       int64 // particle–particle interactions
}

// Add accumulates other into s.
func (s *Stats) Add(o Stats) {
	s.MACTests += o.MACTests
	s.PC += o.PC
	s.PP += o.PP
}

// Flops converts the counts to floating-point operations at the given
// multipole degree.
func (s Stats) Flops(degree int) float64 {
	return float64(s.MACTests)*phys.MACFlops +
		float64(s.PC)*phys.InteractionFlops(degree) +
		float64(s.PP)*phys.PPFlops
}

// Interactions returns the paper's F measure: total force computations.
func (s Stats) Interactions() int64 { return s.PC + s.PP }

// Accepts reports whether the multipole acceptance criterion holds for
// node n observed from pos: the ratio of the box dimension to the
// distance from the point to the node's centre of mass is below α.
func Accepts(n *Node, pos vec.V3, alpha float64) bool {
	d := pos.Dist(n.COM)
	if d == 0 {
		return false
	}
	return n.Box.LongestSide()/d < alpha
}

// AccelAt computes the Barnes–Hut monopole approximation of the
// gravitational acceleration at pos. selfID excludes that particle from
// near-field sums (pass a negative value for field points). Interaction
// counts are recorded into stats (which may be nil) and into the per-node
// Load counters.
func (t *Tree) AccelAt(pos vec.V3, selfID int, alpha, eps float64, stats *Stats) vec.V3 {
	var s Stats
	a := accelNode(t.Root, pos, selfID, alpha, eps, &s, nil)
	if stats != nil {
		stats.Add(s)
	}
	return a
}

// accelNode descends the tree accumulating the acceleration at pos. Load
// counts go into loads (indexed by loadIdx) when non-nil — the per-worker
// shard of a parallel traversal — and directly into n.Load otherwise.
func accelNode(n *Node, pos vec.V3, selfID int, alpha, eps float64, s *Stats, loads []int64) vec.V3 {
	if n == nil || n.Count == 0 {
		return vec.V3{}
	}
	if n.IsLeaf() {
		var a vec.V3
		for i := range n.Particles {
			p := &n.Particles[i]
			if p.ID == selfID {
				continue
			}
			a = a.Add(phys.Accel(pos, p.Pos, p.Mass, eps))
			s.PP++
		}
		if loads != nil {
			loads[n.loadIdx] += int64(len(n.Particles))
		} else {
			n.Load += int64(len(n.Particles))
		}
		return a
	}
	s.MACTests++
	if Accepts(n, pos, alpha) {
		s.PC++
		if loads != nil {
			loads[n.loadIdx]++
		} else {
			n.Load++
		}
		return phys.Accel(pos, n.COM, n.Mass, eps)
	}
	var a vec.V3
	for _, c := range n.Children {
		if c != nil {
			a = a.Add(accelNode(c, pos, selfID, alpha, eps, s, loads))
		}
	}
	return a
}

// PotentialAt computes the Barnes–Hut potential at pos using the nodes'
// degree-k multipole expansions (BuildExpansions must have run). selfID
// excludes that particle from near-field sums.
func (t *Tree) PotentialAt(pos vec.V3, selfID int, alpha float64, stats *Stats) float64 {
	if t.Degree < 0 {
		panic("tree: PotentialAt requires BuildExpansions")
	}
	var s Stats
	phi := potNode(t.Root, pos, selfID, alpha, &s, nil)
	if stats != nil {
		stats.Add(s)
	}
	return phi
}

// potNode mirrors accelNode for potential-mode traversals; see there for
// the loads-shard convention.
func potNode(n *Node, pos vec.V3, selfID int, alpha float64, s *Stats, loads []int64) float64 {
	if n == nil || n.Count == 0 {
		return 0
	}
	if n.IsLeaf() {
		var phi float64
		for i := range n.Particles {
			p := &n.Particles[i]
			if p.ID == selfID {
				continue
			}
			phi += phys.Potential(pos, p.Pos, p.Mass, 0)
			s.PP++
		}
		if loads != nil {
			loads[n.loadIdx] += int64(len(n.Particles))
		} else {
			n.Load += int64(len(n.Particles))
		}
		return phi
	}
	s.MACTests++
	if Accepts(n, pos, alpha) {
		s.PC++
		if loads != nil {
			loads[n.loadIdx]++
		} else {
			n.Load++
		}
		return n.Exp.EvalPotential(pos)
	}
	var phi float64
	for _, c := range n.Children {
		if c != nil {
			phi += potNode(c, pos, selfID, alpha, s, loads)
		}
	}
	return phi
}

// AccelFrom computes the monopole-approximation acceleration at pos due
// to the subtree rooted at n, applying the MAC at every internal node
// (including n itself). Used by the parallel engines, where a processor
// serves a shipped particle against the subtree under one of its branch
// nodes.
func AccelFrom(n *Node, pos vec.V3, selfID int, alpha, eps float64, stats *Stats) vec.V3 {
	var s Stats
	a := accelNode(n, pos, selfID, alpha, eps, &s, nil)
	if stats != nil {
		stats.Add(s)
	}
	return a
}

// PotentialFrom is AccelFrom for degree-k potential traversals; the
// subtree's expansions must have been built.
func PotentialFrom(n *Node, pos vec.V3, selfID int, alpha float64, stats *Stats) float64 {
	var s Stats
	phi := potNode(n, pos, selfID, alpha, &s, nil)
	if stats != nil {
		stats.Add(s)
	}
	return phi
}

// SumLoadsNode aggregates interaction counts up the subtree rooted at n
// (destructively, like Tree.SumLoads) and returns the subtree total.
func SumLoadsNode(n *Node) int64 { return sumLoad(n) }

// BuildNodeExpansions populates multipole expansions of the given degree
// for the subtree rooted at n.
func BuildNodeExpansions(n *Node, degree int) { buildExp(n, degree) }

// ParticleLevels returns the sum over all nodes of their particle counts,
// i.e. the total number of particle–level hops performed while building
// the subtree — the unit of the tree-construction cost model.
func ParticleLevels(n *Node) int64 {
	if n == nil {
		return 0
	}
	total := int64(n.Count)
	for _, c := range n.Children {
		total += ParticleLevels(c)
	}
	return total
}

// CountNodes returns the number of nodes in the subtree rooted at n.
func CountNodes(n *Node) int { return countNodes(n) }

// indexLoads assigns each node its depth-first position and returns the
// nodes in that order, so a parallel traversal can accumulate Load into
// flat per-worker shards and merge them back after the workers join.
func (t *Tree) indexLoads() []*Node {
	nodes := make([]*Node, 0, 256)
	t.Walk(func(n *Node) bool {
		n.loadIdx = int32(len(nodes))
		nodes = append(nodes, n)
		return true
	})
	return nodes
}

// AccelAll computes accelerations for every particle in ps against the
// tree, returning one acceleration per particle and the combined stats.
//
// The loop runs across all cores, but the results — accelerations, Stats,
// and per-node Load counters — are bit-identical to the sequential loop:
// each particle's traversal is independent, and the integer counters are
// accumulated in per-worker shards merged exactly after the join.
func (t *Tree) AccelAll(ps []dist.Particle, alpha, eps float64) ([]vec.V3, Stats) {
	out := make([]vec.V3, len(ps))
	workers := compute.Workers(len(ps))
	if workers <= 1 {
		var s Stats
		for i := range ps {
			out[i] = t.AccelAt(ps[i].Pos, ps[i].ID, alpha, eps, &s)
		}
		return out, s
	}
	nodes := t.indexLoads()
	shardStats := make([]Stats, workers)
	shardLoads := make([][]int64, workers)
	compute.ParallelBlocks(len(ps), func(w, lo, hi int) {
		loads := make([]int64, len(nodes))
		s := &shardStats[w]
		for i := lo; i < hi; i++ {
			out[i] = accelNode(t.Root, ps[i].Pos, ps[i].ID, alpha, eps, s, loads)
		}
		shardLoads[w] = loads
	})
	var s Stats
	for w := 0; w < workers; w++ {
		s.Add(shardStats[w])
		for j, v := range shardLoads[w] {
			if v != 0 {
				nodes[j].Load += v
			}
		}
	}
	return out, s
}

// PotentialAll computes potentials for every particle in ps. Like
// AccelAll it runs multi-core with results bit-identical to the
// sequential loop.
func (t *Tree) PotentialAll(ps []dist.Particle, alpha float64) ([]float64, Stats) {
	out := make([]float64, len(ps))
	workers := compute.Workers(len(ps))
	if workers <= 1 {
		var s Stats
		for i := range ps {
			out[i] = t.PotentialAt(ps[i].Pos, ps[i].ID, alpha, &s)
		}
		return out, s
	}
	if t.Degree < 0 {
		panic("tree: PotentialAll requires BuildExpansions")
	}
	nodes := t.indexLoads()
	shardStats := make([]Stats, workers)
	shardLoads := make([][]int64, workers)
	compute.ParallelBlocks(len(ps), func(w, lo, hi int) {
		loads := make([]int64, len(nodes))
		s := &shardStats[w]
		for i := lo; i < hi; i++ {
			out[i] = potNode(t.Root, ps[i].Pos, ps[i].ID, alpha, s, loads)
		}
		shardLoads[w] = loads
	})
	var s Stats
	for w := 0; w < workers; w++ {
		s.Add(shardStats[w])
		for j, v := range shardLoads[w] {
			if v != 0 {
				nodes[j].Load += v
			}
		}
	}
	return out, s
}

// WalkLeaves visits the leaves in Morton (in-order, left-to-right) order,
// the traversal the DPDA costzones partitioning uses. The visitor returns
// false to stop the walk early.
func (t *Tree) WalkLeaves(visit func(*Node) bool) { walkLeaves(t.Root, visit) }

func walkLeaves(n *Node, visit func(*Node) bool) bool {
	if n == nil || n.Count == 0 {
		return true
	}
	if n.IsLeaf() {
		return visit(n)
	}
	for _, c := range n.Children {
		if !walkLeaves(c, visit) {
			return false
		}
	}
	return true
}

// Walk visits every node in depth-first Morton order.
func (t *Tree) Walk(visit func(*Node) bool) { walkAll(t.Root, visit) }

func walkAll(n *Node, visit func(*Node) bool) bool {
	if n == nil {
		return true
	}
	if !visit(n) {
		return false
	}
	for _, c := range n.Children {
		if !walkAll(c, visit) {
			return false
		}
	}
	return true
}

// Depth returns the maximum depth of the tree (root = 0).
func (t *Tree) Depth() int { return depth(t.Root) }

func depth(n *Node) int {
	if n == nil {
		return -1
	}
	d := 0
	for _, c := range n.Children {
		if cd := depth(c) + 1; cd > d {
			d = cd
		}
	}
	return d
}

// NumNodes returns the number of nodes in the tree.
func (t *Tree) NumNodes() int { return countNodes(t.Root) }

func countNodes(n *Node) int {
	if n == nil {
		return 0
	}
	c := 1
	for _, ch := range n.Children {
		c += countNodes(ch)
	}
	return c
}

// Validate checks structural invariants: particle counts and masses
// aggregate correctly, particles lie in their leaf boxes, and child cells
// match their keys. It returns the first violation found.
func (t *Tree) Validate() error { return validate(t.Root) }

func validate(n *Node) error {
	if n == nil {
		return nil
	}
	if n.IsLeaf() {
		if len(n.Particles) != n.Count {
			return fmt.Errorf("tree: leaf %v count %d but %d particles", n.Key, n.Count, len(n.Particles))
		}
		for i := range n.Particles {
			if !n.Box.Contains(n.Particles[i].Pos) {
				return fmt.Errorf("tree: particle %d outside leaf %v", n.Particles[i].ID, n.Key)
			}
		}
		return nil
	}
	count := 0
	mass := 0.0
	for o, c := range n.Children {
		if c == nil {
			continue
		}
		if c.Key != n.Key.Child(o) {
			return fmt.Errorf("tree: child %d of %v has key %v", o, n.Key, c.Key)
		}
		if err := validate(c); err != nil {
			return err
		}
		count += c.Count
		mass += c.Mass
	}
	if count != n.Count {
		return fmt.Errorf("tree: node %v count %d but children sum %d", n.Key, n.Count, count)
	}
	if math.Abs(mass-n.Mass) > 1e-9*(1+math.Abs(n.Mass)) {
		return fmt.Errorf("tree: node %v mass %v but children sum %v", n.Key, n.Mass, mass)
	}
	return nil
}
