package tree

import (
	"time"

	"repro/internal/dist"
	"repro/internal/keys"
	"repro/internal/vec"
)

// Builder constructs keyed octrees incrementally across time-steps by
// exploiting temporal coherence: particles move little between steps, so
// most of the (key, ID)-sorted order — and most of the tree built over it
// — survives from one step to the next. Step retains the sorted KeyIdx
// permutation, recomputes Morton keys in place, re-sorts with an adaptive
// nearly-sorted pass, then walks the retained tree against the new key
// array: cells whose shape survives (leaves that still fit a leaf,
// internal nodes that stay internal) are refreshed in place, only cells
// whose structure changed are rebuilt on the persistent slab arena, and
// Count/Mass/COM are re-accumulated along the spine between them.
//
// The result is pinned to the from-scratch build: every tree returned by
// Step or StepSorted is bit-identical — node for node, field for field —
// to BuildKeyed over the same particles, because refreshed nodes replay
// exactly the moment arithmetic of the builder and rebuilt ranges run the
// very same buildKeyedRange. This is the two-clock rule: only the host
// clock changes.
//
// The returned *Tree and its leaves alias buffers owned by the Builder
// and are overwritten by the next Step; callers must finish traversing a
// step's tree before starting the next. A Builder is not safe for
// concurrent use.
type Builder struct {
	box     vec.Box // cubed root cell; keys quantize against it
	leafCap int

	t     *Tree
	arena *nodeArena

	// pairs is the retained (key, ID, input-index) permutation from the
	// previous Step; valid only when havePairs (StepSorted bypasses it).
	pairs     []keys.KeyIdx
	scratch   []keys.KeyIdx
	havePairs bool

	// ps/ks hold the current tree's sorted particles and keys; psAlt/ksAlt
	// are the ping-pong buffers the next step gathers into, so the live
	// tree's leaf slices are never scribbled on mid-sync.
	ps, psAlt []dist.Particle
	ks, ksAlt []uint64

	// Arena-growth bookkeeping: rebuilt subtrees allocate fresh nodes
	// while the nodes they replace stay pinned in the slabs. Once the
	// accumulated garbage rivals the live tree, a cold rebuild on a fresh
	// arena lets the old slabs go to the GC.
	coldNodes       int
	rebuiltNodes    int
	rebuiltParallel bool

	last BuildReport
}

// BuildReport describes what the most recent Step did — host-side
// diagnostics only; nothing here feeds back into the simulation.
type BuildReport struct {
	Cold      bool // full from-scratch build (first step, shape change, or arena recycle)
	N         int
	Displaced int // elements the adaptive re-sort had to move
	Refreshed int // leaves kept and refreshed in place
	Rebuilt   int // nodes newly built for structurally-dirtied ranges
	Spine     int // retained internal nodes re-accumulated in place

	KeyDur  time.Duration // Morton key recomputation
	SortDur time.Duration // adaptive (or full) re-sort
	TreeDur time.Duration // diff + refresh + rebuild + spine patching
}

// NewBuilder returns an incremental builder for trees rooted at the cube
// around domain with the given leaf capacity (s parameter; zero means
// DefaultLeafCap). The domain must match across steps — it anchors the
// Morton quantization, exactly as in BuildKeyed.
func NewBuilder(domain vec.Box, leafCap int) *Builder {
	if leafCap <= 0 {
		leafCap = DefaultLeafCap
	}
	return &Builder{box: domain.Cube(), leafCap: leafCap}
}

// Tree returns the tree produced by the most recent Step (nil before the
// first).
func (b *Builder) Tree() *Tree { return b.t }

// Last returns the report for the most recent Step.
func (b *Builder) Last() BuildReport { return b.last }

// Reset drops all retained state; the next Step is a cold build.
func (b *Builder) Reset() {
	b.t = nil
	b.havePairs = false
	b.ps, b.ks = nil, nil
	b.arena = nil
}

// Step builds the octree for the particles, incrementally when the
// retained state applies. The warm path requires the same particles (by
// ID) in the same input order as the previous Step — the invariant of a
// stepped simulation whose authoritative body slice is indexed by ID.
// Any mismatch (length change, reordering, first call) falls back to a
// cold build identical to BuildKeyed.
func (b *Builder) Step(particles []dist.Particle) *Tree {
	n := len(particles)
	if b.t == nil || !b.havePairs || n != len(b.ps) || n == 0 || b.arenaStale() {
		return b.cold(particles)
	}
	t0 := time.Now()
	// Recompute the Morton keys in place over the retained sorted
	// permutation. pairs[i].Idx addresses the input slice; the ID guard
	// detects any reordering of it.
	pairs := b.pairs
	for i := range pairs {
		p := &particles[pairs[i].Idx]
		if int32(p.ID) != pairs[i].ID {
			return b.cold(particles)
		}
		pairs[i].Key = uint64(keys.PointKey3(p.Pos, b.box, keys.MaxBits3D))
	}
	keyDur := time.Since(t0)

	t0 = time.Now()
	displaced := keys.SortKeyIdxAdaptive(pairs, b.scratch)
	sortDur := time.Since(t0)

	t0 = time.Now()
	newPs, newKs := b.spareBuffers(n)
	for i := range pairs {
		newPs[i] = particles[pairs[i].Idx]
		newKs[i] = pairs[i].Key
	}
	b.sync(newPs, newKs)
	b.last = BuildReport{
		N:         n,
		Displaced: displaced,
		Refreshed: b.last.Refreshed,
		Rebuilt:   b.last.Rebuilt,
		Spine:     b.last.Spine,
		KeyDur:    keyDur,
		SortDur:   sortDur,
		TreeDur:   time.Since(t0),
	}
	return b.t
}

// StepSorted is Step for callers that already hold the particles in
// (key, ID)-sorted order alongside the key slice — the invariant the
// DPDA migration phase maintains. No retained permutation is needed: the
// given order is diffed directly against the previous step's. ks[i] must
// be the full-resolution Morton key of sorted[i] quantized against this
// builder's domain; a defensive scan falls back to sorting internally if
// the order does not hold. The input slices are copied; the caller keeps
// ownership.
func (b *Builder) StepSorted(sorted []dist.Particle, ks []uint64) *Tree {
	n := len(sorted)
	if len(ks) != n {
		panic("tree: StepSorted key slice length mismatch")
	}
	b.havePairs = false
	if !sortedKeyID(sorted, ks) {
		sorted, ks = resortKeyID(sorted, ks)
	}
	if b.t == nil || n != len(b.ps) || n == 0 || b.arenaStale() {
		return b.coldSorted(sorted, ks)
	}
	t0 := time.Now()
	newPs, newKs := b.spareBuffers(n)
	copy(newPs, sorted)
	copy(newKs, ks)
	b.sync(newPs, newKs)
	b.last = BuildReport{
		N:         n,
		Refreshed: b.last.Refreshed,
		Rebuilt:   b.last.Rebuilt,
		Spine:     b.last.Spine,
		TreeDur:   time.Since(t0),
	}
	return b.t
}

// arenaStale reports whether rebuild garbage has outgrown the live tree,
// the signal to recycle everything with a cold build on a fresh arena.
func (b *Builder) arenaStale() bool {
	return b.rebuiltNodes > b.coldNodes+64
}

// spareBuffers returns the ping-pong particle/key buffers for the next
// sorted snapshot, allocating them on the first warm step (one-shot cold
// builds never pay for the second copy).
func (b *Builder) spareBuffers(n int) ([]dist.Particle, []uint64) {
	if cap(b.psAlt) < n {
		b.psAlt = make([]dist.Particle, n)
	}
	if cap(b.ksAlt) < n {
		b.ksAlt = make([]uint64, n)
	}
	return b.psAlt[:n], b.ksAlt[:n]
}

// cold runs the from-scratch path — exactly BuildKeyed — while priming
// the retained state for subsequent warm steps.
func (b *Builder) cold(particles []dist.Particle) *Tree {
	n := len(particles)
	t0 := time.Now()
	if cap(b.pairs) < n {
		b.pairs = make([]keys.KeyIdx, n)
	}
	pairs := b.pairs[:n]
	b.pairs = pairs
	for i := range particles {
		pairs[i] = keys.KeyIdx{
			Key: uint64(keys.PointKey3(particles[i].Pos, b.box, keys.MaxBits3D)),
			ID:  int32(particles[i].ID),
			Idx: int32(i),
		}
	}
	keyDur := time.Since(t0)
	t0 = time.Now()
	if cap(b.scratch) < n {
		b.scratch = make([]keys.KeyIdx, n)
	}
	keys.SortKeyIdx(pairs, b.scratch)
	sortDur := time.Since(t0)
	t0 = time.Now()
	ps := b.ps
	if cap(ps) < n {
		ps = make([]dist.Particle, n)
	}
	ps = ps[:n]
	ks := b.ks
	if cap(ks) < n {
		ks = make([]uint64, n)
	}
	ks = ks[:n]
	for i := range pairs {
		ps[i] = particles[pairs[i].Idx]
		ks[i] = pairs[i].Key
	}
	b.havePairs = true
	t := b.coldBuild(ps, ks)
	b.last = BuildReport{Cold: true, N: n, KeyDur: keyDur, SortDur: sortDur, TreeDur: time.Since(t0)}
	return t
}

// coldSorted is the cold path over an already-sorted snapshot.
func (b *Builder) coldSorted(sorted []dist.Particle, ks []uint64) *Tree {
	n := len(sorted)
	t0 := time.Now()
	ps := b.ps
	if cap(ps) < n {
		ps = make([]dist.Particle, n)
	}
	ps = ps[:n]
	kk := b.ks
	if cap(kk) < n {
		kk = make([]uint64, n)
	}
	kk = kk[:n]
	copy(ps, sorted)
	copy(kk, ks)
	t := b.coldBuild(ps, kk)
	b.last = BuildReport{Cold: true, N: n, TreeDur: time.Since(t0)}
	return t
}

// coldBuild installs ps/ks as the current snapshot and builds the whole
// tree over a fresh arena.
func (b *Builder) coldBuild(ps []dist.Particle, ks []uint64) *Tree {
	b.ps, b.ks = ps, ks
	b.arena = newNodeArena(len(ps), b.leafCap)
	b.t = &Tree{LeafCap: b.leafCap, Degree: -1}
	b.t.Root = buildKeyedRange(ps, ks, b.box, keys.CellKey{}, b.leafCap, b.arena)
	b.coldNodes = countNodes(b.t.Root)
	b.rebuiltNodes = 0
	return b.t
}

// sync reconciles the retained tree with the new sorted snapshot and
// swaps the ping-pong buffers. On return b.ps/b.ks hold the new snapshot
// and every leaf of b.t aliases it.
func (b *Builder) sync(newPs []dist.Particle, newKs []uint64) {
	b.last.Refreshed, b.last.Rebuilt, b.last.Spine = 0, 0, 0
	b.rebuiltParallel = false
	root := b.syncNode(b.t.Root, 0, len(newPs), b.box, keys.CellKey{}, newPs, newKs)
	b.t.Root = root
	b.t.Degree = -1 // expansions, if any were built, were invalidated
	b.ps, b.psAlt = newPs, b.ps
	b.ks, b.ksAlt = newKs, b.ks
}

// syncNode reconciles the cell (box, key), whose new content is
// newPs[lo:hi), against its previous subtree old. The diff is
// structural, not positional: which particles land in the cell is fully
// determined by the parent's octant partition of the new key array, so
// the only question per cell is whether the retained node's shape (leaf
// vs internal) still matches what the from-scratch build would produce
// there. Low-order key bits change whenever a particle moves at all —
// comparing raw key sequences would dirty every leaf every step — but
// the tree's shape only depends on octant digits down to each cell's
// level, which small displacements rarely flip.
//
// Three outcomes, in order of preference:
//
//   - refresh: the new range still fits a leaf and the old node is one.
//     The node keeps its identity (Box, Key, arena slot); fillLeaf —
//     the literal cold-path function — re-aliases the particle slice
//     and replays the moment arithmetic, so the result is bit-identical
//     to a fresh build no matter how the particles inside moved.
//   - descend: both old and new are internal cells, so the children are
//     reconciled octant by octant and this spine node's Count/Mass/COM
//     are re-accumulated exactly as buildKeyedRange would.
//   - rebuild: the shape changed (cell newly occupied, leaf split past
//     leafCap, or subtree collapsed to leaf size). buildKeyedRange — the
//     literal cold-path function — runs over the range on the persistent
//     arena, so conservative dirtying can never change the result, only
//     the host clock.
func (b *Builder) syncNode(old *Node, lo, hi int, box vec.Box, key keys.CellKey, newPs []dist.Particle, newKs []uint64) *Node {
	n := hi - lo
	level := int(key.Level)
	if n <= b.leafCap || level >= MaxDepth {
		if old != nil && old.IsLeaf() {
			b.refreshLeaf(old, newPs[lo:hi])
			return old
		}
		return b.rebuild(lo, hi, box, key, newPs, newKs)
	}
	if old == nil || old.IsLeaf() {
		return b.rebuild(lo, hi, box, key, newPs, newKs)
	}
	// Both internal: reconcile children octant by octant. bounds[o] is
	// the first new index whose octant digit is ≥ o (the same binary
	// search as buildKeyedRange).
	var bounds [9]int
	bounds[0], bounds[8] = lo, hi
	for o := 7; o >= 1; o-- {
		blo, bhi := lo, bounds[o+1]
		for blo < bhi {
			mid := int(uint(blo+bhi) >> 1)
			if keyOctant(newKs[mid], level) < o {
				blo = mid + 1
			} else {
				bhi = mid
			}
		}
		bounds[o] = blo
	}
	old.Count = n
	old.Mass = 0
	old.COM = vec.V3{}
	old.Load = 0
	old.Exp = nil
	b.last.Spine++
	for o := 0; o < 8; o++ {
		clo, chi := bounds[o], bounds[o+1]
		if clo == chi {
			old.Children[o] = nil
			continue
		}
		child := b.syncNode(old.Children[o], clo, chi, box.Octant(o), key.Child(o), newPs, newKs)
		old.Children[o] = child
		old.Mass += child.Mass
		old.COM = old.COM.Add(child.COM.Scale(child.Mass))
	}
	if old.Mass > 0 {
		old.COM = old.COM.Scale(1 / old.Mass)
	}
	return old
}

// rebuild replaces a dirtied range with a from-scratch subtree on the
// persistent arena and accounts the garbage this strands.
func (b *Builder) rebuild(lo, hi int, box vec.Box, key keys.CellKey, newPs []dist.Particle, newKs []uint64) *Node {
	sub := buildKeyedRange(newPs[lo:hi], newKs[lo:hi], box, key, b.leafCap, b.arena)
	c := countNodes(sub)
	b.rebuiltNodes += c
	b.last.Rebuilt += c
	return sub
}

// refreshLeaf rewires a retained leaf onto the new particle snapshot,
// replaying exactly the arithmetic (and accumulation order) of the
// from-scratch build, so the refreshed leaf is bit-identical to what
// buildKeyedRange would produce.
func (b *Builder) refreshLeaf(n *Node, ps []dist.Particle) {
	b.last.Refreshed++
	n.Count = len(ps)
	n.Mass = 0
	n.COM = vec.V3{}
	n.Load = 0
	n.Exp = nil
	n.Particles = nil
	fillLeaf(n, ps)
}

// sortedKeyID reports whether ps is in (ks, ID) order.
func sortedKeyID(ps []dist.Particle, ks []uint64) bool {
	for i := 1; i < len(ps); i++ {
		if ks[i] < ks[i-1] || (ks[i] == ks[i-1] && ps[i].ID < ps[i-1].ID) {
			return false
		}
	}
	return true
}

// resortKeyID sorts a (particle, key) snapshot that violated the caller's
// sortedness contract — the defensive fallback of StepSorted.
func resortKeyID(ps []dist.Particle, ks []uint64) ([]dist.Particle, []uint64) {
	pairs := make([]keys.KeyIdx, len(ps))
	for i := range ps {
		pairs[i] = keys.KeyIdx{Key: ks[i], ID: int32(ps[i].ID), Idx: int32(i)}
	}
	keys.SortKeyIdx(pairs, nil)
	outPs := make([]dist.Particle, len(ps))
	outKs := make([]uint64, len(ps))
	for i := range pairs {
		outPs[i] = ps[pairs[i].Idx]
		outKs[i] = pairs[i].Key
	}
	return outPs, outKs
}
