package tree

import (
	"testing"

	"repro/internal/direct"
	"repro/internal/dist"
	"repro/internal/phys"
	"repro/internal/vec"
)

// degeneratePairs builds the paper's adversarial case: tight particle
// pairs separated by huge distances. A plain octree needs one subdivision
// per halving of the separation; box collapsing resolves each pair in
// O(1) cells.
func degeneratePairs(pairs int, sep float64) []dist.Particle {
	var ps []dist.Particle
	id := 0
	for i := 0; i < pairs; i++ {
		base := vec.V3{X: float64(i) * 1000, Y: float64(i%3) * 700, Z: float64(i%5) * 300}
		ps = append(ps,
			dist.Particle{ID: id, Mass: 1, Pos: base},
			dist.Particle{ID: id + 1, Mass: 1, Pos: base.Add(vec.V3{X: sep})},
		)
		id += 2
	}
	return ps
}

func TestCollapseReducesNodeCount(t *testing.T) {
	ps := degeneratePairs(8, 1e-9) // pairs 1e-9 apart, kilounits apart
	plain := Build(ps, Options{LeafCap: 1})
	collapsed := Build(ps, Options{LeafCap: 1, CollapseBoxes: true})
	if err := collapsed.Validate(); err != nil {
		t.Fatal(err)
	}
	// Plain build hits the depth cap and stores pairs in shared leaves;
	// the collapsed build separates them with few nodes.
	if collapsed.NumNodes() >= plain.NumNodes() {
		t.Fatalf("collapse did not reduce nodes: %d vs %d", collapsed.NumNodes(), plain.NumNodes())
	}
	// Collapsed tree actually separates every pair into singleton leaves.
	collapsed.WalkLeaves(func(n *Node) bool {
		if len(n.Particles) > 1 {
			t.Errorf("collapsed leaf still holds %d particles", len(n.Particles))
		}
		return true
	})
}

func TestCollapseSeparatesArbitrarilyTightPairs(t *testing.T) {
	// Separations far below the 21-level Morton resolution (cell size at
	// MaxDepth ≈ 0.002 for this domain, separation 1e-12 ≈ a few ulps):
	// the plain build gives up (MaxDepth leaf); collapsing keeps
	// splitting.
	ps := degeneratePairs(3, 1e-12)
	collapsed := Build(ps, Options{LeafCap: 1, CollapseBoxes: true})
	single := 0
	collapsed.WalkLeaves(func(n *Node) bool {
		if len(n.Particles) == 1 {
			single++
		}
		return true
	})
	if single != 6 {
		t.Fatalf("%d singleton leaves, want 6", single)
	}
}

func TestCollapseCoincidentParticlesTerminate(t *testing.T) {
	ps := make([]dist.Particle, 10)
	for i := range ps {
		ps[i] = dist.Particle{ID: i, Mass: 1, Pos: vec.V3{X: 5, Y: 5, Z: 5}}
	}
	tr := Build(ps, Options{LeafCap: 2, CollapseBoxes: true})
	if tr.Root.Count != 10 {
		t.Fatalf("count = %d", tr.Root.Count)
	}
}

func TestCollapsedForcesMatchDirect(t *testing.T) {
	s := dist.MustNamed("plummer", 1500, 51)
	tr := Build(s.Particles, Options{LeafCap: 8, CollapseBoxes: true, Domain: s.Domain})
	got, _ := tr.AccelAll(s.Particles, 0.6, 0.01)
	want := direct.AccelsParallel(s.Particles, 0.01)
	if e := phys.FractionalErrorV3(want, got); e > 0.01 {
		t.Fatalf("collapsed-tree force error %v", e)
	}
}

func TestCollapseKeepsAggregates(t *testing.T) {
	s := dist.MustNamed("s_1g_a", 2000, 52)
	plain := Build(s.Particles, Options{LeafCap: 8, Domain: s.Domain})
	collapsed := Build(s.Particles, Options{LeafCap: 8, CollapseBoxes: true, Domain: s.Domain})
	if collapsed.Root.Count != plain.Root.Count {
		t.Fatal("counts differ")
	}
	if collapsed.Root.COM.Dist(plain.Root.COM) > 1e-9 {
		t.Fatal("COM differs")
	}
	// On a concentrated distribution collapsing prunes the empty upper
	// levels, so it should never need more nodes.
	if collapsed.NumNodes() > plain.NumNodes() {
		t.Fatalf("collapse grew the tree: %d vs %d", collapsed.NumNodes(), plain.NumNodes())
	}
}
