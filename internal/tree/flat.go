package tree

import (
	"math"

	"repro/internal/compute"
	"repro/internal/dist"
	"repro/internal/phys"
	"repro/internal/vec"
)

// FlatTree is a structure-of-arrays linearization of a Tree in DFS
// (Morton) order: one column per per-node quantity plus skip pointers,
// and the leaf particles transposed into dist.Particles columns in leaf
// order. Traversals walk contiguous arrays instead of chasing ~200-byte
// Node records, and the box side length is hoisted out of every MAC
// test.
//
// The kernels produce results bit-identical to the pointer traversals
// (Tree.AccelAll / Tree.PotentialAll): each particle's interaction list
// is gathered in exactly the DFS visit order, and subtree open/close
// markers in the list replay the recursion's hierarchical summation
// order, because floating-point addition is not associative — a flat
// left-to-right accumulation over the same contributions would round
// differently.
//
// A FlatTree snapshots the Tree at Flatten time; rebuild or refresh the
// tree and Flatten again before the next sweep. Load counters are
// written back to the underlying *Node records. At most one sweep may
// run at a time (matching the Tree traversals, which share Load state).
type FlatTree struct {
	t     *Tree
	nodes []*Node

	comX, comY, comZ []float64
	mass             []float64
	side             []float64 // precomputed Box.LongestSide per node
	skip             []int32   // index just past node i's subtree
	leafLo, leafHi   []int32   // leaf particle range in cols; -1 for internal
	exps             []*phys.Expansion

	cols dist.Particles // leaf particles, transposed, DFS leaf order

	scratch []flatScratch // per-worker sweep state, reused across sweeps
}

// listEntry is one step of a gathered interaction list. b >= 0 encodes a
// leaf particle range cols[a:b); negative b values are the marker kinds
// below with a as the node index.
type listEntry struct{ a, b int32 }

const (
	entryPC   int32 = -1 // particle–cluster interaction with node a
	entryPush int32 = -2 // open node a: start a nested partial sum
	entryPop  int32 = -3 // close the innermost open node
)

// Root dispositions returned by gather; the root's value is the
// traversal result itself, never added into an enclosing accumulator.
const (
	rootOpen int8 = iota
	rootLeaf
	rootPC
)

type flatScratch struct {
	loads []int64
	list  []listEntry
	ends  []int32
	acc   []vec.V3
}

func (sc *flatScratch) resetLoads(n int) {
	if cap(sc.loads) < n {
		sc.loads = make([]int64, n)
		return
	}
	sc.loads = sc.loads[:n]
	clear(sc.loads)
}

// Flatten linearizes t, reusing reuse's buffers when non-nil (pass the
// previous step's FlatTree to amortize the column allocations).
func Flatten(t *Tree, reuse *FlatTree) *FlatTree {
	f := reuse
	if f == nil {
		f = &FlatTree{}
	}
	f.t = t
	f.nodes = f.nodes[:0]
	f.comX, f.comY, f.comZ = f.comX[:0], f.comY[:0], f.comZ[:0]
	f.mass = f.mass[:0]
	f.side = f.side[:0]
	f.skip = f.skip[:0]
	f.leafLo, f.leafHi = f.leafLo[:0], f.leafHi[:0]
	f.exps = f.exps[:0]
	f.cols.Reset()
	f.flatten(t.Root)
	return f
}

// Tree returns the tree this FlatTree linearizes.
func (f *FlatTree) Tree() *Tree { return f.t }

// NumNodes returns the number of linearized nodes.
func (f *FlatTree) NumNodes() int { return len(f.nodes) }

func (f *FlatTree) flatten(n *Node) {
	idx := len(f.nodes)
	f.nodes = append(f.nodes, n)
	f.comX = append(f.comX, n.COM.X)
	f.comY = append(f.comY, n.COM.Y)
	f.comZ = append(f.comZ, n.COM.Z)
	f.mass = append(f.mass, n.Mass)
	f.side = append(f.side, n.Box.LongestSide())
	f.exps = append(f.exps, n.Exp)
	f.skip = append(f.skip, 0)
	if n.IsLeaf() {
		lo := int32(f.cols.Len())
		f.cols.Append(n.Particles)
		f.leafLo = append(f.leafLo, lo)
		f.leafHi = append(f.leafHi, int32(f.cols.Len()))
	} else {
		f.leafLo = append(f.leafLo, -1)
		f.leafHi = append(f.leafHi, -1)
		for _, c := range n.Children {
			if c != nil {
				f.flatten(c)
			}
		}
	}
	f.skip[idx] = int32(len(f.nodes))
}

// accepts is Accepts over the flat columns — the same vec arithmetic on
// the same values, with the box side precomputed.
func (f *FlatTree) accepts(i int32, pos vec.V3, alpha float64) bool {
	d := pos.Dist(vec.V3{X: f.comX[i], Y: f.comY[i], Z: f.comZ[i]})
	if d == 0 {
		return false
	}
	return f.side[i]/d < alpha
}

// gather walks the flat tree once for pos, recording the interaction
// list (leaf ranges, accepted clusters, and subtree open/close markers)
// in DFS visit order, and charging MAC tests, PC counts, and per-node
// loads exactly as the pointer traversal does. The list is left in
// sc.list; the returned kind tells the evaluator how to treat the root.
func (f *FlatTree) gather(sc *flatScratch, pos vec.V3, alpha float64, s *Stats) int8 {
	list := sc.list[:0]
	loads := sc.loads
	if lo := f.leafLo[0]; lo >= 0 {
		hi := f.leafHi[0]
		loads[0] += int64(hi - lo)
		sc.list = append(list, listEntry{lo, hi})
		return rootLeaf
	}
	s.MACTests++
	if f.accepts(0, pos, alpha) {
		s.PC++
		loads[0]++
		sc.list = append(list, listEntry{0, entryPC})
		return rootPC
	}
	ends := sc.ends[:0]
	n := int32(len(f.nodes))
	for i := int32(1); i < n; {
		for len(ends) > 0 && ends[len(ends)-1] == i {
			ends = ends[:len(ends)-1]
			list = append(list, listEntry{0, entryPop})
		}
		if lo := f.leafLo[i]; lo >= 0 {
			hi := f.leafHi[i]
			loads[i] += int64(hi - lo)
			list = append(list, listEntry{lo, hi})
			i = f.skip[i]
			continue
		}
		s.MACTests++
		if f.accepts(i, pos, alpha) {
			s.PC++
			loads[i]++
			list = append(list, listEntry{i, entryPC})
			i = f.skip[i]
			continue
		}
		list = append(list, listEntry{i, entryPush})
		ends = append(ends, f.skip[i])
		i++
	}
	for range ends {
		list = append(list, listEntry{0, entryPop})
	}
	sc.list, sc.ends = list, ends[:0]
	return rootOpen
}

// accelOne walks the flat tree once for one particle, evaluating
// accepted clusters and leaf ranges inline as the traversal discovers
// them. The visit order, MAC tests, per-node Load charges, and — because
// floating-point addition is not associative — the hierarchical
// partial-sum structure are exactly those of gather followed by a list
// replay: opening a node pushes the running sum and starts a fresh
// accumulator, closing it folds the child sum into the parent, so the
// reduction tree is unchanged. Fusing the two passes eliminates the
// interaction-list write and re-read, which is pure memory traffic.
//
// The MAC arithmetic and phys.Accel are hand-inlined with one shared
// difference vector: Accepts computes ‖pos−com‖ while phys.Accel uses
// com−pos, but squaring erases the sign bit-exactly, so the squared norm
// (and its summation order, matching vec.V3.Norm2) serves both, and the
// accepted-cluster kernel reuses it as phys.Accel's d.Norm2() term.
func (f *FlatTree) accelOne(sc *flatScratch, pos vec.V3, selfID int, alpha, eps float64, s *Stats) vec.V3 {
	self := int32(selfID)
	loads := sc.loads
	e2 := eps * eps
	comX, comY, comZ := f.comX, f.comY, f.comZ
	mass, side, skip := f.mass, f.side, f.skip
	leafLo, leafHi := f.leafLo, f.leafHi
	ids, px, py, pz, ms := f.cols.ID, f.cols.PosX, f.cols.PosY, f.cols.PosZ, f.cols.Mass

	// leaf folds cols[lo:hi) from a zero accumulator in column order —
	// the recursion's per-leaf partial sum, phys.Accel term by term.
	leaf := func(lo, hi int32) vec.V3 {
		var ax, ay, az float64
		for j := lo; j < hi; j++ {
			if ids[j] == self {
				continue
			}
			dx, dy, dz := px[j]-pos.X, py[j]-pos.Y, pz[j]-pos.Z
			r2 := dx*dx + dy*dy + dz*dz + e2
			if r2 != 0 {
				inv := 1 / math.Sqrt(r2)
				g := phys.G * ms[j] * inv * inv * inv
				ax += g * dx
				ay += g * dy
				az += g * dz
			} else {
				// phys.Accel returns a zero vector here; adding it is
				// not a no-op for signed zeros, so add explicitly.
				ax += 0
				ay += 0
				az += 0
			}
			s.PP++
		}
		return vec.V3{X: ax, Y: ay, Z: az}
	}

	if lo := leafLo[0]; lo >= 0 {
		hi := leafHi[0]
		loads[0] += int64(hi - lo)
		return leaf(lo, hi)
	}
	s.MACTests++
	{
		dx, dy, dz := comX[0]-pos.X, comY[0]-pos.Y, comZ[0]-pos.Z
		n2 := dx*dx + dy*dy + dz*dz
		if d := math.Sqrt(n2); d != 0 && side[0]/d < alpha {
			s.PC++
			loads[0]++
			inv := 1 / math.Sqrt(n2+e2) // n2 > 0, so never a zero divide
			g := phys.G * mass[0] * inv * inv * inv
			return vec.V3{X: g * dx, Y: g * dy, Z: g * dz}
		}
	}
	var top vec.V3
	stack := sc.acc[:0]
	ends := sc.ends[:0]
	n := int32(len(f.nodes))
	for i := int32(1); i < n; {
		for len(ends) > 0 && ends[len(ends)-1] == i {
			ends = ends[:len(ends)-1]
			top = stack[len(stack)-1].Add(top)
			stack = stack[:len(stack)-1]
		}
		if lo := leafLo[i]; lo >= 0 {
			hi := leafHi[i]
			loads[i] += int64(hi - lo)
			top = top.Add(leaf(lo, hi))
			i = skip[i]
			continue
		}
		s.MACTests++
		dx, dy, dz := comX[i]-pos.X, comY[i]-pos.Y, comZ[i]-pos.Z
		n2 := dx*dx + dy*dy + dz*dz
		if d := math.Sqrt(n2); d != 0 && side[i]/d < alpha {
			s.PC++
			loads[i]++
			inv := 1 / math.Sqrt(n2+e2)
			g := phys.G * mass[i] * inv * inv * inv
			top = vec.V3{X: top.X + g*dx, Y: top.Y + g*dy, Z: top.Z + g*dz}
			i = skip[i]
			continue
		}
		stack = append(stack, top)
		top = vec.V3{}
		ends = append(ends, skip[i])
		i++
	}
	for j := len(ends) - 1; j >= 0; j-- {
		top = stack[j].Add(top)
	}
	sc.acc, sc.ends = stack[:0], ends[:0]
	return top
}

// leafPot mirrors leafAccel for potentials (near-field softening is 0,
// as in the pointer traversal).
func (f *FlatTree) leafPot(lo, hi int32, pos vec.V3, self int32, s *Stats) float64 {
	var phi float64
	ids, px, py, pz, ms := f.cols.ID, f.cols.PosX, f.cols.PosY, f.cols.PosZ, f.cols.Mass
	for j := lo; j < hi; j++ {
		if ids[j] == self {
			continue
		}
		phi += phys.Potential(pos, vec.V3{X: px[j], Y: py[j], Z: pz[j]}, ms[j], 0)
		s.PP++
	}
	return phi
}

// evalPot is evalAccel for potential mode: accepted clusters evaluate
// their multipole expansion.
func (f *FlatTree) evalPot(sc *flatScratch, kind int8, pos vec.V3, selfID int, s *Stats) float64 {
	self := int32(selfID)
	if kind == rootPC {
		return f.exps[sc.list[0].a].EvalPotential(pos)
	}
	if kind == rootLeaf {
		e := sc.list[0]
		return f.leafPot(e.a, e.b, pos, self, s)
	}
	var top float64
	var stack [MaxDepth + 2]float64
	depth := 0
	for _, e := range sc.list {
		switch {
		case e.b >= 0:
			top += f.leafPot(e.a, e.b, pos, self, s)
		case e.b == entryPC:
			top += f.exps[e.a].EvalPotential(pos)
		case e.b == entryPush:
			stack[depth] = top
			depth++
			top = 0
		default:
			depth--
			top = stack[depth] + top
		}
	}
	return top
}

// ensureWorkers sizes the per-worker scratch pool.
func (f *FlatTree) ensureWorkers(w int) {
	for len(f.scratch) < w {
		f.scratch = append(f.scratch, flatScratch{})
	}
}

// AccelAll computes accelerations for every particle against the flat
// tree. Results — accelerations, Stats, and per-node Load counters — are
// bit-identical to Tree.AccelAll on the tree this FlatTree linearizes.
func (f *FlatTree) AccelAll(ps []dist.Particle, alpha, eps float64) ([]vec.V3, Stats) {
	out := make([]vec.V3, len(ps))
	if len(ps) == 0 {
		return out, Stats{}
	}
	workers := compute.Workers(len(ps))
	if workers < 1 {
		workers = 1
	}
	f.ensureWorkers(workers)
	shardStats := make([]Stats, workers)
	compute.ParallelBlocks(len(ps), func(w, lo, hi int) {
		sc := &f.scratch[w]
		sc.resetLoads(len(f.nodes))
		s := &shardStats[w]
		for i := lo; i < hi; i++ {
			out[i] = f.accelOne(sc, ps[i].Pos, ps[i].ID, alpha, eps, s)
		}
	})
	var s Stats
	for w := 0; w < workers; w++ {
		s.Add(shardStats[w])
		for j, v := range f.scratch[w].loads {
			if v != 0 {
				f.nodes[j].Load += v
			}
		}
	}
	return out, s
}

// PotentialAll computes potentials for every particle against the flat
// tree, bit-identical to Tree.PotentialAll. The tree's expansions must
// have been built before Flatten.
func (f *FlatTree) PotentialAll(ps []dist.Particle, alpha float64) ([]float64, Stats) {
	if f.t.Degree < 0 {
		panic("tree: FlatTree.PotentialAll requires BuildExpansions before Flatten")
	}
	out := make([]float64, len(ps))
	if len(ps) == 0 {
		return out, Stats{}
	}
	workers := compute.Workers(len(ps))
	if workers < 1 {
		workers = 1
	}
	f.ensureWorkers(workers)
	shardStats := make([]Stats, workers)
	compute.ParallelBlocks(len(ps), func(w, lo, hi int) {
		sc := &f.scratch[w]
		sc.resetLoads(len(f.nodes))
		s := &shardStats[w]
		for i := lo; i < hi; i++ {
			kind := f.gather(sc, ps[i].Pos, alpha, s)
			out[i] = f.evalPot(sc, kind, ps[i].Pos, ps[i].ID, s)
		}
	})
	var s Stats
	for w := 0; w < workers; w++ {
		s.Add(shardStats[w])
		for j, v := range f.scratch[w].loads {
			if v != 0 {
				f.nodes[j].Load += v
			}
		}
	}
	return out, s
}
