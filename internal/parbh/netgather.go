package parbh

import (
	"fmt"

	"repro/internal/msg"
	"repro/internal/tree"
	"repro/internal/vec"
)

// Distributed result collection. When the machine's ranks span OS
// processes, each process finishes a step holding only its local ranks'
// outputs: per-rank simulated stats, interaction counters, and the
// force/potential values of the particles those ranks owned during the
// force phase. The coordinator (process 0) needs all of them to
// assemble the step Result.
//
// The gather runs over the transport's host channel — the untimed
// control path — never through Proc.Send, so it adds nothing to the
// simulated clock, message counts, or comm volumes. That is what keeps
// a distributed run's simulated metrics bit-identical to the same run
// in one process: the simulated interconnect carried exactly the same
// traffic; only host-side plumbing differs.

// rankOut is one rank's contribution to the step result.
type rankOut struct {
	Rank      int32
	MsgStats  msg.Stats
	TreeStats tree.Stats
	ForceT    float64
	Branches  int32
	// Owned particles at force time: IDs aligned with F (force mode)
	// or P (potential mode).
	IDs []int32
	F   []vec.V3
	P   []float64
}

// stepOutputs bundles one process's local ranks for the gather. Step
// guards against a frame from a mismatched step ever being merged.
type stepOutputs struct {
	Step int
	Outs []rankOut
}

// localRankOut snapshots rank me's outputs after the force phase.
// ownedIDs must be captured before loadBalance reshuffles st.parts.
func localRankOut(e *Engine, me int, ownedIDs []int32, machineStat msg.Stats,
	treeStat tree.Stats, forceT float64, branches int, res *Result) rankOut {

	out := rankOut{
		Rank:      int32(me),
		MsgStats:  machineStat,
		TreeStats: treeStat,
		ForceT:    forceT,
		Branches:  int32(branches),
		IDs:       ownedIDs,
	}
	if res.Accels != nil {
		out.F = make([]vec.V3, len(ownedIDs))
		for i, id := range ownedIDs {
			out.F[i] = res.Accels[id]
		}
	}
	if res.Potentials != nil {
		out.P = make([]float64, len(ownedIDs))
		for i, id := range ownedIDs {
			out.P[i] = res.Potentials[id]
		}
	}
	return out
}

// gatherOutputs completes a distributed step: workers ship their local
// rankOuts to the coordinator; the coordinator merges every remote
// rank's stats and particle values into the shared step arrays. It
// returns an error (instead of hanging) if the transport dies or a
// process reports a mismatched step.
func (e *Engine) gatherOutputs(step int, locals []rankOut, res *Result,
	machineStats []msg.Stats, procStats []tree.Stats, forceTimes []float64,
	branchCounts []int) error {

	m := e.machine
	if m.ProcID() != 0 {
		return m.HostSend(0, stepOutputs{Step: step, Outs: locals})
	}
	needed := m.NumHostProcs() - 1
	for got := 0; got < needed; {
		src, payload, err := m.HostRecv()
		if err != nil {
			return fmt.Errorf("parbh: result gather for step %d: %w", step, err)
		}
		so, ok := payload.(stepOutputs)
		if !ok {
			// Not part of this protocol (e.g. a service-level control
			// message that raced in); the engine owns the host channel
			// during a step, so this is a wiring bug.
			return fmt.Errorf("parbh: unexpected host payload %T from proc %d during step gather", payload, src)
		}
		if so.Step != step {
			return fmt.Errorf("parbh: proc %d reported step %d during step %d gather", src, so.Step, step)
		}
		for _, out := range so.Outs {
			rk := int(out.Rank)
			if rk < 0 || rk >= len(machineStats) {
				return fmt.Errorf("parbh: proc %d reported out-of-range rank %d", src, rk)
			}
			machineStats[rk] = out.MsgStats
			procStats[rk] = out.TreeStats
			forceTimes[rk] = out.ForceT
			branchCounts[rk] = int(out.Branches)
			for i, id := range out.IDs {
				if out.F != nil {
					res.Accels[id] = out.F[i]
				}
				if out.P != nil {
					res.Potentials[id] = out.P[i]
				}
			}
		}
		got++
	}
	return nil
}
