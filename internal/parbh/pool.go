package parbh

import (
	"sync"

	"repro/internal/vec"
)

// slicePool recycles []T payload buffers handed through the simulated
// message layer. The protocol discipline that makes this safe: a sender
// builds a buffer, passes it to Send/AllToAll, and never touches it
// again; the (single) receiver returns it to the pool once it has
// unpacked the contents. Steady-state steps then reuse the same backing
// arrays instead of allocating fresh wire buffers every exchange.
type slicePool[T any] struct{ p sync.Pool }

// get returns a length-n buffer, reusing a pooled backing array when one
// with sufficient capacity is available. Reused element values are stale,
// not zeroed — callers must overwrite every element.
func (sp *slicePool[T]) get(n int) []T {
	if v := sp.p.Get(); v != nil {
		if buf := *(v.(*[]T)); cap(buf) >= n {
			return buf[:n]
		}
	}
	return make([]T, n)
}

// put returns a buffer to the pool. The caller must be the last reference
// holder (the unpacking receiver, per the protocol above).
func (sp *slicePool[T]) put(buf []T) {
	if cap(buf) == 0 {
		return
	}
	buf = buf[:0]
	sp.p.Put(&buf)
}

var (
	wirePool     slicePool[wireParticle]
	reqEntryPool slicePool[reqEntry]
	slotPool     slicePool[int32]
	vec3Pool     slicePool[vec.V3]
	f64Pool      slicePool[float64]
)
