package parbh

import (
	"testing"

	"repro/internal/direct"
	"repro/internal/dist"
	"repro/internal/keys"
	"repro/internal/msg"
	"repro/internal/phys"
)

func keyOf(level uint8, key uint64) keys.CellKey {
	return keys.CellKey{Level: level, Key: keys.Morton(key)}
}

func TestDataShippingDPDA(t *testing.T) {
	// Data shipping must compose with the dynamic decomposition too.
	s := dist.MustNamed("g", 1200, 41)
	fn := runStep(t, s, 6, Config{Scheme: DPDA, Mode: ForceMode, Alpha: 0.7, Eps: 0.01})
	dt := runStep(t, s, 6, Config{Scheme: DPDA, Mode: ForceMode, Alpha: 0.7, Eps: 0.01, Shipping: DataShipping})
	if e := phys.FractionalErrorV3(fn.Accels, dt.Accels); e > 1e-9 {
		t.Fatalf("DPDA paradigms disagree by %v", e)
	}
}

func TestDataShippingPotentialMode(t *testing.T) {
	s := dist.MustNamed("plummer", 1000, 42)
	res := runStep(t, s, 4, Config{Scheme: SPSA, Mode: PotentialMode, Alpha: 0.67, Degree: 4, Shipping: DataShipping})
	want := direct.PotentialsParallel(s.Particles, 0)
	if e := phys.FractionalError(want, res.Potentials); e > 1e-3 {
		t.Fatalf("data-shipping potential error %v", e)
	}
}

func TestNonReplicatedBuildSPDA(t *testing.T) {
	s := dist.MustNamed("g", 1200, 43)
	a := runStep(t, s, 8, Config{Scheme: SPDA, Mode: ForceMode, Alpha: 0.7, Eps: 0.01})
	b := runStep(t, s, 8, Config{Scheme: SPDA, Mode: ForceMode, Alpha: 0.7, Eps: 0.01, TreeBuild: NonReplicatedBuild})
	if e := phys.FractionalErrorV3(a.Accels, b.Accels); e > 1e-9 {
		t.Fatalf("SPDA construction variants disagree by %v", e)
	}
}

func TestNonReplicatedBuildPotentialMode(t *testing.T) {
	// The non-replicated construction must propagate expansions through
	// its designated-owner combine path too.
	s := dist.MustNamed("g", 1000, 44)
	a := runStep(t, s, 8, Config{Scheme: SPSA, Mode: PotentialMode, Alpha: 0.67, Degree: 4})
	b := runStep(t, s, 8, Config{Scheme: SPSA, Mode: PotentialMode, Alpha: 0.67, Degree: 4, TreeBuild: NonReplicatedBuild})
	if e := phys.FractionalError(a.Potentials, b.Potentials); e > 1e-9 {
		t.Fatalf("potential construction variants disagree by %v", e)
	}
}

func TestDPDANonReplicatedFallsBackToBroadcast(t *testing.T) {
	// DPDA has variable-depth branch cells; the non-replicated level-wise
	// protocol applies to SPSA/SPDA, so DPDA must silently use the
	// broadcast-based construction and still be correct.
	s := dist.MustNamed("plummer", 1000, 45)
	res := runStep(t, s, 4, Config{Scheme: DPDA, Mode: ForceMode, Alpha: 0.7, Eps: 0.01, TreeBuild: NonReplicatedBuild})
	want := direct.AccelsParallel(s.Particles, 0.01)
	if e := phys.FractionalErrorV3(want, res.Accels); e > 0.02 {
		t.Fatalf("error %v", e)
	}
}

func TestSPDAHandlesDriftingParticles(t *testing.T) {
	// Particles drifting across cluster boundaries must be re-owned by
	// the migrate phase without corrupting results.
	s := dist.MustNamed("g", 1500, 46)
	m := msg.NewMachine(8, msg.Ideal())
	e, err := New(m, s, Config{Scheme: SPDA, Mode: ForceMode, Alpha: 0.7, Eps: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	cur := append([]dist.Particle(nil), s.Particles...)
	for step := 0; step < 3; step++ {
		res := e.Step()
		want := direct.AccelsParallel(cur, 0.02)
		if err := phys.FractionalErrorV3(want, res.Accels); err > 0.02 {
			t.Fatalf("step %d error %v", step, err)
		}
		// Strong drift: move every particle a noticeable fraction of a
		// cluster width.
		for i := range cur {
			cur[i].Pos = cur[i].Pos.Add(res.Accels[cur[i].ID].Scale(50))
			if !s.Domain.Contains(cur[i].Pos) {
				cur[i].Pos = cur[i].Pos.Max(s.Domain.Min).Min(s.Domain.Max)
			}
		}
		byID := make([]dist.Particle, len(cur))
		for _, q := range cur {
			byID[q.ID] = q
		}
		e.SetParticles(byID)
	}
}

func TestOneParticlePerProcessor(t *testing.T) {
	// Degenerate decomposition: as many processors as particles.
	s := dist.MustNamed("uniform", 8, 47)
	res := runStep(t, s, 8, Config{Scheme: DPDA, Mode: ForceMode, Alpha: 0.5, Eps: 0.01})
	want := direct.AccelsParallel(s.Particles, 0.01)
	if e := phys.FractionalErrorV3(want, res.Accels); e > 0.05 {
		t.Fatalf("error %v", e)
	}
}

func TestLargeLeafCap(t *testing.T) {
	// LeafCap larger than n: the tree is a single leaf per branch.
	s := dist.MustNamed("uniform", 300, 48)
	res := runStep(t, s, 4, Config{Scheme: DPDA, Mode: ForceMode, Alpha: 0.7, Eps: 0.01, LeafCap: 1000})
	want := direct.AccelsParallel(s.Particles, 0.01)
	// Each zone is one giant leaf, but the decomposition still forces the
	// top cells into existence and the MAC may accept them, so the result
	// is BH-accurate rather than exact.
	if e := phys.FractionalErrorV3(want, res.Accels); e > 0.02 {
		t.Fatalf("error %v", e)
	}
	if res.Stats.PP == 0 {
		t.Fatal("no particle–particle work with giant leaves")
	}
}

func TestTinyBinWithDataShippingIgnored(t *testing.T) {
	// BinSize only affects function shipping; data shipping ignores it.
	s := dist.MustNamed("g", 600, 49)
	a := runStep(t, s, 4, Config{Scheme: SPSA, Mode: ForceMode, Alpha: 0.7, Eps: 0.01, Shipping: DataShipping, BinSize: 1})
	b := runStep(t, s, 4, Config{Scheme: SPSA, Mode: ForceMode, Alpha: 0.7, Eps: 0.01, Shipping: DataShipping, BinSize: 1000})
	for i := range a.Accels {
		if a.Accels[i] != b.Accels[i] {
			t.Fatalf("bin size affected data shipping at particle %d", i)
		}
	}
}

func TestSummaryWireFormat(t *testing.T) {
	s := BranchSummary{Key: 123, Owner: 4, Count: 10, Mass: 2.5}
	if s.Words() != 7 {
		t.Fatalf("monopole summary words = %d", s.Words())
	}
	s.Exp = make([]float64, phys.SeriesFloats(4))
	if s.Words() != 7+phys.SeriesFloats(4) {
		t.Fatalf("expansion summary words = %d", s.Words())
	}
}

func TestWireParticleRoundTrip(t *testing.T) {
	ps := dist.MustNamed("uniform", 50, 50).Particles
	back := fromWire(toWire(ps))
	for i := range ps {
		if ps[i] != back[i] {
			t.Fatalf("particle %d corrupted in wire round trip", i)
		}
	}
}

func TestCellKeyRangeHelpers(t *testing.T) {
	lo, hi := cellKeyRange(keyOf(0, 0))
	if lo != 0 || hi != 1<<63 {
		t.Fatalf("root range [%x, %x)", lo, hi)
	}
	// A level-1 child covers exactly 1/8 of the root.
	lo, hi = cellKeyRange(keyOf(1, 3))
	if hi-lo != 1<<60 || lo != 3<<60 {
		t.Fatalf("child range [%x, %x)", lo, hi)
	}
}
