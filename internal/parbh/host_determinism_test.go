package parbh

import (
	"runtime"
	"testing"

	"repro/internal/dist"
	"repro/internal/msg"
	"repro/internal/tree"
)

// The host-performance layer (multi-core traversals, radix sorts, arenas,
// buffer pools) must never perturb the paper-facing *simulated* metrics.
// These tests pin that invariant two ways: the counters that are exact by
// construction — interaction Stats, communication words/messages, branch
// counts, and the force results themselves — must be bit-identical across
// host parallelism levels, and must match golden values recorded before
// the host optimizations landed.
//
// SimTime and Imbalance are deliberately not compared bit-exactly: the
// function-shipping protocol polls for remote work between particles, so
// per-processor *waiting* time depends on host scheduling. That jitter
// predates the host-performance layer (it is observable run-to-run on a
// fixed GOMAXPROCS) and is bounded by the polling granularity; the
// flop-charged compute clock underneath is exact.

func stepOnce(t *testing.T, scheme Scheme) *Result {
	t.Helper()
	s := dist.MustNamed("g", 3000, 99)
	m := msg.NewMachine(8, msg.CM5())
	e, err := New(m, s, Config{Scheme: scheme, Mode: ForceMode, Alpha: 0.67, Eps: 0.01, GridLog2: 4})
	if err != nil {
		t.Fatal(err)
	}
	return e.Step()
}

func TestStepInvariantUnderHostParallelism(t *testing.T) {
	for _, scheme := range []Scheme{SPSA, SPDA, DPDA} {
		t.Run(scheme.String(), func(t *testing.T) {
			old := runtime.GOMAXPROCS(1)
			seq := stepOnce(t, scheme)
			runtime.GOMAXPROCS(4)
			par := stepOnce(t, scheme)
			runtime.GOMAXPROCS(old)

			if seq.Stats != par.Stats {
				t.Errorf("stats differ: gomaxprocs=1 %+v gomaxprocs=4 %+v", seq.Stats, par.Stats)
			}
			if seq.CommWords != par.CommWords || seq.CommMessages != par.CommMessages {
				t.Errorf("comm differs: %d/%d vs %d/%d",
					seq.CommWords, seq.CommMessages, par.CommWords, par.CommMessages)
			}
			if seq.BranchNodes != par.BranchNodes {
				t.Errorf("branch nodes differ: %d vs %d", seq.BranchNodes, par.BranchNodes)
			}
			for i := range seq.Accels {
				if seq.Accels[i] != par.Accels[i] {
					t.Fatalf("accel %d differs: %v vs %v", i, seq.Accels[i], par.Accels[i])
				}
			}
			if len(seq.Phases) != len(par.Phases) {
				t.Errorf("phase sets differ: %v vs %v", seq.Phases, par.Phases)
			}
			if seq.SimTime <= 0 || par.SimTime <= 0 {
				t.Errorf("non-positive sim time: %v, %v", seq.SimTime, par.SimTime)
			}
		})
	}
}

// TestStepSimulatedMetricsGolden pins the simulated interaction counters
// and communication volume per scheme to the values the engine produced
// before the host-performance layer existed. A host-side "optimization"
// that changes any of these has changed the simulation, not just made it
// faster.
func TestStepSimulatedMetricsGolden(t *testing.T) {
	golden := map[Scheme]struct {
		stats tree.Stats
		words int64
	}{
		SPSA: {tree.Stats{MACTests: 417825, PC: 241787, PP: 1604592}, 1252023},
		SPDA: {tree.Stats{MACTests: 417825, PC: 241787, PP: 1604592}, 1373207},
		DPDA: {tree.Stats{MACTests: 361430, PC: 225970, PP: 1632296}, 606638},
	}
	for _, scheme := range []Scheme{SPSA, SPDA, DPDA} {
		t.Run(scheme.String(), func(t *testing.T) {
			res := stepOnce(t, scheme)
			want := golden[scheme]
			if res.Stats != want.stats {
				t.Errorf("stats drifted: got %+v want %+v", res.Stats, want.stats)
			}
			if res.CommWords != want.words {
				t.Errorf("comm words drifted: got %d want %d", res.CommWords, want.words)
			}
		})
	}
}
