package parbh

import (
	"fmt"

	"repro/internal/let"
	"repro/internal/msg"
	"repro/internal/phys"
	"repro/internal/tree"
	"repro/internal/vec"
)

// Locally-essential-tree force engine (Dubinski; ROADMAP item 3). The
// step gains one phase between tree merging and force computation: every
// rank broadcasts the bounding box of its particles, walks each of its
// local branch subtrees against every peer's box to serialize the
// essential set (internal nodes are summarized the moment the MAC
// provably accepts them from anywhere in the box — the domain-opening
// criterion), and ships one bulk message per peer. Receivers graft the
// sections beside a flat linearization of the replicated tree and the
// force phase becomes a purely local, host-parallel traversal — no
// mid-phase communication, no request/reply latency to hide.
//
// A cross-step cache rides the exchange: the owner remembers the last
// section shipped per (peer, branch) and replaces an unchanged section
// with a two-word marker carrying the epoch (step) of last change; the
// receiver replays its cached copy after checking the epoch. After the
// traversal, one all-to-all returns per-node Load deltas so the owner's
// subtree sees exactly the counters a function-shipping step would have
// produced — the load-balancing schemes evolve identically.
//
// Simulated accelerations, potentials, and aggregate Stats are
// bit-identical to function shipping: the kernels in internal/let replay
// its floating-point reduction order (see let.Flat). Per-rank SimTime
// and comm volume differ by construction — that difference is the
// measurement.

// letPair keys the per-rank LET caches: the remote rank and the packed
// branch cell key (the Morton path).
type letPair struct {
	peer int
	key  uint64
}

// letOwnEntry is the owner-side cache record: the section as last
// shipped to one peer, and the step it last changed.
type letOwnEntry struct {
	sec     *let.Section
	epoch   int64
	touched bool // shipped this step; untouched entries are pruned
}

// letReqEntry is the receiver-side mirror: the decoded section under
// which grafts replay, keyed by the same epoch the owner advertises.
type letReqEntry struct {
	sec   *let.Section
	exps  []*phys.Expansion
	epoch int64
}

// letShipMsg is one peer's bulk essential-set delivery.
type letShipMsg struct {
	Secs []*let.Section
}

// letLoadMsg returns per-node Load deltas to section owners; parallel
// arrays, one entry per (branch, ordinal) with a non-zero delta.
type letLoadMsg struct {
	Keys   []uint64
	Nodes  []int32
	Deltas []int64
}

// letOwnCache returns rank's persistent owner-side cache.
func (e *Engine) letOwnCache(rank int) map[letPair]*letOwnEntry {
	if e.letOwn[rank] == nil {
		e.letOwn[rank] = make(map[letPair]*letOwnEntry)
	}
	return e.letOwn[rank]
}

// letFlat returns rank's reusable flat essential tree.
func (e *Engine) letFlat(rank int) *let.Flat {
	if e.letFlats[rank] == nil {
		e.letFlats[rank] = &let.Flat{}
	}
	return e.letFlats[rank]
}

// letExchange runs the LET exchange phase: bounds all-gather, essential
// walks, bulk section exchange with cache diffing, and construction of
// the rank's flat essential tree.
func (e *Engine) letExchange(pr *msg.Proc, st *localState) {
	p := pr.NumProcs()
	cfg := e.cfg
	withExp := cfg.Mode == PotentialMode

	// Per-rank particle bounding boxes. Actual particle bounds (not cell
	// bounds): the criterion must lower-bound the distances the peer's MAC
	// will compute from real particle coordinates.
	b := let.BoundsOf(st.parts)
	pr.Compute(2 * float64(len(st.parts)))
	gathered := pr.AllGather(b, let.BoundsWords)

	// Essential walk per peer, diffed against the owner cache.
	own := e.letOwnCache(st.me)
	st.letSent = make(map[letPair][]*tree.Node)
	payloads := make([]any, p)
	words := make([]int, p)
	visited := 0
	for peer := 0; peer < p; peer++ {
		if peer == st.me {
			payloads[peer] = letShipMsg{}
			continue
		}
		bb := gathered[peer].(let.Bounds)
		var secs []*let.Section
		w := 1
		for _, br := range st.branches {
			if br.Count == 0 {
				continue
			}
			alwaysShip := br.Count <= cfg.LeafCap // leaf cells are deferred without a MAC test
			sec, nodes, nv := let.BuildSection(br, bb, cfg.Alpha, withExp, alwaysShip)
			visited += nv
			if sec == nil {
				continue
			}
			pair := letPair{peer: peer, key: br.Key.Uint64()}
			sec.BranchKey = pair.key
			st.letSent[pair] = nodes
			if prev, ok := own[pair]; ok && prev.sec.Equal(sec) {
				prev.touched = true
				secs = append(secs, &let.Section{BranchKey: pair.key, Epoch: prev.epoch, Cached: true})
				w += 2
			} else {
				sec.Epoch = int64(e.step)
				own[pair] = &letOwnEntry{sec: sec, epoch: sec.Epoch, touched: true}
				secs = append(secs, sec)
				w += sec.WireWords()
			}
		}
		payloads[peer] = letShipMsg{Secs: secs}
		words[peer] = w
	}
	// Drop cache entries no longer shipped (peer bounds moved away).
	for k, ent := range own {
		if !ent.touched {
			delete(own, k)
		} else {
			ent.touched = false
		}
	}
	pr.Compute(phys.MACFlops * float64(visited))
	replies := pr.AllToAll(payloads, words)

	// Decode sections (or replay them from the receiver cache) and graft.
	fl := e.letFlat(st.me)
	fl.Reset()
	newReq := make(map[letPair]*letReqEntry)
	secIdx := make(map[letPair]int32)
	grafted := 0
	st.letHits = 0
	for owner := 0; owner < p; owner++ {
		if owner == st.me {
			continue
		}
		ship := replies[owner].(letShipMsg)
		for _, sec := range ship.Secs {
			pair := letPair{peer: owner, key: sec.BranchKey}
			var ent *letReqEntry
			if sec.Cached {
				prev, ok := e.letReq[st.me][pair]
				if !ok || prev.epoch != sec.Epoch {
					panic(fmt.Sprintf("parbh: LET cache marker for branch %x epoch %d has no matching entry", sec.BranchKey, sec.Epoch))
				}
				ent = prev
				st.letHits++
			} else {
				ent = &letReqEntry{sec: sec, exps: decodeSectionExps(sec, cfg.Degree, withExp), epoch: sec.Epoch}
			}
			newReq[pair] = ent
			secIdx[pair] = int32(fl.AddSection(owner, ent.sec, ent.exps))
			grafted += ent.sec.NumNodes()
		}
	}
	e.letReq[st.me] = newReq
	pr.Compute(2 * float64(grafted))

	// Flatten the replicated tree: local subtrees inline, remote branches
	// carry graft references in owner order (the function-shipping slot
	// order).
	fl.BeginMain()
	var flatten func(n *pnode)
	flatten = func(n *pnode) {
		if n.local != nil {
			fl.AddLocalSubtree(n.local)
			return
		}
		if n.isBranch {
			grafts := make([]int32, len(n.owners))
			for i, o := range n.owners {
				if si, ok := secIdx[letPair{peer: o, key: n.cell.Uint64()}]; ok {
					grafts[i] = si
				} else {
					grafts[i] = -1 // owner proved the MAC accepts: defer would be a bug
				}
			}
			fl.AddBranch(n.leafCell, n.com, n.mass, n.box.LongestSide(), n.exp, grafts)
			return
		}
		idx := fl.AddTop(n.com, n.mass, n.box.LongestSide(), n.exp)
		for _, c := range n.children {
			if c == nil {
				continue
			}
			if c.count == 0 {
				// The pointer traversal folds an exact zero for an empty
				// child; an empty leaf replays that (and charges nothing).
				fl.AddZero()
				continue
			}
			flatten(c)
		}
		fl.CloseInternal(idx)
	}
	flatten(st.top)
	fl.Seal()
	st.letFlat = fl
}

// decodeSectionExps rebuilds the per-node multipole expansions of a
// section (potential mode); nil in force mode.
func decodeSectionExps(sec *let.Section, degree int, withExp bool) []*phys.Expansion {
	if !withExp {
		return nil
	}
	exps := make([]*phys.Expansion, sec.NumNodes())
	stride := int(sec.ExpStride)
	off := 0
	for i, k := range sec.Kind {
		if k == let.NodeLeaf {
			continue
		}
		if off+stride > len(sec.Exp) {
			panic("parbh: LET section expansion columns truncated")
		}
		ex, err := phys.ExpansionFromFloats(degree, sec.Exp[off:off+stride])
		if err != nil {
			panic(fmt.Sprintf("parbh: LET section expansion decode: %v", err))
		}
		exps[i] = ex
		off += stride
	}
	if off != len(sec.Exp) {
		panic("parbh: LET section expansion columns misaligned")
	}
	return exps
}

// letForcePhase runs the purely local traversal over the flat essential
// tree, host-parallel within the rank, then returns section Load deltas
// to their owners.
func (e *Engine) letForcePhase(pr *msg.Proc, st *localState, res *Result) {
	t0 := pr.Stats().ComputeTime
	cfg := e.cfg
	deg := cfg.degreeOrMonopole()
	fl := st.letFlat
	n := len(st.parts)
	// The per-interaction extra-load addend of chargePC: interactions
	// against replicated summaries have no local tree node to charge.
	exAdd := phys.InteractionFlops(deg) + phys.MACFlops
	extra := make([]float64, n)
	st.extraLoad = make(map[int]float64, n)

	if cfg.Mode == ForceMode {
		out := make([]vec.V3, n)
		s := fl.ForceAll(st.parts, cfg.Alpha, cfg.Eps, exAdd, out, extra)
		st.stats.Add(s)
		pr.Compute(s.Flops(deg))
		for i := range st.parts {
			res.Accels[st.parts[i].ID] = out[i]
		}
	} else {
		out := make([]float64, n)
		s := fl.PotentialAll(st.parts, cfg.Alpha, exAdd, out, extra)
		st.stats.Add(s)
		pr.Compute(s.Flops(deg))
		for i := range st.parts {
			res.Potentials[st.parts[i].ID] = out[i]
		}
	}
	for i := range st.parts {
		if extra[i] != 0 {
			st.extraLoad[st.parts[i].ID] = extra[i]
		}
	}
	fl.ApplyLocalLoads()
	e.letReturnLoads(pr, st, fl)
	st.forceT = pr.Stats().ComputeTime - t0
}

// letReturnLoads ships per-node Load deltas back to section owners and
// applies incoming deltas to this rank's sent nodes, so every tree node
// ends the step with exactly the Load a function-shipping step charges.
func (e *Engine) letReturnLoads(pr *msg.Proc, st *localState, fl *let.Flat) {
	p := pr.NumProcs()
	msgs := make([]letLoadMsg, p)
	for si := 0; si < fl.NumSections(); si++ {
		m := fl.Section(si)
		nodes, deltas := fl.SectionDeltas(si, nil, nil)
		lm := &msgs[m.Owner]
		for j := range nodes {
			lm.Keys = append(lm.Keys, m.Key)
			lm.Nodes = append(lm.Nodes, nodes[j])
			lm.Deltas = append(lm.Deltas, deltas[j])
		}
	}
	payloads := make([]any, p)
	words := make([]int, p)
	for i := 0; i < p; i++ {
		payloads[i] = msgs[i]
		words[i] = 3*len(msgs[i].Nodes) + 1
	}
	got := pr.AllToAll(payloads, words)
	for src := 0; src < p; src++ {
		lm := got[src].(letLoadMsg)
		for j := range lm.Nodes {
			sent := st.letSent[letPair{peer: src, key: lm.Keys[j]}]
			sent[lm.Nodes[j]].Load += lm.Deltas[j]
		}
	}
}
