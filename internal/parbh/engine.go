package parbh

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dist"
	"repro/internal/keys"
	"repro/internal/let"
	"repro/internal/msg"
	"repro/internal/obsv"
	"repro/internal/partition"
	"repro/internal/phys"
	"repro/internal/tree"
	"repro/internal/vec"
)

// Engine runs the parallel Barnes–Hut method on a simulated
// message-passing machine. It holds the distribution state that persists
// across time-steps: which processor owns which particles, the cluster
// ownership map (SPSA/SPDA), the Morton/Hilbert cluster ordering, and the
// DPDA zone boundary keys. Step executes one full time-step: particle
// migration, distributed tree construction, force (or potential)
// computation, and the scheme's load-balancing exchange.
type Engine struct {
	cfg     Config
	machine *msg.Machine
	domain  vec.Box
	n       int

	parts [][]dist.Particle // per-processor particle sets

	// SPSA/SPDA state.
	grid      *partition.Grid
	owner     []int // cluster -> processor
	clusOrder []int // cluster indices in curve order

	// DPDA state: boundKeys[i] is the smallest full-resolution Morton key
	// owned by processor i (boundKeys[0] = 0).
	boundKeys []uint64

	// builders[i] is rank i's persistent incremental tree builder (DPDA
	// only; lazily created, nil for ranks hosted by other processes).
	// Migration keeps each rank's particles Morton-sorted, so the keyed
	// local build diffs against the previous step's tree instead of
	// starting cold — a host-clock optimization only: the built trees,
	// and every simulated metric derived from them, are bit-identical.
	builders []*tree.Builder

	// LET cross-step caches, indexed by rank (LETShipping only; lazily
	// created). letOwn is the owner side (sections as last shipped per
	// peer), letReq the receiver mirror, letFlats the reusable flat
	// essential trees.
	letOwn   []map[letPair]*letOwnEntry
	letReq   []map[letPair]*letReqEntry
	letFlats []*let.Flat

	step int
}

// New prepares an engine for the particle set on the given machine. The
// set's Domain must enclose the particles for the whole simulation (the
// hierarchical decomposition is anchored to it).
func New(machine *msg.Machine, set *dist.Set, cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	p := machine.P
	e := &Engine{cfg: cfg, machine: machine, n: set.N()}
	e.domain = set.Domain.Cube()
	e.builders = make([]*tree.Builder, p)
	e.letOwn = make([]map[letPair]*letOwnEntry, p)
	e.letReq = make([]map[letPair]*letReqEntry, p)
	e.letFlats = make([]*let.Flat, p)

	switch cfg.Scheme {
	case SPSA, SPDA:
		r := 1 << cfg.GridLog2
		if r*r*r < p {
			return nil, fmt.Errorf("parbh: %d clusters cannot cover %d processors (raise GridLog2)", r*r*r, p)
		}
		grid, err := partition.NewGrid(e.domain, r, r, r)
		if err != nil {
			return nil, err
		}
		e.grid = grid
		e.owner, err = grid.ScatterAssign(p)
		if err != nil {
			return nil, err
		}
		if cfg.Ordering == HilbertOrdering {
			e.clusOrder = grid.HilbertOrder()
		} else {
			e.clusOrder = grid.MortonOrder()
		}
		e.parts = make([][]dist.Particle, p)
		for _, q := range set.Particles {
			o := e.owner[grid.ClusterOf(q.Pos)]
			e.parts[o] = append(e.parts[o], q)
		}
	case DPDA:
		// Bootstrap: Morton-sort and split into p equal-count zones,
		// snapping boundaries to key changes so a full-resolution key is
		// never owned by two processors. Keys are computed exactly once and
		// carried through the sort.
		ps, keysOf := sortByKeyID(set.Particles, e.domain)
		e.parts = make([][]dist.Particle, p)
		e.boundKeys = make([]uint64, p)
		cut := 0
		for proc := 0; proc < p; proc++ {
			end := (proc + 1) * len(ps) / p
			if proc == p-1 {
				end = len(ps)
			}
			if end < cut {
				end = cut // earlier snapping consumed this zone
			}
			// Snap forward so equal keys stay together.
			for end > cut && end < len(ps) && keysOf[end] == keysOf[end-1] {
				end++
			}
			e.parts[proc] = ps[cut:end]
			if proc == 0 {
				e.boundKeys[proc] = 0
			} else if cut < len(ps) {
				e.boundKeys[proc] = keysOf[cut]
			} else {
				e.boundKeys[proc] = ^uint64(0)
			}
			cut = end
		}
	default:
		return nil, fmt.Errorf("parbh: unknown scheme %v", cfg.Scheme)
	}
	return e, nil
}

// Config returns the engine's effective configuration.
func (e *Engine) Config() Config { return e.cfg }

// Domain returns the cubic root cell the decomposition is anchored to.
func (e *Engine) Domain() vec.Box { return e.domain }

// Parts returns the current per-processor particle sets (read-only view).
func (e *Engine) Parts() [][]dist.Particle { return e.parts }

// SetParticles replaces every particle's state keeping the current
// ownership (used by the time integrator: positions advance in place).
// updated must be indexed by particle ID.
func (e *Engine) SetParticles(updated []dist.Particle) {
	for proc := range e.parts {
		for i := range e.parts[proc] {
			e.parts[proc][i] = updated[e.parts[proc][i].ID]
		}
	}
}

// ownerOfPos returns the processor owning a position under the current
// decomposition.
func (e *Engine) ownerOfPos(pos vec.V3) int {
	switch e.cfg.Scheme {
	case SPSA, SPDA:
		return e.owner[e.grid.ClusterOf(pos)]
	default:
		k := fullResKeyOf(pos, e.domain)
		// Last boundary ≤ k.
		i := sort.Search(len(e.boundKeys), func(i int) bool { return e.boundKeys[i] > k })
		return i - 1
	}
}

// localState carries one processor's per-step working data between
// phases.
type localState struct {
	me       int
	parts    []dist.Particle
	sortKeys []uint64              // DPDA: full-res Morton keys aligned with parts, set by migrate
	branches []*tree.Node          // local branch subtree roots, Morton order
	rootsMap map[uint64]*tree.Node // packed key -> branch root
	lookup   branchLookup          // request-serving lookup structure
	top      *pnode                // replicated global tree
	summary  []BranchSummary       // this proc's branch summaries
	stats    tree.Stats            // interaction counts charged here
	forceT   float64               // compute-seconds spent in the force phase

	// extraLoad attributes interactions computed against replicated top
	// and remote summaries (which no tree node records) to the traversing
	// particle, so the load-balancing schemes see the whole force cost of
	// a region, not just its subtree-resident share.
	extraLoad map[int]float64

	// LET-shipping per-step state (LETShipping only).
	letFlat *let.Flat                // grafted flat essential tree
	letSent map[letPair][]*tree.Node // shipped nodes by (peer, branch), ordinal-aligned
	letHits int                      // sections served from the cross-step cache
}

// message tags of the engine protocols (collectives use their own space).
const (
	tagRequest = iota + 1
	tagReply
	tagDoneUp
	tagDoneDown
	tagFetchReq
	tagFetchRep
	tagBranchUp
)

// wireParticle is the particle representation moved between processors.
type wireParticle struct {
	ID   int32
	Mass float64
	Pos  vec.V3
	Vel  vec.V3
}

const wireParticleWords = 8

// toWire packs particles into a pooled wire buffer; the caller sends the
// buffer and must not touch it afterwards (fromWire at the receiver
// returns it to the pool).
func toWire(ps []dist.Particle) []wireParticle {
	out := wirePool.get(len(ps))
	for i, q := range ps {
		out[i] = wireParticle{ID: int32(q.ID), Mass: q.Mass, Pos: q.Pos, Vel: q.Vel}
	}
	return out
}

// fromWire unpacks a received wire buffer and recycles it.
func fromWire(ws []wireParticle) []dist.Particle {
	out := make([]dist.Particle, len(ws))
	for i, w := range ws {
		out[i] = dist.Particle{ID: int(w.ID), Mass: w.Mass, Pos: w.Pos, Vel: w.Vel}
	}
	wirePool.put(ws)
	return out
}

// Step runs one parallel time-step and returns its results and timings.
// A transport failure on a distributed machine is raised as a panic;
// services that must survive faults use StepErr instead.
func (e *Engine) Step() *Result {
	res, err := e.StepErr()
	if err != nil {
		panic(err)
	}
	return res
}

// Machine returns the engine's message-passing machine; supervisors use
// it to interrupt a step whose peers have gone silent.
func (e *Engine) Machine() *msg.Machine { return e.machine }

// StepErr runs one parallel time-step, containing machine failures: a
// transport fault (or an Interrupt from a watchdog) mid-step unwinds
// every local rank and comes back as the error, leaving the process
// alive. After an error the engine and its machine are poisoned and
// must be rebuilt; the constant-particle job model makes that cheap —
// a fresh engine silently replays to the failed step and resumes.
func (e *Engine) StepErr() (*Result, error) {
	p := e.machine.P
	deg := e.cfg.degreeOrMonopole()

	letMode := e.cfg.Shipping == LETShipping
	order := []string{PhaseMigrate, PhaseLocalTree, PhaseBroadcast, PhaseTreeMerge}
	if letMode {
		order = append(order, PhaseLET)
	}
	order = append(order, PhaseForce, PhaseLoadBal)
	res := &Result{
		Phases:     make(map[string]float64),
		PhaseOrder: order,
	}
	if e.cfg.Mode == ForceMode {
		res.Accels = make([]vec.V3, e.n)
	} else {
		res.Potentials = make([]float64, e.n)
	}

	// Shared per-proc outputs (each goroutine writes only its own index,
	// or distinct particle IDs it owns).
	newParts := make([][]dist.Particle, p)
	procStats := make([]tree.Stats, p)
	forceTimes := make([]float64, p)
	branchCounts := make([]int, p)
	letHits := make([]int64, p)
	phaseTimes := make([][]float64, p)
	ownedIDs := make([][]int32, p) // distributed: IDs owned at force time
	var newOwner []int             // SPDA: next step's cluster assignment
	var newBounds []uint64         // DPDA: next step's boundary keys

	// On a distributed machine only this process's ranks run here; the
	// lowest local rank stands in for rank 0's once-per-process duties.
	distributed := e.machine.Distributed()
	leader := e.machine.Leader()

	tracer := e.machine.Tracer()
	step := e.step

	machineStats, runErr := e.machine.RunErr(func(pr *msg.Proc) {
		st := &localState{me: pr.ID(), parts: e.parts[pr.ID()]}
		marks := make([]float64, 0, 8)
		// mark closes a phase: it reads this rank's own clock, then joins
		// the phase-delimiting collective that advances every clock to the
		// global maximum. With a tracer attached the gap between the two
		// readings becomes the rank's "barrier wait" span — the per-rank
		// idle time the load-balance comparison is about. The tracer only
		// observes the clock values the collective produces anyway, so the
		// simulated metrics are identical with tracing on or off.
		mark := func(phase string) {
			own := pr.Now()
			global := pr.GlobalMaxTime()
			if tracer != nil && phase != "" {
				start := marks[len(marks)-1]
				tracer.SimSpan(pr.ID(), phase, "phase", start, own, obsv.Int("step", step))
				if global > own {
					tracer.SimSpan(pr.ID(), "barrier wait", "wait", own, global,
						obsv.Int("step", step), obsv.Str("after", phase))
				}
			}
			marks = append(marks, global)
		}
		mark("")

		e.migrate(pr, st)
		mark(PhaseMigrate)

		e.buildLocal(pr, st)
		mark(PhaseLocalTree)

		all := e.exchangeBranches(pr, st)
		mark(PhaseBroadcast)

		e.buildTopPhase(pr, st, all)
		mark(PhaseTreeMerge)

		if letMode {
			e.letExchange(pr, st)
			mark(PhaseLET)
		}

		e.forcePhase(pr, st, res)
		mark(PhaseForce)

		if distributed {
			// Snapshot ownership before loadBalance reshuffles st.parts:
			// these are the particles whose results this rank computed.
			ids := make([]int32, len(st.parts))
			for i, q := range st.parts {
				ids[i] = int32(q.ID)
			}
			ownedIDs[st.me] = ids
		}

		no, nb := e.loadBalance(pr, st)
		mark(PhaseLoadBal)
		if tracer != nil {
			tracer.SimSpan(pr.ID(), "step", "step", marks[0], marks[len(marks)-1],
				obsv.Int("step", step), obsv.F64("force_compute_s", st.forceT))
		}

		newParts[st.me] = st.parts
		procStats[st.me] = st.stats
		forceTimes[st.me] = st.forceT
		branchCounts[st.me] = len(st.branches)
		letHits[st.me] = int64(st.letHits)
		phaseTimes[st.me] = marks
		if st.me == leader {
			newOwner = no
			newBounds = nb
		}
	})

	if runErr != nil {
		return nil, runErr
	}

	if distributed {
		locals := make([]rankOut, 0, len(e.machine.LocalRanks()))
		for _, rk := range e.machine.LocalRanks() {
			locals = append(locals, localRankOut(e, rk, ownedIDs[rk],
				machineStats[rk], procStats[rk], forceTimes[rk], branchCounts[rk], res))
		}
		if err := e.gatherOutputs(e.step, locals, res, machineStats,
			procStats, forceTimes, branchCounts); err != nil {
			return nil, err
		}
	}

	// Persist the distribution for the next step.
	e.parts = newParts
	if newOwner != nil {
		e.owner = newOwner
	}
	if newBounds != nil {
		e.boundKeys = newBounds
	}
	e.step++

	// Assemble the result from the leader's phase marks (identical on
	// all processors by construction of GlobalMaxTime).
	marks := phaseTimes[leader]
	for i, name := range res.PhaseOrder {
		res.Phases[name] = marks[i+1] - marks[i]
	}
	if e.cfg.Scheme == SPSA {
		// Static assignment has no load-balancing work (Table 3 reports
		// 0); the measured residue is only the phase-delimiting collective.
		res.Phases[PhaseLoadBal] = 0
	}
	for i := range procStats {
		res.Stats.Add(procStats[i])
	}
	for _, b := range branchCounts {
		res.BranchNodes += b
	}
	for _, h := range letHits {
		res.LETCacheHits += h
	}
	res.ProcStats = machineStats
	res.SimTime = msg.MaxTime(machineStats)
	res.CommWords = msg.TotalWords(machineStats)
	res.CommMessages = msg.TotalMessages(machineStats)

	// Sequential-time projection (Section 5: "speed-up and efficiency
	// results are computed by extrapolating force computation rates on a
	// single processor"): the essential force work plus a serial tree
	// build estimate.
	levels := math.Ceil(math.Log(math.Max(float64(e.n)/float64(e.cfg.LeafCap), 2))/math.Log(8)) + 1
	seqFlops := res.Stats.Flops(deg) + float64(e.n)*levels*phys.TreeInsertFlops
	if e.cfg.Mode == PotentialMode {
		nodes := 2 * float64(e.n) / float64(e.cfg.LeafCap)
		seqFlops += float64(e.n)*phys.P2MFlops(deg) + nodes*phys.M2MFlops(deg)
	}
	res.SeqTime = seqFlops / e.machine.Profile.FlopRate
	if res.SimTime > 0 {
		res.Speedup = res.SeqTime / res.SimTime
		res.Efficiency = res.Speedup / float64(p)
	}

	// Imbalance of the force phase, by modelled compute time. The raw
	// per-rank times are exported too: they are the load histogram the
	// observability layer profiles (gatherOutputs filled remote ranks'
	// entries on a distributed machine).
	res.RankForce = forceTimes
	var sumT, maxT float64
	for _, t := range forceTimes {
		sumT += t
		if t > maxT {
			maxT = t
		}
	}
	if sumT > 0 {
		res.Imbalance = maxT / (sumT / float64(p))
	} else {
		res.Imbalance = 1
	}
	return res, nil
}

// migrate enforces ownership: particles that drifted out of their
// processor's region since the last step are shipped to their current
// owner with one all-to-all personalized exchange.
func (e *Engine) migrate(pr *msg.Proc, st *localState) {
	p := pr.NumProcs()
	buckets := make([][]dist.Particle, p)
	for _, q := range st.parts {
		o := e.ownerOfPos(q.Pos)
		buckets[o] = append(buckets[o], q)
	}
	pr.Compute(float64(len(st.parts)) * 6) // bucketing cost
	payloads := make([]any, p)
	words := make([]int, p)
	for i := range buckets {
		payloads[i] = toWire(buckets[i])
		words[i] = wireParticleWords * len(buckets[i])
	}
	recv := pr.AllToAll(payloads, words)
	var mine []dist.Particle
	if e.cfg.Scheme == DPDA {
		// Assemble the retained (already sorted) run first and the
		// immigrant runs after it, so the adaptive re-sort sees one long
		// kept prefix plus a few displaced newcomers. The order feeds a
		// strict-total-order sort, so it cannot affect the result; other
		// schemes keep source order because theirs is never re-sorted.
		mine = append(mine, fromWire(recv[st.me].([]wireParticle))...)
		for src := 0; src < p; src++ {
			if src != st.me {
				mine = append(mine, fromWire(recv[src].([]wireParticle))...)
			}
		}
	} else {
		for src := 0; src < p; src++ {
			mine = append(mine, fromWire(recv[src].([]wireParticle))...)
		}
		// Canonicalize to ID order. SPSA/SPDA need no particular order, but
		// leaving migrated particles appended in arrival order makes every
		// float accumulation (leaf summation, per-rank clock) a function of
		// migration history — a simulation restored from a checkpoint or
		// keyframe rebuilds in ID order and would drift from the original
		// by ulps after the first migration. Host-side only, so no
		// simulated cost is charged: the algorithm itself never consumes
		// the order.
		sort.Slice(mine, func(a, b int) bool { return mine[a].ID < mine[b].ID })
	}
	if e.cfg.Scheme == DPDA {
		// Keep the local set Morton-sorted: the DPDA load balance relies
		// on rank-concatenation being the global Morton order. The charged
		// cost is unchanged; only the host-side sort got cheaper. The key
		// slice rides along to buildLocal so the incremental builder can
		// diff it against the previous step without recomputing keys.
		mine, st.sortKeys = sortByKeyID(mine, e.domain)
		pr.Compute(float64(len(mine)) * 12)
	}
	st.parts = mine
}

// sortByKeyID returns the particles sorted by (full-resolution Morton
// key, ID) together with the aligned key slice. Each key is computed
// exactly once and radix-sorted, replacing the comparison sort whose
// comparator recomputed both keys on every call. The adaptive pass
// exploits the migrate-phase input shape — a long already-sorted run of
// retained particles plus a few immigrants.
func sortByKeyID(ps []dist.Particle, domain vec.Box) ([]dist.Particle, []uint64) {
	pairs := make([]keys.KeyIdx, len(ps))
	for i := range ps {
		pairs[i] = keys.KeyIdx{
			Key: fullResKeyOf(ps[i].Pos, domain),
			ID:  int32(ps[i].ID),
			Idx: int32(i),
		}
	}
	keys.SortKeyIdxAdaptive(pairs, nil)
	out := make([]dist.Particle, len(ps))
	ks := make([]uint64, len(ps))
	for i := range pairs {
		out[i] = ps[pairs[i].Idx]
		ks[i] = pairs[i].Key
	}
	return out, ks
}

// buildLocal constructs this processor's branch subtrees (Section 3.1:
// "each processor can independently construct their trees").
func (e *Engine) buildLocal(pr *msg.Proc, st *localState) {
	st.rootsMap = make(map[uint64]*tree.Node)
	switch e.cfg.Scheme {
	case SPSA, SPDA:
		// One branch cell per owned, non-empty cluster.
		byCluster := make(map[int][]dist.Particle)
		for _, q := range st.parts {
			c := e.grid.ClusterOf(q.Pos)
			byCluster[c] = append(byCluster[c], q)
		}
		clusters := make([]int, 0, len(byCluster))
		for c := range byCluster {
			clusters = append(clusters, c)
		}
		sort.Ints(clusters)
		lvl := uint8(e.cfg.GridLog2)
		for _, c := range clusters {
			i, j, k := e.grid.Coords(c)
			ck := keys.CellKey{Level: lvl, Key: keys.Encode3(uint32(i), uint32(j), uint32(k))}
			box := keys.CellBox(e.domain, ck)
			n := tree.BuildSubtree(byCluster[c], box, ck, e.cfg.LeafCap)
			st.branches = append(st.branches, n)
			st.rootsMap[ck.Uint64()] = n
		}
		// Branch cells are already in Morton order because cluster indices
		// were sorted... cluster index order is row-major, not Morton; sort
		// branches by key for a canonical order.
		sort.Slice(st.branches, func(a, b int) bool {
			return st.branches[a].Key.Less(st.branches[b].Key)
		})
	case DPDA:
		lo := e.boundKeys[st.me]
		hi := ^uint64(0)
		if st.me+1 < len(e.boundKeys) {
			hi = e.boundKeys[st.me+1]
		}
		// The keyed build guarantees cell membership agrees with the
		// quantized Morton keys that define zone ownership. The rank's
		// persistent builder reconciles against its previous tree using
		// the sorted snapshot migrate produced; the tree (and every
		// simulated metric) is bit-identical to a from-scratch BuildKeyed.
		// Branch nodes extracted from it are valid for this step only.
		b := e.builders[st.me]
		if b == nil {
			b = tree.NewBuilder(e.domain, e.cfg.LeafCap)
			e.builders[st.me] = b
		}
		var local *tree.Tree
		if st.sortKeys != nil {
			local = b.StepSorted(st.parts, st.sortKeys)
		} else {
			local = b.Step(st.parts)
		}
		e.extractBranches(local.Root, lo, hi, st)
	}
	// Charge construction cost and build expansions.
	var levels int64
	for _, b := range st.branches {
		levels += tree.ParticleLevels(b)
	}
	pr.Compute(float64(levels) * phys.TreeInsertFlops)
	if e.cfg.Mode == PotentialMode {
		for _, b := range st.branches {
			tree.BuildNodeExpansions(b, e.cfg.Degree)
			pr.Compute(float64(b.Count)*phys.P2MFlops(e.cfg.Degree) +
				float64(tree.CountNodes(b))*phys.M2MFlops(e.cfg.Degree))
		}
	}
	// Branch summaries.
	withExp := e.cfg.Mode == PotentialMode
	for _, b := range st.branches {
		st.summary = append(st.summary, summaryOf(b, st.me, withExp))
	}
	// Lookup structure for serving requests.
	if e.cfg.BranchLookup == SortedLookup {
		st.lookup = newSortedLookup(st.rootsMap)
	} else {
		st.lookup = hashLookup(st.rootsMap)
	}
}

// extractBranches finds the maximal cells fully contained in [lo, hi) —
// this processor's branch nodes under the DPDA decomposition. A leaf that
// straddles a zone boundary is pushed down ("we artificially force the
// particles down", Section 3.1) until its fragments are fully contained.
func (e *Engine) extractBranches(n *tree.Node, lo, hi uint64, st *localState) {
	if n == nil || n.Count == 0 {
		return
	}
	cLo, cHi := cellKeyRange(n.Key)
	if cLo >= lo && cHi <= hi {
		st.branches = append(st.branches, n)
		st.rootsMap[n.Key.Uint64()] = n
		return
	}
	if !n.IsLeaf() {
		for _, c := range n.Children {
			e.extractBranches(c, lo, hi, st)
		}
		return
	}
	if int(n.Key.Level) >= tree.MaxDepth {
		// Cannot push further; claim the cell (boundary snapping makes a
		// genuine cross-processor conflict impossible).
		st.branches = append(st.branches, n)
		st.rootsMap[n.Key.Uint64()] = n
		return
	}
	// Split the leaf by key octant and recurse on the rebuilt fragments.
	var buckets [8][]dist.Particle
	for _, q := range n.Particles {
		k := fullResKeyOf(q.Pos, e.domain)
		oct := int(k>>(3*uint(keys.MaxBits3D-1-int(n.Key.Level)))) & 7
		buckets[oct] = append(buckets[oct], q)
	}
	for oct := 0; oct < 8; oct++ {
		if len(buckets[oct]) == 0 {
			continue
		}
		child := tree.BuildSubtreeKeyed(buckets[oct], e.domain, n.Box.Octant(oct), n.Key.Child(oct), e.cfg.LeafCap)
		e.extractBranches(child, lo, hi, st)
	}
}

// exchangeBranches distributes branch summaries to every processor, via
// either the broadcast-based construction (Section 3.1.1) or the
// non-replicated construction (Section 3.1.2). It returns the full
// summary list plus, for the non-replicated variant, precomputed
// top-cell summaries keyed by packed cell key.
type branchExchange struct {
	all []BranchSummary
	top map[uint64]BranchSummary // non-nil only for NonReplicatedBuild
}

func (e *Engine) exchangeBranches(pr *msg.Proc, st *localState) branchExchange {
	words := 0
	for _, s := range st.summary {
		words += s.Words()
	}
	if e.cfg.TreeBuild == NonReplicatedBuild && (e.cfg.Scheme == SPSA || e.cfg.Scheme == SPDA) {
		return e.exchangeNonReplicated(pr, st)
	}
	gathered := pr.AllGather(st.summary, words)
	var all []BranchSummary
	for _, g := range gathered {
		all = append(all, g.([]BranchSummary)...)
	}
	return branchExchange{all: all}
}

// exchangeNonReplicated implements Section 3.1.2: each top cell has a
// designated owner which computes it exactly once from its children's
// summaries; the finished top levels are then made available to all
// processors with one all-to-all broadcast.
func (e *Engine) exchangeNonReplicated(pr *msg.Proc, st *localState) branchExchange {
	p := pr.NumProcs()
	me := st.me
	deg := -1
	if e.cfg.Mode == PotentialMode {
		deg = e.cfg.Degree
	}
	ownerOfCell := func(ck keys.CellKey) int { return int(ck.Uint64() % uint64(p)) }

	// Send each of my branch summaries to the owner of its parent cell.
	for _, s := range st.summary {
		ck := keys.CellKeyFromUint64(s.Key)
		pr.Send(ownerOfCell(ck.Parent()), tagBranchUp, s, s.Words())
	}
	// Count, for every level from the branch level up, how many cells I
	// own and how many children each expects. Every cluster owner sends a
	// summary only for non-empty clusters, so expected counts must come
	// from global knowledge: for SPSA/SPDA all branch cells live at one
	// level, and each processor can enumerate the cells it owns at each
	// upper level.
	g := e.cfg.GridLog2
	computed := make(map[uint64]BranchSummary)
	for lvl := g - 1; lvl >= 0; lvl-- {
		// Enumerate cells of this level that I own.
		numCells := 1 << (3 * uint(lvl))
		var mine []keys.CellKey
		for c := 0; c < numCells; c++ {
			ck := keys.CellKey{Level: uint8(lvl), Key: keys.Morton(c)}
			if ownerOfCell(ck) == me {
				mine = append(mine, ck)
			}
		}
		// A barrier guarantees every send targeting this level has been
		// issued (they all happen before the sender's barrier), so a
		// non-blocking drain sees exactly this level's messages. A second
		// barrier after the drain keeps faster processors' next-level
		// sends out of slower processors' drains.
		pr.Barrier()
		children := make(map[uint64][]BranchSummary)
		for {
			data, _, _, ok := pr.TryRecvTags(tagBranchUp)
			if !ok {
				break
			}
			s := data.(BranchSummary)
			ck := keys.CellKeyFromUint64(s.Key).Parent()
			children[ck.Uint64()] = append(children[ck.Uint64()], s)
		}
		var upSends []BranchSummary
		for _, ck := range mine {
			kids := children[ck.Uint64()]
			if len(kids) == 0 {
				continue
			}
			sum := combineSummaries(ck, kids, deg)
			pr.Compute(float64(len(kids)) * phys.NodeCombineFlops)
			if deg >= 0 {
				pr.Compute(float64(len(kids)) * phys.M2MFlops(deg))
			}
			computed[ck.Uint64()] = sum
			if lvl > 0 {
				upSends = append(upSends, sum)
			}
		}
		pr.Barrier()
		for _, sum := range upSends {
			ck := keys.CellKeyFromUint64(sum.Key)
			pr.Send(ownerOfCell(ck.Parent()), tagBranchUp, sum, sum.Words())
		}
	}
	// Make everything available everywhere: my computed top cells plus my
	// branch summaries.
	payload := append([]BranchSummary(nil), st.summary...)
	for _, s := range computed {
		payload = append(payload, s)
	}
	words := 0
	for _, s := range payload {
		words += s.Words()
	}
	gathered := pr.AllGather(payload, words)
	var all []BranchSummary
	top := make(map[uint64]BranchSummary)
	branchLevel := uint8(g)
	for _, gth := range gathered {
		for _, s := range gth.([]BranchSummary) {
			if keys.CellKeyFromUint64(s.Key).Level == branchLevel {
				all = append(all, s)
			} else {
				top[s.Key] = s
			}
		}
	}
	return branchExchange{all: all, top: top}
}

// combineSummaries folds child summaries into a parent cell summary.
func combineSummaries(ck keys.CellKey, kids []BranchSummary, degree int) BranchSummary {
	out := BranchSummary{Key: ck.Uint64(), Owner: -1}
	for _, k := range kids {
		newMass := out.Mass + k.Mass
		if newMass > 0 {
			out.COM = out.COM.Scale(out.Mass / newMass).Add(k.COM.Scale(k.Mass / newMass))
		}
		out.Mass = newMass
		out.Count += k.Count
	}
	if degree >= 0 {
		e := phys.NewExpansion(degree, out.COM)
		for _, k := range kids {
			if k.Exp == nil {
				continue
			}
			ke, err := phys.ExpansionFromFloats(degree, k.Exp)
			if err == nil {
				e.Add(ke.TranslateTo(out.COM))
			}
		}
		out.Exp = e.Floats()
	}
	return out
}

// buildTopPhase merges the exchanged branch summaries into the replicated
// global tree (the paper's "tree merging").
func (e *Engine) buildTopPhase(pr *msg.Proc, st *localState, ex branchExchange) {
	deg := -1
	if e.cfg.Mode == PotentialMode {
		deg = e.cfg.Degree
	}
	var flops float64
	top, err := buildTopWithPrecomputed(e.domain, ex, st.me, st.rootsMap, deg, e.cfg.LeafCap,
		func(f float64) { flops += f })
	if err != nil {
		panic(err)
	}
	pr.Compute(flops)
	st.top = top
}

// buildTopWithPrecomputed wraps buildTop and, for the non-replicated
// construction, overwrites internal top cells with their precomputed
// summaries instead of charging the redundant merge.
func buildTopWithPrecomputed(rootBox vec.Box, ex branchExchange, me int,
	localRoots map[uint64]*tree.Node, degree, leafCap int, charge func(float64)) (*pnode, error) {

	if ex.top == nil {
		return buildTop(rootBox, ex.all, me, localRoots, degree, leafCap, charge)
	}
	// Build structure without charging (the combine work happened once,
	// at the designated owners), then overwrite with precomputed values.
	top, err := buildTop(rootBox, ex.all, me, localRoots, degree, leafCap, func(float64) {})
	if err != nil {
		return nil, err
	}
	var apply func(n *pnode)
	apply = func(n *pnode) {
		if n == nil {
			return
		}
		if s, ok := ex.top[n.cell.Uint64()]; ok {
			n.mass = s.Mass
			n.com = s.COM
			n.count = int(s.Count)
			if degree >= 0 && s.Exp != nil {
				if e, err2 := phys.ExpansionFromFloats(degree, s.Exp); err2 == nil {
					n.exp = e
				}
			}
		}
		for _, c := range n.children {
			apply(c)
		}
	}
	apply(top)
	return top, nil
}

// loadBalance performs the scheme's end-of-step rebalancing and particle
// redistribution; it returns the (identical on all processors) new
// cluster ownership for SPDA and the new boundary keys for DPDA.
func (e *Engine) loadBalance(pr *msg.Proc, st *localState) ([]int, []uint64) {
	switch e.cfg.Scheme {
	case SPSA:
		// Static assignment: load balance is implicit (Table 3 reports 0).
		return nil, nil
	case SPDA:
		return e.balanceSPDA(pr, st), nil
	default:
		return nil, e.balanceDPDA(pr, st)
	}
}

// balanceSPDA implements Section 3.3.2: cluster loads are summed
// globally, and clusters are re-assigned along the curve ordering in
// contiguous runs of ~W/p load; particles move with one all-to-all.
func (e *Engine) balanceSPDA(pr *msg.Proc, st *localState) []int {
	p := pr.NumProcs()
	r := e.grid.NumClusters()
	deg := e.cfg.degreeOrMonopole()
	loads := make([]float64, r)
	for _, b := range st.branches {
		x, y, z := keys.Decode3(keys.Morton(b.Key.Key))
		c := e.grid.Index(int(x), int(y), int(z))
		loads[c] = flopLoad(b, deg)
	}
	for _, q := range st.parts {
		loads[e.grid.ClusterOf(q.Pos)] += st.extraLoad[q.ID]
	}
	pr.Compute(float64(len(st.branches))*20 + float64(len(st.parts))*2)
	total := pr.SumF64(loads)
	starts := partition.RunsByLoad(e.clusOrder, total, p)
	newOwner := partition.OwnerFromRuns(e.clusOrder, starts, r)
	pr.Compute(float64(r) * 4)

	// Move particles to their new owners now so the next step's migrate
	// is a no-op.
	buckets := make([][]dist.Particle, p)
	for _, q := range st.parts {
		buckets[newOwner[e.grid.ClusterOf(q.Pos)]] = append(buckets[newOwner[e.grid.ClusterOf(q.Pos)]], q)
	}
	payloads := make([]any, p)
	words := make([]int, p)
	for i := range buckets {
		payloads[i] = toWire(buckets[i])
		words[i] = wireParticleWords * len(buckets[i])
	}
	recv := pr.AllToAll(payloads, words)
	var mine []dist.Particle
	for src := 0; src < p; src++ {
		mine = append(mine, fromWire(recv[src].([]wireParticle))...)
	}
	st.parts = mine
	return newOwner
}

// balanceDPDA implements Section 3.3.3 (costzones on message-passing
// machines): per-particle load shares are derived from the tree's
// interaction counters, global load boundaries i·W/p are located in the
// concatenated Morton order, and particles move with a single all-to-all
// personalized communication.
func (e *Engine) balanceDPDA(pr *msg.Proc, st *localState) []uint64 {
	p := pr.NumProcs()
	// Per-particle shares in local Morton order: each branch subtree is
	// walked with ancestors' own loads spread over their particles.
	deg := e.cfg.degreeOrMonopole()
	shares := make([]float64, 0, len(st.parts))
	order := make([]dist.Particle, 0, len(st.parts))
	for _, b := range st.branches {
		collectShares(b, deg, 0, &shares, &order)
	}
	for i := range order {
		shares[i] += st.extraLoad[order[i].ID]
	}
	pr.Compute(float64(len(shares)) * 10)
	var myLoad float64
	for _, s := range shares {
		myLoad += s
	}
	// Global prefix over rank order (= global Morton order). Gather the
	// measured load and the particle count together so the first step
	// (no recorded loads yet) can fall back to count-balancing.
	perProc := pr.AllGather([2]float64{myLoad, float64(len(order))}, 2)
	var offset, w, cntOffset, cntTotal float64
	for rank := 0; rank < p; rank++ {
		pair := perProc[rank].([2]float64)
		if rank < st.me {
			offset += pair[0]
			cntOffset += pair[1]
		}
		w += pair[0]
		cntTotal += pair[1]
	}
	useCounts := w <= 0
	if useCounts {
		w, offset = cntTotal, cntOffset
	}
	if w == 0 {
		w = 1 // empty system; zones stay as they are
	}
	// New zone per particle (midpoint rule), with same-key snapping.
	buckets := make([][]dist.Particle, p)
	acc := offset
	prevZone := -1
	var prevKey uint64
	for i, q := range order {
		share := shares[i]
		if useCounts {
			share = 1
		}
		zone := int((acc + share/2) / w * float64(p))
		if zone >= p {
			zone = p - 1
		}
		k := fullResKeyOf(q.Pos, e.domain)
		if prevZone >= 0 && k == prevKey && zone != prevZone {
			zone = prevZone // keep identical keys together
		}
		buckets[zone] = append(buckets[zone], q)
		acc += share
		prevZone, prevKey = zone, k
	}
	payloads := make([]any, p)
	words := make([]int, p)
	for i := range buckets {
		payloads[i] = toWire(buckets[i])
		words[i] = wireParticleWords * len(buckets[i])
	}
	recv := pr.AllToAll(payloads, words)
	var mine []dist.Particle
	for src := 0; src < p; src++ {
		mine = append(mine, fromWire(recv[src].([]wireParticle))...)
	}
	st.parts = mine
	// New boundary keys: first key per processor; empty zones inherit the
	// next processor's boundary.
	first := ^uint64(0)
	if len(mine) > 0 {
		first = fullResKeyOf(mine[0].Pos, e.domain)
	}
	gathered := pr.AllGather(first, 1)
	bounds := make([]uint64, p)
	for rank := 0; rank < p; rank++ {
		bounds[rank] = gathered[rank].(uint64)
	}
	bounds[0] = 0
	for i := p - 1; i > 0; i-- {
		if bounds[i] == ^uint64(0) {
			if i == p-1 {
				bounds[i] = ^uint64(0) - 1
			} else {
				bounds[i] = bounds[i+1]
			}
		}
	}
	return bounds
}

// collectShares walks a branch subtree in Morton order producing one load
// share per particle in flop units, spreading internal nodes' own
// interaction counts over their subtrees (as in partition.Costzones, but
// local). Loads are converted to flops — leaf counters record
// particle–particle work, internal counters particle–cluster work — so
// that balancing the shares balances modelled compute time.
func collectShares(n *tree.Node, deg int, extraPerParticle float64, shares *[]float64, order *[]dist.Particle) {
	if n == nil || n.Count == 0 {
		return
	}
	if n.IsLeaf() {
		leafLoad := float64(n.Load)*phys.PPFlops + extraPerParticle*float64(n.Count)
		per := leafLoad / float64(len(n.Particles))
		for i := range n.Particles {
			*shares = append(*shares, per)
			*order = append(*order, n.Particles[i])
		}
		return
	}
	nodeFlops := float64(n.Load) * (phys.InteractionFlops(deg) + phys.MACFlops)
	childExtra := extraPerParticle + nodeFlops/float64(n.Count)
	for _, c := range n.Children {
		collectShares(c, deg, childExtra, shares, order)
	}
}

// flopLoad converts a subtree's raw interaction counters into modelled
// flops: leaves hold particle–particle counts, internal nodes
// particle–cluster (plus MAC) counts.
func flopLoad(n *tree.Node, deg int) float64 {
	if n == nil {
		return 0
	}
	var f float64
	if n.IsLeaf() {
		f = float64(n.Load) * phys.PPFlops
	} else {
		f = float64(n.Load) * (phys.InteractionFlops(deg) + phys.MACFlops)
	}
	for _, c := range n.Children {
		f += flopLoad(c, deg)
	}
	return f
}
