package parbh

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/dist"
	"repro/internal/msg"
	"repro/internal/obsv"
	"repro/internal/vec"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace files")

// stepTraced is stepOnce with a tracer attached to the machine.
func stepTraced(t *testing.T, scheme Scheme, tr *obsv.Tracer) *Result {
	t.Helper()
	s := dist.MustNamed("g", 3000, 99)
	m := msg.NewMachine(8, msg.CM5())
	m.SetTracer(tr)
	e, err := New(m, s, Config{Scheme: scheme, Mode: ForceMode, Alpha: 0.67, Eps: 0.01, GridLog2: 4})
	if err != nil {
		t.Fatal(err)
	}
	return e.Step()
}

// TestTracingChangesNothing is the two-clock rule's golden test: every
// simulated metric that is exact by construction must be bit-identical
// with tracing on and off, per scheme. A tracer hook that advances the
// simulated clock — or even perturbs scheduling-independent counters —
// fails here.
func TestTracingChangesNothing(t *testing.T) {
	for _, scheme := range []Scheme{SPSA, SPDA, DPDA} {
		t.Run(scheme.String(), func(t *testing.T) {
			off := stepTraced(t, scheme, nil)
			tr := obsv.New()
			on := stepTraced(t, scheme, tr)

			if tr.Len() == 0 {
				t.Fatal("tracer attached but no events recorded")
			}
			if off.Stats != on.Stats {
				t.Errorf("stats differ: off %+v on %+v", off.Stats, on.Stats)
			}
			if off.CommWords != on.CommWords || off.CommMessages != on.CommMessages {
				t.Errorf("comm differs: %d/%d vs %d/%d",
					off.CommWords, off.CommMessages, on.CommWords, on.CommMessages)
			}
			if off.BranchNodes != on.BranchNodes {
				t.Errorf("branch nodes differ: %d vs %d", off.BranchNodes, on.BranchNodes)
			}
			for i := range off.Accels {
				if off.Accels[i] != on.Accels[i] {
					t.Fatalf("accel %d differs: %v vs %v", i, off.Accels[i], on.Accels[i])
				}
			}
			if len(off.RankForce) != len(on.RankForce) {
				t.Errorf("rank force lengths differ: %d vs %d", len(off.RankForce), len(on.RankForce))
			}
		})
	}
}

// TestTracedStepInvariantUnderHostParallelism extends the host-layer
// invariance guarantee to traced runs: with a tracer attached, the
// exact simulated counters still cannot depend on GOMAXPROCS.
func TestTracedStepInvariantUnderHostParallelism(t *testing.T) {
	for _, scheme := range []Scheme{SPSA, SPDA, DPDA} {
		t.Run(scheme.String(), func(t *testing.T) {
			old := runtime.GOMAXPROCS(1)
			seq := stepTraced(t, scheme, obsv.New())
			runtime.GOMAXPROCS(4)
			par := stepTraced(t, scheme, obsv.New())
			runtime.GOMAXPROCS(old)

			if seq.Stats != par.Stats {
				t.Errorf("stats differ: gomaxprocs=1 %+v gomaxprocs=4 %+v", seq.Stats, par.Stats)
			}
			if seq.CommWords != par.CommWords {
				t.Errorf("comm words differ: %d vs %d", seq.CommWords, par.CommWords)
			}
			for i := range seq.Accels {
				if seq.Accels[i] != par.Accels[i] {
					t.Fatalf("accel %d differs: %v vs %v", i, seq.Accels[i], par.Accels[i])
				}
			}
		})
	}
}

// TestTraceStructure checks, per scheme, that a traced in-proc step
// yields what the Perfetto export needs: simulated-clock events on
// every rank's track, per-phase spans, message instants, and — for an
// in-proc run — no host-clock events at all.
func TestTraceStructure(t *testing.T) {
	for _, scheme := range []Scheme{SPSA, SPDA, DPDA} {
		t.Run(scheme.String(), func(t *testing.T) {
			tr := obsv.New()
			stepTraced(t, scheme, tr)

			ranks := map[int]bool{}
			spansByRank := map[int]int{}
			instants := 0
			stepSpans := 0
			for _, ev := range tr.Events() {
				if ev.Clock != obsv.SimClock {
					t.Fatalf("in-proc run recorded host-clock event %q", ev.Name)
				}
				ranks[ev.Rank] = true
				switch ev.Phase {
				case obsv.SpanPhase:
					spansByRank[ev.Rank]++
					if ev.Name == "step" {
						stepSpans++
					}
				case obsv.InstantPhase:
					instants++
				}
			}
			for r := 0; r < 8; r++ {
				if !ranks[r] {
					t.Errorf("rank %d has no events", r)
				}
				if spansByRank[r] == 0 {
					t.Errorf("rank %d has no spans", r)
				}
			}
			if stepSpans != 8 {
				t.Errorf("step spans = %d, want one per rank", stepSpans)
			}
			if instants == 0 {
				t.Error("no message instants recorded")
			}
		})
	}
}

// cornerSet builds a dataset whose particles all sit in one corner grid
// cell. Under SPSA that entire cluster — and with it the whole tree —
// lands on a single rank, so no force request ever ships between ranks
// and every simulated timestamp is independent of host poll order. This
// is the one regime where a full trace is byte-reproducible, which is
// exactly what a golden file needs. (Traces of shipping runs are stable
// in their *metrics* but not in force-phase timestamps; see the package
// comment in host_determinism_test.go.)
func cornerSet() *dist.Set {
	rng := rand.New(rand.NewSource(7))
	const n = 64
	set := &dist.Set{Domain: vec.Box{Min: vec.V3{X: 0, Y: 0, Z: 0}, Max: vec.V3{X: 16, Y: 16, Z: 16}}}
	for i := 0; i < n; i++ {
		set.Particles = append(set.Particles, dist.Particle{
			ID:   i,
			Mass: 1.0 / n,
			Pos: vec.V3{
				X: rng.Float64(),
				Y: rng.Float64(),
				Z: rng.Float64(),
			},
		})
	}
	return set
}

func traceCornerRun(t *testing.T) []byte {
	t.Helper()
	tr := obsv.New()
	m := msg.NewMachine(2, msg.CM5())
	m.SetTracer(tr)
	e, err := New(m, cornerSet(), Config{Scheme: SPSA, Mode: ForceMode, Alpha: 0.67, Eps: 0.01, GridLog2: 2})
	if err != nil {
		t.Fatal(err)
	}
	e.Step()
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenChromeTrace pins the full Chrome export of a 2-rank SPSA
// step on the corner dataset byte-for-byte. Run with -update after an
// intentional change to the trace format or the phase hooks.
func TestGoldenChromeTrace(t *testing.T) {
	first := traceCornerRun(t)
	second := traceCornerRun(t)
	if !bytes.Equal(first, second) {
		t.Fatal("corner-run trace is not reproducible across runs; golden comparison impossible")
	}

	path := filepath.Join("testdata", "trace_spsa_2rank.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, first, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with: go test ./internal/parbh -run GoldenChromeTrace -update)", err)
	}
	if !bytes.Equal(first, want) {
		t.Errorf("trace drifted from golden %s;\nif intentional, regenerate with -update\ngot %d bytes, want %d",
			path, len(first), len(want))
		// Show the first differing line for diagnosis.
		gotLines := bytes.Split(first, []byte("\n"))
		wantLines := bytes.Split(want, []byte("\n"))
		for i := 0; i < len(gotLines) && i < len(wantLines); i++ {
			if !bytes.Equal(gotLines[i], wantLines[i]) {
				t.Fatalf("first diff at line %d:\ngot:  %s\nwant: %s", i+1, gotLines[i], wantLines[i])
			}
		}
	}

	// The golden trace must carry no wall-clock contamination: every
	// event sits on the simulated clock.
	if bytes.Contains(first, []byte(fmt.Sprintf(`"pid":%d`, obsv.HostPID))) {
		t.Error("golden trace contains host-clock events")
	}
}
