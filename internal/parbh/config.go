// Package parbh implements the paper's contribution: three scalable
// parallel formulations of the Barnes–Hut method on a message-passing
// machine —
//
//   - SPSA: static partitioning of the domain into r > p clusters with a
//     static gray-code (modular scatter) assignment of clusters to
//     processors (Section 3.3.1);
//   - SPDA: the same static clusters with a dynamic assignment along the
//     Morton ordering of cluster coordinates, rebalanced from measured
//     loads after every time-step (Section 3.3.2);
//   - DPDA: dynamic partitioning — a message-passing costzones over the
//     tree's per-node interaction counts, with particles moved by a
//     single all-to-all personalized communication (Section 3.3.3).
//
// All three are function-shipping formulations (Section 3.2): when a
// traversal cannot accept a remote branch node under the multipole
// acceptance criterion, the particle's coordinates are shipped to the
// processor owning that subtree, which computes the entire subtree's
// contribution and ships the force or potential back. Particles are
// batched in fixed-size bins with at most one outstanding bin per
// source–destination pair. A data-shipping engine (remote children are
// fetched and cached, the owner-computes rule) is provided as the
// baseline the paper argues against in Section 4.2.
package parbh

import (
	"fmt"

	"repro/internal/msg"
	"repro/internal/tree"
	"repro/internal/vec"
)

// Scheme selects the parallel formulation.
type Scheme int

const (
	// SPSA is static partitioning, static assignment.
	SPSA Scheme = iota
	// SPDA is static partitioning, dynamic (Morton-run) assignment.
	SPDA
	// DPDA is dynamic partitioning (costzones), dynamic assignment.
	DPDA
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case SPSA:
		return "SPSA"
	case SPDA:
		return "SPDA"
	case DPDA:
		return "DPDA"
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// Mode selects what the force-computation phase evaluates.
type Mode int

const (
	// ForceMode computes monopole (centre-of-mass) force vectors, as in
	// the paper's Section 5.1 experiments.
	ForceMode Mode = iota
	// PotentialMode computes scalar potentials from degree-k multipole
	// series, as in Section 5.2.
	PotentialMode
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == ForceMode {
		return "force"
	}
	return "potential"
}

// Shipping selects the communication paradigm.
type Shipping int

const (
	// FunctionShipping ships particle coordinates to the data (the
	// paper's schemes).
	FunctionShipping Shipping = iota
	// DataShipping fetches remote tree nodes to the computation (the
	// prior art the paper compares against), deduplicating requests so
	// each remote cell is fetched at most once per step.
	DataShipping
	// DataShippingNaive is the per-visit data-shipping baseline of the
	// paper's Section 4.2: every blocked traversal visit issues its own
	// fetch, with no request coalescing. Same physics, strictly more
	// communication.
	DataShippingNaive
	// LETShipping prefetches each peer's locally essential tree in one
	// bulk exchange per step (Dubinski), then traverses purely locally,
	// host-parallel within the rank.
	LETShipping
)

// String implements fmt.Stringer.
func (s Shipping) String() string {
	switch s {
	case FunctionShipping:
		return "function"
	case DataShipping:
		return "data"
	case DataShippingNaive:
		return "data-naive"
	case LETShipping:
		return "let"
	}
	return fmt.Sprintf("Shipping(%d)", int(s))
}

// Lookup selects how served processors locate branch nodes from keys
// (Section 4.2.3 implements and compares both).
type Lookup int

const (
	// HashLookup resolves branch keys through a hash table.
	HashLookup Lookup = iota
	// SortedLookup binary-searches a sorted key table.
	SortedLookup
)

// Ordering selects the space-filling curve for dynamic assignment.
type Ordering int

const (
	// MortonOrdering is the paper's Z-curve cluster ordering.
	MortonOrdering Ordering = iota
	// HilbertOrdering is the Peano–Hilbert alternative used by costzones.
	HilbertOrdering
)

// TreeBuild selects the top-tree construction variant of Section 3.1.
type TreeBuild int

const (
	// BroadcastBuild all-to-all broadcasts branch nodes and rebuilds the
	// top tree redundantly on every processor (Section 3.1.1).
	BroadcastBuild TreeBuild = iota
	// NonReplicatedBuild sends branch nodes to designated parent owners
	// which compute each top node once, followed by a broadcast of the
	// finished top levels (Section 3.1.2).
	NonReplicatedBuild
)

// Config parameterizes a parallel Barnes–Hut engine.
type Config struct {
	Scheme Scheme
	Mode   Mode
	// Alpha is the multipole acceptance parameter.
	Alpha float64
	// Degree is the multipole degree for PotentialMode (ignored for
	// ForceMode, which uses monopoles).
	Degree int
	// Eps is the Plummer softening for ForceMode.
	Eps float64
	// LeafCap is the paper's s parameter (particles per leaf).
	LeafCap int
	// GridLog2 sets the static cluster grid to 2^GridLog2 per dimension
	// for SPSA/SPDA (r = 8^GridLog2 clusters). Cluster cells must be
	// octree cells, hence the power-of-two constraint.
	GridLog2 int
	// BinSize is the number of particles per function-shipping bin
	// (the paper uses 100).
	BinSize int
	// Shipping selects function- vs data-shipping.
	Shipping Shipping
	// BranchLookup selects the branch-node lookup structure.
	BranchLookup Lookup
	// Ordering selects Morton vs Hilbert cluster ordering for SPDA.
	Ordering Ordering
	// TreeBuild selects the top-tree construction variant.
	TreeBuild TreeBuild
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Alpha == 0 {
		c.Alpha = 0.67
	}
	if c.LeafCap == 0 {
		c.LeafCap = tree.DefaultLeafCap
	}
	if c.GridLog2 == 0 {
		c.GridLog2 = 3 // 8×8×8 = 512 clusters
	}
	if c.BinSize == 0 {
		c.BinSize = 100
	}
	if c.Mode == PotentialMode && c.Degree == 0 {
		c.Degree = 4
	}
	return c
}

// degreeOrMonopole returns the effective degree used for flop accounting.
func (c Config) degreeOrMonopole() int {
	if c.Mode == PotentialMode {
		return c.Degree
	}
	return 0
}

// Result reports one parallel time-step.
type Result struct {
	// Accels holds per-particle accelerations indexed by particle ID
	// (ForceMode only).
	Accels []vec.V3
	// Potentials holds per-particle potentials indexed by particle ID
	// (PotentialMode only).
	Potentials []float64

	// SimTime is the simulated parallel completion time in seconds
	// (max over processors of modelled compute + communication).
	SimTime float64
	// SeqTime is the projected serial time for the same computation on
	// one processor of the simulated machine, obtained the way the paper
	// does it: from the per-MAC and per-interaction flop counts.
	SeqTime float64
	// Efficiency = SeqTime / (p · SimTime).
	Efficiency float64
	// Speedup = SeqTime / SimTime.
	Speedup float64

	// Phases holds the simulated seconds spent in each phase, keyed as in
	// the paper's Table 3; PhaseOrder preserves presentation order.
	Phases     map[string]float64
	PhaseOrder []string

	// Stats aggregates interaction counts across processors.
	Stats tree.Stats
	// ProcStats is the per-processor machine accounting.
	ProcStats []msg.Stats
	// CommWords is the total number of 8-byte words communicated.
	CommWords int64
	// CommMessages is the total number of messages.
	CommMessages int64
	// Imbalance is max/mean of the per-processor force-phase compute time.
	Imbalance float64
	// RankForce is the per-rank force-phase compute time Imbalance is
	// derived from — the per-step load histogram the observability layer
	// profiles. Indexed by rank; filled for remote ranks too on a
	// distributed machine.
	RankForce []float64
	// BranchNodes is the total number of branch nodes across processors.
	BranchNodes int
	// LETCacheHits counts remote sections served from the cross-step LET
	// cache this step (LETShipping only; locally simulated ranks).
	LETCacheHits int64
}

// Phase name constants (the rows of the paper's Table 3, plus the
// ownership-enforcement exchange that precedes tree construction).
const (
	PhaseMigrate   = "particle migration"
	PhaseLocalTree = "local tree construction"
	PhaseTreeMerge = "tree merging"
	PhaseBroadcast = "all-to-all broadcast"
	PhaseLET       = "LET exchange"
	PhaseForce     = "force computation and tree traversal"
	PhaseLoadBal   = "load balancing"
)
