package parbh

import (
	"math"
	"testing"

	"repro/internal/let"
	"repro/internal/transport"
	"repro/internal/vec"
)

// fuzzLETSeeds returns valid encodings of every LET wire kind: peer
// bounds, a bulk ship message with one full and one cached-marker
// section, and a load-return message.
func fuzzLETSeeds(t testing.TB) [][]byte {
	t.Helper()
	full := &let.Section{
		BranchKey: 0x51,
		Epoch:     3,
		Kind:      []uint8{let.NodeOpen, let.NodeClosed, let.NodeLeaf},
		Skip:      []int32{3, 2, 3},
		ComX:      []float64{0.5, 0.25, 0},
		ComY:      []float64{0.5, 0.25, 0},
		ComZ:      []float64{0.5, 0.25, 0},
		Mass:      []float64{2, 1, 0},
		Side:      []float64{1, 0.5, 0},
		LeafLo:    []int32{-1, -1, 0},
		LeafHi:    []int32{-1, -1, 2},
		PID:       []int32{4, 9},
		PX:        []float64{0.1, 0.2},
		PY:        []float64{0.3, 0.4},
		PZ:        []float64{0.5, 0.6},
		PM:        []float64{1, 1},
	}
	marker := &let.Section{BranchKey: 0x52, Epoch: 1, Cached: true}
	var out [][]byte
	for _, v := range []any{
		let.Bounds{Has: true, Min: vec.V3{X: -1, Y: -1, Z: -1}, Max: vec.V3{X: 1, Y: 1, Z: 1}},
		let.Bounds{},
		letShipMsg{Secs: []*let.Section{full, marker}},
		letShipMsg{},
		letLoadMsg{Keys: []uint64{0x51, 0x51}, Nodes: []int32{0, 2}, Deltas: []int64{7, 2}},
		letLoadMsg{},
	} {
		b, err := transport.Marshal(v)
		if err != nil {
			t.Fatalf("%T: %v", v, err)
		}
		out = append(out, b)
	}
	return out
}

// FuzzDecodeLETWire hammers the LET wire kinds with truncated and
// corrupt inputs: the decoders must return errors or values, never
// panic, and anything that decodes must re-encode (the codec space is
// closed under round trips).
func FuzzDecodeLETWire(f *testing.F) {
	for _, b := range fuzzLETSeeds(f) {
		f.Add(b)
		if len(b) > 4 {
			f.Add(b[:len(b)-3]) // truncated
		}
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		v, err := transport.Unmarshal(body)
		if err != nil {
			return
		}
		if _, rerr := transport.Marshal(v); rerr != nil {
			t.Fatalf("decoded %T failed to re-encode: %v", v, rerr)
		}
	})
}

// TestLETWireRoundTrip pins lossless round trips for the LET wire kinds,
// including the signed-zero bit patterns the cache comparison keys on.
func TestLETWireRoundTrip(t *testing.T) {
	for _, b := range fuzzLETSeeds(t) {
		v, err := transport.Unmarshal(b)
		if err != nil {
			t.Fatalf("seed failed to decode: %v", err)
		}
		b2, err := transport.Marshal(v)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if string(b) != string(b2) {
			t.Fatalf("round trip not byte-stable for %T", v)
		}
	}
	// Sections with ±0 coordinates must round-trip bit-exactly: the
	// receiver-side cache replays them into signed-zero-sensitive sums.
	s := &let.Section{
		BranchKey: 1,
		Kind:      []uint8{let.NodeLeaf},
		Skip:      []int32{1},
		ComX:      []float64{0}, ComY: []float64{0}, ComZ: []float64{0},
		Mass: []float64{0}, Side: []float64{0},
		LeafLo: []int32{0}, LeafHi: []int32{1},
		PID: []int32{3},
		PX:  []float64{negZero()}, PY: []float64{0}, PZ: []float64{0},
		PM: []float64{1},
	}
	b, err := transport.Marshal(letShipMsg{Secs: []*let.Section{s}})
	if err != nil {
		t.Fatal(err)
	}
	v, err := transport.Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	got := v.(letShipMsg).Secs[0]
	if !got.Equal(s) {
		t.Error("section with -0.0 coordinate did not round-trip bit-exactly")
	}
}

func negZero() float64 { return math.Copysign(0, -1) }
