package parbh

import (
	"sort"

	"repro/internal/keys"
	"repro/internal/msg"
	"repro/internal/phys"
	"repro/internal/tree"
	"repro/internal/vec"
)

// Data-shipping force phase: the owner-computes baseline of Section 4.2.
// When a traversal rejects a remote cell, the cell's children are fetched
// from the owner (monopole summary or full degree-k multipole series,
// particle coordinates for leaves) and cached in the local image of the
// tree; the requesting processor then continues the traversal itself.
//
// Two request disciplines share this engine. DataShipping batches fetches
// per wave and deduplicates them, so each remote cell is transferred at
// most once per processor — a best-case rendering of data shipping; even
// so its communication volume scales as Θ(k²) per cell while function
// shipping stays at 3 words per particle (Section 4.2.1).
// DataShippingNaive is the literal per-visit baseline the paper argues
// against: every blocked particle-visit issues its own fetch, with no
// request coalescing — the owner serves (and the wire carries) one reply
// per visit. The fetched cells still land in the shared cache, so the
// physics, traversal structure, and Stats are identical; only the
// communication accounting differs, strictly upward.

// fetchedChild is one child cell shipped to a requester.
type fetchedChild struct {
	Sum       BranchSummary
	IsLeaf    bool
	Particles []wireParticle // leaf payload
}

func (f fetchedChild) words() int {
	if f.IsLeaf {
		return 4 * len(f.Particles) // id, mass, x, y, z packed — model 4 words
	}
	return f.Sum.Words()
}

// fetchedCell is the reply for one requested cell key.
type fetchedCell struct {
	Key      uint64
	Children []fetchedChild
}

// dsWork is one particle's suspended traversal.
type dsWork struct {
	idx   int // local particle index
	stack []*pnode
	accF  vec.V3
	accP  float64
}

// dsVisit records one blocked particle-visit in discovery order (the
// naive per-visit request stream).
type dsVisit struct {
	key   uint64
	owner int
}

// dataShipPhase runs the wave-synchronous data-shipping computation.
func (e *Engine) dataShipPhase(pr *msg.Proc, st *localState, res *Result) {
	t0 := pr.Stats().ComputeTime
	cfg := e.cfg
	deg := cfg.degreeOrMonopole()
	p := pr.NumProcs()
	naive := cfg.Shipping == DataShippingNaive

	// Index every cell of the replicated image for cache insertion.
	index := make(map[uint64]*pnode)
	var walk func(n *pnode)
	walk = func(n *pnode) {
		if n == nil {
			return
		}
		index[n.cell.Uint64()] = n
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(st.top)

	// Seed one work item per particle.
	work := make([]*dsWork, len(st.parts))
	for i := range st.parts {
		work[i] = &dsWork{idx: i, stack: []*pnode{st.top}}
	}
	active := work

	processStack := func(w *dsWork, needed map[uint64]int, visits *[]dsVisit) {
		var blocked []*pnode
		block := func(n *pnode) {
			needed[n.cell.Uint64()] = n.owners[0]
			*visits = append(*visits, dsVisit{key: n.cell.Uint64(), owner: n.owners[0]})
			blocked = append(blocked, n)
		}
		for len(w.stack) > 0 {
			n := w.stack[len(w.stack)-1]
			w.stack = w.stack[:len(w.stack)-1]
			if n == nil || n.count == 0 {
				continue
			}
			q := &st.parts[w.idx]
			if n.local != nil {
				var s tree.Stats
				if cfg.Mode == ForceMode {
					w.accF = w.accF.Add(tree.AccelFrom(n.local, q.Pos, q.ID, cfg.Alpha, cfg.Eps, &s))
				} else {
					w.accP += tree.PotentialFrom(n.local, q.Pos, q.ID, cfg.Alpha, &s)
				}
				st.stats.Add(s)
				pr.Compute(s.Flops(deg))
				continue
			}
			if n.isBranch && n.leafCell && !n.hasChildren() {
				// Remote leaf: must fetch the particles.
				if len(n.owners) > 0 {
					block(n)
				}
				continue
			}
			st.stats.MACTests++
			pr.Compute(phys.MACFlops)
			if acceptsSummary(n, q.Pos, cfg.Alpha) {
				st.stats.PC++
				pr.Compute(phys.InteractionFlops(deg))
				if cfg.Mode == ForceMode {
					w.accF = w.accF.Add(phys.Accel(q.Pos, n.com, n.mass, cfg.Eps))
				} else {
					w.accP += n.exp.EvalPotential(q.Pos)
				}
				continue
			}
			if n.hasChildren() {
				// Push in reverse so children pop in Morton order.
				for oct := 7; oct >= 0; oct-- {
					if n.children[oct] != nil {
						w.stack = append(w.stack, n.children[oct])
					}
				}
				continue
			}
			// Remote internal cell with unfetched children.
			if len(n.owners) > 0 {
				block(n)
			}
		}
		w.stack = blocked
	}

	for {
		needed := make(map[uint64]int)
		var visits []dsVisit
		var parked []*dsWork
		for _, w := range active {
			processStack(w, needed, &visits)
			if len(w.stack) > 0 {
				parked = append(parked, w)
			}
		}
		// Global agreement on another wave.
		pending := len(needed)
		if naive {
			pending = len(visits)
		}
		global := pr.SumF64([]float64{float64(pending)})
		if global[0] == 0 {
			break
		}
		// Batch requests per owner: one entry per distinct cell, or — for
		// the naive baseline — one per blocked visit in discovery order.
		reqs := make([][]uint64, p)
		if naive {
			for _, v := range visits {
				reqs[v.owner] = append(reqs[v.owner], v.key)
			}
		} else {
			for key, owner := range needed {
				reqs[owner] = append(reqs[owner], key)
			}
			for i := range reqs {
				sort.Slice(reqs[i], func(a, b int) bool { return reqs[i][a] < reqs[i][b] })
			}
		}
		payloads := make([]any, p)
		words := make([]int, p)
		for i := range reqs {
			payloads[i] = reqs[i]
			words[i] = len(reqs[i])
		}
		recvReq := pr.AllToAll(payloads, words)
		// Serve.
		repPayloads := make([]any, p)
		repWords := make([]int, p)
		for src := 0; src < p; src++ {
			ks := recvReq[src].([]uint64)
			var cells []fetchedCell
			w := 0
			for _, key := range ks {
				pr.Compute(st.lookup.cost())
				cell := e.serveFetch(st, key)
				for _, c := range cell.Children {
					w += c.words()
				}
				pr.Compute(float64(len(cell.Children)) * 4)
				cells = append(cells, cell)
			}
			repPayloads[src] = cells
			repWords[src] = w + 1
		}
		recvRep := pr.AllToAll(repPayloads, repWords)
		// Insert fetched children into the cache.
		for src := 0; src < p; src++ {
			for _, cell := range recvRep[src].([]fetchedCell) {
				parent := index[cell.Key]
				if parent == nil {
					continue
				}
				for _, fc := range cell.Children {
					ck := keys.CellKeyFromUint64(fc.Sum.Key)
					if fc.Sum.Key == cell.Key {
						// A leaf branch cell answered for itself: materialize
						// the particles into the placeholder node. A duplicate
						// reply (naive mode fetches once per visit) must leave
						// the first materialization alone.
						if parent.local != nil {
							wirePool.put(fc.Particles)
							continue
						}
						ln := tree.BuildSubtree(fromWire(fc.Particles), parent.box, ck, e.cfg.LeafCap)
						if cfg.Mode == PotentialMode {
							tree.BuildNodeExpansions(ln, cfg.Degree)
						}
						parent.local = ln
						parent.isBranch = false
						continue
					}
					if parent.children[ck.Octant()] != nil {
						// Duplicate reply for an already-inserted child (naive
						// mode): keep the existing node — parked traversal
						// stacks may already reference it.
						if fc.IsLeaf {
							wirePool.put(fc.Particles)
						}
						continue
					}
					child := &pnode{
						cell:  ck,
						box:   keys.CellBox(e.domain, ck),
						mass:  fc.Sum.Mass,
						com:   fc.Sum.COM,
						count: int(fc.Sum.Count),
					}
					if cfg.Mode == PotentialMode && fc.Sum.Exp != nil {
						if ex, err := phys.ExpansionFromFloats(cfg.Degree, fc.Sum.Exp); err == nil {
							child.exp = ex
						}
					}
					if fc.IsLeaf {
						// Materialize the leaf locally so near-field sums run
						// in place.
						ln := tree.BuildSubtree(fromWire(fc.Particles), child.box, ck, e.cfg.LeafCap)
						if cfg.Mode == PotentialMode {
							tree.BuildNodeExpansions(ln, cfg.Degree)
						}
						child.local = ln
					} else {
						child.isBranch = true
						child.owners = []int{int(fc.Sum.Owner)}
						child.leafCell = int(fc.Sum.Count) <= e.cfg.LeafCap
					}
					parent.children[ck.Octant()] = child
					index[fc.Sum.Key] = child
					// The parent placeholder now has children and is no
					// longer fetchable.
					parent.isBranch = false
				}
			}
		}
		active = parked
	}

	// Write results.
	if cfg.Mode == ForceMode {
		for _, w := range work {
			res.Accels[st.parts[w.idx].ID] = w.accF
		}
	} else {
		for _, w := range work {
			res.Potentials[st.parts[w.idx].ID] = w.accP
		}
	}
	st.forceT = pr.Stats().ComputeTime - t0
}

// serveFetch builds the reply for one requested cell: summaries of its
// children (or its particles, for a leaf asked to materialize).
func (e *Engine) serveFetch(st *localState, key uint64) fetchedCell {
	out := fetchedCell{Key: key}
	node := e.findLocalCell(st, key)
	if node == nil {
		return out
	}
	withExp := e.cfg.Mode == PotentialMode
	if node.IsLeaf() {
		// The requester asked for a leaf's contents: return the leaf
		// itself as a single "child" carrying particles. The requester
		// replaces the placeholder cell (keyed by the leaf) — but since a
		// parent pointer is keyed by the child's octant, we return it as a
		// child of itself is wrong; instead leaves are always shipped as
		// children of their parent (below), so this path only triggers for
		// a branch node that is itself a leaf cell.
		s := summaryOf(node, st.me, withExp)
		out.Children = []fetchedChild{{Sum: s, IsLeaf: true, Particles: toWire(node.Particles)}}
		return out
	}
	for _, c := range node.Children {
		if c == nil || c.Count == 0 {
			continue
		}
		fc := fetchedChild{Sum: summaryOf(c, st.me, withExp)}
		if c.IsLeaf() {
			fc.IsLeaf = true
			fc.Particles = toWire(c.Particles)
		}
		out.Children = append(out.Children, fc)
	}
	return out
}

// findLocalCell resolves a packed cell key to a node of this processor's
// local subtrees: the nearest branch ancestor is located through the
// lookup structure and the remaining path is walked down.
func (e *Engine) findLocalCell(st *localState, key uint64) *tree.Node {
	ck := keys.CellKeyFromUint64(key)
	anc := ck
	for {
		if n := st.lookup.find(anc.Uint64()); n != nil {
			// Walk down from the branch root to the requested cell.
			cur := n
			for lvl := int(anc.Level); lvl < int(ck.Level); lvl++ {
				oct := int(ck.Key>>(3*uint(int(ck.Level)-lvl-1))) & 7
				if cur.IsLeaf() {
					return nil
				}
				cur = cur.Children[oct]
				if cur == nil {
					return nil
				}
			}
			return cur
		}
		if anc.Level == 0 {
			return nil
		}
		anc = anc.Parent()
	}
}
