package parbh

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/msg"
)

// TestWireCodecExhaustive proves that every payload type an SPSA, SPDA,
// or DPDA step can put on the wire has a registered transport codec and
// round-trips losslessly. The strict machine panics on any Send of an
// unregistered type, and copy-on-send forces every local payload
// through encode/decode exactly as a remote send would — so a passing
// run certifies both exhaustiveness and codec fidelity for the whole
// protocol (branch exchange, tree build, shipping, load balance,
// migration), not just the types a hand-written list remembers.
func TestWireCodecExhaustive(t *testing.T) {
	cases := []struct {
		name  string
		cfg   Config
		steps int
	}{
		{"spsa/force/function", Config{
			Scheme: SPSA, Mode: ForceMode, Alpha: 0.67, Eps: 0.01, GridLog2: 2,
		}, 1},
		{"spsa/force/data", Config{
			Scheme: SPSA, Mode: ForceMode, Shipping: DataShipping, Alpha: 0.67, Eps: 0.01, GridLog2: 2,
		}, 1},
		{"spda/force/data", Config{
			Scheme: SPDA, Mode: ForceMode, Shipping: DataShipping, Alpha: 0.67, Eps: 0.01, GridLog2: 2,
		}, 1},
		{"spda/potential/nonreplicated", Config{
			Scheme: SPDA, Mode: PotentialMode, Shipping: DataShipping, Alpha: 0.67,
			Degree: 2, GridLog2: 2, TreeBuild: NonReplicatedBuild,
		}, 1},
		{"dpda/force/function", Config{
			Scheme: DPDA, Mode: ForceMode, Alpha: 0.67, Eps: 0.01,
		}, 2},
		{"dpda/force/data", Config{
			Scheme: DPDA, Mode: ForceMode, Shipping: DataShipping, Alpha: 0.67, Eps: 0.01,
		}, 2},
		{"spsa/force/data-naive", Config{
			Scheme: SPSA, Mode: ForceMode, Shipping: DataShippingNaive, Alpha: 0.67, Eps: 0.01, GridLog2: 2,
		}, 1},
		// LET runs two steps so the cache-marker wire path (Cached sections)
		// crosses the codec too, not just full sections.
		{"spsa/force/let", Config{
			Scheme: SPSA, Mode: ForceMode, Shipping: LETShipping, Alpha: 0.67, Eps: 0.01, GridLog2: 2,
		}, 2},
		{"dpda/force/let", Config{
			Scheme: DPDA, Mode: ForceMode, Shipping: LETShipping, Alpha: 0.67, Eps: 0.01,
		}, 2},
		{"spda/potential/let", Config{
			Scheme: SPDA, Mode: PotentialMode, Shipping: LETShipping, Alpha: 0.67, Degree: 2, GridLog2: 2,
		}, 2},
	}
	const ranks = 4
	set := dist.MustNamed("g", 600, 7)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := runEngine(t, set, tc.cfg, tc.steps, false)
			got := runEngine(t, set, tc.cfg, tc.steps, true)
			for s := range want {
				if got[s].Stats != want[s].Stats {
					t.Errorf("step %d: strict-wire stats = %+v, want %+v", s, got[s].Stats, want[s].Stats)
				}
				if got[s].CommWords != want[s].CommWords {
					t.Errorf("step %d: strict-wire comm words = %d, want %d", s, got[s].CommWords, want[s].CommWords)
				}
				if got[s].CommMessages != want[s].CommMessages {
					t.Errorf("step %d: strict-wire comm messages = %d, want %d", s, got[s].CommMessages, want[s].CommMessages)
				}
				for i := range want[s].Accels {
					if got[s].Accels[i] != want[s].Accels[i] {
						t.Errorf("step %d: accel %d differs after codec round trip", s, i)
						break
					}
				}
				for i := range want[s].Potentials {
					if got[s].Potentials[i] != want[s].Potentials[i] {
						t.Errorf("step %d: potential %d differs after codec round trip", s, i)
						break
					}
				}
			}
		})
	}
}

// runEngine executes steps of one configuration, optionally on a
// strict-wire copy-on-send machine.
func runEngine(t *testing.T, set *dist.Set, cfg Config, steps int, strict bool) []*Result {
	t.Helper()
	const ranks = 4
	m := msg.NewMachine(ranks, msg.CM5())
	if strict {
		m.SetStrictWire(true)
		m.SetCopyOnSend(true)
	}
	e, err := New(m, set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*Result, steps)
	for i := range out {
		out[i] = e.Step()
	}
	return out
}
