package parbh

import (
	"runtime"
	"testing"

	"repro/internal/dist"
	"repro/internal/msg"
)

// The LET engine's whole correctness contract is that it is an
// *implementation strategy*, not a different algorithm: accelerations,
// potentials, and aggregate interaction Stats must be bit-identical to
// function shipping, for every formulation, on every step of a
// multi-step run (so the load-return path that feeds SPDA/DPDA
// rebalancing is exercised too).

func letGoldenCases() []struct {
	name string
	cfg  Config
} {
	return []struct {
		name string
		cfg  Config
	}{
		{"spsa/force", Config{Scheme: SPSA, Mode: ForceMode, Alpha: 0.67, Eps: 0.01, GridLog2: 2}},
		{"spda/force", Config{Scheme: SPDA, Mode: ForceMode, Alpha: 0.67, Eps: 0.01, GridLog2: 2}},
		{"dpda/force", Config{Scheme: DPDA, Mode: ForceMode, Alpha: 0.67, Eps: 0.01}},
		{"spda/potential", Config{Scheme: SPDA, Mode: PotentialMode, Alpha: 0.67, Degree: 2, GridLog2: 2}},
	}
}

func runShipping(t *testing.T, set *dist.Set, cfg Config, ship Shipping, steps, ranks int) []*Result {
	t.Helper()
	cfg.Shipping = ship
	m := msg.NewMachine(ranks, msg.CM5())
	e, err := New(m, set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*Result, steps)
	for i := range out {
		out[i] = e.Step()
	}
	return out
}

func compareResults(t *testing.T, want, got *Result, step int) {
	t.Helper()
	if got.Stats != want.Stats {
		t.Errorf("step %d: stats = %+v, want %+v", step, got.Stats, want.Stats)
	}
	for i := range want.Accels {
		if got.Accels[i] != want.Accels[i] {
			t.Fatalf("step %d: accel %d = %v, want %v", step, i, got.Accels[i], want.Accels[i])
		}
	}
	for i := range want.Potentials {
		if got.Potentials[i] != want.Potentials[i] {
			t.Fatalf("step %d: potential %d = %v, want %v", step, i, got.Potentials[i], want.Potentials[i])
		}
	}
}

// TestLETMatchesFunctionShipping pins the bit-identity contract over
// three steps per formulation, and that the cross-step cache actually
// fires once the decomposition settles (positions are static here, so
// the final step must serve some sections from cache).
func TestLETMatchesFunctionShipping(t *testing.T) {
	set := dist.MustNamed("g", 1500, 42)
	const steps, ranks = 3, 8
	for _, tc := range letGoldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			want := runShipping(t, set, tc.cfg, FunctionShipping, steps, ranks)
			got := runShipping(t, set, tc.cfg, LETShipping, steps, ranks)
			for s := range want {
				compareResults(t, want[s], got[s], s)
			}
			if got[steps-1].LETCacheHits == 0 {
				t.Errorf("no LET cache hits on warm step %d", steps-1)
			}
			if got[0].LETCacheHits != 0 {
				t.Errorf("cold step reported %d cache hits", got[0].LETCacheHits)
			}
			if got[0].Phases[PhaseLET] <= 0 {
				t.Errorf("LET exchange phase has no simulated time: %v", got[0].Phases)
			}
		})
	}
}

// TestLETCacheNeverServesStale integrates the system (positions change
// every step through SetParticles, as the time integrator does) and
// checks that cached sections never leak stale node data: every step
// must still match function shipping bit-for-bit under the same motion.
func TestLETCacheNeverServesStale(t *testing.T) {
	set := dist.MustNamed("g", 1200, 7)
	const steps, ranks = 4, 8
	cfg := Config{Scheme: SPSA, Mode: ForceMode, Alpha: 0.67, Eps: 0.01, GridLog2: 2}

	run := func(ship Shipping) ([]*Result, int64) {
		cfg.Shipping = ship
		m := msg.NewMachine(ranks, msg.CM5())
		e, err := New(m, set, cfg)
		if err != nil {
			t.Fatal(err)
		}
		center := e.Domain().Center()
		var hits int64
		out := make([]*Result, steps)
		for s := range out {
			out[s] = e.Step()
			hits += out[s].LETCacheHits
			// Contract a slowly shrinking subset of particles toward the
			// domain centre: most ranks' sections change, some stay
			// bit-identical — both cache paths run every step.
			upd := make([]dist.Particle, set.N())
			for _, q := range set.Particles {
				upd[q.ID] = q
			}
			for proc := range e.Parts() {
				for _, q := range e.Parts()[proc] {
					upd[q.ID] = q
					if q.ID%3 == s%3 {
						upd[q.ID].Pos = q.Pos.Add(center.Sub(q.Pos).Scale(0.01))
					}
				}
			}
			e.SetParticles(upd)
		}
		return out, hits
	}

	want, _ := run(FunctionShipping)
	got, hits := run(LETShipping)
	for s := range want {
		compareResults(t, want[s], got[s], s)
	}
	if hits == 0 {
		t.Error("mutation run exercised no cache hits; weaken the perturbation")
	}
}

// TestLETInvariantUnderHostParallelism pins GOMAXPROCS-invariance of the
// hybrid intra-rank traversal: the worker-order shard merge must make
// Stats, loads (observable through the next step's rebalancing), and the
// results themselves independent of host parallelism.
func TestLETInvariantUnderHostParallelism(t *testing.T) {
	set := dist.MustNamed("g", 1500, 42)
	cfg := Config{Scheme: SPDA, Mode: ForceMode, Alpha: 0.67, Eps: 0.01, GridLog2: 2}
	run := func() []*Result { return runShipping(t, set, cfg, LETShipping, 2, 8) }

	old := runtime.GOMAXPROCS(1)
	seq := run()
	runtime.GOMAXPROCS(4)
	par := run()
	runtime.GOMAXPROCS(old)
	for s := range seq {
		compareResults(t, seq[s], par[s], s)
		if seq[s].CommWords != par[s].CommWords {
			t.Errorf("step %d: comm words differ across GOMAXPROCS: %d vs %d",
				s, seq[s].CommWords, par[s].CommWords)
		}
	}
}

// TestNaiveDataShippingMatchesCached pins that the per-visit baseline is
// the same physics as cached data shipping — identical accelerations and
// Stats — while shipping strictly more words (the point of the §4.2
// comparison), and that LET undercuts both.
func TestNaiveDataShippingMatchesCached(t *testing.T) {
	set := dist.MustNamed("g", 1200, 7)
	cfg := Config{Scheme: SPSA, Mode: ForceMode, Alpha: 0.67, Eps: 0.01, GridLog2: 2}
	cached := runShipping(t, set, cfg, DataShipping, 1, 8)[0]
	naive := runShipping(t, set, cfg, DataShippingNaive, 1, 8)[0]
	letR := runShipping(t, set, cfg, LETShipping, 1, 8)[0]

	compareResults(t, cached, naive, 0)
	if naive.CommWords <= cached.CommWords {
		t.Errorf("naive data shipping words = %d, want > cached %d", naive.CommWords, cached.CommWords)
	}
	if letR.CommWords >= naive.CommWords {
		t.Errorf("LET words = %d, want < naive data shipping %d", letR.CommWords, naive.CommWords)
	}
}
