package parbh

import (
	"math/rand"
	"testing"

	"repro/internal/dist"
	"repro/internal/msg"
)

// The DPDA local-tree phase reuses a persistent incremental builder per
// rank. The two-clock rule requires that reuse to be invisible in every
// simulated quantity: a multi-step run with warm builders must be
// bit-identical — accelerations, interaction Stats, communication
// volume, branch counts — to the same run with the builders discarded
// before every step (the from-scratch path). SPSA/SPDA never retain
// build state, so for them the comparison doubles as a determinism
// check. Bodies are advanced between steps so the retained sorted order
// and tree are genuinely stale each time.
func TestStepIncrementalBuildersMatchCold(t *testing.T) {
	for _, scheme := range []Scheme{SPSA, SPDA, DPDA} {
		t.Run(scheme.String(), func(t *testing.T) {
			makeEngine := func() (*Engine, []dist.Particle) {
				s := dist.MustNamed("g", 2400, 77)
				m := msg.NewMachine(8, msg.CM5())
				e, err := New(m, s, Config{Scheme: scheme, Mode: ForceMode, Alpha: 0.67, Eps: 0.01, GridLog2: 4})
				if err != nil {
					t.Fatal(err)
				}
				bodies := append([]dist.Particle(nil), s.Particles...)
				return e, bodies
			}

			warm, warmBodies := makeEngine()
			cold, coldBodies := makeEngine()
			rng := rand.New(rand.NewSource(99))
			const dt = 0.05 // large enough to force migration between ranks

			for step := 0; step < 4; step++ {
				wr := warm.Step()
				for i := range cold.builders {
					cold.builders[i] = nil // discard retained state: next build is from scratch
				}
				cr := cold.Step()

				if wr.Stats != cr.Stats {
					t.Fatalf("step %d: stats differ: warm %+v cold %+v", step, wr.Stats, cr.Stats)
				}
				if wr.CommWords != cr.CommWords || wr.CommMessages != cr.CommMessages {
					t.Fatalf("step %d: comm differs: %d/%d vs %d/%d",
						step, wr.CommWords, wr.CommMessages, cr.CommWords, cr.CommMessages)
				}
				if wr.BranchNodes != cr.BranchNodes {
					t.Fatalf("step %d: branch nodes differ: %d vs %d", step, wr.BranchNodes, cr.BranchNodes)
				}
				for i := range wr.Accels {
					if wr.Accels[i] != cr.Accels[i] {
						t.Fatalf("step %d: accel %d differs: %v vs %v", step, i, wr.Accels[i], cr.Accels[i])
					}
				}

				// Advance both systems identically (forward Euler on the
				// engine's own accelerations) plus a little shared noise so
				// consecutive steps exercise different trees and migrations.
				for i := range warmBodies {
					warmBodies[i].Vel = warmBodies[i].Vel.Add(wr.Accels[warmBodies[i].ID].Scale(dt))
					warmBodies[i].Pos = warmBodies[i].Pos.Add(warmBodies[i].Vel.Scale(dt))
					warmBodies[i].Pos.X += (rng.Float64() - 0.5) * 0.1
					coldBodies[i] = warmBodies[i]
				}
				warm.SetParticles(warmBodies)
				cold.SetParticles(coldBodies)
			}

			if scheme == DPDA {
				active := 0
				for _, b := range warm.builders {
					if b != nil && b.Tree() != nil {
						active++
					}
				}
				if active == 0 {
					t.Fatal("DPDA run never engaged the incremental builders")
				}
			}
		})
	}
}
