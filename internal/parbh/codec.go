package parbh

import (
	"fmt"

	"repro/internal/let"
	"repro/internal/msg"
	"repro/internal/transport"
	"repro/internal/tree"
	"repro/internal/vec"
)

// Wire IDs 31–50 are reserved for this package (see the block table in
// internal/transport/codec.go). Everything an SPSA/SPDA/DPDA step can
// put on the wire is registered here: particle migrations, the
// function-shipping request/reply bins, branch summaries for the tree
// merge, the data-shipping cell fetches, and the end-of-step result
// gather envelopes. The codec exhaustiveness test runs full steps on a
// strict-wire machine to keep this list honest.
const (
	idWireParticles uint16 = 31
	idReqBin        uint16 = 32
	idRepBin        uint16 = 33
	idSummary       uint16 = 34
	idSummaries     uint16 = 35
	idFetchedCells  uint16 = 36
	idRankOut       uint16 = 37
	idStepOutputs   uint16 = 38
	idLETBounds     uint16 = 39
	idLETShip       uint16 = 40
	idLETLoad       uint16 = 41
)

func putV3(w *transport.Writer, v vec.V3) {
	w.F64(v.X)
	w.F64(v.Y)
	w.F64(v.Z)
}

func getV3(r *transport.Reader) vec.V3 {
	return vec.V3{X: r.F64(), Y: r.F64(), Z: r.F64()}
}

func putF64s(w *transport.Writer, v []float64) {
	w.Len(len(v), v == nil)
	for _, x := range v {
		w.F64(x)
	}
}

func getF64s(r *transport.Reader) []float64 {
	n, notNil := r.SliceLen(8)
	if !notNil || r.Err() != nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.F64()
	}
	return out
}

func putI32s(w *transport.Writer, v []int32) {
	w.Len(len(v), v == nil)
	for _, x := range v {
		w.I32(x)
	}
}

func getI32s(r *transport.Reader) []int32 {
	n, notNil := r.SliceLen(4)
	if !notNil || r.Err() != nil {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = r.I32()
	}
	return out
}

func putU8s(w *transport.Writer, v []uint8) {
	w.Len(len(v), v == nil)
	for _, x := range v {
		w.U8(x)
	}
}

func getU8s(r *transport.Reader) []uint8 {
	n, notNil := r.SliceLen(1)
	if !notNil || r.Err() != nil {
		return nil
	}
	out := make([]uint8, n)
	for i := range out {
		out[i] = r.U8()
	}
	return out
}

func putSection(w *transport.Writer, s *let.Section) {
	w.U64(s.BranchKey)
	w.I64(s.Epoch)
	if s.Cached {
		w.U8(1)
		return
	}
	w.U8(0)
	putU8s(w, s.Kind)
	putI32s(w, s.Skip)
	putF64s(w, s.ComX)
	putF64s(w, s.ComY)
	putF64s(w, s.ComZ)
	putF64s(w, s.Mass)
	putF64s(w, s.Side)
	putI32s(w, s.LeafLo)
	putI32s(w, s.LeafHi)
	putF64s(w, s.Exp)
	w.I32(s.ExpStride)
	putI32s(w, s.PID)
	putF64s(w, s.PX)
	putF64s(w, s.PY)
	putF64s(w, s.PZ)
	putF64s(w, s.PM)
}

func getSection(r *transport.Reader) *let.Section {
	s := &let.Section{BranchKey: r.U64(), Epoch: r.I64()}
	if r.U8() != 0 {
		s.Cached = true
		return s
	}
	s.Kind = getU8s(r)
	s.Skip = getI32s(r)
	s.ComX = getF64s(r)
	s.ComY = getF64s(r)
	s.ComZ = getF64s(r)
	s.Mass = getF64s(r)
	s.Side = getF64s(r)
	s.LeafLo = getI32s(r)
	s.LeafHi = getI32s(r)
	s.Exp = getF64s(r)
	s.ExpStride = r.I32()
	s.PID = getI32s(r)
	s.PX = getF64s(r)
	s.PY = getF64s(r)
	s.PZ = getF64s(r)
	s.PM = getF64s(r)
	return s
}

func putSummary(w *transport.Writer, s BranchSummary) {
	w.U64(s.Key)
	w.I32(s.Owner)
	w.I32(s.Count)
	w.F64(s.Mass)
	putV3(w, s.COM)
	putF64s(w, s.Exp)
}

func getSummary(r *transport.Reader) BranchSummary {
	var s BranchSummary
	s.Key = r.U64()
	s.Owner = r.I32()
	s.Count = r.I32()
	s.Mass = r.F64()
	s.COM = getV3(r)
	s.Exp = getF64s(r)
	return s
}

func init() {
	transport.Register(idWireParticles,
		func(w *transport.Writer, v []wireParticle) {
			w.Len(len(v), v == nil)
			for _, q := range v {
				w.I32(q.ID)
				w.F64(q.Mass)
				putV3(w, q.Pos)
				putV3(w, q.Vel)
			}
		},
		func(r *transport.Reader) ([]wireParticle, error) {
			// One encoded particle: i32 ID + mass + two V3s = 60 bytes.
			n, notNil := r.SliceLen(60)
			if !notNil || r.Err() != nil {
				return nil, r.Err()
			}
			out := wirePool.get(n)
			for i := range out {
				out[i].ID = r.I32()
				out[i].Mass = r.F64()
				out[i].Pos = getV3(r)
				out[i].Vel = getV3(r)
			}
			return out, r.Err()
		})
	transport.Register(idReqBin,
		func(w *transport.Writer, v reqBin) {
			w.Len(len(v.Entries), v.Entries == nil)
			for _, e := range v.Entries {
				w.U64(e.Key)
				putV3(w, e.Pos)
				w.I32(e.Self)
				w.I32(e.Slot)
			}
		},
		func(r *transport.Reader) (reqBin, error) {
			n, notNil := r.SliceLen(8 * 5)
			if !notNil || r.Err() != nil {
				return reqBin{}, r.Err()
			}
			es := reqEntryPool.get(n)
			for i := range es {
				es[i].Key = r.U64()
				es[i].Pos = getV3(r)
				es[i].Self = r.I32()
				es[i].Slot = r.I32()
			}
			return reqBin{Entries: es}, r.Err()
		})
	transport.Register(idRepBin,
		func(w *transport.Writer, v repBin) {
			w.Len(len(v.Slots), v.Slots == nil)
			for _, s := range v.Slots {
				w.I32(s)
			}
			w.Len(len(v.F), v.F == nil)
			for _, f := range v.F {
				putV3(w, f)
			}
			putF64s(w, v.P)
		},
		func(r *transport.Reader) (repBin, error) {
			var v repBin
			if n, notNil := r.SliceLen(4); notNil && r.Err() == nil {
				v.Slots = slotPool.get(n)
				for i := range v.Slots {
					v.Slots[i] = r.I32()
				}
			}
			if n, notNil := r.SliceLen(24); notNil && r.Err() == nil {
				v.F = vec3Pool.get(n)
				for i := range v.F {
					v.F[i] = getV3(r)
				}
			}
			if n, notNil := r.SliceLen(8); notNil && r.Err() == nil {
				v.P = f64Pool.get(n)
				for i := range v.P {
					v.P[i] = r.F64()
				}
			}
			return v, r.Err()
		})
	transport.Register(idSummary,
		func(w *transport.Writer, v BranchSummary) { putSummary(w, v) },
		func(r *transport.Reader) (BranchSummary, error) { return getSummary(r), r.Err() })
	transport.Register(idSummaries,
		func(w *transport.Writer, v []BranchSummary) {
			w.Len(len(v), v == nil)
			for _, s := range v {
				putSummary(w, s)
			}
		},
		func(r *transport.Reader) ([]BranchSummary, error) {
			// Minimum encoded summary (nil Exp): 52 bytes.
			n, notNil := r.SliceLen(52)
			if !notNil || r.Err() != nil {
				return nil, r.Err()
			}
			out := make([]BranchSummary, n)
			for i := range out {
				out[i] = getSummary(r)
			}
			return out, r.Err()
		})
	transport.Register(idFetchedCells,
		func(w *transport.Writer, v []fetchedCell) {
			w.Len(len(v), v == nil)
			for _, c := range v {
				w.U64(c.Key)
				w.Len(len(c.Children), c.Children == nil)
				for _, fc := range c.Children {
					putSummary(w, fc.Sum)
					if fc.IsLeaf {
						w.U8(1)
					} else {
						w.U8(0)
					}
					w.Len(len(fc.Particles), fc.Particles == nil)
					for _, q := range fc.Particles {
						w.I32(q.ID)
						w.F64(q.Mass)
						putV3(w, q.Pos)
						putV3(w, q.Vel)
					}
				}
			}
		},
		func(r *transport.Reader) ([]fetchedCell, error) {
			n, notNil := r.SliceLen(8)
			if !notNil || r.Err() != nil {
				return nil, r.Err()
			}
			out := make([]fetchedCell, n)
			for i := range out {
				out[i].Key = r.U64()
				nc, cNotNil := r.SliceLen(52)
				if r.Err() != nil {
					return nil, r.Err()
				}
				if !cNotNil {
					continue
				}
				out[i].Children = make([]fetchedChild, nc)
				for j := range out[i].Children {
					fc := &out[i].Children[j]
					fc.Sum = getSummary(r)
					fc.IsLeaf = r.U8() != 0
					np, pNotNil := r.SliceLen(60)
					if r.Err() != nil {
						return nil, r.Err()
					}
					if !pNotNil {
						continue
					}
					fc.Particles = make([]wireParticle, np)
					for k := range fc.Particles {
						fc.Particles[k].ID = r.I32()
						fc.Particles[k].Mass = r.F64()
						fc.Particles[k].Pos = getV3(r)
						fc.Particles[k].Vel = getV3(r)
					}
				}
			}
			return out, r.Err()
		})
	transport.Register(idRankOut,
		func(w *transport.Writer, v rankOut) {
			w.I32(v.Rank)
			w.F64(v.MsgStats.ComputeTime)
			w.F64(v.MsgStats.CommTime)
			w.I64(v.MsgStats.Messages)
			w.I64(v.MsgStats.Words)
			w.F64(v.MsgStats.Flops)
			w.I64(v.TreeStats.MACTests)
			w.I64(v.TreeStats.PC)
			w.I64(v.TreeStats.PP)
			w.F64(v.ForceT)
			w.I32(v.Branches)
			w.Len(len(v.IDs), v.IDs == nil)
			for _, id := range v.IDs {
				w.I32(id)
			}
			w.Len(len(v.F), v.F == nil)
			for _, f := range v.F {
				putV3(w, f)
			}
			putF64s(w, v.P)
		},
		func(r *transport.Reader) (rankOut, error) {
			var v rankOut
			v.Rank = r.I32()
			v.MsgStats = msg.Stats{
				ComputeTime: r.F64(),
				CommTime:    r.F64(),
				Messages:    r.I64(),
				Words:       r.I64(),
				Flops:       r.F64(),
			}
			v.TreeStats = tree.Stats{MACTests: r.I64(), PC: r.I64(), PP: r.I64()}
			v.ForceT = r.F64()
			v.Branches = r.I32()
			if n, notNil := r.SliceLen(4); notNil && r.Err() == nil {
				v.IDs = make([]int32, n)
				for i := range v.IDs {
					v.IDs[i] = r.I32()
				}
			}
			if n, notNil := r.SliceLen(24); notNil && r.Err() == nil {
				v.F = make([]vec.V3, n)
				for i := range v.F {
					v.F[i] = getV3(r)
				}
			}
			v.P = getF64s(r)
			return v, r.Err()
		})
	transport.Register(idLETBounds,
		func(w *transport.Writer, v let.Bounds) {
			if v.Has {
				w.U8(1)
			} else {
				w.U8(0)
			}
			putV3(w, v.Min)
			putV3(w, v.Max)
		},
		func(r *transport.Reader) (let.Bounds, error) {
			var v let.Bounds
			v.Has = r.U8() != 0
			v.Min = getV3(r)
			v.Max = getV3(r)
			return v, r.Err()
		})
	transport.Register(idLETShip,
		func(w *transport.Writer, v letShipMsg) {
			w.Len(len(v.Secs), v.Secs == nil)
			for _, s := range v.Secs {
				putSection(w, s)
			}
		},
		func(r *transport.Reader) (letShipMsg, error) {
			// Minimum encoded section (cached marker): key + epoch + flag
			// = 17 bytes.
			n, notNil := r.SliceLen(17)
			if !notNil || r.Err() != nil {
				return letShipMsg{}, r.Err()
			}
			v := letShipMsg{Secs: make([]*let.Section, n)}
			for i := range v.Secs {
				v.Secs[i] = getSection(r)
			}
			return v, r.Err()
		})
	transport.Register(idLETLoad,
		func(w *transport.Writer, v letLoadMsg) {
			w.Len(len(v.Keys), v.Keys == nil)
			for _, k := range v.Keys {
				w.U64(k)
			}
			putI32s(w, v.Nodes)
			w.Len(len(v.Deltas), v.Deltas == nil)
			for _, d := range v.Deltas {
				w.I64(d)
			}
		},
		func(r *transport.Reader) (letLoadMsg, error) {
			var v letLoadMsg
			if n, notNil := r.SliceLen(8); notNil && r.Err() == nil {
				v.Keys = make([]uint64, n)
				for i := range v.Keys {
					v.Keys[i] = r.U64()
				}
			}
			v.Nodes = getI32s(r)
			if n, notNil := r.SliceLen(8); notNil && r.Err() == nil {
				v.Deltas = make([]int64, n)
				for i := range v.Deltas {
					v.Deltas[i] = r.I64()
				}
			}
			return v, r.Err()
		})
	transport.Register(idStepOutputs,
		func(w *transport.Writer, v stepOutputs) {
			w.I64(int64(v.Step))
			w.Len(len(v.Outs), v.Outs == nil)
			for _, o := range v.Outs {
				transport.MustEncodeAny(w, o)
			}
		},
		func(r *transport.Reader) (stepOutputs, error) {
			var v stepOutputs
			v.Step = int(r.I64())
			n, notNil := r.SliceLen(2)
			if !notNil || r.Err() != nil {
				return v, r.Err()
			}
			v.Outs = make([]rankOut, n)
			for i := range v.Outs {
				o, err := transport.DecodeAny(r)
				if err != nil {
					return v, err
				}
				ro, ok := o.(rankOut)
				if !ok {
					return v, fmt.Errorf("parbh: stepOutputs element %d is %T, want rankOut", i, o)
				}
				v.Outs[i] = ro
			}
			return v, r.Err()
		})
}
