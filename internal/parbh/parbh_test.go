package parbh

import (
	"math"
	"testing"

	"repro/internal/direct"
	"repro/internal/dist"
	"repro/internal/msg"
	"repro/internal/phys"
	"repro/internal/tree"
)

// runStep builds an engine on an ideal machine and runs one step.
func runStep(t *testing.T, set *dist.Set, p int, cfg Config) *Result {
	t.Helper()
	m := msg.NewMachine(p, msg.Ideal())
	e, err := New(m, set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e.Step()
}

func TestSingleProcessorDPDAMatchesSerialExactly(t *testing.T) {
	// With one processor the DPDA decomposition owns the whole tree, so
	// the parallel code path must reproduce the serial Barnes–Hut forces
	// bit for bit.
	s := dist.MustNamed("plummer", 1500, 1)
	res := runStep(t, s, 1, Config{Scheme: DPDA, Mode: ForceMode, Alpha: 0.7, Eps: 0.01})
	tr := tree.BuildKeyed(s.Particles, s.Domain, tree.DefaultLeafCap)
	for _, q := range s.Particles {
		want := tr.AccelAt(q.Pos, q.ID, 0.7, 0.01, nil)
		// The engine Morton-sorts particles, permuting leaf summation
		// order; only last-ulp differences are allowed.
		if res.Accels[q.ID].Sub(want).Norm() > 1e-13*(1+want.Norm()) {
			t.Fatalf("particle %d: parallel %v, serial %v", q.ID, res.Accels[q.ID], want)
		}
	}
}

func TestSingleProcessorDPDAPotentialMatchesSerialExactly(t *testing.T) {
	s := dist.MustNamed("g", 1000, 2)
	res := runStep(t, s, 1, Config{Scheme: DPDA, Mode: PotentialMode, Alpha: 0.67, Degree: 4})
	tr := tree.BuildKeyed(s.Particles, s.Domain, tree.DefaultLeafCap)
	tr.BuildExpansions(4)
	for _, q := range s.Particles {
		want := tr.PotentialAt(q.Pos, q.ID, 0.67, nil)
		if math.Abs(res.Potentials[q.ID]-want) > 1e-13*(1+math.Abs(want)) {
			t.Fatalf("particle %d: parallel %v, serial %v", q.ID, res.Potentials[q.ID], want)
		}
	}
}

// forceErrVsDirect measures the engine's force error against direct
// summation.
func forceErrVsDirect(t *testing.T, s *dist.Set, res *Result, eps float64) float64 {
	t.Helper()
	want := direct.AccelsParallel(s.Particles, eps)
	return phys.FractionalErrorV3(want, res.Accels)
}

func TestSchemesMatchDirectSummation(t *testing.T) {
	s := dist.MustNamed("plummer", 2500, 3)
	// Serial BH error as the yardstick.
	tr := tree.Build(s.Particles, tree.Options{Domain: s.Domain.Cube()})
	serial, _ := tr.AccelAll(s.Particles, 0.7, 0.01)
	want := direct.AccelsParallel(s.Particles, 0.01)
	serialErr := phys.FractionalErrorV3(want, serial)

	for _, tc := range []struct {
		scheme Scheme
		p      int
	}{
		{SPSA, 4}, {SPDA, 4}, {DPDA, 4}, {DPDA, 7}, {SPSA, 8}, {SPDA, 8}, {DPDA, 8},
	} {
		res := runStep(t, s, tc.p, Config{Scheme: tc.scheme, Mode: ForceMode, Alpha: 0.7, Eps: 0.01})
		err := forceErrVsDirect(t, s, res, 0.01)
		// The distributed tree forces subdivision to the branch level, so
		// its MAC decisions differ slightly from the serial tree's; both
		// must stay within the same approximation regime.
		if err > 3*serialErr+1e-12 {
			t.Fatalf("%v p=%d: error %v vs serial %v", tc.scheme, tc.p, err, serialErr)
		}
	}
}

func TestResultsIndependentOfProcessorCount(t *testing.T) {
	s := dist.MustNamed("s_10g_b", 2000, 4)
	ref := runStep(t, s, 2, Config{Scheme: DPDA, Mode: ForceMode, Alpha: 0.7, Eps: 0.01})
	for _, p := range []int{3, 5, 8} {
		res := runStep(t, s, p, Config{Scheme: DPDA, Mode: ForceMode, Alpha: 0.7, Eps: 0.01})
		// Decomposition-induced differences are small: the same algorithm
		// with slightly different forced subdivisions.
		if e := phys.FractionalErrorV3(ref.Accels, res.Accels); e > 5e-3 {
			t.Fatalf("p=%d diverges from p=2 by %v", p, e)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	s := dist.MustNamed("g", 1200, 5)
	cfg := Config{Scheme: SPDA, Mode: ForceMode, Alpha: 0.7, Eps: 0.01, BinSize: 16}
	a := runStep(t, s, 8, cfg)
	b := runStep(t, s, 8, cfg)
	for i := range a.Accels {
		if a.Accels[i] != b.Accels[i] {
			t.Fatalf("particle %d differs across identical runs", i)
		}
	}
}

func TestSmallBinsStressFlowControl(t *testing.T) {
	// BinSize 2 forces constant flushing and the one-outstanding-bin rule;
	// results must not change.
	s := dist.MustNamed("g", 800, 6)
	big := runStep(t, s, 8, Config{Scheme: SPSA, Mode: ForceMode, Alpha: 0.7, Eps: 0.01, BinSize: 1000})
	small := runStep(t, s, 8, Config{Scheme: SPSA, Mode: ForceMode, Alpha: 0.7, Eps: 0.01, BinSize: 2})
	for i := range big.Accels {
		if big.Accels[i] != small.Accels[i] {
			t.Fatalf("bin size changed result for particle %d", i)
		}
	}
}

func TestDataShippingMatchesFunctionShipping(t *testing.T) {
	s := dist.MustNamed("plummer", 1500, 7)
	fn := runStep(t, s, 8, Config{Scheme: SPSA, Mode: ForceMode, Alpha: 0.7, Eps: 0.01})
	dt := runStep(t, s, 8, Config{Scheme: SPSA, Mode: ForceMode, Alpha: 0.7, Eps: 0.01, Shipping: DataShipping})
	if e := phys.FractionalErrorV3(fn.Accels, dt.Accels); e > 1e-9 {
		t.Fatalf("paradigms disagree by %v", e)
	}
}

func TestDataShippingVolumeGrowsWithDegree(t *testing.T) {
	// Section 4.2.1: data-shipping volume grows as Θ(k²); function
	// shipping stays flat.
	s := dist.MustNamed("g", 1200, 8)
	vol := func(sh Shipping, deg int) int64 {
		res := runStep(t, s, 8, Config{
			Scheme: SPSA, Mode: PotentialMode, Alpha: 0.67, Degree: deg, Shipping: sh,
		})
		return res.CommWords
	}
	f2, f6 := vol(FunctionShipping, 2), vol(FunctionShipping, 6)
	d2, d6 := vol(DataShipping, 2), vol(DataShipping, 6)
	if float64(f6) > 1.2*float64(f2) {
		t.Fatalf("function-shipping volume grew with degree: %d -> %d", f2, f6)
	}
	growth := float64(d6) / float64(d2)
	if growth < 1.5 {
		t.Fatalf("data-shipping volume barely grew with degree: %d -> %d", d2, d6)
	}
}

func TestPotentialModeMatchesDirect(t *testing.T) {
	s := dist.MustNamed("plummer", 1200, 9)
	res := runStep(t, s, 8, Config{Scheme: DPDA, Mode: PotentialMode, Alpha: 0.67, Degree: 5})
	want := direct.PotentialsParallel(s.Particles, 0)
	if e := phys.FractionalError(want, res.Potentials); e > 2e-3 {
		t.Fatalf("degree-5 potential error %v", e)
	}
}

func TestPotentialErrorTrendsAtEngineLevel(t *testing.T) {
	// Table 6 / Table 7 trends must hold end-to-end through the parallel
	// machinery, not just in the serial tree.
	s := dist.MustNamed("g", 1500, 10)
	want := direct.PotentialsParallel(s.Particles, 0)
	errAt := func(deg int, alpha float64) float64 {
		res := runStep(t, s, 4, Config{Scheme: DPDA, Mode: PotentialMode, Alpha: alpha, Degree: deg})
		return phys.FractionalError(want, res.Potentials)
	}
	e3, e5 := errAt(3, 0.67), errAt(5, 0.67)
	if e5 > e3 {
		t.Fatalf("error did not drop with degree: %v -> %v", e3, e5)
	}
	ea, eb := errAt(4, 0.67), errAt(4, 1.0)
	if eb < ea {
		t.Fatalf("error did not grow with alpha: %v -> %v", ea, eb)
	}
}

func TestPhaseTimesReported(t *testing.T) {
	s := dist.MustNamed("g", 1000, 11)
	m := msg.NewMachine(8, msg.NCube2())
	e, err := New(m, s, Config{Scheme: SPDA, Mode: ForceMode, Alpha: 0.7, Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	res := e.Step()
	var total float64
	for _, name := range res.PhaseOrder {
		dt, ok := res.Phases[name]
		if !ok {
			t.Fatalf("phase %q missing", name)
		}
		if dt < 0 {
			t.Fatalf("phase %q negative: %v", name, dt)
		}
		total += dt
	}
	if res.Phases[PhaseForce] <= 0 {
		t.Fatal("force phase has zero duration")
	}
	// Force computation dominates.
	if res.Phases[PhaseForce] < 0.5*total {
		t.Fatalf("force phase %v not dominant of %v", res.Phases[PhaseForce], total)
	}
	if res.SimTime <= 0 || res.SeqTime <= 0 {
		t.Fatalf("missing times: sim %v seq %v", res.SimTime, res.SeqTime)
	}
	if res.Efficiency <= 0 || res.Efficiency > 1.5 {
		t.Fatalf("implausible efficiency %v", res.Efficiency)
	}
}

func TestSPSALoadBalancePhaseIsZero(t *testing.T) {
	s := dist.MustNamed("g", 800, 12)
	m := msg.NewMachine(4, msg.NCube2())
	e, _ := New(m, s, Config{Scheme: SPSA, Mode: ForceMode, Alpha: 0.7, Eps: 0.01})
	res := e.Step()
	if res.Phases[PhaseLoadBal] != 0 {
		t.Fatalf("SPSA load-balancing phase = %v", res.Phases[PhaseLoadBal])
	}
}

func TestSPDAImprovesImbalanceOverSPSA(t *testing.T) {
	// The central claim of Section 5.1.1: on irregular distributions the
	// dynamic (Morton-run) assignment balances load better than the
	// static scatter. The two-Gaussian set spreads load over enough
	// clusters that runs can actually split it.
	s := dist.MustNamed("g2", 8000, 13)
	cfg := func(scheme Scheme) Config {
		return Config{Scheme: scheme, Mode: ForceMode, Alpha: 0.7, Eps: 0.01, GridLog2: 4}
	}
	mSPSA := msg.NewMachine(8, msg.NCube2())
	eSPSA, _ := New(mSPSA, s, cfg(SPSA))
	mSPDA := msg.NewMachine(8, msg.NCube2())
	eSPDA, _ := New(mSPDA, s, cfg(SPDA))
	// Let SPDA rebalance twice (its first step uses the static layout).
	eSPSA.Step()
	eSPDA.Step()
	eSPSA.Step()
	eSPDA.Step()
	r1 := eSPSA.Step()
	r2 := eSPDA.Step()
	if r2.Imbalance >= r1.Imbalance {
		t.Fatalf("SPDA imbalance %v not better than SPSA %v", r2.Imbalance, r1.Imbalance)
	}
	// Morton-run locality also reduces communication volume.
	if r2.CommWords >= r1.CommWords {
		t.Fatalf("SPDA volume %d not below SPSA %d", r2.CommWords, r1.CommWords)
	}
}

func TestDPDABalancesAfterFirstStep(t *testing.T) {
	s := dist.MustNamed("s_1g_a", 6000, 14)
	m := msg.NewMachine(8, msg.NCube2())
	e, _ := New(m, s, Config{Scheme: DPDA, Mode: ForceMode, Alpha: 0.7, Eps: 0.01})
	first := e.Step()
	second := e.Step()
	if second.Imbalance > first.Imbalance*1.05 {
		t.Fatalf("DPDA imbalance grew: %v -> %v", first.Imbalance, second.Imbalance)
	}
	if second.Imbalance > 2.0 {
		t.Fatalf("DPDA imbalance after rebalance = %v", second.Imbalance)
	}
}

func TestMultiStepConsistency(t *testing.T) {
	// Several steps with drifting particles: results must stay correct as
	// particles migrate between processors.
	s := dist.MustNamed("plummer", 1200, 15)
	m := msg.NewMachine(4, msg.Ideal())
	e, err := New(m, s, Config{Scheme: DPDA, Mode: ForceMode, Alpha: 0.7, Eps: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	cur := append([]dist.Particle(nil), s.Particles...)
	const dt = 0.05
	for step := 0; step < 3; step++ {
		res := e.Step()
		errDir := phys.FractionalErrorV3(direct.AccelsParallel(cur, 0.01), res.Accels)
		if errDir > 0.02 {
			t.Fatalf("step %d: error %v", step, errDir)
		}
		// Drift particles and feed the update back.
		for i := range cur {
			cur[i].Vel = cur[i].Vel.Add(res.Accels[cur[i].ID].Scale(dt))
			cur[i].Pos = cur[i].Pos.Add(cur[i].Vel.Scale(dt))
		}
		byID := make([]dist.Particle, len(cur))
		for _, q := range cur {
			byID[q.ID] = q
		}
		e.SetParticles(byID)
	}
}

func TestNonReplicatedBuildMatchesBroadcast(t *testing.T) {
	s := dist.MustNamed("g", 1200, 16)
	a := runStep(t, s, 8, Config{Scheme: SPSA, Mode: ForceMode, Alpha: 0.7, Eps: 0.01})
	b := runStep(t, s, 8, Config{Scheme: SPSA, Mode: ForceMode, Alpha: 0.7, Eps: 0.01, TreeBuild: NonReplicatedBuild})
	if e := phys.FractionalErrorV3(a.Accels, b.Accels); e > 1e-9 {
		t.Fatalf("construction variants disagree by %v", e)
	}
}

func TestSortedLookupMatchesHash(t *testing.T) {
	s := dist.MustNamed("g", 1000, 17)
	a := runStep(t, s, 8, Config{Scheme: SPSA, Mode: ForceMode, Alpha: 0.7, Eps: 0.01})
	b := runStep(t, s, 8, Config{Scheme: SPSA, Mode: ForceMode, Alpha: 0.7, Eps: 0.01, BranchLookup: SortedLookup})
	for i := range a.Accels {
		if a.Accels[i] != b.Accels[i] {
			t.Fatalf("lookup structures disagree at particle %d", i)
		}
	}
}

func TestHilbertOrderingWorks(t *testing.T) {
	s := dist.MustNamed("s_10g_a", 2000, 18)
	res := runStep(t, s, 8, Config{Scheme: SPDA, Mode: ForceMode, Alpha: 0.7, Eps: 0.01, Ordering: HilbertOrdering})
	if e := forceErrVsDirect(t, s, res, 0.01); e > 0.02 {
		t.Fatalf("Hilbert-ordered SPDA error %v", e)
	}
}

func TestEngineValidation(t *testing.T) {
	s := dist.MustNamed("g", 100, 19)
	m := msg.NewMachine(64, msg.Ideal())
	// 8 clusters < 64 processors must be rejected.
	if _, err := New(m, s, Config{Scheme: SPSA, GridLog2: 1}); err == nil {
		t.Fatal("engine accepted fewer clusters than processors")
	}
}

func TestSimulatedEfficiencyDecreasesWithP(t *testing.T) {
	// Fixed problem size: efficiency must fall as processors grow
	// (Amdahl + communication), as in every column of Table 5.
	s := dist.MustNamed("g", 4000, 20)
	eff := func(p int) float64 {
		m := msg.NewMachine(p, msg.CM5())
		e, err := New(m, s, Config{Scheme: DPDA, Mode: PotentialMode, Alpha: 0.67, Degree: 4})
		if err != nil {
			t.Fatal(err)
		}
		e.Step() // warm up the load balance
		return e.Step().Efficiency
	}
	e4, e16 := eff(4), eff(16)
	if e16 >= e4 {
		t.Fatalf("efficiency did not fall with p: p=4 %v, p=16 %v", e4, e16)
	}
	if e4 < 0.3 || e4 > 1.3 {
		t.Fatalf("implausible efficiency at p=4: %v", e4)
	}
}

func TestEfficiencyGrowsWithDegree(t *testing.T) {
	// Section 4.2.2 / Table 6: function-shipping efficiency increases
	// with the multipole degree because communication stays constant
	// while computation grows as Θ(k²). The problem must be large enough
	// that the force phase dominates the branch-summary broadcast (whose
	// volume does grow with the degree), as in the paper's runs.
	if testing.Short() {
		t.Skip("large problem")
	}
	s := dist.MustNamed("g", 12000, 21)
	eff := func(deg int) float64 {
		m := msg.NewMachine(8, msg.CM5())
		e, err := New(m, s, Config{Scheme: DPDA, Mode: PotentialMode, Alpha: 0.67, Degree: deg})
		if err != nil {
			t.Fatal(err)
		}
		e.Step() // first step balances by particle counts
		var sum float64
		const reps = 3
		for i := 0; i < reps; i++ {
			sum += e.Step().Efficiency
		}
		return sum / reps
	}
	// The paper's per-degree gain is a few percent (Table 6); at this
	// reduced scale the trend is present but modest, so compare widely
	// separated degrees and averaged steps to stay clear of simulated
	// service-order noise.
	e2, e6 := eff(2), eff(6)
	if e6 <= e2 {
		t.Fatalf("efficiency did not grow with degree: deg2 %v, deg6 %v", e2, e6)
	}
}

func TestBranchNodesReported(t *testing.T) {
	s := dist.MustNamed("g", 1000, 22)
	res := runStep(t, s, 4, Config{Scheme: SPSA, Mode: ForceMode, Alpha: 0.7, Eps: 0.01, GridLog2: 2})
	if res.BranchNodes == 0 || res.BranchNodes > 64 {
		t.Fatalf("BranchNodes = %d (grid has 64 clusters)", res.BranchNodes)
	}
	if res.CommWords <= 0 || res.CommMessages <= 0 {
		t.Fatalf("communication accounting missing: %d words, %d messages", res.CommWords, res.CommMessages)
	}
}

func TestStatsInteractionCountsMatchSerialScale(t *testing.T) {
	// Total interaction counts of the parallel run should be close to the
	// serial run (the work is the same algorithm).
	s := dist.MustNamed("plummer", 2000, 23)
	tr := tree.Build(s.Particles, tree.Options{Domain: s.Domain.Cube()})
	_, serial := tr.AccelAll(s.Particles, 0.7, 0.01)
	res := runStep(t, s, 8, Config{Scheme: DPDA, Mode: ForceMode, Alpha: 0.7, Eps: 0.01})
	ratio := float64(res.Stats.Interactions()) / float64(serial.Interactions())
	if ratio < 0.8 || ratio > 1.5 {
		t.Fatalf("parallel did %v× the serial interactions", ratio)
	}
}

func TestEmptyProcessorsHarmless(t *testing.T) {
	// More processors than occupied clusters: some processors own nothing.
	s := dist.MustNamed("s_1g_a", 300, 24) // tiny, highly concentrated
	res := runStep(t, s, 8, Config{Scheme: SPSA, Mode: ForceMode, Alpha: 0.7, Eps: 0.01, GridLog2: 2})
	if e := forceErrVsDirect(t, s, res, 0.01); e > 0.05 {
		t.Fatalf("error with empty processors: %v", e)
	}
}

func TestNewValidatesScheme(t *testing.T) {
	s := dist.MustNamed("g", 64, 25)
	m := msg.NewMachine(2, msg.Ideal())
	if _, err := New(m, s, Config{Scheme: Scheme(99)}); err == nil {
		t.Fatal("bogus scheme accepted")
	}
}

func TestEnumStrings(t *testing.T) {
	if SPSA.String() != "SPSA" || SPDA.String() != "SPDA" || DPDA.String() != "DPDA" {
		t.Fatal("scheme names wrong")
	}
	if ForceMode.String() != "force" || PotentialMode.String() != "potential" {
		t.Fatal("mode names wrong")
	}
	if FunctionShipping.String() != "function" || DataShipping.String() != "data" {
		t.Fatal("shipping names wrong")
	}
	if Scheme(99).String() == "" {
		t.Fatal("unknown scheme has empty name")
	}
}

func TestImbalanceFinite(t *testing.T) {
	s := dist.MustNamed("uniform", 500, 26)
	res := runStep(t, s, 4, Config{Scheme: SPSA, Mode: ForceMode, Alpha: 0.7, Eps: 0.01})
	if math.IsNaN(res.Imbalance) || res.Imbalance < 1 {
		t.Fatalf("imbalance = %v", res.Imbalance)
	}
}
