package parbh

import (
	"fmt"
	"sort"

	"repro/internal/keys"
	"repro/internal/phys"
	"repro/internal/tree"
	"repro/internal/vec"
)

// BranchSummary is the record describing one branch node that is
// exchanged in the tree-construction phase: enough to MAC-test the cell
// and compute accepted interactions (mass + centre of mass for force
// mode; the serialized multipole expansion for potential mode), plus the
// owner to ship rejected interactions to.
type BranchSummary struct {
	Key   uint64 // packed keys.CellKey
	Owner int32
	Count int32
	Mass  float64
	COM   vec.V3
	Exp   []float64 // serialized expansion; nil in force mode
}

// Words returns the modelled wire size in 8-byte words.
func (b BranchSummary) Words() int { return 7 + len(b.Exp) }

// summaryOf builds the summary of a local subtree root.
func summaryOf(n *tree.Node, owner int, withExp bool) BranchSummary {
	s := BranchSummary{
		Key:   n.Key.Uint64(),
		Owner: int32(owner),
		Count: int32(n.Count),
		Mass:  n.Mass,
		COM:   n.COM,
	}
	if withExp && n.Exp != nil {
		s.Exp = n.Exp.Floats()
	}
	return s
}

// pnode is a node of the processor-replicated global tree: the top tree
// plus one node per branch cell. A branch cell either points at the local
// subtree (owned here) or records its remote owners.
type pnode struct {
	cell  keys.CellKey
	box   vec.Box
	mass  float64
	com   vec.V3
	count int
	exp   *phys.Expansion

	children [8]*pnode
	isBranch bool
	local    *tree.Node // non-nil when this branch is owned locally
	owners   []int      // remote owners of this branch (usually one)
	leafCell bool       // branch cell with Count ≤ leafCap: a global-tree leaf
}

// hasChildren reports whether traversal can expand this node locally.
func (n *pnode) hasChildren() bool {
	for _, c := range n.children {
		if c != nil {
			return true
		}
	}
	return false
}

// buildTop assembles the replicated global tree for one processor from
// the full set of branch summaries. localRoots maps packed cell keys of
// locally-owned branch cells to their subtree roots. charge is called
// with the modelled flop cost of the merge (the redundant computation of
// the broadcast-based construction). degree < 0 disables expansions.
func buildTop(rootBox vec.Box, summaries []BranchSummary, me int,
	localRoots map[uint64]*tree.Node, degree, leafCap int, charge func(float64)) (*pnode, error) {

	root := &pnode{cell: keys.CellKey{}, box: rootBox}
	// Insert branch cells, creating intermediate top nodes.
	for _, s := range summaries {
		if s.Count == 0 {
			continue
		}
		ck := keys.CellKeyFromUint64(s.Key)
		n := root
		for lvl := 0; lvl < int(ck.Level); lvl++ {
			oct := int(ck.Key>>(3*uint(int(ck.Level)-lvl-1))) & 7
			if n.isBranch {
				return nil, fmt.Errorf("parbh: branch cell %v is an ancestor of %v", n.cell, ck)
			}
			if n.children[oct] == nil {
				n.children[oct] = &pnode{cell: n.cell.Child(oct), box: n.box.Octant(oct)}
			}
			n = n.children[oct]
		}
		if n.hasChildren() {
			return nil, fmt.Errorf("parbh: branch cell %v is an ancestor of another branch", ck)
		}
		n.isBranch = true
		n.count += int(s.Count)
		// Merge mass and centre of mass (multiple owners per cell are
		// possible only in degenerate identical-key splits; normally this
		// executes once per cell).
		newMass := n.mass + s.Mass
		if newMass > 0 {
			n.com = n.com.Scale(n.mass / newMass).Add(s.COM.Scale(s.Mass / newMass))
		}
		n.mass = newMass
		if int(s.Owner) == me {
			ln, ok := localRoots[s.Key]
			if !ok {
				return nil, fmt.Errorf("parbh: missing local subtree for branch %v", ck)
			}
			n.local = ln
		} else {
			n.owners = append(n.owners, int(s.Owner))
		}
		if degree >= 0 && s.Exp != nil {
			e, err := phys.ExpansionFromFloats(degree, s.Exp)
			if err != nil {
				return nil, err
			}
			if n.exp == nil {
				n.exp = e
			} else {
				// Combine at the merged centre of mass.
				at := n.com
				sum := n.exp.TranslateTo(at)
				sum.Add(e.TranslateTo(at))
				n.exp = sum
				charge(2 * phys.M2MFlops(degree))
			}
		}
	}
	// Upward pass: summarize internal top nodes from their children. This
	// is the redundant computation every processor performs under the
	// broadcast-based construction.
	var up func(n *pnode) error
	up = func(n *pnode) error {
		if n.isBranch {
			n.leafCell = n.count <= leafCap
			return nil
		}
		for _, c := range n.children {
			if c == nil {
				continue
			}
			if err := up(c); err != nil {
				return err
			}
			newMass := n.mass + c.mass
			if newMass > 0 {
				n.com = n.com.Scale(n.mass / newMass).Add(c.com.Scale(c.mass / newMass))
			}
			n.mass = newMass
			n.count += c.count
			charge(phys.NodeCombineFlops)
		}
		if degree >= 0 {
			e := phys.NewExpansion(degree, n.com)
			for _, c := range n.children {
				if c == nil || c.count == 0 || c.exp == nil {
					continue
				}
				e.Add(c.exp.TranslateTo(n.com))
				charge(phys.M2MFlops(degree))
			}
			n.exp = e
		}
		return nil
	}
	if err := up(root); err != nil {
		return nil, err
	}
	return root, nil
}

// branchLookup resolves a packed branch key to the local subtree root —
// the structure a processor uses to locate the target of an incoming
// function-shipping request (Section 4.2.3). Two implementations exist:
// a hash table and a sorted table with binary search; the paper measured
// both and found the difference masked by computation.
type branchLookup interface {
	find(key uint64) *tree.Node
	// cost returns the modelled flop cost of one lookup.
	cost() float64
}

// hashLookup is the hash-table variant.
type hashLookup map[uint64]*tree.Node

func (h hashLookup) find(key uint64) *tree.Node { return h[key] }
func (h hashLookup) cost() float64              { return 6 }

// sortedLookup is the sorted-key-table variant.
type sortedLookup struct {
	keys  []uint64
	nodes []*tree.Node
}

func newSortedLookup(m map[uint64]*tree.Node) *sortedLookup {
	s := &sortedLookup{}
	for k := range m {
		s.keys = append(s.keys, k)
	}
	sort.Slice(s.keys, func(i, j int) bool { return s.keys[i] < s.keys[j] })
	s.nodes = make([]*tree.Node, len(s.keys))
	for i, k := range s.keys {
		s.nodes[i] = m[k]
	}
	return s
}

func (s *sortedLookup) find(key uint64) *tree.Node {
	i := sort.Search(len(s.keys), func(i int) bool { return s.keys[i] >= key })
	if i < len(s.keys) && s.keys[i] == key {
		return s.nodes[i]
	}
	return nil
}

func (s *sortedLookup) cost() float64 {
	n := len(s.keys)
	c := 2.0
	for n > 1 {
		n >>= 1
		c += 2
	}
	return c
}

// fullResKeyOf returns the maximal-depth Morton key of a position within
// the root box — the ordering key for DPDA zone boundaries.
func fullResKeyOf(pos vec.V3, rootBox vec.Box) uint64 {
	return uint64(keys.PointKey3(pos, rootBox, keys.MaxBits3D))
}

// cellKeyRange returns the half-open interval of full-resolution Morton
// keys covered by a cell.
func cellKeyRange(c keys.CellKey) (lo, hi uint64) {
	shift := 3 * uint(keys.MaxBits3D-int(c.Level))
	lo = uint64(c.Key) << shift
	hi = lo + (1 << shift)
	return
}
