package parbh

import (
	"repro/internal/msg"
	"repro/internal/phys"
	"repro/internal/tree"
	"repro/internal/vec"
)

// Function-shipping force phase (Section 3.2). Each processor traverses
// the replicated global tree for every one of its particles. Local
// subtrees are descended directly; interactions accepted by the MAC at
// replicated top or remote-branch nodes are computed from the broadcast
// summaries; a rejected remote branch node causes the particle's
// coordinates to be placed in a bin for the branch's owner. Bins are
// flushed at BinSize particles, with at most one outstanding bin per
// source–destination pair: a processor that wants to send while a bin is
// outstanding must first serve incoming work, exactly as the paper
// prescribes. Shipped-back contributions are accumulated in fixed slot
// order so results are deterministic regardless of message timing.

// reqEntry asks the owner of branch `Key` for the subtree contribution at
// Pos; Slot identifies where the reply lands at the requester.
type reqEntry struct {
	Key  uint64
	Pos  vec.V3
	Self int32
	Slot int32
}

// reqEntryWords is the modelled wire size of one entry: three coordinate
// words (the paper's "three floating point numbers") plus one word of
// key/slot overhead.
const reqEntryWords = 4

// reqBin is a batch of shipped particles for one destination.
type reqBin struct {
	Entries []reqEntry
}

// repBin carries the computed contributions back; Slots mirrors the
// request order. Exactly one of F or P is set depending on the mode.
type repBin struct {
	Slots []int32
	F     []vec.V3
	P     []float64
}

// forcePhase runs the force-computation phase and writes per-particle
// results (indexed by particle ID) into res.
func (e *Engine) forcePhase(pr *msg.Proc, st *localState, res *Result) {
	switch e.cfg.Shipping {
	case DataShipping, DataShippingNaive:
		e.dataShipPhase(pr, st, res)
		return
	case LETShipping:
		e.letForcePhase(pr, st, res)
		return
	}
	r := &shipRun{e: e, pr: pr, st: st}
	r.init()
	t0 := pr.Stats().ComputeTime
	st.extraLoad = make(map[int]float64, len(st.parts))

	// Accumulators for local contributions, by local particle index.
	n := len(st.parts)
	localF := make([]vec.V3, n)
	localP := make([]float64, n)

	for i := range st.parts {
		q := &st.parts[i]
		r.curID = q.ID
		if e.cfg.Mode == ForceMode {
			localF[i] = r.traverseForce(st.top, q.Pos, q.ID, i)
		} else {
			localP[i] = r.traversePot(st.top, q.Pos, q.ID, i)
		}
		// Poll for incoming work between particles ("processors must
		// periodically process remote work requests").
		r.serviceAll(false)
	}
	r.flush()
	r.terminate()

	// Deterministic reduction: remote contributions are added in slot
	// order, which is the traversal order and independent of message
	// timing.
	if e.cfg.Mode == ForceMode {
		for s, pi := range r.slotPart {
			localF[pi] = localF[pi].Add(r.slotF[s])
		}
		for i := range st.parts {
			res.Accels[st.parts[i].ID] = localF[i]
		}
	} else {
		for s, pi := range r.slotPart {
			localP[pi] += r.slotP[s]
		}
		for i := range st.parts {
			res.Potentials[st.parts[i].ID] = localP[i]
		}
	}
	st.forceT = pr.Stats().ComputeTime - t0
}

// shipRun is the per-processor state of one function-shipping phase.
type shipRun struct {
	e  *Engine
	pr *msg.Proc
	st *localState

	bins        []reqBin // one per destination
	outstanding []bool   // one unacked bin per destination allowed
	pendingReps int      // bins sent, replies not yet received

	slotPart []int    // slot -> local particle index
	slotF    []vec.V3 // force-mode reply values
	slotP    []float64

	// curID is the particle whose traversal is running; summary-level
	// interactions are attributed to it for load balancing.
	curID int

	// Tree-based termination detection.
	doneKids int
	sentUp   bool
	gotDown  bool
	flushed  bool
}

func (r *shipRun) init() {
	p := r.pr.NumProcs()
	r.bins = make([]reqBin, p)
	r.outstanding = make([]bool, p)
}

// ship places a particle in the bin of every owner of a remote branch.
func (r *shipRun) ship(n *pnode, pos vec.V3, self int, localIdx int) {
	for _, o := range n.owners {
		slot := len(r.slotPart)
		r.slotPart = append(r.slotPart, localIdx)
		if r.e.cfg.Mode == ForceMode {
			r.slotF = append(r.slotF, vec.V3{})
		} else {
			r.slotP = append(r.slotP, 0)
		}
		r.bins[o].Entries = append(r.bins[o].Entries, reqEntry{
			Key: n.cell.Uint64(), Pos: pos, Self: int32(self), Slot: int32(slot),
		})
		if len(r.bins[o].Entries) >= r.e.cfg.BinSize {
			r.sendBin(o)
		}
	}
}

// sendBin flushes the bin for dst, first serving remote work while a
// previous bin to dst is still outstanding (the paper's flow control).
func (r *shipRun) sendBin(dst int) {
	if len(r.bins[dst].Entries) == 0 {
		return
	}
	for r.outstanding[dst] {
		r.serviceOne(true)
	}
	bin := r.bins[dst]
	r.bins[dst] = reqBin{Entries: reqEntryPool.get(0)}
	r.pr.Send(dst, tagRequest, bin, reqEntryWords*len(bin.Entries)+1)
	r.outstanding[dst] = true
	r.pendingReps++
}

// flush sends every non-empty partial bin.
func (r *shipRun) flush() {
	for dst := range r.bins {
		r.sendBin(dst)
	}
	r.flushed = true
}

// serviceAll drains currently available work without blocking.
func (r *shipRun) serviceAll(block bool) {
	for r.serviceOne(block) {
		block = false
	}
}

// serviceOne handles one incoming message; returns false if none was
// available (non-blocking mode).
func (r *shipRun) serviceOne(block bool) bool {
	var payload any
	var from, tag int
	if block {
		payload, from, tag = r.pr.RecvTags(tagRequest, tagReply, tagDoneUp, tagDoneDown)
	} else {
		var ok bool
		payload, from, tag, ok = r.pr.TryRecvTags(tagRequest, tagReply, tagDoneUp, tagDoneDown)
		if !ok {
			return false
		}
	}
	switch tag {
	case tagRequest:
		r.serve(payload.(reqBin), from)
	case tagReply:
		rep := payload.(repBin)
		for i, s := range rep.Slots {
			if r.e.cfg.Mode == ForceMode {
				r.slotF[s] = rep.F[i]
			} else {
				r.slotP[s] = rep.P[i]
			}
		}
		slotPool.put(rep.Slots)
		vec3Pool.put(rep.F)
		f64Pool.put(rep.P)
		r.outstanding[from] = false
		r.pendingReps--
	case tagDoneUp:
		r.doneKids++
	case tagDoneDown:
		r.gotDown = true
		r.forwardDown()
	}
	return true
}

// serve computes the requested subtree contributions and ships the
// results back: the essence of function shipping — the computation runs
// where the data is.
func (r *shipRun) serve(bin reqBin, from int) {
	cfg := r.e.cfg
	rep := repBin{Slots: slotPool.get(len(bin.Entries))}
	if cfg.Mode == ForceMode {
		rep.F = vec3Pool.get(len(bin.Entries))
	} else {
		rep.P = f64Pool.get(len(bin.Entries))
	}
	for i, en := range bin.Entries {
		rep.Slots[i] = en.Slot
		node := r.st.lookup.find(en.Key)
		r.pr.Compute(r.st.lookup.cost())
		if node == nil {
			// Empty branch (race with zero-count summaries). Pooled reply
			// buffers carry stale values, so zero the slot explicitly.
			if cfg.Mode == ForceMode {
				rep.F[i] = vec.V3{}
			} else {
				rep.P[i] = 0
			}
			continue
		}
		var s tree.Stats
		if cfg.Mode == ForceMode {
			rep.F[i] = serveForce(node, en.Pos, int(en.Self), cfg.Alpha, cfg.Eps, &s)
		} else {
			rep.P[i] = servePot(node, en.Pos, int(en.Self), cfg.Alpha, &s)
		}
		r.st.stats.Add(s)
		r.pr.Compute(s.Flops(cfg.degreeOrMonopole()))
	}
	words := len(bin.Entries) + 1
	if cfg.Mode == ForceMode {
		words = 3*len(bin.Entries) + 1
	}
	reqEntryPool.put(bin.Entries)
	r.pr.Send(from, tagReply, rep, words)
}

// serveForce computes the contribution of the subtree rooted at branch to
// a shipped particle. The requester already rejected the branch cell
// under the MAC, so evaluation starts at its children (or at the
// particles for a leaf branch), mirroring exactly what a serial traversal
// does after rejecting the node.
func serveForce(branch *tree.Node, pos vec.V3, self int, alpha, eps float64, stats *tree.Stats) vec.V3 {
	if branch.IsLeaf() {
		return tree.AccelFrom(branch, pos, self, alpha, eps, stats)
	}
	var a vec.V3
	for _, c := range branch.Children {
		if c != nil {
			a = a.Add(tree.AccelFrom(c, pos, self, alpha, eps, stats))
		}
	}
	branch.Load++
	return a
}

// servePot is serveForce for potential mode.
func servePot(branch *tree.Node, pos vec.V3, self int, alpha float64, stats *tree.Stats) float64 {
	if branch.IsLeaf() {
		return tree.PotentialFrom(branch, pos, self, alpha, stats)
	}
	var phi float64
	for _, c := range branch.Children {
		if c != nil {
			phi += tree.PotentialFrom(c, pos, self, alpha, stats)
		}
	}
	branch.Load++
	return phi
}

// traverseForce walks the replicated tree for one particle, accumulating
// local contributions and binning remote ones.
func (r *shipRun) traverseForce(n *pnode, pos vec.V3, self, localIdx int) vec.V3 {
	if n == nil || n.count == 0 {
		return vec.V3{}
	}
	if n.local != nil {
		var s tree.Stats
		a := tree.AccelFrom(n.local, pos, self, r.e.cfg.Alpha, r.e.cfg.Eps, &s)
		r.st.stats.Add(s)
		r.pr.Compute(s.Flops(0))
		return a
	}
	if n.isBranch {
		// Remote branch: leaf cells always ship (a serial traversal would
		// do particle–particle sums there); internal cells MAC-test the
		// replicated summary first.
		if n.leafCell {
			r.ship(n, pos, self, localIdx)
			return vec.V3{}
		}
		if r.chargeMAC() && acceptsSummary(n, pos, r.e.cfg.Alpha) {
			r.chargePC()
			return phys.Accel(pos, n.com, n.mass, r.e.cfg.Eps)
		}
		r.ship(n, pos, self, localIdx)
		return vec.V3{}
	}
	// Replicated top node.
	if r.chargeMAC() && acceptsSummary(n, pos, r.e.cfg.Alpha) {
		r.chargePC()
		return phys.Accel(pos, n.com, n.mass, r.e.cfg.Eps)
	}
	var a vec.V3
	for _, c := range n.children {
		if c != nil {
			a = a.Add(r.traverseForce(c, pos, self, localIdx))
		}
	}
	return a
}

// traversePot is traverseForce for potential mode.
func (r *shipRun) traversePot(n *pnode, pos vec.V3, self, localIdx int) float64 {
	if n == nil || n.count == 0 {
		return 0
	}
	if n.local != nil {
		var s tree.Stats
		phi := tree.PotentialFrom(n.local, pos, self, r.e.cfg.Alpha, &s)
		r.st.stats.Add(s)
		r.pr.Compute(s.Flops(r.e.cfg.Degree))
		return phi
	}
	if n.isBranch {
		if n.leafCell {
			r.ship(n, pos, self, localIdx)
			return 0
		}
		if r.chargeMAC() && acceptsSummary(n, pos, r.e.cfg.Alpha) {
			r.chargePC()
			return n.exp.EvalPotential(pos)
		}
		r.ship(n, pos, self, localIdx)
		return 0
	}
	if r.chargeMAC() && acceptsSummary(n, pos, r.e.cfg.Alpha) {
		r.chargePC()
		return n.exp.EvalPotential(pos)
	}
	var phi float64
	for _, c := range n.children {
		if c != nil {
			phi += r.traversePot(c, pos, self, localIdx)
		}
	}
	return phi
}

// chargeMAC records one MAC test; it always returns true so it can gate
// the acceptance check in a short-circuit expression.
func (r *shipRun) chargeMAC() bool {
	r.st.stats.MACTests++
	r.pr.Compute(phys.MACFlops)
	return true
}

// chargePC records one particle–cluster interaction against a replicated
// summary; the load is attributed to the traversing particle because no
// local tree node represents the summary.
func (r *shipRun) chargePC() {
	r.st.stats.PC++
	flops := phys.InteractionFlops(r.e.cfg.degreeOrMonopole())
	r.st.extraLoad[r.curID] += flops + phys.MACFlops
	r.pr.Compute(flops)
}

// acceptsSummary applies the Barnes–Hut MAC to a replicated node summary.
func acceptsSummary(n *pnode, pos vec.V3, alpha float64) bool {
	d := pos.Dist(n.com)
	if d == 0 {
		return false
	}
	return n.box.LongestSide()/d < alpha
}

// terminate runs the tree-based distributed termination protocol: a
// processor reports "done" up a binary tree over ranks once its own bins
// are flushed and answered and its subtree is done; the root then floods
// "done" down. Processors keep serving remote work while waiting, so no
// request ever starves.
func (r *shipRun) terminate() {
	me := r.pr.ID()
	p := r.pr.NumProcs()
	kids := 0
	if 2*me+1 < p {
		kids++
	}
	if 2*me+2 < p {
		kids++
	}
	for !r.gotDown {
		if !r.sentUp && r.flushed && r.pendingReps == 0 && r.doneKids == kids {
			if me == 0 {
				r.gotDown = true
				r.forwardDown()
				break
			}
			r.pr.Send((me-1)/2, tagDoneUp, struct{}{}, 1)
			r.sentUp = true
		}
		r.serviceOne(true)
	}
}

// forwardDown propagates the termination signal to tree children.
func (r *shipRun) forwardDown() {
	me := r.pr.ID()
	p := r.pr.NumProcs()
	for _, c := range []int{2*me + 1, 2*me + 2} {
		if c < p {
			r.pr.Send(c, tagDoneDown, struct{}{}, 1)
		}
	}
}
