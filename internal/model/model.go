// Package model implements the analytical results of Section 4.1: the
// Kruskal–Weiss bound on the completion time of r independent subtasks on
// p processors, used by the paper to reason about how many clusters the
// static decomposition needs (r ≥ p·log p) for the load-imbalance term to
// grow slower than the essential computation.
package model

import (
	"math"
	"math/rand"
)

// Prediction is the Kruskal–Weiss expected completion time split into its
// two terms.
type Prediction struct {
	// Work is the essential-computation term r·μ/p.
	Work float64
	// Imbalance is the overhead term σ·sqrt(2·(r/p)·log p).
	Imbalance float64
}

// Total returns the predicted completion time.
func (p Prediction) Total() float64 { return p.Work + p.Imbalance }

// KruskalWeiss evaluates the expected completion time of r independent
// subtasks with mean load mu and standard deviation sigma, allocated
// r/p at a time to each of p processors:
//
//	T_p ≈ r·μ/p + σ·sqrt(2·(r/p)·log p)
//
// valid when r is large compared to p·log p.
func KruskalWeiss(r, p int, mu, sigma float64) Prediction {
	if r <= 0 || p <= 0 {
		return Prediction{}
	}
	rf, pf := float64(r), float64(p)
	return Prediction{
		Work:      rf * mu / pf,
		Imbalance: sigma * math.Sqrt(2*(rf/pf)*math.Log(pf)),
	}
}

// Efficiency returns the predicted parallel efficiency Work/Total.
func Efficiency(r, p int, mu, sigma float64) float64 {
	pred := KruskalWeiss(r, p, mu, sigma)
	if pred.Total() == 0 {
		return 1
	}
	return pred.Work / pred.Total()
}

// MinClusters returns the paper's r ≥ p·log₂(p) rule of thumb for the
// number of clusters needed so the imbalance term grows slower than the
// essential computation.
func MinClusters(p int) int {
	if p <= 1 {
		return 1
	}
	return int(math.Ceil(float64(p) * math.Log2(float64(p))))
}

// LoadStats returns the mean and standard deviation of a load vector.
func LoadStats(loads []float64) (mu, sigma float64) {
	if len(loads) == 0 {
		return 0, 0
	}
	for _, l := range loads {
		mu += l
	}
	mu /= float64(len(loads))
	for _, l := range loads {
		d := l - mu
		sigma += d * d
	}
	sigma = math.Sqrt(sigma / float64(len(loads)))
	return
}

// RandomAssignmentMax simulates the random allocation Kruskal–Weiss
// analyzes: clusters are dealt r/p at a time to processors in a random
// order, and the maximum processor load (the completion time) is
// returned. Used to validate the analytical bound empirically.
func RandomAssignmentMax(loads []float64, p int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(loads))
	per := make([]float64, p)
	for i, idx := range perm {
		per[i%p] += loads[idx]
	}
	var max float64
	for _, l := range per {
		if l > max {
			max = l
		}
	}
	return max
}
