package model

import (
	"math"
	"math/rand"
	"testing"
)

func TestKruskalWeissTerms(t *testing.T) {
	pred := KruskalWeiss(100, 4, 2, 0.5)
	if math.Abs(pred.Work-50) > 1e-12 {
		t.Fatalf("work term = %v", pred.Work)
	}
	want := 0.5 * math.Sqrt(2*25*math.Log(4))
	if math.Abs(pred.Imbalance-want) > 1e-12 {
		t.Fatalf("imbalance term = %v, want %v", pred.Imbalance, want)
	}
	if pred.Total() != pred.Work+pred.Imbalance {
		t.Fatal("Total inconsistent")
	}
}

func TestKruskalWeissDegenerate(t *testing.T) {
	if KruskalWeiss(0, 4, 1, 1).Total() != 0 {
		t.Fatal("r=0 not zero")
	}
	if KruskalWeiss(10, 0, 1, 1).Total() != 0 {
		t.Fatal("p=0 not zero")
	}
	if Efficiency(0, 0, 0, 0) != 1 {
		t.Fatal("degenerate efficiency")
	}
}

func TestEfficiencyImprovesWithR(t *testing.T) {
	// The paper's conclusion: increasing r grows the essential work
	// linearly but the overhead only as sqrt(r), so efficiency rises.
	prev := 0.0
	for _, r := range []int{64, 256, 1024, 4096} {
		e := Efficiency(r, 64, 1, 0.5)
		if e <= prev {
			t.Fatalf("efficiency %v at r=%d did not improve on %v", e, r, prev)
		}
		prev = e
	}
}

func TestEfficiencyFallsWithP(t *testing.T) {
	prev := 1.0
	for _, p := range []int{4, 16, 64, 256} {
		e := Efficiency(4096, p, 1, 0.5)
		if e >= prev {
			t.Fatalf("efficiency %v at p=%d did not fall from %v", e, p, prev)
		}
		prev = e
	}
}

func TestMinClusters(t *testing.T) {
	if MinClusters(1) != 1 {
		t.Fatalf("MinClusters(1) = %d", MinClusters(1))
	}
	if MinClusters(16) != 64 {
		t.Fatalf("MinClusters(16) = %d", MinClusters(16))
	}
	if MinClusters(256) != 2048 {
		t.Fatalf("MinClusters(256) = %d", MinClusters(256))
	}
}

func TestLoadStats(t *testing.T) {
	mu, sigma := LoadStats([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if mu != 5 {
		t.Fatalf("mu = %v", mu)
	}
	if sigma != 2 {
		t.Fatalf("sigma = %v", sigma)
	}
	mu, sigma = LoadStats(nil)
	if mu != 0 || sigma != 0 {
		t.Fatal("empty stats nonzero")
	}
}

func TestBoundHoldsEmpirically(t *testing.T) {
	// Draw normal cluster loads (the distribution class Kruskal–Weiss
	// covers), randomly assign, and check the measured completion time is
	// near the prediction: above the work term, and within a modest
	// factor of work + imbalance.
	rng := rand.New(rand.NewSource(42))
	const r, p = 4096, 64
	loads := make([]float64, r)
	for i := range loads {
		loads[i] = math.Max(0, 10+2*rng.NormFloat64())
	}
	mu, sigma := LoadStats(loads)
	pred := KruskalWeiss(r, p, mu, sigma)
	var worst float64
	for trial := int64(0); trial < 20; trial++ {
		m := RandomAssignmentMax(loads, p, trial)
		if m > worst {
			worst = m
		}
		if m < pred.Work*0.999 {
			t.Fatalf("measured max %v below work term %v", m, pred.Work)
		}
	}
	if worst > pred.Total()*1.25 {
		t.Fatalf("measured %v exceeds prediction %v by too much", worst, pred.Total())
	}
}

func TestImbalanceShrinksRelativeToWork(t *testing.T) {
	// Measured overhead fraction (max/mean - 1) falls as r grows at fixed
	// p, the empirical counterpart of the r ≥ p·log p rule.
	rng := rand.New(rand.NewSource(7))
	frac := func(r int) float64 {
		loads := make([]float64, r)
		for i := range loads {
			loads[i] = math.Max(0, 10+3*rng.NormFloat64())
		}
		var total float64
		for _, l := range loads {
			total += l
		}
		const p = 32
		m := RandomAssignmentMax(loads, p, 1)
		return m/(total/p) - 1
	}
	f1, f2 := frac(256), frac(16384)
	if f2 >= f1 {
		t.Fatalf("overhead fraction did not shrink: r=256 %v, r=16384 %v", f1, f2)
	}
}
