package dist

import (
	"math"
	"testing"

	"repro/internal/vec"
)

func TestUniformBasics(t *testing.T) {
	box := vec.NewBox(vec.V3{X: -1, Y: -1, Z: -1}, vec.V3{X: 1, Y: 1, Z: 1})
	s := Uniform(1000, box, 42)
	if s.N() != 1000 {
		t.Fatalf("N = %d", s.N())
	}
	if m := s.TotalMass(); math.Abs(m-1) > 1e-9 {
		t.Fatalf("TotalMass = %v", m)
	}
	for i := range s.Particles {
		if !box.Contains(s.Particles[i].Pos) {
			t.Fatalf("particle %d outside box: %v", i, s.Particles[i].Pos)
		}
		if s.Particles[i].ID != i {
			t.Fatalf("particle %d has ID %d", i, s.Particles[i].ID)
		}
	}
	// Uniform sets are nearly homogeneous.
	if irr := Irregularity(s, 4); irr > 0.5 {
		t.Fatalf("uniform irregularity = %v", irr)
	}
}

func TestUniformDeterministic(t *testing.T) {
	box := vec.NewBox(vec.V3{}, vec.V3{X: 1, Y: 1, Z: 1})
	a := Uniform(100, box, 7)
	b := Uniform(100, box, 7)
	for i := range a.Particles {
		if a.Particles[i] != b.Particles[i] {
			t.Fatalf("same seed produced different particle %d", i)
		}
	}
	c := Uniform(100, box, 8)
	same := true
	for i := range a.Particles {
		if a.Particles[i].Pos != c.Particles[i].Pos {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical sets")
	}
}

func TestPlummerProperties(t *testing.T) {
	s := Plummer(4000, 1.0, vec.V3{}, 1)
	if s.N() != 4000 {
		t.Fatalf("N = %d", s.N())
	}
	if m := s.TotalMass(); math.Abs(m-1) > 1e-9 {
		t.Fatalf("TotalMass = %v", m)
	}
	// Centre of mass near the requested centre.
	com := s.CenterOfMass()
	if com.Norm() > 0.25 {
		t.Fatalf("centre of mass drifted: %v", com)
	}
	// Half-mass radius of a Plummer sphere is ≈ 1.30 a.
	var radii []float64
	for i := range s.Particles {
		radii = append(radii, s.Particles[i].Pos.Norm())
	}
	med := median(radii)
	if med < 0.9 || med > 1.8 {
		t.Fatalf("half-mass radius = %v, want ≈1.3", med)
	}
	// Velocities bounded by escape velocity at the centre (sqrt(2) for
	// a=1, G=M=1 at r=0).
	for i := range s.Particles {
		r := s.Particles[i].Pos.Norm()
		vesc := math.Sqrt(2) * math.Pow(r*r+1, -0.25)
		if s.Particles[i].Vel.Norm() > vesc+1e-9 {
			t.Fatalf("particle %d exceeds escape velocity", i)
		}
	}
	// Domain contains every particle.
	for i := range s.Particles {
		if !s.Domain.Contains(s.Particles[i].Pos) {
			t.Fatalf("particle %d outside domain", i)
		}
	}
}

func TestPlummerVirialBalance(t *testing.T) {
	// For an equilibrium Plummer model 2T/|U| ≈ 1. Use the analytic
	// potential energy U = -3π/32 (G=M=a=1) to avoid an O(n²) sum.
	s := Plummer(8000, 1.0, vec.V3{}, 3)
	var ke float64
	for i := range s.Particles {
		ke += 0.5 * s.Particles[i].Mass * s.Particles[i].Vel.Norm2()
	}
	u := 3 * math.Pi / 32
	ratio := 2 * ke / u
	if ratio < 0.7 || ratio > 1.3 {
		t.Fatalf("virial ratio = %v", ratio)
	}
}

func TestGaussians(t *testing.T) {
	dom := vec.NewBox(vec.V3{}, vec.V3{X: 100, Y: 100, Z: 100})
	specs := []GaussianSpec{
		{Center: vec.V3{X: 25, Y: 25, Z: 25}, Sigma: 2, N: 500},
		{Center: vec.V3{X: 75, Y: 75, Z: 75}, Sigma: 2, N: 500},
	}
	s := Gaussians(specs, dom, 5)
	if s.N() != 1000 {
		t.Fatalf("N = %d", s.N())
	}
	for i := range s.Particles {
		if !dom.Contains(s.Particles[i].Pos) {
			t.Fatalf("particle %d escaped domain", i)
		}
	}
	// First half clusters near the first centre.
	var d float64
	for i := 0; i < 500; i++ {
		d += s.Particles[i].Pos.Dist(specs[0].Center)
	}
	if avg := d / 500; avg > 5*specs[0].Sigma {
		t.Fatalf("first cluster mean distance = %v", avg)
	}
}

func TestGaussianClippedCluster(t *testing.T) {
	// A cluster centred outside the domain must still terminate (clamping
	// path) and keep all particles inside.
	dom := vec.NewBox(vec.V3{}, vec.V3{X: 10, Y: 10, Z: 10})
	s := Gaussians([]GaussianSpec{{Center: vec.V3{X: -50, Y: 5, Z: 5}, Sigma: 0.1, N: 50}}, dom, 1)
	for i := range s.Particles {
		if !dom.Contains(s.Particles[i].Pos) {
			t.Fatalf("clipped particle %d outside domain", i)
		}
	}
}

func TestNamedDatasets(t *testing.T) {
	names := []string{"uniform", "plummer", "g", "g2", "s_1g_a", "s_1g_b", "s_10g_a", "s_10g_b"}
	for _, name := range names {
		s, err := Named(name, 1000, 9)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.N() != 1000 {
			t.Fatalf("%s: N = %d", name, s.N())
		}
		if m := s.TotalMass(); math.Abs(m-1) > 1e-9 {
			t.Fatalf("%s: mass = %v", name, m)
		}
	}
	if _, err := Named("nope", 10, 0); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestIrregularityOrdering(t *testing.T) {
	// The paper's irregularity ordering: s_1g_a (one tight Gaussian) is
	// more irregular than s_10g_a (ten Gaussians), which is more irregular
	// than uniform; the _b variants are milder than the _a variants.
	n := 4000
	irr := func(name string) float64 {
		return Irregularity(MustNamed(name, n, 11), 8)
	}
	u := irr("uniform")
	a1 := irr("s_1g_a")
	b1 := irr("s_1g_b")
	a10 := irr("s_10g_a")
	if !(a1 > a10 && a10 > u) {
		t.Fatalf("irregularity ordering violated: s_1g_a=%v s_10g_a=%v uniform=%v", a1, a10, u)
	}
	if b1 >= a1 {
		t.Fatalf("s_1g_b (%v) should be milder than s_1g_a (%v)", b1, a1)
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := Uniform(10, vec.NewBox(vec.V3{}, vec.V3{X: 1, Y: 1, Z: 1}), 0)
	c := s.Clone()
	c.Particles[0].Pos = vec.V3{X: 99}
	if s.Particles[0].Pos == c.Particles[0].Pos {
		t.Fatal("Clone shares particle storage")
	}
}

func TestMustNamedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNamed with bad name did not panic")
		}
	}()
	MustNamed("bogus", 1, 0)
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}
