package dist

import (
	"math/rand"
	"testing"

	"repro/internal/vec"
)

func TestParticlesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ps := make([]Particle, 137)
	for i := range ps {
		ps[i] = Particle{
			ID:   i,
			Mass: rng.Float64(),
			Pos:  vec.V3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()},
			Vel:  vec.V3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()},
		}
	}
	c := FromAoS(ps)
	if c.Len() != len(ps) {
		t.Fatalf("Len = %d, want %d", c.Len(), len(ps))
	}
	for i := range ps {
		if c.At(i) != ps[i] {
			t.Fatalf("At(%d) = %+v, want %+v", i, c.At(i), ps[i])
		}
		if c.Pos(i) != ps[i].Pos {
			t.Fatalf("Pos(%d) = %v, want %v", i, c.Pos(i), ps[i].Pos)
		}
	}
	out := make([]Particle, len(ps))
	c.Scatter(out)
	for i := range ps {
		if out[i] != ps[i] {
			t.Fatalf("Scatter[%d] = %+v, want %+v", i, out[i], ps[i])
		}
	}

	// Gather reuses capacity: a second, shorter gather must fully replace
	// the contents.
	c.Gather(ps[:10])
	if c.Len() != 10 {
		t.Fatalf("after regather Len = %d, want 10", c.Len())
	}
	for i := 0; i < 10; i++ {
		if c.At(i) != ps[i] {
			t.Fatalf("regather At(%d) mismatch", i)
		}
	}
}

func TestParticlesScatterLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Scatter with wrong length did not panic")
		}
	}()
	c := FromAoS(make([]Particle, 3))
	c.Scatter(make([]Particle, 2))
}
