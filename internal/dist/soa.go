package dist

import "repro/internal/vec"

// Particles is a structure-of-arrays view of a particle list: one column
// per field, all the same length. Hot kernels iterate single columns
// (contiguous 8-byte strides instead of 64-byte Particle records), and
// the same per-field column layout is the contract the columnar snapshot
// store will serialize. The zero value is an empty, ready-to-use set.
type Particles struct {
	ID               []int32
	Mass             []float64
	PosX, PosY, PosZ []float64
	VelX, VelY, VelZ []float64
}

// Len returns the number of particles in the columns.
func (c *Particles) Len() int { return len(c.ID) }

// Reset truncates all columns to zero length, keeping their capacity.
func (c *Particles) Reset() {
	c.ID = c.ID[:0]
	c.Mass = c.Mass[:0]
	c.PosX, c.PosY, c.PosZ = c.PosX[:0], c.PosY[:0], c.PosZ[:0]
	c.VelX, c.VelY, c.VelZ = c.VelX[:0], c.VelY[:0], c.VelZ[:0]
}

// Append transposes ps onto the end of the columns.
func (c *Particles) Append(ps []Particle) {
	for i := range ps {
		p := &ps[i]
		c.ID = append(c.ID, int32(p.ID))
		c.Mass = append(c.Mass, p.Mass)
		c.PosX = append(c.PosX, p.Pos.X)
		c.PosY = append(c.PosY, p.Pos.Y)
		c.PosZ = append(c.PosZ, p.Pos.Z)
		c.VelX = append(c.VelX, p.Vel.X)
		c.VelY = append(c.VelY, p.Vel.Y)
		c.VelZ = append(c.VelZ, p.Vel.Z)
	}
}

// Gather replaces the columns with a transposed copy of ps, reusing
// column capacity across calls.
func (c *Particles) Gather(ps []Particle) {
	c.Reset()
	c.Append(ps)
}

// At reconstructs the particle at index i.
func (c *Particles) At(i int) Particle {
	return Particle{
		ID:   int(c.ID[i]),
		Mass: c.Mass[i],
		Pos:  vec.V3{X: c.PosX[i], Y: c.PosY[i], Z: c.PosZ[i]},
		Vel:  vec.V3{X: c.VelX[i], Y: c.VelY[i], Z: c.VelZ[i]},
	}
}

// Pos reconstructs the position at index i.
func (c *Particles) Pos(i int) vec.V3 {
	return vec.V3{X: c.PosX[i], Y: c.PosY[i], Z: c.PosZ[i]}
}

// Scatter transposes the columns back into out, which must have length
// Len().
func (c *Particles) Scatter(out []Particle) {
	if len(out) != c.Len() {
		panic("dist: Scatter length mismatch")
	}
	for i := range out {
		out[i] = c.At(i)
	}
}

// FromAoS returns a fresh column set transposed from ps.
func FromAoS(ps []Particle) *Particles {
	c := &Particles{}
	c.Gather(ps)
	return c
}
